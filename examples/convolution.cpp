//===- examples/convolution.cpp - The paper's Figures 2-4, reproduced ------------===//
//
// Figure 2 of the paper annotates an image-convolution routine; Figure 3
// shows the partially optimized dynamic region (loops unrolled, constants
// instantiated); Figure 4 shows the fully optimized region after dynamic
// zero/copy propagation and dead-assignment elimination removed the
// multiplies by 0.0 and 1.0 and the loads feeding them. This example
// reproduces all three views for the paper's 3x3 alternating-0/1 kernel
// ("zeroes in the corners").
//
//===----------------------------------------------------------------------===//

#include "core/DycContext.h"

#include <cstdio>

using namespace dyc;

static const char *Source = R"(
void do_convol(double* image, int irows, int icols,
               double* cmatrix, int crows, int ccols,
               double* outbuf) {
  int crow;
  int ccol;
  make_static(cmatrix, crows, ccols, crow, ccol : cache_one_unchecked);
  int crowso2 = crows / 2;
  int ccolso2 = ccols / 2;
  int irow;
  int icol;
  for (irow = crowso2; irow < irows - crowso2; irow = irow + 1) {
    int rowbase = irow - crowso2;
    for (icol = ccolso2; icol < icols - ccolso2; icol = icol + 1) {
      int colbase = icol - ccolso2;
      double sum = 0.0;
      for (crow = 0; crow < crows; crow = crow + 1) {
        for (ccol = 0; ccol < ccols; ccol = ccol + 1) {
          double weight = cmatrix@[crow * ccols + ccol];
          double x = image[(rowbase + crow) * icols + (colbase + ccol)];
          double weighted_x = x * weight;
          sum = sum + weighted_x;
        }
      }
      outbuf[irow * icols + icol] = sum;
    }
  }
}
)";

static void runConfig(const char *Title, const OptFlags &Flags) {
  core::DycContext Ctx;
  std::vector<std::string> Errors;
  if (!Ctx.compile(Source, Errors)) {
    for (const std::string &E : Errors)
      fprintf(stderr, "error: %s\n", E.c_str());
    return;
  }
  auto Dyn = Ctx.buildDynamic(Flags);
  vm::VM &M = *Dyn->Machine;
  const int R = 8, C = 8;
  int64_t Image = M.allocMemory(R * C);
  int64_t CMat = M.allocMemory(9);
  int64_t Out = M.allocMemory(R * C);
  // Figure 3's kernel: alternating zeroes and ones, zeroes in the corners.
  const double K[9] = {0, 1, 0, 1, 0, 1, 0, 1, 0};
  for (int I = 0; I != 9; ++I)
    M.memory()[CMat + I] = Word::fromFloat(K[I]);
  DeterministicRNG RNG(7);
  for (int I = 0; I != R * C; ++I)
    M.memory()[Image + I] = Word::fromFloat(RNG.nextDouble());

  int F = Dyn->findFunction("do_convol");
  M.run(F, {Word::fromInt(Image), Word::fromInt(R), Word::fromInt(C),
            Word::fromInt(CMat), Word::fromInt(3), Word::fromInt(3),
            Word::fromInt(Out)});

  const runtime::RegionStats &St = Dyn->RT->stats(0);
  printf("==== %s ====\n", Title);
  printf("instructions generated: %llu  (zcp: %llu, dead assignments "
         "eliminated: %llu)\n\n",
         (unsigned long long)St.InstructionsGenerated,
         (unsigned long long)St.ZcpApplied,
         (unsigned long long)St.DeadAssignsEliminated);
  printf("%s\n", Dyn->RT->disassembleRegion(0).c_str());
}

int main() {
  printf("The paper's running example: 3x3 convolution kernel with "
         "alternating 0/1 weights.\n\n");

  OptFlags Fig3; // "Partially Dynamically Optimized Region" (Figure 3)
  Fig3.ZeroCopyPropagation = false;
  Fig3.DeadAssignmentElimination = false;
  runConfig("Figure 3: unrolled, constants instantiated (no ZCP/DAE)",
            Fig3);

  OptFlags Fig4; // "Fully Dynamically Optimized Region" (Figure 4)
  runConfig("Figure 4: with dynamic zero/copy propagation + "
            "dead-assignment elimination",
            Fig4);

  printf("Note how every multiply by 0.0 disappeared together with its "
         "image load, and each\nmultiply by 1.0 turned into a direct "
         "accumulation of the loaded pixel (copy propagated).\n");
  return 0;
}
