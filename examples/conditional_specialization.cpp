//===- examples/conditional_specialization.cpp - Polyvariant division -------------===//
//
// Section 2.2.5 of the paper: polyvariant division lets the same program
// point be analyzed under several sets of static variables, enabling
// *conditional specialization* — guard an annotation with a test, and the
// code after the merge is analyzed both with and without the extra static
// variable. viewperf's shader needs exactly this (section 4.4.4). This
// example specializes a saxpy-like routine on its scale table only when a
// mode flag says the table is frozen.
//
//===----------------------------------------------------------------------===//

#include "core/DycContext.h"

#include <cstdio>

using namespace dyc;

static const char *Source = R"(
int apply(int mode, double* scale, double* xs, double* out, int n) {
  int k;
  make_static(mode, k);
  if (mode == 1) {
    /* Specialize on the table only on this path: the code below is
       analyzed under two divisions. */
    make_static(scale);
  }
  int i;
  for (i = 0; i < n; i = i + 1) {
    for (k = 0; k < 4; k = k + 1) {
      if (mode == 1) {
        out[i * 4 + k] = xs[i] * scale@[k];
      } else {
        out[i * 4 + k] = xs[i] * scale[k];
      }
    }
  }
  return n;
}
)";

int main() {
  core::DycContext Ctx;
  std::vector<std::string> Errors;
  if (!Ctx.compile(Source, Errors)) {
    for (const std::string &E : Errors)
      fprintf(stderr, "error: %s\n", E.c_str());
    return 1;
  }

  // Show the analysis: the loop body owns several contexts (divisions).
  std::vector<bta::RegionInfo> Regions = Ctx.analyze(OptFlags());
  printf("polyvariant division: %s\n\n",
         Regions[0].HasPolyvariantDivision
             ? "yes — the merge point is analyzed under two divisions"
             : "no");

  auto Dyn = Ctx.buildDynamic();
  vm::VM &M = *Dyn->Machine;
  const int N = 6;
  int64_t Scale = M.allocMemory(4);
  int64_t Xs = M.allocMemory(N);
  int64_t Out = M.allocMemory(N * 4);
  const double Sc[4] = {0.0, 1.0, 2.0, 0.5};
  for (int I = 0; I != 4; ++I)
    M.memory()[Scale + I] = Word::fromFloat(Sc[I]);
  for (int I = 0; I != N; ++I)
    M.memory()[Xs + I] = Word::fromFloat(1.0 + I);

  // mode == 1: the scale table is promoted and its zeroes/ones fold.
  M.run(Dyn->findFunction("apply"),
        {Word::fromInt(1), Word::fromInt(Scale), Word::fromInt(Xs),
         Word::fromInt(Out), Word::fromInt(N)});
  const runtime::RegionStats &St1 = Dyn->RT->stats(0);
  printf("mode=1 (specialized path): %llu instructions generated, "
         "zcp=%llu, static loads=%llu\n",
         (unsigned long long)St1.InstructionsGenerated,
         (unsigned long long)St1.ZcpApplied,
         (unsigned long long)St1.StaticLoadsExecuted);

  // mode == 0: the other division — the table stays dynamic.
  M.run(Dyn->findFunction("apply"),
        {Word::fromInt(0), Word::fromInt(Scale), Word::fromInt(Xs),
         Word::fromInt(Out), Word::fromInt(N)});
  const runtime::RegionStats &St0 = Dyn->RT->stats(0);
  printf("mode=0 (generic path):     %llu instructions generated in "
         "total (second specialization reuses nothing)\n",
         (unsigned long long)St0.InstructionsGenerated);

  printf("\nresidual code (both specializations share the region "
         "buffer):\n\n%s", Dyn->RT->disassembleRegion(0).c_str());
  return 0;
}
