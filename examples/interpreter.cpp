//===- examples/interpreter.cpp - Compiling an interpreter away ------------------===//
//
// The mipsi idiom (paper sections 2.2.4 and 4.4.1): specializing an
// interpreter for its (static) input program multi-way-unrolls the
// fetch-decode-execute loop over the program counter, turning the
// interpreter into compiled code for the interpreted program. Backward
// jumps in the interpreted program become real backward branches in the
// generated code — the "directed graph of unrolled loop bodies".
//
//===----------------------------------------------------------------------===//

#include "core/DycContext.h"

#include <cstdio>

using namespace dyc;

static const char *Source = R"(
/* A tiny accumulator machine. ops: 0 = load imm, 1 = add mem[c],
   2 = store mem[c], 3 = loop (decrement mem[c]; branch to a if > 0),
   4 = halt. Encoded as (op, a, c) triples. */
int run(int* prog, int nprog, int* mem) {
  int pc = 0;
  make_static(prog, nprog, pc);
  int acc = 0;
  while (pc < nprog) {
    int op = prog@[pc * 3];
    int a  = prog@[pc * 3 + 1];
    int c  = prog@[pc * 3 + 2];
    if (op == 0) { acc = c; pc = pc + 1; }
    else { if (op == 1) { acc = acc + mem[c]; pc = pc + 1; }
    else { if (op == 2) { mem[c] = acc; pc = pc + 1; }
    else { if (op == 3) {
      mem[c] = mem[c] - 1;
      if (mem[c] > 0) { pc = a; } else { pc = pc + 1; }
    }
    else { pc = nprog; } } } }
  }
  return acc;
}
)";

int main() {
  core::DycContext Ctx;
  std::vector<std::string> Errors;
  if (!Ctx.compile(Source, Errors)) {
    for (const std::string &E : Errors)
      fprintf(stderr, "error: %s\n", E.c_str());
    return 1;
  }
  auto Static = Ctx.buildStatic();
  auto Dyn = Ctx.buildDynamic();

  // The interpreted program:  acc = 5; loop 3 times { acc += mem[1];
  // store acc to mem[2] }; halt.
  const int64_t Prog[][3] = {
      {0, 0, 5}, // 0: acc = 5
      {1, 0, 1}, // 1: acc += mem[1]
      {2, 0, 2}, // 2: mem[2] = acc
      {3, 1, 0}, // 3: if (--mem[0] > 0) goto 1
      {4, 0, 0}, // 4: halt
  };
  const int N = 5;

  auto Setup = [&](vm::VM &M, int64_t &P, int64_t &Mem0) {
    P = M.allocMemory(N * 3);
    Mem0 = M.allocMemory(8);
    for (int I = 0; I != N; ++I)
      for (int J = 0; J != 3; ++J)
        M.memory()[P + I * 3 + J] = Word::fromInt(Prog[I][J]);
    M.memory()[Mem0 + 0] = Word::fromInt(3);  // loop counter
    M.memory()[Mem0 + 1] = Word::fromInt(10); // addend
  };

  int64_t PS, MS, PD, MD;
  Setup(*Static->Machine, PS, MS);
  Setup(*Dyn->Machine, PD, MD);

  int F = Static->findFunction("run");
  Word S = Static->Machine->run(
      F, {Word::fromInt(PS), Word::fromInt(N), Word::fromInt(MS)});
  Word D = Dyn->Machine->run(
      F, {Word::fromInt(PD), Word::fromInt(N), Word::fromInt(MD)});
  printf("interpreted result: static = %lld, dynamic = %lld\n\n",
         (long long)S.asInt(), (long long)D.asInt());

  printf("The interpreter, specialized for this program (note the real "
         "backward branch\nwhere the interpreted loop jumps back — "
         "multi-way unrolling):\n\n%s\n",
         Dyn->RT->disassembleRegion(0).c_str());

  const runtime::RegionStats &St = Dyn->RT->stats(0);
  printf("static loads (instruction fetches done at compile time): %llu\n",
         (unsigned long long)St.StaticLoadsExecuted);
  printf("folded decode branches: %llu, emitted run-time branches: %llu\n",
         (unsigned long long)St.BranchesFolded,
         (unsigned long long)St.DynamicBranchesEmitted);
  return 0;
}
