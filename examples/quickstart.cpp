//===- examples/quickstart.cpp - Five-minute tour of the DyC API ----------------===//
//
// Compiles an annotated MiniC function, builds the statically compiled
// baseline and the dynamically compiled configuration, runs both, and
// shows the specialized code and the cycle counts.
//
//===----------------------------------------------------------------------===//

#include "core/DycContext.h"

#include <cstdio>

using namespace dyc;

// A power routine specialized on the (run-time constant) exponent: the
// classic selective-specialization example. make_static(n, i) asks DyC to
// specialize on n and to completely unroll the loop over i; the cache_one
// policy keeps a single checked entry (use cache_all to memoize many
// exponents, or cache_one_unchecked when the exponent can never change).
static const char *Source = R"(
int power(int base, int n) {
  int i;
  make_static(n, i : cache_one);
  int result = 1;
  for (i = 0; i < n; i = i + 1) {
    result = result * base;
  }
  return result;
}
)";

int main() {
  core::DycContext Ctx;
  std::vector<std::string> Errors;
  if (!Ctx.compile(Source, Errors)) {
    for (const std::string &E : Errors)
      fprintf(stderr, "error: %s\n", E.c_str());
    return 1;
  }

  auto Static = Ctx.buildStatic();
  auto Dynamic = Ctx.buildDynamic();

  int F = Static->findFunction("power");
  std::vector<Word> Args = {Word::fromInt(3), Word::fromInt(12)};

  Word S = Static->Machine->run(F, Args);
  Word D = Dynamic->Machine->run(F, Args); // specializes for n == 12
  printf("power(3, 12): static = %lld, dynamic = %lld\n",
         (long long)S.asInt(), (long long)D.asInt());

  printf("\nSpecialized code for n == 12 (the loop has been completely "
         "unrolled;\nmultiplies by the static induction variable folded "
         "away):\n\n%s\n",
         Dynamic->RT->disassembleRegion(0).c_str());

  // Time both per invocation on the deterministic machine.
  auto Time = [&](core::Executable &E) {
    uint64_t C0 = E.Machine->execCycles();
    for (int I = 0; I != 100; ++I)
      E.Machine->run(F, Args);
    return (E.Machine->execCycles() - C0) / 100;
  };
  uint64_t SC = Time(*Static), DC = Time(*Dynamic);
  printf("cycles per invocation: static %llu, dynamic %llu  (%.2fx)\n",
         (unsigned long long)SC, (unsigned long long)DC,
         (double)SC / (double)DC);
  printf("dynamic-compilation overhead: %llu cycles\n",
         (unsigned long long)Dynamic->Machine->dynCompCycles());

  // A second exponent triggers a fresh specialization; the cache keeps
  // both (cache_all policy).
  std::vector<Word> Args2 = {Word::fromInt(3), Word::fromInt(5)};
  printf("\npower(3, 5) = %lld (cache_one evicts and respecializes)\n",
         (long long)Dynamic->Machine->run(F, Args2).asInt());
  const runtime::RegionStats &St = Dynamic->RT->stats(0);
  printf("specializations: %llu, cache hits: %llu\n",
         (unsigned long long)St.SpecializationRuns,
         (unsigned long long)St.CacheHits);
  return 0;
}
