//===- tests/IRTest.cpp - IR construction/verifier/printer unit tests -------------===//

#include "ir/ConstEval.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <gtest/gtest.h>

using namespace dyc;
using namespace dyc::ir;

namespace {

TEST(IRBuilderTest, BuildsVerifiedFunction) {
  Module M;
  Function F;
  F.Name = "f";
  F.RetTy = Type::I64;
  Reg A = F.newReg(Type::I64, "a");
  F.NumParams = 1;
  F.newBlock("entry");
  IRBuilder B(F);
  Reg C = B.constI(5);
  Reg S = B.binary(Opcode::Add, A, C, "s");
  B.ret(S);
  int Idx = M.addFunction(std::move(F));
  EXPECT_EQ(verifyFunction(M.function(Idx), M), "");
}

TEST(IRBuilderTest, TypedRegistersAndNames) {
  Function F;
  F.Name = "t";
  Reg I = F.newReg(Type::I64, "count");
  Reg D = F.newReg(Type::F64);
  EXPECT_EQ(F.regType(I), Type::I64);
  EXPECT_EQ(F.regType(D), Type::F64);
  EXPECT_EQ(F.regName(I), "count");
  EXPECT_FALSE(F.regName(D).empty()); // generated name
}

TEST(VerifierTest, CatchesMissingTerminator) {
  Module M;
  Function F;
  F.Name = "bad";
  F.RetTy = Type::Void;
  Reg R = F.newReg(Type::I64);
  F.newBlock();
  Instruction C;
  C.Op = Opcode::ConstI;
  C.Ty = Type::I64;
  C.Dst = R;
  F.block(0).Instrs.push_back(C);
  int Idx = M.addFunction(std::move(F));
  EXPECT_NE(verifyFunction(M.function(Idx), M), "");
}

TEST(VerifierTest, CatchesTypeMismatches) {
  Module M;
  Function F;
  F.Name = "bad2";
  F.RetTy = Type::I64;
  Reg D = F.newReg(Type::F64);
  Reg I = F.newReg(Type::I64);
  F.newBlock();
  // fadd with an integer operand
  Instruction A = makeBinary(Opcode::FAdd, Type::F64, D, I, I);
  F.block(0).Instrs.push_back(A);
  Instruction R;
  R.Op = Opcode::Ret;
  R.Src1 = I;
  F.block(0).Instrs.push_back(R);
  int Idx = M.addFunction(std::move(F));
  EXPECT_NE(verifyFunction(M.function(Idx), M), "");
}

TEST(VerifierTest, CatchesBadBranchTargets) {
  Module M;
  Function F;
  F.Name = "bad3";
  F.RetTy = Type::Void;
  F.newBlock();
  Instruction Br;
  Br.Op = Opcode::Br;
  Br.TrueSucc = 99;
  F.block(0).Instrs.push_back(Br);
  int Idx = M.addFunction(std::move(F));
  EXPECT_NE(verifyFunction(M.function(Idx), M), "");
}

TEST(VerifierTest, CatchesStaticCallToImpureExternal) {
  Module M;
  M.declareExternal({"rand", 0, /*Pure=*/false, Type::F64});
  Function F;
  F.Name = "bad4";
  F.RetTy = Type::Void;
  Reg D = F.newReg(Type::F64);
  F.newBlock();
  Instruction C;
  C.Op = Opcode::CallExt;
  C.Ty = Type::F64;
  C.Dst = D;
  C.Callee = 0;
  C.StaticCall = true; // illegal on an impure external
  F.block(0).Instrs.push_back(C);
  Instruction R;
  R.Op = Opcode::Ret;
  F.block(0).Instrs.push_back(R);
  int Idx = M.addFunction(std::move(F));
  EXPECT_NE(verifyFunction(M.function(Idx), M), "");
}

TEST(InstructionTest, UsesAndDefs) {
  Instruction I = makeBinary(Opcode::Add, Type::I64, 5, 1, 2);
  std::vector<Reg> Uses;
  I.appendUses(Uses);
  EXPECT_EQ(Uses, (std::vector<Reg>{1, 2}));
  EXPECT_TRUE(I.definesReg());
  EXPECT_FALSE(I.isTerminator());

  Instruction S;
  S.Op = Opcode::Store;
  S.Src1 = 3;
  S.Src2 = 4;
  Uses.clear();
  S.appendUses(Uses);
  EXPECT_EQ(Uses, (std::vector<Reg>{3, 4}));
  EXPECT_FALSE(S.definesReg());

  Instruction MS;
  MS.Op = Opcode::MakeStatic;
  MS.AnnotVars = {7, 8};
  Uses.clear();
  MS.appendUses(Uses); // promotions read the annotated variables
  EXPECT_EQ(Uses, (std::vector<Reg>{7, 8}));
}

TEST(PrinterTest, RendersInstructions) {
  Instruction I = makeBinary(Opcode::FMul, Type::F64, 2, 0, 1);
  EXPECT_EQ(I.toString(), "r2 = fmul r0, r1");
  Instruction L;
  L.Op = Opcode::Load;
  L.Ty = Type::F64;
  L.Dst = 1;
  L.Src1 = 0;
  L.StaticLoad = true;
  EXPECT_EQ(L.toString(), "r1 = load@ [r0 + 0]");
  Instruction MS;
  MS.Op = Opcode::MakeStatic;
  MS.AnnotVars = {3};
  MS.Policy = CachePolicy::CacheOneUnchecked;
  EXPECT_EQ(MS.toString(), "make_static(r3) : cache_one_unchecked");
}

TEST(ConstEvalTest, MatchesCppSemantics) {
  Word Out;
  ASSERT_TRUE(evalPureOp(Opcode::Div, Word::fromInt(-7), Word::fromInt(2),
                         Out));
  EXPECT_EQ(Out.asInt(), -3); // C truncation toward zero
  ASSERT_TRUE(evalPureOp(Opcode::Rem, Word::fromInt(-7), Word::fromInt(2),
                         Out));
  EXPECT_EQ(Out.asInt(), -1);
  EXPECT_FALSE(evalPureOp(Opcode::Div, Word::fromInt(1), Word::fromInt(0),
                          Out));
  ASSERT_TRUE(evalPureOp(Opcode::FToI, Word::fromFloat(-2.9), Word(), Out));
  EXPECT_EQ(Out.asInt(), -2);
  ASSERT_TRUE(evalPureOp(Opcode::Shl, Word::fromInt(1), Word::fromInt(66),
                         Out));
  EXPECT_EQ(Out.asInt(), 4); // shift amounts mask to 6 bits, as in the VM
}

TEST(ModuleTest, LookupAndDuplicates) {
  Module M;
  Function F;
  F.Name = "alpha";
  F.RetTy = Type::Void;
  F.newBlock();
  Instruction R;
  R.Op = Opcode::Ret;
  F.block(0).Instrs.push_back(R);
  M.addFunction(std::move(F));
  EXPECT_EQ(M.findFunction("alpha"), 0);
  EXPECT_EQ(M.findFunction("beta"), -1);
  M.declareExternal({"cos", 1, true, Type::F64});
  EXPECT_EQ(M.findExternal("cos"), 0);
  EXPECT_EQ(M.findExternal("sin"), -1);
}

} // namespace
