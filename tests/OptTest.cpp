//===- tests/OptTest.cpp - static optimizer unit tests ----------------------------===//

#include "analysis/CFG.h"
#include "frontend/Lower.h"
#include "opt/Passes.h"

#include <gtest/gtest.h>

using namespace dyc;
using namespace dyc::ir;

namespace {

ir::Module lower(const std::string &Src) {
  ir::Module M;
  std::vector<std::string> Errors;
  bool OK = frontend::compileMiniC(Src, M, Errors);
  EXPECT_TRUE(OK) << (Errors.empty() ? "" : Errors[0]);
  return M;
}

size_t countOp(const Function &F, Opcode Op) {
  size_t N = 0;
  for (const BasicBlock &B : F.Blocks)
    for (const Instruction &I : B.Instrs)
      if (I.Op == Op)
        ++N;
  return N;
}

TEST(ConstantFold, FoldsArithmeticChains) {
  ir::Module M = lower("int f() { int a = 6; int b = 7; return a * b; }");
  Function &F = M.function(0);
  opt::runStaticOptimizations(F, M);
  EXPECT_EQ(verifyFunction(F, M), "");
  EXPECT_EQ(countOp(F, Opcode::Mul), 0u);
  // The surviving value is the folded 42.
  bool Found42 = false;
  for (const BasicBlock &B : F.Blocks)
    for (const Instruction &I : B.Instrs)
      if (I.Op == Opcode::ConstI && I.Imm == 42)
        Found42 = true;
  EXPECT_TRUE(Found42);
}

TEST(ConstantFold, FoldsBranchesOnConstants) {
  ir::Module M = lower(
      "int f(int x) { if (3 < 2) { return x; } return x + 1; }");
  Function &F = M.function(0);
  opt::runStaticOptimizations(F, M);
  EXPECT_EQ(verifyFunction(F, M), "");
  // The condbr on a constant folds into an unconditional branch.
  for (const BasicBlock &B : F.Blocks)
    if (!B.Instrs.empty() && B.Instrs.back().Op == Opcode::CondBr) {
      std::vector<Reg> Uses;
      B.Instrs.back().appendUses(Uses);
      // Any remaining condbr must depend on the parameter, not constants.
      FAIL() << "constant branch survived optimization";
    }
}

TEST(ConstantFold, DoesNotFoldDivideByZero) {
  ir::Module M = lower("int f() { int a = 1; int b = 0; return a / b; }");
  Function &F = M.function(0);
  opt::runStaticOptimizations(F, M);
  EXPECT_EQ(verifyFunction(F, M), "");
  EXPECT_EQ(countOp(F, Opcode::Div), 1u); // faults at run time, as in C
}

TEST(CopyProp, ForwardsThroughTemps) {
  ir::Module M = lower("int f(int a) { int t = a; int u = t; return u; }");
  Function &F = M.function(0);
  opt::runStaticOptimizations(F, M);
  EXPECT_EQ(verifyFunction(F, M), "");
  // Everything collapses into `ret a`.
  const Instruction &T = F.block(0).terminator();
  ASSERT_EQ(T.Op, Opcode::Ret);
  EXPECT_EQ(T.Src1, 0u);
}

TEST(CopyProp, RespectsAnnotationBarriers) {
  ir::Module M = lower("int f(int a) {\n"
                       "  int t = a;\n"
                       "  make_static(t);\n"
                       "  return t + 1;\n"
                       "}");
  Function &F = M.function(0);
  opt::runStaticOptimizations(F, M);
  EXPECT_EQ(verifyFunction(F, M), "");
  // The use of t after make_static(t) must still read t, not a: replacing
  // it would bypass the promotion.
  Reg AnnotVar = NoReg;
  bool UseIntact = false;
  for (const BasicBlock &B : F.Blocks)
    for (const Instruction &I : B.Instrs) {
      if (I.Op == Opcode::MakeStatic)
        AnnotVar = I.AnnotVars[0];
      if (I.Op == Opcode::Add && AnnotVar != NoReg &&
          (I.Src1 == AnnotVar || I.Src2 == AnnotVar))
        UseIntact = true;
    }
  EXPECT_TRUE(UseIntact);
}

TEST(DCE, RemovesDeadPureCode) {
  ir::Module M = lower(
      "int f(int a) { int dead = a * 17; int alsodead = dead + 1; "
      "return a; }");
  Function &F = M.function(0);
  opt::runStaticOptimizations(F, M);
  EXPECT_EQ(verifyFunction(F, M), "");
  EXPECT_EQ(countOp(F, Opcode::Mul), 0u);
}

TEST(DCE, KeepsSideEffects) {
  ir::Module M = lower("extern double sin(double);\n" // impure by default
                       "void f(double* p, double x) {\n"
                       "  p[0] = x;\n"
                       "  sin(x);\n"
                       "}");
  Function &F = M.function(0);
  opt::runStaticOptimizations(F, M);
  EXPECT_EQ(countOp(F, Opcode::Store), 1u);
  EXPECT_EQ(countOp(F, Opcode::CallExt), 1u);
}

TEST(DCE, RemovesDeadPureCalls) {
  ir::Module M = lower("pure int sq(int x) { return x * x; }\n"
                       "int f(int a) { sq(a); return a; }");
  Function &F = M.function(M.findFunction("f"));
  opt::runStaticOptimizations(F, M);
  EXPECT_EQ(countOp(F, Opcode::Call), 0u);
}

TEST(CoalesceMoves, EliminatesLoweringTemps) {
  ir::Module M = lower("int f(int a, int b) { int s = a + b; return s; }");
  Function &F = M.function(0);
  opt::runStaticOptimizations(F, M);
  EXPECT_EQ(verifyFunction(F, M), "");
  EXPECT_EQ(countOp(F, Opcode::Mov), 0u);
}

TEST(SimplifyCFG, ThreadsTrivialJumpChains) {
  ir::Module M = lower("int f(int a) {\n"
                       "  if (a) { } else { }\n"
                       "  if (a) { } else { }\n"
                       "  return a;\n"
                       "}");
  Function &F = M.function(0);
  opt::runStaticOptimizations(F, M);
  EXPECT_EQ(verifyFunction(F, M), "");
  // Both empty diamonds collapse; entry reaches ret without detours.
  analysis::CFG G(F);
  size_t Reachable = G.rpo().size();
  EXPECT_LE(Reachable, 2u);
}

TEST(Optimizer, PreservesSemantics) {
  // Run the same source optimized and unoptimized through the VM layers
  // indirectly: optimization must be idempotent and verified.
  ir::Module M = lower(
      "int collatz(int n) {\n"
      "  int steps = 0;\n"
      "  while (n != 1) {\n"
      "    if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }\n"
      "    steps = steps + 1;\n"
      "  }\n"
      "  return steps;\n"
      "}");
  Function &F = M.function(0);
  unsigned First = opt::runStaticOptimizations(F, M);
  (void)First;
  unsigned Second = opt::runStaticOptimizations(F, M);
  EXPECT_EQ(Second, 0u) << "optimizer failed to reach a fixpoint";
  EXPECT_EQ(verifyFunction(F, M), "");
}

} // namespace
