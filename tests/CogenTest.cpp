//===- tests/CogenTest.cpp - generating-extension and lowering unit tests ---------===//

#include "bta/BTAnalysis.h"
#include "cogen/CompilerGenerator.h"
#include "cogen/Lowering.h"
#include "frontend/Lower.h"
#include "opt/Passes.h"

#include <gtest/gtest.h>

using namespace dyc;
using namespace dyc::cogen;

namespace {

struct Built {
  ir::Module M;
  vm::Program Prog;
  std::vector<LoweredFunction> Lowered;
  std::vector<bta::RegionInfo> Regions;
  std::vector<GenExtFunction> GenExts;
};

/// Runs the full static half of the pipeline on \p Src.
std::unique_ptr<Built> buildAll(const std::string &Src,
                                OptFlags Flags = OptFlags()) {
  auto B = std::make_unique<Built>();
  std::vector<std::string> Errors;
  EXPECT_TRUE(frontend::compileMiniC(Src, B->M, Errors))
      << (Errors.empty() ? "" : Errors[0]);
  for (size_t I = 0; I != B->M.numFunctions(); ++I)
    bta::normalizeAnnotations(B->M.function(static_cast<int>(I)));
  opt::runStaticOptimizations(B->M);

  std::vector<int> Ordinals(B->M.numFunctions(), -1);
  int Next = 0;
  for (size_t I = 0; I != B->M.numFunctions(); ++I) {
    B->Regions.push_back(bta::analyzeFunction(
        B->M.function(static_cast<int>(I)), B->M, Flags));
    B->Regions.back().FuncIdx = static_cast<int>(I);
    if (!B->Regions.back().Contexts.empty())
      Ordinals[I] = Next++;
  }
  cogen::bindExternals(B->M, B->Prog);
  B->Lowered = cogen::lowerModule(B->M, B->Prog, /*WithRegions=*/true,
                                  B->Regions, Ordinals);
  for (size_t I = 0; I != B->M.numFunctions(); ++I)
    if (Ordinals[I] >= 0)
      B->GenExts.push_back(cogen::buildGenExt(
          B->M.function(static_cast<int>(I)), B->M,
          std::move(B->Regions[I]), B->Lowered[I], Flags));
  return B;
}

const char *MixedSrc = R"(
double f(double* w, double* img, int k, double x) {
  make_static(w, k);
  double weight = w@[k];
  double t = img[k] * weight;
  double u = x * 2.0;
  return t + u;
}
)";

TEST(Cogen, ClassifiesSetupVsEmit) {
  auto B = buildAll(MixedSrc);
  ASSERT_EQ(B->GenExts.size(), 1u);
  const GenExtFunction &GX = B->GenExts[0];
  unsigned EvalLoads = 0, Emits = 0, Evals = 0;
  for (const GenBlock &GB : GX.Blocks)
    for (const SetupOp &Op : GB.Ops) {
      if (Op.K == SetupOp::EvalLoad)
        ++EvalLoads;
      if (Op.K == SetupOp::EmitInstr)
        ++Emits;
      if (Op.K == SetupOp::Eval || Op.K == SetupOp::EvalConst)
        ++Evals;
    }
  EXPECT_EQ(EvalLoads, 1u); // the @ load of w[k]
  EXPECT_GE(Emits, 3u);     // img load, fmul(s), fadd...
  EXPECT_GE(Evals, 1u);     // address arithmetic w + k
}

TEST(Cogen, ZcpPlansMarkSingleStaticOperandOps) {
  auto B = buildAll(MixedSrc);
  const GenExtFunction &GX = B->GenExts[0];
  bool SawZcpCand = false;
  for (const GenBlock &GB : GX.Blocks)
    for (const SetupOp &Op : GB.Ops)
      if (Op.K == SetupOp::EmitInstr && Op.Op == ir::Opcode::FMul &&
          Op.ZcpCand) {
        SawZcpCand = true;
        // Exactly one operand must be static.
        EXPECT_NE(Op.A.Static, Op.B.Static);
      }
  EXPECT_TRUE(SawZcpCand);
}

TEST(Cogen, DeferabilityRequiresBlockDeadResult) {
  auto B = buildAll(MixedSrc);
  const GenExtFunction &GX = B->GenExts[0];
  for (const GenBlock &GB : GX.Blocks)
    for (const SetupOp &Op : GB.Ops) {
      if (Op.K != SetupOp::EmitInstr)
        continue;
      if (Op.Op == ir::Opcode::Store) {
        EXPECT_FALSE(Op.Deferrable) << "stores are never deferrable";
      }
    }
}

TEST(Cogen, DaeFlagOffDisablesDeferral) {
  OptFlags Fl;
  Fl.DeadAssignmentElimination = false;
  auto B = buildAll(MixedSrc, Fl);
  for (const GenBlock &GB : B->GenExts[0].Blocks)
    for (const SetupOp &Op : GB.Ops)
      if (Op.K == SetupOp::EmitInstr) {
        EXPECT_FALSE(Op.Deferrable);
      }
}

TEST(Cogen, RegionCarriesFrameLayoutAndTypes) {
  auto B = buildAll(MixedSrc);
  const GenExtFunction &GX = B->GenExts[0];
  const ir::Function &F = B->M.function(GX.FuncIdx);
  EXPECT_EQ(GX.RegTypes.size(), F.numRegs());
  EXPECT_GT(GX.NumRegs, F.numRegs()); // staging + scratch
  EXPECT_EQ(GX.BlockPC.size(), F.numBlocks());
}

//===----------------------------------------------------------------------===//
// Lowering.
//===----------------------------------------------------------------------===//

TEST(Lowering, FoldsConstantsIntoImmediateForms) {
  auto B = buildAll("int f(int x) { return x * 3 + 7; }");
  const vm::CodeObject &CO = B->Prog.function(0);
  bool SawMulI = false, SawAddI = false, SawConst = false;
  for (const vm::Instr &I : CO.Code) {
    if (I.Opcode == vm::Op::MulI && I.Imm == 3)
      SawMulI = true;
    if (I.Opcode == vm::Op::AddI && I.Imm == 7)
      SawAddI = true;
    if (I.Opcode == vm::Op::ConstI)
      SawConst = true;
  }
  EXPECT_TRUE(SawMulI);
  EXPECT_TRUE(SawAddI);
  EXPECT_FALSE(SawConst) << "folded constants must not be materialized";
}

TEST(Lowering, ExpandsPow2DivExactly) {
  auto B = buildAll("int f(int x) { return x / 8 + x % 4; }");
  const vm::CodeObject &CO = B->Prog.function(0);
  unsigned Divs = 0, Shifts = 0;
  for (const vm::Instr &I : CO.Code) {
    if (I.Opcode == vm::Op::Div || I.Opcode == vm::Op::DivI ||
        I.Opcode == vm::Op::Rem || I.Opcode == vm::Op::RemI)
      ++Divs;
    if (I.Opcode == vm::Op::ShrI || I.Opcode == vm::Op::ShlI)
      ++Shifts;
  }
  EXPECT_EQ(Divs, 0u);
  EXPECT_GE(Shifts, 3u);
}

TEST(Lowering, PicksMovKindByType) {
  auto B = buildAll("double f(double x, int p) {\n"
                    "  double a = x;\n"
                    "  int b = p;\n"
                    "  if (p) { a = a + 1.0; b = b + 1; }\n"
                    "  return a + (double)b;\n"
                    "}");
  const vm::CodeObject &CO = B->Prog.function(0);
  for (const vm::Instr &I : CO.Code) {
    // No checks on counts here — just that both kinds exist and the
    // verifier-equivalent invariant holds: FMov only between fp values is
    // untestable at this level, so assert the program still runs.
    (void)I;
  }
  vm::VM M(B->Prog);
  Word R = M.run(0, {Word::fromFloat(1.5), Word::fromInt(1)});
  EXPECT_DOUBLE_EQ(R.asFloat(), 2.5 + 2.0);
}

TEST(Lowering, EmitsEnterRegionForAnnotatedBlocks) {
  auto B = buildAll("int f(int n) { make_static(n); return n * 2; }");
  const vm::CodeObject &CO = B->Prog.function(0);
  unsigned Enters = 0;
  for (const vm::Instr &I : CO.Code)
    if (I.Opcode == vm::Op::EnterRegion)
      ++Enters;
  EXPECT_EQ(Enters, 1u);
}

TEST(Lowering, StaticCompileIgnoresAnnotations) {
  ir::Module M;
  std::vector<std::string> Errors;
  ASSERT_TRUE(frontend::compileMiniC(
      "int f(int n) { make_static(n); return n * 2; }", M, Errors));
  for (size_t I = 0; I != M.numFunctions(); ++I)
    bta::normalizeAnnotations(M.function(static_cast<int>(I)));
  opt::runStaticOptimizations(M);
  vm::Program Prog;
  cogen::bindExternals(M, Prog);
  std::vector<bta::RegionInfo> Empty(M.numFunctions());
  std::vector<int> NoOrd(M.numFunctions(), -1);
  cogen::lowerModule(M, Prog, /*WithRegions=*/false, Empty, NoOrd);
  for (const vm::Instr &I : Prog.function(0).Code)
    EXPECT_NE(I.Opcode, vm::Op::EnterRegion);
  vm::VM VMach(Prog);
  EXPECT_EQ(VMach.run(0, {Word::fromInt(21)}).asInt(), 42);
}

TEST(Lowering, CallsStageArgumentsContiguously) {
  auto B = buildAll("int g(int a, int b, int c) { return a + b - c; }\n"
                    "int f(int x) { return g(x, 5, x * 2); }");
  int FIdx = B->M.findFunction("f");
  const vm::CodeObject &CO = B->Prog.function(FIdx);
  bool SawCall = false;
  for (const vm::Instr &I : CO.Code)
    if (I.Opcode == vm::Op::Call) {
      SawCall = true;
      EXPECT_EQ(I.C, 3u);
      EXPECT_EQ(I.B, B->Lowered[FIdx].StageBase);
    }
  EXPECT_TRUE(SawCall);
  vm::VM M(B->Prog);
  EXPECT_EQ(M.run(FIdx, {Word::fromInt(10)}).asInt(), 10 + 5 - 20);
}

TEST(Lowering, BindExternalsChecksNames) {
  ir::Module M;
  M.declareExternal({"no_such_external", 1, true, ir::Type::F64});
  vm::Program Prog;
  EXPECT_DEATH(cogen::bindExternals(M, Prog), "no host implementation");
}

} // namespace
