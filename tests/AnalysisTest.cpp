//===- tests/AnalysisTest.cpp - dataflow analysis unit tests ----------------------===//

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "analysis/ReachingDefs.h"
#include "frontend/Lower.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace dyc;
using namespace dyc::ir;

namespace {

/// A diamond with a loop on one side:
///   bb0 -> bb1 -> bb2 -> bb1 (latch) ; bb1 -> bb3 ; bb0 -> bb3
Function makeLoopDiamond() {
  Function F;
  F.Name = "g";
  F.RetTy = Type::I64;
  Reg P = F.newReg(Type::I64, "p");
  F.NumParams = 1;
  BlockId B0 = F.newBlock();
  BlockId B1 = F.newBlock();
  BlockId B2 = F.newBlock();
  BlockId B3 = F.newBlock();
  IRBuilder B(F);
  B.setInsertPoint(B0);
  B.condBr(P, B1, B3);
  B.setInsertPoint(B1);
  Reg C = B.binary(Opcode::CmpLt, P, P);
  B.condBr(C, B2, B3);
  B.setInsertPoint(B2);
  Reg X = B.binary(Opcode::Add, P, P, "x");
  (void)X;
  B.br(B1);
  B.setInsertPoint(B3);
  B.ret(P);
  return F;
}

TEST(CFGTest, PredsSuccsRPO) {
  Function F = makeLoopDiamond();
  analysis::CFG G(F);
  EXPECT_EQ(G.succs(0), (std::vector<BlockId>{1, 3}));
  EXPECT_EQ(G.succs(2), (std::vector<BlockId>{1}));
  EXPECT_EQ(G.preds(1).size(), 2u); // from bb0 and the latch bb2
  EXPECT_EQ(G.preds(3).size(), 2u);
  EXPECT_EQ(G.rpo().front(), 0u);
  EXPECT_TRUE(G.isReachable(3));
  // RPO visits a block before its non-backedge successors.
  EXPECT_LT(G.rpoIndex(0), G.rpoIndex(1));
  EXPECT_LT(G.rpoIndex(1), G.rpoIndex(2));
}

TEST(CFGTest, UnreachableBlocksExcluded) {
  Function F;
  F.Name = "u";
  Reg R0 = F.newReg(Type::I64);
  BlockId B0 = F.newBlock();
  BlockId Dead = F.newBlock();
  IRBuilder B(F);
  B.setInsertPoint(B0);
  Instruction C;
  C.Op = Opcode::ConstI;
  C.Ty = Type::I64;
  C.Dst = R0;
  C.Imm = 0;
  F.block(B0).Instrs.push_back(C);
  B.ret(R0);
  F.RetTy = Type::I64;
  B.setInsertPoint(Dead);
  B.br(Dead);
  analysis::CFG G(F);
  EXPECT_FALSE(G.isReachable(Dead));
  EXPECT_EQ(G.rpo().size(), 1u);
}

TEST(DominatorsTest, LoopDiamond) {
  Function F = makeLoopDiamond();
  analysis::CFG G(F);
  analysis::Dominators D(F, G);
  EXPECT_TRUE(D.dominates(0, 1));
  EXPECT_TRUE(D.dominates(0, 3));
  EXPECT_TRUE(D.dominates(1, 2));
  EXPECT_FALSE(D.dominates(1, 3)); // bb3 reachable directly from bb0
  EXPECT_FALSE(D.dominates(2, 1));
  EXPECT_EQ(D.idom(2), 1u);
  EXPECT_EQ(D.idom(3), 0u);
}

TEST(LoopInfoTest, FindsNaturalLoop) {
  Function F = makeLoopDiamond();
  analysis::CFG G(F);
  analysis::Dominators D(F, G);
  analysis::LoopInfo LI(F, G, D);
  ASSERT_EQ(LI.loops().size(), 1u);
  const analysis::Loop &L = LI.loops()[0];
  EXPECT_EQ(L.Header, 1u);
  EXPECT_EQ(L.Latches, (std::vector<BlockId>{2}));
  EXPECT_TRUE(L.contains(2));
  EXPECT_FALSE(L.contains(3));
  EXPECT_TRUE(LI.inAnyLoop(2));
  EXPECT_FALSE(LI.inAnyLoop(0));
  // x is assigned inside the loop -> loop-variant.
  std::vector<Reg> Variant = LI.loopVariantRegs(F, 1);
  EXPECT_FALSE(Variant.empty());
}

/// Lowers MiniC and returns the module (asserts success).
ir::Module lower(const std::string &Src) {
  ir::Module M;
  std::vector<std::string> Errors;
  bool OK = frontend::compileMiniC(Src, M, Errors);
  EXPECT_TRUE(OK) << (Errors.empty() ? "" : Errors[0]);
  return M;
}

TEST(LivenessTest, ParamsAndAccumulators) {
  ir::Module M = lower("int f(int a, int b) {\n"
                       "  int s = 0;\n"
                       "  int i;\n"
                       "  for (i = 0; i < a; i = i + 1) { s = s + b; }\n"
                       "  return s;\n"
                       "}");
  const Function &F = M.function(0);
  analysis::CFG G(F);
  analysis::Liveness LV(F, G);
  // a (r0) and b (r1) are live into the entry block.
  EXPECT_TRUE(LV.liveIn(0).test(0));
  EXPECT_TRUE(LV.liveIn(0).test(1));
  // At the loop header, the accumulator s (r2) is live.
  bool SomewhereLive = false;
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    if (!G.succs(B).empty() && LV.liveIn(B).test(2))
      SomewhereLive = true;
  EXPECT_TRUE(SomewhereLive);
}

TEST(LivenessTest, LiveBeforeWalksBackwards) {
  ir::Module M = lower("int f(int a) { int t = a + 1; return t; }");
  const Function &F = M.function(0);
  analysis::CFG G(F);
  analysis::Liveness LV(F, G);
  // Before instruction 0 of the entry block, the parameter is live.
  BitVector L = LV.liveBefore(F, 0, 0);
  EXPECT_TRUE(L.test(0));
}

TEST(ReachingDefsTest, UniqueDefThroughControlFlow) {
  ir::Module M = lower("int f(int a, int p) {\n"
                       "  int x = 5;\n"
                       "  if (p) { a = x + 1; } else { a = x + 2; }\n"
                       "  return a + x;\n"
                       "}");
  const Function &F = M.function(0);
  analysis::CFG G(F);
  analysis::ReachingDefs RD(F, G);
  // In the return block, x (a single definition) reaches uniquely...
  BlockId RetBlock = NoBlock;
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    if (!F.block(B).Instrs.empty() &&
        F.block(B).terminator().Op == Opcode::Ret)
      RetBlock = B;
  ASSERT_NE(RetBlock, NoBlock);
  Reg X = 2; // params occupy r0/r1; x is the first local
  EXPECT_GE(RD.uniqueReachingDef(F, RetBlock, 0, X), 0);
  // ...while a (two definitions) does not.
  EXPECT_EQ(RD.uniqueReachingDef(F, RetBlock, 0, 0), -1);
}

TEST(ReachingDefsTest, ParameterPseudoDefs) {
  ir::Module M = lower("int f(int a) { return a; }");
  const Function &F = M.function(0);
  analysis::CFG G(F);
  analysis::ReachingDefs RD(F, G);
  int Def = RD.uniqueReachingDef(F, 0, 0, 0);
  ASSERT_GE(Def, 0);
  EXPECT_EQ(RD.defSites()[static_cast<size_t>(Def)].InstrIdx, 0xffffffffu);
}

} // namespace
