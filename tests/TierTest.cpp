//===- tests/TierTest.cpp - Tiered execution tests --------------------------------===//
//
// Acceptance tests for the tier controller and the asynchronous promotion
// path: a synchronously-installing tiered server is bit-identical to the
// eager MissPolicy::Block configuration (cycles, counters, and generated
// chains) on the paper's workloads under both engines and both backends;
// realistic thresholds converge to byte-identical chains with identical
// steady-state costs; OSR entry picks a freshly installed chain up at a
// back edge mid-loop, not at the next call; and eviction racing a
// promotion stays sound.
//
//===----------------------------------------------------------------------===//

#include "core/Harness.h"
#include "server/SpecServer.h"
#include "tier/TierController.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

using namespace dyc;
using server::MissPolicy;
using server::ServerConfig;
using server::SpecServer;

namespace {

std::unique_ptr<core::DycContext> compile(const std::string &Src) {
  auto Ctx = std::make_unique<core::DycContext>();
  std::vector<std::string> Errors;
  bool OK = Ctx->compile(Src, Errors);
  EXPECT_TRUE(OK) << (Errors.empty() ? "" : Errors[0]);
  return Ctx;
}

// Triangular-sum region: f(n) = 0 + 1 + ... + n-1, one specialization per
// distinct n under cache_all. Completely unrolled (i is static), so it has
// no OSR entry points — the tiers and counters are what is under test.
const char *SumSrc = "int f(int n) {\n"
                     "  int i;\n"
                     "  make_static(n, i : cache_all);\n"
                     "  int s = 0;\n"
                     "  for (i = 0; i < n; i = i + 1) { s = s + i; }\n"
                     "  return s;\n"
                     "}";

int64_t triangular(int64_t N) { return N * (N - 1) / 2; }

// Dynamic-trip-count loop over a static multiplier: the loop head stays a
// single residual block (i is dynamic, no unrolling), so a chain installed
// mid-run exposes an OSR entry the spinning fallback frame can transfer to.
const char *LoopSrc = "int f(int n, int k) {\n"
                      "  make_static(k : cache_all);\n"
                      "  int i;\n"
                      "  int s = 0;\n"
                      "  for (i = 0; i < n; i = i + 1) { s = s + k + i; }\n"
                      "  return s;\n"
                      "}";

int64_t loopSum(int64_t N, int64_t K) { return N * K + triangular(N); }

/// Eager reference configuration: block on every miss, one worker.
ServerConfig eagerConfig() {
  ServerConfig Cfg;
  Cfg.NumWorkers = 1;
  Cfg.OnMiss = MissPolicy::Block;
  return Cfg;
}

/// Tiered flags with scripted thresholds.
OptFlags tieredFlags(uint32_t Warm, uint32_t Hot, bool Sync,
                     ExecBackend Backend = ExecBackend::Bytecode) {
  OptFlags Fl;
  Fl.Backend = Backend;
  Fl.Tier.WarmThreshold = Warm;
  Fl.Tier.HotThreshold = Hot;
  Fl.Tier.SyncInstall = Sync;
  return Fl;
}

struct RunTrace {
  std::vector<int64_t> Results;
  uint64_t ExecCycles = 0;
  uint64_t DynCompCycles = 0;
  uint64_t InstrsExecuted = 0;
  uint64_t ICacheHits = 0;
  uint64_t ICacheMisses = 0;
  std::vector<std::string> Disasm; ///< per-region chain dumps
};

/// Runs one client through \p Server: every key in \p Keys, \p Rounds
/// times, on the given engine. Captures results, the client's simulated
/// accounts, and the final per-region disassembly.
RunTrace runKeys(SpecServer &Server, int F, const std::vector<int64_t> &Keys,
                 unsigned Rounds, vm::VM::EngineKind Engine) {
  std::unique_ptr<vm::VM> Client = Server.makeClientVM();
  Client->Engine = Engine;
  RunTrace T;
  for (unsigned R = 0; R != Rounds; ++R)
    for (int64_t K : Keys)
      T.Results.push_back(
          Client->run(static_cast<uint32_t>(F), {Word::fromInt(K)}).asInt());
  T.ExecCycles = Client->execCycles();
  T.DynCompCycles = Client->dynCompCycles();
  T.InstrsExecuted = Client->instrsExecuted();
  T.ICacheHits = Client->icache().hits();
  T.ICacheMisses = Client->icache().misses();
  for (size_t Ord = 0; Ord != Server.numRegions(); ++Ord)
    T.Disasm.push_back(Server.disassembleRegion(Ord));
  return T;
}

/// Runs a workload's region function \p Invocations times on one client.
RunTrace runWorkload(SpecServer &Server, const workloads::Workload &W,
                     const workloads::WorkloadSetup &S, uint64_t Invocations,
                     vm::VM::EngineKind Engine) {
  std::unique_ptr<vm::VM> Client = Server.makeClientVM();
  Client->Engine = Engine;
  int F = Server.findFunction(W.RegionFunc);
  EXPECT_GE(F, 0) << W.Name;
  RunTrace T;
  for (uint64_t I = 0; I != Invocations; ++I)
    T.Results.push_back(
        Client->run(static_cast<uint32_t>(F), S.RegionArgs).asInt());
  T.ExecCycles = Client->execCycles();
  T.DynCompCycles = Client->dynCompCycles();
  T.InstrsExecuted = Client->instrsExecuted();
  T.ICacheHits = Client->icache().hits();
  T.ICacheMisses = Client->icache().misses();
  for (size_t Ord = 0; Ord != Server.numRegions(); ++Ord)
    T.Disasm.push_back(Server.disassembleRegion(Ord));
  return T;
}

void expectTracesEqual(const RunTrace &A, const RunTrace &B,
                       const std::string &What) {
  EXPECT_EQ(A.Results, B.Results) << What;
  EXPECT_EQ(A.ExecCycles, B.ExecCycles) << What;
  EXPECT_EQ(A.DynCompCycles, B.DynCompCycles) << What;
  EXPECT_EQ(A.InstrsExecuted, B.InstrsExecuted) << What;
  EXPECT_EQ(A.ICacheHits, B.ICacheHits) << What;
  EXPECT_EQ(A.ICacheMisses, B.ICacheMisses) << What;
  EXPECT_EQ(A.Disasm, B.Disasm) << What;
}

} // namespace

//===----------------------------------------------------------------------===//
// Bit-identity against eager specialization.
//===----------------------------------------------------------------------===//

// With thresholds at zero and synchronous installs, every miss takes the
// exact MissPolicy::Block code path — so a tiered run of each application
// workload must be bit-identical to the eager run: same results, same
// simulated accounts, same chains, same core server counters. Both
// engines, both backends.
TEST(Tier, SyncZeroThresholdsMatchesEagerOnWorkloads) {
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    if (W.IsKernel)
      continue;
    for (ExecBackend Backend :
         {ExecBackend::Bytecode, ExecBackend::Template}) {
      for (vm::VM::EngineKind Engine :
           {vm::VM::EngineKind::Legacy, vm::VM::EngineKind::Predecoded}) {
        std::string What =
            W.Name + (Backend == ExecBackend::Template ? "/template"
                                                       : "/bytecode") +
            (Engine == vm::VM::EngineKind::Legacy ? "/legacy" : "/predecoded");
        const uint64_t Invocations = 20;

        core::DycContext EagerCtx;
        core::compileWorkload(W, EagerCtx);
        workloads::WorkloadSetup Setup;
        ServerConfig ECfg = eagerConfig();
        ECfg.MemoryImage = [&](vm::VM &V) { Setup = W.Setup(V); };
        OptFlags EagerFl;
        EagerFl.Backend = Backend;
        auto Eager = EagerCtx.buildServer(EagerFl, std::move(ECfg));
        RunTrace ERun = runWorkload(*Eager, W, Setup, Invocations, Engine);

        core::DycContext TierCtx;
        core::compileWorkload(W, TierCtx);
        ServerConfig TCfg = eagerConfig();
        TCfg.MemoryImage = [&](vm::VM &V) { Setup = W.Setup(V); };
        auto Tiered = TierCtx.buildTiered(
            tieredFlags(0, 0, /*Sync=*/true, Backend), std::move(TCfg));
        RunTrace TRun = runWorkload(*Tiered, W, Setup, Invocations, Engine);

        expectTracesEqual(ERun, TRun, What);

        // Core service counters are unchanged by tiering; the tier
        // counters record what the controller saw.
        server::ServerStatsSnapshot ES = Eager->stats();
        server::ServerStatsSnapshot TS = Tiered->stats();
        EXPECT_EQ(ES.Dispatches, TS.Dispatches) << What;
        EXPECT_EQ(ES.CacheHits, TS.CacheHits) << What;
        EXPECT_EQ(ES.CacheMisses, TS.CacheMisses) << What;
        EXPECT_EQ(ES.SpecRuns, TS.SpecRuns) << What;
        EXPECT_EQ(ES.JobsEnqueued, TS.JobsEnqueued) << What;
        EXPECT_EQ(ES.Fallbacks, TS.Fallbacks) << What;
        EXPECT_FALSE(ES.TierEnabled) << What;
        EXPECT_TRUE(TS.TierEnabled) << What;
        EXPECT_EQ(TS.HotInstalls, TS.SpecRuns) << What;
        EXPECT_EQ(TS.ColdExecs, 0u) << What;
        EXPECT_EQ(TS.WarmExecs, 0u) << What;
      }
    }
  }
}

// Realistic thresholds with synchronous installs: the first misses run
// cold (single-stepped) and warm (predecoded) generic code, later misses
// install. Once every key is resident, the tiered server holds chains
// byte-identical to the eager server's and each further round costs
// exactly the same simulated cycles.
TEST(Tier, RealisticThresholdsConvergeToEagerSteadyState) {
  const std::vector<int64_t> Keys = {3, 5, 7, 9};

  auto EagerCtx = compile(SumSrc);
  auto Eager = EagerCtx->buildServer(OptFlags(), eagerConfig());
  int EF = Eager->findFunction("f");
  ASSERT_GE(EF, 0);

  auto TierCtx = compile(SumSrc);
  auto Tiered =
      TierCtx->buildTiered(tieredFlags(2, 4, /*Sync=*/true), eagerConfig());
  int TF = Tiered->findFunction("f");
  ASSERT_GE(TF, 0);

  std::unique_ptr<vm::VM> EClient = Eager->makeClientVM();
  std::unique_ptr<vm::VM> TClient = Tiered->makeClientVM();

  auto Round = [&](vm::VM &Client, int F) {
    std::vector<int64_t> R;
    for (int64_t K : Keys)
      R.push_back(
          Client.run(static_cast<uint32_t>(F), {Word::fromInt(K)}).asInt());
    return R;
  };

  // Warm-up: heat crosses cold -> warm -> hot; every key eventually
  // installs. Results are bit-identical in every tier.
  for (unsigned R = 0; R != 4; ++R) {
    std::vector<int64_t> ER = Round(*EClient, EF);
    std::vector<int64_t> TR = Round(*TClient, TF);
    EXPECT_EQ(ER, TR) << "round " << R;
    for (size_t I = 0; I != Keys.size(); ++I)
      EXPECT_EQ(ER[I], triangular(Keys[I]));
  }

  // Converged: same chains, byte for byte. Single-client misses arrive in
  // the same order in both servers, so chain creation order — and with it
  // every simulated code address — matches.
  EXPECT_EQ(Eager->disassembleRegion(0), Tiered->disassembleRegion(0));
  EXPECT_EQ(Eager->regionStats(0).SpecializationRuns,
            Tiered->regionStats(0).SpecializationRuns);

  // Steady state: per-round simulated cost is bit-identical from here on.
  for (unsigned R = 0; R != 3; ++R) {
    uint64_t EBefore = EClient->execCycles();
    uint64_t TBefore = TClient->execCycles();
    EXPECT_EQ(Round(*EClient, EF), Round(*TClient, TF));
    EXPECT_EQ(EClient->execCycles() - EBefore,
              TClient->execCycles() - TBefore)
        << "steady-state round " << R;
  }

  // The controller saw the transitions exactly once.
  server::ServerStatsSnapshot TS = Tiered->stats();
  EXPECT_TRUE(TS.TierEnabled);
  EXPECT_EQ(TS.WarmPromotions, 1u);
  EXPECT_EQ(TS.HotPromotions, 1u);
  EXPECT_EQ(TS.ColdExecs, 2u);  // misses 1-2 (heat 1, 2)
  EXPECT_EQ(TS.WarmExecs, 2u);  // misses 3-4 (heat 3, 4)
  EXPECT_EQ(TS.FallbacksNotRequested, 4u);
  runtime::RegionStats RS = Tiered->regionStats(0);
  EXPECT_TRUE(RS.TierEnabled);
  EXPECT_EQ(RS.ColdExecs, 2u);
  EXPECT_NE(RS.toString().find("cold=2"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Tier progression counters.
//===----------------------------------------------------------------------===//

// Distinct keys so every call misses: the per-region heat walks the region
// cold -> warm -> hot deterministically, and each counter lands exactly.
TEST(Tier, CountersProgressDeterministically) {
  auto Ctx = compile(SumSrc);
  OptFlags Fl = tieredFlags(1, 3, /*Sync=*/false);
  Fl.Tier.MaxInFlightCompiles = 0; // unlimited: no admission skips
  ServerConfig Cfg;
  Cfg.NumWorkers = 2;
  auto Server = Ctx->buildTiered(Fl, std::move(Cfg));
  int F = Server->findFunction("f");
  ASSERT_GE(F, 0);

  std::unique_ptr<vm::VM> Client = Server->makeClientVM();
  for (int64_t K = 1; K <= 10; ++K)
    EXPECT_EQ(Client->run(static_cast<uint32_t>(F), {Word::fromInt(K)})
                  .asInt(),
              triangular(K));
  Server->drain();

  server::ServerStatsSnapshot S = Server->stats();
  EXPECT_TRUE(S.TierEnabled);
  EXPECT_EQ(S.Dispatches, 10u);
  EXPECT_EQ(S.CacheMisses, 10u);
  EXPECT_EQ(S.ColdExecs, 1u);       // heat 1
  EXPECT_EQ(S.WarmExecs, 2u);       // heat 2, 3
  EXPECT_EQ(S.WarmPromotions, 1u);  // heat 2 crossed WarmThreshold
  EXPECT_EQ(S.HotPromotions, 1u);   // heat 4 crossed HotThreshold
  EXPECT_EQ(S.JobsEnqueued, 7u);    // heat 4..10, distinct keys
  EXPECT_EQ(S.HotInstalls, 7u);
  EXPECT_EQ(S.Fallbacks, 10u);      // async: every miss fell back
  EXPECT_EQ(S.FallbacksNotRequested, 3u); // cold/warm requested nothing
  EXPECT_EQ(S.FallbacksInFlight, 7u);
  EXPECT_EQ(S.FallbacksFailed, 0u);
  EXPECT_EQ(S.CompileQueueDepth, 0u); // drained
  // The invariant the split must keep.
  EXPECT_EQ(S.FallbacksInFlight + S.FallbacksFailed +
                S.FallbacksNotRequested,
            S.Fallbacks);

  // Once installed, re-running a key is a plain cache hit.
  EXPECT_EQ(Client->run(static_cast<uint32_t>(F), {Word::fromInt(9)})
                .asInt(),
            triangular(9));
  EXPECT_EQ(Server->stats().CacheHits, 1u);
}

//===----------------------------------------------------------------------===//
// OSR: mid-loop entry into a freshly installed chain.
//===----------------------------------------------------------------------===//

// The client enters a long dynamic-trip loop through the fallback path
// while the only worker is held; once released, the compile lands and the
// frame must pick the chain up at the loop back edge — within the same
// call, not on a later one.
TEST(Tier, OsrEntersMidLoop) {
  const int64_t N = 8000000, K = 7;

  auto Ctx = compile(LoopSrc);
  OptFlags Fl = tieredFlags(0, 0, /*Sync=*/false); // born hot, async
  ServerConfig Cfg;
  Cfg.NumWorkers = 1;
  Cfg.HoldCompiles = std::make_shared<std::atomic<bool>>(true);
  auto Hold = Cfg.HoldCompiles;
  auto Server = Ctx->buildTiered(Fl, std::move(Cfg));
  int F = Server->findFunction("f");
  ASSERT_GE(F, 0);

  std::unique_ptr<vm::VM> Client = Server->makeClientVM();
  int64_t Result = 0;
  std::thread Runner([&] {
    Result = Client
                 ->run(static_cast<uint32_t>(F),
                       {Word::fromInt(N), Word::fromInt(K)})
                 .asInt();
  });

  // Wait until the frame is demonstrably spinning at the armed back edge,
  // then let the compile land.
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (Server->stats().OsrPolls < 10 &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  EXPECT_GE(Server->stats().OsrPolls, 10u) << "frame never reached a poll";
  Hold->store(false, std::memory_order_release);
  Runner.join();
  Server->drain();

  EXPECT_EQ(Result, loopSum(N, K));

  server::ServerStatsSnapshot S = Server->stats();
  // One trap dispatch (the miss), no cache hit: the chain was entered at
  // the back edge inside that same call, not via a second dispatch.
  EXPECT_EQ(S.Dispatches, 1u);
  EXPECT_EQ(S.CacheMisses, 1u);
  EXPECT_EQ(S.CacheHits, 0u);
  EXPECT_EQ(S.OsrEntries, 1u);
  EXPECT_GE(S.OsrPolls, 10u);
  EXPECT_EQ(S.FallbacksInFlight, 1u);
  EXPECT_EQ(S.HotInstalls, 1u);
  runtime::RegionStats RS = Server->regionStats(0);
  EXPECT_EQ(RS.OsrEntries, 1u);
  EXPECT_NE(RS.toString().find("osr=1"), std::string::npos);

  // The next call with the same key is a plain hit — and bit-correct.
  EXPECT_EQ(Client
                ->run(static_cast<uint32_t>(F),
                      {Word::fromInt(100), Word::fromInt(K)})
                .asInt(),
            loopSum(100, K));
  EXPECT_EQ(Server->stats().CacheHits, 1u);
}

// OSR transfer must produce the same values the fallback would have: run
// the same call on a plain static build and compare.
TEST(Tier, OsrResultMatchesStatic) {
  const int64_t N = 3000000, K = 11;

  auto RefCtx = compile(LoopSrc);
  auto RefE = RefCtx->buildStatic();
  int64_t Expected =
      RefE->Machine
          ->run(static_cast<uint32_t>(RefE->findFunction("f")),
                {Word::fromInt(N), Word::fromInt(K)})
          .asInt();
  EXPECT_EQ(Expected, loopSum(N, K));

  auto Ctx = compile(LoopSrc);
  OptFlags Fl = tieredFlags(0, 0, /*Sync=*/false);
  ServerConfig Cfg;
  Cfg.NumWorkers = 1;
  auto Server = Ctx->buildTiered(Fl, std::move(Cfg));
  int F = Server->findFunction("f");

  // No hold: the compile races the loop. Whether the transfer happens on
  // this host is timing; the result must be right either way.
  std::unique_ptr<vm::VM> Client = Server->makeClientVM();
  EXPECT_EQ(Client
                ->run(static_cast<uint32_t>(F),
                      {Word::fromInt(N), Word::fromInt(K)})
                .asInt(),
            Expected);
  Server->drain();
}

//===----------------------------------------------------------------------===//
// Eviction racing promotion.
//===----------------------------------------------------------------------===//

// A one-entry budget forces every new key to evict the previous chain
// while other clients' compiles (and armed OSR watches) are still in
// flight. Results must stay bit-correct throughout, and the books must
// balance after a drain.
TEST(Tier, EvictionDuringPromotionStaysSound) {
  auto Ctx = compile(SumSrc);
  OptFlags Fl = tieredFlags(0, 0, /*Sync=*/false);
  Fl.Tier.MaxInFlightCompiles = 0;
  ServerConfig Cfg;
  Cfg.NumWorkers = 2;
  Cfg.Budget.MaxEntries = 1;
  auto Server = Ctx->buildTiered(Fl, std::move(Cfg));
  int F = Server->findFunction("f");
  ASSERT_GE(F, 0);

  constexpr unsigned NumThreads = 4, Rounds = 6;
  const std::vector<int64_t> Keys = {3, 4, 5, 6, 7, 8};
  std::vector<std::unique_ptr<vm::VM>> Clients;
  for (unsigned T = 0; T != NumThreads; ++T)
    Clients.push_back(Server->makeClientVM());

  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != NumThreads; ++T)
    Pool.emplace_back([&, T] {
      for (unsigned R = 0; R != Rounds; ++R)
        for (int64_t K : Keys)
          if (Clients[T]
                  ->run(static_cast<uint32_t>(F), {Word::fromInt(K)})
                  .asInt() != triangular(K))
            Failures.fetch_add(1, std::memory_order_relaxed);
    });
  for (std::thread &Th : Pool)
    Th.join();
  Server->drain();

  EXPECT_EQ(Failures.load(), 0u);
  server::ServerStatsSnapshot S = Server->stats();
  EXPECT_GT(S.Evictions, 0u) << "budget of one never evicted?";
  EXPECT_EQ(S.Dispatches, NumThreads * Rounds * Keys.size());
  EXPECT_EQ(S.FallbacksInFlight + S.FallbacksFailed +
                S.FallbacksNotRequested,
            S.Fallbacks);
  EXPECT_LE(Server->residentEntries(0), 1u);
}
