//===- tests/SpeculationTest.cpp - Speculative promotion subsystem ----------------===//
//
// End-to-end tests of the profile -> promote -> guard -> deopt -> demote
// loop: unannotated Table 3 kernels must converge to the same specialized
// chains an annotated build produces, recover most of its cycle savings,
// and deoptimize with bit-identical outputs (and eventual demotion) when
// the speculated values stop holding.
//
//===----------------------------------------------------------------------===//

#include "core/DycContext.h"
#include "core/Harness.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <memory>
#include <regex>
#include <string>
#include <vector>

using namespace dyc;
using workloads::Workload;
using workloads::WorkloadSetup;

namespace {

/// exit_region resume pcs address the *generic* code object, whose layout
/// differs between an annotated original (make_static mid-function) and a
/// synthesized twin (make_static at entry); they are not chain content.
std::string normalizeResume(const std::string &S) {
  return std::regex_replace(S, std::regex("resume @\\d+"), "resume @_");
}

enum class Mode { Static, Annotated, Speculative };

/// One built configuration of a workload. Heap-allocated and immovable:
/// the runtime references the context's module.
struct Built {
  core::DycContext Ctx;
  std::unique_ptr<core::Executable> E;
  WorkloadSetup S;
  int MainIdx = -1;
  int RegionIdx = -1;
};

std::unique_ptr<Built> build(const Workload &W, Mode M,
                             vm::VM::EngineKind Engine) {
  auto B = std::make_unique<Built>();
  core::compileWorkload(W, B->Ctx);
  switch (M) {
  case Mode::Static:
    B->E = B->Ctx.buildStatic();
    break;
  case Mode::Annotated:
    B->E = B->Ctx.buildDynamic();
    break;
  case Mode::Speculative:
    B->E = B->Ctx.buildSpeculative();
    break;
  }
  B->E->Machine->Engine = Engine;
  B->S = W.Setup(*B->E->Machine);
  B->MainIdx = B->E->findFunction(W.MainFunc);
  B->RegionIdx = B->E->findFunction(W.RegionFunc);
  EXPECT_GE(B->MainIdx, 0);
  EXPECT_GE(B->RegionIdx, 0);
  return B;
}

void expectSameOutput(const Built &A, const Built &B) {
  ASSERT_EQ(A.S.OutLen, B.S.OutLen);
  for (int64_t I = 0; I != A.S.OutLen; ++I)
    EXPECT_EQ(A.E->Machine->memory()[A.S.OutBase + I].Bits,
              B.E->Machine->memory()[B.S.OutBase + I].Bits)
        << "output word " << I;
}

const char *const Kernels[] = {"binary", "chebyshev", "dotproduct", "query",
                               "romberg"};

} // namespace

//===----------------------------------------------------------------------===//
// Convergence: one unannotated main run promotes the kernel function and
// produces exactly the chains the annotated build produces.
//===----------------------------------------------------------------------===//

TEST(Speculation, ConvergesToAnnotatedChains) {
  for (const char *Name : Kernels) {
    SCOPED_TRACE(Name);
    const Workload &W = workloads::workloadByName(Name);

    auto A = build(W, Mode::Annotated, vm::VM::EngineKind::Predecoded);
    Word RetA = A->E->Machine->run(static_cast<uint32_t>(A->MainIdx),
                                   A->S.MainArgs);

    auto P = build(W, Mode::Speculative, vm::VM::EngineKind::Predecoded);
    Word RetP = P->E->Machine->run(static_cast<uint32_t>(P->MainIdx),
                                   P->S.MainArgs);

    EXPECT_EQ(RetA.Bits, RetP.Bits);
    expectSameOutput(*A, *P);

    const speculate::SpeculativeRuntime &Spec = *P->E->Spec;
    EXPECT_GE(Spec.stats().Promotions, 1u);
    EXPECT_EQ(Spec.stats().Demotions, 0u);
    EXPECT_GT(Spec.stats().GuardHits, 0u);

    int SpecOrd = Spec.ordinalOf(static_cast<uint32_t>(P->RegionIdx));
    ASSERT_GE(SpecOrd, 0) << "kernel function was not promoted";
    int AnnOrd = A->E->regionOrdinalOf(W.RegionFunc);
    ASSERT_GE(AnnOrd, 0);

    std::string AnnDis = normalizeResume(
        A->E->RT->disassembleRegion(static_cast<size_t>(AnnOrd)));
    std::string SpecDis = normalizeResume(
        Spec.disassembleRegion(static_cast<size_t>(SpecOrd)));
    EXPECT_FALSE(AnnDis.empty());
    EXPECT_EQ(AnnDis, SpecDis);
  }
}

//===----------------------------------------------------------------------===//
// The speculated promotion recovers at least 80% of the annotated build's
// cycle savings over the static build (synthesis, profiling, and guard
// costs included; a few main runs amortize the warm-up).
//===----------------------------------------------------------------------===//

namespace {

uint64_t totalCost(Built &B, int Reps) {
  for (int I = 0; I != Reps; ++I)
    B.E->Machine->run(static_cast<uint32_t>(B.MainIdx), B.S.MainArgs);
  return B.E->Machine->execCycles() + B.E->Machine->dynCompCycles();
}

} // namespace

TEST(Speculation, RecoversMostAnnotatedSavings) {
  // Enough main runs to amortize the one-time warm-up (HotCalls generic
  // executions plus the synthesis charge); steady state the speculative
  // build pays only the per-call sampling and guard cycles.
  const int Reps = 24;
  for (const char *Name : Kernels) {
    SCOPED_TRACE(Name);
    const Workload &W = workloads::workloadByName(Name);
    auto S = build(W, Mode::Static, vm::VM::EngineKind::Predecoded);
    auto A = build(W, Mode::Annotated, vm::VM::EngineKind::Predecoded);
    auto P = build(W, Mode::Speculative, vm::VM::EngineKind::Predecoded);
    uint64_t CS = totalCost(*S, Reps);
    uint64_t CA = totalCost(*A, Reps);
    uint64_t CP = totalCost(*P, Reps);
    expectSameOutput(*S, *P);
    ASSERT_LT(CA, CS) << "annotated build shows no savings to recover";
    double SavedA = static_cast<double>(CS - CA);
    double SavedP = CP < CS ? static_cast<double>(CS - CP) : 0.0;
    EXPECT_GE(SavedP, 0.8 * SavedA)
        << "static " << CS << " annotated " << CA << " speculative " << CP;
  }
}

//===----------------------------------------------------------------------===//
// Engine parity: the whole speculative lifecycle is simulated-
// deterministic, so both VM engines produce bit-identical counters.
//===----------------------------------------------------------------------===//

TEST(Speculation, EngineParity) {
  for (const char *Name : {"query", "dotproduct"}) {
    SCOPED_TRACE(Name);
    const Workload &W = workloads::workloadByName(Name);
    auto L = build(W, Mode::Speculative, vm::VM::EngineKind::Legacy);
    auto P = build(W, Mode::Speculative, vm::VM::EngineKind::Predecoded);
    for (int I = 0; I != 3; ++I) {
      Word RL = L->E->Machine->run(static_cast<uint32_t>(L->MainIdx),
                                   L->S.MainArgs);
      Word RP = P->E->Machine->run(static_cast<uint32_t>(P->MainIdx),
                                   P->S.MainArgs);
      EXPECT_EQ(RL.Bits, RP.Bits);
    }
    EXPECT_EQ(L->E->Machine->execCycles(), P->E->Machine->execCycles());
    EXPECT_EQ(L->E->Machine->dynCompCycles(),
              P->E->Machine->dynCompCycles());
    EXPECT_EQ(L->E->Machine->instrsExecuted(),
              P->E->Machine->instrsExecuted());
    const speculate::SpeculationStats &SL = L->E->Spec->stats();
    const speculate::SpeculationStats &SP = P->E->Spec->stats();
    EXPECT_EQ(SL.CallsObserved, SP.CallsObserved);
    EXPECT_EQ(SL.Promotions, SP.Promotions);
    EXPECT_EQ(SL.GuardChecks, SP.GuardChecks);
    EXPECT_EQ(SL.GuardHits, SP.GuardHits);
    EXPECT_EQ(SL.GuardFailures, SP.GuardFailures);
    expectSameOutput(*L, *P);
  }
}

//===----------------------------------------------------------------------===//
// Guard-failure stress: rotate one argument until the site demotes, then
// keep rotating until the controller re-promotes on the surviving
// parameters. Every call must stay bit-identical with the static build,
// and released chains must not leak.
//===----------------------------------------------------------------------===//

namespace {

const char *const StressSrc = R"(
int f(int* a, int x, int n) {
  int s = 0;
  int i = 0;
  while (i < n) {
    s = s + a@[x] + i;
    i = i + 1;
  }
  return s;
}
)";

struct StressRig {
  core::DycContext Ctx;
  std::unique_ptr<core::Executable> Spec;
  std::unique_ptr<core::Executable> Stat;
  int FI = -1;
  int64_t A = 0;

  void call(int64_t X, int64_t N) {
    std::vector<Word> Args = {Word::fromInt(A), Word::fromInt(X),
                              Word::fromInt(N)};
    Word RS = Spec->Machine->run(static_cast<uint32_t>(FI), Args);
    Word RG = Stat->Machine->run(static_cast<uint32_t>(FI), Args);
    ASSERT_EQ(RS.Bits, RG.Bits) << "deoptimized result diverged";
  }
};

std::unique_ptr<StressRig> buildStress(vm::VM::EngineKind Engine) {
  auto R = std::make_unique<StressRig>();
  std::vector<std::string> Errs;
  EXPECT_TRUE(R->Ctx.compile(StressSrc, Errs)) << (Errs.empty() ? "" : Errs[0]);
  R->Spec = R->Ctx.buildSpeculative();
  R->Stat = R->Ctx.buildStatic();
  R->Spec->Machine->Engine = Engine;
  R->Stat->Machine->Engine = Engine;
  R->FI = R->Spec->findFunction("f");
  EXPECT_GE(R->FI, 0);
  // Identical quasi-invariant memory in both machines.
  R->A = R->Spec->Machine->allocMemory(8);
  int64_t A2 = R->Stat->Machine->allocMemory(8);
  EXPECT_EQ(R->A, A2);
  for (int I = 0; I != 8; ++I) {
    R->Spec->Machine->memory()[R->A + I] = Word::fromInt(I * 3 + 1);
    R->Stat->Machine->memory()[R->A + I] = Word::fromInt(I * 3 + 1);
  }
  return R;
}

} // namespace

TEST(Speculation, GuardFailureDeoptsAndDemotes) {
  for (vm::VM::EngineKind Engine :
       {vm::VM::EngineKind::Legacy, vm::VM::EngineKind::Predecoded}) {
    SCOPED_TRACE(Engine == vm::VM::EngineKind::Legacy ? "legacy"
                                                      : "predecoded");
    auto R = buildStress(Engine);
    const speculate::SpeculativeRuntime &Spec = *R->Spec->Spec;
    uint32_t FI = static_cast<uint32_t>(R->FI);

    // Phase 1: a sustained invariant promotes all three parameters.
    for (int I = 0; I != 20; ++I)
      R->call(3, 4);
    EXPECT_EQ(Spec.stats().Promotions, 1u);
    {
      const speculate::GuardSite *S = Spec.guards().find(FI);
      ASSERT_NE(S, nullptr);
      EXPECT_EQ(S->Params, (std::vector<uint32_t>{0, 1, 2}));
      EXPECT_GT(S->Hits, 0u);
    }
    EXPECT_EQ(R->Spec->Spec->runtime().core().liveChains(), 1u);

    // Phase 2: rotating n fails the guard (deopt to generic every time)
    // until the site demotes and blacklists the thrashing parameter.
    for (int I = 0; I != 8; ++I)
      R->call(3, 5 + I);
    EXPECT_EQ(Spec.stats().GuardFailures, 8u);
    EXPECT_EQ(Spec.stats().Demotions, 1u);
    EXPECT_EQ(Spec.stats().ParamsBlacklisted, 1u);
    EXPECT_TRUE(R->Spec->Spec->profiler().isBlacklisted(FI, 2));
    EXPECT_FALSE(R->Spec->Spec->profiler().isBlacklisted(FI, 0));
    EXPECT_EQ(Spec.guards().find(FI), nullptr);
    EXPECT_EQ(Spec.ordinalOf(FI), -1);
    // The released twin's chain was reclaimed at the demotion safe point.
    EXPECT_EQ(R->Spec->Spec->runtime().core().liveChains(), 0u);

    // Phase 3: with n still varying, re-heating re-promotes on the
    // surviving invariant parameters only; the new twin handles dynamic
    // n (no unrolling) behind a narrower guard.
    for (int I = 0; I != 16; ++I)
      R->call(3, 100 + I);
    EXPECT_EQ(Spec.stats().Promotions, 2u);
    {
      const speculate::GuardSite *S = Spec.guards().find(FI);
      ASSERT_NE(S, nullptr);
      EXPECT_EQ(S->Params, (std::vector<uint32_t>{0, 1}));
    }
    for (int I = 0; I != 4; ++I)
      R->call(3, 1000 + I); // guard passes; n is dynamic inside the twin
    // 5 = the promoting call itself (it falls through to its own guard)
    // plus the four rotated calls.
    EXPECT_EQ(Spec.guards().find(FI)->Hits, 5u);
    EXPECT_EQ(R->Spec->Spec->runtime().core().liveChains(), 1u);
  }
}

//===----------------------------------------------------------------------===//
// Disabled policy: buildSpeculative with Enabled=false behaves exactly
// like buildStatic (no guards, no profiling charges).
//===----------------------------------------------------------------------===//

TEST(Speculation, DisabledPolicyMatchesStatic) {
  const Workload &W = workloads::workloadByName("dotproduct");
  auto S = build(W, Mode::Static, vm::VM::EngineKind::Predecoded);
  Word RS = S->E->Machine->run(static_cast<uint32_t>(S->MainIdx),
                               S->S.MainArgs);

  auto B = std::make_unique<Built>();
  core::compileWorkload(W, B->Ctx);
  speculate::SpeculationPolicy Off;
  Off.Enabled = false;
  B->E = B->Ctx.buildSpeculative(Off);
  B->S = W.Setup(*B->E->Machine);
  B->MainIdx = B->E->findFunction(W.MainFunc);
  Word RB = B->E->Machine->run(static_cast<uint32_t>(B->MainIdx),
                               B->S.MainArgs);

  EXPECT_EQ(RS.Bits, RB.Bits);
  // Never dearer than static — in fact strictly cheaper: the stripped
  // generic module lacks the make_static pseudo-instructions the static
  // build still executes (one cycle each, once per kernel call).
  EXPECT_LT(B->E->Machine->execCycles(), S->E->Machine->execCycles());
  EXPECT_EQ(B->E->Machine->dynCompCycles(), 0u);
  EXPECT_EQ(B->E->Spec->stats().CallsObserved, 0u);
  expectSameOutput(*S, *B);
}

//===----------------------------------------------------------------------===//
// A function judged not worth promoting is declined once and its guard
// removed — the sampling cost stops.
//===----------------------------------------------------------------------===//

TEST(Speculation, UnprofitableFunctionDeclinedOnce) {
  // No `@` loads, no pure calls, no static-foldable branches once only
  // the parameters are static: structural benefit 0.
  const char *Src = R"(
int plain(int a, int b) {
  return a * b + a - b;
}
)";
  core::DycContext Ctx;
  std::vector<std::string> Errs;
  ASSERT_TRUE(Ctx.compile(Src, Errs));
  auto E = Ctx.buildSpeculative();
  int FI = E->findFunction("plain");
  ASSERT_GE(FI, 0);
  std::vector<Word> Args = {Word::fromInt(6), Word::fromInt(7)};
  for (int I = 0; I != 24; ++I)
    EXPECT_EQ(E->Machine->run(static_cast<uint32_t>(FI), Args).Bits,
              Word::fromInt(41).Bits);
  const speculate::SpeculationStats &St = E->Spec->stats();
  EXPECT_EQ(St.Promotions, 0u);
  EXPECT_EQ(St.PromotionsDeclined, 1u);
  // The guard came off at the decline: exactly HotCalls observations.
  EXPECT_EQ(St.CallsObserved, 16u);
  EXPECT_GT(E->Machine->dynCompCycles(), 0u) << "trial BTA was not charged";
  EXPECT_FALSE(St.toString().empty());
}
