//===- tests/FrontendTest.cpp - lexer/parser/lowering unit tests ------------------===//

#include "frontend/Lexer.h"
#include "frontend/Lower.h"
#include "frontend/Parser.h"
#include "ir/Module.h"

#include <gtest/gtest.h>

using namespace dyc;
using namespace dyc::frontend;

namespace {

std::vector<Token> lexOk(const std::string &Src) {
  std::vector<std::string> Errors;
  std::vector<Token> Toks = lex(Src, Errors);
  EXPECT_TRUE(Errors.empty()) << (Errors.empty() ? "" : Errors[0]);
  return Toks;
}

TEST(Lexer, TokenKinds) {
  auto T = lexOk("int x = 42; double y = 3.5e2; x @[ 1 ] @[2]");
  EXPECT_EQ(T[0].Kind, TokKind::KwInt);
  EXPECT_EQ(T[1].Kind, TokKind::Ident);
  EXPECT_EQ(T[1].Text, "x");
  EXPECT_EQ(T[3].Kind, TokKind::IntLit);
  EXPECT_EQ(T[3].IntVal, 42);
  auto FloatTok = T[8];
  EXPECT_EQ(FloatTok.Kind, TokKind::FloatLit);
  EXPECT_DOUBLE_EQ(FloatTok.FloatVal, 350.0);
  // "@[" only lexes as one token when adjacent.
  bool SawAtBracket = false;
  for (const Token &Tok : T)
    if (Tok.Kind == TokKind::AtLBracket)
      SawAtBracket = true;
  EXPECT_TRUE(SawAtBracket);
}

TEST(Lexer, CommentsAndOperators) {
  auto T = lexOk("a /* multi\nline */ <= b // trailing\n>> c != d");
  std::vector<TokKind> Kinds;
  for (const Token &Tok : T)
    Kinds.push_back(Tok.Kind);
  EXPECT_EQ(Kinds, (std::vector<TokKind>{
                       TokKind::Ident, TokKind::Le, TokKind::Ident,
                       TokKind::Shr, TokKind::Ident, TokKind::NotEq,
                       TokKind::Ident, TokKind::Eof}));
}

TEST(Lexer, DycKeywords) {
  auto T = lexOk("make_static make_dynamic cache_all cache_one "
                 "cache_one_unchecked pure");
  EXPECT_EQ(T[0].Kind, TokKind::KwMakeStatic);
  EXPECT_EQ(T[1].Kind, TokKind::KwMakeDynamic);
  EXPECT_EQ(T[2].Kind, TokKind::KwCacheAll);
  EXPECT_EQ(T[3].Kind, TokKind::KwCacheOne);
  EXPECT_EQ(T[4].Kind, TokKind::KwCacheOneUnchecked);
  EXPECT_EQ(T[5].Kind, TokKind::KwPure);
}

TEST(Lexer, ReportsBadCharacters) {
  std::vector<std::string> Errors;
  lex("int $x;", Errors);
  ASSERT_EQ(Errors.size(), 1u);
  EXPECT_NE(Errors[0].find("unexpected character"), std::string::npos);
}

ProgramAST parseOk(const std::string &Src) {
  std::vector<std::string> Errors;
  ProgramAST P = parseProgram(Src, Errors);
  EXPECT_TRUE(Errors.empty()) << (Errors.empty() ? "" : Errors[0]);
  return P;
}

TEST(Parser, FunctionAndPrecedence) {
  ProgramAST P = parseOk("int f(int a, int b) { return a + b * 2 - 1; }");
  ASSERT_EQ(P.Funcs.size(), 1u);
  const FuncDecl &F = P.Funcs[0];
  EXPECT_EQ(F.Name, "f");
  EXPECT_EQ(F.Params.size(), 2u);
  // ((a + (b*2)) - 1)
  const Stmt &Ret = *F.Body->Stmts[0];
  ASSERT_EQ(Ret.K, Stmt::Return);
  EXPECT_EQ(Ret.E->BOp, BinOp::Sub);
  EXPECT_EQ(Ret.E->L->BOp, BinOp::Add);
  EXPECT_EQ(Ret.E->L->R->BOp, BinOp::Mul);
}

TEST(Parser, MakeStaticWithPolicy) {
  ProgramAST P = parseOk(
      "void f(int a, int b) { make_static(a, b : cache_one_unchecked); }");
  const Stmt &S = *P.Funcs[0].Body->Stmts[0];
  ASSERT_EQ(S.K, Stmt::MakeStatic);
  EXPECT_EQ(S.Vars, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(S.Policy, ir::CachePolicy::CacheOneUnchecked);
}

TEST(Parser, StaticIndexAndPointerTypes) {
  ProgramAST P = parseOk(
      "double g(double* m, int* k) { return m@[k[0]] + m[1]; }");
  const Stmt &Ret = *P.Funcs[0].Body->Stmts[0];
  EXPECT_EQ(Ret.E->L->K, Expr::Index);
  EXPECT_TRUE(Ret.E->L->StaticIndex);
  EXPECT_FALSE(Ret.E->R->StaticIndex);
}

TEST(Parser, ExternPureAndCalls) {
  ProgramAST P = parseOk("extern pure double cos(double);\n"
                         "double f(double x) { return cos(x); }");
  ASSERT_EQ(P.Externs.size(), 1u);
  EXPECT_TRUE(P.Externs[0].Pure);
  EXPECT_EQ(P.Externs[0].ArgTys.size(), 1u);
}

TEST(Parser, ForDesugarsIncrement) {
  ProgramAST P = parseOk(
      "int f() { int s = 0; int i; for (i = 0; i < 4; i++) { s = s + i; } "
      "return s; }");
  EXPECT_EQ(P.Funcs.size(), 1u);
}

TEST(Parser, RecoversAndReportsErrors) {
  std::vector<std::string> Errors;
  parseProgram("int f( { return; }", Errors);
  EXPECT_FALSE(Errors.empty());
}

bool lowerOk(const std::string &Src, ir::Module &M) {
  std::vector<std::string> Errors;
  bool OK = compileMiniC(Src, M, Errors);
  EXPECT_TRUE(OK) << (Errors.empty() ? "" : Errors[0]);
  return OK;
}

TEST(Lowering, ProducesVerifiedModule) {
  ir::Module M;
  ASSERT_TRUE(lowerOk("int add(int a, int b) { return a + b; }\n"
                      "int twice(int x) { return add(x, x); }",
                      M));
  EXPECT_EQ(M.numFunctions(), 2u);
  EXPECT_EQ(ir::verifyModule(M), "");
}

TEST(Lowering, TypeChecksImplicitConversions) {
  ir::Module M;
  ASSERT_TRUE(lowerOk("double f(int a, double b) { return a + b; }", M));
  std::vector<std::string> Errors;
  ir::Module M2;
  // double -> int assignment without a cast must be rejected.
  EXPECT_FALSE(compileMiniC("int f(double x) { int y = x; return y; }", M2,
                            Errors));
  EXPECT_FALSE(Errors.empty());
}

TEST(Lowering, RejectsUndeclaredAndArity) {
  std::vector<std::string> Errors;
  ir::Module M;
  EXPECT_FALSE(compileMiniC("int f() { return g(1); }", M, Errors));
  Errors.clear();
  EXPECT_FALSE(compileMiniC("int g(int a) { return a; }\n"
                            "int f() { return g(1, 2); }",
                            M, Errors));
  Errors.clear();
  EXPECT_FALSE(compileMiniC("int f() { return zzz; }", M, Errors));
}

TEST(Lowering, ScopesShadowAndExpire) {
  ir::Module M;
  ASSERT_TRUE(lowerOk(
      "int f(int x) { { int y = x + 1; x = y; } { int y = x * 2; x = y; } "
      "return x; }",
      M));
  std::vector<std::string> Errors;
  ir::Module M2;
  EXPECT_FALSE(compileMiniC(
      "int f(int x) { { int y = 1; } return y; }", M2, Errors));
}

TEST(Lowering, AnnotationsBecomeIR) {
  ir::Module M;
  ASSERT_TRUE(lowerOk("int f(int* a, int n) {\n"
                      "  make_static(a, n : cache_one);\n"
                      "  make_dynamic(n);\n"
                      "  return a[0];\n"
                      "}",
                      M));
  const ir::Function &F = M.function(0);
  unsigned NumStatic = 0, NumDynamic = 0;
  for (const ir::BasicBlock &B : F.Blocks)
    for (const ir::Instruction &I : B.Instrs) {
      if (I.Op == ir::Opcode::MakeStatic) {
        ++NumStatic;
        EXPECT_EQ(I.Policy, ir::CachePolicy::CacheOne);
        EXPECT_EQ(I.AnnotVars.size(), 2u);
      }
      if (I.Op == ir::Opcode::MakeDynamic)
        ++NumDynamic;
    }
  EXPECT_EQ(NumStatic, 1u);
  EXPECT_EQ(NumDynamic, 1u);
}

TEST(Lowering, BreakAndContinue) {
  ir::Module M;
  ASSERT_TRUE(lowerOk(
      "int f(int n) {\n"
      "  int s = 0;\n"
      "  int i;\n"
      "  for (i = 0; i < n; i = i + 1) {\n"
      "    if (i == 7) { break; }\n"
      "    if (i % 2 == 0) { continue; }\n"
      "    s = s + i;\n"
      "  }\n"
      "  while (1) { break; }\n"
      "  return s;\n"
      "}",
      M));
  EXPECT_EQ(ir::verifyModule(M), "");
  std::vector<std::string> Errors;
  ir::Module M2;
  EXPECT_FALSE(
      compileMiniC("int f() { break; return 0; }", M2, Errors));
}

TEST(Lowering, PureFlagPropagatesToCalls) {
  ir::Module M;
  ASSERT_TRUE(lowerOk("pure int sq(int x) { return x * x; }\n"
                      "int f(int a) { return sq(a); }",
                      M));
  EXPECT_TRUE(M.function(M.findFunction("sq")).Pure);
  bool SawStaticCall = false;
  const ir::Function &F = M.function(M.findFunction("f"));
  for (const ir::BasicBlock &B : F.Blocks)
    for (const ir::Instruction &I : B.Instrs)
      if (I.Op == ir::Opcode::Call)
        SawStaticCall = I.StaticCall;
  EXPECT_TRUE(SawStaticCall);
}

} // namespace
