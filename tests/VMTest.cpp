//===- tests/VMTest.cpp - machine-model unit tests --------------------------------===//

#include "ir/ConstEval.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace dyc;
using namespace dyc::vm;

namespace {

/// Builds a one-function program from raw instructions.
struct MiniProgram {
  Program P;
  uint32_t Func;

  MiniProgram(std::vector<Instr> Code, uint32_t NumRegs) {
    CodeObject CO;
    CO.Code = std::move(Code);
    CO.NumRegs = NumRegs;
    CO.Name = "test";
    Func = P.addFunction(std::move(CO));
  }
};

TEST(VMExec, Arithmetic) {
  MiniProgram MP({{Op::ConstI, 0, 0, 0, 20},
                  {Op::ConstI, 1, 0, 0, 22},
                  {Op::Add, 2, 0, 1},
                  {Op::Ret, 2}},
                 3);
  VM M(MP.P);
  EXPECT_EQ(M.run(MP.Func, {}).asInt(), 42);
}

TEST(VMExec, FloatOpsAndConversions) {
  MiniProgram MP({{Op::ConstF, 0, 0, 0,
                   (int64_t)Word::fromFloat(2.5).Bits},
                  {Op::ConstI, 1, 0, 0, 3},
                  {Op::IToF, 2, 1},
                  {Op::FMul, 3, 0, 2},
                  {Op::FToI, 4, 3},
                  {Op::Ret, 4}},
                 5);
  VM M(MP.P);
  EXPECT_EQ(M.run(MP.Func, {}).asInt(), 7); // (int)(2.5*3) == 7
}

TEST(VMExec, ImmediateForms) {
  MiniProgram MP({{Op::ConstI, 0, 0, 0, 100},
                  {Op::AddI, 1, 0, 0, -58},
                  {Op::ShlI, 2, 1, 0, 2},
                  {Op::RemI, 3, 2, 0, 7},
                  {Op::Ret, 3}},
                 4);
  VM M(MP.P);
  EXPECT_EQ(M.run(MP.Func, {}).asInt(), ((100 - 58) << 2) % 7);
}

TEST(VMExec, BranchesAndLoop) {
  // sum 0..9 with a backward branch
  MiniProgram MP({{Op::ConstI, 0, 0, 0, 0},       // i
                  {Op::ConstI, 1, 0, 0, 0},       // sum
                  {Op::CmpLtI, 2, 0, 0, 10},      // 2: i < 10
                  {Op::CondBr, 2, 4, 7},          // 3
                  {Op::Add, 1, 1, 0},             // 4
                  {Op::AddI, 0, 0, 0, 1},         // 5
                  {Op::Br, 0, 2},                 // 6
                  {Op::Ret, 1}},                  // 7
                 3);
  VM M(MP.P);
  EXPECT_EQ(M.run(MP.Func, {}).asInt(), 45);
}

TEST(VMExec, MemoryAndCalls) {
  Program P;
  // callee: arg0 + mem[arg1]
  CodeObject Callee;
  Callee.Name = "callee";
  Callee.NumRegs = 3;
  Callee.Code = {{Op::Load, 2, 1, 0, 0}, {Op::Add, 2, 0, 2}, {Op::Ret, 2}};
  uint32_t CalleeIdx = P.addFunction(std::move(Callee));

  CodeObject Main;
  Main.Name = "main";
  Main.NumRegs = 4;
  Main.Code = {{Op::ConstI, 0, 0, 0, 5},
               {Op::ConstI, 1, 0, 0, 64}, // address
               {Op::Call, 2, 0, 2, (int64_t)CalleeIdx},
               {Op::Ret, 2}};
  uint32_t MainIdx = P.addFunction(std::move(Main));

  VM M(P);
  M.memory()[64] = Word::fromInt(37);
  EXPECT_EQ(M.run(MainIdx, {}).asInt(), 42);
  EXPECT_EQ(M.functionStats(CalleeIdx).Calls, 1u);
  EXPECT_GT(M.functionStats(CalleeIdx).InclusiveCycles, 0u);
}

TEST(VMExec, ExternalCall) {
  Program P;
  P.Externals.addStandardMath();
  int Cos = P.Externals.find("cos");
  ASSERT_GE(Cos, 0);
  CodeObject CO;
  CO.Name = "f";
  CO.NumRegs = 2;
  CO.Code = {{Op::ConstF, 0, 0, 0, (int64_t)Word::fromFloat(0.0).Bits},
             {Op::CallExt, 1, 0, 1, Cos},
             {Op::Ret, 1}};
  uint32_t F = P.addFunction(std::move(CO));
  VM M(P);
  EXPECT_DOUBLE_EQ(M.run(F, {}).asFloat(), 1.0);
}

TEST(VMExec, CycleAccounting) {
  MiniProgram MP({{Op::ConstI, 0, 0, 0, 2},
                  {Op::Mul, 1, 0, 0},
                  {Op::Ret, 1}},
                 2);
  ICacheConfig NoIC;
  NoIC.Enabled = false; // isolate pure instruction costs
  VM M(MP.P, CostModel(), NoIC);
  CostModel CM;
  M.run(MP.Func, {});
  // consti(1) + mul(8) + ret(5) = 14
  EXPECT_EQ(M.execCycles(), CM.IntAlu + CM.IntMul + CM.RetCost);
  EXPECT_EQ(M.dynCompCycles(), 0u);
  uint64_t Mark = M.execCycles();
  M.chargeExec(10);
  M.reattributeExecToDynComp(Mark);
  EXPECT_EQ(M.execCycles(), Mark);
  EXPECT_EQ(M.dynCompCycles(), 10u);
}

TEST(VMExec, ArgumentsArriveInRegisters) {
  MiniProgram MP({{Op::Sub, 2, 0, 1}, {Op::Ret, 2}}, 3);
  VM M(MP.P);
  EXPECT_EQ(M.run(MP.Func, {Word::fromInt(50), Word::fromInt(8)}).asInt(),
            42);
}

TEST(CostModelTest, Alpha21164Properties) {
  CostModel CM;
  // FP move costs the same as FP multiply (section 2.2.7).
  EXPECT_EQ(CM.baseCostOf({Op::FMov, 0, 1}),
            CM.baseCostOf({Op::FMul, 0, 1, 2}));
  // Unchecked dispatch is far cheaper than a hashed one (section 4.4.3).
  EXPECT_LT(CM.DispatchUnchecked, CM.hashedDispatchCost(2, 1));
  EXPECT_GE(CM.hashedDispatchCost(2, 1), 75u);
  EXPECT_LE(CM.hashedDispatchCost(2, 1), 105u);
  // Immediate division still costs a real divide; power-of-two divisors
  // are strength-reduced into exact shift sequences by the code
  // generators instead of by the cost model.
  EXPECT_EQ(CM.baseCostOf({Op::DivI, 0, 1, 0, 8}),
            CM.baseCostOf({Op::Div, 0, 1, 2}));
  // Generated code pays the no-scheduling surcharge.
  EXPECT_GT(CM.costOf({Op::Add, 0, 1, 2}, true),
            CM.costOf({Op::Add, 0, 1, 2}, false));
}

TEST(ICacheTest, DirectMappedHitsAndMisses) {
  ICacheConfig Cfg;
  Cfg.SizeBytes = 256;
  Cfg.BlockBytes = 32;
  Cfg.Assoc = 1; // 8 sets
  ICache C(Cfg);
  EXPECT_FALSE(C.access(0));   // cold miss
  EXPECT_TRUE(C.access(4));    // same block
  EXPECT_TRUE(C.access(28));   // same block
  EXPECT_FALSE(C.access(256)); // same set, different tag -> evict
  EXPECT_FALSE(C.access(0));   // conflict miss
  EXPECT_EQ(C.misses(), 3u);
  EXPECT_EQ(C.hits(), 2u);
}

TEST(ICacheTest, AssociativityAvoidsConflicts) {
  ICacheConfig Cfg;
  Cfg.SizeBytes = 256;
  Cfg.BlockBytes = 32;
  Cfg.Assoc = 2; // 4 sets, 2 ways
  ICache C(Cfg);
  EXPECT_FALSE(C.access(0));
  EXPECT_FALSE(C.access(128)); // same set, second way
  EXPECT_TRUE(C.access(0));    // both resident
  EXPECT_TRUE(C.access(128));
  EXPECT_FALSE(C.access(256)); // evicts LRU (block 0)
  EXPECT_FALSE(C.access(0));   // refill evicts block 4 (now the LRU way)
  EXPECT_TRUE(C.access(256));  // most recently used way survived
}

TEST(ICacheTest, FlushInvalidatesEverything) {
  ICache C;
  C.access(0);
  C.access(0);
  EXPECT_EQ(C.hits(), 1u);
  C.flush();
  EXPECT_FALSE(C.access(0));
}

TEST(ICacheTest, WorkingSetLargerThanCacheThrashes) {
  ICacheConfig Cfg; // 8KB direct-mapped
  ICache C(Cfg);
  // Loop over a 16KB footprint twice: every access misses.
  for (int Round = 0; Round != 2; ++Round)
    for (uint64_t A = 0; A < 16384; A += 32)
      C.access(A);
  EXPECT_EQ(C.hits(), 0u);
}

TEST(ProgramTest, AddressAllocationDisjoint) {
  Program P;
  uint64_t A = P.allocCodeAddr(1000);
  uint64_t B = P.allocCodeAddr(1000);
  EXPECT_GE(B, A + 1000);
}

TEST(VMExec, DifferentialAgainstConstEval) {
  // Property: for every evaluable opcode and random operands, executing
  // the operation on the VM produces exactly what the shared evaluator
  // (used by the constant folder and the specializer) computes. This is
  // the consistency that makes compile-time folding sound.
  struct OpPair {
    ir::Opcode IROp;
    Op VMOp;
    bool Unary;
  };
  const OpPair Pairs[] = {
      {ir::Opcode::Add, Op::Add, false}, {ir::Opcode::Sub, Op::Sub, false},
      {ir::Opcode::Mul, Op::Mul, false}, {ir::Opcode::Div, Op::Div, false},
      {ir::Opcode::Rem, Op::Rem, false}, {ir::Opcode::And, Op::And, false},
      {ir::Opcode::Or, Op::Or, false},   {ir::Opcode::Xor, Op::Xor, false},
      {ir::Opcode::Shl, Op::Shl, false}, {ir::Opcode::Shr, Op::Shr, false},
      {ir::Opcode::Neg, Op::Neg, true},
      {ir::Opcode::FAdd, Op::FAdd, false},
      {ir::Opcode::FSub, Op::FSub, false},
      {ir::Opcode::FMul, Op::FMul, false},
      {ir::Opcode::FDiv, Op::FDiv, false},
      {ir::Opcode::FNeg, Op::FNeg, true},
      {ir::Opcode::CmpLt, Op::CmpLt, false},
      {ir::Opcode::CmpGe, Op::CmpGe, false},
      {ir::Opcode::FCmpLe, Op::FCmpLe, false},
      {ir::Opcode::IToF, Op::IToF, true},
      {ir::Opcode::FToI, Op::FToI, true},
  };
  DeterministicRNG RNG(0xd1ff);
  for (const OpPair &P : Pairs) {
    for (int Trial = 0; Trial != 50; ++Trial) {
      Word A{RNG.next()}, B{RNG.next()};
      bool IsFloat = P.IROp == ir::Opcode::FAdd ||
                     P.IROp == ir::Opcode::FSub ||
                     P.IROp == ir::Opcode::FMul ||
                     P.IROp == ir::Opcode::FDiv ||
                     P.IROp == ir::Opcode::FNeg ||
                     P.IROp == ir::Opcode::FCmpLe ||
                     P.IROp == ir::Opcode::FToI;
      if (IsFloat) {
        A = Word::fromFloat(RNG.nextDouble() * 200 - 100);
        B = Word::fromFloat(RNG.nextDouble() * 200 - 100);
      } else {
        A = Word::fromInt(static_cast<int64_t>(RNG.nextBelow(2000)) - 1000);
        B = Word::fromInt(static_cast<int64_t>(RNG.nextBelow(2000)) - 1000);
      }
      if (P.IROp == ir::Opcode::FToI)
        A = Word::fromFloat(RNG.nextDouble() * 1000 - 500);
      Word Expected;
      if (!ir::evalPureOp(P.IROp, A, B, Expected))
        continue; // division by zero etc: unfoldable by design
      MiniProgram MP({P.Unary ? Instr{P.VMOp, 2, 0}
                              : Instr{P.VMOp, 2, 0, 1},
                      {Op::Ret, 2}},
                     3);
      VM M(MP.P);
      Word Got = M.run(MP.Func, {A, B});
      EXPECT_EQ(Got.Bits, Expected.Bits)
          << ir::opcodeName(P.IROp) << " A=" << A.Bits << " B=" << B.Bits;
    }
  }
}

TEST(DisassemblerTest, RendersKnownForms) {
  Instr I{Op::AddI, 3, 2, 0, 7};
  EXPECT_EQ(toString(I), "addi r3, r2, 7");
  Instr L{Op::Load, 1, 2, 0, 4};
  EXPECT_EQ(toString(L), "load r1, [r2 + 4]");
  Instr Br{Op::CondBr, 0, 5, 9};
  EXPECT_EQ(toString(Br), "condbr r0, @5, @9");
}

} // namespace
