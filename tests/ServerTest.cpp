//===- tests/ServerTest.cpp - SpecServer concurrency tests ------------------------===//
//
// Acceptance tests for the concurrent specialization service: bit-identical
// outputs across client threads, exactly-once specialization under racing
// misses, correct respecialization after capacity eviction, and the
// static-fallback miss policy. The end of the file drives a real workload
// through the multi-client harness.
//
//===----------------------------------------------------------------------===//

#include "core/Harness.h"
#include "server/SpecServer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace dyc;
using server::MissPolicy;
using server::ServerConfig;
using server::SpecServer;

namespace {

std::unique_ptr<core::DycContext> compile(const std::string &Src) {
  auto Ctx = std::make_unique<core::DycContext>();
  std::vector<std::string> Errors;
  bool OK = Ctx->compile(Src, Errors);
  EXPECT_TRUE(OK) << (Errors.empty() ? "" : Errors[0]);
  return Ctx;
}

// Triangular-sum region: f(n) = 0 + 1 + ... + n-1, one specialization per
// distinct n under cache_all.
const char *SumSrc = "int f(int n) {\n"
                     "  int i;\n"
                     "  make_static(n, i : cache_all);\n"
                     "  int s = 0;\n"
                     "  for (i = 0; i < n; i = i + 1) { s = s + i; }\n"
                     "  return s;\n"
                     "}";

int64_t triangular(int64_t N) { return N * (N - 1) / 2; }

/// Spin barrier: arrive, then busy-wait until everyone has. std::barrier
/// is C++20; this keeps the tests on the project's standard.
class SpinBarrier {
public:
  explicit SpinBarrier(unsigned N) : Remaining(N) {}
  void arriveAndWait() {
    Remaining.fetch_sub(1, std::memory_order_acq_rel);
    while (Remaining.load(std::memory_order_acquire) != 0)
      std::this_thread::yield();
  }

private:
  std::atomic<unsigned> Remaining;
};

TEST(SpecServer, BitIdenticalAcrossThreads) {
  const std::vector<int64_t> Keys = {3, 5, 7, 9, 3, 5, 7, 9, 4};

  // Reference: the same key sequence on the single-threaded inline runtime.
  auto RefCtx = compile(SumSrc);
  auto RefE = RefCtx->buildDynamic();
  int RefF = RefE->findFunction("f");
  std::vector<int64_t> Expected;
  for (int64_t N : Keys)
    Expected.push_back(
        RefE->Machine->run(RefF, {Word::fromInt(N)}).asInt());

  auto Ctx = compile(SumSrc);
  ServerConfig Cfg;
  Cfg.NumWorkers = 2;
  auto Server = Ctx->buildServer(OptFlags(), std::move(Cfg));
  int F = Server->findFunction("f");
  ASSERT_GE(F, 0);

  constexpr unsigned NumThreads = 4;
  std::vector<std::unique_ptr<vm::VM>> Clients;
  for (unsigned T = 0; T != NumThreads; ++T)
    Clients.push_back(Server->makeClientVM());

  std::vector<std::vector<int64_t>> Got(NumThreads);
  {
    std::vector<std::thread> Pool;
    for (unsigned T = 0; T != NumThreads; ++T)
      Pool.emplace_back([&, T] {
        for (int64_t N : Keys)
          Got[T].push_back(
              Clients[T]->run(static_cast<uint32_t>(F), {Word::fromInt(N)})
                  .asInt());
      });
    for (std::thread &Th : Pool)
      Th.join();
  }

  for (size_t I = 0; I != Keys.size(); ++I)
    EXPECT_EQ(Expected[I], triangular(Keys[I])); // reference is itself right
  for (unsigned T = 0; T != NumThreads; ++T)
    EXPECT_EQ(Got[T], Expected) << "client " << T;
  // Exactly one specialization per distinct key (3, 5, 7, 9, 4), no
  // matter how the four clients interleaved.
  EXPECT_EQ(Server->regionStats(0).SpecializationRuns, 5u);
  EXPECT_EQ(Server->stats().Dispatches, NumThreads * Keys.size());
}

TEST(SpecServer, ConcurrentMissesSpecializeOnce) {
  auto Ctx = compile(SumSrc);
  ServerConfig Cfg;
  Cfg.NumWorkers = 2;
  auto Server = Ctx->buildServer(OptFlags(), std::move(Cfg));
  int F = Server->findFunction("f");

  constexpr unsigned NumThreads = 8;
  std::vector<std::unique_ptr<vm::VM>> Clients;
  for (unsigned T = 0; T != NumThreads; ++T)
    Clients.push_back(Server->makeClientVM());

  SpinBarrier Gate(NumThreads);
  std::vector<int64_t> Got(NumThreads);
  {
    std::vector<std::thread> Pool;
    for (unsigned T = 0; T != NumThreads; ++T)
      Pool.emplace_back([&, T] {
        Gate.arriveAndWait();
        Got[T] = Clients[T]
                     ->run(static_cast<uint32_t>(F), {Word::fromInt(6)})
                     .asInt();
      });
    for (std::thread &Th : Pool)
      Th.join();
  }

  for (unsigned T = 0; T != NumThreads; ++T)
    EXPECT_EQ(Got[T], triangular(6)) << "client " << T;
  // All eight racing misses collapsed into one generating-extension run:
  // in-flight dedup catches racers before the job executes, the worker's
  // cache recheck catches racers after.
  EXPECT_EQ(Server->regionStats(0).SpecializationRuns, 1u);
  EXPECT_EQ(Server->stats().SpecRuns, 1u);
  EXPECT_EQ(Server->stats().CacheMisses + Server->stats().CacheHits,
            static_cast<uint64_t>(NumThreads));
}

TEST(SpecServer, EvictionRespecializesCorrectly) {
  auto Ctx = compile(SumSrc);
  ServerConfig Cfg;
  Cfg.NumWorkers = 1;
  Cfg.Budget.MaxEntries = 2; // third distinct key forces a CLOCK eviction
  auto Server = Ctx->buildServer(OptFlags(), std::move(Cfg));
  int F = Server->findFunction("f");

  auto Client = Server->makeClientVM();
  auto Run = [&](int64_t N) {
    return Client->run(static_cast<uint32_t>(F), {Word::fromInt(N)}).asInt();
  };

  // Two rounds over three keys: every round after the first re-dispatches
  // evicted keys, which must respecialize (never jump to freed code).
  for (int Round = 0; Round != 2; ++Round)
    for (int64_t N : {3, 5, 7})
      EXPECT_EQ(Run(N), triangular(N)) << "round " << Round << " n=" << N;

  server::ServerStatsSnapshot S = Server->stats();
  EXPECT_GE(S.Evictions, 1u);
  EXPECT_GE(Server->regionStats(0).Evictions, 1u);
  EXPECT_GT(S.SpecRuns, 3u); // respecialization after eviction happened
  EXPECT_LE(Server->residentEntries(0), 2u);

  // No client is dispatching, so reclamation must succeed and must free
  // the drained evicted chains and the superseded cache snapshots.
  Server->drain();
  size_t SnapshotsFreed = 0, ChainsFreed = 0;
  ASSERT_TRUE(Server->trimQuiescent(&SnapshotsFreed, &ChainsFreed));
  EXPECT_GE(ChainsFreed, 1u);
  EXPECT_GE(SnapshotsFreed, 1u);

  // Dispatching after reclamation still produces correct results.
  for (int64_t N : {7, 5, 3})
    EXPECT_EQ(Run(N), triangular(N));
}

TEST(SpecServer, FallbackPolicyServesMissesImmediately) {
  auto Ctx = compile(SumSrc);
  ServerConfig Cfg;
  Cfg.NumWorkers = 1;
  Cfg.OnMiss = MissPolicy::Fallback;
  auto Server = Ctx->buildServer(OptFlags(), std::move(Cfg));
  int F = Server->findFunction("f");

  auto Client = Server->makeClientVM();
  // The miss is served by the statically compiled region — correct result
  // without waiting for the worker.
  EXPECT_EQ(Client->run(static_cast<uint32_t>(F), {Word::fromInt(9)}).asInt(),
            triangular(9));
  EXPECT_GE(Server->stats().Fallbacks, 1u);

  // Once the background job lands, the same key hits specialized code.
  Server->drain();
  uint64_t HitsBefore = Server->stats().CacheHits;
  EXPECT_EQ(Client->run(static_cast<uint32_t>(F), {Word::fromInt(9)}).asInt(),
            triangular(9));
  EXPECT_EQ(Server->stats().CacheHits, HitsBefore + 1);
}

TEST(SpecServer, SpecializeTimeLoadsReadSharedMemoryImage) {
  // The region folds t@[b] at specialize time, so the server VM's memory
  // image must match the clients'. ServerConfig::MemoryImage applies one
  // deterministic setup to every VM.
  auto Ctx = compile("int f(int* t, int b) {\n"
                     "  make_static(t, b : cache_all);\n"
                     "  return t@[b] * 2;\n"
                     "}");
  ServerConfig Cfg;
  int64_t Table = -1;
  Cfg.MemoryImage = [&Table](vm::VM &M) {
    int64_t T = M.allocMemory(16);
    for (int I = 0; I != 16; ++I)
      M.memory()[static_cast<size_t>(T + I)] = Word::fromInt(I * 3 + 1);
    Table = T;
  };
  auto Server = Ctx->buildServer(OptFlags(), std::move(Cfg));
  int F = Server->findFunction("f");

  constexpr unsigned NumThreads = 4;
  std::vector<std::unique_ptr<vm::VM>> Clients;
  for (unsigned T = 0; T != NumThreads; ++T)
    Clients.push_back(Server->makeClientVM());
  ASSERT_GE(Table, 0);

  std::vector<char> OK(NumThreads, 0); // not vector<bool>: bit-packed writes race
  {
    std::vector<std::thread> Pool;
    for (unsigned T = 0; T != NumThreads; ++T)
      Pool.emplace_back([&, T] {
        bool Good = true;
        for (int Round = 0; Round != 2; ++Round)
          for (int64_t B : {0, 7, 15, 7})
            Good = Good &&
                   Clients[T]
                           ->run(static_cast<uint32_t>(F),
                                 {Word::fromInt(Table), Word::fromInt(B)})
                           .asInt() == (B * 3 + 1) * 2;
        OK[T] = Good;
      });
    for (std::thread &Th : Pool)
      Th.join();
  }
  for (unsigned T = 0; T != NumThreads; ++T)
    EXPECT_TRUE(OK[T]) << "client " << T;
  EXPECT_EQ(Server->regionStats(0).SpecializationRuns, 3u); // b = 0, 7, 15
}

TEST(SpecServer, HarnessMatchesInlineRunOnKernel) {
  // End to end through the measurement harness: a real workload, two
  // client threads, every output checked against the inline runtime.
  const workloads::Workload &W = workloads::workloadByName("dotproduct");
  core::ServerThroughputPerf P =
      core::measureServerThroughput(W, OptFlags(), /*Threads=*/2,
                                    /*InvocationsPerThread=*/3);
  EXPECT_TRUE(P.OutputsMatch);
  EXPECT_EQ(P.Invocations, 6u);
  EXPECT_GT(P.Stats.Dispatches, 0u);
}

TEST(SpecServer, HarnessFallbackPolicyOnKernel) {
  const workloads::Workload &W = workloads::workloadByName("chebyshev");
  ServerConfig Cfg;
  Cfg.OnMiss = MissPolicy::Fallback;
  core::ServerThroughputPerf P = core::measureServerThroughput(
      W, OptFlags(), /*Threads=*/2, /*InvocationsPerThread=*/4,
      std::move(Cfg));
  EXPECT_TRUE(P.OutputsMatch);
}

} // namespace
