//===- tests/BackendTest.cpp - execution-backend seam parity tests -----------------===//
//
// The backend seam's hard invariant: backends change how the host executes
// specialized regions, never what the cost model observes. These tests run
// every Table 3 workload through both backends (bytecode and template)
// under both VM engines and compare the complete observable state —
// simulated counters, results, output memory, and the golden disassembly
// of every region — plus the speculation path, an eviction-churn artifact
// lifecycle regression, the server front end, and the flag/env selection
// rules.
//
//===----------------------------------------------------------------------===//

#include "backend/Backend.h"
#include "core/Harness.h"
#include "server/SpecServer.h"
#include "speculate/SpeculativeRuntime.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace dyc;
using workloads::Workload;
using workloads::WorkloadSetup;

namespace {

OptFlags withBackend(ExecBackend B) {
  OptFlags Fl;
  Fl.Backend = B;
  return Fl;
}

/// Everything one run exposes to its environment, plus the per-region
/// disassembly (the golden-output axis: superblock pre-fusion must not
/// change one byte of the emitted code).
struct BackendTrace {
  uint64_t ExecCycles = 0;
  uint64_t DynCompCycles = 0;
  uint64_t InstrsExecuted = 0;
  uint64_t ICacheHits = 0;
  uint64_t ICacheMisses = 0;
  std::vector<uint64_t> Results;
  std::vector<uint64_t> FuncCalls;
  std::vector<uint64_t> FuncInclusive;
  uint64_t MemHash = 0;
  std::vector<std::string> Disassembly; ///< per region
  uint64_t DecodeAdopts = 0;            ///< host-level; template only
};

uint64_t hashRange(vm::VM &M, int64_t Base, int64_t Len) {
  if (Len <= 0)
    return 0;
  return hashWords(M.memory().data() + Base, static_cast<size_t>(Len));
}

void captureMachine(core::Executable &E, BackendTrace &T) {
  T.ExecCycles = E.Machine->execCycles();
  T.DynCompCycles = E.Machine->dynCompCycles();
  T.InstrsExecuted = E.Machine->instrsExecuted();
  T.ICacheHits = E.Machine->icache().hits();
  T.ICacheMisses = E.Machine->icache().misses();
  for (uint32_t F = 0; F != E.Prog.numFunctions(); ++F) {
    T.FuncCalls.push_back(E.Machine->functionStats(F).Calls);
    T.FuncInclusive.push_back(E.Machine->functionStats(F).InclusiveCycles);
  }
  T.DecodeAdopts = E.Machine->decodeAdopts();
}

BackendTrace traceWorkload(const Workload &W, vm::VM::EngineKind Engine,
                           ExecBackend Backend, uint64_t Invokes) {
  core::DycContext Ctx;
  core::compileWorkload(W, Ctx);
  auto E = Ctx.buildDynamic(withBackend(Backend));
  E->Machine->Engine = Engine;
  WorkloadSetup S = W.Setup(*E->Machine);
  int FI = E->findFunction(W.RegionFunc);
  EXPECT_GE(FI, 0) << W.Name << ": region function not found";

  BackendTrace T;
  for (uint64_t I = 0; I != Invokes; ++I)
    T.Results.push_back(
        E->Machine->run(static_cast<uint32_t>(FI), S.RegionArgs).Bits);

  captureMachine(*E, T);
  T.MemHash = hashRange(*E->Machine, S.OutBase, S.OutLen);
  for (size_t Ord = 0; Ord != E->RT->numRegions(); ++Ord)
    T.Disassembly.push_back(E->RT->disassembleRegion(Ord));
  return T;
}

void expectIdentical(const BackendTrace &B, const BackendTrace &T,
                     const std::string &What) {
  EXPECT_EQ(B.ExecCycles, T.ExecCycles) << What << ": ExecCycles";
  EXPECT_EQ(B.DynCompCycles, T.DynCompCycles) << What << ": DynCompCycles";
  EXPECT_EQ(B.InstrsExecuted, T.InstrsExecuted)
      << What << ": InstrsExecuted";
  EXPECT_EQ(B.ICacheHits, T.ICacheHits) << What << ": ICache hits";
  EXPECT_EQ(B.ICacheMisses, T.ICacheMisses) << What << ": ICache misses";
  EXPECT_EQ(B.Results, T.Results) << What << ": invocation results";
  EXPECT_EQ(B.FuncCalls, T.FuncCalls) << What << ": per-function calls";
  EXPECT_EQ(B.FuncInclusive, T.FuncInclusive)
      << What << ": per-function inclusive cycles";
  EXPECT_EQ(B.MemHash, T.MemHash) << What << ": output memory";
  EXPECT_EQ(B.Disassembly, T.Disassembly) << What << ": golden disassembly";
}

class BackendParity : public ::testing::TestWithParam<std::string> {};

// All 5 Table 3 workloads, both VM engines: the template backend's
// pre-fused superblocks must replay bit-identical counters and emit
// byte-identical code.
TEST_P(BackendParity, CountersAndDisassemblyIdenticalOnWorkload) {
  const Workload &W = workloads::workloadByName(GetParam());
  uint64_t Invokes = std::min<uint64_t>(W.RegionInvocations, 40);
  for (vm::VM::EngineKind Engine :
       {vm::VM::EngineKind::Legacy, vm::VM::EngineKind::Predecoded}) {
    std::string What =
        W.Name + (Engine == vm::VM::EngineKind::Legacy ? " (legacy)"
                                                       : " (predecoded)");
    BackendTrace B =
        traceWorkload(W, Engine, ExecBackend::Bytecode, Invokes);
    BackendTrace T =
        traceWorkload(W, Engine, ExecBackend::Template, Invokes);
    expectIdentical(B, T, What);
    EXPECT_EQ(B.DecodeAdopts, 0u) << What;
    if (Engine == vm::VM::EngineKind::Predecoded) {
      EXPECT_GT(T.DecodeAdopts, 0u)
          << What << ": template backend must serve prebuilt translations";
    }
  }
}

std::vector<std::string> workloadNames() {
  std::vector<std::string> Names;
  for (const Workload &W : workloads::allWorkloads())
    Names.push_back(W.Name);
  return Names;
}

INSTANTIATE_TEST_SUITE_P(Table3, BackendParity,
                         ::testing::ValuesIn(workloadNames()));

const char *SumSrc = "int f(int n) {\n"
                     "  int i;\n"
                     "  make_static(n, i : cache_all);\n"
                     "  int s = 0;\n"
                     "  for (i = 0; i < n; i = i + 1) { s = s + i; }\n"
                     "  return s;\n"
                     "}";

// Speculation on/off axis: the guarded-twin path synthesizes regions
// through the same seam, and deopt/demotion release chains through it.
BackendTrace traceSpeculative(ExecBackend Backend, bool SpecOn) {
  core::DycContext Ctx;
  std::vector<std::string> Errors;
  EXPECT_TRUE(Ctx.compile(SumSrc, Errors))
      << (Errors.empty() ? "" : Errors[0]);
  speculate::SpeculationPolicy Policy;
  Policy.Enabled = SpecOn;
  auto E = Ctx.buildSpeculative(Policy, withBackend(Backend));
  int FI = E->findFunction("f");
  EXPECT_GE(FI, 0);

  BackendTrace T;
  // Enough monomorphic calls to clear HotCalls and promote, then a value
  // switch to exercise the guard.
  for (int I = 0; I != 24; ++I)
    T.Results.push_back(
        E->Machine->run(static_cast<uint32_t>(FI), {Word::fromInt(9)}).Bits);
  for (int I = 0; I != 4; ++I)
    T.Results.push_back(
        E->Machine->run(static_cast<uint32_t>(FI), {Word::fromInt(5)}).Bits);
  captureMachine(*E, T);
  return T;
}

TEST(BackendParity, SpeculativePromotionPathIdentical) {
  for (bool SpecOn : {false, true}) {
    BackendTrace B = traceSpeculative(ExecBackend::Bytecode, SpecOn);
    BackendTrace T = traceSpeculative(ExecBackend::Template, SpecOn);
    expectIdentical(B, T,
                    SpecOn ? "speculation on" : "speculation off");
  }
}

// Satellite regression: eviction + respecialization churn must eagerly
// release template-backend artifacts — the registry never pins evicted
// chains' translations — while keeping every counter bit-identical to the
// bytecode backend.
BackendTrace traceEvictionChurn(ExecBackend Backend, uint64_t *Resident,
                                uint64_t *Released) {
  core::DycContext Ctx;
  std::vector<std::string> Errors;
  EXPECT_TRUE(Ctx.compile(SumSrc, Errors))
      << (Errors.empty() ? "" : Errors[0]);
  runtime::ChainBudget Budget;
  Budget.MaxEntries = 2; // evict aggressively
  auto E = Ctx.buildDynamic(withBackend(Backend), vm::CostModel(),
                            vm::ICacheConfig(), Budget);
  int FI = E->findFunction("f");
  EXPECT_GE(FI, 0);

  BackendTrace T;
  const int64_t Keys[] = {3, 9, 17, 3, 9, 17, 5, 3, 17, 9, 5, 3};
  for (int Round = 0; Round != 3; ++Round)
    for (int64_t K : Keys)
      T.Results.push_back(
          E->Machine->run(static_cast<uint32_t>(FI), {Word::fromInt(K)})
              .Bits);
  captureMachine(*E, T);

  backend::ExecutionBackend &BK = E->RT->core().backend();
  *Resident = BK.residentArtifacts();
  *Released = BK.stats().ArtifactsReleased.load(std::memory_order_relaxed);
  // Artifacts never outlive the resident-entry set.
  EXPECT_LE(BK.residentArtifacts(), E->RT->core().residentEntries(0))
      << BK.name();

  // Unpublishing everything drains the registry completely.
  E->RT->releaseRegion(*E->Machine, 0);
  EXPECT_EQ(BK.residentArtifacts(), 0u) << BK.name();
  return T;
}

TEST(BackendLifecycle, EvictionChurnReleasesArtifactsEagerly) {
  uint64_t ResB = 0, RelB = 0, ResT = 0, RelT = 0;
  BackendTrace B = traceEvictionChurn(ExecBackend::Bytecode, &ResB, &RelB);
  BackendTrace T = traceEvictionChurn(ExecBackend::Template, &ResT, &RelT);
  // Disassembly is only captured pre-release in the workload tracer; here
  // only counters are compared.
  expectIdentical(B, T, "eviction churn");
  EXPECT_EQ(ResB, 0u);
  EXPECT_EQ(RelB, 0u);
  EXPECT_GT(RelT, 0u) << "churn must have released template artifacts";
  EXPECT_LE(ResT, 2u) << "registry must track the chain budget";
  EXPECT_GT(T.DecodeAdopts, 0u);
}

// Server front end: client VMs adopt prebuilt translations through
// makeClientVM's attach, the SpecVM itself is attached, and eviction under
// a tight budget still drains the registry. Single worker + Block policy
// keeps the whole schedule deterministic, so client counters must be
// bit-identical across backends too.
struct ServerTrace {
  std::vector<int64_t> Results;
  uint64_t ClientExec = 0;
  uint64_t ClientInstrs = 0;
  uint64_t ClientAdopts = 0;
  uint64_t ClientBuilds = 0;
};

ServerTrace traceServerChurn(ExecBackend Backend) {
  core::DycContext Ctx;
  std::vector<std::string> Errors;
  EXPECT_TRUE(Ctx.compile(SumSrc, Errors))
      << (Errors.empty() ? "" : Errors[0]);
  server::ServerConfig Cfg;
  Cfg.NumWorkers = 1;
  Cfg.OnMiss = server::MissPolicy::Block;
  Cfg.Budget.MaxEntries = 2;
  auto Server = Ctx.buildServer(withBackend(Backend), std::move(Cfg));
  auto Client = Server->makeClientVM();
  int FS = Server->findFunction("f");
  EXPECT_GE(FS, 0);

  ServerTrace T;
  const int64_t Keys[] = {3, 9, 17, 3, 9, 17, 5, 3, 17, 9, 5, 3};
  for (int Round = 0; Round != 3; ++Round)
    for (int64_t K : Keys)
      T.Results.push_back(
          Client->run(static_cast<uint32_t>(FS), {Word::fromInt(K)})
              .asInt());
  Server->drain();

  T.ClientExec = Client->execCycles();
  T.ClientInstrs = Client->instrsExecuted();
  T.ClientAdopts = Client->decodeAdopts();
  T.ClientBuilds = Client->decodeBuilds();

  EXPECT_EQ(std::string(Server->backendName()),
            backend::backendName(backend::resolveBackendKind(Backend)));
  EXPECT_NE(Server->stats().toString().find("backend="), std::string::npos);
  return T;
}

TEST(BackendLifecycle, ServerChurnIdenticalAndAdopting) {
  ServerTrace B = traceServerChurn(ExecBackend::Bytecode);
  ServerTrace T = traceServerChurn(ExecBackend::Template);
  EXPECT_EQ(B.Results, T.Results);
  EXPECT_EQ(B.ClientExec, T.ClientExec);
  EXPECT_EQ(B.ClientInstrs, T.ClientInstrs);
  EXPECT_EQ(B.ClientAdopts, 0u);
  EXPECT_GT(T.ClientAdopts, 0u)
      << "server clients must adopt prebuilt translations";
  // Adoption substitutes for client-side builds: the template client
  // translates strictly less than the bytecode client.
  EXPECT_LT(T.ClientBuilds, B.ClientBuilds);
}

// Selection semantics: explicit flag beats the environment; Default
// follows DYC_BACKEND; unset/unknown environment falls back to bytecode.
TEST(BackendSelection, FlagAndEnvironmentRules) {
  unsetenv("DYC_BACKEND");
  EXPECT_EQ(backend::resolveBackendKind(ExecBackend::Default),
            backend::BackendKind::Bytecode);
  setenv("DYC_BACKEND", "template", 1);
  EXPECT_EQ(backend::resolveBackendKind(ExecBackend::Default),
            backend::BackendKind::Template);
  EXPECT_EQ(backend::resolveBackendKind(ExecBackend::Bytecode),
            backend::BackendKind::Bytecode)
      << "explicit flag must beat the environment";
  setenv("DYC_BACKEND", "nonsense", 1);
  EXPECT_EQ(backend::resolveBackendKind(ExecBackend::Default),
            backend::BackendKind::Bytecode);
  unsetenv("DYC_BACKEND");

  // The resolved name reaches RegionStats and the runtime accessor.
  core::DycContext Ctx;
  std::vector<std::string> Errors;
  ASSERT_TRUE(Ctx.compile(SumSrc, Errors));
  auto E = Ctx.buildDynamic(withBackend(ExecBackend::Template));
  EXPECT_STREQ(E->RT->backendName(), "template");
  EXPECT_NE(E->RT->stats(0).toString().find("backend=template"),
            std::string::npos);
}

} // namespace
