//===- tests/RegionExecTest.cpp - shared execution-core acceptance tests ----------===//
//
// Acceptance tests for the RegionExecutionCore refactor: the inline runtime
// and the SpecServer are two front ends over one specialization backend, so
// the same workload must produce identical instruction counts, identical
// specialization counts, and bit-identical region disassembly through both.
// Also covers the chain model the core introduced inline: golden disassembly
// of single-way and multi-way unrolled loops, CLOCK eviction through
// buildDynamic, and the soft per-region code cap.
//
//===----------------------------------------------------------------------===//

#include "core/DycContext.h"
#include "server/SpecServer.h"

#include <gtest/gtest.h>

using namespace dyc;

namespace {

std::unique_ptr<core::DycContext> compile(const std::string &Src) {
  auto Ctx = std::make_unique<core::DycContext>();
  std::vector<std::string> Errors;
  bool OK = Ctx->compile(Src, Errors);
  EXPECT_TRUE(OK) << (Errors.empty() ? "" : Errors[0]);
  return Ctx;
}

// Triangular-sum region: one specialization per distinct n under cache_all.
const char *SumSrc = "int f(int n) {\n"
                     "  int i;\n"
                     "  make_static(n, i : cache_all);\n"
                     "  int s = 0;\n"
                     "  for (i = 0; i < n; i = i + 1) { s = s + i; }\n"
                     "  return s;\n"
                     "}";

int64_t triangular(int64_t N) { return N * (N - 1) / 2; }

// The acceptance criterion of the refactor: buildDynamic and buildServer
// share RegionExecutionCore, so the same key sequence produces identical
// per-region counters and bit-identical disassembly (including the
// core-assigned "f.chainN" names) through both front ends.
TEST(RegionExecCore, StatsParityInlineVsServer) {
  const std::vector<int64_t> Keys = {3, 5, 7, 3, 5, 7, 4};

  auto InlineCtx = compile(SumSrc);
  auto E = InlineCtx->buildDynamic();
  int FI = E->findFunction("f");
  for (int64_t N : Keys)
    EXPECT_EQ(E->Machine->run(FI, {Word::fromInt(N)}).asInt(),
              triangular(N));

  auto ServerCtx = compile(SumSrc);
  server::ServerConfig Cfg;
  Cfg.NumWorkers = 1;
  Cfg.OnMiss = server::MissPolicy::Block;
  auto Server = ServerCtx->buildServer(OptFlags(), std::move(Cfg));
  auto Client = Server->makeClientVM();
  int FS = Server->findFunction("f");
  for (int64_t N : Keys)
    EXPECT_EQ(Client->run(FS, {Word::fromInt(N)}).asInt(), triangular(N));
  Server->drain();

  const runtime::RegionStats &SI = E->RT->stats(0);
  runtime::RegionStats SS = Server->regionStats(0);
  EXPECT_EQ(SI.SpecializationRuns, 4u); // 3, 5, 7, 4
  EXPECT_EQ(SS.SpecializationRuns, SI.SpecializationRuns);
  EXPECT_GT(SI.InstructionsGenerated, 0u);
  EXPECT_EQ(SS.InstructionsGenerated, SI.InstructionsGenerated);
  EXPECT_EQ(SS.CodeCapHits, SI.CodeCapHits);

  std::string DisInline = E->RT->disassembleRegion(0);
  std::string DisServer = Server->disassembleRegion(0);
  EXPECT_FALSE(DisInline.empty());
  EXPECT_EQ(DisInline, DisServer);
  // Chain naming comes from the one core-global counter in both builds.
  EXPECT_NE(DisInline.find("f.chain1"), std::string::npos);
  EXPECT_NE(DisInline.find("f.chain4"), std::string::npos);
}

// Golden output of a complete (single-way) unrolling: the loop over a
// static bound disappears entirely; what remains is the residue of the
// dynamic computation plus the region exit.
TEST(RegionExecCore, GoldenDisassemblySingleWayUnroll) {
  auto Ctx = compile(SumSrc);
  auto E = Ctx->buildDynamic();
  int F = E->findFunction("f");
  EXPECT_EQ(E->Machine->run(F, {Word::fromInt(3)}).asInt(), 3);
  std::string Dis = E->RT->disassembleRegion(0);
  // n=3: the loop is gone; only the dynamic accumulator residue remains
  // (s = 0, then the two non-zero additions), then the region exit.
  const char *Golden =
      "; code object 'f.chain1': 4 instructions, 12 regs\n"
      "    0:  consti r3, 0\n"
      "    1:  addi r3, r3, 1\n"
      "    2:  addi r3, r3, 2\n"
      "    3:  exit_region resume @7\n";
  EXPECT_EQ(Dis, Golden) << "actual:\n" << Dis;
}

// Golden output of a multi-way unrolling: an interpreter-style loop whose
// static pc can revisit a value emits a real backward branch through the
// memoized (context, statics) entry instead of unrolling forever.
TEST(RegionExecCore, GoldenDisassemblyMultiWayUnroll) {
  auto Ctx = compile("int f(int* prog, int* cnt) {\n"
                     "  int pc = 0;\n"
                     "  make_static(prog, pc);\n"
                     "  int acc = 0;\n"
                     "  while (pc < 3) {\n"
                     "    int op = prog@[pc];\n"
                     "    if (op == 0) { acc = acc + 1; pc = pc + 1; }\n"
                     "    else { if (op == 1) {\n"
                     "      cnt[0] = cnt[0] - 1;\n"
                     "      if (cnt[0] > 0) { pc = 0; } else { pc = pc + 1; }\n"
                     "    } else { pc = 3; } }\n"
                     "  }\n"
                     "  return acc;\n"
                     "}");
  auto E = Ctx->buildDynamic();
  vm::VM &M = *E->Machine;
  int64_t Prog = M.allocMemory(3);
  int64_t Cnt = M.allocMemory(1);
  M.memory()[Prog] = Word::fromInt(0);     // acc++
  M.memory()[Prog + 1] = Word::fromInt(1); // loop back while --cnt > 0
  M.memory()[Prog + 2] = Word::fromInt(2); // halt
  M.memory()[Cnt] = Word::fromInt(5);
  int F = E->findFunction("f");
  EXPECT_EQ(M.run(F, {Word::fromInt(Prog), Word::fromInt(Cnt)}).asInt(), 5);
  std::string Dis = E->RT->disassembleRegion(0);
  // The prog@[] opcode fetches fold away; pc=0's acc++ residue is followed
  // by the cnt decrement and a REAL backward branch (`br @1`) to the
  // memoized pc=0 entry — the loop did not unroll 5 times.
  const char *Golden =
      "; code object 'f.chain1': 10 instructions, 37 regs\n"
      "    0:  consti r4, 0\n"
      "    1:  addi r4, r4, 1\n"
      "    2:  load r22, [r1 + 0]\n"
      "    3:  subi r24, r22, 1\n"
      "    4:  store [r1 + 0], r24\n"
      "    5:  load r28, [r1 + 0]\n"
      "    6:  cmpgti r30, r28, 0\n"
      "    7:  condbr r30, @8, @9\n"
      "    8:  br @1\n"
      "    9:  exit_region resume @8\n";
  EXPECT_EQ(Dis, Golden) << "actual:\n" << Dis;
}

// The CLOCK capacity bound now works through the inline front end too:
// a budget of 2 entries keeps at most 2 specializations resident, counts
// the evictions in RegionStats, and respecializes evicted keys correctly.
TEST(RegionExecCore, InlineEvictionBoundsResidency) {
  auto Ctx = compile(SumSrc);
  runtime::ChainBudget Budget;
  Budget.MaxEntries = 2;
  auto E = Ctx->buildDynamic(OptFlags(), vm::CostModel(), vm::ICacheConfig(),
                             Budget);
  int F = E->findFunction("f");
  for (int64_t N : {2, 3, 4, 5, 6}) // 5 distinct keys through 2 slots
    EXPECT_EQ(E->Machine->run(F, {Word::fromInt(N)}).asInt(),
              triangular(N));
  const runtime::RegionStats &St = E->RT->stats(0);
  EXPECT_EQ(St.SpecializationRuns, 5u);
  EXPECT_GE(St.Evictions, 3u);
  EXPECT_LE(E->RT->core().residentEntries(0), 2u);

  // Evicted keys miss and respecialize; the resident set stays bounded.
  EXPECT_EQ(E->Machine->run(F, {Word::fromInt(2)}).asInt(), triangular(2));
  EXPECT_GE(E->RT->stats(0).SpecializationRuns, 6u);
  EXPECT_LE(E->RT->core().residentEntries(0), 2u);

  // No client is inside dynamic code, so every evicted chain is
  // reclaimable and only the resident ones survive collection.
  E->RT->core().collectChains();
  EXPECT_LE(E->RT->core().liveChains(), 2u);
}

// MaxRegionInstrs is a soft cap surfaced as a counter, not an abort: a
// region that outgrows it still runs to the correct answer.
TEST(RegionExecCore, CodeCapHitsIsSoft) {
  auto Ctx = compile(SumSrc);
  OptFlags Flags;
  Flags.MaxRegionInstrs = 4;
  auto E = Ctx->buildDynamic(Flags);
  int F = E->findFunction("f");
  EXPECT_EQ(E->Machine->run(F, {Word::fromInt(20)}).asInt(),
            triangular(20));
  EXPECT_GT(E->RT->stats(0).CodeCapHits, 0u);
  EXPECT_EQ(E->RT->stats(0).SpecializationRuns, 1u);
}

} // namespace
