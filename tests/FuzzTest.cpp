//===- tests/FuzzTest.cpp - property-based equivalence testing --------------------===//
//
// The system's core invariant: for ANY annotated program, ANY inputs, and
// ANY combination of optimization toggles, the dynamically compiled
// configuration computes exactly what the statically compiled one does.
// This suite generates random annotated MiniC programs (structured so
// they always terminate), runs both configurations on random inputs under
// every single-toggle-off configuration plus all-on/all-off, and compares
// results and output memory bit-for-bit.
//
//===----------------------------------------------------------------------===//

#include "core/DycContext.h"

#include <gtest/gtest.h>

using namespace dyc;

namespace {

/// Generates a random terminating annotated function over:
///   a  — a static int array (annotated, read via a mix of @ and plain loads)
///   b  — a dynamic int array (read/written)
///   n  — the static trip count
///   x,y — dynamic scalars
struct ProgramGen {
  DeterministicRNG RNG;
  explicit ProgramGen(uint64_t Seed) : RNG(Seed) {}

  std::string pick(std::initializer_list<const char *> Opts) {
    size_t K = RNG.nextBelow(Opts.size());
    return *(Opts.begin() + K);
  }

  /// A random integer expression of bounded depth.
  std::string expr(int Depth) {
    if (Depth <= 0) {
      switch (RNG.nextBelow(8)) {
      case 0: return "i";
      case 1: return "x";
      case 2: return "y";
      case 3: return "s0";
      case 4: return "s1";
      case 5: return "a@[i]";
      case 6: return "a[i]";
      default:
        return formatString("%d", (int)RNG.nextBelow(64) - 16);
      }
    }
    switch (RNG.nextBelow(10)) {
    case 0:
      return "(" + expr(Depth - 1) + " + " + expr(Depth - 1) + ")";
    case 1:
      return "(" + expr(Depth - 1) + " - " + expr(Depth - 1) + ")";
    case 2:
      return "(" + expr(Depth - 1) + " * " + expr(Depth - 1) + ")";
    case 3:
      return "(" + expr(Depth - 1) + " & " + expr(Depth - 1) + ")";
    case 4:
      return "(" + expr(Depth - 1) + " | " + expr(Depth - 1) + ")";
    case 5:
      return "(" + expr(Depth - 1) + " ^ " + expr(Depth - 1) + ")";
    case 6:
      return "(" + expr(Depth - 1) + " < " + expr(Depth - 1) + ")";
    case 7: // division by a guaranteed-nonzero small value
      return "(" + expr(Depth - 1) + " / (1 + (" + expr(Depth - 1) +
             " & 7)))";
    case 8: // remainder, same guard
      return "(" + expr(Depth - 1) + " % (1 + (" + expr(Depth - 1) +
             " & 3)))";
    default:
      return "(b[(" + expr(Depth - 1) + ") & 15] + " + expr(Depth - 1) +
             ")";
    }
  }

  std::string stmt() {
    switch (RNG.nextBelow(7)) {
    case 5:
      // A guarded continue exercises the for-latch path.
      return "if ((" + expr(1) + " & 7) == 3) { continue; }";
    case 6:
      return "if ((" + expr(1) + " & 15) == 9) { break; }";
    case 0:
      return "s0 = " + expr(2) + ";";
    case 1:
      return "s1 = " + expr(2) + ";";
    case 2:
      return "b[(" + expr(1) + ") & 15] = " + expr(2) + ";";
    case 3:
      return "if (" + expr(1) + " < " + expr(1) + ") { s0 = " + expr(1) +
             "; } else { s1 = " + expr(1) + "; }";
    default:
      return "if (" + expr(1) + ") { b[i & 15] = " + expr(1) + "; }";
    }
  }

  std::string generate() {
    std::string Policy =
        pick({": cache_all", ": cache_one", ": cache_one_unchecked",
              ": cache_indexed"});
    std::string Body;
    unsigned NumStmts = 2 + RNG.nextBelow(4);
    for (unsigned I = 0; I != NumStmts; ++I)
      Body += "    " + stmt() + "\n";
    std::string Src = "int f(int* a, int* b, int n, int x, int y) {\n"
                      "  int i;\n"
                      "  make_static(a, n, i " +
                      Policy +
                      ");\n"
                      "  int s0 = 1;\n"
                      "  int s1 = y;\n"
                      "  for (i = 0; i < n; i = i + 1) {\n" +
                      Body +
                      "  }\n"
                      "  return s0 ^ s1;\n"
                      "}\n";
    return Src;
  }
};

struct RunResult {
  int64_t Ret = 0;
  std::vector<uint64_t> BMem;
};

RunResult runConfig(core::Executable &E, int64_t N, int64_t X, int64_t Y,
                    const std::vector<int64_t> &AVals,
                    const std::vector<int64_t> &BVals) {
  vm::VM &M = *E.Machine;
  int64_t A = M.allocMemory(static_cast<int64_t>(AVals.size()));
  int64_t B = M.allocMemory(static_cast<int64_t>(BVals.size()));
  for (size_t I = 0; I != AVals.size(); ++I)
    M.memory()[A + static_cast<int64_t>(I)] = Word::fromInt(AVals[I]);
  for (size_t I = 0; I != BVals.size(); ++I)
    M.memory()[B + static_cast<int64_t>(I)] = Word::fromInt(BVals[I]);
  int F = E.findFunction("f");
  EXPECT_GE(F, 0);
  Word R = M.run(static_cast<uint32_t>(F),
                 {Word::fromInt(A), Word::fromInt(B), Word::fromInt(N),
                  Word::fromInt(X), Word::fromInt(Y)});
  RunResult Out;
  Out.Ret = R.asInt();
  for (size_t I = 0; I != BVals.size(); ++I)
    Out.BMem.push_back(M.memory()[B + static_cast<int64_t>(I)].Bits);
  return Out;
}

class FuzzEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(FuzzEquivalence, StaticAndDynamicAgreeUnderAllConfigs) {
  uint64_t Seed = 0xf00d + static_cast<uint64_t>(GetParam()) * 7919;
  ProgramGen Gen(Seed);
  std::string Src = Gen.generate();

  core::DycContext Ctx;
  std::vector<std::string> Errors;
  ASSERT_TRUE(Ctx.compile(Src, Errors))
      << Src << "\n" << (Errors.empty() ? "" : Errors[0]);

  DeterministicRNG In(Seed ^ 0xabcdef);
  const int64_t N = 1 + static_cast<int64_t>(In.nextBelow(6));
  std::vector<int64_t> AVals, BVals;
  for (int I = 0; I != 16; ++I) {
    // Bias the static array toward the ZCP/SR special values.
    switch (In.nextBelow(5)) {
    case 0: AVals.push_back(0); break;
    case 1: AVals.push_back(1); break;
    case 2: AVals.push_back(8); break;
    default: AVals.push_back(static_cast<int64_t>(In.nextBelow(100)) - 50);
    }
    BVals.push_back(static_cast<int64_t>(In.nextBelow(1000)) - 500);
  }
  int64_t X = static_cast<int64_t>(In.nextBelow(1000)) - 500;
  int64_t Y = static_cast<int64_t>(In.nextBelow(1000)) - 500;

  auto StaticE = Ctx.buildStatic();
  RunResult Ref = runConfig(*StaticE, N, X, Y, AVals, BVals);

  // All-on, all-off, and each single toggle off.
  std::vector<OptFlags> Configs;
  Configs.emplace_back();
  {
    OptFlags AllOff;
    for (unsigned T = 0; T != OptFlags::NumToggles; ++T)
      AllOff.toggle(T) = false;
    Configs.push_back(AllOff);
  }
  for (unsigned T = 0; T != OptFlags::NumToggles; ++T) {
    OptFlags Fl;
    Fl.toggle(T) = false;
    Configs.push_back(Fl);
  }
  // Backend axis: the template backend must be invisible to program
  // results (all-on flags, prebuilt-translation execution substrate).
  {
    OptFlags Tmpl;
    Tmpl.Backend = ExecBackend::Template;
    Configs.push_back(Tmpl);
  }

  for (size_t C = 0; C != Configs.size(); ++C) {
    auto DynE = Ctx.buildDynamic(Configs[C]);
    RunResult Got = runConfig(*DynE, N, X, Y, AVals, BVals);
    EXPECT_EQ(Got.Ret, Ref.Ret)
        << "config " << C << " seed " << Seed << "\n" << Src;
    EXPECT_EQ(Got.BMem, Ref.BMem)
        << "config " << C << " seed " << Seed << "\n" << Src;
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, FuzzEquivalence,
                         ::testing::Range(0, 200));

//===----------------------------------------------------------------------===//
// Floating-point fuzzing: the ZCP/DAE machinery treats 0.0 and 1.0
// specially, so the static weight vector is biased toward them; results
// must still match the static baseline bit-for-bit.
//===----------------------------------------------------------------------===//

struct FloatGen {
  DeterministicRNG RNG;
  explicit FloatGen(uint64_t Seed) : RNG(Seed) {}

  std::string fexpr(int Depth) {
    if (Depth <= 0) {
      switch (RNG.nextBelow(6)) {
      case 0: return "x";
      case 1: return "acc";
      case 2: return "w@[i]";
      case 3: return "b[i]";
      case 4: return "(double)i";
      default:
        return formatString("%d.%u", (int)RNG.nextBelow(4),
                            (unsigned)RNG.nextBelow(100));
      }
    }
    switch (RNG.nextBelow(5)) {
    case 0: return "(" + fexpr(Depth - 1) + " + " + fexpr(Depth - 1) + ")";
    case 1: return "(" + fexpr(Depth - 1) + " - " + fexpr(Depth - 1) + ")";
    case 2: return "(" + fexpr(Depth - 1) + " * " + fexpr(Depth - 1) + ")";
    case 3: // division by a value bounded away from zero
      return "(" + fexpr(Depth - 1) + " / (1.5 + " + fexpr(Depth - 1) +
             " * 0.0))";
    default:
      return "(" + fexpr(Depth - 1) + " * w@[(i + 1) & 7])";
    }
  }

  std::string generate() {
    std::string Body;
    unsigned NumStmts = 2 + RNG.nextBelow(3);
    for (unsigned I = 0; I != NumStmts; ++I) {
      if (RNG.nextBelow(3) == 0)
        Body += "    b[i & 7] = " + fexpr(2) + ";\n";
      else
        Body += "    acc = " + fexpr(2) + ";\n";
    }
    return "double f(double* w, double* b, int n, double x) {\n"
           "  int i;\n"
           "  make_static(w, n, i : cache_all);\n"
           "  double acc = 0.0;\n"
           "  for (i = 0; i < n; i = i + 1) {\n" +
           Body +
           "  }\n"
           "  return acc;\n"
           "}\n";
  }
};

class FloatFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FloatFuzz, FloatProgramsAgreeBitForBit) {
  uint64_t Seed = 0xf10a7 + static_cast<uint64_t>(GetParam()) * 104729;
  FloatGen Gen(Seed);
  std::string Src = Gen.generate();
  core::DycContext Ctx;
  std::vector<std::string> Errors;
  ASSERT_TRUE(Ctx.compile(Src, Errors))
      << Src << (Errors.empty() ? "" : Errors[0]);

  auto Run = [&](core::Executable &E) {
    vm::VM &M = *E.Machine;
    int64_t W = M.allocMemory(8);
    int64_t B = M.allocMemory(8);
    DeterministicRNG In(Seed ^ 0x55);
    for (int I = 0; I != 8; ++I) {
      // Bias toward the special values 0.0 and 1.0.
      switch (In.nextBelow(4)) {
      case 0: M.memory()[W + I] = Word::fromFloat(0.0); break;
      case 1: M.memory()[W + I] = Word::fromFloat(1.0); break;
      default:
        M.memory()[W + I] = Word::fromFloat(In.nextDouble() * 4 - 2);
      }
      M.memory()[B + I] = Word::fromFloat(In.nextDouble() * 10 - 5);
    }
    int F = E.findFunction("f");
    Word R = M.run(F, {Word::fromInt(W), Word::fromInt(B),
                       Word::fromInt(5), Word::fromFloat(1.25)});
    // Normalize -0.0 to +0.0: floating zero/copy propagation replaces
    // x * 0.0 with a clear, which loses the sign of zero. This is
    // inherent to the paper's optimization (its annotations are
    // "potentially unsafe" assertions); everything else must match
    // bit-for-bit.
    auto Norm = [](Word W2) {
      return W2.Bits == 0x8000000000000000ull ? uint64_t(0) : W2.Bits;
    };
    std::vector<uint64_t> Out = {Norm(R)};
    for (int I = 0; I != 8; ++I)
      Out.push_back(Norm(M.memory()[B + I]));
    return Out;
  };

  auto SE = Ctx.buildStatic();
  std::vector<uint64_t> Ref = Run(*SE);
  for (unsigned T = 0; T <= OptFlags::NumToggles; ++T) {
    OptFlags Fl;
    if (T > 0)
      Fl.toggle(T - 1) = false;
    auto DE = Ctx.buildDynamic(Fl);
    EXPECT_EQ(Run(*DE), Ref) << "config " << T << "\n" << Src;
  }
}

INSTANTIATE_TEST_SUITE_P(FloatPrograms, FloatFuzz,
                         ::testing::Range(0, 60));

//===----------------------------------------------------------------------===//
// Re-entry property: repeated invocations through the cache agree with a
// fresh static run every time, for several promoted values.
//===----------------------------------------------------------------------===//

//===----------------------------------------------------------------------===//
// Speculation matrix: the same generated programs, with annotations
// stripped and re-discovered online. Whatever the promotion lifecycle
// does (profile, promote, guard-hit, guard-fail, decline), every call
// must agree with the static build bit-for-bit, and so must memory.
//===----------------------------------------------------------------------===//

class SpeculationFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SpeculationFuzz, SpeculativeLifecycleStaysBitIdentical) {
  uint64_t Seed = 0x5bec + static_cast<uint64_t>(GetParam()) * 6121;
  ProgramGen Gen(Seed);
  std::string Src = Gen.generate();

  core::DycContext Ctx;
  std::vector<std::string> Errors;
  ASSERT_TRUE(Ctx.compile(Src, Errors))
      << Src << "\n" << (Errors.empty() ? "" : Errors[0]);

  auto StaticE = Ctx.buildStatic();
  auto SpecOn = Ctx.buildSpeculative();
  speculate::SpeculationPolicy Off;
  Off.Enabled = false;
  auto SpecOff = Ctx.buildSpeculative(Off);
  // Backend axis: the full speculative lifecycle (promote, guard, demote)
  // on the template backend's prebuilt-translation substrate.
  OptFlags Tmpl;
  Tmpl.Backend = ExecBackend::Template;
  auto SpecTmpl = Ctx.buildSpeculative(speculate::SpeculationPolicy(), Tmpl);

  // Identical memory images in all four machines.
  DeterministicRNG In(Seed ^ 0x77);
  std::vector<core::Executable *> Es = {StaticE.get(), SpecOn.get(),
                                        SpecOff.get(), SpecTmpl.get()};
  int64_t A = 0, B = 0;
  for (core::Executable *E : Es) {
    A = E->Machine->allocMemory(16);
    B = E->Machine->allocMemory(16);
  }
  for (int I = 0; I != 16; ++I) {
    int64_t AV = static_cast<int64_t>(In.nextBelow(100)) - 50;
    int64_t BV = static_cast<int64_t>(In.nextBelow(1000)) - 500;
    for (core::Executable *E : Es) {
      E->Machine->memory()[A + I] = Word::fromInt(AV);
      E->Machine->memory()[B + I] = Word::fromInt(BV);
    }
  }

  const int64_t N = 1 + static_cast<int64_t>(In.nextBelow(6));
  int F = StaticE->findFunction("f");
  ASSERT_GE(F, 0);

  // Enough calls to cross the promotion threshold and exercise the
  // guarded steady state; x rotates through a few values so some seeds
  // promote it (dominant), some exclude it, and some fail its guard.
  speculate::SpeculationPolicy Defaults;
  const int Calls = static_cast<int>(Defaults.HotCalls) + 8;
  for (int C = 0; C != Calls; ++C) {
    int64_t X = (C * C) % 3;
    int64_t Y = static_cast<int64_t>(In.nextBelow(100)) - 50;
    std::vector<Word> Args = {Word::fromInt(A), Word::fromInt(B),
                              Word::fromInt(N), Word::fromInt(X),
                              Word::fromInt(Y)};
    Word RS = StaticE->Machine->run(static_cast<uint32_t>(F), Args);
    Word ROn = SpecOn->Machine->run(static_cast<uint32_t>(F), Args);
    Word ROff = SpecOff->Machine->run(static_cast<uint32_t>(F), Args);
    Word RTm = SpecTmpl->Machine->run(static_cast<uint32_t>(F), Args);
    ASSERT_EQ(ROn.Bits, RS.Bits)
        << "speculation-on diverged at call " << C << " seed " << Seed
        << "\n" << Src;
    ASSERT_EQ(ROff.Bits, RS.Bits)
        << "speculation-off diverged at call " << C << " seed " << Seed
        << "\n" << Src;
    ASSERT_EQ(RTm.Bits, RS.Bits)
        << "template backend diverged at call " << C << " seed " << Seed
        << "\n" << Src;
  }
  // Identical speculative decisions on both backends: the seam must not
  // perturb profiling, promotion, or the guard lifecycle.
  EXPECT_EQ(SpecTmpl->Spec->stats().Promotions,
            SpecOn->Spec->stats().Promotions);
  EXPECT_EQ(SpecTmpl->Spec->stats().GuardHits,
            SpecOn->Spec->stats().GuardHits);
  EXPECT_EQ(SpecTmpl->Machine->execCycles(), SpecOn->Machine->execCycles())
      << "seed " << Seed;
  for (int I = 0; I != 16; ++I) {
    EXPECT_EQ(SpecOn->Machine->memory()[B + I].Bits,
              StaticE->Machine->memory()[B + I].Bits)
        << "memory word " << I << " seed " << Seed << "\n" << Src;
    EXPECT_EQ(SpecOff->Machine->memory()[B + I].Bits,
              StaticE->Machine->memory()[B + I].Bits)
        << "memory word " << I << " seed " << Seed;
  }
  // The disabled policy must never have speculated at all.
  EXPECT_EQ(SpecOff->Spec->stats().CallsObserved, 0u);
}

INSTANTIATE_TEST_SUITE_P(Programs, SpeculationFuzz,
                         ::testing::Range(0, 60));

TEST(FuzzReentry, ManyPromotedValuesThroughCacheAll) {
  ProgramGen Gen(0x5eed);
  std::string Src = "int f(int* a, int* b, int n, int x, int y) {\n"
                    "  int i;\n"
                    "  make_static(a, n, i : cache_all);\n"
                    "  int s0 = 0;\n"
                    "  int s1 = x;\n"
                    "  for (i = 0; i < n; i = i + 1) {\n"
                    "    s0 = s0 + a@[i] * b[i];\n"
                    "    s1 = s1 ^ (s0 >> (i & 7));\n"
                    "  }\n"
                    "  return s0 + s1;\n"
                    "}\n";
  core::DycContext Ctx;
  std::vector<std::string> Errors;
  ASSERT_TRUE(Ctx.compile(Src, Errors));

  auto StaticE = Ctx.buildStatic();
  auto DynE = Ctx.buildDynamic();
  vm::VM &SM = *StaticE->Machine;
  vm::VM &DM = *DynE->Machine;
  int64_t A1 = SM.allocMemory(16), B1 = SM.allocMemory(16);
  int64_t A2 = DM.allocMemory(16), B2 = DM.allocMemory(16);
  ASSERT_EQ(A1, A2);
  ASSERT_EQ(B1, B2);
  DeterministicRNG RNG(0x1234);
  for (int I = 0; I != 16; ++I) {
    int64_t AV = static_cast<int64_t>(RNG.nextBelow(10));
    int64_t BV = static_cast<int64_t>(RNG.nextBelow(100)) - 50;
    SM.memory()[A1 + I] = Word::fromInt(AV);
    DM.memory()[A1 + I] = Word::fromInt(AV);
    SM.memory()[B1 + I] = Word::fromInt(BV);
    DM.memory()[B1 + I] = Word::fromInt(BV);
  }
  int F = StaticE->findFunction("f");
  // Cycle through trip counts; the cache accumulates one version each.
  for (int Round = 0; Round != 3; ++Round) {
    for (int64_t N = 0; N <= 8; ++N) {
      std::vector<Word> Args = {Word::fromInt(A1), Word::fromInt(B1),
                                Word::fromInt(N), Word::fromInt(Round),
                                Word::fromInt(7 - N)};
      EXPECT_EQ(DM.run(F, Args).asInt(), SM.run(F, Args).asInt())
          << "n=" << N << " round=" << Round;
    }
  }
  // 9 distinct trip counts -> 9 specializations, reused across rounds.
  EXPECT_EQ(DynE->RT->stats(0).SpecializationRuns, 9u);
}

//===----------------------------------------------------------------------===//
// Tiering axis: random programs through the tiered SpecServer across
// threshold scripts, engines, and backends. Tiering moves specialization
// in time, so every call — cold, warm, hot-with-compile-in-flight, or
// specialized — must stay bit-identical to the static baseline.
//===----------------------------------------------------------------------===//

class TierFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TierFuzz, TieredExecutionStaysBitIdentical) {
  uint64_t Seed = 0x71e4 + static_cast<uint64_t>(GetParam()) * 6151;
  ProgramGen Gen(Seed);
  std::string Src = Gen.generate();

  core::DycContext Ctx;
  std::vector<std::string> Errors;
  ASSERT_TRUE(Ctx.compile(Src, Errors))
      << Src << "\n" << (Errors.empty() ? "" : Errors[0]);

  DeterministicRNG In(Seed ^ 0x7ead);
  std::vector<int64_t> AVals, BVals;
  for (int I = 0; I != 16; ++I) {
    AVals.push_back(static_cast<int64_t>(In.nextBelow(10)));
    BVals.push_back(static_cast<int64_t>(In.nextBelow(1000)) - 500);
  }
  int64_t X = static_cast<int64_t>(In.nextBelow(1000)) - 500;
  int64_t Y = static_cast<int64_t>(In.nextBelow(1000)) - 500;

  // One config per axis value: threshold scripts (born-hot sync, staged
  // sync, staged async), both engines, both backends.
  struct TierCfg {
    uint32_t Warm, Hot;
    bool Sync;
    ExecBackend Backend;
    vm::VM::EngineKind Engine;
  };
  const TierCfg Axis[] = {
      {0, 0, true, ExecBackend::Bytecode, vm::VM::EngineKind::Predecoded},
      {1, 3, true, ExecBackend::Bytecode, vm::VM::EngineKind::Legacy},
      {1, 2, false, ExecBackend::Template, vm::VM::EngineKind::Predecoded},
      {2, 5, false, ExecBackend::Bytecode, vm::VM::EngineKind::Legacy},
  };

  // The memory image must be identical in every VM — including the
  // server's specialization VM, whose memory the static (a@) loads read
  // at specialize time.
  int64_t ABase = -1, BBase = -1;
  auto Image = [&](vm::VM &M) {
    int64_t A = M.allocMemory(16), B = M.allocMemory(16);
    ABase = A; // deterministic allocator: same base in every fresh VM
    BBase = B;
    for (int I = 0; I != 16; ++I) {
      M.memory()[A + I] = Word::fromInt(AVals[I]);
      M.memory()[B + I] = Word::fromInt(BVals[I]);
    }
  };
  auto FillMem = [&](vm::VM &M) {
    for (int I = 0; I != 16; ++I) {
      M.memory()[ABase + I] = Word::fromInt(AVals[I]);
      M.memory()[BBase + I] = Word::fromInt(BVals[I]);
    }
  };
  // Key-varying sequences are only a valid parity target for the fully
  // key-checked policies: cache_one_unchecked serves the resident entry
  // for ANY key (the documented unsafety), and cache_indexed's non-index
  // key words are unchecked invariants — under those, *which* chain is
  // resident depends on promotion timing, so results legitimately differ
  // from static. For those policies a constant key still drives every
  // tier transition (cold -> warm -> hot -> hit) and parity holds no
  // matter when the install lands.
  bool Checked = Src.find("cache_all") != std::string::npos ||
                 (Src.find("cache_one") != std::string::npos &&
                  Src.find("cache_one_unchecked") == std::string::npos);
  std::vector<int64_t> Trips;
  if (Checked)
    for (int Round = 0; Round != 2; ++Round)
      for (int64_t N = 1; N <= 5; ++N)
        Trips.push_back(N);
  else
    Trips.assign(10, 3);

  auto CallSeq = [&](vm::VM &M, int F) {
    std::vector<int64_t> R;
    for (int64_t N : Trips) {
      FillMem(M); // reset: bodies may write b[]
      R.push_back(M.run(static_cast<uint32_t>(F),
                        {Word::fromInt(ABase), Word::fromInt(BBase),
                         Word::fromInt(N), Word::fromInt(X),
                         Word::fromInt(Y)})
                      .asInt());
      for (int I = 0; I != 16; ++I)
        R.push_back(static_cast<int64_t>(M.memory()[BBase + I].Bits));
    }
    return R;
  };

  // Static reference: the same call sequence (ten calls, so staged
  // configs reach every tier) on the static machine.
  auto StaticE = Ctx.buildStatic();
  vm::VM &SM = *StaticE->Machine;
  Image(SM);
  int64_t SA = ABase, SB = BBase;
  int SF = StaticE->findFunction("f");
  ASSERT_GE(SF, 0);
  std::vector<int64_t> Ref = CallSeq(SM, SF);

  for (size_t C = 0; C != sizeof(Axis) / sizeof(Axis[0]); ++C) {
    const TierCfg &A = Axis[C];
    OptFlags Fl;
    Fl.Backend = A.Backend;
    Fl.Tier.WarmThreshold = A.Warm;
    Fl.Tier.HotThreshold = A.Hot;
    Fl.Tier.SyncInstall = A.Sync;
    server::ServerConfig Cfg;
    Cfg.NumWorkers = 2;
    Cfg.MemoryImage = Image;
    auto Server = Ctx.buildTiered(Fl, std::move(Cfg));
    std::unique_ptr<vm::VM> Client = Server->makeClientVM();
    Client->Engine = A.Engine;
    ASSERT_EQ(ABase, SA);
    ASSERT_EQ(BBase, SB);
    int F = Server->findFunction("f");
    std::vector<int64_t> Got = CallSeq(*Client, F);
    EXPECT_EQ(Got, Ref) << "tier config " << C << " seed " << Seed << "\n"
                        << Src;
    Server->drain();
    server::ServerStatsSnapshot S = Server->stats();
    EXPECT_TRUE(S.TierEnabled);
    EXPECT_EQ(S.FallbacksInFlight + S.FallbacksFailed +
                  S.FallbacksNotRequested,
              S.Fallbacks)
        << "tier config " << C << " seed " << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, TierFuzz, ::testing::Range(0, 40));

//===----------------------------------------------------------------------===//
// Tenant axis: random programs replayed by several tenants of one
// multi-tenant server versus a dedicated single-tenant server. The
// multi-tenant contract is total transparency: every tenant's results,
// simulated machine counters, and server-side ledger must be
// bit-identical to the dedicated server's, no matter how many chains the
// store deduplicated away underneath.
//===----------------------------------------------------------------------===//

class TenantFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TenantFuzz, TenantsStayBitIdenticalToDedicatedServer) {
  uint64_t Seed = 0x7e4a + static_cast<uint64_t>(GetParam()) * 9173;
  ProgramGen Gen(Seed);
  std::string Src = Gen.generate();

  core::DycContext Ctx;
  std::vector<std::string> Errors;
  ASSERT_TRUE(Ctx.compile(Src, Errors))
      << Src << "\n" << (Errors.empty() ? "" : Errors[0]);

  DeterministicRNG In(Seed ^ 0x7e7a);
  std::vector<int64_t> AVals, BVals;
  for (int I = 0; I != 16; ++I) {
    AVals.push_back(static_cast<int64_t>(In.nextBelow(10)));
    BVals.push_back(static_cast<int64_t>(In.nextBelow(1000)) - 500);
  }
  int64_t X = static_cast<int64_t>(In.nextBelow(1000)) - 500;
  int64_t Y = static_cast<int64_t>(In.nextBelow(1000)) - 500;

  int64_t ABase = -1, BBase = -1;
  auto Image = [&](vm::VM &M) {
    int64_t A = M.allocMemory(16), B = M.allocMemory(16);
    ABase = A;
    BBase = B;
    for (int I = 0; I != 16; ++I) {
      M.memory()[A + I] = Word::fromInt(AVals[I]);
      M.memory()[B + I] = Word::fromInt(BVals[I]);
    }
  };
  auto FillMem = [&](vm::VM &M) {
    for (int I = 0; I != 16; ++I) {
      M.memory()[ABase + I] = Word::fromInt(AVals[I]);
      M.memory()[BBase + I] = Word::fromInt(BVals[I]);
    }
  };
  // Unlike the tiered axis, unchecked policies are fine here: both
  // servers replay the identical sequential call order, so the resident
  // chain evolves identically. Vary keys for checked policies anyway.
  bool Checked = Src.find("cache_all") != std::string::npos ||
                 (Src.find("cache_one") != std::string::npos &&
                  Src.find("cache_one_unchecked") == std::string::npos);
  std::vector<int64_t> Trips;
  if (Checked)
    for (int Round = 0; Round != 2; ++Round)
      for (int64_t N = 1; N <= 5; ++N)
        Trips.push_back(N);
  else
    Trips.assign(8, 3);

  auto CallSeq = [&](vm::VM &M, int F) {
    std::vector<int64_t> R;
    for (int64_t N : Trips) {
      FillMem(M); // reset: bodies may write b[]
      R.push_back(M.run(static_cast<uint32_t>(F),
                        {Word::fromInt(ABase), Word::fromInt(BBase),
                         Word::fromInt(N), Word::fromInt(X),
                         Word::fromInt(Y)})
                      .asInt());
      for (int I = 0; I != 16; ++I)
        R.push_back(static_cast<int64_t>(M.memory()[BBase + I].Bits));
    }
    return R;
  };

  // Dedicated single-tenant reference over the same module.
  server::ServerConfig RefCfg;
  RefCfg.NumWorkers = 1;
  RefCfg.MemoryImage = Image;
  auto Ref = Ctx.buildServer(OptFlags(), std::move(RefCfg));
  std::unique_ptr<vm::VM> RefVM = Ref->makeClientVM();
  int RF = Ref->findFunction("f");
  ASSERT_GE(RF, 0);
  std::vector<int64_t> Want = CallSeq(*RefVM, RF);
  server::ServerStatsSnapshot RefStats = Ref->stats();

  const uint32_t NumTenants = 2 + static_cast<uint32_t>(GetParam() % 2);
  server::ServerConfig Cfg;
  Cfg.NumWorkers = 1;
  Cfg.MemoryImage = Image;
  auto Server = Ctx.buildMultiTenant(OptFlags(), std::move(Cfg));
  int F = Server->findFunction("f");
  uint64_t TenantSpecRuns = 0;
  for (uint32_t T = 1; T <= NumTenants; ++T) {
    std::unique_ptr<vm::VM> Client = Server->makeClientVM(T);
    std::vector<int64_t> Got = CallSeq(*Client, F);
    EXPECT_EQ(Got, Want) << "tenant " << T << " seed " << Seed << "\n" << Src;
    EXPECT_EQ(Client->execCycles(), RefVM->execCycles())
        << "tenant " << T << " seed " << Seed;
    EXPECT_EQ(Client->dynCompCycles(), RefVM->dynCompCycles())
        << "tenant " << T << " seed " << Seed;
    EXPECT_EQ(Client->icache().hits(), RefVM->icache().hits())
        << "tenant " << T << " seed " << Seed;
    EXPECT_EQ(Client->icache().misses(), RefVM->icache().misses())
        << "tenant " << T << " seed " << Seed;
    server::ServerStatsSnapshot TS = Server->tenantStats(T);
    EXPECT_EQ(TS.Dispatches, RefStats.Dispatches) << "tenant " << T;
    EXPECT_EQ(TS.CacheHits, RefStats.CacheHits) << "tenant " << T;
    EXPECT_EQ(TS.CacheMisses, RefStats.CacheMisses) << "tenant " << T;
    EXPECT_EQ(TS.SpecRuns, RefStats.SpecRuns) << "tenant " << T;
    EXPECT_EQ(TS.ChainsCreated, RefStats.ChainsCreated) << "tenant " << T;
    EXPECT_EQ(TS.Evictions, RefStats.Evictions) << "tenant " << T;
    TenantSpecRuns += TS.SpecRuns;
  }
  // Two-ledger identity: every tenant-view compile was either a real
  // generating-extension run or a store adoption.
  server::ServerStatsSnapshot S = Server->stats();
  EXPECT_EQ(TenantSpecRuns, S.SpecRuns + S.DedupHits) << "seed " << Seed;
  EXPECT_EQ(S.Tenants, NumTenants);
}

INSTANTIATE_TEST_SUITE_P(Programs, TenantFuzz, ::testing::Range(0, 25));

//===----------------------------------------------------------------------===//
// Staged-emit-plan axis: random programs under a random optimization
// matrix, backend, and engine, built twice with the plan path on and off.
// The plan is contractually a pure host-side acceleration, so results,
// memory, every simulated counter, and the disassembly of every region
// must be bit-identical — and only the plan counters may differ.
//===----------------------------------------------------------------------===//

class EmitPlanFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EmitPlanFuzz, PlanAndLegacyWalkStayBitIdentical) {
  uint64_t Seed = 0xe217 + static_cast<uint64_t>(GetParam()) * 7877;
  ProgramGen Gen(Seed);
  std::string Src = Gen.generate();

  core::DycContext Ctx;
  std::vector<std::string> Errors;
  ASSERT_TRUE(Ctx.compile(Src, Errors))
      << Src << "\n" << (Errors.empty() ? "" : Errors[0]);

  // One random configuration per seed; the plan mode is the ONLY
  // difference between the two builds (it is excluded from the flags
  // fingerprint, so both describe the same specialization policy).
  DeterministicRNG Cfg(Seed ^ 0x9a71);
  OptFlags Fl;
  for (unsigned T = 0; T != OptFlags::NumToggles; ++T)
    Fl.toggle(T) = Cfg.nextBelow(3) != 0; // each toggle off w.p. 1/3
  Fl.Backend = Cfg.nextBelow(2) ? ExecBackend::Template
                                : ExecBackend::Bytecode;
  vm::VM::EngineKind Engine = Cfg.nextBelow(2)
                                  ? vm::VM::EngineKind::Predecoded
                                  : vm::VM::EngineKind::Legacy;
  OptFlags OnFl = Fl, OffFl = Fl;
  OnFl.EmitPlan = EmitPlanMode::On;
  OffFl.EmitPlan = EmitPlanMode::Off;

  auto EOn = Ctx.buildDynamic(OnFl);
  auto EOff = Ctx.buildDynamic(OffFl);
  EOn->Machine->Engine = Engine;
  EOff->Machine->Engine = Engine;

  DeterministicRNG In(Seed ^ 0xabcdef);
  std::vector<int64_t> AVals, BVals;
  for (int I = 0; I != 16; ++I) {
    AVals.push_back(static_cast<int64_t>(In.nextBelow(10)));
    BVals.push_back(static_cast<int64_t>(In.nextBelow(1000)) - 500);
  }
  int64_t X = static_cast<int64_t>(In.nextBelow(1000)) - 500;
  int64_t Y = static_cast<int64_t>(In.nextBelow(1000)) - 500;

  // Varying trip counts churn the cache; the identical sequential call
  // order on both builds keeps even unchecked policies a fair target.
  for (int Round = 0; Round != 2; ++Round)
    for (int64_t N = 1; N <= 5; ++N) {
      RunResult GotOn = runConfig(*EOn, N, X, Y, AVals, BVals);
      RunResult GotOff = runConfig(*EOff, N, X, Y, AVals, BVals);
      ASSERT_EQ(GotOn.Ret, GotOff.Ret)
          << "n=" << N << " round=" << Round << " seed " << Seed << "\n"
          << Src;
      ASSERT_EQ(GotOn.BMem, GotOff.BMem)
          << "n=" << N << " round=" << Round << " seed " << Seed << "\n"
          << Src;
    }

  EXPECT_EQ(EOn->Machine->execCycles(), EOff->Machine->execCycles())
      << "seed " << Seed << "\n" << Src;
  EXPECT_EQ(EOn->Machine->dynCompCycles(), EOff->Machine->dynCompCycles())
      << "seed " << Seed << "\n" << Src;
  EXPECT_EQ(EOn->Machine->instrsExecuted(), EOff->Machine->instrsExecuted())
      << "seed " << Seed;
  EXPECT_EQ(EOn->Machine->icache().hits(), EOff->Machine->icache().hits())
      << "seed " << Seed;
  EXPECT_EQ(EOn->Machine->icache().misses(),
            EOff->Machine->icache().misses())
      << "seed " << Seed;

  ASSERT_EQ(EOn->RT->numRegions(), EOff->RT->numRegions());
  for (size_t Ord = 0; Ord != EOn->RT->numRegions(); ++Ord) {
    EXPECT_EQ(EOn->RT->disassembleRegion(Ord),
              EOff->RT->disassembleRegion(Ord))
        << "region " << Ord << " seed " << Seed << "\n" << Src;
    runtime::RegionStats On = EOn->RT->stats(Ord);
    const runtime::RegionStats &Off = EOff->RT->stats(Ord);
    EXPECT_EQ(Off.PlanBuilds + Off.PlanHits + Off.PlanBytes, 0u);
    if (On.SpecializationRuns > 0) {
      EXPECT_EQ(On.PlanBuilds, 1u) << "region " << Ord << " seed " << Seed;
      EXPECT_EQ(On.PlanBuilds + On.PlanHits, On.SpecializationRuns)
          << "region " << Ord << " seed " << Seed;
    }
    // Everything except the plan block must render identically.
    On.PlanEnabled = false;
    On.PlanBuilds = On.PlanHits = On.PlanBytes = 0;
    EXPECT_EQ(On.toString(), Off.toString())
        << "region " << Ord << " seed " << Seed << "\n" << Src;
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, EmitPlanFuzz, ::testing::Range(0, 40));

} // namespace
