//===- tests/WorkloadTest.cpp - Workload correctness and performance ----------------===//
//
// For every workload: the dynamically compiled configuration must produce
// bit-identical outputs to the statically compiled one, and for each the
// paper-documented optimizations must fire.
//
//===----------------------------------------------------------------------===//

#include "core/Harness.h"

#include <gtest/gtest.h>

using namespace dyc;
using core::RegionPerf;
using workloads::allWorkloads;
using workloads::Workload;

namespace {

class WorkloadRegion : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadRegion, DynamicMatchesStaticAndSpeedsUp) {
  const Workload &W = workloads::workloadByName(GetParam());
  RegionPerf P = core::measureRegion(W, OptFlags());
  EXPECT_TRUE(P.OutputsMatch) << W.Name << ": outputs diverged";
  EXPECT_GT(P.Stats.SpecializationRuns, 0u) << W.Name;
  EXPECT_GT(P.InstructionsGenerated, 0u) << W.Name;
  // Every workload in the paper achieves an asymptotic region speedup
  // with all optimizations on (Table 3: 1.2x .. 6.3x).
  EXPECT_GT(P.AsymptoticSpeedup, 1.0) << W.Name;
  // Dynamic compilation must pay off in finite time.
  EXPECT_GE(P.BreakEvenInvocations, 0.0) << W.Name;
}

std::vector<std::string> workloadNames() {
  std::vector<std::string> Names;
  for (const Workload &W : allWorkloads())
    Names.push_back(W.Name);
  return Names;
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadRegion, ::testing::ValuesIn(workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      std::string N = Info.param;
      for (char &C : N)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return N;
    });

TEST(WorkloadPrograms, WholeProgramsAgree) {
  for (const Workload &W : allWorkloads()) {
    core::WholeProgramPerf P = core::measureWholeProgram(W, OptFlags());
    EXPECT_TRUE(P.OutputsMatch) << W.Name;
    EXPECT_GT(P.PctInRegion, 0.0) << W.Name;
  }
}

} // namespace
