//===- tests/RuntimeTest.cpp - code cache and specializer unit tests --------------===//

#include "core/DycContext.h"
#include "runtime/CodeCache.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace dyc;
using runtime::CacheResult;
using runtime::CodeCache;

namespace {

std::vector<Word> key(int64_t A, int64_t B = 0) {
  return {Word::fromInt(A), Word::fromInt(B)};
}

TEST(CodeCacheTest, CacheAllKeepsEveryVersion) {
  CodeCache C(ir::CachePolicy::CacheAll);
  EXPECT_FALSE(C.lookup(key(1)).Hit);
  C.insert(key(1), 100);
  C.insert(key(2), 200);
  C.insert(key(3), 300);
  EXPECT_EQ(C.lookup(key(1)).Value, 100u);
  EXPECT_EQ(C.lookup(key(2)).Value, 200u);
  EXPECT_EQ(C.lookup(key(3)).Value, 300u);
  EXPECT_EQ(C.entries(), 3u);
}

TEST(CodeCacheTest, CacheOneEvicts) {
  CodeCache C(ir::CachePolicy::CacheOne);
  C.insert(key(1), 100);
  EXPECT_TRUE(C.lookup(key(1)).Hit);
  EXPECT_FALSE(C.lookup(key(2)).Hit); // checked: mismatch misses
  C.insert(key(2), 200);
  EXPECT_FALSE(C.lookup(key(1)).Hit); // evicted
  EXPECT_EQ(C.lookup(key(2)).Value, 200u);
  EXPECT_EQ(C.entries(), 1u);
}

TEST(CodeCacheTest, CacheIndexedDirectArray) {
  // Index position 1 (the second key word).
  CodeCache C(ir::CachePolicy::CacheIndexed, 1);
  EXPECT_FALSE(C.lookup(key(7, 3)).Hit);
  C.insert(key(7, 3), 300);
  C.insert(key(7, 250), 900);
  EXPECT_EQ(C.lookup(key(7, 3)).Value, 300u);
  EXPECT_EQ(C.lookup(key(7, 250)).Value, 900u);
  EXPECT_EQ(C.entries(), 2u);
  // Non-index key words are unchecked invariants (documented unsafety).
  EXPECT_EQ(C.lookup(key(999, 3)).Value, 300u);
}

TEST(CodeCacheTest, CacheOneUncheckedNeverChecks) {
  CodeCache C(ir::CachePolicy::CacheOneUnchecked);
  C.insert(key(1), 100);
  // The unsafe part, faithfully: a different key still "hits".
  CacheResult R = C.lookup(key(999));
  EXPECT_TRUE(R.Hit);
  EXPECT_EQ(R.Value, 100u);
}

TEST(CodeCacheTest, CacheIndexedOverflowFallsBackToHash) {
  CodeCache C(ir::CachePolicy::CacheIndexed, 1);
  C.insert(key(7, 3), 300);
  // An index value at or past MaxIndexedKey cannot address the direct
  // array; it degrades to the checked double-hash path instead of dying.
  const int64_t Big = static_cast<int64_t>(CodeCache::MaxIndexedKey);
  EXPECT_FALSE(C.lookup(key(7, Big)).Hit);
  C.insert(key(7, Big), 700);
  C.insert(key(7, Big + 12345), 800);
  EXPECT_EQ(C.lookup(key(7, Big)).Value, 700u);
  EXPECT_EQ(C.lookup(key(7, Big + 12345)).Value, 800u);
  EXPECT_EQ(C.lookup(key(7, 3)).Value, 300u); // in-range entry unaffected
  // Unlike in-range probes, the fallback compares the whole key.
  EXPECT_FALSE(C.lookup(key(8, Big)).Hit);
  EXPECT_EQ(C.entries(), 3u);
}

//===----------------------------------------------------------------------===//
// Specializer behavior through the public pipeline.
//===----------------------------------------------------------------------===//

std::unique_ptr<core::DycContext> compile(const std::string &Src) {
  auto Ctx = std::make_unique<core::DycContext>();
  std::vector<std::string> Errors;
  bool OK = Ctx->compile(Src, Errors);
  EXPECT_TRUE(OK) << (Errors.empty() ? "" : Errors[0]);
  return Ctx;
}

TEST(Specializer, CacheAllMemoizesPerValue) {
  auto Ctx = compile("int f(int n) {\n"
                     "  int i;\n"
                     "  make_static(n, i : cache_all);\n"
                     "  int s = 0;\n"
                     "  for (i = 0; i < n; i = i + 1) { s = s + i; }\n"
                     "  return s;\n"
                     "}");
  auto E = Ctx->buildDynamic();
  int F = E->findFunction("f");
  for (int64_t N : {3, 5, 3, 5, 3}) {
    Word R = E->Machine->run(F, {Word::fromInt(N)});
    EXPECT_EQ(R.asInt(), N * (N - 1) / 2);
  }
  const runtime::RegionStats &St = E->RT->stats(0);
  EXPECT_EQ(St.SpecializationRuns, 2u); // n=3 and n=5 only
  EXPECT_EQ(St.CacheHits, 3u);
  EXPECT_EQ(St.Dispatches, 5u);
}

TEST(Specializer, UncheckedPolicyRunsStaleCode) {
  // The documented unsafety of cache_one_unchecked: after specializing
  // for n=3, a call with n=5 reuses the n=3 code.
  auto Ctx = compile("int f(int n) {\n"
                     "  int i;\n"
                     "  make_static(n, i : cache_one_unchecked);\n"
                     "  int s = 0;\n"
                     "  for (i = 0; i < n; i = i + 1) { s = s + i; }\n"
                     "  return s;\n"
                     "}");
  auto E = Ctx->buildDynamic();
  int F = E->findFunction("f");
  EXPECT_EQ(E->Machine->run(F, {Word::fromInt(3)}).asInt(), 3);
  EXPECT_EQ(E->Machine->run(F, {Word::fromInt(5)}).asInt(), 3); // stale!
  EXPECT_EQ(E->RT->stats(0).SpecializationRuns, 1u);
}

TEST(Specializer, CacheOneCountsEvictions) {
  // cache_one keeps a single checked version; every key mismatch evicts
  // the resident entry and respecializes, and RegionStats records it.
  auto Ctx = compile("int f(int n) {\n"
                     "  int i;\n"
                     "  make_static(n, i : cache_one);\n"
                     "  int s = 0;\n"
                     "  for (i = 0; i < n; i = i + 1) { s = s + i; }\n"
                     "  return s;\n"
                     "}");
  auto E = Ctx->buildDynamic();
  int F = E->findFunction("f");
  for (int64_t N : {3, 5, 3, 3, 5}) // evicting transitions: 3->5, 5->3, 3->5
    EXPECT_EQ(E->Machine->run(F, {Word::fromInt(N)}).asInt(),
              N * (N - 1) / 2);
  const runtime::RegionStats &St = E->RT->stats(0);
  EXPECT_EQ(St.SpecializationRuns, 4u);
  EXPECT_EQ(St.Evictions, 3u);
  EXPECT_EQ(St.CacheHits, 1u); // only the back-to-back 3
}

TEST(Specializer, CacheIndexedSpecializesPerByteValue) {
  auto Ctx = compile("int f(int* t, int b) {\n"
                     "  make_static(t, b : cache_indexed);\n"
                     "  return t@[b] * 2;\n"
                     "}");
  auto E = Ctx->buildDynamic();
  vm::VM &M = *E->Machine;
  int64_t T = M.allocMemory(256);
  for (int I = 0; I != 256; ++I)
    M.memory()[T + I] = Word::fromInt(I * 3);
  int F = E->findFunction("f");
  for (int Round = 0; Round != 2; ++Round)
    for (int64_t B : {0, 7, 255, 7, 0})
      EXPECT_EQ(M.run(F, {Word::fromInt(T), Word::fromInt(B)}).asInt(),
                B * 6);
  EXPECT_EQ(E->RT->stats(0).SpecializationRuns, 3u); // 0, 7, 255
  EXPECT_EQ(E->RT->stats(0).CacheHits, 7u);
}

TEST(Specializer, StrengthReductionRewritesPowersOfTwo) {
  auto Ctx = compile("int f(int* a, int x) {\n"
                     "  make_static(a);\n"
                     "  int m = a@[0];\n"
                     "  int d = a@[1];\n"
                     "  return (x * m) + (x / d) + (x % d);\n"
                     "}");
  auto E = Ctx->buildDynamic();
  vm::VM &M = *E->Machine;
  int64_t A = M.allocMemory(2);
  M.memory()[A] = Word::fromInt(8);      // multiplier 8 -> shl 3
  M.memory()[A + 1] = Word::fromInt(16); // divisor 16 -> shr/and
  int F = E->findFunction("f");
  Word R = M.run(F, {Word::fromInt(A), Word::fromInt(100)});
  EXPECT_EQ(R.asInt(), 100 * 8 + 100 / 16 + 100 % 16);
  const runtime::RegionStats &St = E->RT->stats(0);
  EXPECT_EQ(St.StrengthReduced, 3u);
  // The generated code must contain shift/mask instructions, no mul/div.
  std::string Dis = E->RT->disassembleRegion(0);
  EXPECT_NE(Dis.find("shli"), std::string::npos);
  EXPECT_NE(Dis.find("shri"), std::string::npos);
  EXPECT_NE(Dis.find("andi"), std::string::npos);
  EXPECT_EQ(Dis.find("mul"), std::string::npos);
  EXPECT_EQ(Dis.find("div"), std::string::npos);
}

TEST(Specializer, ZeroAndCopyPropagationOnFloats) {
  auto Ctx = compile("double f(double* w, double x, double y) {\n"
                     "  make_static(w);\n"
                     "  double a = x * w@[0];\n" // w[0] == 0.0 -> dead
                     "  double b = y * w@[1];\n" // w[1] == 1.0 -> copy
                     "  return a + b;\n"
                     "}");
  auto E = Ctx->buildDynamic();
  vm::VM &M = *E->Machine;
  int64_t W = M.allocMemory(2);
  M.memory()[W] = Word::fromFloat(0.0);
  M.memory()[W + 1] = Word::fromFloat(1.0);
  int F = E->findFunction("f");
  Word R = M.run(F, {Word::fromInt(W), Word::fromFloat(123.0),
                     Word::fromFloat(0.5)});
  EXPECT_DOUBLE_EQ(R.asFloat(), 0.5);
  const runtime::RegionStats &St = E->RT->stats(0);
  EXPECT_GE(St.ZcpApplied, 2u);
  // No multiply survives: a+b collapsed to y (0 + y*1).
  std::string Dis = E->RT->disassembleRegion(0);
  EXPECT_EQ(Dis.find("fmul"), std::string::npos);
}

TEST(Specializer, DeferredDeadChainsNeverEmit) {
  // A load feeding only a multiply-by-zero must not be emitted at all.
  auto Ctx = compile("double f(double* w, double* img, int i) {\n"
                     "  make_static(w);\n"
                     "  double x = img[i];\n"
                     "  return x * w@[0];\n"
                     "}");
  auto E = Ctx->buildDynamic();
  vm::VM &M = *E->Machine;
  int64_t W = M.allocMemory(1);
  int64_t Img = M.allocMemory(4);
  M.memory()[W] = Word::fromFloat(0.0);
  M.memory()[Img + 2] = Word::fromFloat(9.0);
  int F = E->findFunction("f");
  Word R = M.run(F, {Word::fromInt(W), Word::fromInt(Img),
                     Word::fromInt(2)});
  EXPECT_DOUBLE_EQ(R.asFloat(), 0.0);
  EXPECT_GE(E->RT->stats(0).DeadAssignsEliminated, 1u);
  std::string Dis = E->RT->disassembleRegion(0);
  EXPECT_EQ(Dis.find("load"), std::string::npos) << Dis;
}

TEST(Specializer, StaticCallMemoization) {
  auto Ctx = compile("extern pure double cos(double);\n"
                     "double f(int n, double x) {\n"
                     "  int i;\n"
                     "  make_static(n, i);\n"
                     "  double s = x;\n"
                     "  for (i = 0; i < n; i = i + 1) {\n"
                     "    s = s + cos((double)(i % 2));\n" // 2 distinct args
                     "  }\n"
                     "  return s;\n"
                     "}");
  auto E = Ctx->buildDynamic();
  int F = E->findFunction("f");
  Word R = E->Machine->run(F, {Word::fromInt(8), Word::fromFloat(0.0)});
  EXPECT_NEAR(R.asFloat(), 4 * std::cos(0.0) + 4 * std::cos(1.0), 1e-12);
  const runtime::RegionStats &St = E->RT->stats(0);
  EXPECT_EQ(St.StaticCallsExecuted, 8u);
  EXPECT_EQ(St.StaticCallMemoHits, 6u); // only cos(0) and cos(1) computed
}

TEST(Specializer, StaticCallToBytecodeFunctionChargedAsOverhead) {
  auto Ctx = compile("pure int table(int k) { return k * k + 3; }\n"
                     "int f(int n) {\n"
                     "  make_static(n);\n"
                     "  return table(n) + 1;\n"
                     "}");
  auto E = Ctx->buildDynamic();
  int F = E->findFunction("f");
  uint64_t Exec0 = E->Machine->execCycles();
  Word R = E->Machine->run(F, {Word::fromInt(6)});
  EXPECT_EQ(R.asInt(), 40);
  // The nested run of `table` must be accounted to dynamic compilation,
  // not execution; the residual region is a materialized constant.
  EXPECT_GT(E->Machine->dynCompCycles(), 0u);
  // Residual execution: one hashed dispatch (~65 cycles), a materialized
  // constant, a return, and two cold I-cache misses — far below the cost
  // of actually running `table` (which would add a call, multiply, ...).
  uint64_t ExecCost = E->Machine->execCycles() - Exec0;
  EXPECT_LT(ExecCost, 150u) << "nested static call leaked into exec time";
}

TEST(Specializer, RegionExitResumesNativeCode) {
  auto Ctx = compile("int f(int n, int d) {\n"
                     "  make_static(n);\n"
                     "  int t = n * 7;\n"
                     "  int u = t + d;\n"     // region: t static, d dynamic
                     "  int v = u * 2 + d;\n" // no statics live: native
                     "  return v;\n"
                     "}");
  auto E = Ctx->buildDynamic();
  auto S = Ctx->buildStatic();
  int F = E->findFunction("f");
  for (int64_t N : {1, 4}) {
    for (int64_t D : {0, 9}) {
      std::vector<Word> Args = {Word::fromInt(N), Word::fromInt(D)};
      EXPECT_EQ(E->Machine->run(F, Args).asInt(),
                S->Machine->run(F, Args).asInt());
    }
  }
}

TEST(Specializer, MultiWayUnrollEmitsBackwardBranch) {
  // An interpreted loop must become a real loop in generated code, not an
  // infinite unrolling: the memoized (context, pc) pair is reused.
  auto Ctx = compile("int f(int* prog, int* cnt) {\n"
                     "  int pc = 0;\n"
                     "  make_static(prog, pc);\n"
                     "  int acc = 0;\n"
                     "  while (pc < 3) {\n"
                     "    int op = prog@[pc];\n"
                     "    if (op == 0) { acc = acc + 1; pc = pc + 1; }\n"
                     "    else { if (op == 1) {\n"
                     "      cnt[0] = cnt[0] - 1;\n"
                     "      if (cnt[0] > 0) { pc = 0; } else { pc = pc + 1; }\n"
                     "    } else { pc = 3; } }\n"
                     "  }\n"
                     "  return acc;\n"
                     "}");
  auto E = Ctx->buildDynamic();
  vm::VM &M = *E->Machine;
  int64_t Prog = M.allocMemory(3);
  int64_t Cnt = M.allocMemory(1);
  M.memory()[Prog] = Word::fromInt(0);     // acc++
  M.memory()[Prog + 1] = Word::fromInt(1); // loop back while --cnt > 0
  M.memory()[Prog + 2] = Word::fromInt(2); // halt
  M.memory()[Cnt] = Word::fromInt(5);
  int F = E->findFunction("f");
  Word R = M.run(F, {Word::fromInt(Prog), Word::fromInt(Cnt)});
  EXPECT_EQ(R.asInt(), 5); // executed 5 times via a real backward branch
  EXPECT_LT(E->RT->stats(0).InstructionsGenerated, 64u)
      << "interpreted loop was unrolled instead of becoming a branch";
}

} // namespace
