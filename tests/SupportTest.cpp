//===- tests/SupportTest.cpp - support library unit tests -------------------------===//

#include "support/BitVector.h"
#include "support/DoubleHashTable.h"
#include "support/Support.h"

#include <gtest/gtest.h>

#include <map>

using namespace dyc;

namespace {

TEST(Word, IntRoundTrip) {
  for (int64_t V : {int64_t(0), int64_t(1), int64_t(-1), int64_t(1) << 62,
                    int64_t(-42)}) {
    EXPECT_EQ(Word::fromInt(V).asInt(), V);
  }
}

TEST(Word, FloatRoundTrip) {
  for (double V : {0.0, -0.0, 1.0, -1.5, 3.14159e100, 1e-300}) {
    EXPECT_EQ(Word::fromFloat(V).asFloat(), V);
  }
  // -0.0 and +0.0 have distinct bit patterns and must compare unequal as
  // Words (the ZCP 0.0-check relies on exact bits).
  EXPECT_NE(Word::fromFloat(0.0), Word::fromFloat(-0.0));
}

TEST(Support, FormatString) {
  EXPECT_EQ(formatString("x=%d y=%s", 7, "ok"), "x=7 y=ok");
  EXPECT_EQ(formatString("%s", ""), "");
}

TEST(Support, PowerOf2Helpers) {
  EXPECT_TRUE(isPowerOf2(1));
  EXPECT_TRUE(isPowerOf2(2));
  EXPECT_TRUE(isPowerOf2(1LL << 40));
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_FALSE(isPowerOf2(-4));
  EXPECT_FALSE(isPowerOf2(12));
  EXPECT_EQ(log2OfPow2(1), 0u);
  EXPECT_EQ(log2OfPow2(1024), 10u);
}

TEST(Support, HashWordsDiffers) {
  std::vector<Word> A = {Word::fromInt(1), Word::fromInt(2)};
  std::vector<Word> B = {Word::fromInt(2), Word::fromInt(1)};
  EXPECT_NE(hashWords(A), hashWords(B));
  EXPECT_EQ(hashWords(A), hashWords(A));
}

TEST(DeterministicRNGTest, Reproducible) {
  DeterministicRNG A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  DeterministicRNG C(43);
  EXPECT_NE(DeterministicRNG(42).next(), C.next());
  for (int I = 0; I != 1000; ++I) {
    double D = DeterministicRNG(I + 1).nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(BitVectorTest, BasicOps) {
  BitVector V(130);
  EXPECT_FALSE(V.any());
  V.set(0);
  V.set(64);
  V.set(129);
  EXPECT_TRUE(V.test(0));
  EXPECT_TRUE(V.test(64));
  EXPECT_TRUE(V.test(129));
  EXPECT_FALSE(V.test(1));
  EXPECT_EQ(V.count(), 3u);
  V.reset(64);
  EXPECT_FALSE(V.test(64));
  std::vector<size_t> Bits;
  V.forEachSetBit([&](size_t I) { Bits.push_back(I); });
  EXPECT_EQ(Bits, (std::vector<size_t>{0, 129}));
}

TEST(BitVectorTest, SetAlgebra) {
  BitVector A(70), B(70);
  A.set(1);
  A.set(65);
  B.set(65);
  B.set(2);
  BitVector U = A;
  EXPECT_TRUE(U.unionWith(B));
  EXPECT_TRUE(U.test(1));
  EXPECT_TRUE(U.test(2));
  EXPECT_TRUE(U.test(65));
  EXPECT_FALSE(U.unionWith(B)); // no change the second time
  BitVector I = A;
  EXPECT_TRUE(I.intersectWith(B));
  EXPECT_FALSE(I.test(1));
  EXPECT_TRUE(I.test(65));
  BitVector S = A;
  S.subtract(B);
  EXPECT_TRUE(S.test(1));
  EXPECT_FALSE(S.test(65));
}

TEST(DoubleHashTableTest, InsertLookup) {
  DoubleHashTable T;
  EXPECT_TRUE(T.empty());
  std::vector<Word> K1 = {Word::fromInt(1), Word::fromInt(2)};
  std::vector<Word> K2 = {Word::fromInt(2), Word::fromInt(1)};
  EXPECT_EQ(T.lookup(K1), DoubleHashTable::NotFound);
  T.insert(K1, 10);
  T.insert(K2, 20);
  EXPECT_EQ(T.lookup(K1), 10u);
  EXPECT_EQ(T.lookup(K2), 20u);
  T.insert(K1, 11); // replace
  EXPECT_EQ(T.lookup(K1), 11u);
  EXPECT_EQ(T.size(), 2u);
}

TEST(DoubleHashTableTest, GrowsAndKeepsEntries) {
  DoubleHashTable T;
  DeterministicRNG RNG(9);
  std::map<uint64_t, uint32_t> Ref;
  for (uint32_t I = 0; I != 5000; ++I) {
    uint64_t K = RNG.next();
    Ref[K] = I;
    T.insert({Word{K}}, I);
  }
  for (const auto &[K, V] : Ref)
    EXPECT_EQ(T.lookup({Word{K}}), V);
  EXPECT_EQ(T.size(), Ref.size());
}

TEST(DoubleHashTableTest, ProbeCounting) {
  DoubleHashTable T;
  unsigned Probes = 0;
  T.insert({Word::fromInt(5)}, 1);
  T.lookup({Word::fromInt(5)}, &Probes);
  EXPECT_GE(Probes, 1u);
  uint64_t Before = T.totalLookups();
  T.lookup({Word::fromInt(5)});
  EXPECT_EQ(T.totalLookups(), Before + 1);
}

} // namespace
