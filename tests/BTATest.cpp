//===- tests/BTATest.cpp - binding-time analysis unit tests -----------------------===//

#include "bta/BTAnalysis.h"
#include "frontend/Lower.h"
#include "opt/Passes.h"

#include <gtest/gtest.h>

using namespace dyc;
using namespace dyc::bta;

namespace {

/// Front half of the DycContext pipeline: lower, normalize, optimize.
ir::Module prepare(const std::string &Src) {
  ir::Module M;
  std::vector<std::string> Errors;
  bool OK = frontend::compileMiniC(Src, M, Errors);
  EXPECT_TRUE(OK) << (Errors.empty() ? "" : Errors[0]);
  for (size_t I = 0; I != M.numFunctions(); ++I)
    normalizeAnnotations(M.function(static_cast<int>(I)));
  opt::runStaticOptimizations(M);
  return M;
}

RegionInfo analyze(const std::string &Src, OptFlags Flags = OptFlags()) {
  ir::Module M = prepare(Src);
  return analyzeFunction(M.function(0), M, Flags);
}

TEST(Normalize, MakeStaticHeadsItsBlock) {
  ir::Module M;
  std::vector<std::string> Errors;
  ASSERT_TRUE(frontend::compileMiniC(
      "int f(int a) { int x = a + 1; make_static(x); return x; }", M,
      Errors));
  ir::Function &F = M.function(0);
  EXPECT_TRUE(normalizeAnnotations(F));
  EXPECT_EQ(ir::verifyFunction(F, M), "");
  for (const ir::BasicBlock &B : F.Blocks)
    for (size_t I = 0; I != B.Instrs.size(); ++I)
      if (B.Instrs[I].Op == ir::Opcode::MakeStatic) {
        EXPECT_EQ(I, 0u);
      }
}

TEST(BTA, UnannotatedFunctionHasNoRegion) {
  RegionInfo R = analyze("int f(int a) { return a + 1; }");
  EXPECT_TRUE(R.Contexts.empty());
  EXPECT_TRUE(R.Promos.empty());
}

TEST(BTA, DerivedStaticComputations) {
  RegionInfo R = analyze("int f(int n, int d) {\n"
                         "  make_static(n);\n"
                         "  int twice = n * 2;\n"
                         "  return twice + d;\n"
                         "}");
  ASSERT_FALSE(R.Contexts.empty());
  // Find the multiply: it must be classified static; the add (mixing in
  // the dynamic d) must not.
  bool SawStaticMul = false, SawDynamicAdd = false;
  ir::Module M = prepare("int f(int n, int d) {\n"
                         "  make_static(n);\n"
                         "  int twice = n * 2;\n"
                         "  return twice + d;\n"
                         "}");
  const ir::Function &F = M.function(0);
  RegionInfo R2 = analyzeFunction(F, M, OptFlags());
  for (const Context &C : R2.Contexts) {
    const ir::BasicBlock &B = F.block(C.Block);
    for (size_t I = 0; I != C.InstIsStatic.size(); ++I) {
      if (B.Instrs[I].Op == ir::Opcode::Mul && C.InstIsStatic[I])
        SawStaticMul = true;
      if (B.Instrs[I].Op == ir::Opcode::Add && !C.InstIsStatic[I])
        SawDynamicAdd = true;
    }
  }
  EXPECT_TRUE(SawStaticMul);
  EXPECT_TRUE(SawDynamicAdd);
}

const char *LoopSrc = R"(
int f(int* a, int n, int d) {
  int i;
  make_static(a, n, i);
  int s = 0;
  for (i = 0; i < n; i = i + 1) {
    s = s + a@[i] * d;
  }
  return s;
}
)";

TEST(BTA, AnnotatedIVStaysStaticWithStaticExit) {
  RegionInfo R = analyze(LoopSrc);
  EXPECT_TRUE(R.UnrollsLoop);
  EXPECT_FALSE(R.MultiWayUnroll); // straight-line body: single-way
  EXPECT_TRUE(R.HasStaticLoads);
  // Some context must carry a static branch (the folded loop test).
  bool SawStaticBranch = false;
  for (const Context &C : R.Contexts)
    if (C.TermCondStatic)
      SawStaticBranch = true;
  EXPECT_TRUE(SawStaticBranch);
}

TEST(BTA, UnannotatedIVDemotesAtLoopHead) {
  RegionInfo R = analyze("int f(int* a, int n, int d) {\n"
                         "  make_static(a, n);\n" // i NOT annotated
                         "  int s = 0;\n"
                         "  int i;\n"
                         "  for (i = 0; i < n; i = i + 1) {\n"
                         "    s = s + a[i] * d;\n"
                         "  }\n"
                         "  return s;\n"
                         "}");
  EXPECT_FALSE(R.UnrollsLoop);
}

TEST(BTA, DynamicBoundDemotesAnnotatedIV) {
  // n is dynamic: no static exit test exists, so unrolling would diverge
  // and the analysis must demote i despite the annotation.
  RegionInfo R = analyze("int f(int* a, int n, int d) {\n"
                         "  int i;\n"
                         "  make_static(a, i);\n" // n NOT static
                         "  int s = 0;\n"
                         "  for (i = 0; i < n; i = i + 1) {\n"
                         "    s = s + a[i] * d;\n"
                         "  }\n"
                         "  return s;\n"
                         "}");
  EXPECT_FALSE(R.UnrollsLoop);
}

TEST(BTA, WithoutUnrollingFlagDemotesEverything) {
  OptFlags Fl;
  Fl.CompleteLoopUnrolling = false;
  RegionInfo R = analyze(LoopSrc, Fl);
  EXPECT_FALSE(R.UnrollsLoop);
}

TEST(BTA, MultiWayClassification) {
  // The induction variable is updated differently on two branch paths
  // (binary-search shape) -> multi-way.
  RegionInfo R = analyze("int f(int* a, int n, int key) {\n"
                         "  int lo = 0;\n"
                         "  int hi = n - 1;\n"
                         "  make_static(a, n, lo, hi);\n"
                         "  int r = 0 - 1;\n"
                         "  while (lo <= hi) {\n"
                         "    int mid = (lo + hi) / 2;\n"
                         "    if (key < a@[mid]) { hi = mid - 1; }\n"
                         "    else { lo = mid + 1; }\n"
                         "  }\n"
                         "  return r;\n"
                         "}");
  EXPECT_TRUE(R.UnrollsLoop);
  EXPECT_TRUE(R.MultiWayUnroll);
}

TEST(BTA, InternalPromotionCreatesPromoPoint) {
  RegionInfo R = analyze("int f(int* conf, int* data) {\n"
                         "  make_static(conf);\n"
                         "  int mode = data[0];\n" // dynamic value
                         "  make_static(mode);\n"  // internal promotion
                         "  return conf@[mode];\n"
                         "}");
  EXPECT_TRUE(R.HasInternalPromotions);
  bool SawInternal = false;
  for (const PromoPoint &P : R.Promos)
    if (!P.IsNativeEntry)
      SawInternal = true;
  EXPECT_TRUE(SawInternal);
}

TEST(BTA, InternalPromotionsFlagOff) {
  OptFlags Fl;
  Fl.InternalPromotions = false;
  RegionInfo R = analyze("int f(int* conf, int* data) {\n"
                         "  make_static(conf);\n"
                         "  int mode = data[0];\n"
                         "  make_static(mode);\n"
                         "  return conf@[mode];\n"
                         "}",
                         Fl);
  EXPECT_FALSE(R.HasInternalPromotions);
}

const char *DivisionSrc = R"(
int f(int mode, int* t, int x) {
  make_static(mode);
  if (mode == 1) {
    make_static(t);
  }
  return t@[x & 3] + x * mode;
}
)";

TEST(BTA, PolyvariantDivisionSplitsMergePoints) {
  RegionInfo R = analyze(DivisionSrc);
  EXPECT_TRUE(R.HasPolyvariantDivision);
  OptFlags Mono;
  Mono.PolyvariantDivision = false;
  RegionInfo RM = analyze(DivisionSrc, Mono);
  EXPECT_FALSE(RM.HasPolyvariantDivision);
}

TEST(BTA, RegionEndsAfterLastStaticUse) {
  // After the loop, no static variable is live: an Exit edge must exist.
  RegionInfo R = analyze(LoopSrc);
  bool SawExit = false;
  for (const Context &C : R.Contexts) {
    if (C.TrueEdge.K == Edge::Exit || C.FalseEdge.K == Edge::Exit)
      SawExit = true;
  }
  EXPECT_TRUE(SawExit);
}

TEST(BTA, PoliciesRespectUncheckedFlag) {
  const char *Src = "int f(int n) {\n"
                    "  make_static(n : cache_one_unchecked);\n"
                    "  return n * 2;\n"
                    "}";
  RegionInfo R = analyze(Src);
  ASSERT_FALSE(R.Promos.empty());
  EXPECT_EQ(R.Promos[0].Policy, ir::CachePolicy::CacheOneUnchecked);
  OptFlags Fl;
  Fl.UncheckedDispatching = false;
  RegionInfo R2 = analyze(Src, Fl);
  EXPECT_EQ(R2.Promos[0].Policy, ir::CachePolicy::CacheAll);
}

TEST(BTA, MakeDynamicDemotes) {
  ir::Module M = prepare("int f(int n, int d) {\n"
                         "  make_static(n);\n"
                         "  int t = n * 3;\n"
                         "  make_dynamic(t);\n"
                         "  return t + d;\n"
                         "}");
  const ir::Function &F = M.function(0);
  RegionInfo R = analyzeFunction(F, M, OptFlags());
  // After make_dynamic(t), the use of t must be in a dynamic computation
  // whose pre-set excludes t.
  for (const Context &C : R.Contexts) {
    const ir::BasicBlock &B = F.block(C.Block);
    for (size_t I = 0; I != C.InstIsStatic.size(); ++I)
      if (B.Instrs[I].Op == ir::Opcode::Add) {
        std::vector<ir::Reg> Uses;
        B.Instrs[I].appendUses(Uses);
        for (ir::Reg U : Uses)
          if (F.regName(U) == "t") {
            EXPECT_FALSE(C.PreSets[I].test(U));
          }
      }
  }
}

} // namespace
