//===- tests/HarnessTest.cpp - measurement harness unit tests ---------------------===//

#include "core/Harness.h"

#include <gtest/gtest.h>

using namespace dyc;
using workloads::Workload;
using workloads::WorkloadSetup;

namespace {

/// A tiny synthetic workload with a known shape: the region sums a static
/// vector against a dynamic one.
Workload makeToyWorkload() {
  Workload W;
  W.Name = "toy";
  W.Description = "test workload";
  W.Source = R"(
int region(int* a, int* b, int n) {
  int i;
  make_static(a, n, i : cache_one_unchecked);
  int s = 0;
  for (i = 0; i < n; i = i + 1) {
    s = s + a@[i] * b[i];
  }
  return s;
}

int toymain(int* a, int* b, int n, int reps) {
  int r;
  int acc = 0;
  for (r = 0; r < reps; r = r + 1) {
    b[r % n] = b[r % n] + r;
    acc = acc ^ region(a, b, n);
  }
  return acc;
}
)";
  W.RegionFunc = "region";
  W.MainFunc = "toymain";
  W.RegionInvocations = 50;
  W.Setup = [](vm::VM &M) {
    WorkloadSetup S;
    const int N = 24;
    int64_t A = M.allocMemory(N);
    int64_t B = M.allocMemory(N);
    for (int I = 0; I != N; ++I) {
      M.memory()[A + I] = Word::fromInt(I % 4); // zeroes and small values
      M.memory()[B + I] = Word::fromInt(10 + I);
    }
    S.RegionArgs = {Word::fromInt(A), Word::fromInt(B), Word::fromInt(N)};
    S.MainArgs = {Word::fromInt(A), Word::fromInt(B), Word::fromInt(N),
                  Word::fromInt(40)};
    S.UnitsPerInvocation = N;
    S.UnitName = "elements";
    S.OutBase = B;
    S.OutLen = N;
    return S;
  };
  return W;
}

TEST(Harness, RegionMetricsAreConsistent) {
  Workload W = makeToyWorkload();
  core::RegionPerf P = core::measureRegion(W, OptFlags());
  EXPECT_TRUE(P.OutputsMatch);
  EXPECT_GT(P.StaticCyclesPerInvoke, 0.0);
  EXPECT_GT(P.DynCyclesPerInvoke, 0.0);
  // Speedup is the s/d ratio by definition.
  EXPECT_NEAR(P.AsymptoticSpeedup,
              P.StaticCyclesPerInvoke / P.DynCyclesPerInvoke, 1e-9);
  ASSERT_GT(P.AsymptoticSpeedup, 1.0);
  // Break-even is o/(s-d), in invocations and in domain units.
  double Gain = P.StaticCyclesPerInvoke - P.DynCyclesPerInvoke;
  EXPECT_NEAR(P.BreakEvenInvocations,
              static_cast<double>(P.OverheadCycles) / Gain, 1e-9);
  EXPECT_NEAR(P.BreakEvenUnits, P.BreakEvenInvocations * 24.0, 1e-6);
  EXPECT_EQ(P.UnitName, "elements");
  // Overhead per instruction divides evenly.
  ASSERT_GT(P.InstructionsGenerated, 0u);
  EXPECT_NEAR(P.OverheadPerInstr,
              static_cast<double>(P.OverheadCycles) /
                  static_cast<double>(P.InstructionsGenerated),
              1e-9);
}

TEST(Harness, WholeProgramMetricsAreConsistent) {
  Workload W = makeToyWorkload();
  core::WholeProgramPerf P = core::measureWholeProgram(W, OptFlags());
  EXPECT_TRUE(P.OutputsMatch);
  EXPECT_GT(P.StaticSeconds, 0.0);
  EXPECT_GT(P.DynSeconds, 0.0);
  EXPECT_GT(P.PctInRegion, 0.0);
  EXPECT_LE(P.PctInRegion, 100.0);
  EXPECT_NEAR(P.Speedup, P.StaticSeconds / P.DynSeconds, 1e-9);
}

TEST(Harness, NoSpeedupYieldsNegativeBreakEven) {
  // A region whose specialization cannot pay (nothing folds, hashed
  // dispatch every call) must report break-even = -1, not nonsense.
  Workload W = makeToyWorkload();
  W.Source = R"(
int region(int* a, int* b, int n) {
  make_static(a : cache_all);
  return a[0] + b[0] + n;
}

int toymain(int* a, int* b, int n, int reps) {
  return region(a, b, n);
}
)";
  core::RegionPerf P = core::measureRegion(W, OptFlags());
  EXPECT_TRUE(P.OutputsMatch);
  if (P.AsymptoticSpeedup < 1.0) {
    EXPECT_EQ(P.BreakEvenInvocations, -1.0);
  }
}

TEST(Harness, AblationConfigurationsStayCorrectOnTheToy) {
  Workload W = makeToyWorkload();
  for (unsigned T = 0; T != OptFlags::NumToggles; ++T) {
    OptFlags Fl;
    Fl.toggle(T) = false;
    core::RegionPerf P = core::measureRegion(W, Fl);
    EXPECT_TRUE(P.OutputsMatch) << "toggle " << OptFlags::toggleName(T);
  }
}

} // namespace
