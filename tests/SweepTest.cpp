//===- tests/SweepTest.cpp - parameterized workload sweeps -------------------------===//
//
// Property-style sweeps over workload parameters: for every point in the
// sweep, the dynamically compiled configuration must match the static
// baseline bit-for-bit. These exercise the specializer under many
// different static-value shapes (cache geometries, kernel sizes,
// interpreted programs, query mixes).
//
//===----------------------------------------------------------------------===//

#include "core/Harness.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace dyc;

namespace {

//===----------------------------------------------------------------------===//
// dinero across cache geometries.
//===----------------------------------------------------------------------===//

struct CacheGeom {
  int64_t BShift;   // log2(block size)
  int64_t NSets;    // power of two
  int64_t BWords;   // sub-blocks per block
};

class DineroSweep : public ::testing::TestWithParam<CacheGeom> {};

TEST_P(DineroSweep, DynamicMatchesStaticForThisGeometry) {
  CacheGeom G = GetParam();
  workloads::Workload W = workloads::workloadByName("dinero");
  auto Base = W.Setup;
  W.RegionInvocations = 2;
  W.Setup = [Base, G](vm::VM &M) {
    workloads::WorkloadSetup S = Base(M);
    int64_t Config = S.RegionArgs[0].asInt();
    M.memory()[Config + 0] = Word::fromInt(G.BShift);
    M.memory()[Config + 1] = Word::fromInt(G.NSets - 1);
    M.memory()[Config + 2] = Word::fromInt(G.BShift);
    M.memory()[Config + 3] = Word::fromInt(G.NSets - 1);
    M.memory()[Config + 4] = Word::fromInt(int64_t(1) << G.BShift);
    M.memory()[Config + 5] = Word::fromInt(G.BWords);
    return S;
  };
  // NOTE: the tag/valid arrays in the base setup are sized for <= 256
  // sets; geometries in this sweep stay within that.
  core::DycContext Ctx;
  core::compileWorkload(W, Ctx);
  auto SE = Ctx.buildStatic();
  auto DE = Ctx.buildDynamic();
  auto SS = W.Setup(*SE->Machine);
  auto DS = W.Setup(*DE->Machine);
  int F = SE->findFunction(W.RegionFunc);
  Word SR = SE->Machine->run(F, SS.RegionArgs);
  Word DR = DE->Machine->run(F, DS.RegionArgs);
  EXPECT_EQ(SR.asInt(), DR.asInt());
  for (int64_t I = 0; I != SS.OutLen; ++I)
    EXPECT_EQ(SE->Machine->memory()[SS.OutBase + I].Bits,
              DE->Machine->memory()[DS.OutBase + I].Bits);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DineroSweep,
    ::testing::Values(CacheGeom{5, 256, 4},   // the paper's 8KB/32B
                      CacheGeom{5, 64, 4},    // 2KB
                      CacheGeom{6, 128, 8},   // 8KB/64B
                      CacheGeom{4, 256, 2},   // 4KB/16B
                      CacheGeom{5, 16, 1}),   // 512B, no sub-blocking
    [](const ::testing::TestParamInfo<CacheGeom> &Info) {
      return formatString("b%lld_s%lld_w%lld",
                          (long long)Info.param.BShift,
                          (long long)Info.param.NSets,
                          (long long)Info.param.BWords);
    });

//===----------------------------------------------------------------------===//
// pnmconvol across kernel sizes and weight mixes.
//===----------------------------------------------------------------------===//

struct KernelShape {
  int Rows, Cols;
  int PctZero; // remaining split between ones and general weights
};

class ConvolSweep : public ::testing::TestWithParam<KernelShape> {};

TEST_P(ConvolSweep, DynamicMatchesStaticForThisKernel) {
  KernelShape K = GetParam();
  workloads::Workload W = workloads::workloadByName("pnmconvol");
  W.RegionInvocations = 1;
  W.Setup = [K](vm::VM &M) {
    workloads::WorkloadSetup S;
    const int IRows = 10, ICols = 10;
    int64_t Image = M.allocMemory(IRows * ICols);
    int64_t CMat = M.allocMemory(K.Rows * K.Cols);
    int64_t Out = M.allocMemory(IRows * ICols);
    DeterministicRNG RNG(0xc0 + K.Rows * 100 + K.PctZero);
    for (int I = 0; I != IRows * ICols; ++I)
      M.memory()[Image + I] = Word::fromFloat(RNG.nextDouble());
    for (int I = 0; I != K.Rows * K.Cols; ++I) {
      double V;
      unsigned R = static_cast<unsigned>(RNG.nextBelow(100));
      if (R < static_cast<unsigned>(K.PctZero))
        V = 0.0;
      else if (R < static_cast<unsigned>(K.PctZero) + 10)
        V = 1.0;
      else
        V = RNG.nextDouble() - 0.5;
      M.memory()[CMat + I] = Word::fromFloat(V);
    }
    S.RegionArgs = {Word::fromInt(Image),  Word::fromInt(IRows),
                    Word::fromInt(ICols),  Word::fromInt(CMat),
                    Word::fromInt(K.Rows), Word::fromInt(K.Cols),
                    Word::fromInt(Out)};
    S.MainArgs = S.RegionArgs;
    S.OutBase = Out;
    S.OutLen = IRows * ICols;
    return S;
  };
  core::WholeProgramPerf Unused; // silence -Wunused warnings pattern
  (void)Unused;
  core::RegionPerf P = core::measureRegion(W, OptFlags());
  EXPECT_TRUE(P.OutputsMatch);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, ConvolSweep,
    ::testing::Values(KernelShape{1, 1, 0}, KernelShape{3, 3, 50},
                      KernelShape{5, 5, 83}, KernelShape{7, 3, 90},
                      KernelShape{3, 7, 0}, KernelShape{5, 1, 100}),
    [](const ::testing::TestParamInfo<KernelShape> &Info) {
      return formatString("k%dx%d_z%d", Info.param.Rows, Info.param.Cols,
                          Info.param.PctZero);
    });

//===----------------------------------------------------------------------===//
// mipsi across interpreted inputs: the residual code is input-program-
// specific, but the data it runs on is dynamic.
//===----------------------------------------------------------------------===//

class MipsiDataSweep : public ::testing::TestWithParam<int> {};

TEST_P(MipsiDataSweep, SortsEveryInputShape) {
  workloads::Workload W = workloads::workloadByName("mipsi");
  int Shape = GetParam();
  auto Base = W.Setup;
  W.RegionInvocations = 1;
  W.Setup = [Base, Shape](vm::VM &M) {
    workloads::WorkloadSetup S = Base(M);
    int64_t Init = S.RegionArgs[4].asInt();
    int64_t N = S.RegionArgs[5].asInt();
    for (int64_t I = 0; I != N; ++I) {
      int64_t V;
      switch (Shape) {
      case 0: V = I; break;                  // already sorted
      case 1: V = N - I; break;              // reverse sorted
      case 2: V = I % 3; break;              // many duplicates
      default: V = (I * 7919) % 101; break;  // scrambled
      }
      M.memory()[Init + I] = Word::fromInt(V);
    }
    return S;
  };
  core::RegionPerf P = core::measureRegion(W, OptFlags());
  EXPECT_TRUE(P.OutputsMatch);
  // One specialization serves every data shape: the code depends only on
  // the interpreted program.
  EXPECT_EQ(P.Stats.SpecializationRuns, 1u);
}

INSTANTIATE_TEST_SUITE_P(DataShapes, MipsiDataSweep,
                         ::testing::Range(0, 4));

//===----------------------------------------------------------------------===//
// query across operator mixes.
//===----------------------------------------------------------------------===//

class QuerySweep : public ::testing::TestWithParam<int> {};

TEST_P(QuerySweep, EveryOperatorMixMatches) {
  workloads::Workload W = workloads::workloadByName("query");
  int Mix = GetParam();
  auto Base = W.Setup;
  W.RegionInvocations = 16;
  W.Setup = [Base, Mix](vm::VM &M) {
    workloads::WorkloadSetup S = Base(M);
    int64_t Q = S.RegionArgs[0].asInt();
    DeterministicRNG RNG(0x11 + Mix);
    for (int F = 0; F != 7; ++F) {
      M.memory()[Q + F * 2] =
          Word::fromInt(static_cast<int64_t>(RNG.nextBelow(4)));
      M.memory()[Q + F * 2 + 1] =
          Word::fromInt(static_cast<int64_t>(RNG.nextBelow(100)));
    }
    return S;
  };
  core::RegionPerf P = core::measureRegion(W, OptFlags());
  EXPECT_TRUE(P.OutputsMatch);
  EXPECT_GT(P.AsymptoticSpeedup, 1.0);
}

INSTANTIATE_TEST_SUITE_P(OperatorMixes, QuerySweep,
                         ::testing::Range(0, 6));

} // namespace
