//===- tests/TenantTest.cpp - Multi-tenant SpecServer tests -----------------------===//
//
// Acceptance tests for the multi-tenant SpecServer: per-tenant counter
// parity against a dedicated single-tenant server, cross-tenant chain
// deduplication through the content-addressed store, refcounted release
// under eviction churn, per-tenant quota admission, warm-start
// serialization round-trips, and the untiered-counters regression.
//
//===----------------------------------------------------------------------===//

#include "core/Harness.h"
#include "server/SpecServer.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace dyc;
using server::MissPolicy;
using server::ServerConfig;
using server::ServerStatsSnapshot;
using server::SpecServer;

namespace {

std::unique_ptr<core::DycContext> compile(const std::string &Src) {
  auto Ctx = std::make_unique<core::DycContext>();
  std::vector<std::string> Errors;
  bool OK = Ctx->compile(Src, Errors);
  EXPECT_TRUE(OK) << (Errors.empty() ? "" : Errors[0]);
  return Ctx;
}

// Triangular-sum region: f(n) = 0 + 1 + ... + n-1, one specialization per
// distinct n under cache_all.
const char *SumSrc = "int f(int n) {\n"
                     "  int i;\n"
                     "  make_static(n, i : cache_all);\n"
                     "  int s = 0;\n"
                     "  for (i = 0; i < n; i = i + 1) { s = s + i; }\n"
                     "  return s;\n"
                     "}";

// Two regions with different policies: hashed cache_all plus one-slot
// cache_one, so parity covers both the probing and the displacement paths.
const char *TwoRegionSrc = "int f(int n) {\n"
                           "  int i;\n"
                           "  make_static(n, i : cache_all);\n"
                           "  int s = 0;\n"
                           "  for (i = 0; i < n; i = i + 1) { s = s + i; }\n"
                           "  return s;\n"
                           "}\n"
                           "int g(int n) {\n"
                           "  int i;\n"
                           "  make_static(n, i : cache_one);\n"
                           "  int s = 0;\n"
                           "  for (i = 0; i < n; i = i + 1) {\n"
                           "    s = s + i + i;\n"
                           "  }\n"
                           "  return s;\n"
                           "}";

int64_t triangular(int64_t N) { return N * (N - 1) / 2; }

/// The tenant-ledger fields that must match a dedicated single-tenant
/// server bit for bit. Excluded by contract: ChainsCollected (shared
/// chains free globally), DedupHits/WarmHits (diagnostic — they record
/// *how* the tenant's view was served, not what it observed), and the
/// MultiTenant/Tenants/StoreChains/CompileQueueDepth gauges.
void expectLedgerEq(const ServerStatsSnapshot &Tenant,
                    const ServerStatsSnapshot &Dedicated,
                    const char *Label) {
  EXPECT_EQ(Tenant.Dispatches, Dedicated.Dispatches) << Label;
  EXPECT_EQ(Tenant.CacheHits, Dedicated.CacheHits) << Label;
  EXPECT_EQ(Tenant.CacheMisses, Dedicated.CacheMisses) << Label;
  EXPECT_EQ(Tenant.Fallbacks, Dedicated.Fallbacks) << Label;
  EXPECT_EQ(Tenant.FallbacksInFlight, Dedicated.FallbacksInFlight) << Label;
  EXPECT_EQ(Tenant.FallbacksFailed, Dedicated.FallbacksFailed) << Label;
  EXPECT_EQ(Tenant.FallbacksNotRequested, Dedicated.FallbacksNotRequested)
      << Label;
  EXPECT_EQ(Tenant.JobsEnqueued, Dedicated.JobsEnqueued) << Label;
  EXPECT_EQ(Tenant.JobsCoalesced, Dedicated.JobsCoalesced) << Label;
  EXPECT_EQ(Tenant.InlineSpecs, Dedicated.InlineSpecs) << Label;
  EXPECT_EQ(Tenant.SpecRuns, Dedicated.SpecRuns) << Label;
  EXPECT_EQ(Tenant.Evictions, Dedicated.Evictions) << Label;
  EXPECT_EQ(Tenant.ChainsCreated, Dedicated.ChainsCreated) << Label;
  EXPECT_EQ(Tenant.SnapshotsRetired, Dedicated.SnapshotsRetired) << Label;
  EXPECT_EQ(Tenant.SnapshotsFreed, Dedicated.SnapshotsFreed) << Label;
  EXPECT_EQ(Tenant.QuotaRejections, Dedicated.QuotaRejections) << Label;
}

TEST(Tenant, PerTenantBitParityWithDedicatedServer) {
  // Repeats exercise hits, fresh keys exercise compiles and (for g's
  // cache_one) displacement; the whole sequence replays per tenant.
  const std::vector<int64_t> Keys = {3, 5, 7, 3, 9, 5, 11, 3, 13, 7};
  constexpr uint32_t NumTenants = 3;

  // Dedicated single-tenant reference.
  auto RefCtx = compile(TwoRegionSrc);
  ServerConfig RefCfg;
  RefCfg.NumWorkers = 1;
  auto Ref = RefCtx->buildServer(OptFlags(), std::move(RefCfg));
  auto RefVM = Ref->makeClientVM();
  int RF = Ref->findFunction("f");
  int RG = Ref->findFunction("g");
  ASSERT_GE(RF, 0);
  ASSERT_GE(RG, 0);
  std::vector<int64_t> RefOut;
  for (int64_t N : Keys) {
    RefOut.push_back(
        RefVM->run(static_cast<uint32_t>(RF), {Word::fromInt(N)}).asInt());
    RefOut.push_back(
        RefVM->run(static_cast<uint32_t>(RG), {Word::fromInt(N)}).asInt());
  }
  ServerStatsSnapshot RefStats = Ref->stats();

  auto Ctx = compile(TwoRegionSrc);
  ServerConfig Cfg;
  Cfg.NumWorkers = 1;
  auto Server = Ctx->buildMultiTenant(OptFlags(), std::move(Cfg));
  int F = Server->findFunction("f");
  int G = Server->findFunction("g");

  uint64_t TenantSpecRunsTotal = 0;
  for (uint32_t T = 1; T <= NumTenants; ++T) {
    auto Client = Server->makeClientVM(T);
    std::vector<int64_t> Out;
    for (int64_t N : Keys) {
      Out.push_back(
          Client->run(static_cast<uint32_t>(F), {Word::fromInt(N)}).asInt());
      Out.push_back(
          Client->run(static_cast<uint32_t>(G), {Word::fromInt(N)}).asInt());
    }
    std::string Label = "tenant " + std::to_string(T);
    EXPECT_EQ(Out, RefOut) << Label;

    // The client's simulated machine must be indistinguishable from the
    // dedicated server's client: cycles, instructions, and I-cache.
    EXPECT_EQ(Client->execCycles(), RefVM->execCycles()) << Label;
    EXPECT_EQ(Client->dynCompCycles(), RefVM->dynCompCycles()) << Label;
    EXPECT_EQ(Client->instrsExecuted(), RefVM->instrsExecuted()) << Label;
    EXPECT_EQ(Client->icache().hits(), RefVM->icache().hits()) << Label;
    EXPECT_EQ(Client->icache().misses(), RefVM->icache().misses()) << Label;

    ServerStatsSnapshot TS = Server->tenantStats(T);
    expectLedgerEq(TS, RefStats, Label.c_str());
    TenantSpecRunsTotal += TS.SpecRuns;
  }

  // The two-ledger identity: every tenant-view specialization was either
  // a real generating-extension run or a store adoption.
  ServerStatsSnapshot Global = Server->stats();
  EXPECT_EQ(TenantSpecRunsTotal, Global.SpecRuns + Global.DedupHits);
  EXPECT_TRUE(Global.MultiTenant);
  EXPECT_EQ(Global.Tenants, NumTenants);
}

TEST(Tenant, DedupOneChainPerUniqueKeyAcrossTenants) {
  const std::vector<int64_t> Keys = {3, 5, 7, 9};
  constexpr uint32_t NumTenants = 3;

  auto Ctx = compile(SumSrc);
  ServerConfig Cfg;
  Cfg.NumWorkers = 1;
  auto Server = Ctx->buildMultiTenant(OptFlags(), std::move(Cfg));
  int F = Server->findFunction("f");

  for (uint32_t T = 1; T <= NumTenants; ++T) {
    auto Client = Server->makeClientVM(T);
    for (int64_t N : Keys)
      EXPECT_EQ(
          Client->run(static_cast<uint32_t>(F), {Word::fromInt(N)}).asInt(),
          triangular(N));
  }

  ServerStatsSnapshot S = Server->stats();
  // One generating-extension run per unique key, no matter how many
  // tenants asked; every other publication was an adoption.
  EXPECT_EQ(S.SpecRuns, Keys.size());
  EXPECT_EQ(S.ChainsCreated, Keys.size());
  EXPECT_EQ(S.DedupHits, (NumTenants - 1) * Keys.size());
  EXPECT_EQ(S.StoreChains, Keys.size());
  EXPECT_EQ(Server->storeChains(), Keys.size());
  EXPECT_EQ(Server->liveChains(), Keys.size());
  // Each tenant's view still shows a full private history.
  for (uint32_t T = 1; T <= NumTenants; ++T) {
    ServerStatsSnapshot TS = Server->tenantStats(T);
    EXPECT_EQ(TS.SpecRuns, Keys.size()) << "tenant " << T;
    EXPECT_EQ(TS.ChainsCreated, Keys.size()) << "tenant " << T;
  }
}

TEST(Tenant, RefcountLifecycleUnderEvictionChurn) {
  auto Ctx = compile(SumSrc);
  ServerConfig Cfg;
  Cfg.NumWorkers = 1;
  Cfg.Quota.Budget.MaxEntries = 1; // every fresh key evicts the previous
  auto Server = Ctx->buildMultiTenant(OptFlags(), std::move(Cfg));
  int F = Server->findFunction("f");
  auto Run = [&](vm::VM &M, int64_t N) {
    EXPECT_EQ(M.run(static_cast<uint32_t>(F), {Word::fromInt(N)}).asInt(),
              triangular(N));
  };

  auto V1 = Server->makeClientVM(1);
  auto V2 = Server->makeClientVM(2);

  Run(*V1, 3); // compile 3: refs{3:1}
  Run(*V2, 3); // adopt 3:   refs{3:2}
  EXPECT_EQ(Server->storeChains(), 1u);
  Run(*V1, 4); // compile 4; tenant 1 evicts 3 -> refs{3:1, 4:1}
  EXPECT_EQ(Server->storeChains(), 2u);
  EXPECT_EQ(Server->liveChains(), 2u);
  Run(*V1, 3); // re-adopt 3; tenant 1 evicts 4 -> last ref: 4 retired
  EXPECT_EQ(Server->storeChains(), 1u);

  // The retired chain is only freed at the quiescent safe point.
  EXPECT_EQ(Server->liveChains(), 2u);
  size_t Freed = 0;
  ASSERT_TRUE(Server->trimQuiescent(nullptr, &Freed));
  EXPECT_EQ(Freed, 1u);
  EXPECT_EQ(Server->liveChains(), 1u);

  // Tenant 2 kept executing chain 3 through all of tenant 1's churn.
  Run(*V2, 3);
  EXPECT_EQ(Server->tenantStats(2).CacheHits, 1u);

  Run(*V2, 5); // compile 5; tenant 2 drops 3 -> refs{3:1 (tenant 1), 5:1}
  EXPECT_EQ(Server->storeChains(), 2u);
  Run(*V1, 6); // compile 6; tenant 1 drops 3 -> last ref: 3 retired
  EXPECT_EQ(Server->storeChains(), 2u);
  ASSERT_TRUE(Server->trimQuiescent(nullptr, &Freed));
  EXPECT_EQ(Freed, 1u);
  EXPECT_EQ(Server->liveChains(), 2u);

  ServerStatsSnapshot S = Server->stats();
  EXPECT_EQ(S.SpecRuns, 4u);   // compiles: 3, 4, 5, 6
  EXPECT_EQ(S.DedupHits, 2u);  // tenant 2's and tenant 1's adoptions of 3
  EXPECT_EQ(S.ChainsCollected, 2u);
}

TEST(Tenant, QuotaRejectsMissesPastInFlightCap) {
  auto Ctx = compile(SumSrc);
  ServerConfig Cfg;
  Cfg.NumWorkers = 1;
  Cfg.OnMiss = MissPolicy::Fallback;
  Cfg.Quota.MaxInFlightCompiles = 1;
  auto Hold = std::make_shared<std::atomic<bool>>(true);
  Cfg.HoldCompiles = Hold;
  auto Server = Ctx->buildMultiTenant(OptFlags(), std::move(Cfg));
  int F = Server->findFunction("f");
  auto Run = [&](vm::VM &M, int64_t N) {
    EXPECT_EQ(M.run(static_cast<uint32_t>(F), {Word::fromInt(N)}).asInt(),
              triangular(N));
  };

  auto V1 = Server->makeClientVM(1);
  auto V2 = Server->makeClientVM(2);

  Run(*V1, 3); // enqueues tenant 1's one allowed compile (held); fallback
  Run(*V1, 4); // past the cap: refused outright
  Run(*V1, 3); // refused too — a coalesced join would dodge the cap
  // Tenant 2 is at zero in-flight: its miss is admitted normally.
  Run(*V2, 5);

  ServerStatsSnapshot T1 = Server->tenantStats(1);
  EXPECT_EQ(T1.QuotaRejections, 2u);
  EXPECT_EQ(T1.JobsEnqueued, 1u);
  EXPECT_EQ(T1.JobsCoalesced, 0u);
  EXPECT_EQ(T1.Fallbacks, 3u);
  EXPECT_EQ(T1.FallbacksNotRequested, 2u);
  EXPECT_EQ(Server->tenantStats(2).QuotaRejections, 0u);
  EXPECT_EQ(Server->tenantStats(2).JobsEnqueued, 1u);
  EXPECT_EQ(Server->stats().QuotaRejections, 2u);

  // Release the held compiles; the tenant's slot frees and normal service
  // resumes.
  Hold->store(false, std::memory_order_release);
  Server->drain();
  Run(*V1, 3); // hit now
  EXPECT_EQ(Server->tenantStats(1).CacheHits, 1u);
  Run(*V1, 4); // admitted this time
  Server->drain();
  Run(*V1, 4);
  EXPECT_EQ(Server->tenantStats(1).QuotaRejections, 2u); // unchanged
  EXPECT_EQ(Server->tenantStats(1).CacheHits, 2u);
}

TEST(Tenant, WarmStartRoundTripServesWarmHits) {
  const std::vector<int64_t> Keys = {3, 5, 7};
  const std::string Path = "tenant_warm_test.dycwarm";
  std::remove(Path.c_str());

  uint64_t ColdExecCycles = 0, ColdDynComp = 0, ColdInstrs = 0;
  uint64_t ColdIHits = 0, ColdIMisses = 0;
  std::vector<int64_t> ColdOut;
  {
    auto Ctx = compile(SumSrc);
    ServerConfig Cfg;
    Cfg.NumWorkers = 1;
    Cfg.WarmStartPath = Path;
    auto Server = Ctx->buildMultiTenant(OptFlags(), std::move(Cfg));
    int F = Server->findFunction("f");
    auto Client = Server->makeClientVM(1);
    for (int64_t N : Keys)
      ColdOut.push_back(
          Client->run(static_cast<uint32_t>(F), {Word::fromInt(N)}).asInt());
    ColdExecCycles = Client->execCycles();
    ColdDynComp = Client->dynCompCycles();
    ColdInstrs = Client->instrsExecuted();
    ColdIHits = Client->icache().hits();
    ColdIMisses = Client->icache().misses();
    EXPECT_EQ(Server->stats().SpecRuns, Keys.size());
    // Destruction serializes the store to Path.
  }

  {
    auto Ctx = compile(SumSrc);
    ServerConfig Cfg;
    Cfg.NumWorkers = 1;
    Cfg.WarmStartPath = Path;
    auto Server = Ctx->buildMultiTenant(OptFlags(), std::move(Cfg));
    EXPECT_EQ(Server->storeChains(), Keys.size()); // loaded, unreferenced
    int F = Server->findFunction("f");
    auto Client = Server->makeClientVM(1);
    std::vector<int64_t> WarmOut;
    for (int64_t N : Keys)
      WarmOut.push_back(
          Client->run(static_cast<uint32_t>(F), {Word::fromInt(N)}).asInt());
    EXPECT_EQ(WarmOut, ColdOut);

    ServerStatsSnapshot S = Server->stats();
    EXPECT_EQ(S.SpecRuns, 0u) << "warm start must not recompile";
    EXPECT_EQ(S.WarmHits, Keys.size());
    EXPECT_EQ(S.DedupHits, Keys.size());
    EXPECT_EQ(Server->tenantStats(1).WarmHits, Keys.size());

    // The restored chains occupy the original simulated addresses, so the
    // warm client's machine counters are bit-identical to the cold run's.
    EXPECT_EQ(Client->execCycles(), ColdExecCycles);
    EXPECT_EQ(Client->dynCompCycles(), ColdDynComp);
    EXPECT_EQ(Client->instrsExecuted(), ColdInstrs);
    EXPECT_EQ(Client->icache().hits(), ColdIHits);
    EXPECT_EQ(Client->icache().misses(), ColdIMisses);
  }

  // A server built with different optimization settings must reject the
  // file (fingerprint mismatch) and load nothing.
  {
    auto Ctx = compile(SumSrc);
    OptFlags Different;
    Different.StrengthReduction = false;
    ServerConfig Cfg;
    Cfg.NumWorkers = 1;
    auto Server = Ctx->buildMultiTenant(Different, std::move(Cfg));
    EXPECT_FALSE(Server->loadCacheFrom(Path));
    EXPECT_EQ(Server->storeChains(), 0u);
  }
  std::remove(Path.c_str());
}

TEST(Tenant, TierCountersReportZerosWhenTieringOff) {
  auto Ctx = compile(SumSrc);
  ServerConfig Cfg;
  Cfg.NumWorkers = 1;
  auto Server = Ctx->buildServer(OptFlags(), std::move(Cfg));
  int F = Server->findFunction("f");
  auto Client = Server->makeClientVM();
  for (int64_t N : {3, 5, 3})
    EXPECT_EQ(Client->run(static_cast<uint32_t>(F), {Word::fromInt(N)})
                  .asInt(),
              triangular(N));

  ServerStatsSnapshot S = Server->stats();
  EXPECT_FALSE(S.TierEnabled);
  EXPECT_EQ(S.ColdExecs, 0u);
  EXPECT_EQ(S.WarmExecs, 0u);
  EXPECT_EQ(S.WarmPromotions, 0u);
  EXPECT_EQ(S.HotPromotions, 0u);
  EXPECT_EQ(S.HotInstalls, 0u);
  EXPECT_EQ(S.OsrEntries, 0u);
  EXPECT_EQ(S.OsrPolls, 0u);
  EXPECT_EQ(S.toString().find("tier["), std::string::npos);
  // Single-tenant servers don't render the multi-tenant block either.
  EXPECT_FALSE(S.MultiTenant);
  EXPECT_EQ(S.toString().find("mt["), std::string::npos);

  runtime::RegionStats RS = Server->regionStats(0);
  EXPECT_FALSE(RS.TierEnabled);
  EXPECT_EQ(RS.ColdExecs, 0u);
  EXPECT_EQ(RS.WarmExecs, 0u);
  EXPECT_EQ(RS.WarmPromotions, 0u);
  EXPECT_EQ(RS.HotPromotions, 0u);
  EXPECT_EQ(RS.HotInstalls, 0u);
  EXPECT_EQ(RS.OsrEntries, 0u);
  EXPECT_EQ(RS.OsrPolls, 0u);
}

} // namespace
