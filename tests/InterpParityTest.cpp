//===- tests/InterpParityTest.cpp - engine cycle-parity golden tests --------------===//
//
// The predecoded superblock engine's hard invariant: every simulated
// counter — ExecCycles, DynCompCycles, InstrsExecuted, per-function calls
// and inclusive cycles, I-cache hits and misses — is bit-identical to the
// legacy per-instruction switch loop. These tests run every Table 3
// workload through both engines (fresh context and VM each, identical
// inputs) and compare the complete observable state, including an
// eviction + re-specialization sequence that exercises translation-cache
// invalidation (Emitter Version bumps, unpublish callbacks, BaseAddr
// keying).
//
//===----------------------------------------------------------------------===//

#include "core/Harness.h"

#include <gtest/gtest.h>

using namespace dyc;
using workloads::Workload;
using workloads::WorkloadSetup;

namespace {

/// Everything an engine run exposes to its environment.
struct RunTrace {
  uint64_t ExecCycles = 0;
  uint64_t DynCompCycles = 0;
  uint64_t InstrsExecuted = 0;
  uint64_t ICacheHits = 0;
  uint64_t ICacheMisses = 0;
  std::vector<uint64_t> Results; ///< bit pattern of each invocation's result
  std::vector<uint64_t> FuncCalls;
  std::vector<uint64_t> FuncInclusive;
  uint64_t MemHash = 0; ///< hash of the workload's validated output range
};

uint64_t hashRange(vm::VM &M, int64_t Base, int64_t Len) {
  if (Len <= 0)
    return 0;
  return hashWords(M.memory().data() + Base, static_cast<size_t>(Len));
}

/// Compiles \p W fresh, builds the dynamic configuration, pins \p Engine,
/// and invokes the region function \p Invokes times on the workload's own
/// inputs.
RunTrace traceWorkload(const Workload &W, vm::VM::EngineKind Engine,
                       uint64_t Invokes) {
  core::DycContext Ctx;
  core::compileWorkload(W, Ctx);
  auto E = Ctx.buildDynamic();
  E->Machine->Engine = Engine;
  WorkloadSetup S = W.Setup(*E->Machine);
  int FI = E->findFunction(W.RegionFunc);
  EXPECT_GE(FI, 0) << W.Name << ": region function not found";

  RunTrace T;
  for (uint64_t I = 0; I != Invokes; ++I)
    T.Results.push_back(
        E->Machine->run(static_cast<uint32_t>(FI), S.RegionArgs).Bits);

  T.ExecCycles = E->Machine->execCycles();
  T.DynCompCycles = E->Machine->dynCompCycles();
  T.InstrsExecuted = E->Machine->instrsExecuted();
  T.ICacheHits = E->Machine->icache().hits();
  T.ICacheMisses = E->Machine->icache().misses();
  for (uint32_t F = 0; F != E->Prog.numFunctions(); ++F) {
    T.FuncCalls.push_back(E->Machine->functionStats(F).Calls);
    T.FuncInclusive.push_back(E->Machine->functionStats(F).InclusiveCycles);
  }
  T.MemHash = hashRange(*E->Machine, S.OutBase, S.OutLen);
  return T;
}

void expectIdentical(const RunTrace &L, const RunTrace &P,
                     const std::string &What) {
  EXPECT_EQ(L.ExecCycles, P.ExecCycles) << What << ": ExecCycles";
  EXPECT_EQ(L.DynCompCycles, P.DynCompCycles) << What << ": DynCompCycles";
  EXPECT_EQ(L.InstrsExecuted, P.InstrsExecuted) << What << ": InstrsExecuted";
  EXPECT_EQ(L.ICacheHits, P.ICacheHits) << What << ": ICache hits";
  EXPECT_EQ(L.ICacheMisses, P.ICacheMisses) << What << ": ICache misses";
  EXPECT_EQ(L.Results, P.Results) << What << ": invocation results";
  EXPECT_EQ(L.FuncCalls, P.FuncCalls) << What << ": per-function calls";
  EXPECT_EQ(L.FuncInclusive, P.FuncInclusive)
      << What << ": per-function inclusive cycles";
  EXPECT_EQ(L.MemHash, P.MemHash) << What << ": output memory";
}

class InterpParity : public ::testing::TestWithParam<std::string> {};

TEST_P(InterpParity, CountersBitIdenticalOnWorkload) {
  const Workload &W = workloads::workloadByName(GetParam());
  uint64_t Invokes = std::min<uint64_t>(W.RegionInvocations, 40);
  RunTrace L = traceWorkload(W, vm::VM::EngineKind::Legacy, Invokes);
  RunTrace P = traceWorkload(W, vm::VM::EngineKind::Predecoded, Invokes);
  expectIdentical(L, P, W.Name);
}

std::vector<std::string> workloadNames() {
  std::vector<std::string> Names;
  for (const Workload &W : workloads::allWorkloads())
    Names.push_back(W.Name);
  return Names;
}

INSTANTIATE_TEST_SUITE_P(Table3, InterpParity,
                         ::testing::ValuesIn(workloadNames()));

// Eviction + re-specialization: a tight chain budget forces CLOCK eviction
// and unpublish (which eagerly invalidates translations), and revisiting
// evicted keys forces re-specialization into fresh chains at fresh
// BaseAddrs. Every counter must still match the legacy engine exactly.
const char *SumSrc = "int f(int n) {\n"
                     "  int i;\n"
                     "  make_static(n, i : cache_all);\n"
                     "  int s = 0;\n"
                     "  for (i = 0; i < n; i = i + 1) { s = s + i; }\n"
                     "  return s;\n"
                     "}";

RunTrace traceEvictionSequence(vm::VM::EngineKind Engine) {
  core::DycContext Ctx;
  std::vector<std::string> Errors;
  EXPECT_TRUE(Ctx.compile(SumSrc, Errors))
      << (Errors.empty() ? "" : Errors[0]);
  runtime::ChainBudget Budget;
  Budget.MaxEntries = 2; // evict aggressively
  auto E = Ctx.buildDynamic(OptFlags(), vm::CostModel(), vm::ICacheConfig(),
                            Budget);
  E->Machine->Engine = Engine;
  int FI = E->findFunction("f");
  EXPECT_GE(FI, 0);

  RunTrace T;
  // Rotate through more keys than the budget holds, revisiting evicted
  // ones, so chains are published, evicted, and re-specialized repeatedly.
  const int64_t Keys[] = {3, 9, 17, 3, 9, 17, 5, 3, 17, 9, 5, 3};
  for (int Round = 0; Round != 3; ++Round)
    for (int64_t K : Keys)
      T.Results.push_back(
          E->Machine->run(static_cast<uint32_t>(FI), {Word::fromInt(K)})
              .Bits);

  T.ExecCycles = E->Machine->execCycles();
  T.DynCompCycles = E->Machine->dynCompCycles();
  T.InstrsExecuted = E->Machine->instrsExecuted();
  T.ICacheHits = E->Machine->icache().hits();
  T.ICacheMisses = E->Machine->icache().misses();
  for (uint32_t F = 0; F != E->Prog.numFunctions(); ++F) {
    T.FuncCalls.push_back(E->Machine->functionStats(F).Calls);
    T.FuncInclusive.push_back(E->Machine->functionStats(F).InclusiveCycles);
  }

  if (Engine == vm::VM::EngineKind::Predecoded) {
    // The engine really ran on translations, and eager invalidation kept
    // the cache from accumulating one entry per evicted chain.
    EXPECT_GT(E->Machine->decodeBuilds(), 0u);
    EXPECT_LE(E->Machine->decodedObjects(),
              E->Prog.numFunctions() + Budget.MaxEntries + 2);
  }
  return T;
}

TEST(InterpParity, EvictionAndRespecializationSequence) {
  RunTrace L = traceEvictionSequence(vm::VM::EngineKind::Legacy);
  RunTrace P = traceEvictionSequence(vm::VM::EngineKind::Predecoded);
  expectIdentical(L, P, "eviction sequence");
}

// The triangular sums themselves must of course be right.
TEST(InterpParity, EvictionSequenceComputesCorrectSums) {
  RunTrace P = traceEvictionSequence(vm::VM::EngineKind::Predecoded);
  const int64_t Keys[] = {3, 9, 17, 3, 9, 17, 5, 3, 17, 9, 5, 3};
  size_t Idx = 0;
  for (int Round = 0; Round != 3; ++Round)
    for (int64_t K : Keys)
      EXPECT_EQ(static_cast<int64_t>(P.Results[Idx++]), K * (K - 1) / 2);
}

// Dispatch-heavy workload under a tight chain budget, run with the
// run-time's per-site inline caches on and off across both engines. The
// inline cache is a host-speed memo only: every simulated counter — cycle
// accounts, the region's dispatch/hit/miss/eviction statistics, even the
// average probe count the cost model reports — must be bit-identical in
// all four configurations. Monomorphic streaks (4x repeats) make the memo
// actually fire; the key rotation and evictions force it to invalidate.
struct DispatchTrace {
  RunTrace T;
  uint64_t Dispatches = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t Evictions = 0;
  uint64_t SpecRuns = 0;
  uint64_t ICHits = 0; ///< host-level, expected to differ with IC on/off
  double AvgProbes = 0;
};

DispatchTrace traceDispatchHeavy(vm::VM::EngineKind Engine, bool ICOn) {
  core::DycContext Ctx;
  std::vector<std::string> Errors;
  EXPECT_TRUE(Ctx.compile(SumSrc, Errors))
      << (Errors.empty() ? "" : Errors[0]);
  runtime::ChainBudget Budget;
  Budget.MaxEntries = 2;
  auto E = Ctx.buildDynamic(OptFlags(), vm::CostModel(), vm::ICacheConfig(),
                            Budget);
  E->Machine->Engine = Engine;
  E->RT->setInlineCacheEnabled(ICOn);
  int FI = E->findFunction("f");
  EXPECT_GE(FI, 0);
  int Ord = E->regionOrdinalOf("f");
  EXPECT_GE(Ord, 0);

  DispatchTrace D;
  const int64_t Keys[] = {3, 9, 17, 3, 9, 17, 5, 3, 17, 9, 5, 3};
  for (int Round = 0; Round != 2; ++Round)
    for (int64_t K : Keys)
      for (int Rep = 0; Rep != 4; ++Rep)
        D.T.Results.push_back(
            E->Machine->run(static_cast<uint32_t>(FI), {Word::fromInt(K)})
                .Bits);

  D.T.ExecCycles = E->Machine->execCycles();
  D.T.DynCompCycles = E->Machine->dynCompCycles();
  D.T.InstrsExecuted = E->Machine->instrsExecuted();
  D.T.ICacheHits = E->Machine->icache().hits();
  D.T.ICacheMisses = E->Machine->icache().misses();
  for (uint32_t F = 0; F != E->Prog.numFunctions(); ++F) {
    D.T.FuncCalls.push_back(E->Machine->functionStats(F).Calls);
    D.T.FuncInclusive.push_back(E->Machine->functionStats(F).InclusiveCycles);
  }

  const runtime::RegionStats &St = E->RT->stats(static_cast<size_t>(Ord));
  D.Dispatches = St.Dispatches;
  D.CacheHits = St.CacheHits;
  D.CacheMisses = St.CacheMisses;
  D.Evictions = St.Evictions;
  D.SpecRuns = St.SpecializationRuns;
  D.AvgProbes = E->RT->avgCacheProbes(static_cast<size_t>(Ord));
  D.ICHits = E->RT->inlineCacheHits();
  EXPECT_EQ(E->RT->inlineCacheEnabled(), ICOn);
  return D;
}

TEST(InterpParity, InlineCachePreservesAllCountersUnderEviction) {
  DispatchTrace Base = traceDispatchHeavy(vm::VM::EngineKind::Legacy, false);
  EXPECT_EQ(Base.ICHits, 0u) << "IC off must never take the fast path";
  EXPECT_GT(Base.Evictions, 0u) << "workload must exercise eviction";
  EXPECT_GT(Base.CacheMisses, 0u);

  struct Config {
    vm::VM::EngineKind Engine;
    bool ICOn;
    const char *Name;
  };
  const Config Configs[] = {
      {vm::VM::EngineKind::Legacy, true, "legacy, IC on"},
      {vm::VM::EngineKind::Predecoded, false, "predecoded, IC off"},
      {vm::VM::EngineKind::Predecoded, true, "predecoded, IC on"},
  };
  for (const Config &C : Configs) {
    DispatchTrace D = traceDispatchHeavy(C.Engine, C.ICOn);
    expectIdentical(Base.T, D.T, C.Name);
    EXPECT_EQ(Base.Dispatches, D.Dispatches) << C.Name << ": Dispatches";
    EXPECT_EQ(Base.CacheHits, D.CacheHits) << C.Name << ": CacheHits";
    EXPECT_EQ(Base.CacheMisses, D.CacheMisses) << C.Name << ": CacheMisses";
    EXPECT_EQ(Base.Evictions, D.Evictions) << C.Name << ": Evictions";
    EXPECT_EQ(Base.SpecRuns, D.SpecRuns) << C.Name << ": SpecializationRuns";
    EXPECT_DOUBLE_EQ(Base.AvgProbes, D.AvgProbes)
        << C.Name << ": avgCacheProbes";
    if (C.ICOn)
      EXPECT_GT(D.ICHits, 0u)
          << C.Name << ": monomorphic streaks must hit the inline cache";
    else
      EXPECT_EQ(D.ICHits, 0u) << C.Name;
  }
}

// Satellite regression: Program::findFunction now resolves through a name
// map; duplicate registrations must keep the old scan's first-wins order.
TEST(InterpParity, FindFunctionFirstRegistrationWins) {
  vm::Program Prog;
  vm::CodeObject A;
  A.Name = "dup";
  A.Code.push_back(vm::Instr(vm::Op::Ret, vm::NoReg));
  vm::CodeObject B = A;
  uint32_t First = Prog.addFunction(std::move(A));
  Prog.addFunction(std::move(B));
  EXPECT_EQ(Prog.findFunction("dup"), static_cast<int>(First));
  EXPECT_EQ(Prog.findFunction("absent"), -1);
}

} // namespace
