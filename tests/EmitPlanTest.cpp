//===- tests/EmitPlanTest.cpp - staged-emit-plan parity tests ----------------------===//
//
// The staged emit plan's hard invariant: plans change how the host walks a
// generating extension, never what the simulated machine observes. These
// tests run every Table 3 workload through both VM engines and both
// execution backends with the plan path on and off and compare the
// complete observable state — simulated counters (DynCompCycles included),
// results, output memory, and the golden disassembly of every region —
// plus the speculation path, plan-cache counter semantics under eviction
// churn, hard-zeroing when the path is off, nested static-call re-entry
// into the specializer while a parent plan is executing, and the
// flag/environment selection rules.
//
//===----------------------------------------------------------------------===//

#include "cogen/EmitPlan.h"
#include "core/Harness.h"
#include "server/SpecServer.h"
#include "speculate/SpeculativeRuntime.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace dyc;
using workloads::Workload;
using workloads::WorkloadSetup;

namespace {

OptFlags withPlan(bool PlanOn, ExecBackend Backend = ExecBackend::Default) {
  OptFlags Fl;
  Fl.EmitPlan = PlanOn ? EmitPlanMode::On : EmitPlanMode::Off;
  Fl.Backend = Backend;
  return Fl;
}

/// RegionStats rendered with the plan block neutralized: the plan counters
/// differ between the two modes by design, everything else must not.
std::string statsSansPlan(runtime::RegionStats St) {
  St.PlanEnabled = false;
  St.PlanBuilds = St.PlanHits = St.PlanBytes = 0;
  return St.toString();
}

/// Everything one run exposes to its environment, plus the per-region
/// disassembly: the plan path must not change one byte of emitted code or
/// one count of any simulated counter.
struct PlanTrace {
  uint64_t ExecCycles = 0;
  uint64_t DynCompCycles = 0;
  uint64_t InstrsExecuted = 0;
  uint64_t ICacheHits = 0;
  uint64_t ICacheMisses = 0;
  std::vector<uint64_t> Results;
  std::vector<uint64_t> FuncCalls;
  std::vector<uint64_t> FuncInclusive;
  uint64_t MemHash = 0;
  std::vector<std::string> Disassembly;  ///< per region
  std::vector<std::string> RegionStats;  ///< per region, plan block zeroed
  uint64_t PlanBuilds = 0;               ///< summed over regions
  uint64_t PlanHits = 0;
  uint64_t PlanBytes = 0;
};

uint64_t hashRange(vm::VM &M, int64_t Base, int64_t Len) {
  if (Len <= 0)
    return 0;
  return hashWords(M.memory().data() + Base, static_cast<size_t>(Len));
}

void captureMachine(core::Executable &E, PlanTrace &T) {
  T.ExecCycles = E.Machine->execCycles();
  T.DynCompCycles = E.Machine->dynCompCycles();
  T.InstrsExecuted = E.Machine->instrsExecuted();
  T.ICacheHits = E.Machine->icache().hits();
  T.ICacheMisses = E.Machine->icache().misses();
  for (uint32_t F = 0; F != E.Prog.numFunctions(); ++F) {
    T.FuncCalls.push_back(E.Machine->functionStats(F).Calls);
    T.FuncInclusive.push_back(E.Machine->functionStats(F).InclusiveCycles);
  }
}

void captureRegions(runtime::DycRuntime &RT, PlanTrace &T) {
  for (size_t Ord = 0; Ord != RT.numRegions(); ++Ord) {
    T.Disassembly.push_back(RT.disassembleRegion(Ord));
    const runtime::RegionStats &St = RT.stats(Ord);
    T.RegionStats.push_back(statsSansPlan(St));
    T.PlanBuilds += St.PlanBuilds;
    T.PlanHits += St.PlanHits;
    T.PlanBytes += St.PlanBytes;
  }
}

PlanTrace traceWorkload(const Workload &W, vm::VM::EngineKind Engine,
                        ExecBackend Backend, bool PlanOn, uint64_t Invokes) {
  core::DycContext Ctx;
  core::compileWorkload(W, Ctx);
  auto E = Ctx.buildDynamic(withPlan(PlanOn, Backend));
  E->Machine->Engine = Engine;
  WorkloadSetup S = W.Setup(*E->Machine);
  int FI = E->findFunction(W.RegionFunc);
  EXPECT_GE(FI, 0) << W.Name << ": region function not found";

  PlanTrace T;
  for (uint64_t I = 0; I != Invokes; ++I)
    T.Results.push_back(
        E->Machine->run(static_cast<uint32_t>(FI), S.RegionArgs).Bits);

  captureMachine(*E, T);
  T.MemHash = hashRange(*E->Machine, S.OutBase, S.OutLen);
  captureRegions(*E->RT, T);
  return T;
}

void expectIdentical(const PlanTrace &On, const PlanTrace &Off,
                     const std::string &What) {
  EXPECT_EQ(On.ExecCycles, Off.ExecCycles) << What << ": ExecCycles";
  EXPECT_EQ(On.DynCompCycles, Off.DynCompCycles)
      << What << ": DynCompCycles";
  EXPECT_EQ(On.InstrsExecuted, Off.InstrsExecuted)
      << What << ": InstrsExecuted";
  EXPECT_EQ(On.ICacheHits, Off.ICacheHits) << What << ": ICache hits";
  EXPECT_EQ(On.ICacheMisses, Off.ICacheMisses) << What << ": ICache misses";
  EXPECT_EQ(On.Results, Off.Results) << What << ": invocation results";
  EXPECT_EQ(On.FuncCalls, Off.FuncCalls) << What << ": per-function calls";
  EXPECT_EQ(On.FuncInclusive, Off.FuncInclusive)
      << What << ": per-function inclusive cycles";
  EXPECT_EQ(On.MemHash, Off.MemHash) << What << ": output memory";
  EXPECT_EQ(On.Disassembly, Off.Disassembly)
      << What << ": golden disassembly";
  EXPECT_EQ(On.RegionStats, Off.RegionStats)
      << What << ": region counters";
}

class EmitPlanParity : public ::testing::TestWithParam<std::string> {};

// All 5 Table 3 workloads × both VM engines × both execution backends: the
// plan path must replay bit-identical counters and emit byte-identical
// chains, and it must actually engage (builds > 0) when on.
TEST_P(EmitPlanParity, CountersAndDisassemblyIdenticalOnWorkload) {
  const Workload &W = workloads::workloadByName(GetParam());
  uint64_t Invokes = std::min<uint64_t>(W.RegionInvocations, 40);
  for (vm::VM::EngineKind Engine :
       {vm::VM::EngineKind::Legacy, vm::VM::EngineKind::Predecoded}) {
    for (ExecBackend Backend :
         {ExecBackend::Bytecode, ExecBackend::Template}) {
      std::string What =
          W.Name +
          (Engine == vm::VM::EngineKind::Legacy ? " (legacy" : " (predec") +
          (Backend == ExecBackend::Bytecode ? ", bytecode)" : ", template)");
      PlanTrace On = traceWorkload(W, Engine, Backend, true, Invokes);
      PlanTrace Off = traceWorkload(W, Engine, Backend, false, Invokes);
      expectIdentical(On, Off, What);
      EXPECT_GT(On.PlanBuilds, 0u) << What << ": plan path never engaged";
      EXPECT_GT(On.PlanBytes, 0u) << What;
      EXPECT_EQ(Off.PlanBuilds + Off.PlanHits + Off.PlanBytes, 0u) << What;
    }
  }
}

std::vector<std::string> workloadNames() {
  std::vector<std::string> Names;
  for (const Workload &W : workloads::allWorkloads())
    Names.push_back(W.Name);
  return Names;
}

INSTANTIATE_TEST_SUITE_P(Table3, EmitPlanParity,
                         ::testing::ValuesIn(workloadNames()));

const char *SumSrc = "int f(int n) {\n"
                     "  int i;\n"
                     "  make_static(n, i : cache_all);\n"
                     "  int s = 0;\n"
                     "  for (i = 0; i < n; i = i + 1) { s = s + i; }\n"
                     "  return s;\n"
                     "}";

// Speculation on/off axis: guarded twins synthesize regions through the
// same specializer, and deopt/demotion tears them down. The plan path
// must be invisible to all of it. The query kernel reliably promotes
// (folded loads give it real structural benefit).
PlanTrace traceSpeculative(bool SpecOn, bool PlanOn) {
  const Workload &W = workloads::workloadByName("query");
  core::DycContext Ctx;
  core::compileWorkload(W, Ctx);
  speculate::SpeculationPolicy Policy;
  Policy.Enabled = SpecOn;
  auto E = Ctx.buildSpeculative(Policy, withPlan(PlanOn));
  WorkloadSetup S = W.Setup(*E->Machine);
  int FI = E->findFunction(W.MainFunc);
  EXPECT_GE(FI, 0);

  PlanTrace T;
  // Enough main runs to clear HotCalls, promote, and re-run through the
  // guarded twin at steady state.
  for (int I = 0; I != 3; ++I)
    T.Results.push_back(
        E->Machine->run(static_cast<uint32_t>(FI), S.MainArgs).Bits);
  captureMachine(*E, T);
  T.MemHash = hashRange(*E->Machine, S.OutBase, S.OutLen);
  captureRegions(E->Spec->runtime(), T);
  if (SpecOn)
    EXPECT_GE(E->Spec->stats().Promotions, 1u);
  return T;
}

TEST(EmitPlanParity, SpeculativePromotionPathIdentical) {
  for (bool SpecOn : {false, true}) {
    std::string What = SpecOn ? "speculation on" : "speculation off";
    PlanTrace On = traceSpeculative(SpecOn, true);
    PlanTrace Off = traceSpeculative(SpecOn, false);
    expectIdentical(On, Off, What);
    if (SpecOn)
      EXPECT_GT(On.PlanBuilds, 0u)
          << What << ": twin regions must specialize through plans";
  }
}

// Plan-cache semantics under eviction churn: the plan keys on the
// immutable generating extension plus the flags fingerprint, so capacity
// evictions and code-version churn must never force a rebuild — one build
// per region, every later specialization run a hit.
TEST(EmitPlanCache, OneBuildManyHitsAcrossEvictionChurn) {
  PlanTrace Traces[2];
  for (bool PlanOn : {true, false}) {
    core::DycContext Ctx;
    std::vector<std::string> Errors;
    ASSERT_TRUE(Ctx.compile(SumSrc, Errors))
        << (Errors.empty() ? "" : Errors[0]);
    runtime::ChainBudget Budget;
    Budget.MaxEntries = 2; // evict aggressively
    auto E = Ctx.buildDynamic(withPlan(PlanOn), vm::CostModel(),
                              vm::ICacheConfig(), Budget);
    int FI = E->findFunction("f");
    ASSERT_GE(FI, 0);

    PlanTrace &T = Traces[PlanOn ? 0 : 1];
    const int64_t Keys[] = {3, 9, 17, 3, 9, 17, 5, 3, 17, 9, 5, 3};
    for (int Round = 0; Round != 3; ++Round)
      for (int64_t K : Keys)
        T.Results.push_back(
            E->Machine->run(static_cast<uint32_t>(FI), {Word::fromInt(K)})
                .Bits);
    captureMachine(*E, T);
    captureRegions(*E->RT, T);

    const runtime::RegionStats &St = E->RT->stats(0);
    if (PlanOn) {
      EXPECT_GT(St.Evictions, 0u) << "churn never evicted";
      EXPECT_EQ(St.PlanBuilds, 1u)
          << "eviction churn must not invalidate the plan";
      EXPECT_EQ(St.PlanBuilds + St.PlanHits, St.SpecializationRuns)
          << "every specialization run either builds or hits";
      EXPECT_GT(St.PlanBytes, 0u);
      EXPECT_NE(St.toString().find("plan-builds=1"), std::string::npos);
    }
  }
  expectIdentical(Traces[0], Traces[1], "eviction churn");
}

// Hard-zero contract when the path is off: no counters, no toString
// suffix, and the server front end forces zeros in both snapshot layers.
TEST(EmitPlanCache, HardZeroAndUnrenderedWhenOff) {
  core::DycContext Ctx;
  std::vector<std::string> Errors;
  ASSERT_TRUE(Ctx.compile(SumSrc, Errors));
  auto E = Ctx.buildDynamic(withPlan(false));
  int FI = E->findFunction("f");
  ASSERT_GE(FI, 0);
  E->Machine->run(static_cast<uint32_t>(FI), {Word::fromInt(7)});
  const runtime::RegionStats &St = E->RT->stats(0);
  EXPECT_FALSE(St.PlanEnabled);
  EXPECT_EQ(St.PlanBuilds + St.PlanHits + St.PlanBytes, 0u);
  EXPECT_EQ(St.toString().find("plan-builds"), std::string::npos);

  for (bool PlanOn : {false, true}) {
    core::DycContext SCtx;
    ASSERT_TRUE(SCtx.compile(SumSrc, Errors));
    server::ServerConfig Cfg;
    Cfg.NumWorkers = 1;
    Cfg.OnMiss = server::MissPolicy::Block;
    auto Server = SCtx.buildServer(withPlan(PlanOn), std::move(Cfg));
    auto Client = Server->makeClientVM();
    int FS = Server->findFunction("f");
    ASSERT_GE(FS, 0);
    for (int64_t K : {3, 9, 3})
      Client->run(static_cast<uint32_t>(FS), {Word::fromInt(K)});
    Server->drain();
    server::ServerStatsSnapshot S = Server->stats();
    runtime::RegionStats RS = Server->regionStats(0);
    if (PlanOn) {
      EXPECT_TRUE(S.PlanEnabled);
      EXPECT_GT(S.PlanBuilds, 0u);
      EXPECT_NE(S.toString().find("plan["), std::string::npos);
      EXPECT_TRUE(RS.PlanEnabled);
    } else {
      EXPECT_FALSE(S.PlanEnabled);
      EXPECT_EQ(S.PlanBuilds + S.PlanHits + S.PlanBytes, 0u);
      EXPECT_EQ(S.toString().find("plan["), std::string::npos);
      EXPECT_FALSE(RS.PlanEnabled);
      EXPECT_EQ(RS.PlanBuilds + RS.PlanHits + RS.PlanBytes, 0u);
    }
  }
}

// Re-entrancy: specializing f executes the static call g(...) at
// specialize time; g carries its own make_static, so the nested run
// re-enters specializeInto — and builds g's plan — while f's plan is
// mid-execution in a Generic (EvalCall) step. Both orders of plan
// construction must nest cleanly and stay bit-identical to the legacy
// walk.
const char *NestedSrc =
    "pure int g(int m) {\n"
    "  int j;\n"
    "  make_static(m, j : cache_all);\n"
    "  int t = 0;\n"
    "  for (j = 0; j < m; j = j + 1) { t = t + j * m; }\n"
    "  return t;\n"
    "}\n"
    "int f(int n) {\n"
    "  make_static(n);\n"
    "  return g(n) + g(n + 1);\n"
    "}";

TEST(EmitPlanReentrancy, NestedStaticCallSpecializesUnderParentPlan) {
  PlanTrace Traces[2];
  for (bool PlanOn : {true, false}) {
    core::DycContext Ctx;
    std::vector<std::string> Errors;
    ASSERT_TRUE(Ctx.compile(NestedSrc, Errors))
        << (Errors.empty() ? "" : Errors[0]);
    auto E = Ctx.buildDynamic(withPlan(PlanOn));
    int FI = E->findFunction("f");
    ASSERT_GE(FI, 0);

    PlanTrace &T = Traces[PlanOn ? 0 : 1];
    for (int64_t N : {4, 7, 4})
      T.Results.push_back(
          E->Machine->run(static_cast<uint32_t>(FI), {Word::fromInt(N)})
              .Bits);
    captureMachine(*E, T);
    captureRegions(*E->RT, T);

    ASSERT_EQ(E->RT->numRegions(), 2u);
    if (PlanOn) {
      for (size_t Ord = 0; Ord != E->RT->numRegions(); ++Ord) {
        const runtime::RegionStats &St = E->RT->stats(Ord);
        if (St.SpecializationRuns == 0)
          continue; // region never entered (fully static call folded away)
        EXPECT_EQ(St.PlanBuilds, 1u) << "region " << Ord;
        EXPECT_EQ(St.PlanBuilds + St.PlanHits, St.SpecializationRuns)
            << "region " << Ord;
      }
      EXPECT_GT(Traces[0].PlanBuilds, 1u)
          << "nested region must build its own plan";
    }
  }
  expectIdentical(Traces[0], Traces[1], "nested static call");
}

// Selection semantics: explicit flag beats the environment; Default
// follows DYC_EMIT_PLAN; the path is on when the variable is unset or
// unrecognized (default-on, unlike DYC_BACKEND's default-bytecode).
TEST(EmitPlanSelection, FlagAndEnvironmentRules) {
  unsetenv("DYC_EMIT_PLAN");
  EXPECT_TRUE(cogen::resolveEmitPlanEnabled(EmitPlanMode::Default));
  for (const char *Off : {"off", "0", "false"}) {
    setenv("DYC_EMIT_PLAN", Off, 1);
    EXPECT_FALSE(cogen::resolveEmitPlanEnabled(EmitPlanMode::Default))
        << Off;
    EXPECT_TRUE(cogen::resolveEmitPlanEnabled(EmitPlanMode::On))
        << "explicit flag must beat the environment";
  }
  for (const char *On : {"on", "1", "true", "nonsense"}) {
    setenv("DYC_EMIT_PLAN", On, 1);
    EXPECT_TRUE(cogen::resolveEmitPlanEnabled(EmitPlanMode::Default)) << On;
    EXPECT_FALSE(cogen::resolveEmitPlanEnabled(EmitPlanMode::Off))
        << "explicit flag must beat the environment";
  }
  unsetenv("DYC_EMIT_PLAN");

  // The resolved selection reaches RegionStats: default flags on a fresh
  // core engage the plan path (default-on).
  core::DycContext Ctx;
  std::vector<std::string> Errors;
  ASSERT_TRUE(Ctx.compile(SumSrc, Errors));
  auto E = Ctx.buildDynamic();
  int FI = E->findFunction("f");
  ASSERT_GE(FI, 0);
  E->Machine->run(static_cast<uint32_t>(FI), {Word::fromInt(5)});
  EXPECT_TRUE(E->RT->stats(0).PlanEnabled);
  EXPECT_EQ(E->RT->stats(0).PlanBuilds, 1u);
}

} // namespace
