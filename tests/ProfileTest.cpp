//===- tests/ProfileTest.cpp - value profiler / annotation advisor tests ----------===//

#include "core/DycContext.h"
#include "profile/ValueProfiler.h"

#include <gtest/gtest.h>

using namespace dyc;
using profile::AdvisorPolicy;
using profile::Suggestion;
using profile::ValueProfiler;

namespace {

const char *HotspotSrc = R"(
int checksum(int* table, int width, int* rec) {
  int f;
  int h = 0;
  for (f = 0; f < width; f = f + 1) {
    h = h * 31 + rec[f] * table[f];
  }
  return h;
}

int main(int* table, int* recs, int nrecs) {
  int i;
  int acc = 0;
  for (i = 0; i < nrecs; i = i + 1) {
    acc = acc ^ checksum(table, 8, recs + (i % 8) * 8);
  }
  return acc;
}
)";

struct HotspotSetupResult {
  int64_t Table = 0, Recs = 0;
};

HotspotSetupResult setupHotspot(vm::VM &M) {
  HotspotSetupResult S;
  S.Table = M.allocMemory(8);
  S.Recs = M.allocMemory(64);
  DeterministicRNG RNG(5);
  for (int I = 0; I != 8; ++I)
    M.memory()[S.Table + I] = Word::fromInt(3 + I * I);
  for (int I = 0; I != 64; ++I)
    M.memory()[S.Recs + I] =
        Word::fromInt(static_cast<int64_t>(RNG.nextBelow(97)));
  return S;
}

TEST(ValueProfilerTest, RecordsPerParameterValues) {
  core::DycContext Ctx;
  std::vector<std::string> Errors;
  ASSERT_TRUE(Ctx.compile(HotspotSrc, Errors));
  auto E = Ctx.buildStatic();
  ValueProfiler P;
  P.attach(*E->Machine);
  HotspotSetupResult S = setupHotspot(*E->Machine);
  int Main = E->findFunction("main");
  int Check = E->findFunction("checksum");
  E->Machine->run(Main, {Word::fromInt(S.Table), Word::fromInt(S.Recs),
                         Word::fromInt(100)});
  EXPECT_EQ(P.calls(static_cast<uint32_t>(Check)), 100u);
  // table and width are invariant across all calls; rec varies (8 bases).
  EXPECT_EQ(P.param(Check, 0).distinctValues(), 1u);
  EXPECT_EQ(P.param(Check, 1).distinctValues(), 1u);
  EXPECT_EQ(P.param(Check, 2).distinctValues(), 8u);
  EXPECT_DOUBLE_EQ(P.param(Check, 0).dominance(), 1.0);
}

TEST(ValueProfilerTest, OverflowMarksVariableParams) {
  ValueProfiler P(4);
  // Drive the observer directly through a tiny program.
  core::DycContext Ctx;
  std::vector<std::string> Errors;
  ASSERT_TRUE(Ctx.compile("int id(int x) { return x; }", Errors));
  auto E = Ctx.buildStatic();
  P.attach(*E->Machine);
  int F = E->findFunction("id");
  for (int64_t V = 0; V != 10; ++V)
    E->Machine->run(F, {Word::fromInt(V)});
  EXPECT_TRUE(P.param(static_cast<uint32_t>(F), 0).Overflowed);
}

TEST(ValueProfilerTest, AttachChainsExistingObserver) {
  // Regression: attach used to clobber whatever call observer the VM
  // already had (the speculative runtime's, the test harness's). It must
  // chain — the prior observer keeps firing, then the profiler samples.
  core::DycContext Ctx;
  std::vector<std::string> Errors;
  ASSERT_TRUE(Ctx.compile("int id(int x) { return x; }", Errors));
  auto E = Ctx.buildStatic();
  uint64_t PriorFired = 0;
  E->Machine->OnCall = [&](uint32_t, const Word *, uint32_t) {
    ++PriorFired;
  };
  ValueProfiler P;
  P.attach(*E->Machine);
  int F = E->findFunction("id");
  for (int64_t V = 0; V != 5; ++V)
    E->Machine->run(F, {Word::fromInt(7)});
  EXPECT_EQ(PriorFired, 5u) << "prior observer was clobbered";
  EXPECT_EQ(P.calls(static_cast<uint32_t>(F)), 5u);
  EXPECT_EQ(P.param(static_cast<uint32_t>(F), 0).Observations, 5u);
}

TEST(ValueProfilerTest, DoubleAttachIsFatal) {
  // Re-attaching the same profiler to the same VM would make it sample
  // through its own chained tail and double-count every call.
  core::DycContext Ctx;
  std::vector<std::string> Errors;
  ASSERT_TRUE(Ctx.compile("int id(int x) { return x; }", Errors));
  auto E = Ctx.buildStatic();
  ValueProfiler P;
  P.attach(*E->Machine);
  EXPECT_DEATH(P.attach(*E->Machine), "already attached");
}

TEST(ValueProfilerTest, DominanceIsZeroWithoutObservations) {
  profile::ParamProfile Empty;
  EXPECT_DOUBLE_EQ(Empty.dominance(), 0.0);
  // Queries about never-observed functions/parameters answer the same.
  ValueProfiler P;
  EXPECT_EQ(P.param(42, 3).Observations, 0u);
  EXPECT_DOUBLE_EQ(P.param(42, 3).dominance(), 0.0);
  EXPECT_EQ(P.calls(42), 0u);
}

TEST(AnnotationAdvisor, OverflowedParameterIsDisqualified) {
  // A parameter that blew past MaxDistinct is too variable to cache on;
  // with no other candidate the function yields no suggestion at all.
  core::DycContext Ctx;
  std::vector<std::string> Errors;
  ASSERT_TRUE(Ctx.compile("int id(int x) { return x; }", Errors));
  auto E = Ctx.buildStatic();
  ValueProfiler P(4);
  P.attach(*E->Machine);
  int F = E->findFunction("id");
  for (int64_t V = 0; V != 10; ++V)
    E->Machine->run(F, {Word::fromInt(V)});
  ASSERT_TRUE(P.param(static_cast<uint32_t>(F), 0).Overflowed);
  AdvisorPolicy Loose;
  Loose.MinCycleShare = 0.0;
  Loose.MinCalls = 1;
  std::vector<Suggestion> Sugg =
      profile::adviseAnnotations(Ctx.module(), *E->Machine, P, Loose);
  for (const Suggestion &S : Sugg)
    EXPECT_NE(S.FuncName, "id") << "overflowed parameter suggested";
}

TEST(AnnotationAdvisor, FindsTheHotInvariantParameters) {
  core::DycContext Ctx;
  std::vector<std::string> Errors;
  ASSERT_TRUE(Ctx.compile(HotspotSrc, Errors));
  auto E = Ctx.buildStatic();
  ValueProfiler P;
  P.attach(*E->Machine);
  HotspotSetupResult S = setupHotspot(*E->Machine);
  E->Machine->run(E->findFunction("main"),
                  {Word::fromInt(S.Table), Word::fromInt(S.Recs),
                   Word::fromInt(100)});
  std::vector<Suggestion> Sugg =
      profile::adviseAnnotations(Ctx.module(), *E->Machine, P);
  ASSERT_FALSE(Sugg.empty());
  EXPECT_EQ(Sugg[0].FuncName, "checksum");
  EXPECT_EQ(Sugg[0].Names,
            (std::vector<std::string>{"table", "width"}));
  EXPECT_GT(Sugg[0].CycleShare, 0.3);
}

TEST(AnnotationAdvisor, ActingOnTheSuggestionSpeedsThingsUp) {
  // Close the loop: apply the advisor's suggestion (annotate table/width
  // and the scan index) and verify the specialized version is faster and
  // produces identical results.
  const char *Annotated = R"(
int checksum(int* table, int width, int* rec) {
  int f;
  make_static(table, width, f : cache_one_unchecked);
  int h = 0;
  for (f = 0; f < width; f = f + 1) {
    h = h * 31 + rec[f] * table@[f];
  }
  return h;
}

int main(int* table, int* recs, int nrecs) {
  int i;
  int acc = 0;
  for (i = 0; i < nrecs; i = i + 1) {
    acc = acc ^ checksum(table, 8, recs + (i % 8) * 8);
  }
  return acc;
}
)";
  core::DycContext Plain, Spec;
  std::vector<std::string> Errors;
  ASSERT_TRUE(Plain.compile(HotspotSrc, Errors));
  ASSERT_TRUE(Spec.compile(Annotated, Errors));
  auto PE = Plain.buildStatic();
  auto SE = Spec.buildDynamic();
  HotspotSetupResult P1 = setupHotspot(*PE->Machine);
  HotspotSetupResult P2 = setupHotspot(*SE->Machine);
  ASSERT_EQ(P1.Table, P2.Table);
  std::vector<Word> Args = {Word::fromInt(P1.Table),
                            Word::fromInt(P1.Recs), Word::fromInt(100)};
  Word RPlain = PE->Machine->run(PE->findFunction("main"), Args);
  Word RSpec = SE->Machine->run(SE->findFunction("main"), Args);
  EXPECT_EQ(RPlain.asInt(), RSpec.asInt());
  // Second run, post-specialization: the annotated build must be faster.
  uint64_t C0 = PE->Machine->execCycles();
  PE->Machine->run(PE->findFunction("main"), Args);
  uint64_t PlainCost = PE->Machine->execCycles() - C0;
  uint64_t C1 = SE->Machine->execCycles();
  SE->Machine->run(SE->findFunction("main"), Args);
  uint64_t SpecCost = SE->Machine->execCycles() - C1;
  EXPECT_LT(SpecCost, PlainCost);
}

TEST(AnnotationAdvisor, SkipsColdAndAlreadyAnnotatedFunctions) {
  const char *Src = R"(
int hot(int* t, int x) {
  int i;
  make_static(t, i);
  int s = 0;
  for (i = 0; i < 4; i = i + 1) { s = s + t@[i] * x; }
  return s;
}

int cold(int* t, int x) { return t[0] * x; }

int main(int* t, int n) {
  int i;
  int acc = 0;
  for (i = 0; i < n; i = i + 1) { acc = acc + hot(t, i); }
  acc = acc + cold(t, 1);
  return acc;
}
)";
  core::DycContext Ctx;
  std::vector<std::string> Errors;
  ASSERT_TRUE(Ctx.compile(Src, Errors));
  auto E = Ctx.buildStatic();
  ValueProfiler P;
  P.attach(*E->Machine);
  int64_t T = E->Machine->allocMemory(4);
  for (int I = 0; I != 4; ++I)
    E->Machine->memory()[T + I] = Word::fromInt(I + 1);
  E->Machine->run(E->findFunction("main"),
                  {Word::fromInt(T), Word::fromInt(50)});
  std::vector<Suggestion> Sugg =
      profile::adviseAnnotations(Ctx.module(), *E->Machine, P);
  for (const Suggestion &S : Sugg) {
    EXPECT_NE(S.FuncName, "hot") << "already annotated";
    EXPECT_NE(S.FuncName, "cold") << "only called once";
  }
}

} // namespace
