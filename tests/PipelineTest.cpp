//===- tests/PipelineTest.cpp - End-to-end pipeline smoke tests -------------------===//
//
// Compiles small annotated MiniC programs, runs both configurations, and
// checks (a) result equivalence and (b) that the headline staged
// optimizations actually fire.
//
//===----------------------------------------------------------------------===//

#include "core/DycContext.h"

#include <gtest/gtest.h>

using namespace dyc;
using core::DycContext;
using core::Executable;

namespace {

std::unique_ptr<DycContext> compileOk(const std::string &Src) {
  auto Ctx = std::make_unique<DycContext>();
  std::vector<std::string> Errors;
  bool OK = Ctx->compile(Src, Errors);
  for (const std::string &E : Errors)
    ADD_FAILURE() << E;
  EXPECT_TRUE(OK);
  return Ctx;
}

const char *DotSource = R"(
double dot(double* a, double* b, int n) {
  int i;
  make_static(a, n, i);
  double sum = 0.0;
  for (i = 0; i < n; i = i + 1) {
    sum = sum + a@[i] * b[i];
  }
  return sum;
}
)";

TEST(Pipeline, DotProductSpecializes) {
  auto Ctx = compileOk(DotSource);
  auto StaticE = Ctx->buildStatic();
  auto DynE = Ctx->buildDynamic();

  const int N = 8;
  int64_t A = StaticE->Machine->allocMemory(N);
  int64_t B = StaticE->Machine->allocMemory(N);
  int64_t A2 = DynE->Machine->allocMemory(N);
  int64_t B2 = DynE->Machine->allocMemory(N);
  ASSERT_EQ(A, A2);
  ASSERT_EQ(B, B2);
  for (int I = 0; I != N; ++I) {
    double AV = I % 3 == 0 ? 0.0 : (I % 3 == 1 ? 1.0 : 2.5);
    double BV = 1.5 * I - 2.0;
    StaticE->Machine->memory()[A + I] = Word::fromFloat(AV);
    StaticE->Machine->memory()[B + I] = Word::fromFloat(BV);
    DynE->Machine->memory()[A + I] = Word::fromFloat(AV);
    DynE->Machine->memory()[B + I] = Word::fromFloat(BV);
  }

  std::vector<Word> Args = {Word::fromInt(A), Word::fromInt(B),
                            Word::fromInt(N)};
  int F = StaticE->findFunction("dot");
  ASSERT_GE(F, 0);
  Word SR = StaticE->Machine->run(F, Args);
  Word DR = DynE->Machine->run(F, Args);
  EXPECT_DOUBLE_EQ(SR.asFloat(), DR.asFloat());

  // Specialization happened and the staged optimizations fired.
  int Ord = DynE->regionOrdinalOf("dot");
  ASSERT_GE(Ord, 0);
  const runtime::RegionStats &St = DynE->RT->stats(Ord);
  EXPECT_EQ(St.SpecializationRuns, 1u);
  EXPECT_GT(St.InstructionsGenerated, 0u);
  EXPECT_GT(St.StaticLoadsExecuted, 0u); // the @ loads ran at compile time
  EXPECT_GT(St.ZcpApplied, 0u);          // multiplies by 0.0 and 1.0
  EXPECT_GT(St.MaxBlockInstances, 1u);   // the loop unrolled

  // Dynamic code should beat static code per invocation.
  uint64_t S0 = StaticE->Machine->execCycles();
  for (int I = 0; I != 50; ++I)
    StaticE->Machine->run(F, Args);
  uint64_t SCost = StaticE->Machine->execCycles() - S0;
  uint64_t D0 = DynE->Machine->execCycles();
  for (int I = 0; I != 50; ++I)
    DynE->Machine->run(F, Args);
  uint64_t DCost = DynE->Machine->execCycles() - D0;
  EXPECT_LT(DCost, SCost);

  // Second run reuses the cache: no new specializations.
  EXPECT_EQ(DynE->RT->stats(Ord).SpecializationRuns, 1u);
  EXPECT_GT(DynE->RT->stats(Ord).CacheHits, 0u);
}

TEST(Pipeline, StaticAndDynamicAgreeOnBranchyCode) {
  const char *Src = R"(
int classify(int* table, int n, int x) {
  int i;
  int result = 0 - 1;
  make_static(table, n, i, result);
  for (i = 0; i < n; i = i + 1) {
    if (x < table@[i]) {
      result = i;
      i = n; /* exit the loop */
    }
  }
  return result;
}
)";
  auto Ctx = compileOk(Src);
  auto StaticE = Ctx->buildStatic();
  auto DynE = Ctx->buildDynamic();
  const int N = 5;
  int64_t T = StaticE->Machine->allocMemory(N);
  int64_t T2 = DynE->Machine->allocMemory(N);
  ASSERT_EQ(T, T2);
  const int64_t Bounds[N] = {3, 7, 20, 55, 100};
  for (int I = 0; I != N; ++I) {
    StaticE->Machine->memory()[T + I] = Word::fromInt(Bounds[I]);
    DynE->Machine->memory()[T + I] = Word::fromInt(Bounds[I]);
  }
  int F = StaticE->findFunction("classify");
  for (int64_t X : {-5, 0, 3, 10, 54, 55, 99, 1000}) {
    std::vector<Word> Args = {Word::fromInt(T), Word::fromInt(N),
                              Word::fromInt(X)};
    Word SR = StaticE->Machine->run(F, Args);
    Word DR = DynE->Machine->run(F, Args);
    EXPECT_EQ(SR.asInt(), DR.asInt()) << "x=" << X;
  }
}

} // namespace
