//===- tests/CodeCacheStressTest.cpp - dispatch-cache churn stress ----------------===//
//
// Long interleaved insert/erase/lookup sequences against a reference model,
// with the probe-count bound that makes them interesting: the double-hash
// table erases by tombstone, and tombstones lengthen probe chains exactly
// like live entries until insert reuse or a grow reclaims them. Heavy churn
// must therefore keep totalProbes()/lookups() bounded — an implementation
// that only counted live entries toward the load factor would degrade to
// O(capacity) scans here. The cache_indexed policy is stressed across both
// of its planes at once: the direct array for in-range index values and the
// checked double-hash fallback for out-of-range ones.
//
//===----------------------------------------------------------------------===//

#include "runtime/CodeCache.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

using namespace dyc;
using runtime::CacheResult;
using runtime::CodeCache;

namespace {

/// Deterministic 64-bit LCG (MMIX constants) so the churn schedule is
/// reproducible across platforms and runs.
struct Lcg {
  uint64_t S;
  explicit Lcg(uint64_t Seed) : S(Seed) {}
  uint64_t next() {
    S = S * 6364136223846793005ull + 1442695040888963407ull;
    return S >> 17;
  }
};

std::vector<Word> key2(uint64_t A, uint64_t B) { return {Word{A}, Word{B}}; }

/// Average probes per lookup must stay O(1) under churn. The table sits at
/// no more than 2/3 load (tombstones included), where double hashing
/// averages well under 3 probes; 8 leaves slack without hiding regressions.
constexpr uint64_t MaxAvgProbes = 8;

TEST(CodeCacheStress, CacheAllChurnMatchesReferenceModel) {
  CodeCache C(ir::CachePolicy::CacheAll);
  std::map<std::pair<uint64_t, uint64_t>, uint32_t> Ref;
  Lcg R(0x9e3779b97f4a7c15ull);
  uint32_t NextVal = 0;
  for (int Op = 0; Op != 20000; ++Op) {
    uint64_t A = R.next() % 61, B = R.next() % 7;
    std::vector<Word> Key = key2(A, B);
    switch (R.next() % 4) {
    case 0:
    case 1: { // lookups get half the schedule
      CacheResult CR = C.lookup(Key);
      auto It = Ref.find({A, B});
      ASSERT_EQ(CR.Hit, It != Ref.end()) << "op " << Op;
      if (CR.Hit) {
        ASSERT_EQ(CR.Value, It->second) << "op " << Op;
      }
      break;
    }
    case 2:
      C.insert(Key, NextVal);
      Ref[{A, B}] = NextVal++;
      break;
    case 3:
      C.erase(Key);
      Ref.erase({A, B});
      break;
    }
    ASSERT_EQ(C.entries(), Ref.size()) << "op " << Op;
  }
  ASSERT_GT(C.lookups(), 0u);
  EXPECT_LT(C.totalProbes(), C.lookups() * MaxAvgProbes);
}

TEST(CodeCacheStress, TombstoneWavesKeepProbesBounded) {
  CodeCache C(ir::CachePolicy::CacheAll);
  // Each wave installs 32 keys, verifies them, then erases them all —
  // leaving 32 tombstones for the next wave to probe through. 200 waves
  // accumulate thousands of erases; insert-time tombstone reuse and the
  // grow policy must keep both hit and miss probes short throughout.
  for (int Wave = 0; Wave != 200; ++Wave) {
    for (uint64_t K = 0; K != 32; ++K)
      C.insert({Word{K}}, static_cast<uint32_t>(K));
    for (uint64_t K = 0; K != 32; ++K) {
      CacheResult CR = C.lookup({Word{K}});
      ASSERT_TRUE(CR.Hit) << "wave " << Wave << " key " << K;
      ASSERT_EQ(CR.Value, static_cast<uint32_t>(K));
    }
    for (uint64_t K = 0; K != 32; ++K)
      C.erase({Word{K}});
    ASSERT_EQ(C.entries(), 0u);
    // Misses walk probe chains to an empty (never-used) slot; these are
    // the lookups tombstone accumulation would hurt first.
    for (uint64_t K = 0; K != 32; ++K)
      ASSERT_FALSE(C.lookup({Word{K}}).Hit) << "wave " << Wave;
  }
  EXPECT_LT(C.totalProbes(), C.lookups() * MaxAvgProbes);
}

TEST(CodeCacheStress, IndexedChurnAcrossBothPlanes) {
  // IndexPos = 1: the second key word indexes the direct array; values at
  // or above MaxIndexedKey take the checked double-hash fallback. The two
  // planes have different replacement semantics — the array replaces by
  // index alone (other key words are unchecked invariants), the fallback
  // by full key — so each gets its own reference model.
  CodeCache C(ir::CachePolicy::CacheIndexed, 1);
  std::map<uint64_t, uint32_t> RefIdx;
  std::map<std::pair<uint64_t, uint64_t>, uint32_t> RefOvf;
  Lcg R(0xdeadbeefcafef00dull);
  uint32_t NextVal = 0;
  constexpr uint64_t Base = CodeCache::MaxIndexedKey;
  for (int Op = 0; Op != 20000; ++Op) {
    bool InRange = R.next() % 3 != 0; // 2/3 direct-array traffic
    uint64_t A = R.next() % 5;
    uint64_t Idx = InRange ? R.next() % 256 : Base + R.next() % 64;
    std::vector<Word> Key = key2(A, Idx);
    switch (R.next() % 4) {
    case 0:
    case 1: {
      CacheResult CR = C.lookup(Key);
      if (InRange) {
        auto It = RefIdx.find(Idx);
        ASSERT_EQ(CR.Hit, It != RefIdx.end()) << "op " << Op;
        if (CR.Hit) {
          ASSERT_EQ(CR.Value, It->second);
        }
        ASSERT_EQ(CR.Probes, 0u) << "direct hit must not probe the table";
      } else {
        auto It = RefOvf.find({A, Idx});
        ASSERT_EQ(CR.Hit, It != RefOvf.end()) << "op " << Op;
        if (CR.Hit) {
          ASSERT_EQ(CR.Value, It->second);
        }
        ASSERT_GE(CR.Probes, 1u) << "fallback must probe the table";
      }
      break;
    }
    case 2:
      C.insert(Key, NextVal);
      if (InRange)
        RefIdx[Idx] = NextVal++;
      else
        RefOvf[{A, Idx}] = NextVal++;
      break;
    case 3:
      C.erase(Key);
      if (InRange)
        RefIdx.erase(Idx);
      else
        RefOvf.erase({A, Idx});
      break;
    }
    ASSERT_EQ(C.entries(), RefIdx.size() + RefOvf.size()) << "op " << Op;
  }
  ASSERT_GT(C.lookups(), 0u);
  EXPECT_LT(C.totalProbes(), C.lookups() * MaxAvgProbes);
}

TEST(CodeCacheStress, EpochBumpsOnMutationOnly) {
  // The run-time's inline caches validate (entry, probe count) memos
  // against epoch(); the contract is that insert and erase — including
  // no-op erases of absent keys — bump it, and lookups never do.
  CodeCache C(ir::CachePolicy::CacheAll);
  uint64_t E0 = C.epoch();
  C.lookup(key2(1, 2));
  EXPECT_EQ(C.epoch(), E0);
  C.insert(key2(1, 2), 7);
  EXPECT_GT(C.epoch(), E0);
  uint64_t E1 = C.epoch();
  for (int I = 0; I != 100; ++I)
    C.lookup(key2(1, 2));
  EXPECT_EQ(C.epoch(), E1);
  C.erase(key2(1, 2));
  EXPECT_GT(C.epoch(), E1);
  uint64_t E2 = C.epoch();
  C.erase(key2(1, 2)); // absent: still a mutation in the contract
  EXPECT_GT(C.epoch(), E2);
  // noteMemoizedHit replays counters without touching layout or epoch.
  uint64_t L = C.lookups(), E3 = C.epoch();
  C.noteMemoizedHit(3, true);
  EXPECT_EQ(C.epoch(), E3);
  EXPECT_EQ(C.lookups(), L + 1);
  EXPECT_GE(C.totalProbes(), 3u);
}

TEST(CodeCacheStress, OneSlotChurn) {
  CodeCache Checked(ir::CachePolicy::CacheOne);
  CodeCache Unchecked(ir::CachePolicy::CacheOneUnchecked);
  Lcg R(42);
  uint64_t ResidentKey = 0;
  bool Resident = false;
  for (int Op = 0; Op != 5000; ++Op) {
    uint64_t K = R.next() % 8;
    switch (R.next() % 3) {
    case 0: {
      CacheResult CR = Checked.lookup({Word{K}});
      ASSERT_EQ(CR.Hit, Resident && ResidentKey == K);
      CacheResult CU = Unchecked.lookup({Word{K}});
      ASSERT_EQ(CU.Hit, Resident); // any resident entry serves, unchecked
      break;
    }
    case 1: {
      uint32_t Displaced = CodeCache::NoValue;
      bool Evicted = Checked.insert({Word{K}}, 1, &Displaced);
      ASSERT_EQ(Evicted, Resident && ResidentKey != K);
      ASSERT_EQ(Displaced != CodeCache::NoValue, Resident);
      Unchecked.insert({Word{K}}, 1);
      ResidentKey = K;
      Resident = true;
      break;
    }
    case 2:
      Checked.erase({Word{K}});
      Unchecked.erase({Word{K}});
      if (Resident && ResidentKey == K)
        Resident = false;
      break;
    }
    ASSERT_EQ(Checked.entries(), Resident ? 1u : 0u);
    ASSERT_EQ(Unchecked.entries(), Resident ? 1u : 0u);
  }
}

} // namespace
