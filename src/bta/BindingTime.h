//===- bta/BindingTime.h - BTA result structures ---------------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Results of the binding-time analysis for one annotated function.
///
/// The unit of analysis is the *context*: a (block, static-variable-set)
/// pair. Program-point-specific polyvariant division (paper section 2.2.5)
/// falls out of letting one block own several contexts with different
/// static sets. The run-time specializer later instantiates each context
/// once per distinct tuple of static-variable *values* — that is
/// polyvariant specialization, and iterated over loop back edges it is
/// exactly complete loop unrolling (section 2.2.4).
///
//===----------------------------------------------------------------------===//

#ifndef DYC_BTA_BINDINGTIME_H
#define DYC_BTA_BINDINGTIME_H

#include "ir/Module.h"
#include "support/BitVector.h"

#include <cstdint>
#include <vector>

namespace dyc {
namespace bta {

constexpr uint32_t NoCtx = 0xffffffffu;

/// How control leaves a context along one CFG edge.
struct Edge {
  enum Kind : uint8_t {
    None, ///< edge absent (e.g. Ret terminator)
    Ctx,  ///< continues specialization in another context
    Exit, ///< leaves the dynamic region; resume native code at Block
    Promo ///< dynamic-to-static promotion: dispatch through PromoIdx
  } K = None;
  uint32_t Target = NoCtx;      ///< context id (Ctx) or promo target (Promo)
  ir::BlockId Block = ir::NoBlock; ///< exit resume block (Exit)
  uint32_t PromoIdx = 0;        ///< index into RegionInfo::Promos (Promo)
  /// Static registers demoted across this edge while still live at the
  /// target: the specializer materializes their values into the run-time
  /// registers before transferring control (the static-to-dynamic
  /// boundary handling the paper calls out under linearization costs).
  std::vector<ir::Reg> Materialize;
};

/// One (block, static set) analysis context.
struct Context {
  uint32_t Id = 0;
  ir::BlockId Block = ir::NoBlock;
  /// Static registers at block entry (annotation vars of a leading
  /// make_static included).
  BitVector StaticIn;
  /// Per-instruction: true if the instruction is a static computation
  /// (executed at specialize time); annotations count as static.
  std::vector<uint8_t> InstIsStatic;
  /// Per-instruction static set *before* that instruction executes.
  std::vector<BitVector> PreSets;
  /// Static set after the last instruction.
  BitVector StaticOut;
  /// For CondBr terminators: condition is static (branch folds away).
  bool TermCondStatic = false;
  Edge TrueEdge, FalseEdge; ///< Br uses TrueEdge only.
};

/// A promotion point: where specialization (re)starts on run-time values.
struct PromoPoint {
  uint32_t Id = 0;
  /// The promotion block (starts with make_static).
  ir::BlockId Block = ir::NoBlock;
  /// Context specialization continues in.
  uint32_t TargetCtx = NoCtx;
  /// Registers whose values are read from the run-time frame at dispatch
  /// (the variables being promoted), ascending.
  std::vector<ir::Reg> KeyRegs;
  /// Already-static registers whose specialize-time values are baked into
  /// the cache key (empty for native entries).
  std::vector<ir::Reg> BakedRegs;
  ir::CachePolicy Policy = ir::CachePolicy::CacheAll;
  /// For CacheIndexed: position within the composed cache key
  /// (BakedRegs then KeyRegs) of the index variable — the *last* variable
  /// of the make_static annotation, which must range over small
  /// non-negative integers.
  uint32_t IndexKeyPos = 0;
  /// True if this promo is a native-code entry into the region (lowered as
  /// an EnterRegion instruction); false for promo edges reached from
  /// specialized code.
  bool IsNativeEntry = false;
};

/// BTA result for one function's dynamic region system.
struct RegionInfo {
  int FuncIdx = -1;
  std::vector<Context> Contexts;
  std::vector<PromoPoint> Promos;
  /// Promo ids of native entries, in RPO order of their blocks; the first
  /// is "the" region entry for reporting.
  std::vector<uint32_t> NativeEntries;

  // --- Applicability facts for Table 2 --------------------------------------
  bool HasStaticLoads = false;     ///< some context classifies a load static
  bool HasStaticCalls = false;
  bool UnrollsLoop = false;        ///< a loop with static-variant regs unrolls
  bool MultiWayUnroll = false;     ///< unrolled loop with in-loop static branch
  bool HasInternalPromotions = false;
  bool HasPolyvariantDivision = false; ///< some block owns >1 context
  bool HasDynBranchInRegion = false;   ///< emitted dynamic branches exist

  const Context &context(uint32_t Id) const {
    assert(Id < Contexts.size() && "context id out of range");
    return Contexts[Id];
  }
};

} // namespace bta
} // namespace dyc

#endif // DYC_BTA_BINDINGTIME_H
