//===- bta/BTAnalysis.h - Binding-time analysis ---------------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flow-sensitive, program-point-specific binding-time analysis
/// (paper section 2.2): starting from make_static annotations, it derives
/// which computations are static (evaluated once at dynamic-compile time)
/// and which are dynamic (emitted), discovers dynamic-region extents
/// ("ending after the last use of any static value"), promotion points,
/// and polyvariant divisions.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_BTA_BTANALYSIS_H
#define DYC_BTA_BTANALYSIS_H

#include "bta/BindingTime.h"
#include "bta/OptFlags.h"

namespace dyc {
namespace bta {

/// Splits blocks so every MakeStatic annotation starts its block; run once
/// before static optimization so the static and dynamic compiles share one
/// CFG. Returns true if the function changed.
bool normalizeAnnotations(ir::Function &F);

/// Runs BTA on \p F (which must be normalized). Returns the region system;
/// Contexts is empty if the function has no annotations.
RegionInfo analyzeFunction(const ir::Function &F, const ir::Module &M,
                           const OptFlags &Flags);

/// Renders a context dump (for tests and debugging).
std::string printRegionInfo(const RegionInfo &R, const ir::Function &F);

} // namespace bta
} // namespace dyc

#endif // DYC_BTA_BTANALYSIS_H
