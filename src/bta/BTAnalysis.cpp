//===- bta/BTAnalysis.cpp - Binding-time analysis --------------------------------===//

#include "bta/BTAnalysis.h"

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "ir/ConstEval.h"

#include <algorithm>

namespace dyc {

const char *OptFlags::toggleName(unsigned Idx) {
  static const char *Names[NumToggles] = {
      "complete-loop-unrolling", "static-loads",        "static-calls",
      "unchecked-dispatching",   "zero-copy-propagation",
      "dead-assignment-elim",    "strength-reduction",
      "internal-promotions",     "polyvariant-division"};
  assert(Idx < NumToggles && "toggle index out of range");
  return Names[Idx];
}

bool &OptFlags::toggle(unsigned Idx) {
  switch (Idx) {
  case 0: return CompleteLoopUnrolling;
  case 1: return StaticLoads;
  case 2: return StaticCalls;
  case 3: return UncheckedDispatching;
  case 4: return ZeroCopyPropagation;
  case 5: return DeadAssignmentElimination;
  case 6: return StrengthReduction;
  case 7: return InternalPromotions;
  case 8: return PolyvariantDivision;
  }
  fatal("toggle index out of range");
}

namespace bta {

using namespace ir;

bool normalizeAnnotations(Function &F) {
  bool Changed = false;
  for (BlockId B = 0; B != F.numBlocks(); ++B) {
    // Re-scan the block after each split; appended blocks are visited by
    // the outer loop as numBlocks() grows.
    bool SplitAgain = true;
    while (SplitAgain) {
      SplitAgain = false;
      for (size_t I = 1; I < F.block(B).Instrs.size(); ++I) {
        if (F.block(B).Instrs[I].Op != Opcode::MakeStatic)
          continue;
        BlockId NB = F.newBlock(F.block(B).Name + ".promo");
        BasicBlock &Old = F.block(B);
        BasicBlock &New = F.block(NB);
        New.Instrs.assign(std::make_move_iterator(Old.Instrs.begin() + I),
                          std::make_move_iterator(Old.Instrs.end()));
        Old.Instrs.resize(I);
        Instruction Br;
        Br.Op = Opcode::Br;
        Br.TrueSucc = NB;
        Old.Instrs.push_back(std::move(Br));
        Changed = true;
        SplitAgain = true;
        break;
      }
    }
  }
  return Changed;
}

namespace {

class Analyzer {
public:
  Analyzer(const Function &F, const Module &M, const OptFlags &Flags)
      : F(F), M(M), Flags(Flags), G(F), DT(F, G), LI(F, G, DT), LV(F, G),
        CtxsOfBlock(F.numBlocks()), AnnotatedRegs(F.numRegs()) {
    for (const BasicBlock &B : F.Blocks)
      for (const Instruction &I : B.Instrs)
        if (I.Op == Opcode::MakeStatic)
          for (Reg V : I.AnnotVars)
            AnnotatedRegs.set(V);
  }

  RegionInfo run() {
    R.Contexts.clear();
    // Seed a native-entry promotion for every make_static block, in RPO.
    for (BlockId B : G.rpo()) {
      const BasicBlock &BB = F.block(B);
      if (BB.Instrs.front().Op != Opcode::MakeStatic)
        continue;
      const Instruction &MS = BB.Instrs.front();
      BitVector Set(F.numRegs());
      for (Reg V : MS.AnnotVars)
        Set.set(V);
      uint32_t Ctx = getOrCreateContext(B, Set);
      PromoPoint P;
      P.Id = static_cast<uint32_t>(R.Promos.size());
      P.Block = B;
      P.TargetCtx = Ctx;
      P.KeyRegs = sortedRegs(Set);
      P.Policy = effectivePolicy(MS.Policy);
      P.IndexKeyPos = indexKeyPos(MS, P.BakedRegs, P.KeyRegs);
      P.IsNativeEntry = true;
      R.NativeEntries.push_back(P.Id);
      R.Promos.push_back(std::move(P));
    }

    while (!Worklist.empty()) {
      uint32_t Id = Worklist.back();
      Worklist.pop_back();
      InWorklist[Id] = false;
      processContext(Id);
    }

    computeFacts();
    return std::move(R);
  }

private:
  CachePolicy effectivePolicy(CachePolicy P) const {
    return Flags.UncheckedDispatching ? P : CachePolicy::CacheAll;
  }

  /// Position of the CacheIndexed index variable (the annotation's last
  /// variable) within the composed key (baked values, then run-time key
  /// values). 0 for other policies.
  static uint32_t indexKeyPos(const Instruction &MS,
                              const std::vector<Reg> &Baked,
                              const std::vector<Reg> &Keys) {
    if (MS.Policy != CachePolicy::CacheIndexed || MS.AnnotVars.empty())
      return 0;
    Reg Index = MS.AnnotVars.back();
    for (size_t I = 0; I != Baked.size(); ++I)
      if (Baked[I] == Index)
        return static_cast<uint32_t>(I);
    for (size_t I = 0; I != Keys.size(); ++I)
      if (Keys[I] == Index)
        return static_cast<uint32_t>(Baked.size() + I);
    fatal("cache_indexed: the annotation's last variable is not part of "
          "the promotion key");
  }

  static std::vector<Reg> sortedRegs(const BitVector &Set) {
    std::vector<Reg> Out;
    Set.forEachSetBit([&](size_t I) { Out.push_back(static_cast<Reg>(I)); });
    return Out;
  }

  uint32_t getOrCreateContext(BlockId B, const BitVector &Set) {
    if (Flags.PolyvariantDivision) {
      for (uint32_t Id : CtxsOfBlock[B])
        if (R.Contexts[Id].StaticIn == Set)
          return Id;
      return createContext(B, Set);
    }
    // Monovariant division: one context per block; meet by intersection.
    if (!CtxsOfBlock[B].empty()) {
      uint32_t Id = CtxsOfBlock[B].front();
      BitVector Meet = R.Contexts[Id].StaticIn;
      if (Meet.intersectWith(Set)) {
        R.Contexts[Id].StaticIn = std::move(Meet);
        // Shrinking a context's static set can change every other
        // context's edge classification; re-run them all. Sets only
        // shrink, so this terminates.
        for (uint32_t All = 0; All != R.Contexts.size(); ++All)
          push(All);
      }
      return Id;
    }
    return createContext(B, Set);
  }

  uint32_t createContext(BlockId B, const BitVector &Set) {
    if (R.Contexts.size() >= 65536)
      fatal("binding-time analysis context explosion in '" + F.Name + "'");
    Context C;
    C.Id = static_cast<uint32_t>(R.Contexts.size());
    C.Block = B;
    C.StaticIn = Set;
    R.Contexts.push_back(std::move(C));
    CtxsOfBlock[B].push_back(R.Contexts.back().Id);
    InWorklist.resize(R.Contexts.size(), false);
    push(R.Contexts.back().Id);
    return R.Contexts.back().Id;
  }

  void push(uint32_t Id) {
    if (InWorklist[Id])
      return;
    InWorklist[Id] = true;
    Worklist.push_back(Id);
  }

  /// Is \p I a static computation given the static set \p Set?
  bool isStaticInstr(const Instruction &I, const BitVector &Set) const {
    switch (I.Op) {
    case Opcode::MakeStatic:
    case Opcode::MakeDynamic:
      return true; // annotations are consumed by the analysis, never emitted
    case Opcode::ConstI:
    case Opcode::ConstF:
      return true;
    case Opcode::Load:
      return I.StaticLoad && Flags.StaticLoads && Set.test(I.Src1);
    case Opcode::Call: {
      if (!I.StaticCall || !Flags.StaticCalls ||
          !M.function(I.Callee).Pure)
        return false;
      for (Reg A : I.Args)
        if (!Set.test(A))
          return false;
      return true;
    }
    case Opcode::CallExt: {
      if (!I.StaticCall || !Flags.StaticCalls ||
          !M.external(I.Callee).Pure)
        return false;
      for (Reg A : I.Args)
        if (!Set.test(A))
          return false;
      return true;
    }
    case Opcode::Store:
    case Opcode::Br:
    case Opcode::CondBr:
    case Opcode::Ret:
      return false;
    default: {
      if (!isEvaluableOp(I.Op))
        return false;
      std::vector<Reg> Uses;
      I.appendUses(Uses);
      for (Reg U : Uses)
        if (!Set.test(U))
          return false;
      return true;
    }
    }
  }

  void processContext(uint32_t Id) {
    const BlockId B = R.Contexts[Id].Block;
    BitVector Set = R.Contexts[Id].StaticIn;
    const BasicBlock &BB = F.block(B);

    std::vector<uint8_t> InstIsStatic;
    std::vector<BitVector> PreSets;
    InstIsStatic.reserve(BB.Instrs.size());
    PreSets.reserve(BB.Instrs.size());

    for (size_t Idx = 0; Idx != BB.Instrs.size(); ++Idx) {
      const Instruction &I = BB.Instrs[Idx];
      PreSets.push_back(Set);
      if (I.Op == Opcode::MakeStatic) {
        // The leading annotation's effect is already reflected in
        // StaticIn (promotion edges and native entries add the variables;
        // ignored annotations do not).
        InstIsStatic.push_back(1);
        continue;
      }
      if (I.Op == Opcode::MakeDynamic) {
        for (Reg V : I.AnnotVars)
          Set.reset(V);
        InstIsStatic.push_back(1);
        continue;
      }
      bool S = isStaticInstr(I, Set);
      InstIsStatic.push_back(S ? 1 : 0);
      if (I.definesReg()) {
        if (S)
          Set.set(I.Dst);
        else
          Set.reset(I.Dst);
      }
    }

    Edge TrueEdge, FalseEdge;
    bool TermCondStatic = false;
    const Instruction &T = BB.terminator();
    if (T.Op == Opcode::Br) {
      TrueEdge = classifyEdge(Set, T.TrueSucc);
    } else if (T.Op == Opcode::CondBr) {
      TermCondStatic = Set.test(T.Src1);
      TrueEdge = classifyEdge(Set, T.TrueSucc);
      FalseEdge = classifyEdge(Set, T.FalseSucc);
    }

    Context &C = R.Contexts[Id]; // re-acquire: edges may have grown the pool
    C.InstIsStatic = std::move(InstIsStatic);
    C.PreSets = std::move(PreSets);
    C.StaticOut = std::move(Set);
    C.TermCondStatic = TermCondStatic;
    C.TrueEdge = TrueEdge;
    C.FalseEdge = FalseEdge;
  }

  Edge classifyEdge(const BitVector &OutSet, BlockId S) {
    BitVector In = OutSet;

    // Loop-head demotion. A static variable carried around a back edge
    // (loop-variant and live into the header) drives complete loop
    // unrolling; following the paper's model (Figure 2 annotates the loop
    // indices crow/ccol explicitly), only *annotated* variables are kept
    // static across loop heads — unannotated derived statics are demoted,
    // which is what keeps a derived induction variable under a dynamic
    // bound from unrolling without bound. "Without complete loop
    // unrolling" (Table 5) demotes the annotated ones too.
    if (const analysis::Loop *L = LI.loopAtHeader(S)) {
      const BitVector &Live = LV.liveIn(S);
      // Even an annotated induction variable must be demoted when no exit
      // test of the loop is derivably static: specializing such a loop
      // would unroll without bound (the paper's "loops that were too
      // large to be completely unrolled" limitation, which also protects
      // ablation configurations like "without static loads" where a
      // bound-producing load turns dynamic).
      bool StaticExit =
          Flags.CompleteLoopUnrolling && loopHasStaticExit(*L, In);
      for (Reg V : LI.loopVariantRegs(F, S)) {
        if (!In.test(V) || !Live.test(V))
          continue;
        if (StaticExit && AnnotatedRegs.test(V))
          continue;
        In.reset(V);
      }
    }

    // Restrict the static set to registers live into the target: dead
    // statics would otherwise multiply divisions (every block-local
    // constant temporary would spawn a fresh static set) and bloat
    // specialization keys. Dropping a dead register needs no
    // materialization, by definition.
    In.intersectWith(LV.liveIn(S));

    // Any static register dropped across this edge but still live at the
    // target must have its value materialized into the run-time register.
    auto MaterializeList = [&](const BitVector &TargetIn) {
      std::vector<Reg> Out;
      const BitVector &Live = LV.liveIn(S);
      OutSet.forEachSetBit([&](size_t V) {
        if (Live.test(V) && !TargetIn.test(V))
          Out.push_back(static_cast<Reg>(V));
      });
      return Out;
    };

    const Instruction &Lead = F.block(S).Instrs.front();
    if (Lead.Op == Opcode::MakeStatic) {
      std::vector<Reg> NewVars;
      for (Reg V : Lead.AnnotVars)
        if (!In.test(V))
          NewVars.push_back(V);
      if (!NewVars.empty() && Flags.InternalPromotions) {
        BitVector Tgt = In;
        for (Reg V : Lead.AnnotVars)
          Tgt.set(V);
        uint32_t TgtCtx = getOrCreateContext(S, Tgt);
        std::sort(NewVars.begin(), NewVars.end());
        std::vector<Reg> Baked = sortedRegs(In);

        // Reuse an identical promo descriptor if one exists.
        for (const PromoPoint &P : R.Promos)
          if (!P.IsNativeEntry && P.Block == S && P.TargetCtx == TgtCtx &&
              P.KeyRegs == NewVars && P.BakedRegs == Baked) {
            Edge E{Edge::Promo, TgtCtx, NoBlock, P.Id, {}};
            E.Materialize = MaterializeList(R.Contexts[TgtCtx].StaticIn);
            return E;
          }

        PromoPoint P;
        P.Id = static_cast<uint32_t>(R.Promos.size());
        P.Block = S;
        P.TargetCtx = TgtCtx;
        P.KeyRegs = std::move(NewVars);
        P.BakedRegs = std::move(Baked);
        P.Policy = effectivePolicy(Lead.Policy);
        P.IndexKeyPos = indexKeyPos(Lead, P.BakedRegs, P.KeyRegs);
        P.IsNativeEntry = false;
        R.Promos.push_back(P);
        R.HasInternalPromotions = true;
        Edge E{Edge::Promo, TgtCtx, NoBlock, P.Id, {}};
        E.Materialize = MaterializeList(R.Contexts[TgtCtx].StaticIn);
        return E;
      }
      // Annotation adds nothing (or internal promotions are disabled):
      // fall through to the exit test / plain context edge.
    }

    // Region extent: if no static variable is live into S, the region ends
    // here and generated code resumes the native function at S.
    BitVector LiveStatics = In;
    LiveStatics.intersectWith(LV.liveIn(S));
    if (!LiveStatics.any()) {
      Edge E{Edge::Exit, NoCtx, S, 0, {}};
      E.Materialize = MaterializeList(BitVector(F.numRegs()));
      return E;
    }

    uint32_t Tgt = getOrCreateContext(S, In);
    Edge E{Edge::Ctx, Tgt, NoBlock, 0, {}};
    E.Materialize = MaterializeList(R.Contexts[Tgt].StaticIn);
    return E;
  }

  /// Optimistically propagates staticness through the loop body (union
  /// over two RPO passes) and checks whether any exiting conditional
  /// branch tests a static condition.
  bool loopHasStaticExit(const analysis::Loop &L, const BitVector &HeaderIn) {
    BitVector Set = HeaderIn;
    // Blocks of the loop in RPO order.
    std::vector<BlockId> Order;
    for (BlockId B : G.rpo())
      if (L.contains(B))
        Order.push_back(B);
    for (int Pass = 0; Pass != 2; ++Pass) {
      for (BlockId B : Order) {
        for (const Instruction &I : F.block(B).Instrs) {
          if (I.Op == Opcode::MakeStatic) {
            for (Reg V : I.AnnotVars)
              Set.set(V);
            continue;
          }
          if (I.Op == Opcode::MakeDynamic)
            continue; // optimistic
          if (I.definesReg() && isStaticInstr(I, Set))
            Set.set(I.Dst);
        }
      }
    }
    for (BlockId B : Order) {
      const Instruction &T = F.block(B).terminator();
      if (T.Op != Opcode::CondBr)
        continue;
      bool Exits = !L.contains(T.TrueSucc) || !L.contains(T.FalseSucc);
      if (Exits && Set.test(T.Src1))
        return true;
    }
    return false;
  }

  void computeFacts() {
    for (const Context &C : R.Contexts) {
      const BasicBlock &BB = F.block(C.Block);
      for (size_t I = 0; I != C.InstIsStatic.size(); ++I) {
        if (!C.InstIsStatic[I])
          continue;
        const Instruction &In = BB.Instrs[I];
        if (In.Op == Opcode::Load)
          R.HasStaticLoads = true;
        if (In.Op == Opcode::Call || In.Op == Opcode::CallExt)
          R.HasStaticCalls = true;
      }
      if (!BB.Instrs.empty() && BB.terminator().Op == Opcode::CondBr &&
          !C.TermCondStatic &&
          (C.TrueEdge.K == Edge::Ctx || C.TrueEdge.K == Edge::Promo ||
           C.FalseEdge.K == Edge::Ctx || C.FalseEdge.K == Edge::Promo))
        R.HasDynBranchInRegion = true;
    }
    for (BlockId B = 0; B != F.numBlocks(); ++B)
      if (CtxsOfBlock[B].size() > 1)
        R.HasPolyvariantDivision = true;

    // Loop unrolling facts: a loop completely unrolls if some context at
    // its header keeps a loop-variant register static.
    if (Flags.CompleteLoopUnrolling) {
      for (const analysis::Loop &L : LI.loops()) {
        bool Unrolls = false;
        std::vector<Reg> Variant = LI.loopVariantRegs(F, L.Header);
        for (uint32_t Id : CtxsOfBlock[L.Header]) {
          for (Reg V : Variant)
            if (R.Contexts[Id].StaticIn.test(V))
              Unrolls = true;
        }
        if (!Unrolls)
          continue;
        R.UnrollsLoop = true;
        // Multi-way (section 2.2.4): "one iteration may lead to several
        // different loop iterations" — a static loop-variant register is
        // updated on a path that does not dominate the latch (different
        // branch paths update the induction variables differently), or
        // the loop has several latches.
        if (L.Latches.size() > 1)
          R.MultiWayUnroll = true;
        std::vector<Reg> StaticVariant;
        for (Reg V : Variant)
          for (uint32_t Id : CtxsOfBlock[L.Header])
            if (R.Contexts[Id].StaticIn.test(V)) {
              StaticVariant.push_back(V);
              break;
            }
        for (BlockId B : L.Blocks) {
          bool AssignsStaticVariant = false;
          for (const Instruction &I : F.block(B).Instrs)
            if (I.definesReg() &&
                std::find(StaticVariant.begin(), StaticVariant.end(),
                          I.Dst) != StaticVariant.end())
              AssignsStaticVariant = true;
          if (!AssignsStaticVariant)
            continue;
          for (BlockId Latch : L.Latches)
            if (!DT.dominates(B, Latch))
              R.MultiWayUnroll = true;
        }
      }
    }
  }

  const Function &F;
  const Module &M;
  const OptFlags &Flags;
  analysis::CFG G;
  analysis::Dominators DT;
  analysis::LoopInfo LI;
  analysis::Liveness LV;
  RegionInfo R;
  std::vector<std::vector<uint32_t>> CtxsOfBlock;
  BitVector AnnotatedRegs;
  std::vector<uint32_t> Worklist;
  std::vector<uint8_t> InWorklist;
};

} // namespace

RegionInfo analyzeFunction(const Function &F, const Module &M,
                           const OptFlags &Flags) {
  if (!F.hasAnnotations())
    return RegionInfo();
  Analyzer A(F, M, Flags);
  RegionInfo R = A.run();
  return R;
}

std::string printRegionInfo(const RegionInfo &R, const Function &F) {
  std::string Out = formatString("region system for '%s': %zu contexts, "
                                 "%zu promotion points\n",
                                 F.Name.c_str(), R.Contexts.size(),
                                 R.Promos.size());
  auto EdgeStr = [](const Edge &E) {
    switch (E.K) {
    case Edge::None: return std::string("none");
    case Edge::Ctx: return formatString("ctx%u", E.Target);
    case Edge::Exit: return formatString("exit->bb%u", E.Block);
    case Edge::Promo:
      return formatString("promo%u->ctx%u", E.PromoIdx, E.Target);
    }
    return std::string("?");
  };
  for (const Context &C : R.Contexts) {
    Out += formatString("ctx%u: bb%u static{", C.Id, C.Block);
    bool First = true;
    C.StaticIn.forEachSetBit([&](size_t I) {
      Out += (First ? "" : ",") + F.regName(static_cast<Reg>(I));
      First = false;
    });
    Out += "}";
    Out += formatString(" T=%s F=%s%s\n", EdgeStr(C.TrueEdge).c_str(),
                        EdgeStr(C.FalseEdge).c_str(),
                        C.TermCondStatic ? " static-branch" : "");
    const BasicBlock &BB = F.block(C.Block);
    for (size_t I = 0; I != C.InstIsStatic.size(); ++I)
      Out += formatString("    %c %s\n", C.InstIsStatic[I] ? 'S' : 'D',
                          BB.Instrs[I].toString().c_str());
  }
  for (const PromoPoint &P : R.Promos) {
    Out += formatString("promo%u: bb%u -> ctx%u %s keys[", P.Id, P.Block,
                        P.TargetCtx, ir::cachePolicyName(P.Policy));
    for (size_t I = 0; I != P.KeyRegs.size(); ++I)
      Out += (I ? "," : "") + F.regName(P.KeyRegs[I]);
    Out += "] baked[";
    for (size_t I = 0; I != P.BakedRegs.size(); ++I)
      Out += (I ? "," : "") + F.regName(P.BakedRegs[I]);
    Out += P.IsNativeEntry ? "] native-entry\n" : "]\n";
  }
  return Out;
}

} // namespace bta
} // namespace dyc
