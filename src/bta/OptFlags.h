//===- bta/OptFlags.h - Per-optimization toggles --------------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Master switches for each of DyC's staged run-time optimizations. Table 5
/// of the paper is produced by disabling one at a time. Semantics of each
/// "off" position follow section 4.4:
///
///  * CompleteLoopUnrolling off: loop-variant variables are demoted to
///    dynamic at loop heads, so loops are specialized once instead of
///    being completely unrolled.
///  * StaticLoads off: `@` annotations are ignored; loads are dynamic.
///  * StaticCalls off: pure-call annotations are ignored.
///  * UncheckedDispatching off: every promotion point uses the safe
///    cache-all (double-hashed) policy regardless of annotation.
///  * ZeroCopyPropagation off: emit-time 0/1 operand checks are skipped
///    (multiplies by 0/1 are emitted as-is; strength reduction may still
///    rewrite them if enabled).
///  * DeadAssignmentElimination off: zero/copy propagation still replaces
///    operations with moves/clears, but the moves are materialized
///    immediately instead of deferred-and-possibly-dropped.
///  * StrengthReduction off: no emit-time power-of-two rewrites or
///    immediate-field packing of static operands.
///  * InternalPromotions off: a make_static of a dynamic value in the
///    middle of a region is ignored.
///  * PolyvariantDivision off: a program point keeps a single division;
///    divisions meeting at a point are intersected.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_BTA_OPTFLAGS_H
#define DYC_BTA_OPTFLAGS_H

#include <cstddef>
#include <cstdint>

namespace dyc {

/// Which execution backend the run-time compiles specialized regions
/// through (the pluggable seam of src/backend/Backend.h). Backends change
/// how the host executes a region, never what the cost model observes:
/// simulated counters are bit-identical across backends by contract.
enum class ExecBackend {
  Default,  ///< resolve from the DYC_BACKEND environment variable
            ///< ("bytecode" / "template"); Bytecode when unset
  Bytecode, ///< residual bytecode only; each VM translates lazily
  Template, ///< macro-op template backend: superblocks pre-fused at emit
            ///< time, shared across every attached VM
};

/// Whether specialization runs execute through staged emit plans
/// (cogen/EmitPlan.h): per-region compilation of the generating
/// extension into a linear emit program with block-copy templates.
/// Like Backend and Tier this is not an optimization toggle — the plan
/// path is contractually bit-identical to the legacy template walk in
/// every simulated counter and every emitted chain; it only changes
/// host wall-clock per emitted instruction.
enum class EmitPlanMode {
  Default, ///< resolve from DYC_EMIT_PLAN ("on"/"off"); on when unset
  On,      ///< execute specialization through staged emit plans
  Off,     ///< legacy walk: interpret the SetupOp templates directly
};

/// Tiered-execution policy (the src/tier/ controller). Tiering changes
/// *when* specialization work happens — never what executes or what the
/// simulated counters charge per executed dispatch — so it is policy, not
/// a toggle: at steady state every configuration reaches byte-identical
/// chains and bit-identical per-round counters.
struct TieringPolicy {
  /// Master switch; off preserves the eager (pre-tiering) behavior of
  /// whatever miss policy the front end configured.
  bool Enabled = false;
  /// Dispatch-key heat at which a cold key stops single-stepping and runs
  /// predecoded generic code. 0 = born warm.
  uint32_t WarmThreshold = 2;
  /// Heat at which a warm key requests background specialization.
  /// 0 = born hot (every miss enqueues immediately).
  uint32_t HotThreshold = 8;
  /// Background-compile admission cap: a hot miss does not enqueue while
  /// this many submitted jobs are unfinished. 0 = unlimited.
  uint32_t MaxInFlightCompiles = 4;
  /// Back-edge polls a frame must have answered before an OSR transfer is
  /// taken (lets tests script the transfer point deterministically).
  uint32_t OsrMinPolls = 1;
  /// Test hook: hot misses block on the compile and install synchronously,
  /// mirroring MissPolicy::Block cycle-for-cycle. With thresholds at 0
  /// this makes a tiered run bit-identical to an eager one end to end.
  bool SyncInstall = false;
};

/// DyC optimization toggles (all on by default, the paper's "with all
/// optimizations" configuration).
struct OptFlags {
  bool CompleteLoopUnrolling = true;
  bool StaticLoads = true;
  bool StaticCalls = true;
  bool UncheckedDispatching = true;
  bool ZeroCopyPropagation = true;
  bool DeadAssignmentElimination = true;
  bool StrengthReduction = true;
  bool InternalPromotions = true;
  bool PolyvariantDivision = true;

  /// Per-region code cap: instructions emitted past this limit are counted
  /// in RegionStats::CodeCapHits (soft limit) rather than aborting. Also
  /// sizes the simulated address reservation per code chain.
  size_t MaxRegionInstrs = 1u << 20;

  /// Execution backend the front end's RegionExecutionCore compiles
  /// through. Not a toggle: it cannot change observable behavior.
  ExecBackend Backend = ExecBackend::Default;

  /// Tiered-execution policy (see TieringPolicy). Like Backend, not a
  /// toggle: steady-state behavior is invariant.
  TieringPolicy Tier;

  /// Staged-emit-plan selection (see EmitPlanMode). Like Backend, not a
  /// toggle: it cannot change observable behavior, so it is excluded
  /// from fingerprint() below.
  EmitPlanMode EmitPlan = EmitPlanMode::Default;

  /// Named accessors for the ablation harness (Table 5 columns).
  static constexpr unsigned NumToggles = 9;
  static const char *toggleName(unsigned Idx);
  bool &toggle(unsigned Idx);

  /// Content fingerprint of everything that can change *what code a
  /// specialization run emits*: the nine optimization toggles and the
  /// region code cap. Backend and Tier are deliberately excluded — both
  /// are contractually unable to change emitted chains. The multi-tenant
  /// chain store folds this into its dedup key, and the warm-start file
  /// records it so a cache serialized under one configuration is never
  /// adopted under another.
  uint64_t fingerprint() const {
    uint64_t F = 0;
    const bool Toggles[NumToggles] = {
        CompleteLoopUnrolling, StaticLoads,        StaticCalls,
        UncheckedDispatching,  ZeroCopyPropagation, DeadAssignmentElimination,
        StrengthReduction,     InternalPromotions,  PolyvariantDivision};
    for (unsigned I = 0; I != NumToggles; ++I)
      F |= Toggles[I] ? (1ull << I) : 0;
    // FNV-1a fold of the code cap onto the toggle bits.
    F ^= 0xcbf29ce484222325ull;
    F *= 1099511628211ull;
    F ^= static_cast<uint64_t>(MaxRegionInstrs);
    F *= 1099511628211ull;
    return F;
  }
};

} // namespace dyc

#endif // DYC_BTA_OPTFLAGS_H
