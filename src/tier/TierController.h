//===- tier/TierController.h - Cold/warm/hot tier state machine -------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tiering controller: drives each dynamic region through the three
/// execution tiers the system already owns —
///
///   cold : generic (fallback) code single-stepped in the VM::stepOne
///          switch loop (RuntimeHook::Target::Interpret);
///   warm : the same generic code through the predecoded/quickened
///          threaded engine;
///   hot  : background specialization requested from the SpecServer
///          worker pool, installed through the RCU snapshot path, with
///          mid-loop (OSR) entry at back-edge safe points.
///
/// Heat is per region, counted on dispatch *misses* through the shared
/// profile::HeatCounters bank (hits already run specialized code — there
/// is no tier decision to make). Tiering changes only *when* work
/// happens: every executed dispatch charges the same simulated cost in
/// every tier, cold/warm execution is engine-parity-invariant by the VM
/// contract, and once all keys are installed a tiered run's per-round
/// counters are bit-identical to the eager configuration's.
///
/// Thread-safety: onMiss and the note* hooks are called by concurrent
/// client threads (under the server's dispatch gate); all state is
/// atomic. Counter snapshots are monotonic, relaxed reads.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_TIER_TIERCONTROLLER_H
#define DYC_TIER_TIERCONTROLLER_H

#include "bta/OptFlags.h"
#include "profile/Heat.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace dyc {
namespace tier {

enum class TierLevel : uint8_t { Cold, Warm, Hot };

const char *tierLevelName(TierLevel L);

/// Monotonic per-region (and, summed, per-server) tier transition
/// counters. Snapshot form — plain integers.
struct TierCounters {
  uint64_t ColdExecs = 0;      ///< misses answered with single-stepped code
  uint64_t WarmExecs = 0;      ///< misses answered with predecoded code
  uint64_t WarmPromotions = 0; ///< cold -> warm transitions
  uint64_t HotPromotions = 0;  ///< warm -> hot transitions
  uint64_t HotInstalls = 0;    ///< chains published while tiered
  uint64_t OsrEntries = 0;     ///< mid-loop transfers into a chain
  uint64_t OsrPolls = 0;       ///< back-edge polls answered (no charge)
};

/// What the dispatch path should do with one miss.
struct TierDecision {
  TierLevel Level = TierLevel::Hot;
  bool Compile = false;   ///< request background specialization
  bool Interpret = false; ///< run the fallback frame in the switch loop
};

class TierController {
public:
  /// \p NumRegions fixes the bank size — every dispatch resolves to a
  /// region ordinal below it.
  TierController(const TieringPolicy &Policy, size_t NumRegions);

  const TieringPolicy &policy() const { return P; }

  /// Classifies one dispatch miss on \p RegionOrd: bumps the region's
  /// heat, records the tier transition if the bump crossed a threshold,
  /// and counts the execution under its tier.
  TierDecision onMiss(size_t RegionOrd);

  /// Current tier of \p RegionOrd (from its heat; never cools down).
  TierLevel level(size_t RegionOrd) const;

  /// A chain for \p RegionOrd was published through the background path.
  void noteInstall(size_t RegionOrd);
  /// An OSR transfer into \p RegionOrd's chain happened at a back edge.
  void noteOsrEntry(size_t RegionOrd);
  /// An armed back-edge poll was answered (transfer or not).
  void noteOsrPoll(size_t RegionOrd);

  TierCounters counters(size_t RegionOrd) const;
  /// Sum over all regions.
  TierCounters totals() const;

private:
  struct RegionCounters {
    std::atomic<uint64_t> ColdExecs{0};
    std::atomic<uint64_t> WarmExecs{0};
    std::atomic<uint64_t> WarmPromotions{0};
    std::atomic<uint64_t> HotPromotions{0};
    std::atomic<uint64_t> HotInstalls{0};
    std::atomic<uint64_t> OsrEntries{0};
    std::atomic<uint64_t> OsrPolls{0};
  };

  TierLevel levelOf(uint64_t Heat) const;

  TieringPolicy P;
  /// Per-region miss heat — the same bank type the ValueProfiler counts
  /// call heat through (one sampling mechanism, two consumers).
  profile::HeatCounters Heat;
  std::vector<RegionCounters> C;
};

} // namespace tier
} // namespace dyc

#endif // DYC_TIER_TIERCONTROLLER_H
