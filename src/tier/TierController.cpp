//===- tier/TierController.cpp -------------------------------------------------------===//

#include "tier/TierController.h"

#include <cassert>

namespace dyc {
namespace tier {

const char *tierLevelName(TierLevel L) {
  switch (L) {
  case TierLevel::Cold: return "cold";
  case TierLevel::Warm: return "warm";
  case TierLevel::Hot:  return "hot";
  }
  return "?";
}

TierController::TierController(const TieringPolicy &Policy, size_t NumRegions)
    : P(Policy), Heat(NumRegions), C(NumRegions) {}

TierLevel TierController::levelOf(uint64_t HeatVal) const {
  if (HeatVal > P.HotThreshold)
    return TierLevel::Hot;
  if (HeatVal > P.WarmThreshold)
    return TierLevel::Warm;
  return TierLevel::Cold;
}

TierDecision TierController::onMiss(size_t RegionOrd) {
  assert(RegionOrd < C.size() && "region ordinal out of range");
  uint64_t H = Heat.bump(RegionOrd);
  RegionCounters &RC = C[RegionOrd];
  TierDecision D;
  D.Level = levelOf(H);
  // Transition counters fire exactly once per crossing: the bump that
  // first exceeds a threshold is the promotion. (Heat never cools, so a
  // crossing is unique; under concurrent bumps exactly one thread
  // observes the crossing value.)
  if (H == static_cast<uint64_t>(P.WarmThreshold) + 1 &&
      D.Level != TierLevel::Cold)
    RC.WarmPromotions.fetch_add(1, std::memory_order_relaxed);
  if (H == static_cast<uint64_t>(P.HotThreshold) + 1 &&
      D.Level == TierLevel::Hot)
    RC.HotPromotions.fetch_add(1, std::memory_order_relaxed);
  switch (D.Level) {
  case TierLevel::Cold:
    D.Interpret = true;
    RC.ColdExecs.fetch_add(1, std::memory_order_relaxed);
    break;
  case TierLevel::Warm:
    RC.WarmExecs.fetch_add(1, std::memory_order_relaxed);
    break;
  case TierLevel::Hot:
    D.Compile = true;
    break;
  }
  return D;
}

TierLevel TierController::level(size_t RegionOrd) const {
  return levelOf(Heat.get(RegionOrd));
}

void TierController::noteInstall(size_t RegionOrd) {
  assert(RegionOrd < C.size() && "region ordinal out of range");
  C[RegionOrd].HotInstalls.fetch_add(1, std::memory_order_relaxed);
}

void TierController::noteOsrEntry(size_t RegionOrd) {
  assert(RegionOrd < C.size() && "region ordinal out of range");
  C[RegionOrd].OsrEntries.fetch_add(1, std::memory_order_relaxed);
}

void TierController::noteOsrPoll(size_t RegionOrd) {
  assert(RegionOrd < C.size() && "region ordinal out of range");
  C[RegionOrd].OsrPolls.fetch_add(1, std::memory_order_relaxed);
}

TierCounters TierController::counters(size_t RegionOrd) const {
  assert(RegionOrd < C.size() && "region ordinal out of range");
  const RegionCounters &RC = C[RegionOrd];
  TierCounters T;
  T.ColdExecs = RC.ColdExecs.load(std::memory_order_relaxed);
  T.WarmExecs = RC.WarmExecs.load(std::memory_order_relaxed);
  T.WarmPromotions = RC.WarmPromotions.load(std::memory_order_relaxed);
  T.HotPromotions = RC.HotPromotions.load(std::memory_order_relaxed);
  T.HotInstalls = RC.HotInstalls.load(std::memory_order_relaxed);
  T.OsrEntries = RC.OsrEntries.load(std::memory_order_relaxed);
  T.OsrPolls = RC.OsrPolls.load(std::memory_order_relaxed);
  return T;
}

TierCounters TierController::totals() const {
  TierCounters T;
  for (size_t I = 0; I != C.size(); ++I) {
    TierCounters R = counters(I);
    T.ColdExecs += R.ColdExecs;
    T.WarmExecs += R.WarmExecs;
    T.WarmPromotions += R.WarmPromotions;
    T.HotPromotions += R.HotPromotions;
    T.HotInstalls += R.HotInstalls;
    T.OsrEntries += R.OsrEntries;
    T.OsrPolls += R.OsrPolls;
  }
  return T;
}

} // namespace tier
} // namespace dyc
