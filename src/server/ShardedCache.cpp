//===- server/ShardedCache.cpp -----------------------------------------------------===//

#include "server/ShardedCache.h"

#include "runtime/CodeCache.h" // CodeCache::MaxIndexedKey (shared limit)

#include <algorithm>

namespace dyc {
namespace server {

namespace {

constexpr size_t MaxIndexedKey = runtime::CodeCache::MaxIndexedKey;

/// Probes the snapshot's double-hash table. The table is built at no more
/// than half load, so an empty slot always terminates the walk.
const CacheRecord *probeTable(const CacheSnapshot &S, WordSpan Key,
                              uint64_t Hash, unsigned &Probes) {
  Probes = 1;
  if (S.Table.empty())
    return nullptr;
  size_t Mask = S.Table.size() - 1;
  size_t H1 = static_cast<size_t>(Hash) & Mask;
  size_t H2 = static_cast<size_t>(Hash >> 32) | 1;
  for (size_t I = 0; I != S.Table.size(); ++I) {
    size_t Slot = (H1 + I * H2) & Mask;
    Probes = static_cast<unsigned>(I + 1);
    const CacheRecord *R = S.Table[Slot].get();
    if (!R)
      return nullptr;
    if (R->Hash == Hash && R->Key == Key)
      return R;
  }
  return nullptr;
}

/// Places \p Rec into an under-half-full open-addressed \p Table.
void placeInTable(std::vector<std::shared_ptr<CacheRecord>> &Table,
                  std::shared_ptr<CacheRecord> Rec) {
  size_t Mask = Table.size() - 1;
  size_t H1 = static_cast<size_t>(Rec->Hash) & Mask;
  size_t H2 = static_cast<size_t>(Rec->Hash >> 32) | 1;
  for (size_t I = 0; I != Table.size(); ++I) {
    size_t Slot = (H1 + I * H2) & Mask;
    if (!Table[Slot]) {
      Table[Slot] = std::move(Rec);
      return;
    }
  }
  fatal("sharded cache: snapshot table overfull");
}

size_t tableCapacityFor(size_t N) {
  size_t Cap = 8;
  while (Cap < 2 * N + 1)
    Cap <<= 1;
  return Cap;
}

bool indexInRange(const CacheRecord &R, uint32_t IndexPos) {
  return R.Key[IndexPos].Bits < MaxIndexedKey;
}

} // namespace

size_t ShardedCache::addPoint(ir::CachePolicy Policy, uint32_t IndexPos) {
  Points.emplace_back();
  Points.back().Policy = Policy;
  Points.back().IndexPos = IndexPos;
  return Points.size() - 1;
}

ShardedCache::Lookup ShardedCache::lookup(size_t Point, WordSpan Key) const {
  assert(Point < Points.size() && "bad cache point");
  const PointCache &P = Points[Point];
  const CacheSnapshot *S = P.Current.load(std::memory_order_acquire);
  Lookup L;
  if (!S)
    return L;
  switch (S->Policy) {
  case ir::CachePolicy::CacheAll:
    L.Rec = probeTable(*S, Key, hashKey(Key), L.Probes);
    return L;
  case ir::CachePolicy::CacheOne:
    if (S->One && S->One->Key == Key)
      L.Rec = S->One.get();
    return L;
  case ir::CachePolicy::CacheOneUnchecked:
    // Resident entry used without comparing keys — the documented
    // unsafety, preserved through the server.
    L.Rec = S->One.get();
    return L;
  case ir::CachePolicy::CacheIndexed: {
    assert(S->IndexPos < Key.size() && "indexed cache needs its index key");
    uint64_t Idx = Key[S->IndexPos].Bits;
    if (Idx >= MaxIndexedKey) {
      // Out-of-range index value: checked hash fallback, as inline.
      L.Rec = probeTable(*S, Key, hashKey(Key), L.Probes);
      return L;
    }
    if (Idx < S->Indexed.size())
      L.Rec = S->Indexed[Idx].get();
    return L;
  }
  }
  return L;
}

void ShardedCache::republish(PointCache &P) {
  auto S = std::make_shared<CacheSnapshot>();
  S->Policy = P.Policy;
  S->IndexPos = P.IndexPos;
  switch (P.Policy) {
  case ir::CachePolicy::CacheOne:
  case ir::CachePolicy::CacheOneUnchecked:
    assert(P.Records.size() <= 1 && "one-slot point holds multiple records");
    if (!P.Records.empty())
      S->One = P.Records.front();
    break;
  case ir::CachePolicy::CacheAll: {
    S->Table.resize(tableCapacityFor(P.Records.size()));
    for (const auto &R : P.Records)
      placeInTable(S->Table, R);
    break;
  }
  case ir::CachePolicy::CacheIndexed: {
    size_t Overflow = 0;
    for (const auto &R : P.Records) {
      if (indexInRange(*R, P.IndexPos)) {
        uint64_t Idx = R->Key[P.IndexPos].Bits;
        if (Idx >= S->Indexed.size())
          S->Indexed.resize(Idx + 1);
        S->Indexed[Idx] = R;
      } else {
        ++Overflow;
      }
    }
    if (Overflow) {
      S->Table.resize(tableCapacityFor(Overflow));
      for (const auto &R : P.Records)
        if (!indexInRange(*R, P.IndexPos))
          placeInTable(S->Table, R);
    }
    break;
  }
  }
  if (P.Owner)
    P.Retired.push_back(std::move(P.Owner));
  P.Owner = S;
  P.Current.store(S.get(), std::memory_order_release);
}

std::shared_ptr<CacheRecord>
ShardedCache::findRecord(size_t Point, WordSpan Key) const {
  assert(Point < Points.size() && "bad cache point");
  const PointCache &P = Points[Point];
  std::lock_guard<std::mutex> Lock(stripeFor(Point));
  for (const auto &R : P.Records) {
    switch (P.Policy) {
    case ir::CachePolicy::CacheOneUnchecked:
      return R; // any resident entry serves
    case ir::CachePolicy::CacheOne:
    case ir::CachePolicy::CacheAll:
      if (R->Key == Key)
        return R;
      break;
    case ir::CachePolicy::CacheIndexed:
      if (indexInRange(*R, P.IndexPos) &&
          Key[P.IndexPos].Bits < MaxIndexedKey) {
        if (R->Key[P.IndexPos].Bits == Key[P.IndexPos].Bits)
          return R;
      } else if (R->Key == Key) {
        return R;
      }
      break;
    }
  }
  return nullptr;
}

std::vector<std::shared_ptr<CacheRecord>>
ShardedCache::insert(std::shared_ptr<CacheRecord> Rec) {
  assert(Rec->Point < Points.size() && "bad cache point");
  PointCache &P = Points[Rec->Point];
  std::lock_guard<std::mutex> Lock(stripeFor(Rec->Point));
  std::vector<std::shared_ptr<CacheRecord>> Displaced;
  auto displaceIf = [&](auto Pred) {
    for (auto It = P.Records.begin(); It != P.Records.end();) {
      if (Pred(**It)) {
        Displaced.push_back(std::move(*It));
        It = P.Records.erase(It);
      } else {
        ++It;
      }
    }
  };
  switch (P.Policy) {
  case ir::CachePolicy::CacheOne:
  case ir::CachePolicy::CacheOneUnchecked:
    // One-slot replacement: whatever is resident is displaced.
    displaceIf([](const CacheRecord &) { return true; });
    break;
  case ir::CachePolicy::CacheAll:
    displaceIf([&](const CacheRecord &R) { return R.Key == Rec->Key; });
    break;
  case ir::CachePolicy::CacheIndexed:
    if (indexInRange(*Rec, P.IndexPos)) {
      // The direct array replaces by index value alone (non-index key
      // words are unchecked invariants, as in the inline cache).
      uint64_t Idx = Rec->Key[P.IndexPos].Bits;
      displaceIf([&](const CacheRecord &R) {
        return indexInRange(R, P.IndexPos) &&
               R.Key[P.IndexPos].Bits == Idx;
      });
    } else {
      displaceIf([&](const CacheRecord &R) { return R.Key == Rec->Key; });
    }
    break;
  }
  P.Records.push_back(std::move(Rec));
  republish(P);
  return Displaced;
}

void ShardedCache::erase(const CacheRecord *Rec) {
  size_t Point = Rec->Point;
  assert(Point < Points.size() && "bad cache point");
  PointCache &P = Points[Point];
  std::lock_guard<std::mutex> Lock(stripeFor(Point));
  auto It = std::find_if(
      P.Records.begin(), P.Records.end(),
      [&](const std::shared_ptr<CacheRecord> &R) { return R.get() == Rec; });
  if (It == P.Records.end())
    return; // already displaced by a newer insert
  P.Records.erase(It);
  republish(P);
}

size_t ShardedCache::entries(size_t Point) const {
  assert(Point < Points.size() && "bad cache point");
  std::lock_guard<std::mutex> Lock(stripeFor(Point));
  return Points[Point].Records.size();
}

size_t ShardedCache::trimGraveyard() {
  // Lock every stripe (fixed order; no other path takes two at once).
  for (std::mutex &M : Stripes)
    M.lock();
  size_t Freed = 0;
  for (PointCache &P : Points) {
    Freed += P.Retired.size();
    P.Retired.clear();
  }
  for (auto It = Stripes.rbegin(); It != Stripes.rend(); ++It)
    It->unlock();
  return Freed;
}

size_t ShardedCache::retiredSnapshots() const {
  size_t N = 0;
  for (size_t I = 0; I != Points.size(); ++I) {
    std::lock_guard<std::mutex> Lock(stripeFor(I));
    N += Points[I].Retired.size();
  }
  return N;
}

} // namespace server
} // namespace dyc
