//===- server/CodeChain.h - Self-contained generated-code chains -----------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In the inline runtime every specialization run appends to one
/// per-region buffer and shares exit/dispatch stubs across runs; eviction
/// would have to prove no surviving run branches into the evicted range.
/// The SpecServer instead gives every run its own chain: a fresh
/// CodeObject plus fresh stub maps, immutable once published. Chains never
/// branch into each other — cross-version control flow always goes through
/// a Dispatch trap — so evicting a chain can never leave a dangling jump.
///
/// A chain may still be *executing* when it is evicted (some client is in
/// the middle of it). The registry keeps evicted chains alive until their
/// active-executor count — maintained from the VM's onDynamicCodeExit
/// callback — drains to zero.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_SERVER_CODECHAIN_H
#define DYC_SERVER_CODECHAIN_H

#include "ir/Instruction.h"
#include "vm/Bytecode.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <unordered_map>

namespace dyc {
namespace server {

/// One specialization run's output: code plus the stub maps that run
/// created. Immutable after the run completes (publication happens-before
/// any client execution via the cache's release store).
struct CodeChain {
  vm::CodeObject CO;
  /// Stubs created by this run only (exit block -> PC, site -> PC).
  std::map<ir::BlockId, uint32_t> ExitStubs;
  std::map<uint32_t, uint32_t> DispatchStubs;
  /// Clients currently executing inside CO.
  std::atomic<uint32_t> ActiveRefs{0};
  /// Set (under the server's specialization lock) when the capacity
  /// manager removes the chain's cache entry.
  std::atomic<bool> Evicted{false};
  uint64_t Ordinal = 0; ///< creation order, for diagnostics
  uint32_t Instrs = 0;  ///< CO.Code.size() at publication
};

/// Maps a CodeObject back to its owning chain so onDynamicCodeExit — which
/// only sees the CodeObject pointer — can drop the executor count.
/// Readers (every dispatch and every exit callback) take the shared lock;
/// chain registration and collection take it exclusively.
class ChainRegistry {
public:
  void add(std::shared_ptr<CodeChain> Chain);

  /// Chain owning \p CO, or null (e.g. the inline runtime's buffer).
  std::shared_ptr<CodeChain> find(const vm::CodeObject *CO) const;

  /// Convenience for the exit callback: decrement without copying the
  /// shared_ptr. No-op for unknown CodeObjects.
  void releaseExecutor(const vm::CodeObject *CO) const;

  /// Frees evicted chains whose executor count has drained. Returns how
  /// many were collected. Safe to call at any time: a chain with
  /// ActiveRefs == 0 and Evicted set can no longer be entered (its cache
  /// entry is gone, and entry only happens through the cache).
  size_t collect();

  size_t size() const;

private:
  mutable std::shared_mutex Mutex;
  std::unordered_map<const vm::CodeObject *, std::shared_ptr<CodeChain>> Map;
};

} // namespace server
} // namespace dyc

#endif // DYC_SERVER_CODECHAIN_H
