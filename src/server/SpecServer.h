//===- server/SpecServer.h - Concurrent specialization service -------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe, capacity-bounded front end over the shared
/// RegionExecutionCore. The inline front end (runtime::DycRuntime driven
/// directly by one VM) is single-threaded: dispatch, specialization, and
/// cache mutation all happen on the one client's thread. The SpecServer
/// serves many client VMs concurrently over the same core:
///
///  * Dispatch: clients trap into the server; cache hits probe an
///    immutable published snapshot with no lock (ShardedCache) and jump
///    straight into generated code.
///  * Miss path: the miss becomes a SpecJob on a bounded queue, deduped
///    against in-flight jobs so concurrent misses on one key specialize
///    exactly once. The client either blocks on the job's future
///    (MissPolicy::Block) or immediately executes the statically compiled
///    version of the region (MissPolicy::Fallback) while the worker
///    specializes in the background.
///  * Specialization: a worker pool runs the generating extension on the
///    server's own VM (whose memory image must equal the clients' — the
///    workload Setup functions are deterministic for exactly this
///    reason). Every run emits into a fresh CodeChain, so published code
///    is immutable and eviction can never dangle a branch.
///  * Capacity: per-region entry/instruction budgets with CLOCK eviction
///    (the core's capacity books). Evicted chains drain via the VM's
///    onDynamicCodeExit callback before they are freed.
///
/// All specialization serializes on one recursive mutex: the generating
/// extension may re-enter the server (static calls at specialize time can
/// enter other regions), and a recursive lock turns that into an inline
/// nested specialization instead of a self-deadlock.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_SERVER_SPECSERVER_H
#define DYC_SERVER_SPECSERVER_H

#include "bta/OptFlags.h"
#include "cogen/Lowering.h"
#include "runtime/RegionExec.h"
#include "server/ChainStore.h"
#include "server/ServerStats.h"
#include "server/ShardedCache.h"
#include "server/SpecJob.h"
#include "server/Tenant.h"
#include "tier/TierController.h"
#include "vm/VM.h"

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

namespace dyc {
namespace server {

/// What a client does on a cache miss.
enum class MissPolicy {
  Block,    ///< wait for the specialization worker's result
  Fallback, ///< run the statically compiled region; specialize in background
};

struct ServerConfig {
  unsigned NumWorkers = 2;
  size_t QueueCapacity = 64; ///< pending jobs before producers block
  MissPolicy OnMiss = MissPolicy::Block;
  CapacityBudget Budget; ///< per-region generated-code bounds (0 = unbounded)
  /// Applied to the server's specialization VM at construction and to
  /// every VM from makeClientVM(). Must be deterministic: specialize-time
  /// static loads read the server VM's memory, so its image must be
  /// bit-identical to the clients'.
  std::function<void(vm::VM &)> MemoryImage;
  vm::CostModel CM;
  vm::ICacheConfig IC;
  /// Test hook: while the pointee is true, workers hold popped jobs
  /// without specializing them. Lets tests pin a compile in flight and
  /// observe the fallback/OSR machinery deterministically. Null (the
  /// default) means never hold.
  std::shared_ptr<std::atomic<bool>> HoldCompiles;

  /// Multi-tenancy (server/Tenant.h). When set, dispatch resolves the
  /// client VM's Tenant id to that tenant's cache view, publications are
  /// deduplicated across tenants through the content-addressed chain
  /// store, Quota governs per-tenant admission and residency, and the
  /// server-wide Budget above is unused (the tenant books replace the
  /// core's capacity book). Tiering does not compose with multi-tenancy —
  /// per-tenant heat parity is future work — so the constructor disables
  /// it.
  bool MultiTenant = false;
  TenantQuota Quota;
  /// Warm-start file (multi-tenant only): if non-empty, the constructor
  /// loads the chain store from it (silently skipping a missing or
  /// version-mismatched file) and the destructor serializes the store
  /// back to it after the workers quiesce.
  std::string WarmStartPath;
};

/// The service. Construct from a compiled module; make client VMs; run
/// them from any threads. The module must outlive the server.
class SpecServer : public vm::RuntimeHook {
public:
  SpecServer(const ir::Module &M, const OptFlags &Flags, ServerConfig Cfg);
  ~SpecServer() override;

  SpecServer(const SpecServer &) = delete;
  SpecServer &operator=(const SpecServer &) = delete;

  /// A fresh VM over the shared program, hooked to this server, with the
  /// configured memory image applied. Callable from any thread. On a
  /// multi-tenant server \p TenantId names the tenant whose cache view
  /// the VM dispatches through; the tenant is registered here (before any
  /// dispatch can name it), so the dispatch path never creates tenants.
  std::unique_ptr<vm::VM> makeClientVM(uint32_t TenantId);
  std::unique_ptr<vm::VM> makeClientVM() { return makeClientVM(0); }

  int findFunction(const std::string &Name) const {
    return Prog.findFunction(Name);
  }
  /// Region ordinal of function \p Name, or -1 if unannotated.
  int regionOrdinalOf(const std::string &Name) const;
  size_t numRegions() const { return Core.numRegions(); }

  // RuntimeHook:
  Target dispatch(vm::VM &M, int64_t PointId,
                  std::vector<Word> &Regs) override;
  void onDynamicCodeExit(vm::VM &M, const vm::CodeObject *CO) override;
  /// Back-edge OSR poll from a client spinning in fallback code: if the
  /// watched key's chain has been published (with a residual pc for the
  /// watched loop head), transfers the frame into it mid-loop. Does not
  /// re-enter the VM. Charges the client the normal dispatch-probe cost
  /// only when a transfer happens.
  Target onOsrPoll(vm::VM &M, uint64_t Token,
                   std::vector<Word> &Regs) override;
  void onOsrDrop(vm::VM &M, uint64_t Token) override;

  /// Blocks until the job queue is empty and no worker is mid-job.
  void drain();

  /// Reclaims retired cache snapshots and drained evicted chains. Refuses
  /// (returns false) if any dispatch is in flight — reclamation requires
  /// quiescence. Outputs are optional counts.
  bool trimQuiescent(size_t *SnapshotsFreed = nullptr,
                     size_t *ChainsFreed = nullptr);

  ServerStatsSnapshot stats() const {
    ServerStatsSnapshot S = St.snapshot();
    S.SnapshotsRetired = Cache.retiredSnapshots(); // currently in graveyard
    S.Backend = Core.backendName();
    S.CompileQueueDepth = Queue.pending();
    if (Tier) {
      S.TierEnabled = true;
      tier::TierCounters T = Tier->totals();
      S.ColdExecs = T.ColdExecs;
      S.WarmExecs = T.WarmExecs;
      S.WarmPromotions = T.WarmPromotions;
      S.HotPromotions = T.HotPromotions;
      S.HotInstalls = T.HotInstalls;
      S.OsrEntries = T.OsrEntries;
      S.OsrPolls = T.OsrPolls;
    } else {
      // Untiered servers report hard zeros: the tier block above is the
      // only writer of these fields, so force them rather than trusting
      // whatever path produced the snapshot (regression-tested).
      S.TierEnabled = false;
      S.ColdExecs = S.WarmExecs = S.WarmPromotions = S.HotPromotions = 0;
      S.HotInstalls = S.OsrEntries = S.OsrPolls = 0;
    }
    {
      // Plan counters live in the core's per-region stats (single-threaded,
      // guarded by the specialization lock), so sum them under it.
      std::lock_guard<std::recursive_mutex> Lock(SpecMutex);
      for (size_t I = 0; I != Core.numRegions(); ++I) {
        const runtime::RegionStats &RS = Core.stats(I);
        if (RS.PlanEnabled)
          S.PlanEnabled = true;
        S.PlanBuilds += RS.PlanBuilds;
        S.PlanHits += RS.PlanHits;
        S.PlanBytes += RS.PlanBytes;
      }
      if (!S.PlanEnabled) {
        // The plan path is the only writer of these fields; report hard
        // zeros when it is off (same contract as the tier block above).
        S.PlanBuilds = S.PlanHits = S.PlanBytes = 0;
      }
    }
    if (Cfg.MultiTenant) {
      S.MultiTenant = true;
      std::shared_lock<std::shared_mutex> L(TenantsMutex);
      S.Tenants = Tenants.size();
      S.StoreChains = Store.size();
    }
    return S;
  }

  /// One tenant's view of the server, from its own ledger: the counters a
  /// dedicated single-tenant server replaying the tenant's workload would
  /// report. SpecRuns/ChainsCreated count adoptions too (the dedicated
  /// server would have compiled); DedupHits/WarmHits record how many of
  /// those were served from the store, and ChainsCollected stays global
  /// (a shared chain is only freed when every tenant has dropped it).
  /// Zeroes if the tenant was never registered.
  ServerStatsSnapshot tenantStats(uint32_t TenantId) const;

  size_t numTenants() const {
    std::shared_lock<std::shared_mutex> L(TenantsMutex);
    return Tenants.size();
  }
  /// Chains resident in the cross-tenant store (multi-tenant only).
  size_t storeChains() const { return Store.size(); }

  /// Serializes the chain store to \p Path (multi-tenant only; call at
  /// quiescence — after drain(), with no client mid-run). Returns false
  /// on I/O failure or on a single-tenant server.
  bool saveCacheTo(const std::string &Path) const;
  /// Loads a chain store serialized by saveCacheTo into this server.
  /// Multi-tenant only, and only before any specialization has happened
  /// (the site table must be empty so the file's interned dispatch sites
  /// replay at their original indices). Validates the format version,
  /// instruction encoding, module fingerprint, and OptFlags fingerprint;
  /// returns false — loading nothing — on any mismatch. Loaded chains
  /// enter the store unreferenced; tenants adopt them on first miss
  /// (counted as WarmHits).
  bool loadCacheFrom(const std::string &Path);

  /// The tiering controller, or null when tiering is off.
  const tier::TierController *tierController() const { return Tier.get(); }

  /// Name of the execution backend the server's core compiles through.
  const char *backendName() const { return Core.backendName(); }
  /// The backend itself (stats are atomic; safe to read concurrently).
  backend::ExecutionBackend &backend() const { return Core.backend(); }
  /// Copy of the core's per-region specializer counters.
  runtime::RegionStats regionStats(size_t Ordinal) const;
  size_t residentEntries(size_t Ordinal) const;
  uint64_t residentInstrs(size_t Ordinal) const;
  size_t liveChains() const { return Core.liveChains(); }
  size_t retiredSnapshots() const { return Cache.retiredSnapshots(); }
  /// Disassembles a region's live code chains in creation order —
  /// bit-identical to the inline front end's dump for the same workload,
  /// since both render the core's chains.
  std::string disassembleRegion(size_t Ordinal) const;
  /// Cycles the server spent specializing (its VM's dynamic-compilation
  /// account); the per-client cost of a hit is charged to the client.
  uint64_t specOverheadCycles() const;

private:
  /// Specializes (point, key) and publishes the result, rechecking the
  /// cache first. Runs under SpecMutex; reentrant for nested misses.
  std::shared_ptr<CacheRecord>
  specializeAndPublish(uint32_t Ord, uint32_t PromoId, size_t Point,
                       const std::vector<Word> &Key,
                       const std::vector<Word> &BakedVals,
                       const std::vector<Word> &KeyVals);

  // --- Multi-tenant path (all no-ops unless Cfg.MultiTenant) ------------------

  /// Finds or registers tenant \p Id (exclusive lock on miss).
  TenantState &tenantState(uint32_t Id);
  /// Shared-lock probe; null for unregistered tenants.
  TenantState *findTenant(uint32_t Id) const;

  /// The multi-tenant miss/hit continuation of dispatch(): per-tenant
  /// cache probe, quota admission, job submission against the tenant's
  /// in-flight gauge, and the Block/Fallback miss policies — mirroring
  /// the single-tenant control flow so the tenant ledger stays
  /// bit-identical to a dedicated server's.
  Target dispatchTenant(vm::VM &ClientVM, TenantState &TS, uint32_t Ord,
                        uint32_t PromoId, const bta::PromoPoint &P,
                        size_t Point, WordSpan Key, size_t BakedWords,
                        std::vector<Word> &Regs, uint64_t Now);

  /// The multi-tenant twin of specializeAndPublish: consults the chain
  /// store first and adopts a deduplicated chain when one exists,
  /// otherwise runs the generating extension and registers the result;
  /// publishes into the tenant's cache view and runs the tenant's CLOCK
  /// book. Under SpecMutex; reentrant for nested misses.
  std::shared_ptr<CacheRecord>
  specializeAndPublishTenant(TenantState &TS, uint32_t Ord, uint32_t PromoId,
                             size_t Point, const std::vector<Word> &Key,
                             const std::vector<Word> &BakedVals,
                             const std::vector<Word> &KeyVals);

  /// Tenant mirror of Core.admit: accounts \p E against the tenant's
  /// per-region budget and CLOCK-evicts victims from the tenant's cache,
  /// releasing each victim's store reference. Under SpecMutex.
  void tenantAdmit(TenantState &TS, std::shared_ptr<CacheRecord> E);
  /// Tenant mirror of Core.displaced for one-slot/indexed replacement.
  void tenantDisplaced(TenantState &TS,
                       const std::shared_ptr<CacheRecord> &E);
  /// Drops one store reference from \p Chain; retires the chain (marks it
  /// evicted, releases the backend artifact) when the last tenant lets
  /// go. Collection still waits for active executors at the safe point.
  void releaseStoreRef(const CodeChain *Chain);

  /// Hands out a chain for execution, counting the executor in. With
  /// \p ClientVM set (the multi-tenant path), the first entry of an
  /// adopted record invalidates the chain's I-cache range in that client
  /// so deduplication stays invisible — see EntryStats::ColdEntryPending.
  Target enterChain(const CacheRecord &Rec, vm::VM *ClientVM = nullptr);
  Target fallbackTarget(uint32_t Ord, const bta::PromoPoint &P,
                        std::vector<Word> &Regs,
                        const std::vector<Word> &BakedVals);
  /// Arms one OSR watch per loop head of region \p Ord on the client's
  /// current (fallback) frame, keyed to the missed cache entry. Called
  /// from dispatch on a tiered hot-tier async miss.
  void armOsrWatches(vm::VM &ClientVM, uint32_t Ord, uint32_t PromoId,
                     size_t Point, const std::vector<Word> &Key);
  void workerLoop();

  const ir::Module &M;
  OptFlags Flags;
  ServerConfig Cfg;

  vm::Program Prog; ///< shared by the server VM and every client VM
  std::vector<cogen::LoweredFunction> Lowered;
  std::vector<int> AnnotatedOrdinal; ///< function index -> region ordinal

  /// Statically compiled copy of the module (regions ignored) for the
  /// fallback miss path. Lowered at a disjoint simulated address base so
  /// the I-cache model doesn't alias the two programs.
  vm::Program FallbackProg;
  std::vector<cogen::LoweredFunction> FallbackLowered;

  /// The shared backend: code chains, the generating-extension walk,
  /// region stats, dispatch sites, capacity books. Constructed over Prog
  /// before lowering runs; regions are registered in the ctor body.
  runtime::RegionExecutionCore Core;
  std::unique_ptr<vm::VM> SpecVM; ///< runs generating extensions; under SpecMutex
  std::vector<size_t> PointBase;  ///< region ordinal -> first cache point

  ShardedCache Cache;
  JobQueue Queue;
  std::vector<std::thread> Workers;

  /// Serializes all specialization (workers and nested re-entry).
  mutable std::recursive_mutex SpecMutex;
  /// Readers hold this shared for the duration of a dispatch; reclamation
  /// try-locks it exclusively, so it only proceeds at quiescence.
  std::shared_mutex DispatchGate;

  std::atomic<uint64_t> Tick{0}; ///< global dispatch clock (recency)
  std::mutex DrainMutex;
  std::condition_variable DrainCV;

  /// Tiering (null unless OptFlags::Tier.Enabled): classifies misses and
  /// owns the transition counters.
  std::unique_ptr<tier::TierController> Tier;
  /// Region ordinal -> (loop-head block, its pc in the fallback lowering).
  /// Computed once at construction when tiering is on; the OSR watches a
  /// hot miss arms come from this table.
  std::vector<std::vector<std::pair<ir::BlockId, uint32_t>>> RegionLoopHeads;

  /// One armed OSR watch: which cache entry the spinning fallback frame
  /// is waiting for, and which loop head it spins at.
  struct OsrRecord {
    size_t Point = 0;
    std::vector<Word> Key;
    uint32_t Ord = 0;
    uint32_t PromoId = 0;
    ir::BlockId HeadBlock = 0;
    uint64_t Polls = 0;
  };
  std::mutex OsrMutex; ///< guards OsrTable (lock order: gate, then this)
  std::map<uint64_t, OsrRecord> OsrTable;
  std::atomic<uint64_t> OsrTokens{0};

  // --- Multi-tenancy ----------------------------------------------------------

  /// Registered tenants. Deque: TenantState is not movable and dispatch
  /// holds references across the shared lock. Guarded by TenantsMutex
  /// (registration exclusive, dispatch-time resolution shared).
  mutable std::shared_mutex TenantsMutex;
  std::deque<TenantState> Tenants;
  std::map<uint32_t, TenantState *> TenantIndex;

  /// The cross-tenant content-addressed chain store; mutated only under
  /// SpecMutex (publication, tenant eviction, warm-start load).
  ChainStore Store;
  /// Per-region content hash (generic lowered code + shape), the "region
  /// version" component of the dedup key and of the warm-start module
  /// fingerprint. Computed once at construction.
  std::vector<uint64_t> RegionContentHash;
  uint64_t FlagsFingerprint = 0;

  ServerStats St;
};

} // namespace server
} // namespace dyc

#endif // DYC_SERVER_SPECSERVER_H
