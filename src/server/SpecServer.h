//===- server/SpecServer.h - Concurrent specialization service -------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe, capacity-bounded front end over the shared
/// RegionExecutionCore. The inline front end (runtime::DycRuntime driven
/// directly by one VM) is single-threaded: dispatch, specialization, and
/// cache mutation all happen on the one client's thread. The SpecServer
/// serves many client VMs concurrently over the same core:
///
///  * Dispatch: clients trap into the server; cache hits probe an
///    immutable published snapshot with no lock (ShardedCache) and jump
///    straight into generated code.
///  * Miss path: the miss becomes a SpecJob on a bounded queue, deduped
///    against in-flight jobs so concurrent misses on one key specialize
///    exactly once. The client either blocks on the job's future
///    (MissPolicy::Block) or immediately executes the statically compiled
///    version of the region (MissPolicy::Fallback) while the worker
///    specializes in the background.
///  * Specialization: a worker pool runs the generating extension on the
///    server's own VM (whose memory image must equal the clients' — the
///    workload Setup functions are deterministic for exactly this
///    reason). Every run emits into a fresh CodeChain, so published code
///    is immutable and eviction can never dangle a branch.
///  * Capacity: per-region entry/instruction budgets with CLOCK eviction
///    (the core's capacity books). Evicted chains drain via the VM's
///    onDynamicCodeExit callback before they are freed.
///
/// All specialization serializes on one recursive mutex: the generating
/// extension may re-enter the server (static calls at specialize time can
/// enter other regions), and a recursive lock turns that into an inline
/// nested specialization instead of a self-deadlock.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_SERVER_SPECSERVER_H
#define DYC_SERVER_SPECSERVER_H

#include "bta/OptFlags.h"
#include "cogen/Lowering.h"
#include "runtime/RegionExec.h"
#include "server/ServerStats.h"
#include "server/ShardedCache.h"
#include "server/SpecJob.h"
#include "tier/TierController.h"
#include "vm/VM.h"

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <thread>
#include <vector>

namespace dyc {
namespace server {

/// What a client does on a cache miss.
enum class MissPolicy {
  Block,    ///< wait for the specialization worker's result
  Fallback, ///< run the statically compiled region; specialize in background
};

struct ServerConfig {
  unsigned NumWorkers = 2;
  size_t QueueCapacity = 64; ///< pending jobs before producers block
  MissPolicy OnMiss = MissPolicy::Block;
  CapacityBudget Budget; ///< per-region generated-code bounds (0 = unbounded)
  /// Applied to the server's specialization VM at construction and to
  /// every VM from makeClientVM(). Must be deterministic: specialize-time
  /// static loads read the server VM's memory, so its image must be
  /// bit-identical to the clients'.
  std::function<void(vm::VM &)> MemoryImage;
  vm::CostModel CM;
  vm::ICacheConfig IC;
  /// Test hook: while the pointee is true, workers hold popped jobs
  /// without specializing them. Lets tests pin a compile in flight and
  /// observe the fallback/OSR machinery deterministically. Null (the
  /// default) means never hold.
  std::shared_ptr<std::atomic<bool>> HoldCompiles;
};

/// The service. Construct from a compiled module; make client VMs; run
/// them from any threads. The module must outlive the server.
class SpecServer : public vm::RuntimeHook {
public:
  SpecServer(const ir::Module &M, const OptFlags &Flags, ServerConfig Cfg);
  ~SpecServer() override;

  SpecServer(const SpecServer &) = delete;
  SpecServer &operator=(const SpecServer &) = delete;

  /// A fresh VM over the shared program, hooked to this server, with the
  /// configured memory image applied. Callable from any thread.
  std::unique_ptr<vm::VM> makeClientVM();

  int findFunction(const std::string &Name) const {
    return Prog.findFunction(Name);
  }
  /// Region ordinal of function \p Name, or -1 if unannotated.
  int regionOrdinalOf(const std::string &Name) const;
  size_t numRegions() const { return Core.numRegions(); }

  // RuntimeHook:
  Target dispatch(vm::VM &M, int64_t PointId,
                  std::vector<Word> &Regs) override;
  void onDynamicCodeExit(vm::VM &M, const vm::CodeObject *CO) override;
  /// Back-edge OSR poll from a client spinning in fallback code: if the
  /// watched key's chain has been published (with a residual pc for the
  /// watched loop head), transfers the frame into it mid-loop. Does not
  /// re-enter the VM. Charges the client the normal dispatch-probe cost
  /// only when a transfer happens.
  Target onOsrPoll(vm::VM &M, uint64_t Token,
                   std::vector<Word> &Regs) override;
  void onOsrDrop(vm::VM &M, uint64_t Token) override;

  /// Blocks until the job queue is empty and no worker is mid-job.
  void drain();

  /// Reclaims retired cache snapshots and drained evicted chains. Refuses
  /// (returns false) if any dispatch is in flight — reclamation requires
  /// quiescence. Outputs are optional counts.
  bool trimQuiescent(size_t *SnapshotsFreed = nullptr,
                     size_t *ChainsFreed = nullptr);

  ServerStatsSnapshot stats() const {
    ServerStatsSnapshot S = St.snapshot();
    S.SnapshotsRetired = Cache.retiredSnapshots(); // currently in graveyard
    S.Backend = Core.backendName();
    S.CompileQueueDepth = Queue.pending();
    if (Tier) {
      S.TierEnabled = true;
      tier::TierCounters T = Tier->totals();
      S.ColdExecs = T.ColdExecs;
      S.WarmExecs = T.WarmExecs;
      S.WarmPromotions = T.WarmPromotions;
      S.HotPromotions = T.HotPromotions;
      S.HotInstalls = T.HotInstalls;
      S.OsrEntries = T.OsrEntries;
      S.OsrPolls = T.OsrPolls;
    }
    return S;
  }

  /// The tiering controller, or null when tiering is off.
  const tier::TierController *tierController() const { return Tier.get(); }

  /// Name of the execution backend the server's core compiles through.
  const char *backendName() const { return Core.backendName(); }
  /// The backend itself (stats are atomic; safe to read concurrently).
  backend::ExecutionBackend &backend() const { return Core.backend(); }
  /// Copy of the core's per-region specializer counters.
  runtime::RegionStats regionStats(size_t Ordinal) const;
  size_t residentEntries(size_t Ordinal) const;
  uint64_t residentInstrs(size_t Ordinal) const;
  size_t liveChains() const { return Core.liveChains(); }
  size_t retiredSnapshots() const { return Cache.retiredSnapshots(); }
  /// Disassembles a region's live code chains in creation order —
  /// bit-identical to the inline front end's dump for the same workload,
  /// since both render the core's chains.
  std::string disassembleRegion(size_t Ordinal) const;
  /// Cycles the server spent specializing (its VM's dynamic-compilation
  /// account); the per-client cost of a hit is charged to the client.
  uint64_t specOverheadCycles() const;

private:
  /// Specializes (point, key) and publishes the result, rechecking the
  /// cache first. Runs under SpecMutex; reentrant for nested misses.
  std::shared_ptr<CacheRecord>
  specializeAndPublish(uint32_t Ord, uint32_t PromoId, size_t Point,
                       const std::vector<Word> &Key,
                       const std::vector<Word> &BakedVals,
                       const std::vector<Word> &KeyVals);

  Target enterChain(const CacheRecord &Rec);
  Target fallbackTarget(uint32_t Ord, const bta::PromoPoint &P,
                        std::vector<Word> &Regs,
                        const std::vector<Word> &BakedVals);
  /// Arms one OSR watch per loop head of region \p Ord on the client's
  /// current (fallback) frame, keyed to the missed cache entry. Called
  /// from dispatch on a tiered hot-tier async miss.
  void armOsrWatches(vm::VM &ClientVM, uint32_t Ord, uint32_t PromoId,
                     size_t Point, const std::vector<Word> &Key);
  void workerLoop();

  const ir::Module &M;
  OptFlags Flags;
  ServerConfig Cfg;

  vm::Program Prog; ///< shared by the server VM and every client VM
  std::vector<cogen::LoweredFunction> Lowered;
  std::vector<int> AnnotatedOrdinal; ///< function index -> region ordinal

  /// Statically compiled copy of the module (regions ignored) for the
  /// fallback miss path. Lowered at a disjoint simulated address base so
  /// the I-cache model doesn't alias the two programs.
  vm::Program FallbackProg;
  std::vector<cogen::LoweredFunction> FallbackLowered;

  /// The shared backend: code chains, the generating-extension walk,
  /// region stats, dispatch sites, capacity books. Constructed over Prog
  /// before lowering runs; regions are registered in the ctor body.
  runtime::RegionExecutionCore Core;
  std::unique_ptr<vm::VM> SpecVM; ///< runs generating extensions; under SpecMutex
  std::vector<size_t> PointBase;  ///< region ordinal -> first cache point

  ShardedCache Cache;
  JobQueue Queue;
  std::vector<std::thread> Workers;

  /// Serializes all specialization (workers and nested re-entry).
  mutable std::recursive_mutex SpecMutex;
  /// Readers hold this shared for the duration of a dispatch; reclamation
  /// try-locks it exclusively, so it only proceeds at quiescence.
  std::shared_mutex DispatchGate;

  std::atomic<uint64_t> Tick{0}; ///< global dispatch clock (recency)
  std::mutex DrainMutex;
  std::condition_variable DrainCV;

  /// Tiering (null unless OptFlags::Tier.Enabled): classifies misses and
  /// owns the transition counters.
  std::unique_ptr<tier::TierController> Tier;
  /// Region ordinal -> (loop-head block, its pc in the fallback lowering).
  /// Computed once at construction when tiering is on; the OSR watches a
  /// hot miss arms come from this table.
  std::vector<std::vector<std::pair<ir::BlockId, uint32_t>>> RegionLoopHeads;

  /// One armed OSR watch: which cache entry the spinning fallback frame
  /// is waiting for, and which loop head it spins at.
  struct OsrRecord {
    size_t Point = 0;
    std::vector<Word> Key;
    uint32_t Ord = 0;
    uint32_t PromoId = 0;
    ir::BlockId HeadBlock = 0;
    uint64_t Polls = 0;
  };
  std::mutex OsrMutex; ///< guards OsrTable (lock order: gate, then this)
  std::map<uint64_t, OsrRecord> OsrTable;
  std::atomic<uint64_t> OsrTokens{0};

  ServerStats St;
};

} // namespace server
} // namespace dyc

#endif // DYC_SERVER_SPECSERVER_H
