//===- server/CapacityManager.h - Generated-code capacity bounds -----------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounds the generated code a region may accumulate, per entry count and
/// per total emitted instructions (0 = unbounded, the paper's behavior —
/// DyC never freed dynamically generated code). Victims are chosen by the
/// CLOCK approximation of LRU over each region's records: a hit sets the
/// record's reference bit; the hand clears set bits and evicts the first
/// clear one it finds.
///
/// Eviction removes the record from the sharded cache (so the next
/// dispatch on that key misses and respecializes) and marks its chain
/// evicted; the chain itself stays alive until every client inside it has
/// left, which the chain registry observes through the VM's exit callback.
///
/// All methods run under the server's specialization lock — mutation is
/// single-threaded; only the reference bits are set concurrently (by
/// readers, atomically).
///
//===----------------------------------------------------------------------===//

#ifndef DYC_SERVER_CAPACITYMANAGER_H
#define DYC_SERVER_CAPACITYMANAGER_H

#include "server/ShardedCache.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace dyc {
namespace server {

/// Per-region generated-code budget. Zeros mean unbounded.
struct CapacityBudget {
  size_t MaxEntries = 0;   ///< cached specializations per region
  uint64_t MaxInstrs = 0;  ///< total emitted instructions per region
};

class CapacityManager {
public:
  CapacityManager(size_t NumRegions, CapacityBudget Budget)
      : Budget(Budget), PerRegion(NumRegions) {}

  /// Accounts the just-inserted \p Rec and evicts CLOCK victims (never
  /// \p Rec itself) until the region fits its budget again. Returns the
  /// evicted records; the caller erases nothing — eviction here already
  /// removed them from \p Cache — but must mark their chains evicted and
  /// bump its counters.
  std::vector<std::shared_ptr<CacheRecord>>
  admit(size_t Region, std::shared_ptr<CacheRecord> Rec,
        ShardedCache &Cache);

  /// Drops a record displaced by the cache itself (one-slot or indexed
  /// replacement) from the books.
  void forget(size_t Region, const CacheRecord *Rec);

  size_t residentEntries(size_t Region) const;
  uint64_t residentInstrs(size_t Region) const;

private:
  struct RegionBook {
    std::vector<std::shared_ptr<CacheRecord>> Records;
    size_t Hand = 0; ///< CLOCK hand
    uint64_t Instrs = 0;
  };

  bool overBudget(const RegionBook &B) const {
    return (Budget.MaxEntries && B.Records.size() > Budget.MaxEntries) ||
           (Budget.MaxInstrs && B.Instrs > Budget.MaxInstrs);
  }

  CapacityBudget Budget;
  std::vector<RegionBook> PerRegion;
};

} // namespace server
} // namespace dyc

#endif // DYC_SERVER_CAPACITYMANAGER_H
