//===- server/CapacityManager.cpp --------------------------------------------------===//

#include "server/CapacityManager.h"

#include <algorithm>

namespace dyc {
namespace server {

std::vector<std::shared_ptr<CacheRecord>>
CapacityManager::admit(size_t Region, std::shared_ptr<CacheRecord> Rec,
                       ShardedCache &Cache) {
  assert(Region < PerRegion.size() && "bad region");
  RegionBook &B = PerRegion[Region];
  const CacheRecord *Fresh = Rec.get();
  B.Instrs += Rec->Chain ? Rec->Chain->Instrs : 0;
  B.Records.push_back(std::move(Rec));

  std::vector<std::shared_ptr<CacheRecord>> Evicted;
  // CLOCK sweep: clear set reference bits; evict the first clear record
  // that is not the one just admitted. Two full laps guarantee a victim
  // (after one lap every bit is clear).
  size_t Guard = 2 * B.Records.size() + 2;
  while (overBudget(B) && B.Records.size() > 1 && Guard--) {
    if (B.Hand >= B.Records.size())
      B.Hand = 0;
    std::shared_ptr<CacheRecord> &Cand = B.Records[B.Hand];
    if (Cand.get() == Fresh) {
      ++B.Hand;
      continue;
    }
    if (Cand->Use && Cand->Use->RefBit.exchange(false,
                                                std::memory_order_acq_rel)) {
      ++B.Hand; // recently used: second chance
      continue;
    }
    Cache.erase(Cand.get());
    B.Instrs -= Cand->Chain ? Cand->Chain->Instrs : 0;
    Evicted.push_back(std::move(Cand));
    B.Records.erase(B.Records.begin() + static_cast<long>(B.Hand));
    // Hand stays: it now points at the next record.
  }
  return Evicted;
}

void CapacityManager::forget(size_t Region, const CacheRecord *Rec) {
  assert(Region < PerRegion.size() && "bad region");
  RegionBook &B = PerRegion[Region];
  auto It = std::find_if(
      B.Records.begin(), B.Records.end(),
      [&](const std::shared_ptr<CacheRecord> &R) { return R.get() == Rec; });
  if (It == B.Records.end())
    return;
  B.Instrs -= (*It)->Chain ? (*It)->Chain->Instrs : 0;
  size_t Idx = static_cast<size_t>(It - B.Records.begin());
  B.Records.erase(It);
  if (B.Hand > Idx)
    --B.Hand;
}

size_t CapacityManager::residentEntries(size_t Region) const {
  assert(Region < PerRegion.size() && "bad region");
  return PerRegion[Region].Records.size();
}

uint64_t CapacityManager::residentInstrs(size_t Region) const {
  assert(Region < PerRegion.size() && "bad region");
  return PerRegion[Region].Instrs;
}

} // namespace server
} // namespace dyc
