//===- server/SpecJob.h - Specialization jobs, queue, in-flight dedup -------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cache miss becomes a SpecJob keyed by (point, full cache key) — the
/// point already encodes (region, promotion point), and the key carries
/// the baked static values plus the promoted registers' run-time values.
/// The in-flight table coalesces concurrent misses on the same key into
/// one job: the first misser creates and enqueues it, later missers join
/// its shared future, and the queue's bounded capacity backpressures
/// producers when the workers fall behind.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_SERVER_SPECJOB_H
#define DYC_SERVER_SPECJOB_H

#include "server/ShardedCache.h"

#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace dyc {
namespace server {

/// Identity of a pending specialization. Multi-tenant servers key jobs
/// per tenant: each tenant publishes into its own cache view, so two
/// tenants missing on the same (point, key) are two distinct publications
/// even though the chain store will hand the second one the first's
/// compiled chain. Single-tenant servers leave Tenant at 0.
struct JobKey {
  uint32_t Tenant = 0;
  size_t Point = 0;
  std::vector<Word> Key;

  bool operator<(const JobKey &O) const {
    if (Tenant != O.Tenant)
      return Tenant < O.Tenant;
    if (Point != O.Point)
      return Point < O.Point;
    if (Key.size() != O.Key.size())
      return Key.size() < O.Key.size();
    for (size_t I = 0; I != Key.size(); ++I)
      if (Key[I].Bits != O.Key[I].Bits)
        return Key[I].Bits < O.Key[I].Bits;
    return false;
  }
};

/// One queued specialization request. Dispatch metadata rides along so the
/// worker can rebuild the specializer's inputs without re-decoding.
struct SpecJob {
  JobKey Id;
  uint32_t RegionOrd = 0;
  uint32_t PromoId = 0;
  std::vector<Word> BakedVals; ///< site baked values ({} for native entries)
  std::vector<Word> KeyVals;   ///< promoted registers' values, KeyRegs order
  std::promise<std::shared_ptr<CacheRecord>> Result;
  std::shared_future<std::shared_ptr<CacheRecord>> Future;

  SpecJob() { Future = Result.get_future().share(); }
};

/// Bounded MPMC queue plus the in-flight table. The table owns jobs from
/// creation until the worker fulfills the promise.
class JobQueue {
public:
  explicit JobQueue(size_t Capacity) : Capacity(Capacity ? Capacity : 1) {}

  /// Returns the in-flight job for \p Id, creating (and enqueuing) one if
  /// absent. \p Created reports which happened. Blocks while the queue is
  /// full (backpressure) unless the queue is already shut down, in which
  /// case it returns null.
  std::shared_ptr<SpecJob> submit(std::unique_ptr<SpecJob> Job,
                                  bool &Created);

  /// Worker side: blocks for the next job; null means shut down and
  /// drained.
  std::shared_ptr<SpecJob> pop();

  /// Marks \p Id done and drops it from the in-flight table. The caller
  /// must have fulfilled the job's promise first (joiners wake on the
  /// future, not the table).
  void finish(const JobKey &Id);

  /// Wakes everyone; pop() returns null once the queue drains.
  void shutdown();

  size_t depth() const;

  /// Jobs created but not yet finished (queued or being specialized).
  size_t pending() const;

private:
  mutable std::mutex Mutex;
  std::condition_variable NotEmpty;
  std::condition_variable NotFull;
  std::deque<std::shared_ptr<SpecJob>> Ready;
  std::map<JobKey, std::shared_ptr<SpecJob>> InFlight;
  size_t Capacity;
  bool Down = false;
};

} // namespace server
} // namespace dyc

#endif // DYC_SERVER_SPECJOB_H
