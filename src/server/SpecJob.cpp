//===- server/SpecJob.cpp ----------------------------------------------------------===//

#include "server/SpecJob.h"

namespace dyc {
namespace server {

std::shared_ptr<SpecJob> JobQueue::submit(std::unique_ptr<SpecJob> Job,
                                          bool &Created) {
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    // Re-check the in-flight table after every wait: another producer may
    // have created this key's job while we were blocked on capacity.
    auto It = InFlight.find(Job->Id);
    if (It != InFlight.end()) {
      Created = false;
      return It->second; // coalesce onto the in-flight job
    }
    if (Down) {
      Created = false;
      return nullptr;
    }
    if (Ready.size() < Capacity)
      break;
    NotFull.wait(Lock);
  }
  std::shared_ptr<SpecJob> S(std::move(Job));
  InFlight.emplace(S->Id, S);
  Ready.push_back(S);
  Created = true;
  NotEmpty.notify_one();
  return S;
}

std::shared_ptr<SpecJob> JobQueue::pop() {
  std::unique_lock<std::mutex> Lock(Mutex);
  NotEmpty.wait(Lock, [&] { return !Ready.empty() || Down; });
  if (Ready.empty())
    return nullptr;
  std::shared_ptr<SpecJob> S = std::move(Ready.front());
  Ready.pop_front();
  NotFull.notify_one();
  return S;
}

void JobQueue::finish(const JobKey &Id) {
  std::lock_guard<std::mutex> Lock(Mutex);
  InFlight.erase(Id);
}

void JobQueue::shutdown() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Down = true;
  NotEmpty.notify_all();
  NotFull.notify_all();
}

size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Ready.size();
}

size_t JobQueue::pending() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return InFlight.size();
}

} // namespace server
} // namespace dyc
