//===- server/CodeChain.cpp --------------------------------------------------------===//

#include "server/CodeChain.h"

#include <mutex>

namespace dyc {
namespace server {

void ChainRegistry::add(std::shared_ptr<CodeChain> Chain) {
  std::unique_lock<std::shared_mutex> Lock(Mutex);
  Map[&Chain->CO] = std::move(Chain);
}

std::shared_ptr<CodeChain> ChainRegistry::find(const vm::CodeObject *CO) const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  auto It = Map.find(CO);
  return It == Map.end() ? nullptr : It->second;
}

void ChainRegistry::releaseExecutor(const vm::CodeObject *CO) const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  auto It = Map.find(CO);
  if (It != Map.end())
    It->second->ActiveRefs.fetch_sub(1, std::memory_order_acq_rel);
}

size_t ChainRegistry::collect() {
  std::unique_lock<std::shared_mutex> Lock(Mutex);
  size_t Freed = 0;
  for (auto It = Map.begin(); It != Map.end();) {
    CodeChain &C = *It->second;
    if (C.Evicted.load(std::memory_order_acquire) &&
        C.ActiveRefs.load(std::memory_order_acquire) == 0) {
      It = Map.erase(It);
      ++Freed;
    } else {
      ++It;
    }
  }
  return Freed;
}

size_t ChainRegistry::size() const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  return Map.size();
}

} // namespace server
} // namespace dyc
