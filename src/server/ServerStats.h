//===- server/ServerStats.h - SpecServer counters ---------------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Service-level counters for the SpecServer. Unlike RegionStats (owned by
/// the single-threaded runtime and mutated only under the server's
/// specialization lock), these are touched on every client dispatch, so
/// every field is a relaxed atomic. snapshot() flattens them into plain
/// integers for reporting.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_SERVER_SERVERSTATS_H
#define DYC_SERVER_SERVERSTATS_H

#include <atomic>
#include <cstdint>
#include <string>

namespace dyc {
namespace server {

/// Plain-integer copy of the counters at one instant.
struct ServerStatsSnapshot {
  uint64_t Dispatches = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t Fallbacks = 0;      ///< misses served by the static path (total)
  /// Fallbacks split by cause: the miss joined (or started) a compile
  /// that is still in flight, vs. no compile exists for it — the job was
  /// refused (shutdown) or, under tiering, the key has not reached the
  /// hot tier. InFlight + Failed + NotRequested == Fallbacks.
  uint64_t FallbacksInFlight = 0;
  uint64_t FallbacksFailed = 0;
  uint64_t FallbacksNotRequested = 0; ///< tiered cold/warm executions
  uint64_t JobsEnqueued = 0;
  uint64_t JobsCoalesced = 0;  ///< misses that joined an in-flight job
  uint64_t InlineSpecs = 0;    ///< nested misses specialized on a worker
  uint64_t SpecRuns = 0;       ///< generating-extension invocations
  uint64_t Evictions = 0;      ///< capacity-manager evictions
  uint64_t ChainsCreated = 0;
  uint64_t ChainsCollected = 0; ///< evicted chains freed after draining
  uint64_t SnapshotsRetired = 0;
  uint64_t SnapshotsFreed = 0;
  /// Tiered execution (all filled by SpecServer::stats from its
  /// TierController; zero and unrendered when tiering is off).
  bool TierEnabled = false;
  uint64_t ColdExecs = 0;
  uint64_t WarmExecs = 0;
  uint64_t WarmPromotions = 0;
  uint64_t HotPromotions = 0;
  uint64_t HotInstalls = 0;
  uint64_t OsrEntries = 0;
  uint64_t OsrPolls = 0;
  /// Gauge, not a counter: submitted-but-unfinished compile jobs at the
  /// instant of the snapshot.
  uint64_t CompileQueueDepth = 0;
  /// Staged emit plans (filled by SpecServer::stats by summing the core's
  /// per-region counters under the specialization lock; zero and
  /// unrendered when the plan path is off).
  bool PlanEnabled = false;
  uint64_t PlanBuilds = 0;
  uint64_t PlanHits = 0;
  uint64_t PlanBytes = 0;
  /// Multi-tenancy (filled by SpecServer::stats / tenantStats when the
  /// server was built multi-tenant; zero and unrendered otherwise).
  bool MultiTenant = false;
  uint64_t Tenants = 0;        ///< gauge: tenants registered so far
  uint64_t DedupHits = 0;      ///< publications served from the chain store
  uint64_t QuotaRejections = 0; ///< misses refused by per-tenant admission
  uint64_t WarmHits = 0;       ///< adoptions of warm-start-loaded chains
  uint64_t StoreChains = 0;    ///< gauge: chains resident in the store
  /// Execution backend the server's core compiles through ("bytecode" /
  /// "template"); filled by SpecServer::stats, not by ServerStats itself.
  std::string Backend;

  std::string toString() const;
};

/// The live counters. Relaxed ordering throughout: these are statistics,
/// not synchronization; publication of code and cache state is ordered by
/// the cache's release stores and the specialization lock.
struct ServerStats {
  std::atomic<uint64_t> Dispatches{0};
  std::atomic<uint64_t> CacheHits{0};
  std::atomic<uint64_t> CacheMisses{0};
  std::atomic<uint64_t> Fallbacks{0};
  std::atomic<uint64_t> FallbacksInFlight{0};
  std::atomic<uint64_t> FallbacksFailed{0};
  std::atomic<uint64_t> FallbacksNotRequested{0};
  std::atomic<uint64_t> JobsEnqueued{0};
  std::atomic<uint64_t> JobsCoalesced{0};
  std::atomic<uint64_t> InlineSpecs{0};
  std::atomic<uint64_t> SpecRuns{0};
  std::atomic<uint64_t> Evictions{0};
  std::atomic<uint64_t> ChainsCreated{0};
  std::atomic<uint64_t> ChainsCollected{0};
  std::atomic<uint64_t> SnapshotsRetired{0};
  std::atomic<uint64_t> SnapshotsFreed{0};
  /// Multi-tenancy. On the server's global ServerStats these count actual
  /// events across all tenants; on a TenantState's ServerStats they count
  /// the tenant's own view (see server/Tenant.h for the two-ledger
  /// contract). Always zero on single-tenant servers.
  std::atomic<uint64_t> DedupHits{0};
  std::atomic<uint64_t> QuotaRejections{0};
  std::atomic<uint64_t> WarmHits{0};

  ServerStatsSnapshot snapshot() const;
};

} // namespace server
} // namespace dyc

#endif // DYC_SERVER_SERVERSTATS_H
