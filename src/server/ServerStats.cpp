//===- server/ServerStats.cpp ------------------------------------------------------===//

#include "server/ServerStats.h"

#include "support/Support.h"

namespace dyc {
namespace server {

ServerStatsSnapshot ServerStats::snapshot() const {
  ServerStatsSnapshot S;
  S.Dispatches = Dispatches.load(std::memory_order_relaxed);
  S.CacheHits = CacheHits.load(std::memory_order_relaxed);
  S.CacheMisses = CacheMisses.load(std::memory_order_relaxed);
  S.Fallbacks = Fallbacks.load(std::memory_order_relaxed);
  S.FallbacksInFlight = FallbacksInFlight.load(std::memory_order_relaxed);
  S.FallbacksFailed = FallbacksFailed.load(std::memory_order_relaxed);
  S.FallbacksNotRequested =
      FallbacksNotRequested.load(std::memory_order_relaxed);
  S.JobsEnqueued = JobsEnqueued.load(std::memory_order_relaxed);
  S.JobsCoalesced = JobsCoalesced.load(std::memory_order_relaxed);
  S.InlineSpecs = InlineSpecs.load(std::memory_order_relaxed);
  S.SpecRuns = SpecRuns.load(std::memory_order_relaxed);
  S.Evictions = Evictions.load(std::memory_order_relaxed);
  S.ChainsCreated = ChainsCreated.load(std::memory_order_relaxed);
  S.ChainsCollected = ChainsCollected.load(std::memory_order_relaxed);
  S.SnapshotsRetired = SnapshotsRetired.load(std::memory_order_relaxed);
  S.SnapshotsFreed = SnapshotsFreed.load(std::memory_order_relaxed);
  S.DedupHits = DedupHits.load(std::memory_order_relaxed);
  S.QuotaRejections = QuotaRejections.load(std::memory_order_relaxed);
  S.WarmHits = WarmHits.load(std::memory_order_relaxed);
  return S;
}

std::string ServerStatsSnapshot::toString() const {
  std::string S = formatString(
      "disp=%llu hit=%llu miss=%llu fallback=%llu enq=%llu coalesced=%llu "
      "inline=%llu runs=%llu evict=%llu chains=%llu collected=%llu "
      "snaps=%llu/%llu",
      (unsigned long long)Dispatches, (unsigned long long)CacheHits,
      (unsigned long long)CacheMisses, (unsigned long long)Fallbacks,
      (unsigned long long)JobsEnqueued, (unsigned long long)JobsCoalesced,
      (unsigned long long)InlineSpecs, (unsigned long long)SpecRuns,
      (unsigned long long)Evictions, (unsigned long long)ChainsCreated,
      (unsigned long long)ChainsCollected,
      (unsigned long long)SnapshotsFreed,
      (unsigned long long)SnapshotsRetired);
  if (FallbacksInFlight || FallbacksFailed || FallbacksNotRequested)
    S += formatString(" fb-inflight=%llu fb-failed=%llu fb-skip=%llu",
                      (unsigned long long)FallbacksInFlight,
                      (unsigned long long)FallbacksFailed,
                      (unsigned long long)FallbacksNotRequested);
  if (TierEnabled)
    S += formatString(
        " tier[cold=%llu warm=%llu warm-promo=%llu hot-promo=%llu "
        "hot-installs=%llu osr=%llu osr-polls=%llu qdepth=%llu]",
        (unsigned long long)ColdExecs, (unsigned long long)WarmExecs,
        (unsigned long long)WarmPromotions,
        (unsigned long long)HotPromotions, (unsigned long long)HotInstalls,
        (unsigned long long)OsrEntries, (unsigned long long)OsrPolls,
        (unsigned long long)CompileQueueDepth);
  if (PlanEnabled)
    S += formatString(" plan[builds=%llu hits=%llu bytes=%llu]",
                      (unsigned long long)PlanBuilds,
                      (unsigned long long)PlanHits,
                      (unsigned long long)PlanBytes);
  if (MultiTenant)
    S += formatString(
        " mt[tenants=%llu dedup=%llu quota-rej=%llu warm=%llu store=%llu]",
        (unsigned long long)Tenants, (unsigned long long)DedupHits,
        (unsigned long long)QuotaRejections, (unsigned long long)WarmHits,
        (unsigned long long)StoreChains);
  if (!Backend.empty())
    S += " backend=" + Backend;
  return S;
}

} // namespace server
} // namespace dyc
