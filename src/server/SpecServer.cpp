//===- server/SpecServer.cpp -------------------------------------------------------===//

#include "server/SpecServer.h"

#include "analysis/LoopInfo.h"
#include "bta/BTAnalysis.h"
#include "cogen/CompilerGenerator.h"

#include <chrono>

namespace dyc {
namespace server {

namespace {

/// Set while this thread is inside a specialization run. A nested miss
/// (the generating extension executing a static call that enters another
/// region) must specialize inline under the already-held recursive lock —
/// handing it to the worker pool could deadlock a full queue against the
/// very worker that is waiting.
thread_local bool InSpecWorkerFlag = false;

/// Per-thread retained-capacity scratch for dispatch-key composition: the
/// hit path composes the key and probes the snapshot without allocating.
thread_local SmallKeyBuf DispatchKeyScratch;

} // namespace

SpecServer::SpecServer(const ir::Module &M, const OptFlags &Flags,
                       ServerConfig Cfg)
    : M(M), Flags(Flags), Cfg(std::move(Cfg)),
      Core(M, Prog, Flags, this->Cfg.Budget), Queue(this->Cfg.QueueCapacity) {
  cogen::bindExternals(M, Prog);

  std::vector<bta::RegionInfo> Regions;
  for (size_t I = 0; I != M.numFunctions(); ++I) {
    Regions.push_back(
        bta::analyzeFunction(M.function(static_cast<int>(I)), M, Flags));
    Regions.back().FuncIdx = static_cast<int>(I);
  }
  AnnotatedOrdinal.assign(M.numFunctions(), -1);
  int Next = 0;
  for (size_t I = 0; I != M.numFunctions(); ++I)
    if (!Regions[I].Contexts.empty())
      AnnotatedOrdinal[I] = Next++;

  Lowered = cogen::lowerModule(M, Prog, /*WithRegions=*/true, Regions,
                               AnnotatedOrdinal);

  // Fallback program: the statically compiled module (annotations
  // ignored), lowered at a disjoint simulated address base so the two
  // programs' code never aliases in the I-cache model. Lowering preserves
  // IR register numbers, so a frame mid-flight in the dynamic lowering
  // can jump straight into this code at the region head.
  cogen::bindExternals(M, FallbackProg);
  FallbackProg.allocCodeAddr(1ull << 24);
  std::vector<bta::RegionInfo> Empty(M.numFunctions());
  std::vector<int> NoOrd(M.numFunctions(), -1);
  FallbackLowered =
      cogen::lowerModule(M, FallbackProg, /*WithRegions=*/false, Empty, NoOrd);

  for (size_t I = 0; I != M.numFunctions(); ++I) {
    if (AnnotatedOrdinal[I] < 0)
      continue;
    Core.addRegion(cogen::buildGenExt(M.function(static_cast<int>(I)), M,
                                      std::move(Regions[I]), Lowered[I],
                                      Flags));
  }

  PointBase.resize(Core.numRegions());
  for (size_t Ord = 0; Ord != Core.numRegions(); ++Ord) {
    PointBase[Ord] = Cache.numPoints();
    for (size_t P = 0; P != Core.numPromos(Ord); ++P) {
      const bta::PromoPoint &PP = Core.promo(Ord, P);
      Cache.addPoint(PP.Policy, PP.IndexKeyPos);
    }
  }

  // Tiering: the controller sizes its heat/counter banks to the region
  // count, and each region gets its loop heads resolved to fallback pcs
  // once, so arming OSR watches on a miss is just table walks.
  RegionLoopHeads.resize(Core.numRegions());
  if (Flags.Tier.Enabled) {
    Tier = std::make_unique<tier::TierController>(Flags.Tier,
                                                  Core.numRegions());
    for (size_t Ord = 0; Ord != Core.numRegions(); ++Ord) {
      int FuncIdx = Core.regionFuncIdx(static_cast<uint32_t>(Ord));
      const ir::Function &F = M.function(FuncIdx);
      analysis::CFG G(F);
      analysis::Dominators Dom(F, G);
      analysis::LoopInfo LI(F, G, Dom);
      const cogen::LoweredFunction &LF =
          FallbackLowered[static_cast<size_t>(FuncIdx)];
      for (const analysis::Loop &L : LI.loops())
        if (static_cast<size_t>(L.Header) < LF.BlockPC.size())
          RegionLoopHeads[Ord].emplace_back(L.Header, LF.BlockPC[L.Header]);
    }
  }

  SpecVM = std::make_unique<vm::VM>(Prog, this->Cfg.CM, this->Cfg.IC);
  SpecVM->Hook = this;
  // The specialization VM executes chains too (static calls at specialize
  // time dispatch again on the worker), so it joins the backend's
  // substrate like any client.
  Core.attachVM(*SpecVM);
  if (this->Cfg.MemoryImage)
    this->Cfg.MemoryImage(*SpecVM);

  unsigned N = this->Cfg.NumWorkers ? this->Cfg.NumWorkers : 1;
  Workers.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Workers.emplace_back(&SpecServer::workerLoop, this);
}

SpecServer::~SpecServer() {
  Queue.shutdown();
  for (std::thread &T : Workers)
    T.join();
}

std::unique_ptr<vm::VM> SpecServer::makeClientVM() {
  auto V = std::make_unique<vm::VM>(Prog, Cfg.CM, Cfg.IC);
  V->Hook = this;
  Core.attachVM(*V);
  if (Cfg.MemoryImage)
    Cfg.MemoryImage(*V);
  return V;
}

int SpecServer::regionOrdinalOf(const std::string &Name) const {
  int Idx = findFunction(Name);
  if (Idx < 0 || static_cast<size_t>(Idx) >= AnnotatedOrdinal.size())
    return -1;
  return AnnotatedOrdinal[static_cast<size_t>(Idx)];
}

vm::RuntimeHook::Target SpecServer::enterChain(const CacheRecord &Rec) {
  // Count the executor in before handing out the chain: the capacity
  // manager may evict it at any time, and collection waits for this
  // count — dropped again by onDynamicCodeExit — to drain.
  Rec.Chain->ActiveRefs.fetch_add(1, std::memory_order_acq_rel);
  return {&Rec.Chain->CO, Rec.EntryPC};
}

vm::RuntimeHook::Target
SpecServer::fallbackTarget(uint32_t Ord, const bta::PromoPoint &P,
                           std::vector<Word> &Regs,
                           const std::vector<Word> &BakedVals) {
  int FuncIdx = Core.regionFuncIdx(Ord);
  const cogen::LoweredFunction &LF =
      FallbackLowered[static_cast<size_t>(FuncIdx)];
  const vm::CodeObject &CO = FallbackProg.function(LF.VMIndex);
  if (Regs.size() < CO.NumRegs)
    Regs.resize(CO.NumRegs);
  // Complete the static state: key registers are already live in the
  // frame; baked values (earlier promotions' static values) are not —
  // transfer them. StaticIn at the region head is covered by the union.
  for (size_t I = 0; I != P.BakedRegs.size(); ++I)
    Regs[P.BakedRegs[I]] = I < BakedVals.size() ? BakedVals[I] : Word();
  assert(P.Block < LF.BlockPC.size() && "promo block missing from lowering");
  return {&CO, LF.BlockPC[P.Block]};
}

vm::RuntimeHook::Target SpecServer::dispatch(vm::VM &ClientVM,
                                             int64_t PointId,
                                             std::vector<Word> &Regs) {
  // Readers hold the gate shared for the whole dispatch so reclamation
  // (which try-locks it exclusively) can never free a snapshot or chain
  // out from under a probe.
  std::shared_lock<std::shared_mutex> Gate(DispatchGate);
  St.Dispatches.fetch_add(1, std::memory_order_relaxed);
  uint64_t Now = Tick.fetch_add(1, std::memory_order_relaxed) + 1;

  uint32_t Ord, PromoId;
  const runtime::DispatchSite *Site = nullptr;
  if (PointId >= 0) {
    Ord = static_cast<uint32_t>(PointId >> 16);
    PromoId = static_cast<uint32_t>(PointId & 0xffff);
  } else {
    // Interned sites are immutable and deque-backed, so the reference
    // stays valid without copying the site's baked values.
    const runtime::DispatchSite &S =
        Core.siteRef(static_cast<size_t>(-(PointId + 1)));
    Site = &S;
    Ord = S.RegionOrd;
    PromoId = S.PromoId;
  }
  const bta::PromoPoint &P = Core.promo(Ord, PromoId);
  size_t Point = PointBase[Ord] + PromoId;

  // Compose the cache key once into per-thread scratch: baked
  // specialize-time values, then the promoted registers. The hit path
  // runs allocation-free end to end; the miss path slices this buffer.
  SmallKeyBuf &KeyBuf = DispatchKeyScratch;
  KeyBuf.clear();
  size_t BakedWords = 0;
  if (Site) {
    KeyBuf.append(Site->BakedVals.data(), Site->BakedVals.size());
    BakedWords = KeyBuf.size();
  }
  for (ir::Reg Rg : P.KeyRegs)
    KeyBuf.push_back(Regs[Rg]);
  WordSpan Key = KeyBuf.span();

  ShardedCache::Lookup L = Cache.lookup(Point, Key);
  runtime::chargeDispatchCost(ClientVM, P.Policy, Key.size(), L.Probes);
  if (L.Rec) {
    St.CacheHits.fetch_add(1, std::memory_order_relaxed);
    L.Rec->Use->Hits.fetch_add(1, std::memory_order_relaxed);
    L.Rec->Use->LastUse.store(Now, std::memory_order_relaxed);
    L.Rec->Use->RefBit.store(true, std::memory_order_release);
    return enterChain(*L.Rec);
  }
  St.CacheMisses.fetch_add(1, std::memory_order_relaxed);

  // Materialize owned copies before anything that can re-enter dispatch
  // on this thread (inline nested specialization recomposes the scratch)
  // or outlive this frame (the queued job).
  std::vector<Word> Baked(Key.Data, Key.Data + BakedWords);
  std::vector<Word> KeyVec(Key.begin(), Key.end());
  std::vector<Word> KeyVals(Key.Data + BakedWords, Key.end());

  if (InSpecWorkerFlag) {
    // Nested miss during a specialization run: specialize inline on this
    // thread (the recursive lock is already held).
    St.InlineSpecs.fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<CacheRecord> Rec =
        specializeAndPublish(Ord, PromoId, Point, KeyVec, Baked, KeyVals);
    return enterChain(*Rec);
  }

  // Tier classification. Without tiering every miss is "hot" (the eager
  // behavior); with it, cold and warm misses run the generic code and
  // request nothing — only hot misses create compile work. Tiering
  // changes only *when* specialization happens: the executed code and the
  // per-dispatch simulated charges are tier-invariant.
  bool Hot = true, ColdInterp = false;
  if (Tier) {
    tier::TierDecision D = Tier->onMiss(Ord);
    Hot = D.Compile;
    ColdInterp = D.Interpret;
  }

  // Backpressure on the background path: once the queue holds enough
  // in-flight compiles, a hot miss skips submitting and retries on a
  // later miss. (Synchronous installs never skip — they must block.)
  bool WantJob = Hot;
  if (Tier && WantJob && !Tier->policy().SyncInstall &&
      Tier->policy().MaxInFlightCompiles != 0 &&
      Queue.pending() >= Tier->policy().MaxInFlightCompiles)
    WantJob = false;
  // A hot async miss arms OSR watches after the fallback decision, and
  // the watch records keep the full cache key — so that path copies the
  // key into the job instead of moving it.
  bool ArmOsr = Tier && Hot && !Tier->policy().SyncInstall;

  std::shared_ptr<SpecJob> Shared;
  if (WantJob) {
    auto Job = std::make_unique<SpecJob>();
    Job->Id.Point = Point;
    if (ArmOsr)
      Job->Id.Key = KeyVec;
    else
      Job->Id.Key = std::move(KeyVec);
    Job->RegionOrd = Ord;
    Job->PromoId = PromoId;
    Job->BakedVals = Baked; // copied: the fallback path below reads it too
    Job->KeyVals = std::move(KeyVals);
    bool Created = false;
    Shared = Queue.submit(std::move(Job), Created);
    if (Created) {
      St.JobsEnqueued.fetch_add(1, std::memory_order_relaxed);
    } else if (Shared) {
      St.JobsCoalesced.fetch_add(1, std::memory_order_relaxed);
    }
  }

  bool CompileDead = false;
  bool BlockNow = (!Tier && Cfg.OnMiss == MissPolicy::Block) ||
                  (Tier && Hot && Tier->policy().SyncInstall);
  if (Shared && BlockNow) {
    // The insert itself is work done on the client's behalf; the
    // specialization cycles land on the server's VM.
    ClientVM.chargeDynComp(ClientVM.costModel().SpecCacheInsert);
    std::shared_ptr<CacheRecord> Rec = Shared->Future.get();
    if (Rec) {
      Rec->Use->Hits.fetch_add(1, std::memory_order_relaxed);
      Rec->Use->LastUse.store(Now, std::memory_order_relaxed);
      Rec->Use->RefBit.store(true, std::memory_order_release);
      return enterChain(*Rec);
    }
    CompileDead = true; // job abandoned at shutdown
  }
  // Fallback policy, tiered cold/warm execution, queue shutdown, or a job
  // abandoned at shutdown: run the statically compiled region.
  St.Fallbacks.fetch_add(1, std::memory_order_relaxed);
  if (!WantJob)
    St.FallbacksNotRequested.fetch_add(1, std::memory_order_relaxed);
  else if (Shared && !CompileDead)
    St.FallbacksInFlight.fetch_add(1, std::memory_order_relaxed);
  else
    St.FallbacksFailed.fetch_add(1, std::memory_order_relaxed);

  // Hot async miss: arm back-edge watches so the frame can pick up the
  // chain mid-loop once the background compile lands. (Armed even when
  // backpressure skipped the submit — an earlier job may still land.)
  if (ArmOsr)
    armOsrWatches(ClientVM, Ord, PromoId, Point, KeyVec);

  Target T = fallbackTarget(Ord, P, Regs, Baked);
  T.Interpret = ColdInterp;
  return T;
}

void SpecServer::armOsrWatches(vm::VM &ClientVM, uint32_t Ord,
                               uint32_t PromoId, size_t Point,
                               const std::vector<Word> &Key) {
  const std::vector<std::pair<ir::BlockId, uint32_t>> &Heads =
      RegionLoopHeads[Ord];
  if (Heads.empty())
    return;
  int FuncIdx = Core.regionFuncIdx(Ord);
  const cogen::LoweredFunction &LF =
      FallbackLowered[static_cast<size_t>(FuncIdx)];
  uint64_t Base = FallbackProg.function(LF.VMIndex).BaseAddr;
  std::lock_guard<std::mutex> Lock(OsrMutex);
  for (const std::pair<ir::BlockId, uint32_t> &HP : Heads) {
    uint64_t Token = OsrTokens.fetch_add(1, std::memory_order_relaxed) + 1;
    OsrRecord R;
    R.Point = Point;
    R.Key = Key;
    R.Ord = Ord;
    R.PromoId = PromoId;
    R.HeadBlock = HP.first;
    OsrTable.emplace(Token, std::move(R));
    ClientVM.armOsr(Base, HP.second, Token);
  }
}

vm::RuntimeHook::Target SpecServer::onOsrPoll(vm::VM &ClientVM,
                                              uint64_t Token,
                                              std::vector<Word> &Regs) {
  // Same reader discipline as dispatch: the gate keeps reclamation from
  // freeing the snapshot or chain under the probe. Lock order matches
  // dispatch/armOsrWatches: gate, then OsrMutex.
  std::shared_lock<std::shared_mutex> Gate(DispatchGate);
  std::lock_guard<std::mutex> Lock(OsrMutex);
  auto It = OsrTable.find(Token);
  if (It == OsrTable.end())
    return {};
  OsrRecord &R = It->second;
  R.Polls++;
  if (Tier) {
    Tier->noteOsrPoll(R.Ord);
    if (R.Polls < static_cast<uint64_t>(Tier->policy().OsrMinPolls))
      return {};
  }
  ShardedCache::Lookup L = Cache.lookup(R.Point, R.Key);
  if (!L.Rec)
    return {}; // compile not landed yet; keep spinning
  auto EIt = L.Rec->Chain->OsrEntries.find(R.HeadBlock);
  if (EIt == L.Rec->Chain->OsrEntries.end()) {
    // The chain has no residual pc for this head (the loop unrolled
    // away); this watch can never fire — disarm it. disarmOsr does not
    // notify onOsrDrop, so erasing here is the only cleanup.
    ClientVM.disarmOsr(Token);
    OsrTable.erase(It);
    return {};
  }
  // A mid-loop transfer is a dispatch the frame did not have to take:
  // charge the probe exactly as the trap path would have, and keep the
  // usage/executor books identical to enterChain. Not counted in
  // Dispatches/CacheHits — those mean trap dispatches.
  const bta::PromoPoint &P = Core.promo(R.Ord, R.PromoId);
  runtime::chargeDispatchCost(ClientVM, P.Policy, R.Key.size(), L.Probes);
  uint64_t Now = Tick.fetch_add(1, std::memory_order_relaxed) + 1;
  L.Rec->Use->Hits.fetch_add(1, std::memory_order_relaxed);
  L.Rec->Use->LastUse.store(Now, std::memory_order_relaxed);
  L.Rec->Use->RefBit.store(true, std::memory_order_release);
  L.Rec->Chain->ActiveRefs.fetch_add(1, std::memory_order_acq_rel);
  if (Regs.size() < L.Rec->Chain->CO.NumRegs)
    Regs.resize(L.Rec->Chain->CO.NumRegs);
  if (Tier)
    Tier->noteOsrEntry(R.Ord);
  Target T;
  T.CO = &L.Rec->Chain->CO;
  T.PC = EIt->second;
  OsrTable.erase(It);
  return T;
}

void SpecServer::onOsrDrop(vm::VM &, uint64_t Token) {
  std::lock_guard<std::mutex> Lock(OsrMutex);
  OsrTable.erase(Token);
}

std::shared_ptr<CacheRecord>
SpecServer::specializeAndPublish(uint32_t Ord, uint32_t PromoId, size_t Point,
                                 const std::vector<Word> &Key,
                                 const std::vector<Word> &BakedVals,
                                 const std::vector<Word> &KeyVals) {
  std::lock_guard<std::recursive_mutex> Lock(SpecMutex);
  // Recheck under the lock: the key may have been published while this
  // request sat in the queue (or by a concurrent nested run).
  if (std::shared_ptr<CacheRecord> Existing = Cache.findRecord(Point, Key))
    return Existing;

  bool Prev = InSpecWorkerFlag;
  InSpecWorkerFlag = true;
  std::shared_ptr<CacheRecord> Rec =
      Core.specializeInto(Ord, *SpecVM, PromoId, Key, BakedVals, KeyVals);
  InSpecWorkerFlag = Prev;
  St.SpecRuns.fetch_add(1, std::memory_order_relaxed);
  St.ChainsCreated.fetch_add(1, std::memory_order_relaxed);
  Rec->Point = Point; // server points are global across regions

  const bta::PromoPoint &P = Core.promo(Ord, PromoId);
  for (const auto &D : Cache.insert(Rec)) {
    // One-slot (or indexed same-slot) replacement displaced an older
    // version; its chain is now unreachable from the cache.
    Core.displaced(D, P.Policy);
  }
  // Account the new chain against its region's budget; CLOCK victims are
  // unpublished from the sharded cache before their chain is marked
  // evicted, and the core bumps the victim region's Evictions counter.
  Core.admit(Rec, [this](const CacheRecord &Victim) {
    Cache.erase(&Victim);
    St.Evictions.fetch_add(1, std::memory_order_relaxed);
  });
  if (Tier)
    Tier->noteInstall(Ord);
  return Rec;
}

std::string SpecServer::disassembleRegion(size_t Ordinal) const {
  std::lock_guard<std::recursive_mutex> Lock(SpecMutex);
  return Core.disassembleRegion(Ordinal);
}

void SpecServer::workerLoop() {
  while (std::shared_ptr<SpecJob> Job = Queue.pop()) {
    // Test hook: hold the popped job until released, so tests can pin a
    // compile in flight and observe fallback/OSR behavior.
    if (Cfg.HoldCompiles)
      while (Cfg.HoldCompiles->load(std::memory_order_acquire))
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    std::shared_ptr<CacheRecord> Rec =
        specializeAndPublish(Job->RegionOrd, Job->PromoId, Job->Id.Point,
                             Job->Id.Key, Job->BakedVals, Job->KeyVals);
    // Publish before unregistering: a misser either finds the job
    // in-flight (and joins this future) or misses it and re-probes the
    // cache, which already holds the record.
    Job->Result.set_value(Rec);
    Queue.finish(Job->Id);
    {
      std::lock_guard<std::mutex> L(DrainMutex);
    }
    DrainCV.notify_all();
  }
}

void SpecServer::drain() {
  std::unique_lock<std::mutex> Lock(DrainMutex);
  DrainCV.wait(Lock, [&] { return Queue.pending() == 0; });
}

bool SpecServer::trimQuiescent(size_t *SnapshotsFreed, size_t *ChainsFreed) {
  std::unique_lock<std::shared_mutex> Gate(DispatchGate, std::try_to_lock);
  if (!Gate.owns_lock())
    return false; // dispatches in flight; reclamation must wait
  size_t Snaps = Cache.trimGraveyard();
  size_t Freed = Core.collectChains();
  St.SnapshotsFreed.fetch_add(Snaps, std::memory_order_relaxed);
  St.ChainsCollected.fetch_add(Freed, std::memory_order_relaxed);
  if (SnapshotsFreed)
    *SnapshotsFreed = Snaps;
  if (ChainsFreed)
    *ChainsFreed = Freed;
  return true;
}

void SpecServer::onDynamicCodeExit(vm::VM &, const vm::CodeObject *CO) {
  Core.releaseExecutor(CO);
}

runtime::RegionStats SpecServer::regionStats(size_t Ordinal) const {
  std::lock_guard<std::recursive_mutex> Lock(SpecMutex);
  runtime::RegionStats RS = Core.stats(Ordinal);
  if (Tier) {
    RS.TierEnabled = true;
    tier::TierCounters T = Tier->counters(Ordinal);
    RS.ColdExecs = T.ColdExecs;
    RS.WarmExecs = T.WarmExecs;
    RS.WarmPromotions = T.WarmPromotions;
    RS.HotPromotions = T.HotPromotions;
    RS.HotInstalls = T.HotInstalls;
    RS.OsrEntries = T.OsrEntries;
    RS.OsrPolls = T.OsrPolls;
  }
  return RS;
}

size_t SpecServer::residentEntries(size_t Ordinal) const {
  std::lock_guard<std::recursive_mutex> Lock(SpecMutex);
  return Core.residentEntries(Ordinal);
}

uint64_t SpecServer::residentInstrs(size_t Ordinal) const {
  std::lock_guard<std::recursive_mutex> Lock(SpecMutex);
  return Core.residentInstrs(Ordinal);
}

uint64_t SpecServer::specOverheadCycles() const {
  std::lock_guard<std::recursive_mutex> Lock(SpecMutex);
  return SpecVM->dynCompCycles();
}

} // namespace server
} // namespace dyc
