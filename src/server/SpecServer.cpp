//===- server/SpecServer.cpp -------------------------------------------------------===//

#include "server/SpecServer.h"

#include "analysis/LoopInfo.h"
#include "bta/BTAnalysis.h"
#include "cogen/CompilerGenerator.h"

#include <chrono>
#include <cstdio>

namespace dyc {
namespace server {

namespace {

/// Set while this thread is inside a specialization run. A nested miss
/// (the generating extension executing a static call that enters another
/// region) must specialize inline under the already-held recursive lock —
/// handing it to the worker pool could deadlock a full queue against the
/// very worker that is waiting.
thread_local bool InSpecWorkerFlag = false;

/// The tenant a specialization run is publishing for: a nested miss on
/// the server's own VM (whose Tenant id is meaningless) must publish into
/// the *requesting* tenant's cache view, exactly as a dedicated server's
/// nested miss would publish into its only cache.
thread_local TenantState *CurrentSpecTenant = nullptr;

/// Per-thread retained-capacity scratch for dispatch-key composition: the
/// hit path composes the key and probes the snapshot without allocating.
thread_local SmallKeyBuf DispatchKeyScratch;

/// FNV-1a over a bytecode stream — the "region version" half of the chain
/// store's content address and of the warm-start module fingerprint.
uint64_t hashCode(const std::vector<vm::Instr> &Code) {
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 1099511628211ull;
  };
  for (const vm::Instr &I : Code) {
    Mix(static_cast<uint64_t>(I.Opcode));
    Mix((static_cast<uint64_t>(I.A) << 42) ^
        (static_cast<uint64_t>(I.B) << 21) ^ I.C);
    Mix(static_cast<uint64_t>(I.Imm));
  }
  return H;
}

// Warm-start file primitives: fixed-width little-endian fields through
// stdio. The format is process-local (a cache is reloaded on the machine
// that wrote it), so host byte order is fine; the header's sizeof(Instr)
// check rejects files from a differently-packed build.
constexpr uint64_t WarmMagic = 0x314d524157435944ull; // "DYCWARM1"
constexpr uint32_t WarmFormatVersion = 1;

bool writeU32(FILE *F, uint32_t V) { return std::fwrite(&V, 4, 1, F) == 1; }
bool writeU64(FILE *F, uint64_t V) { return std::fwrite(&V, 8, 1, F) == 1; }
bool readU32(FILE *F, uint32_t &V) { return std::fread(&V, 4, 1, F) == 1; }
bool readU64(FILE *F, uint64_t &V) { return std::fread(&V, 8, 1, F) == 1; }

bool writeWords(FILE *F, const std::vector<Word> &Ws) {
  if (!writeU32(F, static_cast<uint32_t>(Ws.size())))
    return false;
  for (const Word &W : Ws)
    if (!writeU64(F, W.Bits))
      return false;
  return true;
}

bool readWords(FILE *F, std::vector<Word> &Ws) {
  uint32_t N;
  if (!readU32(F, N) || N > (1u << 20))
    return false;
  Ws.resize(N);
  for (Word &W : Ws)
    if (!readU64(F, W.Bits))
      return false;
  return true;
}

template <typename K, typename V>
bool writePairMap(FILE *F, const std::map<K, V> &M) {
  if (!writeU32(F, static_cast<uint32_t>(M.size())))
    return false;
  for (const auto &KV : M)
    if (!writeU32(F, static_cast<uint32_t>(KV.first)) ||
        !writeU32(F, static_cast<uint32_t>(KV.second)))
      return false;
  return true;
}

template <typename K, typename V>
bool readPairMap(FILE *F, std::map<K, V> &M) {
  uint32_t N;
  if (!readU32(F, N) || N > (1u << 24))
    return false;
  for (uint32_t I = 0; I != N; ++I) {
    uint32_t A, B;
    if (!readU32(F, A) || !readU32(F, B))
      return false;
    M.emplace(static_cast<K>(A), static_cast<V>(B));
  }
  return true;
}

} // namespace

SpecServer::SpecServer(const ir::Module &M, const OptFlags &Flags,
                       ServerConfig Cfg)
    : M(M), Flags(Flags), Cfg(std::move(Cfg)),
      Core(M, Prog, Flags, this->Cfg.Budget), Queue(this->Cfg.QueueCapacity) {
  // Tiering does not compose with multi-tenancy (per-tenant heat parity is
  // future work): drop it so no controller is built below. The core never
  // reads Tier, so its copy of the flags is unaffected.
  if (this->Cfg.MultiTenant)
    this->Flags.Tier.Enabled = false;

  cogen::bindExternals(M, Prog);

  std::vector<bta::RegionInfo> Regions;
  for (size_t I = 0; I != M.numFunctions(); ++I) {
    Regions.push_back(
        bta::analyzeFunction(M.function(static_cast<int>(I)), M, Flags));
    Regions.back().FuncIdx = static_cast<int>(I);
  }
  AnnotatedOrdinal.assign(M.numFunctions(), -1);
  int Next = 0;
  for (size_t I = 0; I != M.numFunctions(); ++I)
    if (!Regions[I].Contexts.empty())
      AnnotatedOrdinal[I] = Next++;

  Lowered = cogen::lowerModule(M, Prog, /*WithRegions=*/true, Regions,
                               AnnotatedOrdinal);

  // Fallback program: the statically compiled module (annotations
  // ignored), lowered at a disjoint simulated address base so the two
  // programs' code never aliases in the I-cache model. Lowering preserves
  // IR register numbers, so a frame mid-flight in the dynamic lowering
  // can jump straight into this code at the region head.
  cogen::bindExternals(M, FallbackProg);
  FallbackProg.allocCodeAddr(1ull << 24);
  std::vector<bta::RegionInfo> Empty(M.numFunctions());
  std::vector<int> NoOrd(M.numFunctions(), -1);
  FallbackLowered =
      cogen::lowerModule(M, FallbackProg, /*WithRegions=*/false, Empty, NoOrd);

  for (size_t I = 0; I != M.numFunctions(); ++I) {
    if (AnnotatedOrdinal[I] < 0)
      continue;
    Core.addRegion(cogen::buildGenExt(M.function(static_cast<int>(I)), M,
                                      std::move(Regions[I]), Lowered[I],
                                      Flags));
  }

  PointBase.resize(Core.numRegions());
  for (size_t Ord = 0; Ord != Core.numRegions(); ++Ord) {
    PointBase[Ord] = Cache.numPoints();
    for (size_t P = 0; P != Core.numPromos(Ord); ++P) {
      const bta::PromoPoint &PP = Core.promo(Ord, P);
      Cache.addPoint(PP.Policy, PP.IndexKeyPos);
    }
  }

  // Multi-tenant dedup identity: a per-region content hash (the "region
  // version" of the chain store's content address) over the generic
  // lowered region code plus its shape, and the OptFlags fingerprint.
  // Both are fixed for the server's lifetime and validate warm-start
  // files against a changed module or changed optimization settings.
  FlagsFingerprint = this->Flags.fingerprint();
  RegionContentHash.resize(Core.numRegions());
  for (size_t I = 0; I != M.numFunctions(); ++I) {
    int Ord = AnnotatedOrdinal[I];
    if (Ord < 0)
      continue;
    const vm::CodeObject &CO = Prog.function(Lowered[I].VMIndex);
    uint64_t H = hashCode(CO.Code);
    H = (H ^ CO.NumRegs) * 1099511628211ull;
    H = (H ^ Core.numPromos(static_cast<size_t>(Ord))) * 1099511628211ull;
    RegionContentHash[static_cast<size_t>(Ord)] = H;
  }

  // Tiering: the controller sizes its heat/counter banks to the region
  // count, and each region gets its loop heads resolved to fallback pcs
  // once, so arming OSR watches on a miss is just table walks.
  RegionLoopHeads.resize(Core.numRegions());
  if (this->Flags.Tier.Enabled) {
    Tier = std::make_unique<tier::TierController>(Flags.Tier,
                                                  Core.numRegions());
    for (size_t Ord = 0; Ord != Core.numRegions(); ++Ord) {
      int FuncIdx = Core.regionFuncIdx(static_cast<uint32_t>(Ord));
      const ir::Function &F = M.function(FuncIdx);
      analysis::CFG G(F);
      analysis::Dominators Dom(F, G);
      analysis::LoopInfo LI(F, G, Dom);
      const cogen::LoweredFunction &LF =
          FallbackLowered[static_cast<size_t>(FuncIdx)];
      for (const analysis::Loop &L : LI.loops())
        if (static_cast<size_t>(L.Header) < LF.BlockPC.size())
          RegionLoopHeads[Ord].emplace_back(L.Header, LF.BlockPC[L.Header]);
    }
  }

  SpecVM = std::make_unique<vm::VM>(Prog, this->Cfg.CM, this->Cfg.IC);
  SpecVM->Hook = this;
  // The specialization VM executes chains too (static calls at specialize
  // time dispatch again on the worker), so it joins the backend's
  // substrate like any client.
  Core.attachVM(*SpecVM);
  if (this->Cfg.MemoryImage)
    this->Cfg.MemoryImage(*SpecVM);

  // Warm start before workers exist: the site table and chain store are
  // rebuilt at their original indices/ordinals while nothing dispatches.
  if (this->Cfg.MultiTenant && !this->Cfg.WarmStartPath.empty())
    loadCacheFrom(this->Cfg.WarmStartPath);

  unsigned N = this->Cfg.NumWorkers ? this->Cfg.NumWorkers : 1;
  Workers.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Workers.emplace_back(&SpecServer::workerLoop, this);
}

SpecServer::~SpecServer() {
  Queue.shutdown();
  for (std::thread &T : Workers)
    T.join();
  // Workers are gone and clients must be gone before the server (they hold
  // its hook), so the store is quiescent: serialize it for the next start.
  if (Cfg.MultiTenant && !Cfg.WarmStartPath.empty())
    saveCacheTo(Cfg.WarmStartPath);
}

std::unique_ptr<vm::VM> SpecServer::makeClientVM(uint32_t TenantId) {
  auto V = std::make_unique<vm::VM>(Prog, Cfg.CM, Cfg.IC);
  V->Hook = this;
  V->Tenant = TenantId;
  Core.attachVM(*V);
  if (Cfg.MemoryImage)
    Cfg.MemoryImage(*V);
  // Register the tenant here, before the VM's first dispatch can name it:
  // the dispatch path then only ever resolves tenants under a shared lock.
  if (Cfg.MultiTenant)
    tenantState(TenantId);
  return V;
}

int SpecServer::regionOrdinalOf(const std::string &Name) const {
  int Idx = findFunction(Name);
  if (Idx < 0 || static_cast<size_t>(Idx) >= AnnotatedOrdinal.size())
    return -1;
  return AnnotatedOrdinal[static_cast<size_t>(Idx)];
}

vm::RuntimeHook::Target SpecServer::enterChain(const CacheRecord &Rec,
                                               vm::VM *ClientVM) {
  // An adopted record's chain must look freshly compiled to the client
  // that takes it: if this client executed the same physical chain in an
  // earlier residency, stale I-cache lines would hit where a dedicated
  // server's fresh compile (at a never-used address) would miss.
  if (ClientVM && Rec.Use &&
      Rec.Use->ColdEntryPending.load(std::memory_order_relaxed) &&
      Rec.Use->ColdEntryPending.exchange(false, std::memory_order_acq_rel))
    ClientVM->icache().invalidateRange(
        Rec.Chain->CO.BaseAddr,
        static_cast<uint64_t>(Rec.Chain->CO.Code.size()) * 4);
  // Count the executor in before handing out the chain: the capacity
  // manager may evict it at any time, and collection waits for this
  // count — dropped again by onDynamicCodeExit — to drain.
  Rec.Chain->ActiveRefs.fetch_add(1, std::memory_order_acq_rel);
  return {&Rec.Chain->CO, Rec.EntryPC};
}

vm::RuntimeHook::Target
SpecServer::fallbackTarget(uint32_t Ord, const bta::PromoPoint &P,
                           std::vector<Word> &Regs,
                           const std::vector<Word> &BakedVals) {
  int FuncIdx = Core.regionFuncIdx(Ord);
  const cogen::LoweredFunction &LF =
      FallbackLowered[static_cast<size_t>(FuncIdx)];
  const vm::CodeObject &CO = FallbackProg.function(LF.VMIndex);
  if (Regs.size() < CO.NumRegs)
    Regs.resize(CO.NumRegs);
  // Complete the static state: key registers are already live in the
  // frame; baked values (earlier promotions' static values) are not —
  // transfer them. StaticIn at the region head is covered by the union.
  for (size_t I = 0; I != P.BakedRegs.size(); ++I)
    Regs[P.BakedRegs[I]] = I < BakedVals.size() ? BakedVals[I] : Word();
  assert(P.Block < LF.BlockPC.size() && "promo block missing from lowering");
  return {&CO, LF.BlockPC[P.Block]};
}

vm::RuntimeHook::Target SpecServer::dispatch(vm::VM &ClientVM,
                                             int64_t PointId,
                                             std::vector<Word> &Regs) {
  // Readers hold the gate shared for the whole dispatch so reclamation
  // (which try-locks it exclusively) can never free a snapshot or chain
  // out from under a probe.
  std::shared_lock<std::shared_mutex> Gate(DispatchGate);
  St.Dispatches.fetch_add(1, std::memory_order_relaxed);
  uint64_t Now = Tick.fetch_add(1, std::memory_order_relaxed) + 1;

  uint32_t Ord, PromoId;
  const runtime::DispatchSite *Site = nullptr;
  if (PointId >= 0) {
    Ord = static_cast<uint32_t>(PointId >> 16);
    PromoId = static_cast<uint32_t>(PointId & 0xffff);
  } else {
    // Interned sites are immutable and deque-backed, so the reference
    // stays valid without copying the site's baked values.
    const runtime::DispatchSite &S =
        Core.siteRef(static_cast<size_t>(-(PointId + 1)));
    Site = &S;
    Ord = S.RegionOrd;
    PromoId = S.PromoId;
  }
  const bta::PromoPoint &P = Core.promo(Ord, PromoId);
  size_t Point = PointBase[Ord] + PromoId;

  // Compose the cache key once into per-thread scratch: baked
  // specialize-time values, then the promoted registers. The hit path
  // runs allocation-free end to end; the miss path slices this buffer.
  SmallKeyBuf &KeyBuf = DispatchKeyScratch;
  KeyBuf.clear();
  size_t BakedWords = 0;
  if (Site) {
    KeyBuf.append(Site->BakedVals.data(), Site->BakedVals.size());
    BakedWords = KeyBuf.size();
  }
  for (ir::Reg Rg : P.KeyRegs)
    KeyBuf.push_back(Regs[Rg]);
  WordSpan Key = KeyBuf.span();

  if (Cfg.MultiTenant) {
    // Nested dispatches run on the server's own VM, whose Tenant id means
    // nothing — the requesting tenant rides the specialization thread.
    TenantState *TS =
        InSpecWorkerFlag ? CurrentSpecTenant : findTenant(ClientVM.Tenant);
    assert(TS && "dispatch from a VM of an unregistered tenant");
    return dispatchTenant(ClientVM, *TS, Ord, PromoId, P, Point, Key,
                          BakedWords, Regs, Now);
  }

  ShardedCache::Lookup L = Cache.lookup(Point, Key);
  runtime::chargeDispatchCost(ClientVM, P.Policy, Key.size(), L.Probes);
  if (L.Rec) {
    St.CacheHits.fetch_add(1, std::memory_order_relaxed);
    L.Rec->Use->Hits.fetch_add(1, std::memory_order_relaxed);
    L.Rec->Use->LastUse.store(Now, std::memory_order_relaxed);
    L.Rec->Use->RefBit.store(true, std::memory_order_release);
    return enterChain(*L.Rec);
  }
  St.CacheMisses.fetch_add(1, std::memory_order_relaxed);

  // Materialize owned copies before anything that can re-enter dispatch
  // on this thread (inline nested specialization recomposes the scratch)
  // or outlive this frame (the queued job).
  std::vector<Word> Baked(Key.Data, Key.Data + BakedWords);
  std::vector<Word> KeyVec(Key.begin(), Key.end());
  std::vector<Word> KeyVals(Key.Data + BakedWords, Key.end());

  if (InSpecWorkerFlag) {
    // Nested miss during a specialization run: specialize inline on this
    // thread (the recursive lock is already held).
    St.InlineSpecs.fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<CacheRecord> Rec =
        specializeAndPublish(Ord, PromoId, Point, KeyVec, Baked, KeyVals);
    return enterChain(*Rec);
  }

  // Tier classification. Without tiering every miss is "hot" (the eager
  // behavior); with it, cold and warm misses run the generic code and
  // request nothing — only hot misses create compile work. Tiering
  // changes only *when* specialization happens: the executed code and the
  // per-dispatch simulated charges are tier-invariant.
  bool Hot = true, ColdInterp = false;
  if (Tier) {
    tier::TierDecision D = Tier->onMiss(Ord);
    Hot = D.Compile;
    ColdInterp = D.Interpret;
  }

  // Backpressure on the background path: once the queue holds enough
  // in-flight compiles, a hot miss skips submitting and retries on a
  // later miss. (Synchronous installs never skip — they must block.)
  bool WantJob = Hot;
  if (Tier && WantJob && !Tier->policy().SyncInstall &&
      Tier->policy().MaxInFlightCompiles != 0 &&
      Queue.pending() >= Tier->policy().MaxInFlightCompiles)
    WantJob = false;
  // A hot async miss arms OSR watches after the fallback decision, and
  // the watch records keep the full cache key — so that path copies the
  // key into the job instead of moving it.
  bool ArmOsr = Tier && Hot && !Tier->policy().SyncInstall;

  std::shared_ptr<SpecJob> Shared;
  if (WantJob) {
    auto Job = std::make_unique<SpecJob>();
    Job->Id.Point = Point;
    if (ArmOsr)
      Job->Id.Key = KeyVec;
    else
      Job->Id.Key = std::move(KeyVec);
    Job->RegionOrd = Ord;
    Job->PromoId = PromoId;
    Job->BakedVals = Baked; // copied: the fallback path below reads it too
    Job->KeyVals = std::move(KeyVals);
    bool Created = false;
    Shared = Queue.submit(std::move(Job), Created);
    if (Created) {
      St.JobsEnqueued.fetch_add(1, std::memory_order_relaxed);
    } else if (Shared) {
      St.JobsCoalesced.fetch_add(1, std::memory_order_relaxed);
    }
  }

  bool CompileDead = false;
  bool BlockNow = (!Tier && Cfg.OnMiss == MissPolicy::Block) ||
                  (Tier && Hot && Tier->policy().SyncInstall);
  if (Shared && BlockNow) {
    // The insert itself is work done on the client's behalf; the
    // specialization cycles land on the server's VM.
    ClientVM.chargeDynComp(ClientVM.costModel().SpecCacheInsert);
    std::shared_ptr<CacheRecord> Rec = Shared->Future.get();
    if (Rec) {
      Rec->Use->Hits.fetch_add(1, std::memory_order_relaxed);
      Rec->Use->LastUse.store(Now, std::memory_order_relaxed);
      Rec->Use->RefBit.store(true, std::memory_order_release);
      return enterChain(*Rec);
    }
    CompileDead = true; // job abandoned at shutdown
  }
  // Fallback policy, tiered cold/warm execution, queue shutdown, or a job
  // abandoned at shutdown: run the statically compiled region.
  St.Fallbacks.fetch_add(1, std::memory_order_relaxed);
  if (!WantJob)
    St.FallbacksNotRequested.fetch_add(1, std::memory_order_relaxed);
  else if (Shared && !CompileDead)
    St.FallbacksInFlight.fetch_add(1, std::memory_order_relaxed);
  else
    St.FallbacksFailed.fetch_add(1, std::memory_order_relaxed);

  // Hot async miss: arm back-edge watches so the frame can pick up the
  // chain mid-loop once the background compile lands. (Armed even when
  // backpressure skipped the submit — an earlier job may still land.)
  if (ArmOsr)
    armOsrWatches(ClientVM, Ord, PromoId, Point, KeyVec);

  Target T = fallbackTarget(Ord, P, Regs, Baked);
  T.Interpret = ColdInterp;
  return T;
}

void SpecServer::armOsrWatches(vm::VM &ClientVM, uint32_t Ord,
                               uint32_t PromoId, size_t Point,
                               const std::vector<Word> &Key) {
  const std::vector<std::pair<ir::BlockId, uint32_t>> &Heads =
      RegionLoopHeads[Ord];
  if (Heads.empty())
    return;
  int FuncIdx = Core.regionFuncIdx(Ord);
  const cogen::LoweredFunction &LF =
      FallbackLowered[static_cast<size_t>(FuncIdx)];
  uint64_t Base = FallbackProg.function(LF.VMIndex).BaseAddr;
  std::lock_guard<std::mutex> Lock(OsrMutex);
  for (const std::pair<ir::BlockId, uint32_t> &HP : Heads) {
    uint64_t Token = OsrTokens.fetch_add(1, std::memory_order_relaxed) + 1;
    OsrRecord R;
    R.Point = Point;
    R.Key = Key;
    R.Ord = Ord;
    R.PromoId = PromoId;
    R.HeadBlock = HP.first;
    OsrTable.emplace(Token, std::move(R));
    ClientVM.armOsr(Base, HP.second, Token);
  }
}

vm::RuntimeHook::Target SpecServer::onOsrPoll(vm::VM &ClientVM,
                                              uint64_t Token,
                                              std::vector<Word> &Regs) {
  // Same reader discipline as dispatch: the gate keeps reclamation from
  // freeing the snapshot or chain under the probe. Lock order matches
  // dispatch/armOsrWatches: gate, then OsrMutex.
  std::shared_lock<std::shared_mutex> Gate(DispatchGate);
  std::lock_guard<std::mutex> Lock(OsrMutex);
  auto It = OsrTable.find(Token);
  if (It == OsrTable.end())
    return {};
  OsrRecord &R = It->second;
  R.Polls++;
  if (Tier) {
    Tier->noteOsrPoll(R.Ord);
    if (R.Polls < static_cast<uint64_t>(Tier->policy().OsrMinPolls))
      return {};
  }
  ShardedCache::Lookup L = Cache.lookup(R.Point, R.Key);
  if (!L.Rec)
    return {}; // compile not landed yet; keep spinning
  auto EIt = L.Rec->Chain->OsrEntries.find(R.HeadBlock);
  if (EIt == L.Rec->Chain->OsrEntries.end()) {
    // The chain has no residual pc for this head (the loop unrolled
    // away); this watch can never fire — disarm it. disarmOsr does not
    // notify onOsrDrop, so erasing here is the only cleanup.
    ClientVM.disarmOsr(Token);
    OsrTable.erase(It);
    return {};
  }
  // A mid-loop transfer is a dispatch the frame did not have to take:
  // charge the probe exactly as the trap path would have, and keep the
  // usage/executor books identical to enterChain. Not counted in
  // Dispatches/CacheHits — those mean trap dispatches.
  const bta::PromoPoint &P = Core.promo(R.Ord, R.PromoId);
  runtime::chargeDispatchCost(ClientVM, P.Policy, R.Key.size(), L.Probes);
  uint64_t Now = Tick.fetch_add(1, std::memory_order_relaxed) + 1;
  L.Rec->Use->Hits.fetch_add(1, std::memory_order_relaxed);
  L.Rec->Use->LastUse.store(Now, std::memory_order_relaxed);
  L.Rec->Use->RefBit.store(true, std::memory_order_release);
  L.Rec->Chain->ActiveRefs.fetch_add(1, std::memory_order_acq_rel);
  if (Regs.size() < L.Rec->Chain->CO.NumRegs)
    Regs.resize(L.Rec->Chain->CO.NumRegs);
  if (Tier)
    Tier->noteOsrEntry(R.Ord);
  Target T;
  T.CO = &L.Rec->Chain->CO;
  T.PC = EIt->second;
  OsrTable.erase(It);
  return T;
}

void SpecServer::onOsrDrop(vm::VM &, uint64_t Token) {
  std::lock_guard<std::mutex> Lock(OsrMutex);
  OsrTable.erase(Token);
}

std::shared_ptr<CacheRecord>
SpecServer::specializeAndPublish(uint32_t Ord, uint32_t PromoId, size_t Point,
                                 const std::vector<Word> &Key,
                                 const std::vector<Word> &BakedVals,
                                 const std::vector<Word> &KeyVals) {
  std::lock_guard<std::recursive_mutex> Lock(SpecMutex);
  // Recheck under the lock: the key may have been published while this
  // request sat in the queue (or by a concurrent nested run).
  if (std::shared_ptr<CacheRecord> Existing = Cache.findRecord(Point, Key))
    return Existing;

  bool Prev = InSpecWorkerFlag;
  InSpecWorkerFlag = true;
  std::shared_ptr<CacheRecord> Rec =
      Core.specializeInto(Ord, *SpecVM, PromoId, Key, BakedVals, KeyVals);
  InSpecWorkerFlag = Prev;
  St.SpecRuns.fetch_add(1, std::memory_order_relaxed);
  St.ChainsCreated.fetch_add(1, std::memory_order_relaxed);
  Rec->Point = Point; // server points are global across regions

  const bta::PromoPoint &P = Core.promo(Ord, PromoId);
  for (const auto &D : Cache.insert(Rec)) {
    // One-slot (or indexed same-slot) replacement displaced an older
    // version; its chain is now unreachable from the cache.
    Core.displaced(D, P.Policy);
  }
  // Account the new chain against its region's budget; CLOCK victims are
  // unpublished from the sharded cache before their chain is marked
  // evicted, and the core bumps the victim region's Evictions counter.
  Core.admit(Rec, [this](const CacheRecord &Victim) {
    Cache.erase(&Victim);
    St.Evictions.fetch_add(1, std::memory_order_relaxed);
  });
  if (Tier)
    Tier->noteInstall(Ord);
  return Rec;
}

//===----------------------------------------------------------------------===//
// Multi-tenant path
//===----------------------------------------------------------------------===//

TenantState &SpecServer::tenantState(uint32_t Id) {
  {
    std::shared_lock<std::shared_mutex> L(TenantsMutex);
    auto It = TenantIndex.find(Id);
    if (It != TenantIndex.end())
      return *It->second;
  }
  std::unique_lock<std::shared_mutex> L(TenantsMutex);
  auto It = TenantIndex.find(Id);
  if (It != TenantIndex.end())
    return *It->second;
  Tenants.emplace_back(Id);
  TenantState &TS = Tenants.back();
  // Mirror the server's construction-time point registration exactly, so
  // tenant cache points share the global (region, promo) numbering.
  for (size_t Ord = 0; Ord != Core.numRegions(); ++Ord)
    for (size_t P = 0; P != Core.numPromos(Ord); ++P) {
      const bta::PromoPoint &PP = Core.promo(Ord, P);
      TS.Cache.addPoint(PP.Policy, PP.IndexKeyPos);
    }
  TS.Books.resize(Core.numRegions());
  TenantIndex[Id] = &TS;
  return TS;
}

TenantState *SpecServer::findTenant(uint32_t Id) const {
  std::shared_lock<std::shared_mutex> L(TenantsMutex);
  auto It = TenantIndex.find(Id);
  return It == TenantIndex.end() ? nullptr : It->second;
}

vm::RuntimeHook::Target
SpecServer::dispatchTenant(vm::VM &ClientVM, TenantState &TS, uint32_t Ord,
                           uint32_t PromoId, const bta::PromoPoint &P,
                           size_t Point, WordSpan Key, size_t BakedWords,
                           std::vector<Word> &Regs, uint64_t Now) {
  // From here down this mirrors the single-tenant miss/hit control flow
  // (minus tiering, which never composes with multi-tenancy) over the
  // tenant's own cache view, double-counting every ledger event into the
  // tenant's ServerStats — that ledger must stay bit-identical to a
  // dedicated single-tenant server replaying the same workload.
  TS.St.Dispatches.fetch_add(1, std::memory_order_relaxed);

  ShardedCache::Lookup L = TS.Cache.lookup(Point, Key);
  runtime::chargeDispatchCost(ClientVM, P.Policy, Key.size(), L.Probes);
  if (L.Rec) {
    TS.St.CacheHits.fetch_add(1, std::memory_order_relaxed);
    St.CacheHits.fetch_add(1, std::memory_order_relaxed);
    L.Rec->Use->Hits.fetch_add(1, std::memory_order_relaxed);
    L.Rec->Use->LastUse.store(Now, std::memory_order_relaxed);
    L.Rec->Use->RefBit.store(true, std::memory_order_release);
    return enterChain(*L.Rec, &ClientVM);
  }
  TS.St.CacheMisses.fetch_add(1, std::memory_order_relaxed);
  St.CacheMisses.fetch_add(1, std::memory_order_relaxed);

  std::vector<Word> Baked(Key.Data, Key.Data + BakedWords);
  std::vector<Word> KeyVec(Key.begin(), Key.end());
  std::vector<Word> KeyVals(Key.Data + BakedWords, Key.end());

  if (InSpecWorkerFlag) {
    TS.St.InlineSpecs.fetch_add(1, std::memory_order_relaxed);
    St.InlineSpecs.fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<CacheRecord> Rec = specializeAndPublishTenant(
        TS, Ord, PromoId, Point, KeyVec, Baked, KeyVals);
    return enterChain(*Rec, &ClientVM);
  }

  // Quota admission: past the tenant's in-flight cap the miss is refused
  // outright — it neither creates a job nor joins a coalesced one (a join
  // would let a tenant ride another's compile slot past its own cap) —
  // and is served by the static fallback.
  bool WantJob = true;
  if (Cfg.Quota.MaxInFlightCompiles != 0 &&
      TS.InFlightCompiles.load(std::memory_order_acquire) >=
          Cfg.Quota.MaxInFlightCompiles) {
    WantJob = false;
    TS.St.QuotaRejections.fetch_add(1, std::memory_order_relaxed);
    St.QuotaRejections.fetch_add(1, std::memory_order_relaxed);
  }

  std::shared_ptr<SpecJob> Shared;
  if (WantJob) {
    auto Job = std::make_unique<SpecJob>();
    Job->Id.Tenant = TS.Id;
    Job->Id.Point = Point;
    Job->Id.Key = std::move(KeyVec);
    Job->RegionOrd = Ord;
    Job->PromoId = PromoId;
    Job->BakedVals = Baked; // copied: the fallback path below reads it too
    Job->KeyVals = std::move(KeyVals);
    bool Created = false;
    Shared = Queue.submit(std::move(Job), Created);
    if (Created) {
      TS.InFlightCompiles.fetch_add(1, std::memory_order_acq_rel);
      TS.St.JobsEnqueued.fetch_add(1, std::memory_order_relaxed);
      St.JobsEnqueued.fetch_add(1, std::memory_order_relaxed);
    } else if (Shared) {
      TS.St.JobsCoalesced.fetch_add(1, std::memory_order_relaxed);
      St.JobsCoalesced.fetch_add(1, std::memory_order_relaxed);
    }
  }

  bool CompileDead = false;
  if (Shared && Cfg.OnMiss == MissPolicy::Block) {
    ClientVM.chargeDynComp(ClientVM.costModel().SpecCacheInsert);
    std::shared_ptr<CacheRecord> Rec = Shared->Future.get();
    if (Rec) {
      Rec->Use->Hits.fetch_add(1, std::memory_order_relaxed);
      Rec->Use->LastUse.store(Now, std::memory_order_relaxed);
      Rec->Use->RefBit.store(true, std::memory_order_release);
      return enterChain(*Rec, &ClientVM);
    }
    CompileDead = true; // job abandoned at shutdown
  }
  TS.St.Fallbacks.fetch_add(1, std::memory_order_relaxed);
  St.Fallbacks.fetch_add(1, std::memory_order_relaxed);
  if (!WantJob) {
    TS.St.FallbacksNotRequested.fetch_add(1, std::memory_order_relaxed);
    St.FallbacksNotRequested.fetch_add(1, std::memory_order_relaxed);
  } else if (Shared && !CompileDead) {
    TS.St.FallbacksInFlight.fetch_add(1, std::memory_order_relaxed);
    St.FallbacksInFlight.fetch_add(1, std::memory_order_relaxed);
  } else {
    TS.St.FallbacksFailed.fetch_add(1, std::memory_order_relaxed);
    St.FallbacksFailed.fetch_add(1, std::memory_order_relaxed);
  }
  return fallbackTarget(Ord, P, Regs, Baked);
}

std::shared_ptr<CacheRecord> SpecServer::specializeAndPublishTenant(
    TenantState &TS, uint32_t Ord, uint32_t PromoId, size_t Point,
    const std::vector<Word> &Key, const std::vector<Word> &BakedVals,
    const std::vector<Word> &KeyVals) {
  std::lock_guard<std::recursive_mutex> Lock(SpecMutex);
  // Recheck under the lock: the key may have been published into this
  // tenant's view while the request sat in the queue.
  if (std::shared_ptr<CacheRecord> Existing = TS.Cache.findRecord(Point, Key))
    return Existing;

  uint64_t DK = ChainStore::dedupKey(RegionContentHash[Ord], PromoId, Key,
                                     FlagsFingerprint);
  std::shared_ptr<CacheRecord> Rec;
  StoredChain *SC = Store.find(DK, Ord, PromoId, Key);
  if (SC) {
    // Adoption: another tenant (or the warm-start file) already produced
    // this chain. Publish a fresh record over the shared chain with fresh
    // usage stats, so the tenant's CLOCK sees exactly what a dedicated
    // server's would for a newly compiled chain.
    Rec = std::make_shared<CacheRecord>();
    Rec->Key = Key;
    Rec->Hash = hashWords(Key);
    Rec->Region = Ord;
    Rec->PromoId = PromoId;
    Rec->EntryPC = SC->EntryPC;
    Rec->Chain = SC->Chain;
    Rec->Use = std::make_shared<EntryStats>();
    Rec->Use->ColdEntryPending.store(true, std::memory_order_release);
    Rec->Ordinal = SC->Chain->Ordinal;
    TS.St.DedupHits.fetch_add(1, std::memory_order_relaxed);
    St.DedupHits.fetch_add(1, std::memory_order_relaxed);
    if (SC->WarmLoaded) {
      TS.St.WarmHits.fetch_add(1, std::memory_order_relaxed);
      St.WarmHits.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    TenantState *PrevTenant = CurrentSpecTenant;
    bool Prev = InSpecWorkerFlag;
    CurrentSpecTenant = &TS;
    InSpecWorkerFlag = true;
    Rec = Core.specializeInto(Ord, *SpecVM, PromoId, Key, BakedVals, KeyVals);
    InSpecWorkerFlag = Prev;
    CurrentSpecTenant = PrevTenant;
    // Global ledger: actual generating-extension runs only.
    St.SpecRuns.fetch_add(1, std::memory_order_relaxed);
    St.ChainsCreated.fetch_add(1, std::memory_order_relaxed);
    StoredChain NewSC;
    NewSC.DedupKey = DK;
    NewSC.Ord = Ord;
    NewSC.PromoId = PromoId;
    NewSC.Key = Key;
    NewSC.EntryPC = Rec->EntryPC;
    NewSC.Chain = Rec->Chain;
    SC = &Store.insert(std::move(NewSC));
  }
  // Tenant-view ledger: an adoption still counts as a specialization run
  // and a created chain — the dedicated server this ledger must match
  // would have compiled.
  TS.St.SpecRuns.fetch_add(1, std::memory_order_relaxed);
  TS.St.ChainsCreated.fetch_add(1, std::memory_order_relaxed);
  SC->Refs++; // this tenant's publish reference
  Rec->Point = Point;

  for (const auto &D : TS.Cache.insert(Rec))
    tenantDisplaced(TS, D);
  tenantAdmit(TS, Rec);
  return Rec;
}

void SpecServer::tenantAdmit(TenantState &TS, std::shared_ptr<CacheRecord> E) {
  // Core::admit's CLOCK algorithm verbatim, over the tenant's book and the
  // tenant quota budget, so a tenant's eviction sequence — and therefore
  // every counter downstream of it — matches a dedicated server with the
  // same ChainBudget. Victims release their store reference instead of
  // being retired directly: another tenant may still run the chain.
  TenantBook &B = TS.Books[E->Region];
  const CacheRecord *Fresh = E.get();
  B.Instrs += E->Chain ? E->Chain->Instrs : 0;
  B.Records.push_back(std::move(E));

  const CapacityBudget &Budget = Cfg.Quota.Budget;
  auto OverBudget = [&] {
    return (Budget.MaxEntries && B.Records.size() > Budget.MaxEntries) ||
           (Budget.MaxInstrs && B.Instrs > Budget.MaxInstrs);
  };
  size_t Guard = 2 * B.Records.size() + 2;
  while (OverBudget() && B.Records.size() > 1 && Guard--) {
    if (B.Hand >= B.Records.size())
      B.Hand = 0;
    std::shared_ptr<CacheRecord> &Cand = B.Records[B.Hand];
    if (Cand.get() == Fresh) {
      ++B.Hand;
      continue;
    }
    if (Cand->Use &&
        Cand->Use->RefBit.exchange(false, std::memory_order_acq_rel)) {
      ++B.Hand; // recently used: second chance
      continue;
    }
    TS.Cache.erase(Cand.get());
    TS.St.Evictions.fetch_add(1, std::memory_order_relaxed);
    St.Evictions.fetch_add(1, std::memory_order_relaxed);
    if (Cand->Chain) {
      B.Instrs -= Cand->Chain->Instrs;
      releaseStoreRef(Cand->Chain.get());
    }
    B.Records.erase(B.Records.begin() + static_cast<long>(B.Hand));
    // Hand stays: it now points at the next record.
  }
}

void SpecServer::tenantDisplaced(TenantState &TS,
                                 const std::shared_ptr<CacheRecord> &E) {
  // One-slot/indexed replacement: the tenant's cache already dropped the
  // record; drop it from the book (Core::displaced's bookkeeping) and
  // release the tenant's store reference. No ServerStats::Evictions bump —
  // the dedicated server counts displacement only in its region stats.
  TenantBook &B = TS.Books[E->Region];
  for (size_t Idx = 0; Idx != B.Records.size(); ++Idx) {
    if (B.Records[Idx].get() != E.get())
      continue;
    B.Instrs -= E->Chain ? E->Chain->Instrs : 0;
    B.Records.erase(B.Records.begin() + static_cast<long>(Idx));
    if (B.Hand > Idx)
      --B.Hand;
    break;
  }
  if (E->Chain)
    releaseStoreRef(E->Chain.get());
}

void SpecServer::releaseStoreRef(const CodeChain *Chain) {
  if (std::shared_ptr<CodeChain> Last = Store.release(Chain)) {
    // Last tenant let go: retire the chain exactly as the single-tenant
    // eviction paths do. Collection still waits for active executors to
    // drain at the trimQuiescent safe point.
    Last->Evicted.store(true, std::memory_order_release);
    Core.backend().releaseArtifact(Last->CO);
    Last->Artifact.reset();
  }
}

ServerStatsSnapshot SpecServer::tenantStats(uint32_t TenantId) const {
  TenantState *TS = findTenant(TenantId);
  if (!TS)
    return ServerStatsSnapshot();
  ServerStatsSnapshot S = TS->St.snapshot();
  S.Backend = Core.backendName();
  S.SnapshotsRetired = TS->Cache.retiredSnapshots();
  S.MultiTenant = true;
  S.Tenants = 1;
  return S;
}

std::string SpecServer::disassembleRegion(size_t Ordinal) const {
  std::lock_guard<std::recursive_mutex> Lock(SpecMutex);
  return Core.disassembleRegion(Ordinal);
}

void SpecServer::workerLoop() {
  while (std::shared_ptr<SpecJob> Job = Queue.pop()) {
    // Test hook: hold the popped job until released, so tests can pin a
    // compile in flight and observe fallback/OSR behavior.
    if (Cfg.HoldCompiles)
      while (Cfg.HoldCompiles->load(std::memory_order_acquire))
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    std::shared_ptr<CacheRecord> Rec;
    if (Cfg.MultiTenant) {
      TenantState *TS = findTenant(Job->Id.Tenant);
      assert(TS && "queued job for an unregistered tenant");
      Rec = specializeAndPublishTenant(*TS, Job->RegionOrd, Job->PromoId,
                                       Job->Id.Point, Job->Id.Key,
                                       Job->BakedVals, Job->KeyVals);
      // Release the tenant's in-flight slot before the future resolves: a
      // blocked client's next miss must deterministically see it free.
      TS->InFlightCompiles.fetch_sub(1, std::memory_order_acq_rel);
    } else {
      Rec = specializeAndPublish(Job->RegionOrd, Job->PromoId, Job->Id.Point,
                                 Job->Id.Key, Job->BakedVals, Job->KeyVals);
    }
    // Publish before unregistering: a misser either finds the job
    // in-flight (and joins this future) or misses it and re-probes the
    // cache, which already holds the record.
    Job->Result.set_value(Rec);
    Queue.finish(Job->Id);
    {
      std::lock_guard<std::mutex> L(DrainMutex);
    }
    DrainCV.notify_all();
  }
}

void SpecServer::drain() {
  std::unique_lock<std::mutex> Lock(DrainMutex);
  DrainCV.wait(Lock, [&] { return Queue.pending() == 0; });
}

bool SpecServer::trimQuiescent(size_t *SnapshotsFreed, size_t *ChainsFreed) {
  std::unique_lock<std::shared_mutex> Gate(DispatchGate, std::try_to_lock);
  if (!Gate.owns_lock())
    return false; // dispatches in flight; reclamation must wait
  size_t Snaps = Cache.trimGraveyard();
  if (Cfg.MultiTenant) {
    std::shared_lock<std::shared_mutex> TL(TenantsMutex);
    for (TenantState &TS : Tenants) {
      size_t TenantSnaps = TS.Cache.trimGraveyard();
      TS.St.SnapshotsFreed.fetch_add(TenantSnaps, std::memory_order_relaxed);
      Snaps += TenantSnaps;
    }
  }
  size_t Freed = Core.collectChains();
  St.SnapshotsFreed.fetch_add(Snaps, std::memory_order_relaxed);
  St.ChainsCollected.fetch_add(Freed, std::memory_order_relaxed);
  if (SnapshotsFreed)
    *SnapshotsFreed = Snaps;
  if (ChainsFreed)
    *ChainsFreed = Freed;
  return true;
}

void SpecServer::onDynamicCodeExit(vm::VM &, const vm::CodeObject *CO) {
  Core.releaseExecutor(CO);
}

runtime::RegionStats SpecServer::regionStats(size_t Ordinal) const {
  std::lock_guard<std::recursive_mutex> Lock(SpecMutex);
  runtime::RegionStats RS = Core.stats(Ordinal);
  if (Tier) {
    RS.TierEnabled = true;
    tier::TierCounters T = Tier->counters(Ordinal);
    RS.ColdExecs = T.ColdExecs;
    RS.WarmExecs = T.WarmExecs;
    RS.WarmPromotions = T.WarmPromotions;
    RS.HotPromotions = T.HotPromotions;
    RS.HotInstalls = T.HotInstalls;
    RS.OsrEntries = T.OsrEntries;
    RS.OsrPolls = T.OsrPolls;
  } else {
    // Untiered servers report hard zeros for the tier block — the tier
    // controller is the only writer of these fields (regression-tested).
    RS.TierEnabled = false;
    RS.ColdExecs = RS.WarmExecs = RS.WarmPromotions = RS.HotPromotions = 0;
    RS.HotInstalls = RS.OsrEntries = RS.OsrPolls = 0;
  }
  if (!RS.PlanEnabled) {
    // Same contract for the staged-emit-plan block: the plan path is the
    // only writer, so force hard zeros when it is off.
    RS.PlanBuilds = RS.PlanHits = RS.PlanBytes = 0;
  }
  return RS;
}

size_t SpecServer::residentEntries(size_t Ordinal) const {
  std::lock_guard<std::recursive_mutex> Lock(SpecMutex);
  return Core.residentEntries(Ordinal);
}

uint64_t SpecServer::residentInstrs(size_t Ordinal) const {
  std::lock_guard<std::recursive_mutex> Lock(SpecMutex);
  return Core.residentInstrs(Ordinal);
}

uint64_t SpecServer::specOverheadCycles() const {
  std::lock_guard<std::recursive_mutex> Lock(SpecMutex);
  return SpecVM->dynCompCycles();
}

//===----------------------------------------------------------------------===//
// Warm start
//===----------------------------------------------------------------------===//

bool SpecServer::saveCacheTo(const std::string &Path) const {
  if (!Cfg.MultiTenant)
    return false;
  std::lock_guard<std::recursive_mutex> Lock(SpecMutex);
  FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  uint64_t ModuleFP = 0xcbf29ce484222325ull;
  for (uint64_t H : RegionContentHash) {
    ModuleFP ^= H;
    ModuleFP *= 1099511628211ull;
  }
  bool Ok = writeU64(F, WarmMagic) && writeU32(F, WarmFormatVersion) &&
            writeU32(F, static_cast<uint32_t>(sizeof(vm::Instr))) &&
            writeU64(F, FlagsFingerprint) && writeU64(F, ModuleFP);

  // Site table in index order: chain code embeds dispatch-site indices
  // (a Dispatch's PointId is -(site+1)), so a reload must reproduce every
  // site at its original index before any chain code runs.
  size_t NumSites = Core.numSites();
  Ok = Ok && writeU32(F, static_cast<uint32_t>(NumSites));
  for (size_t I = 0; Ok && I != NumSites; ++I) {
    runtime::DispatchSite S = Core.siteInfo(I);
    Ok = writeU32(F, S.RegionOrd) && writeU32(F, S.PromoId) &&
         writeWords(F, S.BakedVals);
  }

  // Chains in creation-ordinal order: restoring in this order reallocates
  // the same simulated BaseAddr for every chain, keeping post-restart
  // I-cache behavior bit-identical to the original compile order.
  std::vector<const StoredChain *> Chains = Store.byOrdinal();
  Ok = Ok && writeU32(F, static_cast<uint32_t>(Chains.size()));
  for (const StoredChain *SC : Chains) {
    if (!Ok)
      break;
    const CodeChain &C = *SC->Chain;
    Ok = writeU32(F, SC->Ord) && writeU32(F, SC->PromoId) &&
         writeU32(F, SC->EntryPC) && writeWords(F, SC->Key) &&
         writeU32(F, static_cast<uint32_t>(C.CO.Code.size()));
    Ok = Ok && (C.CO.Code.empty() ||
                std::fwrite(C.CO.Code.data(), sizeof(vm::Instr),
                            C.CO.Code.size(), F) == C.CO.Code.size());
    Ok = Ok && writePairMap(F, C.ExitStubs) &&
         writePairMap(F, C.DispatchStubs) && writePairMap(F, C.OsrEntries);
  }
  std::fclose(F);
  return Ok;
}

bool SpecServer::loadCacheFrom(const std::string &Path) {
  if (!Cfg.MultiTenant)
    return false;
  std::lock_guard<std::recursive_mutex> Lock(SpecMutex);
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  uint64_t WantModuleFP = 0xcbf29ce484222325ull;
  for (uint64_t H : RegionContentHash) {
    WantModuleFP ^= H;
    WantModuleFP *= 1099511628211ull;
  }
  // Header validation happens before any server state mutates, so a
  // mismatched file loads nothing.
  uint64_t Magic = 0, FlagsFP = 0, ModuleFP = 0;
  uint32_t Version = 0, InstrSize = 0, NumSites = 0;
  if (!readU64(F, Magic) || Magic != WarmMagic || !readU32(F, Version) ||
      Version != WarmFormatVersion || !readU32(F, InstrSize) ||
      InstrSize != sizeof(vm::Instr) || !readU64(F, FlagsFP) ||
      FlagsFP != FlagsFingerprint || !readU64(F, ModuleFP) ||
      ModuleFP != WantModuleFP || !readU32(F, NumSites) ||
      (NumSites != 0 && Core.numSites() != 0)) {
    std::fclose(F);
    return false;
  }
  for (uint32_t I = 0; I != NumSites; ++I) {
    runtime::DispatchSite S;
    if (!readU32(F, S.RegionOrd) || !readU32(F, S.PromoId) ||
        !readWords(F, S.BakedVals)) {
      std::fclose(F);
      return false;
    }
    Core.internSite(std::move(S));
  }
  uint32_t NumChains = 0;
  if (!readU32(F, NumChains) || NumChains > (1u << 24)) {
    std::fclose(F);
    return false;
  }
  for (uint32_t I = 0; I != NumChains; ++I) {
    StoredChain SC;
    uint32_t CodeN = 0;
    std::vector<vm::Instr> Code;
    std::map<ir::BlockId, uint32_t> ExitStubs;
    std::map<uint32_t, uint32_t> DispatchStubs;
    std::map<ir::BlockId, uint32_t> OsrEntries;
    if (!readU32(F, SC.Ord) || !readU32(F, SC.PromoId) ||
        !readU32(F, SC.EntryPC) || !readWords(F, SC.Key) ||
        !readU32(F, CodeN) || CodeN > (1u << 24) ||
        SC.Ord >= Core.numRegions()) {
      std::fclose(F);
      return false;
    }
    Code.resize(CodeN);
    if (CodeN != 0 &&
        std::fread(Code.data(), sizeof(vm::Instr), CodeN, F) != CodeN) {
      std::fclose(F);
      return false;
    }
    if (!readPairMap(F, ExitStubs) || !readPairMap(F, DispatchStubs) ||
        !readPairMap(F, OsrEntries)) {
      std::fclose(F);
      return false;
    }
    SC.DedupKey = ChainStore::dedupKey(RegionContentHash[SC.Ord], SC.PromoId,
                                       SC.Key, FlagsFingerprint);
    SC.Chain = Core.restoreChain(SC.Ord, *SpecVM, std::move(Code), SC.EntryPC,
                                 std::move(ExitStubs), std::move(DispatchStubs),
                                 std::move(OsrEntries));
    SC.WarmLoaded = true;
    // Unreferenced until a tenant's first miss adopts it (a WarmHit).
    Store.insert(std::move(SC));
  }
  std::fclose(F);
  return true;
}

} // namespace server
} // namespace dyc
