//===- server/ShardedCache.h - Lock-free-read dispatch caches --------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SpecServer's replacement for the runtime's per-promotion-point
/// CodeCaches. Each (region, promotion point) pair is one *point* holding
/// an immutable Snapshot published through an atomic pointer:
///
///  * Readers (client dispatches) load the snapshot with acquire ordering
///    and probe it without taking any lock. All four DyC cache policies
///    are mirrored: double-hashed cache_all, checked/unchecked one-slot,
///    and direct-indexed with a checked hash overflow for keys at or above
///    the indexed range.
///  * Writers (specialization workers, the capacity manager) serialize on
///    striped mutexes, rebuild the point's snapshot from its record list,
///    and publish with release ordering.
///
/// Replaced snapshots go to a per-point graveyard instead of being freed:
/// a reader may still be probing one. trimGraveyard() frees them and is
/// only called by the server at quiescence (no dispatch in flight), the
/// same discipline RCU calls a grace period.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_SERVER_SHARDEDCACHE_H
#define DYC_SERVER_SHARDEDCACHE_H

#include "runtime/RegionExec.h"
#include "support/Support.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace dyc {
namespace server {

// The server caches the shared core's published-specialization types
// directly — one representation of generated code everywhere. The server's
// historical names are kept as aliases.
using CodeChain = runtime::CodeChain;
using ChainRegistry = runtime::ChainRegistry;
using EntryStats = runtime::EntryStats;
using CacheRecord = runtime::SpecEntry;
using CapacityBudget = runtime::ChainBudget;

/// Immutable probe structure for one point. Built writer-side, read
/// lock-free.
struct CacheSnapshot {
  ir::CachePolicy Policy = ir::CachePolicy::CacheAll;
  uint32_t IndexPos = 0;
  /// cache_all and cache_indexed overflow: open-addressed double-hash
  /// table (power-of-two capacity, empty slots null).
  std::vector<std::shared_ptr<CacheRecord>> Table;
  /// One-slot policies: the resident entry.
  std::shared_ptr<CacheRecord> One;
  /// cache_indexed: direct array over the index key word.
  std::vector<std::shared_ptr<CacheRecord>> Indexed;
};

/// All points of one server, with striped writer locks.
class ShardedCache {
public:
  /// Registers the next point. Not thread-safe: call only during server
  /// construction, before clients exist.
  size_t addPoint(ir::CachePolicy Policy, uint32_t IndexPos);

  size_t numPoints() const { return Points.size(); }

  struct Lookup {
    const CacheRecord *Rec = nullptr;
    unsigned Probes = 1; ///< hash probes (cache_all cost model input)
  };

  /// Lock-free probe. The returned record stays valid while the caller is
  /// inside a dispatch (snapshots are only freed at quiescence) and its
  /// Chain stays valid as long as the caller copies the shared_ptr or the
  /// chain registry holds it. The key is a view — the hit path composes it
  /// in per-thread scratch without allocating.
  Lookup lookup(size_t Point, WordSpan Key) const;
  Lookup lookup(size_t Point, const std::vector<Word> &Key) const {
    return lookup(Point, WordSpan(Key));
  }

  /// Writer-side probe under the stripe lock, with the point's policy
  /// semantics (an unchecked one-slot point matches any resident entry).
  /// Used by workers to recheck for a concurrent publication before
  /// specializing. Returns shared ownership, unlike lookup().
  std::shared_ptr<CacheRecord> findRecord(size_t Point, WordSpan Key) const;
  std::shared_ptr<CacheRecord>
  findRecord(size_t Point, const std::vector<Word> &Key) const {
    return findRecord(Point, WordSpan(Key));
  }

  /// Inserts \p Rec (whose Point/Key/Hash must be set) and republishes.
  /// Returns records displaced by one-slot replacement so the caller can
  /// mark their chains evicted.
  std::vector<std::shared_ptr<CacheRecord>>
  insert(std::shared_ptr<CacheRecord> Rec);

  /// Removes \p Rec from its point (capacity eviction) and republishes.
  /// No-op if the record was already displaced.
  void erase(const CacheRecord *Rec);

  /// Live records at \p Point (writer-side count).
  size_t entries(size_t Point) const;

  /// Frees retired snapshots. The caller must guarantee no reader is
  /// inside lookup() (the server checks its in-flight dispatch count).
  /// Returns the number freed.
  size_t trimGraveyard();

  size_t retiredSnapshots() const;

  static uint64_t hashKey(WordSpan Key) {
    return hashWords(Key.Data, Key.Count);
  }
  static uint64_t hashKey(const std::vector<Word> &Key) {
    return hashWords(Key.data(), Key.size());
  }

private:
  struct PointCache {
    ir::CachePolicy Policy = ir::CachePolicy::CacheAll;
    uint32_t IndexPos = 0;
    std::atomic<const CacheSnapshot *> Current{nullptr};
    // Writer-side, guarded by the point's stripe mutex:
    std::shared_ptr<const CacheSnapshot> Owner; ///< keeps Current alive
    std::vector<std::shared_ptr<const CacheSnapshot>> Retired;
    std::vector<std::shared_ptr<CacheRecord>> Records;
  };

  static constexpr size_t NumStripes = 16;

  std::mutex &stripeFor(size_t Point) const {
    return Stripes[Point % NumStripes];
  }

  /// Rebuilds and publishes \p P's snapshot; retires the previous one.
  void republish(PointCache &P);

  std::deque<PointCache> Points; ///< deque: PointCache is not movable
  mutable std::array<std::mutex, NumStripes> Stripes;
};

} // namespace server
} // namespace dyc

#endif // DYC_SERVER_SHARDEDCACHE_H
