//===- server/ChainStore.h - Content-addressed cross-tenant chain store -----------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-tenant SpecServer's dedup layer. Every published
/// specialization is content-addressed by a hash of (region content hash,
/// promotion point, full cache key, OptFlags fingerprint): two tenants
/// missing on the same key at the same point produce one generating-
/// extension run and one CodeChain — the second publication *adopts* the
/// stored chain into its own cache view instead of compiling.
///
/// Ownership is refcounted per publication: each tenant cache entry that
/// references a stored chain holds one publish reference, dropped when
/// the tenant's CLOCK book evicts (or its one-slot cache displaces) the
/// entry. The last release removes the entry from the store and returns
/// the chain so the server can retire it (mark it evicted, release the
/// backend artifact) through the existing eviction safe point —
/// collection still waits for active executors to drain, exactly as for
/// single-tenant chains.
///
/// Concurrency: every mutation happens under the server's specialization
/// mutex (publication, eviction, and warm-start load are all serialized
/// there already), so the store takes no lock of its own; only the
/// resident-count gauge is atomic, because stats() reads it from
/// arbitrary threads.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_SERVER_CHAINSTORE_H
#define DYC_SERVER_CHAINSTORE_H

#include "server/ShardedCache.h"

#include <atomic>
#include <list>
#include <unordered_map>
#include <vector>

namespace dyc {
namespace server {

/// One deduplicated compiled chain, shared by every tenant that adopted it.
struct StoredChain {
  uint64_t DedupKey = 0; ///< content address (see ChainStore::dedupKey)
  uint32_t Ord = 0;      ///< region ordinal
  uint32_t PromoId = 0;  ///< promotion point within the region
  std::vector<Word> Key; ///< full cache key, verified on every lookup
  uint32_t EntryPC = 0;  ///< entry offset within Chain->CO
  std::shared_ptr<CodeChain> Chain;
  /// Tenant cache entries referencing this chain. Mutated only under the
  /// server's specialization mutex.
  uint32_t Refs = 0;
  /// True for chains deserialized from a warm-start file; their first
  /// adoptions are the restart's payoff and are counted as WarmHits.
  bool WarmLoaded = false;
};

/// The store: DedupKey -> StoredChain, with a reverse index from the
/// chain object for refcount release at eviction time.
class ChainStore {
public:
  /// The content address: region content hash, promotion id, the full
  /// cache key (baked values + promoted values), and the OptFlags
  /// fingerprint, FNV-chained. Collisions are survivable — find() verifies
  /// (Ord, PromoId, Key) exactly — but the full-width hash makes the
  /// bucket lists effectively singleton.
  static uint64_t dedupKey(uint64_t RegionHash, uint32_t PromoId,
                           WordSpan Key, uint64_t FlagsFingerprint) {
    uint64_t Seed = RegionHash;
    Seed = (Seed ^ PromoId) * 1099511628211ull;
    Seed = (Seed ^ FlagsFingerprint) * 1099511628211ull;
    return hashWords(Key, Seed);
  }

  /// Exact-match lookup; null when absent. The pointer is valid until the
  /// next mutation under the same serialization.
  StoredChain *find(uint64_t DedupKey, uint32_t Ord, uint32_t PromoId,
                    WordSpan Key);

  /// Registers a chain under its content address. Returns the stored
  /// entry. The caller has verified no equal entry exists.
  StoredChain &insert(StoredChain SC);

  /// Drops one publish reference from the entry owning \p Chain. When the
  /// last reference drops, removes the entry and returns the chain so the
  /// caller retires it; otherwise (or for chains the store never owned —
  /// single-tenant code paths) returns null.
  std::shared_ptr<CodeChain> release(const CodeChain *Chain);

  /// Resident chains (gauge; safe from any thread).
  size_t size() const { return Count.load(std::memory_order_relaxed); }

  /// Entries in chain-creation order — the warm-start serialization
  /// order, chosen so a reload reproduces every chain's BaseAddr.
  std::vector<const StoredChain *> byOrdinal() const;

private:
  std::unordered_map<uint64_t, std::list<StoredChain>> Buckets;
  std::unordered_map<const CodeChain *, uint64_t> ByChain;
  std::atomic<size_t> Count{0};
};

} // namespace server
} // namespace dyc

#endif // DYC_SERVER_CHAINSTORE_H
