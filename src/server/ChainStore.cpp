//===- server/ChainStore.cpp -------------------------------------------------------===//

#include "server/ChainStore.h"

#include <algorithm>

namespace dyc {
namespace server {

namespace {

bool sameKey(const std::vector<Word> &A, WordSpan B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (A[I].Bits != B[I].Bits)
      return false;
  return true;
}

} // namespace

StoredChain *ChainStore::find(uint64_t DedupKey, uint32_t Ord,
                              uint32_t PromoId, WordSpan Key) {
  auto It = Buckets.find(DedupKey);
  if (It == Buckets.end())
    return nullptr;
  for (StoredChain &SC : It->second)
    if (SC.Ord == Ord && SC.PromoId == PromoId && sameKey(SC.Key, Key))
      return &SC;
  return nullptr;
}

StoredChain &ChainStore::insert(StoredChain SC) {
  std::list<StoredChain> &Bucket = Buckets[SC.DedupKey];
  Bucket.push_back(std::move(SC));
  StoredChain &Stored = Bucket.back();
  ByChain[Stored.Chain.get()] = Stored.DedupKey;
  Count.fetch_add(1, std::memory_order_relaxed);
  return Stored;
}

std::shared_ptr<CodeChain> ChainStore::release(const CodeChain *Chain) {
  auto KeyIt = ByChain.find(Chain);
  if (KeyIt == ByChain.end())
    return nullptr;
  auto BIt = Buckets.find(KeyIt->second);
  assert(BIt != Buckets.end() && "reverse index out of sync");
  for (auto It = BIt->second.begin(); It != BIt->second.end(); ++It) {
    if (It->Chain.get() != Chain)
      continue;
    assert(It->Refs > 0 && "release without a publish reference");
    if (--It->Refs > 0)
      return nullptr;
    std::shared_ptr<CodeChain> Out = std::move(It->Chain);
    BIt->second.erase(It);
    if (BIt->second.empty())
      Buckets.erase(BIt);
    ByChain.erase(KeyIt);
    Count.fetch_sub(1, std::memory_order_relaxed);
    return Out;
  }
  assert(false && "reverse index names a bucket without the chain");
  return nullptr;
}

std::vector<const StoredChain *> ChainStore::byOrdinal() const {
  std::vector<const StoredChain *> Out;
  Out.reserve(Count.load(std::memory_order_relaxed));
  for (const auto &KV : Buckets)
    for (const StoredChain &SC : KV.second)
      Out.push_back(&SC);
  std::sort(Out.begin(), Out.end(),
            [](const StoredChain *A, const StoredChain *B) {
              return A->Chain->Ordinal < B->Chain->Ordinal;
            });
  return Out;
}

} // namespace server
} // namespace dyc
