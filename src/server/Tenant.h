//===- server/Tenant.h - Per-tenant state for the multi-tenant SpecServer ---------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One TenantState per tenant of a multi-tenant SpecServer. The contract
/// that makes multi-tenancy more than namespacing is *per-tenant counter
/// parity*: a tenant replaying a workload against a shared server must
/// observe counters bit-identical to a dedicated single-tenant server
/// replaying the same workload. Three design points follow from it:
///
///  * Each tenant owns a full ShardedCache view. Probe counts feed the
///    simulated dispatch-cost model (cache_all charges per probe), so a
///    shared probing table would perturb every client's cycle counts the
///    moment a second tenant inserted anything.
///  * Each tenant owns a full ServerStats ledger counting its *view* of
///    events: an adoption from the chain store bumps the tenant's
///    SpecRuns/ChainsCreated (a dedicated server would have compiled),
///    while the server's global ledger counts actual events only — the
///    difference is exactly the global DedupHits counter.
///  * Each tenant owns per-region CLOCK books running the same algorithm
///    as RegionExecutionCore::admit over the same ChainBudget semantics,
///    so eviction decisions (and Evictions counters) match a dedicated
///    server byte for byte. The core's global capacity book is bypassed
///    in multi-tenant mode; chain release is refcounted through the
///    ChainStore instead.
///
/// TenantStates live in a deque owned by the server and are created
/// lazily by makeClientVM — before any dispatch can name the tenant — so
/// dispatch-time access is a shared-lock map probe.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_SERVER_TENANT_H
#define DYC_SERVER_TENANT_H

#include "server/ServerStats.h"
#include "server/ShardedCache.h"

#include <atomic>
#include <vector>

namespace dyc {
namespace server {

/// Per-tenant admission and residency limits. Zeros mean unlimited.
struct TenantQuota {
  /// Background/blocking compiles a tenant may have unfinished at once;
  /// misses past the cap are refused (counted in QuotaRejections) and
  /// served by the static fallback path.
  uint32_t MaxInFlightCompiles = 0;
  /// Resident-chain budget per region of the tenant's cache view, with
  /// RegionExecutionCore::admit semantics (MaxEntries entries,
  /// MaxInstrs emitted instructions — 4 simulated code bytes each).
  CapacityBudget Budget;
};

/// CLOCK book of one region's resident entries in one tenant's view —
/// the per-tenant mirror of RegionExecutionCore's RegionBook.
struct TenantBook {
  std::vector<std::shared_ptr<CacheRecord>> Records;
  size_t Hand = 0;
  uint64_t Instrs = 0;
};

/// Everything the server keeps per tenant. Not movable (ShardedCache owns
/// mutexes); constructed in place in a deque.
struct TenantState {
  explicit TenantState(uint32_t Id) : Id(Id) {}
  TenantState(const TenantState &) = delete;
  TenantState &operator=(const TenantState &) = delete;

  uint32_t Id = 0;
  /// The tenant's dispatch cache: same point numbering and policies as
  /// the server's construction-time registration, populated at tenant
  /// creation before the state is published.
  ShardedCache Cache;
  /// The tenant-view ledger (see file comment for the two-ledger rule).
  ServerStats St;
  /// Admission gauge for TenantQuota::MaxInFlightCompiles.
  std::atomic<uint32_t> InFlightCompiles{0};
  /// Per-region CLOCK books over TenantQuota::Budget.
  std::vector<TenantBook> Books;
};

} // namespace server
} // namespace dyc

#endif // DYC_SERVER_TENANT_H
