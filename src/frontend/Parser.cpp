//===- frontend/Parser.cpp -------------------------------------------------------===//

#include "frontend/Parser.h"

#include "support/Support.h"

namespace dyc {
namespace frontend {

const char *mtyName(MTy T) {
  switch (T) {
  case MTy::Int: return "int";
  case MTy::Double: return "double";
  case MTy::IntPtr: return "int*";
  case MTy::DoublePtr: return "double*";
  case MTy::Void: return "void";
  }
  return "<bad-type>";
}

namespace {

class Parser {
public:
  Parser(std::vector<Token> Toks, std::vector<std::string> &Errors)
      : Toks(std::move(Toks)), Errors(Errors) {}

  ProgramAST parse() {
    ProgramAST P;
    while (!at(TokKind::Eof)) {
      size_t Before = Pos;
      if (at(TokKind::KwExtern)) {
        parseExtern(P);
      } else {
        parseFunction(P);
      }
      if (Pos == Before)
        advance(); // ensure progress after an error
    }
    return P;
  }

private:
  const Token &cur() const { return Toks[Pos]; }
  bool at(TokKind K) const { return cur().Kind == K; }
  void advance() {
    if (!at(TokKind::Eof))
      ++Pos;
  }

  bool accept(TokKind K) {
    if (!at(K))
      return false;
    advance();
    return true;
  }

  bool expect(TokKind K) {
    if (accept(K))
      return true;
    error(formatString("expected %s, found %s", tokKindName(K),
                       tokKindName(cur().Kind)));
    return false;
  }

  void error(const std::string &Msg) {
    Errors.push_back(formatString("line %u: %s", cur().Line, Msg.c_str()));
  }

  bool atType() const {
    return at(TokKind::KwInt) || at(TokKind::KwDouble) || at(TokKind::KwVoid);
  }

  /// type := ('int' | 'double' | 'void') '*'?
  MTy parseType() {
    MTy Base;
    if (accept(TokKind::KwInt))
      Base = MTy::Int;
    else if (accept(TokKind::KwDouble))
      Base = MTy::Double;
    else if (accept(TokKind::KwVoid))
      return MTy::Void;
    else {
      error("expected a type");
      return MTy::Int;
    }
    if (accept(TokKind::Star))
      return Base == MTy::Int ? MTy::IntPtr : MTy::DoublePtr;
    return Base;
  }

  void parseExtern(ProgramAST &P) {
    ExternDeclAST D;
    D.Line = cur().Line;
    expect(TokKind::KwExtern);
    D.Pure = accept(TokKind::KwPure);
    D.RetTy = parseType();
    D.Name = cur().Text;
    expect(TokKind::Ident);
    expect(TokKind::LParen);
    if (!at(TokKind::RParen)) {
      do {
        D.ArgTys.push_back(parseType());
        // Optional parameter name in the prototype.
        if (at(TokKind::Ident))
          advance();
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen);
    expect(TokKind::Semi);
    P.Externs.push_back(std::move(D));
  }

  void parseFunction(ProgramAST &P) {
    FuncDecl F;
    F.Line = cur().Line;
    F.Pure = accept(TokKind::KwPure);
    F.RetTy = parseType();
    F.Name = cur().Text;
    if (!expect(TokKind::Ident))
      return;
    expect(TokKind::LParen);
    if (!at(TokKind::RParen)) {
      do {
        ParamDecl PD;
        PD.Ty = parseType();
        PD.Name = cur().Text;
        expect(TokKind::Ident);
        F.Params.push_back(std::move(PD));
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen);
    F.Body = parseBlock();
    P.Funcs.push_back(std::move(F));
  }

  StmtPtr makeStmt(Stmt::Kind K) {
    auto S = std::make_unique<Stmt>();
    S->K = K;
    S->Line = cur().Line;
    return S;
  }

  StmtPtr parseBlock() {
    auto S = makeStmt(Stmt::Block);
    expect(TokKind::LBrace);
    while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
      size_t Before = Pos;
      if (StmtPtr Inner = parseStmt())
        S->Stmts.push_back(std::move(Inner));
      if (Pos == Before)
        advance();
    }
    expect(TokKind::RBrace);
    return S;
  }

  /// simple := decl | assignment | expr — without the trailing ';'
  /// (shared by statements and for-headers).
  StmtPtr parseSimple() {
    if (atType()) {
      auto S = makeStmt(Stmt::Decl);
      S->DeclTy = parseType();
      S->Name = cur().Text;
      expect(TokKind::Ident);
      if (accept(TokKind::Assign))
        S->Init = parseExpr();
      return S;
    }
    ExprPtr E = parseExpr();
    if (!E)
      return nullptr;
    if (accept(TokKind::Assign)) {
      if (E->K != Expr::Var && E->K != Expr::Index) {
        error("assignment target must be a variable or an element");
        return nullptr;
      }
      auto S = makeStmt(Stmt::Assign);
      S->LHS = std::move(E);
      S->RHS = parseExpr();
      return S;
    }
    if (at(TokKind::PlusPlus) || at(TokKind::MinusMinus)) {
      // Desugar v++ / v-- into v = v +/- 1.
      bool Inc = at(TokKind::PlusPlus);
      advance();
      if (E->K != Expr::Var) {
        error("++/-- applies only to variables");
        return nullptr;
      }
      auto S = makeStmt(Stmt::Assign);
      auto RHS = std::make_unique<Expr>();
      RHS->K = Expr::Binary;
      RHS->Line = S->Line;
      RHS->BOp = Inc ? BinOp::Add : BinOp::Sub;
      auto V = std::make_unique<Expr>();
      V->K = Expr::Var;
      V->Name = E->Name;
      V->Line = S->Line;
      auto One = std::make_unique<Expr>();
      One->K = Expr::IntLit;
      One->IntVal = 1;
      One->Line = S->Line;
      RHS->L = std::move(V);
      RHS->R = std::move(One);
      S->LHS = std::move(E);
      S->RHS = std::move(RHS);
      return S;
    }
    auto S = makeStmt(Stmt::ExprSt);
    S->E = std::move(E);
    return S;
  }

  StmtPtr parseStmt() {
    if (at(TokKind::LBrace))
      return parseBlock();
    if (accept(TokKind::Semi))
      return makeStmt(Stmt::Block); // empty statement

    if (at(TokKind::KwIf)) {
      auto S = makeStmt(Stmt::If);
      advance();
      expect(TokKind::LParen);
      S->Cond = parseExpr();
      expect(TokKind::RParen);
      S->Then = parseStmt();
      if (accept(TokKind::KwElse))
        S->Else = parseStmt();
      return S;
    }
    if (at(TokKind::KwWhile)) {
      auto S = makeStmt(Stmt::While);
      advance();
      expect(TokKind::LParen);
      S->Cond = parseExpr();
      expect(TokKind::RParen);
      S->Body = parseStmt();
      return S;
    }
    if (at(TokKind::KwFor)) {
      auto S = makeStmt(Stmt::For);
      advance();
      expect(TokKind::LParen);
      if (!at(TokKind::Semi))
        S->ForInit = parseSimple();
      expect(TokKind::Semi);
      if (!at(TokKind::Semi))
        S->Cond = parseExpr();
      expect(TokKind::Semi);
      if (!at(TokKind::RParen))
        S->ForStep = parseSimple();
      expect(TokKind::RParen);
      S->Body = parseStmt();
      return S;
    }
    if (at(TokKind::KwBreak)) {
      auto S = makeStmt(Stmt::Break);
      advance();
      expect(TokKind::Semi);
      return S;
    }
    if (at(TokKind::KwContinue)) {
      auto S = makeStmt(Stmt::Continue);
      advance();
      expect(TokKind::Semi);
      return S;
    }
    if (at(TokKind::KwReturn)) {
      auto S = makeStmt(Stmt::Return);
      advance();
      if (!at(TokKind::Semi))
        S->E = parseExpr();
      expect(TokKind::Semi);
      return S;
    }
    if (at(TokKind::KwMakeStatic) || at(TokKind::KwMakeDynamic)) {
      bool IsStatic = at(TokKind::KwMakeStatic);
      auto S = makeStmt(IsStatic ? Stmt::MakeStatic : Stmt::MakeDynamic);
      advance();
      expect(TokKind::LParen);
      do {
        S->Vars.push_back(cur().Text);
        expect(TokKind::Ident);
      } while (accept(TokKind::Comma));
      if (IsStatic && accept(TokKind::Colon)) {
        if (accept(TokKind::KwCacheAll))
          S->Policy = ir::CachePolicy::CacheAll;
        else if (accept(TokKind::KwCacheOne))
          S->Policy = ir::CachePolicy::CacheOne;
        else if (accept(TokKind::KwCacheOneUnchecked))
          S->Policy = ir::CachePolicy::CacheOneUnchecked;
        else if (accept(TokKind::KwCacheIndexed))
          S->Policy = ir::CachePolicy::CacheIndexed;
        else
          error("expected a cache policy after ':'");
      }
      expect(TokKind::RParen);
      expect(TokKind::Semi);
      return S;
    }

    StmtPtr S = parseSimple();
    expect(TokKind::Semi);
    return S;
  }

  // --- Expressions, precedence climbing -------------------------------------

  ExprPtr makeExpr(Expr::Kind K) {
    auto E = std::make_unique<Expr>();
    E->K = K;
    E->Line = cur().Line;
    return E;
  }

  /// Binding powers; higher binds tighter.
  static int precedenceOf(TokKind K) {
    switch (K) {
    case TokKind::PipePipe: return 1;
    case TokKind::AmpAmp: return 2;
    case TokKind::Pipe: return 3;
    case TokKind::Caret: return 4;
    case TokKind::Amp: return 5;
    case TokKind::EqEq: case TokKind::NotEq: return 6;
    case TokKind::Lt: case TokKind::Le:
    case TokKind::Gt: case TokKind::Ge: return 7;
    case TokKind::Shl: case TokKind::Shr: return 8;
    case TokKind::Plus: case TokKind::Minus: return 9;
    case TokKind::Star: case TokKind::Slash: case TokKind::Percent: return 10;
    default: return -1;
    }
  }

  static BinOp binOpOf(TokKind K) {
    switch (K) {
    case TokKind::PipePipe: return BinOp::LogOr;
    case TokKind::AmpAmp: return BinOp::LogAnd;
    case TokKind::Pipe: return BinOp::BitOr;
    case TokKind::Caret: return BinOp::BitXor;
    case TokKind::Amp: return BinOp::BitAnd;
    case TokKind::EqEq: return BinOp::Eq;
    case TokKind::NotEq: return BinOp::Ne;
    case TokKind::Lt: return BinOp::Lt;
    case TokKind::Le: return BinOp::Le;
    case TokKind::Gt: return BinOp::Gt;
    case TokKind::Ge: return BinOp::Ge;
    case TokKind::Shl: return BinOp::Shl;
    case TokKind::Shr: return BinOp::Shr;
    case TokKind::Plus: return BinOp::Add;
    case TokKind::Minus: return BinOp::Sub;
    case TokKind::Star: return BinOp::Mul;
    case TokKind::Slash: return BinOp::Div;
    case TokKind::Percent: return BinOp::Rem;
    default: fatal("not a binary operator token");
    }
  }

  ExprPtr parseExpr(int MinPrec = 0) {
    ExprPtr L = parseUnary();
    while (true) {
      int Prec = precedenceOf(cur().Kind);
      if (Prec < 0 || Prec < MinPrec)
        return L;
      BinOp Op = binOpOf(cur().Kind);
      auto E = makeExpr(Expr::Binary);
      advance();
      E->BOp = Op;
      E->L = std::move(L);
      E->R = parseExpr(Prec + 1); // left-associative
      L = std::move(E);
    }
  }

  ExprPtr parseUnary() {
    if (at(TokKind::Minus)) {
      auto E = makeExpr(Expr::Unary);
      advance();
      E->UOp = UnOp::Neg;
      E->L = parseUnary();
      return E;
    }
    if (at(TokKind::Bang)) {
      auto E = makeExpr(Expr::Unary);
      advance();
      E->UOp = UnOp::Not;
      E->L = parseUnary();
      return E;
    }
    // Cast: '(' type ')' unary — lookahead for a type after '('.
    if (at(TokKind::LParen)) {
      TokKind Next = Toks[Pos + 1].Kind;
      if (Next == TokKind::KwInt || Next == TokKind::KwDouble) {
        auto E = makeExpr(Expr::Cast);
        advance(); // '('
        E->CastTo = parseType();
        expect(TokKind::RParen);
        E->L = parseUnary();
        return E;
      }
    }
    return parsePostfix();
  }

  ExprPtr parsePostfix() {
    ExprPtr E = parsePrimary();
    while (true) {
      if (at(TokKind::LBracket) || at(TokKind::AtLBracket)) {
        bool Static = at(TokKind::AtLBracket);
        auto Idx = makeExpr(Expr::Index);
        advance();
        Idx->StaticIndex = Static;
        Idx->L = std::move(E);
        Idx->R = parseExpr();
        expect(TokKind::RBracket);
        E = std::move(Idx);
        continue;
      }
      return E;
    }
  }

  ExprPtr parsePrimary() {
    if (at(TokKind::IntLit)) {
      auto E = makeExpr(Expr::IntLit);
      E->IntVal = cur().IntVal;
      advance();
      return E;
    }
    if (at(TokKind::FloatLit)) {
      auto E = makeExpr(Expr::FloatLit);
      E->FloatVal = cur().FloatVal;
      advance();
      return E;
    }
    if (at(TokKind::Ident)) {
      std::string Name = cur().Text;
      unsigned Line = cur().Line;
      advance();
      if (accept(TokKind::LParen)) {
        auto E = std::make_unique<Expr>();
        E->K = Expr::Call;
        E->Name = std::move(Name);
        E->Line = Line;
        if (!at(TokKind::RParen)) {
          do {
            E->Args.push_back(parseExpr());
          } while (accept(TokKind::Comma));
        }
        expect(TokKind::RParen);
        return E;
      }
      auto E = std::make_unique<Expr>();
      E->K = Expr::Var;
      E->Name = std::move(Name);
      E->Line = Line;
      return E;
    }
    if (accept(TokKind::LParen)) {
      ExprPtr E = parseExpr();
      expect(TokKind::RParen);
      return E;
    }
    error(formatString("expected an expression, found %s",
                       tokKindName(cur().Kind)));
    auto E = makeExpr(Expr::IntLit);
    return E;
  }

  std::vector<Token> Toks;
  std::vector<std::string> &Errors;
  size_t Pos = 0;
};

} // namespace

ProgramAST parseProgram(const std::string &Source,
                        std::vector<std::string> &Errors) {
  std::vector<Token> Toks = lex(Source, Errors);
  Parser P(std::move(Toks), Errors);
  return P.parse();
}

} // namespace frontend
} // namespace dyc
