//===- frontend/Parser.h - MiniC recursive-descent parser ----------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses MiniC source into a ProgramAST. Errors are collected (with line
/// numbers) rather than thrown; parsing recovers at statement boundaries.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_FRONTEND_PARSER_H
#define DYC_FRONTEND_PARSER_H

#include "frontend/AST.h"
#include "frontend/Lexer.h"

namespace dyc {
namespace frontend {

/// Parses \p Source; on error, messages are appended to \p Errors and the
/// partial AST is still returned.
ProgramAST parseProgram(const std::string &Source,
                        std::vector<std::string> &Errors);

} // namespace frontend
} // namespace dyc

#endif // DYC_FRONTEND_PARSER_H
