//===- frontend/Lexer.cpp --------------------------------------------------------===//

#include "frontend/Lexer.h"

#include "support/Support.h"

#include <cctype>
#include <cstdlib>

namespace dyc {
namespace frontend {

namespace {

struct Keyword {
  const char *Text;
  TokKind Kind;
};

const Keyword Keywords[] = {
    {"int", TokKind::KwInt},
    {"double", TokKind::KwDouble},
    {"void", TokKind::KwVoid},
    {"if", TokKind::KwIf},
    {"else", TokKind::KwElse},
    {"while", TokKind::KwWhile},
    {"for", TokKind::KwFor},
    {"return", TokKind::KwReturn},
    {"break", TokKind::KwBreak},
    {"continue", TokKind::KwContinue},
    {"extern", TokKind::KwExtern},
    {"pure", TokKind::KwPure},
    {"make_static", TokKind::KwMakeStatic},
    {"make_dynamic", TokKind::KwMakeDynamic},
    {"cache_all", TokKind::KwCacheAll},
    {"cache_one", TokKind::KwCacheOne},
    {"cache_one_unchecked", TokKind::KwCacheOneUnchecked},
    {"cache_indexed", TokKind::KwCacheIndexed},
};

} // namespace

const char *tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof: return "end of file";
  case TokKind::Ident: return "identifier";
  case TokKind::IntLit: return "integer literal";
  case TokKind::FloatLit: return "floating literal";
  case TokKind::KwInt: return "'int'";
  case TokKind::KwDouble: return "'double'";
  case TokKind::KwVoid: return "'void'";
  case TokKind::KwIf: return "'if'";
  case TokKind::KwElse: return "'else'";
  case TokKind::KwWhile: return "'while'";
  case TokKind::KwFor: return "'for'";
  case TokKind::KwReturn: return "'return'";
  case TokKind::KwBreak: return "'break'";
  case TokKind::KwContinue: return "'continue'";
  case TokKind::KwExtern: return "'extern'";
  case TokKind::KwPure: return "'pure'";
  case TokKind::KwMakeStatic: return "'make_static'";
  case TokKind::KwMakeDynamic: return "'make_dynamic'";
  case TokKind::KwCacheAll: return "'cache_all'";
  case TokKind::KwCacheOne: return "'cache_one'";
  case TokKind::KwCacheOneUnchecked: return "'cache_one_unchecked'";
  case TokKind::KwCacheIndexed: return "'cache_indexed'";
  case TokKind::LParen: return "'('";
  case TokKind::RParen: return "')'";
  case TokKind::LBrace: return "'{'";
  case TokKind::RBrace: return "'}'";
  case TokKind::LBracket: return "'['";
  case TokKind::RBracket: return "']'";
  case TokKind::AtLBracket: return "'@['";
  case TokKind::Comma: return "','";
  case TokKind::Semi: return "';'";
  case TokKind::Colon: return "':'";
  case TokKind::Star: return "'*'";
  case TokKind::Assign: return "'='";
  case TokKind::Plus: return "'+'";
  case TokKind::Minus: return "'-'";
  case TokKind::Slash: return "'/'";
  case TokKind::Percent: return "'%'";
  case TokKind::EqEq: return "'=='";
  case TokKind::NotEq: return "'!='";
  case TokKind::Lt: return "'<'";
  case TokKind::Le: return "'<='";
  case TokKind::Gt: return "'>'";
  case TokKind::Ge: return "'>='";
  case TokKind::AmpAmp: return "'&&'";
  case TokKind::PipePipe: return "'||'";
  case TokKind::Bang: return "'!'";
  case TokKind::Amp: return "'&'";
  case TokKind::Pipe: return "'|'";
  case TokKind::Caret: return "'^'";
  case TokKind::Shl: return "'<<'";
  case TokKind::Shr: return "'>>'";
  case TokKind::PlusPlus: return "'++'";
  case TokKind::MinusMinus: return "'--'";
  }
  return "<bad-token>";
}

std::vector<Token> lex(const std::string &Source,
                       std::vector<std::string> &Errors) {
  std::vector<Token> Toks;
  size_t I = 0, N = Source.size();
  unsigned Line = 1, Col = 1;

  auto Advance = [&](size_t K = 1) {
    for (size_t J = 0; J != K && I < N; ++J, ++I) {
      if (Source[I] == '\n') {
        ++Line;
        Col = 1;
      } else {
        ++Col;
      }
    }
  };
  auto Peek = [&](size_t K = 0) -> char {
    return I + K < N ? Source[I + K] : '\0';
  };
  auto Push = [&](TokKind K, std::string Text, size_t Len) {
    Token T;
    T.Kind = K;
    T.Text = std::move(Text);
    T.Line = Line;
    T.Col = Col;
    Toks.push_back(std::move(T));
    Advance(Len);
  };

  while (I < N) {
    char C = Peek();
    // Whitespace.
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      Advance();
      continue;
    }
    // Comments.
    if (C == '/' && Peek(1) == '/') {
      while (I < N && Peek() != '\n')
        Advance();
      continue;
    }
    if (C == '/' && Peek(1) == '*') {
      Advance(2);
      while (I < N && !(Peek() == '*' && Peek(1) == '/'))
        Advance();
      if (I >= N)
        Errors.push_back(formatString("line %u: unterminated comment", Line));
      else
        Advance(2);
      continue;
    }
    // Identifiers and keywords.
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      size_t Len = 0;
      while (I + Len < N &&
             (std::isalnum(static_cast<unsigned char>(Source[I + Len])) ||
              Source[I + Len] == '_'))
        ++Len;
      std::string Text = Source.substr(Start, Len);
      TokKind K = TokKind::Ident;
      for (const Keyword &KW : Keywords)
        if (Text == KW.Text) {
          K = KW.Kind;
          break;
        }
      Push(K, std::move(Text), Len);
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
      size_t Len = 0;
      bool IsFloat = false;
      while (I + Len < N) {
        char D = Source[I + Len];
        if (std::isdigit(static_cast<unsigned char>(D))) {
          ++Len;
        } else if (D == '.' && !IsFloat) {
          IsFloat = true;
          ++Len;
        } else if ((D == 'e' || D == 'E') &&
                   (std::isdigit(
                        static_cast<unsigned char>(Peek(Len + 1))) ||
                    ((Peek(Len + 1) == '+' || Peek(Len + 1) == '-') &&
                     std::isdigit(
                         static_cast<unsigned char>(Peek(Len + 2)))))) {
          IsFloat = true;
          Len += Peek(Len + 1) == '+' || Peek(Len + 1) == '-' ? 2 : 1;
          while (I + Len < N &&
                 std::isdigit(static_cast<unsigned char>(Source[I + Len])))
            ++Len;
          break;
        } else {
          break;
        }
      }
      std::string Text = Source.substr(I, Len);
      Token T;
      T.Line = Line;
      T.Col = Col;
      T.Text = Text;
      if (IsFloat) {
        T.Kind = TokKind::FloatLit;
        T.FloatVal = std::strtod(Text.c_str(), nullptr);
      } else {
        T.Kind = TokKind::IntLit;
        T.IntVal = std::strtoll(Text.c_str(), nullptr, 10);
      }
      Toks.push_back(std::move(T));
      Advance(Len);
      continue;
    }
    // Multi-character operators.
    struct Multi {
      const char *Text;
      TokKind Kind;
    };
    static const Multi Multis[] = {
        {"@[", TokKind::AtLBracket}, {"==", TokKind::EqEq},
        {"!=", TokKind::NotEq},      {"<=", TokKind::Le},
        {">=", TokKind::Ge},         {"&&", TokKind::AmpAmp},
        {"||", TokKind::PipePipe},   {"<<", TokKind::Shl},
        {">>", TokKind::Shr},        {"++", TokKind::PlusPlus},
        {"--", TokKind::MinusMinus},
    };
    bool Matched = false;
    for (const Multi &M : Multis) {
      if (C == M.Text[0] && Peek(1) == M.Text[1]) {
        Push(M.Kind, M.Text, 2);
        Matched = true;
        break;
      }
    }
    if (Matched)
      continue;
    // Single-character tokens.
    TokKind K;
    switch (C) {
    case '(': K = TokKind::LParen; break;
    case ')': K = TokKind::RParen; break;
    case '{': K = TokKind::LBrace; break;
    case '}': K = TokKind::RBrace; break;
    case '[': K = TokKind::LBracket; break;
    case ']': K = TokKind::RBracket; break;
    case ',': K = TokKind::Comma; break;
    case ';': K = TokKind::Semi; break;
    case ':': K = TokKind::Colon; break;
    case '*': K = TokKind::Star; break;
    case '=': K = TokKind::Assign; break;
    case '+': K = TokKind::Plus; break;
    case '-': K = TokKind::Minus; break;
    case '/': K = TokKind::Slash; break;
    case '%': K = TokKind::Percent; break;
    case '<': K = TokKind::Lt; break;
    case '>': K = TokKind::Gt; break;
    case '!': K = TokKind::Bang; break;
    case '&': K = TokKind::Amp; break;
    case '|': K = TokKind::Pipe; break;
    case '^': K = TokKind::Caret; break;
    default:
      Errors.push_back(
          formatString("line %u: unexpected character '%c'", Line, C));
      Advance();
      continue;
    }
    Push(K, std::string(1, C), 1);
  }

  Token Eof;
  Eof.Kind = TokKind::Eof;
  Eof.Line = Line;
  Eof.Col = Col;
  Toks.push_back(Eof);
  return Toks;
}

} // namespace frontend
} // namespace dyc
