//===- frontend/AST.h - MiniC abstract syntax ----------------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Untyped AST produced by the parser; types are checked and attached
/// during lowering. MiniC is C-like: int/double scalars, int*/double*
/// word-addressed pointers, functions, if/while/for. DyC's annotations
/// appear as statements (`make_static`, `make_dynamic`) and as the `@[`
/// static-load index operator; functions may be declared `pure`, which
/// makes calls to them eligible for static-call treatment.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_FRONTEND_AST_H
#define DYC_FRONTEND_AST_H

#include "ir/Instruction.h"

#include <memory>
#include <string>
#include <vector>

namespace dyc {
namespace frontend {

/// Source-level types.
enum class MTy : uint8_t { Int, Double, IntPtr, DoublePtr, Void };

const char *mtyName(MTy T);

enum class BinOp : uint8_t {
  Add, Sub, Mul, Div, Rem,
  Eq, Ne, Lt, Le, Gt, Ge,
  LogAnd, LogOr, ///< evaluated without short-circuit (documented)
  BitAnd, BitOr, BitXor, Shl, Shr,
};

enum class UnOp : uint8_t { Neg, Not };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression node (tagged union).
struct Expr {
  enum Kind : uint8_t {
    IntLit, FloatLit, Var, Unary, Binary, Index, Call, Cast
  } K = IntLit;

  unsigned Line = 0;

  int64_t IntVal = 0;    // IntLit
  double FloatVal = 0;   // FloatLit
  std::string Name;      // Var, Call
  UnOp UOp = UnOp::Neg;  // Unary
  BinOp BOp = BinOp::Add; // Binary
  ExprPtr L, R;           // Unary (L), Binary, Index (L=base, R=index)
  bool StaticIndex = false; ///< `@[` — the static-load annotation
  std::vector<ExprPtr> Args; // Call
  MTy CastTo = MTy::Int;     // Cast (operand in L)
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Statement node (tagged union).
struct Stmt {
  enum Kind : uint8_t {
    Decl, Assign, If, While, For, Return, ExprSt, Block,
    Break, Continue,
    MakeStatic, MakeDynamic
  } K = Block;

  unsigned Line = 0;

  // Decl.
  MTy DeclTy = MTy::Int;
  std::string Name;
  ExprPtr Init;

  // Assign: LHS is Var or Index.
  ExprPtr LHS, RHS;

  // If / While / For.
  ExprPtr Cond;
  StmtPtr Then, Else;       // If
  StmtPtr Body;             // While/For
  StmtPtr ForInit, ForStep; // For (Decl or Assign)

  // Return / ExprSt.
  ExprPtr E;

  // Block.
  std::vector<StmtPtr> Stmts;

  // MakeStatic / MakeDynamic.
  std::vector<std::string> Vars;
  ir::CachePolicy Policy = ir::CachePolicy::CacheAll;
};

/// A parameter declaration.
struct ParamDecl {
  MTy Ty = MTy::Int;
  std::string Name;
};

/// A function definition.
struct FuncDecl {
  std::string Name;
  MTy RetTy = MTy::Void;
  bool Pure = false;
  std::vector<ParamDecl> Params;
  StmtPtr Body; // Block
  unsigned Line = 0;
};

/// An external declaration.
struct ExternDeclAST {
  std::string Name;
  MTy RetTy = MTy::Double;
  bool Pure = false;
  std::vector<MTy> ArgTys;
  unsigned Line = 0;
};

/// A parsed translation unit.
struct ProgramAST {
  std::vector<ExternDeclAST> Externs;
  std::vector<FuncDecl> Funcs;
};

} // namespace frontend
} // namespace dyc

#endif // DYC_FRONTEND_AST_H
