//===- frontend/Lower.h - AST-to-IR lowering ------------------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Types, checks, and lowers a MiniC ProgramAST into an ir::Module. Each
/// source variable maps to one fixed virtual register (the IR is non-SSA),
/// which is what makes program-point binding times meaningful downstream.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_FRONTEND_LOWER_H
#define DYC_FRONTEND_LOWER_H

#include "frontend/AST.h"
#include "ir/Module.h"

namespace dyc {
namespace frontend {

/// Lowers \p P into a module. Type errors are appended to \p Errors; on
/// error the module may be incomplete.
ir::Module lowerProgram(const ProgramAST &P, std::vector<std::string> &Errors);

/// Convenience: parse + lower + verify in one step. Returns true on
/// success.
bool compileMiniC(const std::string &Source, ir::Module &M,
                  std::vector<std::string> &Errors);

} // namespace frontend
} // namespace dyc

#endif // DYC_FRONTEND_LOWER_H
