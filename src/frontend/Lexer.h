//===- frontend/Lexer.h - MiniC tokenizer --------------------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for MiniC, the annotated C subset the workloads are written
/// in. DyC-specific lexemes: `make_static`, `make_dynamic`, the cache
/// policies, the `@[` static-load marker, and the `pure` function
/// qualifier.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_FRONTEND_LEXER_H
#define DYC_FRONTEND_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace dyc {
namespace frontend {

enum class TokKind : uint8_t {
  Eof,
  Ident,
  IntLit,
  FloatLit,

  // Keywords.
  KwInt, KwDouble, KwVoid, KwIf, KwElse, KwWhile, KwFor, KwReturn,
  KwBreak, KwContinue,
  KwExtern, KwPure,
  KwMakeStatic, KwMakeDynamic,
  KwCacheAll, KwCacheOne, KwCacheOneUnchecked, KwCacheIndexed,

  // Punctuation and operators.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  AtLBracket, ///< `@[` — static-load indexing
  Comma, Semi, Colon, Star,
  Assign, Plus, Minus, Slash, Percent,
  EqEq, NotEq, Lt, Le, Gt, Ge,
  AmpAmp, PipePipe, Bang,
  Amp, Pipe, Caret, Shl, Shr,
  PlusPlus, MinusMinus,
};

/// One token with source position (1-based line/column).
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;
  int64_t IntVal = 0;
  double FloatVal = 0;
  unsigned Line = 0;
  unsigned Col = 0;
};

/// Tokenizes \p Source. On a lexical error, appends a message to
/// \p Errors and skips the offending character.
std::vector<Token> lex(const std::string &Source,
                       std::vector<std::string> &Errors);

const char *tokKindName(TokKind K);

} // namespace frontend
} // namespace dyc

#endif // DYC_FRONTEND_LEXER_H
