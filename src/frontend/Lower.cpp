//===- frontend/Lower.cpp --------------------------------------------------------===//

#include "frontend/Lower.h"

#include "frontend/Parser.h"
#include "ir/IRBuilder.h"

#include <map>

namespace dyc {
namespace frontend {

namespace {

using ir::BlockId;
using ir::Opcode;
using ir::Reg;

ir::Type irTypeOf(MTy T) {
  switch (T) {
  case MTy::Double:
    return ir::Type::F64;
  case MTy::Void:
    return ir::Type::Void;
  default:
    return ir::Type::I64; // int and both pointer flavors
  }
}

bool isPtr(MTy T) { return T == MTy::IntPtr || T == MTy::DoublePtr; }

/// A typed value during expression lowering.
struct TValue {
  Reg R = ir::NoReg;
  MTy Ty = MTy::Int;
};

class FunctionLowering {
public:
  FunctionLowering(const ProgramAST &P, ir::Module &M, ir::Function &F,
                   const FuncDecl &D, std::vector<std::string> &Errors)
      : P(P), M(M), F(F), D(D), B(F), Errors(Errors) {}

  void run() {
    BlockId Entry = F.newBlock("entry");
    B.setInsertPoint(Entry);
    pushScope();
    for (const ParamDecl &PD : D.Params) {
      Reg R = F.newReg(irTypeOf(PD.Ty), PD.Name);
      declare(PD.Name, R, PD.Ty, D.Line);
    }
    F.NumParams = static_cast<uint32_t>(D.Params.size());
    lowerStmt(*D.Body);
    popScope();
    if (!terminated()) {
      if (D.RetTy == MTy::Void) {
        B.ret();
      } else {
        // Implicit zero return, C-style.
        Reg Z = D.RetTy == MTy::Double ? B.constF(0.0) : B.constI(0);
        B.ret(Z);
      }
    }
  }

private:
  void error(unsigned Line, const std::string &Msg) {
    Errors.push_back(formatString("line %u: in '%s': %s", Line,
                                  F.Name.c_str(), Msg.c_str()));
  }

  // --- Scopes ---------------------------------------------------------------
  struct VarInfo {
    Reg R;
    MTy Ty;
  };

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  void declare(const std::string &Name, Reg R, MTy Ty, unsigned Line) {
    if (Scopes.back().count(Name))
      error(Line, "redeclaration of '" + Name + "'");
    Scopes.back()[Name] = {R, Ty};
  }

  const VarInfo *lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }

  /// True if \p S contains a `continue` that binds to the enclosing loop
  /// (nested loops capture their own).
  static bool bodyHasContinue(const Stmt &S) {
    switch (S.K) {
    case Stmt::Continue:
      return true;
    case Stmt::While:
    case Stmt::For:
      return false; // binds to the inner loop
    case Stmt::Block:
      for (const StmtPtr &Inner : S.Stmts)
        if (bodyHasContinue(*Inner))
          return true;
      return false;
    case Stmt::If:
      return (S.Then && bodyHasContinue(*S.Then)) ||
             (S.Else && bodyHasContinue(*S.Else));
    default:
      return false;
    }
  }

  bool terminated() const {
    const ir::BasicBlock &BB = F.block(B.insertPoint());
    return !BB.Instrs.empty() && BB.Instrs.back().isTerminator();
  }

  // --- Coercions --------------------------------------------------------------
  TValue coerce(TValue V, MTy To, unsigned Line) {
    if (V.Ty == To)
      return V;
    if (V.Ty == MTy::Int && To == MTy::Double)
      return {B.unary(Opcode::IToF, V.R), MTy::Double};
    error(Line, formatString("cannot convert %s to %s", mtyName(V.Ty),
                             mtyName(To)));
    return {V.R, To};
  }

  // --- Expressions -------------------------------------------------------------
  TValue lowerExpr(const Expr &E) {
    switch (E.K) {
    case Expr::IntLit:
      return {B.constI(E.IntVal), MTy::Int};
    case Expr::FloatLit:
      return {B.constF(E.FloatVal), MTy::Double};
    case Expr::Var: {
      const VarInfo *V = lookup(E.Name);
      if (!V) {
        error(E.Line, "use of undeclared variable '" + E.Name + "'");
        return {B.constI(0), MTy::Int};
      }
      return {V->R, V->Ty};
    }
    case Expr::Unary: {
      TValue V = lowerExpr(*E.L);
      if (E.UOp == UnOp::Neg) {
        if (V.Ty == MTy::Double)
          return {B.unary(Opcode::FNeg, V.R), MTy::Double};
        if (V.Ty != MTy::Int)
          error(E.Line, "negation of a pointer");
        return {B.unary(Opcode::Neg, V.R), MTy::Int};
      }
      // Logical not.
      if (V.Ty != MTy::Int)
        error(E.Line, "'!' requires an int operand");
      Reg Z = B.constI(0);
      return {B.binary(Opcode::CmpEq, V.R, Z), MTy::Int};
    }
    case Expr::Binary:
      return lowerBinary(E);
    case Expr::Index: {
      TValue Base = lowerExpr(*E.L);
      if (!isPtr(Base.Ty)) {
        error(E.Line, "indexing a non-pointer");
        return {B.constI(0), MTy::Int};
      }
      TValue Idx = lowerExpr(*E.R);
      if (Idx.Ty != MTy::Int)
        error(E.Line, "index must be an int");
      Reg Addr = B.binary(Opcode::Add, Base.R, Idx.R);
      MTy ElemTy = Base.Ty == MTy::IntPtr ? MTy::Int : MTy::Double;
      return {B.load(Addr, 0, irTypeOf(ElemTy), E.StaticIndex), ElemTy};
    }
    case Expr::Call:
      return lowerCall(E);
    case Expr::Cast: {
      TValue V = lowerExpr(*E.L);
      if (E.CastTo == MTy::Double) {
        if (V.Ty == MTy::Double)
          return V;
        if (V.Ty == MTy::Int)
          return {B.unary(Opcode::IToF, V.R), MTy::Double};
        error(E.Line, "cannot cast a pointer to double");
        return V;
      }
      if (V.Ty == MTy::Int || isPtr(V.Ty))
        return {V.R, E.CastTo};
      return {B.unary(Opcode::FToI, V.R), E.CastTo};
    }
    }
    fatal("unhandled expression kind");
  }

  TValue lowerBinary(const Expr &E) {
    TValue L = lowerExpr(*E.L);
    TValue R = lowerExpr(*E.R);

    auto IntOnly = [&](Opcode Op) -> TValue {
      if (L.Ty == MTy::Double || R.Ty == MTy::Double)
        error(E.Line, "operator requires integer operands");
      return {B.binary(Op, L.R, R.R), MTy::Int};
    };

    switch (E.BOp) {
    case BinOp::Rem: return IntOnly(Opcode::Rem);
    case BinOp::BitAnd: return IntOnly(Opcode::And);
    case BinOp::BitOr: return IntOnly(Opcode::Or);
    case BinOp::BitXor: return IntOnly(Opcode::Xor);
    case BinOp::Shl: return IntOnly(Opcode::Shl);
    case BinOp::Shr: return IntOnly(Opcode::Shr);
    case BinOp::LogAnd:
    case BinOp::LogOr: {
      // Non-short-circuit: normalize to 0/1, then and/or.
      if (L.Ty == MTy::Double || R.Ty == MTy::Double)
        error(E.Line, "logical operator requires integer operands");
      Reg Z1 = B.constI(0);
      Reg LB = B.binary(Opcode::CmpNe, L.R, Z1);
      Reg Z2 = B.constI(0);
      Reg RB = B.binary(Opcode::CmpNe, R.R, Z2);
      return {B.binary(E.BOp == BinOp::LogAnd ? Opcode::And : Opcode::Or,
                       LB, RB),
              MTy::Int};
    }
    default:
      break;
    }

    // Pointer arithmetic: ptr +/- int, ptr - ptr, pointer comparisons.
    if (isPtr(L.Ty) || isPtr(R.Ty)) {
      bool Cmp = E.BOp >= BinOp::Eq && E.BOp <= BinOp::Ge;
      if (Cmp) {
        return {B.binary(compareOp(E.BOp, /*Float=*/false), L.R, R.R),
                MTy::Int};
      }
      if (E.BOp == BinOp::Add && isPtr(L.Ty) && R.Ty == MTy::Int)
        return {B.binary(Opcode::Add, L.R, R.R), L.Ty};
      if (E.BOp == BinOp::Add && isPtr(R.Ty) && L.Ty == MTy::Int)
        return {B.binary(Opcode::Add, L.R, R.R), R.Ty};
      if (E.BOp == BinOp::Sub && isPtr(L.Ty) && R.Ty == MTy::Int)
        return {B.binary(Opcode::Sub, L.R, R.R), L.Ty};
      if (E.BOp == BinOp::Sub && isPtr(L.Ty) && L.Ty == R.Ty)
        return {B.binary(Opcode::Sub, L.R, R.R), MTy::Int};
      error(E.Line, "invalid pointer arithmetic");
      return {L.R, MTy::Int};
    }

    bool Float = L.Ty == MTy::Double || R.Ty == MTy::Double;
    if (Float) {
      L = coerce(L, MTy::Double, E.Line);
      R = coerce(R, MTy::Double, E.Line);
    }

    if (E.BOp >= BinOp::Eq && E.BOp <= BinOp::Ge)
      return {B.binary(compareOp(E.BOp, Float), L.R, R.R), MTy::Int};

    Opcode Op;
    switch (E.BOp) {
    case BinOp::Add: Op = Float ? Opcode::FAdd : Opcode::Add; break;
    case BinOp::Sub: Op = Float ? Opcode::FSub : Opcode::Sub; break;
    case BinOp::Mul: Op = Float ? Opcode::FMul : Opcode::Mul; break;
    case BinOp::Div: Op = Float ? Opcode::FDiv : Opcode::Div; break;
    default: fatal("unhandled arithmetic operator");
    }
    return {B.binary(Op, L.R, R.R), Float ? MTy::Double : MTy::Int};
  }

  static Opcode compareOp(BinOp Op, bool Float) {
    switch (Op) {
    case BinOp::Eq: return Float ? Opcode::FCmpEq : Opcode::CmpEq;
    case BinOp::Ne: return Float ? Opcode::FCmpNe : Opcode::CmpNe;
    case BinOp::Lt: return Float ? Opcode::FCmpLt : Opcode::CmpLt;
    case BinOp::Le: return Float ? Opcode::FCmpLe : Opcode::CmpLe;
    case BinOp::Gt: return Float ? Opcode::FCmpGt : Opcode::CmpGt;
    case BinOp::Ge: return Float ? Opcode::FCmpGe : Opcode::CmpGe;
    default: fatal("not a comparison");
    }
  }

  TValue lowerCall(const Expr &E) {
    int FnIdx = M.findFunction(E.Name);
    int ExtIdx = FnIdx < 0 ? M.findExternal(E.Name) : -1;
    if (FnIdx < 0 && ExtIdx < 0) {
      error(E.Line, "call to undeclared function '" + E.Name + "'");
      return {B.constI(0), MTy::Int};
    }

    std::vector<Reg> Args;
    bool Pure;
    MTy RetTy;
    if (FnIdx >= 0) {
      const ir::Function &Callee = M.function(FnIdx);
      Pure = Callee.Pure;
      RetTy = Callee.RetTy == ir::Type::F64   ? MTy::Double
              : Callee.RetTy == ir::Type::I64 ? MTy::Int
                                              : MTy::Void;
      if (E.Args.size() != Callee.NumParams) {
        error(E.Line, "wrong number of arguments to '" + E.Name + "'");
        return {B.constI(0), MTy::Int};
      }
      for (size_t I = 0; I != E.Args.size(); ++I) {
        TValue V = lowerExpr(*E.Args[I]);
        ir::Type PT = Callee.regType(static_cast<Reg>(I));
        if (PT == ir::Type::F64)
          V = coerce(V, MTy::Double, E.Line);
        else if (V.Ty == MTy::Double)
          error(E.Line, "double argument passed to int parameter");
        Args.push_back(V.R);
      }
      Reg R = B.call(M, FnIdx, Args, Pure);
      return {R, RetTy};
    }

    const ir::ExternalDecl &Decl = M.external(ExtIdx);
    Pure = Decl.Pure;
    RetTy = Decl.RetTy == ir::Type::F64 ? MTy::Double : MTy::Int;
    if (E.Args.size() != Decl.NumArgs) {
      error(E.Line, "wrong number of arguments to '" + E.Name + "'");
      return {B.constI(0), MTy::Int};
    }
    for (const ExprPtr &A : E.Args) {
      TValue V = lowerExpr(*A);
      // Externals in this project take doubles.
      V = coerce(V, MTy::Double, E.Line);
      Args.push_back(V.R);
    }
    Reg R = B.callExt(M, ExtIdx, Args, Pure);
    return {R, RetTy};
  }

  // --- Statements --------------------------------------------------------------
  void lowerStmt(const Stmt &S) {
    if (terminated() && S.K != Stmt::Block) {
      // Unreachable code after return; lower into a fresh dead block so the
      // builder invariant holds.
      BlockId Dead = F.newBlock("dead");
      B.setInsertPoint(Dead);
    }
    switch (S.K) {
    case Stmt::Block: {
      pushScope();
      for (const StmtPtr &Inner : S.Stmts) {
        if (terminated()) {
          BlockId Dead = F.newBlock("dead");
          B.setInsertPoint(Dead);
        }
        lowerStmt(*Inner);
      }
      popScope();
      return;
    }
    case Stmt::Decl: {
      Reg R = F.newReg(irTypeOf(S.DeclTy), S.Name);
      declare(S.Name, R, S.DeclTy, S.Line);
      if (S.Init) {
        TValue V = lowerExpr(*S.Init);
        V = coerceAssign(V, S.DeclTy, S.Line);
        B.movTo(R, V.R);
      } else {
        Reg Z = S.DeclTy == MTy::Double ? B.constF(0.0) : B.constI(0);
        B.movTo(R, Z);
      }
      return;
    }
    case Stmt::Assign: {
      if (S.LHS->K == Expr::Var) {
        const VarInfo *V = lookup(S.LHS->Name);
        if (!V) {
          error(S.Line, "assignment to undeclared variable '" +
                            S.LHS->Name + "'");
          return;
        }
        TValue RHS = lowerExpr(*S.RHS);
        RHS = coerceAssign(RHS, V->Ty, S.Line);
        B.movTo(V->R, RHS.R);
        return;
      }
      // Element assignment.
      TValue Base = lowerExpr(*S.LHS->L);
      if (!isPtr(Base.Ty)) {
        error(S.Line, "indexed assignment to a non-pointer");
        return;
      }
      TValue Idx = lowerExpr(*S.LHS->R);
      if (Idx.Ty != MTy::Int)
        error(S.Line, "index must be an int");
      MTy ElemTy = Base.Ty == MTy::IntPtr ? MTy::Int : MTy::Double;
      TValue RHS = lowerExpr(*S.RHS);
      RHS = coerceAssign(RHS, ElemTy, S.Line);
      Reg Addr = B.binary(Opcode::Add, Base.R, Idx.R);
      B.store(Addr, 0, RHS.R);
      return;
    }
    case Stmt::If: {
      TValue C = lowerExpr(*S.Cond);
      if (C.Ty == MTy::Double)
        error(S.Line, "if-condition must be an int");
      BlockId ThenB = F.newBlock("then");
      BlockId Merge = F.newBlock("endif");
      BlockId ElseB = S.Else ? F.newBlock("else") : Merge;
      B.condBr(C.R, ThenB, ElseB);
      B.setInsertPoint(ThenB);
      lowerStmt(*S.Then);
      if (!terminated())
        B.br(Merge);
      if (S.Else) {
        B.setInsertPoint(ElseB);
        lowerStmt(*S.Else);
        if (!terminated())
          B.br(Merge);
      }
      B.setInsertPoint(Merge);
      return;
    }
    case Stmt::While: {
      BlockId Header = F.newBlock("while.head");
      BlockId Body = F.newBlock("while.body");
      BlockId Exit = F.newBlock("while.exit");
      B.br(Header);
      B.setInsertPoint(Header);
      TValue C = lowerExpr(*S.Cond);
      if (C.Ty == MTy::Double)
        error(S.Line, "while-condition must be an int");
      B.condBr(C.R, Body, Exit);
      B.setInsertPoint(Body);
      Loops.push_back({Header, Exit});
      lowerStmt(*S.Body);
      Loops.pop_back();
      if (!terminated())
        B.br(Header);
      B.setInsertPoint(Exit);
      return;
    }
    case Stmt::For: {
      pushScope(); // the for-init declaration scopes over the loop
      if (S.ForInit)
        lowerStmt(*S.ForInit);
      BlockId Header = F.newBlock("for.head");
      BlockId Body = F.newBlock("for.body");
      BlockId Exit = F.newBlock("for.exit");
      B.br(Header);
      B.setInsertPoint(Header);
      if (S.Cond) {
        TValue C = lowerExpr(*S.Cond);
        if (C.Ty == MTy::Double)
          error(S.Line, "for-condition must be an int");
        B.condBr(C.R, Body, Exit);
      } else {
        B.br(Body);
      }
      B.setInsertPoint(Body);
      // `continue` in a for-loop must run the step; only materialize the
      // dedicated latch block when the body actually contains one, so
      // ordinary loops keep the straight body -> step -> header shape.
      if (bodyHasContinue(*S.Body)) {
        BlockId Latch = F.newBlock("for.latch");
        Loops.push_back({Latch, Exit});
        lowerStmt(*S.Body);
        Loops.pop_back();
        if (!terminated())
          B.br(Latch);
        B.setInsertPoint(Latch);
        if (S.ForStep)
          lowerStmt(*S.ForStep);
        B.br(Header);
      } else {
        Loops.push_back({Header, Exit}); // unused Continue target
        lowerStmt(*S.Body);
        Loops.pop_back();
        if (!terminated()) {
          if (S.ForStep)
            lowerStmt(*S.ForStep);
          B.br(Header);
        }
      }
      B.setInsertPoint(Exit);
      popScope();
      return;
    }
    case Stmt::Return: {
      if (D.RetTy == MTy::Void) {
        if (S.E)
          error(S.Line, "void function returns a value");
        B.ret();
        return;
      }
      if (!S.E) {
        error(S.Line, "non-void function returns nothing");
        B.ret(B.constI(0));
        return;
      }
      TValue V = lowerExpr(*S.E);
      V = coerceAssign(V, D.RetTy, S.Line);
      B.ret(V.R);
      return;
    }
    case Stmt::ExprSt:
      lowerExpr(*S.E);
      return;
    case Stmt::Break:
    case Stmt::Continue: {
      if (Loops.empty()) {
        error(S.Line, S.K == Stmt::Break ? "break outside a loop"
                                         : "continue outside a loop");
        return;
      }
      B.br(S.K == Stmt::Break ? Loops.back().Break
                              : Loops.back().Continue);
      return;
    }
    case Stmt::MakeStatic:
    case Stmt::MakeDynamic: {
      std::vector<Reg> Regs;
      for (const std::string &Name : S.Vars) {
        const VarInfo *V = lookup(Name);
        if (!V) {
          error(S.Line, "annotation names undeclared variable '" + Name +
                            "'");
          continue;
        }
        Regs.push_back(V->R);
      }
      if (S.K == Stmt::MakeStatic)
        B.makeStatic(Regs, S.Policy);
      else
        B.makeDynamic(Regs);
      return;
    }
    }
  }

  TValue coerceAssign(TValue V, MTy To, unsigned Line) {
    if (V.Ty == To)
      return V;
    if (To == MTy::Double && V.Ty == MTy::Int)
      return coerce(V, MTy::Double, Line);
    if (To == MTy::Int && isPtr(V.Ty))
      return {V.R, MTy::Int}; // address stored into an int, allowed
    if (isPtr(To) && V.Ty == MTy::Int)
      return {V.R, To}; // int (address) stored into a pointer, allowed
    if (isPtr(To) && isPtr(V.Ty))
      return {V.R, To};
    error(Line, formatString("cannot assign %s to %s", mtyName(V.Ty),
                             mtyName(To)));
    return {V.R, To};
  }

  const ProgramAST &P;
  ir::Module &M;
  ir::Function &F;
  const FuncDecl &D;
  ir::IRBuilder B;
  std::vector<std::string> &Errors;
  std::vector<std::map<std::string, VarInfo>> Scopes;
  /// Innermost-first stack of (continue target, break target) blocks.
  struct LoopTargets {
    BlockId Continue;
    BlockId Break;
  };
  std::vector<LoopTargets> Loops;
};

} // namespace

ir::Module lowerProgram(const ProgramAST &P,
                        std::vector<std::string> &Errors) {
  ir::Module M;
  for (const ExternDeclAST &E : P.Externs) {
    ir::ExternalDecl D;
    D.Name = E.Name;
    D.NumArgs = static_cast<unsigned>(E.ArgTys.size());
    D.Pure = E.Pure;
    D.RetTy = irTypeOf(E.RetTy);
    M.declareExternal(std::move(D));
  }
  // Predeclare every function (headers only) so calls resolve regardless of
  // definition order.
  for (const FuncDecl &FD : P.Funcs) {
    ir::Function F;
    F.Name = FD.Name;
    F.RetTy = irTypeOf(FD.RetTy);
    F.Pure = FD.Pure;
    for (const ParamDecl &PD : FD.Params)
      F.newReg(irTypeOf(PD.Ty), PD.Name);
    F.NumParams = static_cast<uint32_t>(FD.Params.size());
    M.addFunction(std::move(F));
  }
  // Lower bodies into fresh Function objects, then swap in (the
  // predeclared stubs only carried the signature).
  for (const FuncDecl &FD : P.Funcs) {
    int Idx = M.findFunction(FD.Name);
    ir::Function F;
    F.Name = FD.Name;
    F.RetTy = irTypeOf(FD.RetTy);
    F.Pure = FD.Pure;
    FunctionLowering L(P, M, F, FD, Errors);
    L.run();
    M.function(Idx) = std::move(F);
  }
  return M;
}

bool compileMiniC(const std::string &Source, ir::Module &M,
                  std::vector<std::string> &Errors) {
  ProgramAST P = parseProgram(Source, Errors);
  if (!Errors.empty())
    return false;
  M = lowerProgram(P, Errors);
  if (!Errors.empty())
    return false;
  std::string VerifyErr = ir::verifyModule(M);
  if (!VerifyErr.empty()) {
    Errors.push_back("IR verification failed: " + VerifyErr);
    return false;
  }
  return true;
}

} // namespace frontend
} // namespace dyc
