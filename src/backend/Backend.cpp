//===- backend/Backend.cpp - Backend seam shared pieces --------------------===//

#include "backend/Backend.h"

#include "backend/BytecodeBackend.h"
#include "backend/TemplateBackend.h"

#include <cstdlib>
#include <cstring>

namespace dyc {
namespace backend {

const char *backendName(BackendKind K) {
  switch (K) {
  case BackendKind::Bytecode:
    return "bytecode";
  case BackendKind::Template:
    return "template";
  }
  return "bytecode";
}

BackendKind resolveBackendKind(ExecBackend Requested) {
  switch (Requested) {
  case ExecBackend::Bytecode:
    return BackendKind::Bytecode;
  case ExecBackend::Template:
    return BackendKind::Template;
  case ExecBackend::Default:
    break;
  }
  if (const char *Env = std::getenv("DYC_BACKEND")) {
    if (std::strcmp(Env, "template") == 0)
      return BackendKind::Template;
    if (std::strcmp(Env, "bytecode") == 0)
      return BackendKind::Bytecode;
  }
  return BackendKind::Bytecode;
}

CompiledRegion::~CompiledRegion() = default;

ExecutionBackend::~ExecutionBackend() = default;

void ExecutionBackend::beginRegion(vm::CodeObject &CO, vm::Program &Prog,
                                   uint64_t ReserveBytes) {
  CO.IsDynamicCode = true;
  CO.BaseAddr = Prog.allocCodeAddr(ReserveBytes);
}

void ExecutionBackend::releaseArtifact(const vm::CodeObject &) {}

void ExecutionBackend::attach(vm::VM &) {}

size_t ExecutionBackend::residentArtifacts() const { return 0; }

std::unique_ptr<ExecutionBackend> createBackend(BackendKind K) {
  switch (K) {
  case BackendKind::Template:
    return std::make_unique<TemplateBackend>();
  case BackendKind::Bytecode:
    break;
  }
  return std::make_unique<BytecodeBackend>();
}

} // namespace backend
} // namespace dyc
