//===- backend/Backend.h - Pluggable execution-backend seam ----------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seam between the staged specializer and the execution substrate
/// (ROADMAP item 4, in the style of kronos's GenericCompiler/GenericModule
/// split). The specializer — Emitter, UnrollDriver, and
/// RegionExecutionCore::specializeInto — produces residual bytecode as a
/// backend-agnostic transfer format; an ExecutionBackend decides how the
/// host actually executes it. The core brackets every specialization run
/// with the backend:
///
///   beginRegion()   opens the chain's code buffer: marks it dynamic code
///                   and reserves its simulated address range (so distinct
///                   chains' I-cache footprints never alias);
///   <emission>      the UnrollDriver writes residual bytecode through the
///                   Emitter into the buffer;
///   compileRegion() turns the finished emission into the backend's
///                   installable CompiledRegion artifact, handed to the
///                   code chain before publication;
///   releaseArtifact()/invalidate() retire the artifact when the chain is
///                   unpublished (capacity eviction, one-slot displacement,
///                   speculative demotion).
///
/// Two clients ship behind the seam:
///
///  * BytecodeBackend — the default. The residual bytecode IS the
///    artifact; each VM's DecodedCache translates on first touch exactly
///    as before the seam existed, so this backend is behavior-preserving
///    by construction.
///  * TemplateBackend — pre-fuses each region into straight-line
///    superblocks with quickened superinstructions at emit time and
///    installs the translation in a registry every attached VM adopts,
///    skipping translate-on-first-touch (Brunthaler-style speculative
///    staging of the interpreter itself).
///
/// Contract for implementations:
///
///  * compileRegion must not charge simulated cycles. Backends change how
///    the host executes a region, never what the cost model observes —
///    simulated counters are bit-identical across backends, which the
///    parity suite (tests/BackendTest.cpp) enforces.
///  * beginRegion/compileRegion run under the caller's specialization
///    serialization (the inline runtime is single-threaded; the server
///    holds its SpecMutex). attach, releaseArtifact, and invalidate must
///    be safe against concurrent adoption by executing VMs.
///  * releaseArtifact must be idempotent: eviction, displacement, and
///    region release may each report the same chain.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_BACKEND_BACKEND_H
#define DYC_BACKEND_BACKEND_H

#include "bta/OptFlags.h"
#include "vm/VM.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>

namespace dyc {
namespace backend {

enum class BackendKind { Bytecode, Template };

/// Stable lowercase name ("bytecode" / "template"), as accepted by
/// dycc --backend and the DYC_BACKEND environment variable.
const char *backendName(BackendKind K);

/// Resolves a front end's requested backend. Explicit requests win;
/// ExecBackend::Default consults the DYC_BACKEND environment variable
/// ("bytecode" / "template", unknown values ignored) and falls back to
/// Bytecode — mirroring the DYC_VM_ENGINE precedent, so any existing
/// binary can A/B the backends without a flag.
BackendKind resolveBackendKind(ExecBackend Requested);

/// Host-level backend counters (never simulated cycles). Relaxed atomics:
/// the server's workers compile concurrently with stats readers.
struct BackendStats {
  std::atomic<uint64_t> RegionsCompiled{0};
  std::atomic<uint64_t> InstrsCompiled{0};
  std::atomic<uint64_t> Superblocks{0};         ///< template backend only
  std::atomic<uint64_t> Superinstructions{0};   ///< template backend only
  std::atomic<uint64_t> ArtifactsReleased{0};
};

/// One finished specialization run, as handed to compileRegion: the
/// emitted bytecode plus every PC at which control can enter the chain
/// from outside (the entry itself, interned exit stubs, and dispatch
/// stubs). Stub maps are keyed by ir::BlockId / dispatch-site id — both
/// uint32_t — mapping to the stub's PC.
struct RegionEmission {
  vm::CodeObject &CO;
  uint32_t EntryPC = 0;
  const std::map<uint32_t, uint32_t> &ExitStubs;
  const std::map<uint32_t, uint32_t> &DispatchStubs;
};

/// An installed, backend-owned execution artifact for one code chain. The
/// chain holds it alive until the chain is unpublished; concrete backends
/// subclass it with whatever the substrate needs (the bytecode backend
/// returns none at all).
class CompiledRegion {
public:
  virtual ~CompiledRegion();
};

class ExecutionBackend {
public:
  virtual ~ExecutionBackend();

  virtual BackendKind kind() const = 0;
  const char *name() const { return backendName(kind()); }

  /// Opens a fresh chain's code buffer. The default does exactly what the
  /// pre-seam specializer did: mark the object dynamic code and reserve
  /// \p ReserveBytes of simulated address space from \p Prog — in that
  /// order, so address assignment (and therefore disassembly and I-cache
  /// behavior) is byte-identical across backends.
  virtual void beginRegion(vm::CodeObject &CO, vm::Program &Prog,
                           uint64_t ReserveBytes);

  /// Compiles one finished emission into an installable artifact; null
  /// when the substrate consumes the bytecode directly. \p SpecVM is the
  /// machine the run specialized on; its cost model and I-cache geometry
  /// are authoritative for every VM that will execute the chain.
  virtual std::shared_ptr<CompiledRegion>
  compileRegion(const RegionEmission &E, vm::VM &SpecVM) = 0;

  /// Retires the backend's installed artifact for an unpublished chain.
  /// Idempotent; safe for chains that never compiled one. Default: no-op.
  virtual void releaseArtifact(const vm::CodeObject &CO);

  /// Connects a VM to this backend's execution substrate (the template
  /// backend shares its prebuilt-translation registry). Front ends call
  /// this for every VM that will execute chains. Default: no-op.
  virtual void attach(vm::VM &M);

  /// Artifacts currently installed (the template backend's registry
  /// size). Eviction tests bound this to prove eager release. Default: 0.
  virtual size_t residentArtifacts() const;

  /// VM-level unpublish: drops \p M's own translation of \p CO and
  /// retires the backend artifact. The inline runtime calls this at its
  /// three unpublish sites so both layers stay coherent.
  void invalidate(vm::VM &M, const vm::CodeObject &CO) {
    M.invalidateDecoded(CO);
    releaseArtifact(CO);
  }

  const BackendStats &stats() const { return Stats; }

protected:
  BackendStats Stats;
};

/// Factory over the shipped backends.
std::unique_ptr<ExecutionBackend> createBackend(BackendKind K);

} // namespace backend
} // namespace dyc

#endif // DYC_BACKEND_BACKEND_H
