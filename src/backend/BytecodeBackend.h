//===- backend/BytecodeBackend.h - Default bytecode client ------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The default client of the backend seam: the residual bytecode IS the
/// executable artifact. compileRegion is the identity — each VM's
/// DecodedCache translates on first touch exactly as it did before the
/// seam existed — so this backend is behavior-preserving by construction:
/// byte-identical disassembly, bit-identical simulated counters, and the
/// same host-side translation schedule.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_BACKEND_BYTECODEBACKEND_H
#define DYC_BACKEND_BYTECODEBACKEND_H

#include "backend/Backend.h"

namespace dyc {
namespace backend {

class BytecodeBackend final : public ExecutionBackend {
public:
  BackendKind kind() const override { return BackendKind::Bytecode; }

  std::shared_ptr<CompiledRegion> compileRegion(const RegionEmission &E,
                                                vm::VM &SpecVM) override;
};

} // namespace backend
} // namespace dyc

#endif // DYC_BACKEND_BYTECODEBACKEND_H
