//===- backend/BytecodeBackend.cpp - Default bytecode client ---------------===//

#include "backend/BytecodeBackend.h"

namespace dyc {
namespace backend {

std::shared_ptr<CompiledRegion>
BytecodeBackend::compileRegion(const RegionEmission &E, vm::VM &) {
  Stats.RegionsCompiled.fetch_add(1, std::memory_order_relaxed);
  Stats.InstrsCompiled.fetch_add(E.CO.Code.size(), std::memory_order_relaxed);
  return nullptr; // the bytecode itself is the artifact
}

} // namespace backend
} // namespace dyc
