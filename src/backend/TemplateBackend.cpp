//===- backend/TemplateBackend.cpp - Macro-op template backend -------------===//

#include "backend/TemplateBackend.h"

#include <algorithm>

namespace dyc {
namespace backend {

std::shared_ptr<CompiledRegion>
TemplateBackend::compileRegion(const RegionEmission &E, vm::VM &SpecVM) {
  // Every PC at which control can enter the chain from outside becomes a
  // block leader of the prebuilt translation, so adopters never fall off
  // the superblock fast path into lazy leader promotion.
  std::vector<uint32_t> Entries;
  Entries.reserve(1 + E.ExitStubs.size() + E.DispatchStubs.size());
  Entries.push_back(E.EntryPC);
  for (const auto &KV : E.ExitStubs)
    Entries.push_back(KV.second);
  for (const auto &KV : E.DispatchStubs)
    Entries.push_back(KV.second);
  std::sort(Entries.begin(), Entries.end());
  Entries.erase(std::unique(Entries.begin(), Entries.end()), Entries.end());

  std::shared_ptr<const vm::DecodedCode> DC =
      vm::buildDecoded(E.CO, SpecVM.costModel(), SpecVM.icache().config(),
                       std::move(Entries));

  Stats.RegionsCompiled.fetch_add(1, std::memory_order_relaxed);
  Stats.InstrsCompiled.fetch_add(E.CO.Code.size(), std::memory_order_relaxed);
  Stats.Superblocks.fetch_add(DC->Blocks.size(), std::memory_order_relaxed);
  uint64_t Fused = 0;
  for (const vm::DecodedInstr &D : DC->Instrs)
    if (D.H >= static_cast<uint16_t>(vm::DOp::ConstIConstI) &&
        D.H < static_cast<uint16_t>(vm::DOp::NumHandlers))
      ++Fused;
  Stats.Superinstructions.fetch_add(Fused, std::memory_order_relaxed);

  Registry->install(E.CO.BaseAddr, DC);

  auto Art = std::make_shared<TemplateCompiledRegion>();
  Art->BaseAddr = E.CO.BaseAddr;
  Art->Code = std::move(DC);
  return Art;
}

} // namespace backend
} // namespace dyc
