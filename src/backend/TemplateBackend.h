//===- backend/TemplateBackend.h - Macro-op template backend ----------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The macro-op template backend: each specialized region is pre-fused
/// into straight-line superblocks with quickened superinstructions *at
/// emit time* (the payoff Brunthaler's speculative-staging work predicts
/// for a staged backend), and the finished translation is installed in a
/// PrebuiltTranslations registry that every attached VM adopts — hot
/// chains skip DecodedCache translate-on-first-touch entirely, and N
/// client VMs share one translation instead of building N.
///
/// The translation is built with every outside entry point — the region
/// entry, interned exit stubs, and dispatch stubs — promoted to a block
/// leader up front, so mid-chain entries that would otherwise trigger
/// lazy promoteLeader rebuilds are already on the superblock fast path.
///
/// Cost-model neutrality: the prebuilt translation is the same
/// DecodedCode the VM would have built lazily, and extra block leaders
/// only *split* superblocks — a split I-cache line segment replays
/// identically through ICache::accessRun (the second segment's first
/// fetch hits the line the first segment just touched), and per-block
/// cycle sums are computed before quickening. No simulated cycles are
/// charged for prebuilding: translation is host-side work in both
/// backends, exactly like DecodedCache builds.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_BACKEND_TEMPLATEBACKEND_H
#define DYC_BACKEND_TEMPLATEBACKEND_H

#include "backend/Backend.h"
#include "vm/Decoded.h"

namespace dyc {
namespace backend {

/// The installable artifact: one shared, immutable predecoded translation.
class TemplateCompiledRegion final : public CompiledRegion {
public:
  uint64_t BaseAddr = 0;
  std::shared_ptr<const vm::DecodedCode> Code;
};

class TemplateBackend final : public ExecutionBackend {
public:
  TemplateBackend() : Registry(std::make_shared<vm::PrebuiltTranslations>()) {}

  BackendKind kind() const override { return BackendKind::Template; }

  std::shared_ptr<CompiledRegion> compileRegion(const RegionEmission &E,
                                                vm::VM &SpecVM) override;

  void releaseArtifact(const vm::CodeObject &CO) override {
    if (Registry->release(CO.BaseAddr))
      Stats.ArtifactsReleased.fetch_add(1, std::memory_order_relaxed);
  }

  void attach(vm::VM &M) override { M.setPrebuiltTranslations(Registry); }

  size_t residentArtifacts() const override { return Registry->size(); }

private:
  std::shared_ptr<vm::PrebuiltTranslations> Registry;
};

} // namespace backend
} // namespace dyc

#endif // DYC_BACKEND_TEMPLATEBACKEND_H
