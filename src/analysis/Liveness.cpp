//===- analysis/Liveness.cpp -----------------------------------------------------===//

#include "analysis/Liveness.h"

namespace dyc {
namespace analysis {

using ir::BlockId;
using ir::Reg;

Liveness::Liveness(const ir::Function &F, const CFG &G) : G(G) {
  size_t N = F.numBlocks();
  size_t R = F.numRegs();
  LiveIn.assign(N, BitVector(R));
  LiveOut.assign(N, BitVector(R));

  // Per-block use (upward-exposed) and def sets.
  std::vector<BitVector> Use(N, BitVector(R));
  std::vector<BitVector> Def(N, BitVector(R));
  std::vector<Reg> Uses;
  for (BlockId B = 0; B != N; ++B) {
    for (const ir::Instruction &I : F.block(B).Instrs) {
      Uses.clear();
      I.appendUses(Uses);
      for (Reg U : Uses)
        if (!Def[B].test(U))
          Use[B].set(U);
      if (I.definesReg())
        Def[B].set(I.Dst);
    }
  }

  // Iterate to fixpoint, visiting blocks in reverse RPO (approximate
  // postorder) for fast convergence.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto It = G.rpo().rbegin(); It != G.rpo().rend(); ++It) {
      BlockId B = *It;
      BitVector Out(R);
      for (BlockId S : G.succs(B))
        Out.unionWith(LiveIn[S]);
      BitVector In = Out;
      In.subtract(Def[B]);
      In.unionWith(Use[B]);
      if (!(Out == LiveOut[B])) {
        LiveOut[B] = std::move(Out);
        Changed = true;
      }
      if (!(In == LiveIn[B])) {
        LiveIn[B] = std::move(In);
        Changed = true;
      }
    }
  }
}

BitVector Liveness::liveBefore(const ir::Function &F, BlockId B,
                               size_t Idx) const {
  BitVector Live = LiveOut[B];
  const ir::BasicBlock &BB = F.block(B);
  assert(Idx <= BB.Instrs.size() && "instruction index out of range");
  std::vector<Reg> Uses;
  for (size_t I = BB.Instrs.size(); I-- > Idx;) {
    const ir::Instruction &In = BB.Instrs[I];
    if (In.definesReg())
      Live.reset(In.Dst);
    Uses.clear();
    In.appendUses(Uses);
    for (Reg U : Uses)
      Live.set(U);
  }
  return Live;
}

} // namespace analysis
} // namespace dyc
