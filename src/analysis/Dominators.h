//===- analysis/Dominators.h - Dominator tree ---------------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immediate dominators via the Cooper–Harvey–Kennedy iterative algorithm
/// over reverse postorder. Natural-loop detection (LoopInfo) builds on the
/// dominance query.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_ANALYSIS_DOMINATORS_H
#define DYC_ANALYSIS_DOMINATORS_H

#include "analysis/CFG.h"

namespace dyc {
namespace analysis {

/// Dominator tree of a function's CFG.
class Dominators {
public:
  Dominators(const ir::Function &F, const CFG &G);

  /// Immediate dominator of \p B; the entry's idom is itself. NoBlock for
  /// unreachable blocks.
  ir::BlockId idom(ir::BlockId B) const { return IDom[B]; }

  /// True if \p A dominates \p B (reflexive).
  bool dominates(ir::BlockId A, ir::BlockId B) const;

private:
  const CFG &G;
  std::vector<ir::BlockId> IDom;
};

} // namespace analysis
} // namespace dyc

#endif // DYC_ANALYSIS_DOMINATORS_H
