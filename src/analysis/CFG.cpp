//===- analysis/CFG.cpp --------------------------------------------------------===//

#include "analysis/CFG.h"

namespace dyc {
namespace analysis {

using ir::BlockId;

CFG::CFG(const ir::Function &F) {
  size_t N = F.numBlocks();
  Succs.resize(N);
  Preds.resize(N);
  RPOIndex.assign(N, -1);

  for (BlockId B = 0; B != N; ++B)
    F.block(B).appendSuccessors(Succs[B]);
  for (BlockId B = 0; B != N; ++B)
    for (BlockId S : Succs[B])
      Preds[S].push_back(B);

  // Iterative postorder DFS from the entry.
  std::vector<ir::BlockId> Post;
  std::vector<uint8_t> State(N, 0); // 0 unseen, 1 on stack, 2 done
  std::vector<std::pair<BlockId, size_t>> Stack;
  Stack.emplace_back(0, 0);
  State[0] = 1;
  while (!Stack.empty()) {
    auto &[B, NextSucc] = Stack.back();
    if (NextSucc < Succs[B].size()) {
      BlockId S = Succs[B][NextSucc++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.emplace_back(S, 0);
      }
      continue;
    }
    State[B] = 2;
    Post.push_back(B);
    Stack.pop_back();
  }

  RPO.assign(Post.rbegin(), Post.rend());
  for (size_t I = 0; I != RPO.size(); ++I)
    RPOIndex[RPO[I]] = static_cast<int>(I);
}

} // namespace analysis
} // namespace dyc
