//===- analysis/ReachingDefs.h - Reaching-definitions analysis ------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward reaching-definitions dataflow over definition sites. The global
/// constant- and copy-propagation passes (the "traditional optimizations"
/// DyC applies before binding-time analysis) query it to prove that a use
/// sees exactly one definition.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_ANALYSIS_REACHINGDEFS_H
#define DYC_ANALYSIS_REACHINGDEFS_H

#include "analysis/CFG.h"
#include "support/BitVector.h"

namespace dyc {
namespace analysis {

/// One definition site.
struct DefSite {
  ir::BlockId Block = ir::NoBlock;
  uint32_t InstrIdx = 0;
  ir::Reg Defined = ir::NoReg;
};

/// Reaching definitions, numbering every instruction that defines a
/// register.
class ReachingDefs {
public:
  ReachingDefs(const ir::Function &F, const CFG &G);

  const std::vector<DefSite> &defSites() const { return Sites; }

  /// Definitions reaching the entry of \p B.
  const BitVector &reachIn(ir::BlockId B) const { return In[B]; }

  /// If exactly one definition of \p R reaches the use at (\p B, \p Idx),
  /// returns its def-site index; otherwise -1. Local definitions earlier in
  /// the block take precedence.
  int uniqueReachingDef(const ir::Function &F, ir::BlockId B, size_t Idx,
                        ir::Reg R) const;

private:
  std::vector<DefSite> Sites;
  std::vector<std::vector<uint32_t>> SitesOfReg; // reg -> site indices
  std::vector<BitVector> In;
  std::vector<BitVector> Out;
};

} // namespace analysis
} // namespace dyc

#endif // DYC_ANALYSIS_REACHINGDEFS_H
