//===- analysis/LoopInfo.cpp ----------------------------------------------------===//

#include "analysis/LoopInfo.h"

#include <algorithm>

namespace dyc {
namespace analysis {

using ir::BlockId;

LoopInfo::LoopInfo(const ir::Function &F, const CFG &G, const Dominators &D) {
  // Find back edges (S -> H where H dominates S); grow each loop body by
  // walking predecessors from the latch up to the header.
  for (BlockId B : G.rpo()) {
    for (BlockId S : G.succs(B)) {
      if (!D.dominates(S, B))
        continue;
      BlockId Header = S;
      Loop *L = nullptr;
      for (Loop &Existing : Loops)
        if (Existing.Header == Header)
          L = &Existing;
      if (!L) {
        Loops.emplace_back();
        L = &Loops.back();
        L->Header = Header;
        L->Blocks.push_back(Header);
      }
      L->Latches.push_back(B);

      std::vector<BlockId> Work;
      if (!L->contains(B)) {
        L->Blocks.push_back(B);
        Work.push_back(B);
      }
      while (!Work.empty()) {
        BlockId X = Work.back();
        Work.pop_back();
        for (BlockId P : G.preds(X)) {
          if (!G.isReachable(P) || L->contains(P))
            continue;
          L->Blocks.push_back(P);
          Work.push_back(P);
        }
      }
    }
  }
  for (Loop &L : Loops) {
    std::sort(L.Blocks.begin(), L.Blocks.end());
    std::sort(L.Latches.begin(), L.Latches.end());
  }
}

const Loop *LoopInfo::loopAtHeader(BlockId B) const {
  for (const Loop &L : Loops)
    if (L.Header == B)
      return &L;
  return nullptr;
}

bool LoopInfo::inAnyLoop(BlockId B) const {
  for (const Loop &L : Loops)
    if (L.contains(B))
      return true;
  return false;
}

std::vector<ir::Reg> LoopInfo::loopVariantRegs(const ir::Function &F,
                                               BlockId Header) const {
  std::vector<ir::Reg> Out;
  const Loop *L = loopAtHeader(Header);
  if (!L)
    return Out;
  for (BlockId B : L->Blocks)
    for (const ir::Instruction &I : F.block(B).Instrs)
      if (I.definesReg() &&
          std::find(Out.begin(), Out.end(), I.Dst) == Out.end())
        Out.push_back(I.Dst);
  return Out;
}

} // namespace analysis
} // namespace dyc
