//===- analysis/Dominators.cpp -------------------------------------------------===//

#include "analysis/Dominators.h"

namespace dyc {
namespace analysis {

using ir::BlockId;
using ir::NoBlock;

Dominators::Dominators(const ir::Function &F, const CFG &G) : G(G) {
  size_t N = F.numBlocks();
  IDom.assign(N, NoBlock);
  if (G.rpo().empty())
    return;
  BlockId Entry = G.rpo().front();
  IDom[Entry] = Entry;

  auto Intersect = [&](BlockId A, BlockId B) {
    while (A != B) {
      while (G.rpoIndex(A) > G.rpoIndex(B))
        A = IDom[A];
      while (G.rpoIndex(B) > G.rpoIndex(A))
        B = IDom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockId B : G.rpo()) {
      if (B == Entry)
        continue;
      BlockId NewIDom = NoBlock;
      for (BlockId P : G.preds(B)) {
        if (IDom[P] == NoBlock)
          continue; // not yet processed / unreachable
        NewIDom = NewIDom == NoBlock ? P : Intersect(P, NewIDom);
      }
      if (NewIDom != NoBlock && IDom[B] != NewIDom) {
        IDom[B] = NewIDom;
        Changed = true;
      }
    }
  }
}

bool Dominators::dominates(BlockId A, BlockId B) const {
  if (IDom[B] == NoBlock)
    return false; // unreachable
  BlockId Entry = G.rpo().front();
  while (true) {
    if (B == A)
      return true;
    if (B == Entry)
      return false;
    B = IDom[B];
  }
}

} // namespace analysis
} // namespace dyc
