//===- analysis/LoopInfo.h - Natural-loop detection ----------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural loops from dominator-based back-edge detection. The BTA uses
/// loop membership in two ways: to decide which registers are loop-variant
/// (so that disabling complete loop unrolling demotes them at the loop
/// head — Table 5's "without complete loop unrolling" column), and to
/// classify a region's unrolling as single-way vs. multi-way (Table 2).
///
//===----------------------------------------------------------------------===//

#ifndef DYC_ANALYSIS_LOOPINFO_H
#define DYC_ANALYSIS_LOOPINFO_H

#include "analysis/Dominators.h"

#include <vector>

namespace dyc {
namespace analysis {

/// One natural loop.
struct Loop {
  ir::BlockId Header = ir::NoBlock;
  /// Blocks in the loop, header included.
  std::vector<ir::BlockId> Blocks;
  /// Back-edge sources (latches).
  std::vector<ir::BlockId> Latches;

  bool contains(ir::BlockId B) const {
    for (ir::BlockId X : Blocks)
      if (X == B)
        return true;
    return false;
  }
};

/// All natural loops of a function. Loops sharing a header are merged.
class LoopInfo {
public:
  LoopInfo(const ir::Function &F, const CFG &G, const Dominators &D);

  const std::vector<Loop> &loops() const { return Loops; }

  /// Returns the loop headed at \p B, or null.
  const Loop *loopAtHeader(ir::BlockId B) const;

  /// True if \p B is inside any loop.
  bool inAnyLoop(ir::BlockId B) const;

  /// Registers assigned anywhere inside the loop headed at \p Header
  /// (the loop-variant set used for unrolling decisions).
  std::vector<ir::Reg> loopVariantRegs(const ir::Function &F,
                                       ir::BlockId Header) const;

private:
  std::vector<Loop> Loops;
};

} // namespace analysis
} // namespace dyc

#endif // DYC_ANALYSIS_LOOPINFO_H
