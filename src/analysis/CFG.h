//===- analysis/CFG.h - Control-flow-graph utilities --------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Derived CFG structure for a function: successor/predecessor lists,
/// reverse postorder, and reachability. All analyses start here.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_ANALYSIS_CFG_H
#define DYC_ANALYSIS_CFG_H

#include "ir/Function.h"

#include <vector>

namespace dyc {
namespace analysis {

/// Successors, predecessors, and orderings for a function's CFG.
class CFG {
public:
  explicit CFG(const ir::Function &F);

  const std::vector<ir::BlockId> &succs(ir::BlockId B) const {
    return Succs[B];
  }
  const std::vector<ir::BlockId> &preds(ir::BlockId B) const {
    return Preds[B];
  }

  /// Blocks in reverse postorder from the entry; unreachable blocks are
  /// absent.
  const std::vector<ir::BlockId> &rpo() const { return RPO; }

  /// Position of \p B in the RPO sequence, or -1 if unreachable.
  int rpoIndex(ir::BlockId B) const { return RPOIndex[B]; }

  bool isReachable(ir::BlockId B) const { return RPOIndex[B] >= 0; }

  size_t numBlocks() const { return Succs.size(); }

private:
  std::vector<std::vector<ir::BlockId>> Succs;
  std::vector<std::vector<ir::BlockId>> Preds;
  std::vector<ir::BlockId> RPO;
  std::vector<int> RPOIndex;
};

} // namespace analysis
} // namespace dyc

#endif // DYC_ANALYSIS_CFG_H
