//===- analysis/Liveness.h - Backward live-register analysis -------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic backward liveness over virtual registers. DyC's pipeline uses it
/// in three places: to bound dynamic regions ("ending after the last use of
/// any static value", paper section 2.2), to select the static registers
/// that must be materialized when generated code exits a region, and to
/// keep promotion-point cache keys down to live static variables.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_ANALYSIS_LIVENESS_H
#define DYC_ANALYSIS_LIVENESS_H

#include "analysis/CFG.h"
#include "support/BitVector.h"

namespace dyc {
namespace analysis {

/// Per-block live-in/live-out register sets.
class Liveness {
public:
  Liveness(const ir::Function &F, const CFG &G);

  const BitVector &liveIn(ir::BlockId B) const { return LiveIn[B]; }
  const BitVector &liveOut(ir::BlockId B) const { return LiveOut[B]; }

  /// Registers live immediately *before* instruction \p Idx of block \p B
  /// (recomputed by a local backward walk; O(block size)).
  BitVector liveBefore(const ir::Function &F, ir::BlockId B,
                       size_t Idx) const;

private:
  std::vector<BitVector> LiveIn;
  std::vector<BitVector> LiveOut;
  const CFG &G;
};

} // namespace analysis
} // namespace dyc

#endif // DYC_ANALYSIS_LIVENESS_H
