//===- analysis/ReachingDefs.cpp ---------------------------------------------------===//

#include "analysis/ReachingDefs.h"

namespace dyc {
namespace analysis {

using ir::BlockId;
using ir::Reg;

ReachingDefs::ReachingDefs(const ir::Function &F, const CFG &G) {
  size_t N = F.numBlocks();
  SitesOfReg.resize(F.numRegs());

  for (BlockId B = 0; B != N; ++B) {
    const ir::BasicBlock &BB = F.block(B);
    for (uint32_t I = 0; I != BB.Instrs.size(); ++I) {
      const ir::Instruction &In = BB.Instrs[I];
      if (!In.definesReg())
        continue;
      SitesOfReg[In.Dst].push_back(static_cast<uint32_t>(Sites.size()));
      Sites.push_back({B, I, In.Dst});
    }
  }
  // Function parameters act as implicit definitions at entry; model them
  // as virtual def sites attached to the entry block, index -1 (position
  // before instruction 0).
  for (Reg P = 0; P != F.NumParams; ++P) {
    SitesOfReg[P].push_back(static_cast<uint32_t>(Sites.size()));
    Sites.push_back({0, 0xffffffffu, P});
  }

  size_t S = Sites.size();
  In.assign(N, BitVector(S));
  Out.assign(N, BitVector(S));

  std::vector<BitVector> Gen(N, BitVector(S));
  std::vector<BitVector> Kill(N, BitVector(S));
  for (uint32_t SiteIdx = 0; SiteIdx != S; ++SiteIdx) {
    const DefSite &D = Sites[SiteIdx];
    // Within a block, later defs of the same reg supersede earlier ones.
    bool Killed = false;
    const ir::BasicBlock &BB = F.block(D.Block);
    uint32_t From = D.InstrIdx == 0xffffffffu ? 0 : D.InstrIdx + 1;
    for (uint32_t I = From; I != BB.Instrs.size(); ++I)
      if (BB.Instrs[I].definesReg() && BB.Instrs[I].Dst == D.Defined) {
        Killed = true;
        break;
      }
    if (!Killed)
      Gen[D.Block].set(SiteIdx);
    for (uint32_t Other : SitesOfReg[D.Defined])
      if (Other != SiteIdx)
        Kill[D.Block].set(Other);
  }

  // Parameter pseudo-defs reach the entry block's In set.
  BitVector ParamBits(S);
  for (uint32_t SiteIdx = 0; SiteIdx != S; ++SiteIdx)
    if (Sites[SiteIdx].InstrIdx == 0xffffffffu)
      ParamBits.set(SiteIdx);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockId B : G.rpo()) {
      BitVector NewIn(S);
      if (B == 0)
        NewIn.unionWith(ParamBits);
      for (BlockId P : G.preds(B))
        NewIn.unionWith(Out[P]);
      BitVector NewOut = NewIn;
      NewOut.subtract(Kill[B]);
      NewOut.unionWith(Gen[B]);
      if (!(NewIn == In[B])) {
        In[B] = std::move(NewIn);
        Changed = true;
      }
      if (!(NewOut == Out[B])) {
        Out[B] = std::move(NewOut);
        Changed = true;
      }
    }
  }
}

int ReachingDefs::uniqueReachingDef(const ir::Function &F, BlockId B,
                                    size_t Idx, Reg R) const {
  // A local def earlier in the block wins.
  const ir::BasicBlock &BB = F.block(B);
  for (size_t I = Idx; I-- > 0;) {
    const ir::Instruction &In = BB.Instrs[I];
    if (In.definesReg() && In.Dst == R) {
      for (uint32_t SiteIdx : SitesOfReg[R]) {
        const DefSite &D = Sites[SiteIdx];
        if (D.Block == B && D.InstrIdx == I)
          return static_cast<int>(SiteIdx);
      }
      return -1;
    }
  }
  // Otherwise all defs reaching block entry.
  int Found = -1;
  for (uint32_t SiteIdx : SitesOfReg[R]) {
    if (!In[B].test(SiteIdx))
      continue;
    if (Found >= 0)
      return -1; // more than one
    Found = static_cast<int>(SiteIdx);
  }
  return Found;
}

} // namespace analysis
} // namespace dyc
