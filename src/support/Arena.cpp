//===- support/Arena.cpp --------------------------------------------------===//

#include "support/Arena.h"

#include <cstddef>
#include <new>

namespace dyc {

namespace {

size_t alignUp(size_t V, size_t Align) { return (V + Align - 1) & ~(Align - 1); }

} // namespace

void *BumpArena::allocate(size_t Bytes, size_t Align) {
  assert(Align != 0 && (Align & (Align - 1)) == 0 && "non-power-of-2 align");
  if (Bytes == 0)
    Bytes = 1;
  ++NumAllocs;
  for (;;) {
    if (CurChunk < Chunks.size()) {
      Chunk &C = Chunks[CurChunk];
      size_t Off = alignUp(CurOffset, Align);
      if (Off + Bytes <= C.Size) {
        CurOffset = Off + Bytes;
        return C.Mem.get() + Off;
      }
      // This chunk is full (or too small for an oversize request); move to
      // the next retained chunk, or fall through to grow.
      ++CurChunk;
      CurOffset = 0;
      continue;
    }
    Chunk C;
    C.Size = Bytes + Align > ChunkBytes ? Bytes + Align : ChunkBytes;
    C.Mem = std::make_unique<char[]>(C.Size);
    Chunks.push_back(std::move(C));
    // Loop re-enters with CurChunk pointing at the new chunk.
    CurChunk = Chunks.size() - 1;
    CurOffset = 0;
  }
}

RecyclingPool::~RecyclingPool() {
  assert(OversizeLive == 0 && "oversize pool blocks leaked past the pool");
}

void *RecyclingPool::allocate(size_t Bytes, size_t Align) {
  size_t Cls = classOf(Bytes);
  if (Cls > NumClasses) {
    assert(Align <= alignof(std::max_align_t) &&
           "oversize pool block with extended alignment");
    {
      std::lock_guard<std::mutex> Lock(Mu);
      ++OversizeLive;
    }
    return ::operator new(Bytes);
  }
  std::lock_guard<std::mutex> Lock(Mu);
  if (FreeNode *N = Buckets[Cls]) {
    Buckets[Cls] = N->Next;
    ++Reuses;
    return N;
  }
  ++Fresh;
  // Every block of a class is the class's full size, so any freed block
  // can serve any request of the class.
  return Arena.allocate(Cls * ClassBytes, Align > ClassBytes ? Align
                                                             : ClassBytes);
}

void RecyclingPool::deallocate(void *P, size_t Bytes) {
  size_t Cls = classOf(Bytes);
  if (Cls > NumClasses) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      --OversizeLive;
    }
    ::operator delete(P);
    return;
  }
  std::lock_guard<std::mutex> Lock(Mu);
  FreeNode *N = static_cast<FreeNode *>(P);
  N->Next = Buckets[Cls];
  Buckets[Cls] = N;
}

uint64_t RecyclingPool::reuses() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Reuses;
}

uint64_t RecyclingPool::freshBlocks() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Fresh;
}

} // namespace dyc
