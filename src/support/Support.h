//===- support/Support.h - Common utilities for the DyC libraries -------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared low-level utilities: fatal-error reporting, a 64-bit machine word
/// type used uniformly by the IR, the VM, and the run-time specializer, and
/// small string/format helpers.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_SUPPORT_SUPPORT_H
#define DYC_SUPPORT_SUPPORT_H

#include <cassert>
#include <cstdarg>
#include <cstdint>
#include <string>
#include <vector>

namespace dyc {

/// Prints \p Msg to stderr and aborts. Used for invariant violations that
/// must be diagnosed even in release builds.
[[noreturn]] void fatal(const std::string &Msg);

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// A 64-bit machine word. Registers, memory cells, and run-time-constant
/// values are all Words; the instruction opcode determines whether the bits
/// are interpreted as a signed integer or an IEEE double.
struct Word {
  uint64_t Bits = 0;

  Word() = default;

  /// Constructs from a raw bit pattern.
  constexpr explicit Word(uint64_t Raw) : Bits(Raw) {}

  static Word fromInt(int64_t V) {
    Word W;
    W.Bits = static_cast<uint64_t>(V);
    return W;
  }

  static Word fromFloat(double V) {
    Word W;
    static_assert(sizeof(double) == sizeof(uint64_t));
    __builtin_memcpy(&W.Bits, &V, sizeof(double));
    return W;
  }

  int64_t asInt() const { return static_cast<int64_t>(Bits); }

  double asFloat() const {
    double D;
    __builtin_memcpy(&D, &Bits, sizeof(double));
    return D;
  }

  bool operator==(const Word &O) const { return Bits == O.Bits; }
  bool operator!=(const Word &O) const { return Bits != O.Bits; }
};

/// A non-owning view of a Word sequence. The run-time's dispatch path
/// composes cache keys into stack buffers and passes them around as spans,
/// so a dispatch never heap-allocates; owned std::vector<Word> keys convert
/// implicitly wherever a span is expected.
struct WordSpan {
  const Word *Data = nullptr;
  size_t Count = 0;

  WordSpan() = default;
  WordSpan(const Word *D, size_t N) : Data(D), Count(N) {}
  WordSpan(const std::vector<Word> &V) : Data(V.data()), Count(V.size()) {}

  const Word *begin() const { return Data; }
  const Word *end() const { return Data + Count; }
  const Word &operator[](size_t I) const {
    assert(I < Count && "span index out of range");
    return Data[I];
  }
  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  /// The tail starting at \p From (the dispatch path carves the promoted
  /// values out of the full baked+promoted key this way).
  WordSpan subspan(size_t From) const {
    assert(From <= Count && "subspan start out of range");
    return WordSpan(Data + From, Count - From);
  }
};

inline bool operator==(WordSpan A, WordSpan B) {
  if (A.Count != B.Count)
    return false;
  for (size_t I = 0; I != A.Count; ++I)
    if (A.Data[I] != B.Data[I])
      return false;
  return true;
}
inline bool operator!=(WordSpan A, WordSpan B) { return !(A == B); }

/// FNV-1a over a sequence of 64-bit words; the run-time code cache and the
/// specializer's memoization tables key on static-value tuples.
uint64_t hashWords(const Word *Data, size_t N, uint64_t Seed = 0xcbf29ce484222325ULL);

inline uint64_t hashWords(const std::vector<Word> &Ws, uint64_t Seed = 0xcbf29ce484222325ULL) {
  return hashWords(Ws.data(), Ws.size(), Seed);
}

inline uint64_t hashWords(WordSpan Ws, uint64_t Seed = 0xcbf29ce484222325ULL) {
  return hashWords(Ws.Data, Ws.Count, Seed);
}

/// A fixed-capacity key buffer for the dispatch fast path: dispatch keys
/// (baked site values + promoted register values) are almost always a
/// handful of words, so composing them here performs no heap allocation.
/// Oversized keys spill to an owned vector whose capacity is retained
/// across clear(), so even the spill path allocates at most once.
class SmallKeyBuf {
public:
  static constexpr size_t InlineWords = 16;

  void clear() { N = 0; }

  void push_back(Word W) {
    if (N < InlineWords) {
      Inl[N++] = W;
      return;
    }
    if (N == InlineWords)
      Spill.assign(Inl, Inl + InlineWords);
    Spill.push_back(W);
    ++N;
  }

  void append(const Word *D, size_t Count) {
    for (size_t I = 0; I != Count; ++I)
      push_back(D[I]);
  }

  size_t size() const { return N; }
  const Word *data() const { return N <= InlineWords ? Inl : Spill.data(); }
  WordSpan span() const { return WordSpan(data(), N); }

private:
  Word Inl[InlineWords];
  std::vector<Word> Spill;
  size_t N = 0;
};

/// Returns true if \p V is a (positive) power of two.
inline bool isPowerOf2(int64_t V) { return V > 0 && (V & (V - 1)) == 0; }

/// Log2 of a power of two.
inline unsigned log2OfPow2(int64_t V) {
  assert(isPowerOf2(V) && "not a power of two");
  return static_cast<unsigned>(__builtin_ctzll(static_cast<uint64_t>(V)));
}

/// A tiny deterministic RNG (xorshift*) used by workload input generators so
/// every run of the benchmark harness sees identical inputs.
class DeterministicRNG {
public:
  explicit DeterministicRNG(uint64_t Seed = 0x9e3779b97f4a7c15ULL)
      : State(Seed ? Seed : 1) {}

  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545f4914f6cdd1dULL;
  }

  /// Uniform integer in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) { return Bound ? next() % Bound : 0; }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

private:
  uint64_t State;
};

} // namespace dyc

#endif // DYC_SUPPORT_SUPPORT_H
