//===- support/DoubleHashTable.h - Double-hashed open-addressed table ----===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hash table behind DyC's default `cache_all` dispatch policy. The
/// paper (section 2.2.3) implements the dynamic-code cache "using double
/// hashing [7]" (Cormen/Leiserson/Rivest); lookups map the tuple of static
/// variable values at a promotion point to previously generated code.
///
/// Probe counts are tracked so the VM's cost model can charge dispatches the
/// way the paper measured them: ~90 cycles for an average hashed dispatch,
/// rising to ~150 when collisions occur (section 4.4.3).
///
//===----------------------------------------------------------------------===//

#ifndef DYC_SUPPORT_DOUBLEHASHTABLE_H
#define DYC_SUPPORT_DOUBLEHASHTABLE_H

#include "support/Support.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace dyc {

/// Open-addressed hash table with double hashing, keyed on tuples of Words.
/// Values are opaque 32-bit handles (the run-time uses them as indices into
/// a table of generated-code entry points).
class DoubleHashTable {
public:
  static constexpr uint32_t NotFound = 0xffffffffu;

  DoubleHashTable();
  DoubleHashTable(const DoubleHashTable &O);
  DoubleHashTable &operator=(const DoubleHashTable &O);

  /// Looks up \p Key. Returns the stored handle or NotFound. \p ProbesOut,
  /// if non-null, receives the number of slots inspected (>= 1), which the
  /// dispatch cost model consumes.
  uint32_t lookup(WordSpan Key, unsigned *ProbesOut = nullptr) const;
  uint32_t lookup(const std::vector<Word> &Key,
                  unsigned *ProbesOut = nullptr) const {
    return lookup(WordSpan(Key), ProbesOut);
  }

  /// Inserts \p Key -> \p Value. If the key was already bound, replaces the
  /// binding and reports the old value via \p ReplacedOut (set to NotFound
  /// otherwise).
  void insert(WordSpan Key, uint32_t Value, uint32_t *ReplacedOut = nullptr);
  void insert(const std::vector<Word> &Key, uint32_t Value,
              uint32_t *ReplacedOut = nullptr) {
    insert(WordSpan(Key), Value, ReplacedOut);
  }

  /// Removes \p Key if present, leaving a tombstone so other keys' probe
  /// sequences passing through the slot stay intact. Tombstones are
  /// reclaimed on insert (first-tombstone placement) and dropped wholesale
  /// when the table grows.
  void erase(WordSpan Key);
  void erase(const std::vector<Word> &Key) { erase(WordSpan(Key)); }

  /// Replays a lookup's counter effects without probing: the run-time's
  /// inline cache memoizes a hit's probe count and calls this so the
  /// simulated statistics stay bit-identical to an un-memoized probe.
  /// Single-writer bumps (load + store, no RMW): only the single-client
  /// inline front end's fast path calls this, so there is no concurrent
  /// writer and plain atomic stores suffice for stats readers.
  void notePhantomLookup(unsigned Probes) const {
    TotalLookups.store(TotalLookups.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
    TotalProbes.store(TotalProbes.load(std::memory_order_relaxed) + Probes,
                      std::memory_order_relaxed);
  }

  size_t size() const { return NumEntries; }
  bool empty() const { return NumEntries == 0; }

  /// Total probes performed by all lookups since construction; used by the
  /// dispatch-cost micro-benchmark to report average probe lengths. The
  /// counters are relaxed atomics so concurrent readers probing a published
  /// table (the SpecServer's sharded dispatch layer) stay race-free.
  uint64_t totalProbes() const {
    return TotalProbes.load(std::memory_order_relaxed);
  }
  uint64_t totalLookups() const {
    return TotalLookups.load(std::memory_order_relaxed);
  }

private:
  struct Slot {
    std::vector<Word> Key;
    uint64_t Hash = 0;
    uint32_t Value = 0;
    bool Occupied = false;
    bool Deleted = false; ///< tombstone: probe sequences continue through
  };

  void grow();
  size_t capacity() const { return Slots.size(); }

  std::vector<Slot> Slots;
  size_t NumEntries = 0;
  size_t NumDeleted = 0;
  mutable std::atomic<uint64_t> TotalProbes{0};
  mutable std::atomic<uint64_t> TotalLookups{0};
};

} // namespace dyc

#endif // DYC_SUPPORT_DOUBLEHASHTABLE_H
