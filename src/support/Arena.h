//===- support/Arena.h - Bump and pooled allocation for the run-time -----===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocation substrates for the specializer's hot paths:
///
///  * BumpArena — a chunked bump allocator with stack-discipline Scope
///    rollback. The unroll driver's per-run scratch (worklist items, the
///    memoization map's nodes, patch records) comes from a per-region
///    BumpArena; a Scope opened around each specialization run rolls the
///    bump pointer back when the run finishes, so the chunks reach a
///    high-water mark once and every later run recycles them with zero
///    allocator traffic. Scopes nest (a static call at specialize time can
///    re-enter the specializer on the same thread), which plain reset()
///    could not survive. Not thread-safe: specialization is
///    caller-serialized (see RegionExec.h's concurrency contract).
///
///  * RecyclingPool — a thread-safe, size-bucketed block pool over a
///    BumpArena. SpecEntry / CodeChain / EntryStats control blocks are
///    allocate_shared'd from a per-region pool; when an evicted chain's
///    last reference drops at a collection safe point, its blocks return
///    to the pool's freelists and the next specialization reuses them.
///    Deallocation can happen on any thread (the server's clients release
///    entry references concurrently), hence the internal mutex.
///
/// Both expose raw allocate/deallocate plus STL allocator adapters
/// (ArenaAllocator for BumpArena, PoolAllocator holding shared ownership
/// of its RecyclingPool so pooled objects can never outlive their pool).
///
//===----------------------------------------------------------------------===//

#ifndef DYC_SUPPORT_ARENA_H
#define DYC_SUPPORT_ARENA_H

#include "support/Support.h"

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

namespace dyc {

/// Chunked bump allocator. deallocate() is a no-op; memory is reclaimed by
/// Scope rollback (or reset(), which is rollback-to-empty). Chunks are
/// retained across rollbacks, so steady-state allocation never touches the
/// system allocator.
class BumpArena {
public:
  explicit BumpArena(size_t ChunkBytes = 1 << 16) : ChunkBytes(ChunkBytes) {}
  BumpArena(const BumpArena &) = delete;
  BumpArena &operator=(const BumpArena &) = delete;

  void *allocate(size_t Bytes, size_t Align);
  void deallocate(void *, size_t) {} ///< reclaimed by Scope / reset()

  /// Rolls back to empty, keeping every chunk for reuse.
  void reset() {
    CurChunk = 0;
    CurOffset = 0;
  }

  size_t allocatedBytes() const {
    size_t N = 0;
    for (const Chunk &C : Chunks)
      N += C.Size;
    return N;
  }
  uint64_t allocations() const { return NumAllocs; }

  /// RAII high-water mark: destruction rolls the bump pointer back to
  /// where it was at construction. Scopes must nest (destroy in reverse
  /// order of construction), which the specializer's call structure
  /// guarantees — nested specialization is reentrant on one thread.
  class Scope {
  public:
    explicit Scope(BumpArena &A)
        : A(A), Chunk(A.CurChunk), Offset(A.CurOffset) {}
    ~Scope() {
      A.CurChunk = Chunk;
      A.CurOffset = Offset;
    }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    BumpArena &A;
    size_t Chunk;
    size_t Offset;
  };

private:
  struct Chunk {
    std::unique_ptr<char[]> Mem;
    size_t Size = 0;
  };

  std::vector<Chunk> Chunks;
  size_t CurChunk = 0;  ///< index of the chunk being bumped
  size_t CurOffset = 0; ///< next free byte within it
  size_t ChunkBytes;
  uint64_t NumAllocs = 0;
};

/// Thread-safe size-bucketed block pool. Blocks are carved from an
/// internal BumpArena on first use and recycled through per-size
/// freelists; the arena is never rolled back while the pool lives, so a
/// freed block is always safe to reuse.
class RecyclingPool {
public:
  RecyclingPool() : Arena(1 << 16) {}
  RecyclingPool(const RecyclingPool &) = delete;
  RecyclingPool &operator=(const RecyclingPool &) = delete;
  ~RecyclingPool();

  void *allocate(size_t Bytes, size_t Align);
  void deallocate(void *P, size_t Bytes);

  uint64_t reuses() const;
  uint64_t freshBlocks() const;

private:
  struct FreeNode {
    FreeNode *Next;
  };

  /// Size classes in 16-byte steps up to 512 bytes; larger blocks (none of
  /// the pooled run-time objects reach that) go straight to operator new.
  static constexpr size_t ClassBytes = 16;
  static constexpr size_t NumClasses = 32;
  static size_t classOf(size_t Bytes) {
    return (Bytes + ClassBytes - 1) / ClassBytes;
  }

  mutable std::mutex Mu;
  BumpArena Arena;
  FreeNode *Buckets[NumClasses + 1] = {};
  uint64_t Reuses = 0;
  uint64_t Fresh = 0;
  uint64_t OversizeLive = 0;
};

/// STL allocator over a BumpArena (deallocate is a no-op; lifetime is the
/// enclosing Scope). Container element destructors still run normally.
template <class T> class ArenaAllocator {
public:
  using value_type = T;

  explicit ArenaAllocator(BumpArena &A) : A(&A) {}
  template <class U>
  ArenaAllocator(const ArenaAllocator<U> &O) : A(O.arena()) {}

  T *allocate(size_t N) {
    return static_cast<T *>(A->allocate(N * sizeof(T), alignof(T)));
  }
  void deallocate(T *P, size_t N) { A->deallocate(P, N * sizeof(T)); }

  BumpArena *arena() const { return A; }

  template <class U> bool operator==(const ArenaAllocator<U> &O) const {
    return A == O.arena();
  }
  template <class U> bool operator!=(const ArenaAllocator<U> &O) const {
    return A != O.arena();
  }

private:
  BumpArena *A;
};

/// STL allocator over a shared RecyclingPool. Holds shared ownership so an
/// allocate_shared'd object (and its control block) keeps its pool alive —
/// a test or client that outlives the region core cannot free into a dead
/// pool.
template <class T> class PoolAllocator {
public:
  using value_type = T;

  explicit PoolAllocator(std::shared_ptr<RecyclingPool> P)
      : P(std::move(P)) {}
  template <class U>
  PoolAllocator(const PoolAllocator<U> &O) : P(O.pool()) {}

  T *allocate(size_t N) {
    return static_cast<T *>(P->allocate(N * sizeof(T), alignof(T)));
  }
  void deallocate(T *Ptr, size_t N) { P->deallocate(Ptr, N * sizeof(T)); }

  const std::shared_ptr<RecyclingPool> &pool() const { return P; }

  template <class U> bool operator==(const PoolAllocator<U> &O) const {
    return P == O.pool();
  }
  template <class U> bool operator!=(const PoolAllocator<U> &O) const {
    return P != O.pool();
  }

private:
  std::shared_ptr<RecyclingPool> P;
};

} // namespace dyc

#endif // DYC_SUPPORT_ARENA_H
