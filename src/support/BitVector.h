//===- support/BitVector.h - Dense bit vector --------------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense fixed-size bit vector used by the dataflow analyses (liveness,
/// reaching definitions). Supports the set-algebra operations iterative
/// dataflow needs, with change detection for worklist convergence.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_SUPPORT_BITVECTOR_H
#define DYC_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dyc {

/// Fixed-capacity dense bit set.
class BitVector {
public:
  BitVector() = default;
  explicit BitVector(size_t N) : NumBits(N), Bits((N + 63) / 64, 0) {}

  size_t size() const { return NumBits; }

  void resize(size_t N) {
    NumBits = N;
    Bits.assign((N + 63) / 64, 0);
  }

  bool test(size_t I) const {
    assert(I < NumBits && "bit index out of range");
    return (Bits[I / 64] >> (I % 64)) & 1;
  }

  void set(size_t I) {
    assert(I < NumBits && "bit index out of range");
    Bits[I / 64] |= 1ULL << (I % 64);
  }

  void reset(size_t I) {
    assert(I < NumBits && "bit index out of range");
    Bits[I / 64] &= ~(1ULL << (I % 64));
  }

  void clear() {
    for (uint64_t &W : Bits)
      W = 0;
  }

  /// this |= O; returns true if any bit changed.
  bool unionWith(const BitVector &O) {
    assert(NumBits == O.NumBits && "size mismatch");
    bool Changed = false;
    for (size_t I = 0; I != Bits.size(); ++I) {
      uint64_t Before = Bits[I];
      Bits[I] |= O.Bits[I];
      Changed |= Bits[I] != Before;
    }
    return Changed;
  }

  /// this &= O; returns true if any bit changed.
  bool intersectWith(const BitVector &O) {
    assert(NumBits == O.NumBits && "size mismatch");
    bool Changed = false;
    for (size_t I = 0; I != Bits.size(); ++I) {
      uint64_t Before = Bits[I];
      Bits[I] &= O.Bits[I];
      Changed |= Bits[I] != Before;
    }
    return Changed;
  }

  /// this &= ~O.
  void subtract(const BitVector &O) {
    assert(NumBits == O.NumBits && "size mismatch");
    for (size_t I = 0; I != Bits.size(); ++I)
      Bits[I] &= ~O.Bits[I];
  }

  bool operator==(const BitVector &O) const {
    return NumBits == O.NumBits && Bits == O.Bits;
  }

  bool any() const {
    for (uint64_t W : Bits)
      if (W)
        return true;
    return false;
  }

  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Bits)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

  /// Calls \p F with the index of each set bit, in increasing order.
  template <typename Fn> void forEachSetBit(Fn F) const {
    for (size_t WI = 0; WI != Bits.size(); ++WI) {
      uint64_t W = Bits[WI];
      while (W) {
        unsigned B = static_cast<unsigned>(__builtin_ctzll(W));
        F(WI * 64 + B);
        W &= W - 1;
      }
    }
  }

private:
  size_t NumBits = 0;
  std::vector<uint64_t> Bits;
};

} // namespace dyc

#endif // DYC_SUPPORT_BITVECTOR_H
