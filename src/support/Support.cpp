//===- support/Support.cpp ------------------------------------------------===//

#include "support/Support.h"

#include <cstdio>
#include <cstdlib>

namespace dyc {

void fatal(const std::string &Msg) {
  std::fprintf(stderr, "dyc fatal error: %s\n", Msg.c_str());
  std::abort();
}

std::string formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  std::string Out;
  if (Len > 0) {
    Out.resize(static_cast<size_t>(Len) + 1);
    std::vsnprintf(Out.data(), Out.size(), Fmt, Args);
    Out.resize(static_cast<size_t>(Len));
  }
  va_end(Args);
  return Out;
}

uint64_t hashWords(const Word *Data, size_t N, uint64_t Seed) {
  uint64_t H = Seed;
  for (size_t I = 0; I != N; ++I) {
    H ^= Data[I].Bits;
    H *= 0x100000001b3ULL;
    H ^= H >> 32;
  }
  return H;
}

} // namespace dyc
