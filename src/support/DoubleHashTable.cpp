//===- support/DoubleHashTable.cpp ----------------------------------------===//

#include "support/DoubleHashTable.h"

namespace dyc {

namespace {

/// Prime capacities so the double-hash step h2 (which is always made odd
/// and smaller than the capacity) walks a full cycle.
const size_t PrimeCaps[] = {13,    31,    61,     127,    251,   509,
                            1021,  2039,  4093,   8191,   16381, 32749,
                            65521, 131071, 262139, 524287};

size_t nextCapacity(size_t Current) {
  for (size_t P : PrimeCaps)
    if (P > Current)
      return P;
  return Current * 2 + 1;
}

uint64_t secondaryHash(uint64_t H) {
  // A distinct mix so h2 is independent of h1.
  H ^= H >> 33;
  H *= 0xff51afd7ed558ccdULL;
  H ^= H >> 33;
  return H;
}

} // namespace

DoubleHashTable::DoubleHashTable() { Slots.resize(PrimeCaps[0]); }

DoubleHashTable::DoubleHashTable(const DoubleHashTable &O)
    : Slots(O.Slots), NumEntries(O.NumEntries), NumDeleted(O.NumDeleted),
      TotalProbes(O.TotalProbes.load(std::memory_order_relaxed)),
      TotalLookups(O.TotalLookups.load(std::memory_order_relaxed)) {}

DoubleHashTable &DoubleHashTable::operator=(const DoubleHashTable &O) {
  Slots = O.Slots;
  NumEntries = O.NumEntries;
  NumDeleted = O.NumDeleted;
  TotalProbes.store(O.TotalProbes.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  TotalLookups.store(O.TotalLookups.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  return *this;
}

uint32_t DoubleHashTable::lookup(WordSpan Key, unsigned *ProbesOut) const {
  uint64_t H = hashWords(Key);
  size_t Cap = capacity();
  size_t Idx = H % Cap;
  size_t Step = 1 + secondaryHash(H) % (Cap - 1);
  unsigned Probes = 0;
  TotalLookups.fetch_add(1, std::memory_order_relaxed);
  for (size_t I = 0; I != Cap; ++I) {
    ++Probes;
    const Slot &S = Slots[Idx];
    if (!S.Occupied && !S.Deleted)
      break;
    if (S.Occupied && S.Hash == H && S.Key == Key) {
      TotalProbes.fetch_add(Probes, std::memory_order_relaxed);
      if (ProbesOut)
        *ProbesOut = Probes;
      return S.Value;
    }
    Idx = (Idx + Step) % Cap;
  }
  TotalProbes.fetch_add(Probes, std::memory_order_relaxed);
  if (ProbesOut)
    *ProbesOut = Probes;
  return NotFound;
}

void DoubleHashTable::insert(WordSpan Key, uint32_t Value,
                             uint32_t *ReplacedOut) {
  if (ReplacedOut)
    *ReplacedOut = NotFound;
  // Tombstones count toward the load factor (they lengthen probe chains
  // exactly like live entries until the next grow clears them).
  if ((NumEntries + NumDeleted + 1) * 3 > capacity() * 2)
    grow();
  uint64_t H = hashWords(Key);
  size_t Cap = capacity();
  size_t Idx = H % Cap;
  size_t Step = 1 + secondaryHash(H) % (Cap - 1);
  size_t Tombstone = Cap; // first tombstone seen, reused if key is absent
  for (size_t I = 0; I != Cap; ++I) {
    Slot &S = Slots[Idx];
    if (!S.Occupied) {
      if (S.Deleted) {
        if (Tombstone == Cap)
          Tombstone = Idx;
        Idx = (Idx + Step) % Cap;
        continue;
      }
      Slot &Dst = Tombstone != Cap ? Slots[Tombstone] : S;
      if (Dst.Deleted) {
        Dst.Deleted = false;
        --NumDeleted;
      }
      Dst.Key.assign(Key.begin(), Key.end());
      Dst.Hash = H;
      Dst.Value = Value;
      Dst.Occupied = true;
      ++NumEntries;
      return;
    }
    if (S.Hash == H && S.Key == Key) {
      if (ReplacedOut)
        *ReplacedOut = S.Value;
      S.Value = Value;
      return;
    }
    Idx = (Idx + Step) % Cap;
  }
  if (Tombstone != Cap) {
    Slot &Dst = Slots[Tombstone];
    Dst.Deleted = false;
    --NumDeleted;
    Dst.Key.assign(Key.begin(), Key.end());
    Dst.Hash = H;
    Dst.Value = Value;
    Dst.Occupied = true;
    ++NumEntries;
    return;
  }
  fatal("double-hash table insert failed despite resize policy");
}

void DoubleHashTable::erase(WordSpan Key) {
  uint64_t H = hashWords(Key);
  size_t Cap = capacity();
  size_t Idx = H % Cap;
  size_t Step = 1 + secondaryHash(H) % (Cap - 1);
  for (size_t I = 0; I != Cap; ++I) {
    Slot &S = Slots[Idx];
    if (!S.Occupied && !S.Deleted)
      return;
    if (S.Occupied && S.Hash == H && S.Key == Key) {
      S.Occupied = false;
      S.Deleted = true;
      S.Key.clear();
      --NumEntries;
      ++NumDeleted;
      return;
    }
    Idx = (Idx + Step) % Cap;
  }
}

void DoubleHashTable::grow() {
  std::vector<Slot> Old = std::move(Slots);
  Slots.clear();
  Slots.resize(nextCapacity(Old.size()));
  NumEntries = 0;
  NumDeleted = 0;
  for (Slot &S : Old)
    if (S.Occupied)
      insert(S.Key, S.Value);
}

} // namespace dyc
