//===- core/Harness.cpp --------------------------------------------------------------===//

#include "core/Harness.h"

#include <chrono>
#include <thread>

namespace dyc {
namespace core {

using workloads::Workload;
using workloads::WorkloadSetup;

void compileWorkload(const Workload &W, DycContext &Ctx) {
  std::vector<std::string> Errors;
  if (Ctx.compile(W.Source, Errors)) {
    return;
  }
  std::string All = "workload '" + W.Name + "' failed to compile:";
  for (const std::string &E : Errors)
    All += "\n  " + E;
  fatal(All);
}

namespace {

/// Runs \p Invocations calls of the region function; returns
/// (execCyclesDelta, lastResult).
std::pair<uint64_t, Word> timeInvocations(Executable &E, int Func,
                                          const std::vector<Word> &Args,
                                          uint64_t Invocations) {
  uint64_t Start = E.Machine->execCycles();
  Word Last;
  for (uint64_t I = 0; I != Invocations; ++I)
    Last = E.Machine->run(static_cast<uint32_t>(Func), Args);
  return {E.Machine->execCycles() - Start, Last};
}

/// Compares the validated output range and a result word.
bool outputsEqual(Executable &A, Executable &B, const WorkloadSetup &S,
                  Word RA, Word RB) {
  if (RA != RB)
    return false;
  for (int64_t I = 0; I != S.OutLen; ++I)
    if (A.Machine->memory()[static_cast<size_t>(S.OutBase + I)] !=
        B.Machine->memory()[static_cast<size_t>(S.OutBase + I)])
      return false;
  return true;
}

} // namespace

RegionPerf measureRegion(const Workload &W, const OptFlags &Flags,
                         const vm::CostModel &CM,
                         const vm::ICacheConfig &IC) {
  DycContext Ctx;
  compileWorkload(W, Ctx);

  RegionPerf P;

  auto StaticE = Ctx.buildStatic(CM, IC);
  WorkloadSetup SS = W.Setup(*StaticE->Machine);
  int SF = StaticE->findFunction(W.RegionFunc);
  if (SF < 0)
    fatal("workload '" + W.Name + "': region function not found");
  // One discarded warm-up invocation on both configurations (the paper
  // discards the first run); it also keeps cumulative state symmetric.
  Word SRes = StaticE->Machine->run(static_cast<uint32_t>(SF),
                                    SS.RegionArgs);
  auto [SCycles, SRes1] = timeInvocations(*StaticE, SF, SS.RegionArgs,
                                          W.RegionInvocations);
  (void)SRes1;
  P.StaticCyclesPerInvoke =
      static_cast<double>(SCycles) / W.RegionInvocations;

  auto DynE = Ctx.buildDynamic(Flags, CM, IC);
  WorkloadSetup DS = W.Setup(*DynE->Machine);
  int DF = DynE->findFunction(W.RegionFunc);
  // First invocation triggers dynamic compilation (overhead is accounted
  // separately by the VM); subsequent invocations measure steady state.
  Word DRes = DynE->Machine->run(static_cast<uint32_t>(DF), DS.RegionArgs);
  auto [DCycles, DRes2] = timeInvocations(*DynE, DF, DS.RegionArgs,
                                          W.RegionInvocations);
  (void)DRes2;
  P.DynCyclesPerInvoke = static_cast<double>(DCycles) / W.RegionInvocations;

  P.AsymptoticSpeedup =
      P.DynCyclesPerInvoke > 0
          ? P.StaticCyclesPerInvoke / P.DynCyclesPerInvoke
          : 0;
  P.OverheadCycles = DynE->Machine->dynCompCycles();
  double Gain = P.StaticCyclesPerInvoke - P.DynCyclesPerInvoke;
  P.BreakEvenInvocations =
      Gain > 0 ? static_cast<double>(P.OverheadCycles) / Gain : -1.0;
  P.BreakEvenUnits = P.BreakEvenInvocations >= 0
                         ? P.BreakEvenInvocations * DS.UnitsPerInvocation
                         : -1.0;
  P.UnitName = DS.UnitName;

  int Ord = DynE->regionOrdinalOf(W.RegionFunc);
  if (Ord >= 0) {
    P.Stats = DynE->RT->stats(static_cast<size_t>(Ord));
    P.InstructionsGenerated = P.Stats.InstructionsGenerated;
    P.OverheadPerInstr =
        P.InstructionsGenerated
            ? static_cast<double>(P.OverheadCycles) /
                  static_cast<double>(P.InstructionsGenerated)
            : 0;
  }
  P.OutputsMatch = outputsEqual(*StaticE, *DynE, SS, SRes, DRes);
  return P;
}

WholeProgramPerf measureWholeProgram(const Workload &W, const OptFlags &Flags,
                                     const vm::CostModel &CM,
                                     const vm::ICacheConfig &IC) {
  DycContext Ctx;
  compileWorkload(W, Ctx);
  WholeProgramPerf P;

  auto StaticE = Ctx.buildStatic(CM, IC);
  WorkloadSetup SS = W.Setup(*StaticE->Machine);
  int SMain = StaticE->findFunction(W.MainFunc);
  int SRegion = StaticE->findFunction(W.RegionFunc);
  if (SMain < 0 || SRegion < 0)
    fatal("workload '" + W.Name + "': driver or region function missing");
  Word SRes = StaticE->Machine->run(static_cast<uint32_t>(SMain),
                                    SS.MainArgs);
  uint64_t STotal = StaticE->Machine->execCycles();
  uint64_t SRegionCycles =
      StaticE->Machine->functionStats(static_cast<uint32_t>(SRegion))
          .InclusiveCycles;
  for (const std::string &Extra : W.ExtraRegionFuncs) {
    int EF = StaticE->findFunction(Extra);
    if (EF >= 0)
      SRegionCycles +=
          StaticE->Machine->functionStats(static_cast<uint32_t>(EF))
              .InclusiveCycles;
  }
  P.StaticSeconds = static_cast<double>(STotal) / ClockHz;
  P.PctInRegion =
      STotal ? 100.0 * static_cast<double>(SRegionCycles) / STotal : 0;

  auto DynE = Ctx.buildDynamic(Flags, CM, IC);
  WorkloadSetup DS = W.Setup(*DynE->Machine);
  int DMain = DynE->findFunction(W.MainFunc);
  Word DRes = DynE->Machine->run(static_cast<uint32_t>(DMain), DS.MainArgs);
  uint64_t DTotal =
      DynE->Machine->execCycles() + DynE->Machine->dynCompCycles();
  P.DynSeconds = static_cast<double>(DTotal) / ClockHz;
  P.Speedup = DTotal ? static_cast<double>(STotal) / DTotal : 0;
  P.OutputsMatch = outputsEqual(*StaticE, *DynE, SS, SRes, DRes);
  return P;
}

ServerThroughputPerf
measureServerThroughput(const Workload &W, const OptFlags &Flags,
                        unsigned Threads, uint64_t InvocationsPerThread,
                        server::ServerConfig Cfg) {
  if (Threads == 0)
    Threads = 1;
  DycContext Ctx;
  compileWorkload(W, Ctx);

  ServerThroughputPerf P;
  P.Threads = Threads;

  // Reference: the same per-client sequence on the inline runtime.
  auto RefE = Ctx.buildDynamic(Flags, Cfg.CM, Cfg.IC);
  WorkloadSetup RefS = W.Setup(*RefE->Machine);
  int RefF = RefE->findFunction(W.RegionFunc);
  if (RefF < 0)
    fatal("workload '" + W.Name + "': region function not found");
  Word RefRes;
  for (uint64_t I = 0; I != InvocationsPerThread; ++I)
    RefRes = RefE->Machine->run(static_cast<uint32_t>(RefF), RefS.RegionArgs);

  // The workload Setup is deterministic, so applying it to the server VM
  // and to every client VM yields bit-identical memory images — the
  // precondition for the server specializing on the clients' behalf.
  WorkloadSetup ClientS;
  Cfg.MemoryImage = [&W, &ClientS](vm::VM &M) { ClientS = W.Setup(M); };
  auto Server = Ctx.buildServer(Flags, std::move(Cfg));

  int F = Server->findFunction(W.RegionFunc);
  std::vector<std::unique_ptr<vm::VM>> Clients;
  for (unsigned T = 0; T != Threads; ++T)
    Clients.push_back(Server->makeClientVM());

  std::vector<Word> Results(Threads);
  auto Start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> Pool;
    for (unsigned T = 0; T != Threads; ++T)
      Pool.emplace_back([&, T] {
        vm::VM &M = *Clients[T];
        for (uint64_t I = 0; I != InvocationsPerThread; ++I)
          Results[T] = M.run(static_cast<uint32_t>(F), ClientS.RegionArgs);
      });
    for (std::thread &T : Pool)
      T.join();
  }
  auto End = std::chrono::steady_clock::now();

  P.Invocations = static_cast<uint64_t>(Threads) * InvocationsPerThread;
  P.WallSeconds = std::chrono::duration<double>(End - Start).count();
  P.InvocationsPerSec =
      P.WallSeconds > 0 ? static_cast<double>(P.Invocations) / P.WallSeconds
                        : 0;

  P.OutputsMatch = true;
  for (unsigned T = 0; T != Threads; ++T) {
    if (Results[T] != RefRes) {
      P.OutputsMatch = false;
      break;
    }
    for (int64_t I = 0; I != RefS.OutLen; ++I)
      if (Clients[T]->memory()[static_cast<size_t>(RefS.OutBase + I)] !=
          RefE->Machine->memory()[static_cast<size_t>(RefS.OutBase + I)]) {
        P.OutputsMatch = false;
        break;
      }
    if (!P.OutputsMatch)
      break;
  }

  Server->drain();
  P.Stats = Server->stats();
  return P;
}

} // namespace core
} // namespace dyc
