//===- core/DycContext.h - Public API of the DyC reproduction --------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level entry point a downstream user programs against:
///
/// \code
///   dyc::core::DycContext Ctx;
///   std::vector<std::string> Errors;
///   Ctx.compile(MiniCSource, Errors);                 // static pipeline
///   auto Static = Ctx.buildStatic();                  // baseline
///   auto Dynamic = Ctx.buildDynamic(dyc::OptFlags{}); // DyC
///   Word R = Dynamic->Machine->run(Idx, Args);        // runs + specializes
/// \endcode
///
/// compile() runs the full static side of Figure 1: parse, lower,
/// normalize annotations, traditional optimizations, verification.
/// buildDynamic() runs BTA, the dynamic-compiler generator, and wires a
/// DycRuntime into a fresh VM.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_CORE_DYCCONTEXT_H
#define DYC_CORE_DYCCONTEXT_H

#include "bta/BTAnalysis.h"
#include "cogen/CompilerGenerator.h"
#include "runtime/Specializer.h"
#include "server/SpecServer.h"
#include "speculate/SpeculativeRuntime.h"
#include "vm/VM.h"

#include <memory>
#include <string>
#include <vector>

namespace dyc {
namespace core {

/// One runnable configuration of a compiled module. Owns the program, the
/// machine, and (for dynamic builds) the DyC run-time. Not movable: the
/// run-time holds references into the program.
struct Executable {
  vm::Program Prog;
  std::unique_ptr<runtime::DycRuntime> RT; ///< null for static builds
  /// The speculative run-time (buildSpeculative only; declared after RT
  /// and before Machine so destruction runs Machine, then Spec, then the
  /// program it lowered into).
  std::unique_ptr<speculate::SpeculativeRuntime> Spec;
  std::unique_ptr<vm::VM> Machine;
  std::vector<cogen::LoweredFunction> Lowered;
  /// Function index -> annotated-region ordinal (-1 if unannotated).
  std::vector<int> AnnotatedOrdinal;

  Executable() = default;
  Executable(const Executable &) = delete;
  Executable &operator=(const Executable &) = delete;

  int findFunction(const std::string &Name) const {
    return Prog.findFunction(Name);
  }

  /// Region ordinal of function \p Name, or -1.
  int regionOrdinalOf(const std::string &Name) const;
};

/// Compilation context: owns the optimized module.
class DycContext {
public:
  /// Parses, lowers, normalizes, optimizes, and verifies \p Source.
  /// Returns false (with messages in \p Errors) on failure.
  bool compile(const std::string &Source, std::vector<std::string> &Errors);

  const ir::Module &module() const { return M; }
  ir::Module &moduleMutable() { return M; }

  /// Builds the statically compiled configuration (annotations ignored).
  std::unique_ptr<Executable>
  buildStatic(const vm::CostModel &CM = vm::CostModel(),
              const vm::ICacheConfig &IC = vm::ICacheConfig()) const;

  /// Builds the dynamically compiled configuration under \p Flags.
  /// \p Budget bounds resident generated code per region (zeros mean
  /// unbounded, the paper's behavior).
  std::unique_ptr<Executable>
  buildDynamic(const OptFlags &Flags = OptFlags(),
               const vm::CostModel &CM = vm::CostModel(),
               const vm::ICacheConfig &IC = vm::ICacheConfig(),
               runtime::ChainBudget Budget = {}) const;

  /// Builds the speculative configuration: annotations are stripped and
  /// the run-time re-discovers them online (profile -> promote -> guard
  /// -> deopt -> demote). With \p Policy.Enabled false this behaves like
  /// buildStatic plus an idle runtime.
  std::unique_ptr<Executable>
  buildSpeculative(const speculate::SpeculationPolicy &Policy =
                       speculate::SpeculationPolicy(),
                   const OptFlags &Flags = OptFlags(),
                   const vm::CostModel &CM = vm::CostModel(),
                   const vm::ICacheConfig &IC = vm::ICacheConfig(),
                   runtime::ChainBudget Budget = {}) const;

  /// Builds the concurrent specialization service over this module. The
  /// context must outlive the server (the server keeps a reference to the
  /// module, as Executable's runtime does).
  std::unique_ptr<server::SpecServer>
  buildServer(const OptFlags &Flags = OptFlags(),
              server::ServerConfig Cfg = server::ServerConfig()) const;

  /// Builds the tiered specialization service: buildServer with
  /// Flags.Tier.Enabled forced on and the miss policy forced to Fallback
  /// (tiered dispatch never waits on compilation; synchronous installs,
  /// if wanted, come from Flags.Tier.SyncInstall).
  std::unique_ptr<server::SpecServer>
  buildTiered(const OptFlags &Flags = OptFlags(),
              server::ServerConfig Cfg = server::ServerConfig()) const;

  /// Builds the multi-tenant specialization service: buildServer with
  /// Cfg.MultiTenant forced on (per-tenant cache views, quotas, and the
  /// cross-tenant content-addressed chain store) and tiering forced off —
  /// the two do not compose. Make per-tenant clients with
  /// SpecServer::makeClientVM(TenantId).
  std::unique_ptr<server::SpecServer>
  buildMultiTenant(const OptFlags &Flags = OptFlags(),
                   server::ServerConfig Cfg = server::ServerConfig()) const;

  /// Runs BTA only (no code generation); one RegionInfo per function.
  std::vector<bta::RegionInfo> analyze(const OptFlags &Flags) const;

private:
  ir::Module M;
};

} // namespace core
} // namespace dyc

#endif // DYC_CORE_DYCCONTEXT_H
