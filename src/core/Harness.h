//===- core/Harness.h - Measurement harness ---------------------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's measurement methodology (section 3.3) on the
/// deterministic machine: per-invocation dynamic-region timing (Table 3),
/// whole-program timing with percent-of-execution attribution (Table 4),
/// and the o/(s-d) break-even computation. Output equivalence between the
/// static and dynamic configurations is checked on every measurement.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_CORE_HARNESS_H
#define DYC_CORE_HARNESS_H

#include "core/DycContext.h"
#include "runtime/RuntimeStats.h"
#include "workloads/Workload.h"

namespace dyc {
namespace core {

/// Simulated clock rate used only to render cycles as seconds in
/// Table-4-style output (the 21164 of the paper's era ran near 500MHz).
constexpr double ClockHz = 500e6;

/// Table 3 row.
struct RegionPerf {
  double StaticCyclesPerInvoke = 0; ///< s
  double DynCyclesPerInvoke = 0;    ///< d
  double AsymptoticSpeedup = 0;     ///< s/d
  uint64_t OverheadCycles = 0;      ///< o (dynamic-compilation cycles)
  double BreakEvenInvocations = 0;  ///< o/(s-d); infinity if d >= s
  double BreakEvenUnits = 0;        ///< scaled to the workload's units
  std::string UnitName;
  uint64_t InstructionsGenerated = 0;
  double OverheadPerInstr = 0; ///< cycles per generated instruction
  runtime::RegionStats Stats;  ///< specializer counters (Table 2 evidence)
  bool OutputsMatch = false;   ///< dynamic results equal static results
};

/// Table 4 row.
struct WholeProgramPerf {
  double StaticSeconds = 0;
  double DynSeconds = 0; ///< includes dynamic-compilation overhead
  double PctInRegion = 0;
  double Speedup = 0;
  bool OutputsMatch = false;
};

/// Builds both configurations of \p W and measures its dynamic region.
RegionPerf measureRegion(const workloads::Workload &W, const OptFlags &Flags,
                         const vm::CostModel &CM = vm::CostModel(),
                         const vm::ICacheConfig &IC = vm::ICacheConfig());

/// Measures a full run of the workload's driver.
WholeProgramPerf
measureWholeProgram(const workloads::Workload &W, const OptFlags &Flags,
                    const vm::CostModel &CM = vm::CostModel(),
                    const vm::ICacheConfig &IC = vm::ICacheConfig());

/// Multi-client throughput through the SpecServer. Host wall-clock, not
/// simulated cycles: the question is how the service scales with client
/// threads, which the single-machine cycle model cannot express.
struct ServerThroughputPerf {
  unsigned Threads = 0;
  uint64_t Invocations = 0;      ///< total region invocations completed
  double WallSeconds = 0;
  double InvocationsPerSec = 0;
  bool OutputsMatch = false;     ///< every client matched the inline run
  server::ServerStatsSnapshot Stats;
};

/// Runs \p W's region function \p InvocationsPerThread times on each of
/// \p Threads concurrent client VMs against one SpecServer, and checks
/// every client's outputs (result word and validated memory range)
/// against a single-threaded inline-runtime run of the same sequence.
ServerThroughputPerf
measureServerThroughput(const workloads::Workload &W, const OptFlags &Flags,
                        unsigned Threads, uint64_t InvocationsPerThread,
                        server::ServerConfig Cfg = server::ServerConfig());

/// Compiles \p W into a fresh context; aborts with the compile errors on
/// failure (workload sources are part of this repository and must build).
void compileWorkload(const workloads::Workload &W, DycContext &Ctx);

} // namespace core
} // namespace dyc

#endif // DYC_CORE_HARNESS_H
