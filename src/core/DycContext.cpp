//===- core/DycContext.cpp ----------------------------------------------------------===//

#include "core/DycContext.h"

#include "frontend/Lower.h"
#include "opt/Passes.h"

namespace dyc {
namespace core {

int Executable::regionOrdinalOf(const std::string &Name) const {
  int Idx = findFunction(Name);
  if (Idx < 0 || static_cast<size_t>(Idx) >= AnnotatedOrdinal.size())
    return -1;
  return AnnotatedOrdinal[static_cast<size_t>(Idx)];
}

bool DycContext::compile(const std::string &Source,
                         std::vector<std::string> &Errors) {
  if (!frontend::compileMiniC(Source, M, Errors))
    return false;
  // Normalize before optimizing so the static and dynamic compiles share
  // one CFG in which every make_static heads a block.
  for (size_t I = 0; I != M.numFunctions(); ++I)
    bta::normalizeAnnotations(M.function(static_cast<int>(I)));
  opt::runStaticOptimizations(M);
  std::string Err = ir::verifyModule(M);
  if (!Err.empty()) {
    Errors.push_back("post-optimization verification failed: " + Err);
    return false;
  }
  return true;
}

std::vector<bta::RegionInfo>
DycContext::analyze(const OptFlags &Flags) const {
  std::vector<bta::RegionInfo> Out;
  for (size_t I = 0; I != M.numFunctions(); ++I) {
    Out.push_back(
        bta::analyzeFunction(M.function(static_cast<int>(I)), M, Flags));
    Out.back().FuncIdx = static_cast<int>(I);
  }
  return Out;
}

std::unique_ptr<server::SpecServer>
DycContext::buildServer(const OptFlags &Flags,
                        server::ServerConfig Cfg) const {
  return std::make_unique<server::SpecServer>(M, Flags, std::move(Cfg));
}

std::unique_ptr<server::SpecServer>
DycContext::buildTiered(const OptFlags &Flags,
                        server::ServerConfig Cfg) const {
  OptFlags TF = Flags;
  TF.Tier.Enabled = true;
  Cfg.OnMiss = server::MissPolicy::Fallback;
  return std::make_unique<server::SpecServer>(M, TF, std::move(Cfg));
}

std::unique_ptr<server::SpecServer>
DycContext::buildMultiTenant(const OptFlags &Flags,
                             server::ServerConfig Cfg) const {
  OptFlags MTF = Flags;
  MTF.Tier.Enabled = false; // tiering does not compose with multi-tenancy
  Cfg.MultiTenant = true;
  return std::make_unique<server::SpecServer>(M, MTF, std::move(Cfg));
}

std::unique_ptr<Executable>
DycContext::buildStatic(const vm::CostModel &CM,
                        const vm::ICacheConfig &IC) const {
  auto E = std::make_unique<Executable>();
  cogen::bindExternals(M, E->Prog);
  std::vector<bta::RegionInfo> Empty(M.numFunctions());
  std::vector<int> NoOrd(M.numFunctions(), -1);
  E->Lowered = cogen::lowerModule(M, E->Prog, /*WithRegions=*/false, Empty,
                                  NoOrd);
  E->AnnotatedOrdinal = std::move(NoOrd);
  E->Machine = std::make_unique<vm::VM>(E->Prog, CM, IC);
  return E;
}

std::unique_ptr<Executable>
DycContext::buildSpeculative(const speculate::SpeculationPolicy &Policy,
                             const OptFlags &Flags, const vm::CostModel &CM,
                             const vm::ICacheConfig &IC,
                             runtime::ChainBudget Budget) const {
  auto E = std::make_unique<Executable>();
  // The runtime strips annotations, binds externals, and lowers the
  // generic module into E->Prog itself (twins are appended later, at
  // promotion time).
  E->Spec = std::make_unique<speculate::SpeculativeRuntime>(
      M, E->Prog, Flags, Policy, Budget);
  E->Lowered = E->Spec->lowered();
  E->AnnotatedOrdinal.assign(M.numFunctions(), -1);
  E->Machine = std::make_unique<vm::VM>(E->Prog, CM, IC);
  E->Machine->Hook = E->Spec.get();
  E->Spec->arm(*E->Machine); // also attaches the machine to the backend
  return E;
}

std::unique_ptr<Executable>
DycContext::buildDynamic(const OptFlags &Flags, const vm::CostModel &CM,
                         const vm::ICacheConfig &IC,
                         runtime::ChainBudget Budget) const {
  auto E = std::make_unique<Executable>();
  cogen::bindExternals(M, E->Prog);

  std::vector<bta::RegionInfo> Regions = analyze(Flags);
  std::vector<int> Ordinals(M.numFunctions(), -1);
  int Next = 0;
  for (size_t I = 0; I != M.numFunctions(); ++I)
    if (!Regions[I].Contexts.empty())
      Ordinals[I] = Next++;

  E->Lowered = cogen::lowerModule(M, E->Prog, /*WithRegions=*/true, Regions,
                                  Ordinals);
  E->AnnotatedOrdinal = Ordinals;

  E->RT = std::make_unique<runtime::DycRuntime>(M, E->Prog, Flags, Budget);
  for (size_t I = 0; I != M.numFunctions(); ++I) {
    if (Ordinals[I] < 0)
      continue;
    cogen::GenExtFunction GX =
        cogen::buildGenExt(M.function(static_cast<int>(I)), M,
                           std::move(Regions[I]), E->Lowered[I], Flags);
    E->RT->addRegion(std::move(GX));
  }

  E->Machine = std::make_unique<vm::VM>(E->Prog, CM, IC);
  E->Machine->Hook = E->RT.get();
  E->RT->core().attachVM(*E->Machine);
  return E;
}

} // namespace core
} // namespace dyc
