//===- profile/ValueProfiler.h - Value profiling & annotation advice -------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's stated next step (sections 3.2 and 6): "automate program
/// annotation using techniques such as value profiling [Calder et al.] to
/// identify static variable candidates, and a cost-benefit model to
/// select appropriate optimizations."
///
/// ValueProfiler observes every call executed by a VM and records, per
/// function parameter, the distinct values seen (up to a cap).
/// AnnotationAdvisor combines that with the VM's per-function inclusive
/// cycle counts into ranked make_static suggestions: parameters of hot
/// functions that are invariant (or near-invariant) across many calls.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_PROFILE_VALUEPROFILER_H
#define DYC_PROFILE_VALUEPROFILER_H

#include "ir/Module.h"
#include "profile/Heat.h"
#include "vm/VM.h"

#include <map>
#include <string>
#include <vector>

namespace dyc {
namespace profile {

/// Per-parameter value statistics.
struct ParamProfile {
  uint64_t Observations = 0;
  /// Distinct values with occurrence counts; capped — once the cap is
  /// exceeded the parameter is considered too variable to specialize on.
  std::map<uint64_t, uint64_t> Values;
  bool Overflowed = false;
  /// Speculation feedback: times a guard speculating on this parameter
  /// compared unequal, and whether the promotion controller has given up
  /// on it (thrashing). Blacklisting survives resetFunction so the same
  /// bad speculation is not retried on fresh statistics.
  uint64_t GuardFailures = 0;
  bool Blacklisted = false;

  size_t distinctValues() const { return Values.size(); }

  /// Fraction of observations taken by the most common value.
  double dominance() const;

  /// The most frequently observed value (smallest such value on a tie —
  /// the map's ascending order makes the choice deterministic). Only
  /// meaningful when !Values.empty().
  uint64_t dominantValue() const;
};

/// Records argument values for every call in a VM run.
class ValueProfiler {
public:
  /// \p MaxDistinct caps the tracked value set per parameter.
  explicit ValueProfiler(size_t MaxDistinct = 16)
      : MaxDistinct(MaxDistinct) {}

  /// Attaches to \p M (sets its call observer). Call before running. If
  /// another observer is already installed it is *chained*, not replaced:
  /// the previous observer runs first, then this profiler samples. A
  /// second attach of the same profiler to the same VM is rejected (it
  /// would double-count through its own chained tail).
  void attach(vm::VM &M);

  /// Records one call observation directly (the speculative run-time
  /// samples through this instead of the VM observer so it controls
  /// exactly which calls are profiled).
  void recordCall(uint32_t Func, const Word *Args, uint32_t NArgs);

  /// Feedback from a failed speculation guard: the promoted parameter
  /// \p Param of \p Func held \p Seen instead of the speculated value.
  /// The observation also lands in the value set, so re-promotion after
  /// a phase change speculates on the new dominant value.
  void noteGuardFailure(uint32_t Func, uint32_t Param, Word Seen);

  /// Marks \p Param of \p Func as not worth speculating on again.
  void blacklist(uint32_t Func, uint32_t Param);
  bool isBlacklisted(uint32_t Func, uint32_t Param) const;

  /// Clears \p Func's call count and per-parameter statistics so a
  /// demoted function must re-establish hotness and dominance before the
  /// controller reconsiders it. Blacklist flags are preserved.
  void resetFunction(uint32_t Func);

  const ParamProfile &param(uint32_t Func, uint32_t Param) const;
  uint64_t calls(uint32_t Func) const;

private:
  size_t MaxDistinct;
  /// [function][param] -> profile.
  std::vector<std::vector<ParamProfile>> Profiles;
  /// Per-function call heat, on the shared HeatCounters bank (the same
  /// mechanism the tier controller samples region heat through).
  HeatCounters Calls;
  /// VMs this profiler is already attached to (double-attach rejection).
  std::vector<const vm::VM *> Attached;

  std::vector<ParamProfile> &profilesFor(uint32_t Func, uint32_t NParams);
};

/// One make_static suggestion.
struct Suggestion {
  int FuncIdx = -1;
  std::string FuncName;
  std::vector<ir::Reg> Params;      ///< parameters to annotate together
  std::vector<std::string> Names;
  uint64_t CallCount = 0;
  size_t DistinctCombos = 0;        ///< max distinct values among them
  double CycleShare = 0;            ///< fraction of total execution time
  double Score = 0;                 ///< ranking key

  std::string toString() const;
};

/// Cost-benefit knobs for the advisor.
struct AdvisorPolicy {
  uint64_t MinCalls = 8;        ///< amortization floor
  size_t MaxDistinct = 4;       ///< values per parameter worth caching
  double MinCycleShare = 0.01;  ///< ignore cold functions
  double MinDominance = 0.5;    ///< most-common value share floor
};

/// Ranks annotation candidates from a profile + execution statistics.
/// Functions that already carry annotations are skipped.
std::vector<Suggestion> adviseAnnotations(const ir::Module &M,
                                          const vm::VM &Machine,
                                          const ValueProfiler &P,
                                          const AdvisorPolicy &Policy = {});

} // namespace profile
} // namespace dyc

#endif // DYC_PROFILE_VALUEPROFILER_H
