//===- profile/ValueProfiler.h - Value profiling & annotation advice -------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's stated next step (sections 3.2 and 6): "automate program
/// annotation using techniques such as value profiling [Calder et al.] to
/// identify static variable candidates, and a cost-benefit model to
/// select appropriate optimizations."
///
/// ValueProfiler observes every call executed by a VM and records, per
/// function parameter, the distinct values seen (up to a cap).
/// AnnotationAdvisor combines that with the VM's per-function inclusive
/// cycle counts into ranked make_static suggestions: parameters of hot
/// functions that are invariant (or near-invariant) across many calls.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_PROFILE_VALUEPROFILER_H
#define DYC_PROFILE_VALUEPROFILER_H

#include "ir/Module.h"
#include "vm/VM.h"

#include <map>
#include <string>
#include <vector>

namespace dyc {
namespace profile {

/// Per-parameter value statistics.
struct ParamProfile {
  uint64_t Observations = 0;
  /// Distinct values with occurrence counts; capped — once the cap is
  /// exceeded the parameter is considered too variable to specialize on.
  std::map<uint64_t, uint64_t> Values;
  bool Overflowed = false;

  size_t distinctValues() const { return Values.size(); }

  /// Fraction of observations taken by the most common value.
  double dominance() const;
};

/// Records argument values for every call in a VM run.
class ValueProfiler {
public:
  /// \p MaxDistinct caps the tracked value set per parameter.
  explicit ValueProfiler(size_t MaxDistinct = 16)
      : MaxDistinct(MaxDistinct) {}

  /// Attaches to \p M (sets its call observer). Call before running.
  void attach(vm::VM &M);

  const ParamProfile &param(uint32_t Func, uint32_t Param) const;
  uint64_t calls(uint32_t Func) const;

private:
  size_t MaxDistinct;
  /// [function][param] -> profile.
  std::vector<std::vector<ParamProfile>> Profiles;
  std::vector<uint64_t> Calls;
};

/// One make_static suggestion.
struct Suggestion {
  int FuncIdx = -1;
  std::string FuncName;
  std::vector<ir::Reg> Params;      ///< parameters to annotate together
  std::vector<std::string> Names;
  uint64_t CallCount = 0;
  size_t DistinctCombos = 0;        ///< max distinct values among them
  double CycleShare = 0;            ///< fraction of total execution time
  double Score = 0;                 ///< ranking key

  std::string toString() const;
};

/// Cost-benefit knobs for the advisor.
struct AdvisorPolicy {
  uint64_t MinCalls = 8;        ///< amortization floor
  size_t MaxDistinct = 4;       ///< values per parameter worth caching
  double MinCycleShare = 0.01;  ///< ignore cold functions
  double MinDominance = 0.5;    ///< most-common value share floor
};

/// Ranks annotation candidates from a profile + execution statistics.
/// Functions that already carry annotations are skipped.
std::vector<Suggestion> adviseAnnotations(const ir::Module &M,
                                          const vm::VM &Machine,
                                          const ValueProfiler &P,
                                          const AdvisorPolicy &Policy = {});

} // namespace profile
} // namespace dyc

#endif // DYC_PROFILE_VALUEPROFILER_H
