//===- profile/Heat.h - Shared heat-counter bank ----------------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One sampling mechanism for "how hot is this thing": a growable bank of
/// relaxed atomic counters indexed by a dense ordinal. The ValueProfiler
/// counts per-function calls through it, and the tier controller counts
/// per-region dispatch heat through it — so tiering decisions and
/// speculative promotion read the same kind of evidence instead of each
/// maintaining a private sampling path.
///
/// Concurrency: bump/get/reset on an index below size() are lock-free
/// (relaxed atomics — heat is advisory, cross-counter ordering does not
/// matter). Growth (ensure) takes a mutex; the deque storage never
/// relocates existing counters, so readers race-free against growth.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_PROFILE_HEAT_H
#define DYC_PROFILE_HEAT_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>

namespace dyc {
namespace profile {

class HeatCounters {
public:
  HeatCounters() = default;
  explicit HeatCounters(size_t N) { ensure(N); }

  /// Grows the bank to at least \p N counters (new counters start at 0).
  void ensure(size_t N) {
    if (N <= Count.load(std::memory_order_acquire))
      return;
    std::lock_guard<std::mutex> Lock(GrowMutex);
    while (Bank.size() < N)
      Bank.emplace_back(0);
    Count.store(Bank.size(), std::memory_order_release);
  }

  /// Increments counter \p Idx and returns its new value. \p Idx must be
  /// below size() (callers ensure() up front).
  uint64_t bump(size_t Idx) {
    return Bank[Idx].fetch_add(1, std::memory_order_relaxed) + 1;
  }

  uint64_t get(size_t Idx) const {
    if (Idx >= Count.load(std::memory_order_acquire))
      return 0;
    return Bank[Idx].load(std::memory_order_relaxed);
  }

  void reset(size_t Idx) {
    if (Idx < Count.load(std::memory_order_acquire))
      Bank[Idx].store(0, std::memory_order_relaxed);
  }

  size_t size() const { return Count.load(std::memory_order_acquire); }

private:
  std::mutex GrowMutex;
  /// Deque, not vector: growth must never relocate live atomics.
  std::deque<std::atomic<uint64_t>> Bank;
  std::atomic<size_t> Count{0};
};

} // namespace profile
} // namespace dyc

#endif // DYC_PROFILE_HEAT_H
