//===- profile/ValueProfiler.cpp -----------------------------------------------------===//

#include "profile/ValueProfiler.h"

#include <algorithm>

namespace dyc {
namespace profile {

double ParamProfile::dominance() const {
  if (Observations == 0 || Values.empty())
    return 0.0;
  uint64_t Best = 0;
  for (const auto &[V, N] : Values)
    Best = std::max(Best, N);
  return static_cast<double>(Best) / static_cast<double>(Observations);
}

void ValueProfiler::attach(vm::VM &M) {
  size_t N = M.program().numFunctions();
  Profiles.resize(N);
  Calls.assign(N, 0);
  M.OnCall = [this](uint32_t Func, const Word *Args, uint32_t NArgs) {
    if (Func >= Profiles.size()) {
      Profiles.resize(Func + 1);
      Calls.resize(Func + 1, 0);
    }
    ++Calls[Func];
    std::vector<ParamProfile> &Ps = Profiles[Func];
    if (Ps.size() < NArgs)
      Ps.resize(NArgs);
    for (uint32_t I = 0; I != NArgs; ++I) {
      ParamProfile &P = Ps[I];
      ++P.Observations;
      if (P.Overflowed)
        continue;
      auto [It, Inserted] = P.Values.try_emplace(Args[I].Bits, 0);
      ++It->second;
      if (Inserted && P.Values.size() > MaxDistinct) {
        P.Overflowed = true;
        P.Values.clear();
      }
    }
  };
}

const ParamProfile &ValueProfiler::param(uint32_t Func,
                                         uint32_t Param) const {
  static const ParamProfile Empty;
  if (Func >= Profiles.size() || Param >= Profiles[Func].size())
    return Empty;
  return Profiles[Func][Param];
}

uint64_t ValueProfiler::calls(uint32_t Func) const {
  return Func < Calls.size() ? Calls[Func] : 0;
}

std::string Suggestion::toString() const {
  std::string Vars;
  for (size_t I = 0; I != Names.size(); ++I)
    Vars += (I ? ", " : "") + Names[I];
  return formatString(
      "%s: make_static(%s)  [%llu calls, <=%zu value combinations, "
      "%.1f%% of cycles, score %.2f]",
      FuncName.c_str(), Vars.c_str(), (unsigned long long)CallCount,
      DistinctCombos, CycleShare * 100.0, Score);
}

std::vector<Suggestion> adviseAnnotations(const ir::Module &M,
                                          const vm::VM &Machine,
                                          const ValueProfiler &P,
                                          const AdvisorPolicy &Policy) {
  std::vector<Suggestion> Out;

  uint64_t TotalCycles = Machine.execCycles();
  if (TotalCycles == 0)
    return Out;

  for (size_t FI = 0; FI != M.numFunctions(); ++FI) {
    const ir::Function &F = M.function(static_cast<int>(FI));
    if (F.hasAnnotations())
      continue; // already specialized by the programmer
    uint64_t NCalls = P.calls(static_cast<uint32_t>(FI));
    if (NCalls < Policy.MinCalls)
      continue;
    double Share =
        static_cast<double>(
            Machine.functionStats(static_cast<uint32_t>(FI))
                .InclusiveCycles) /
        static_cast<double>(TotalCycles);
    if (Share < Policy.MinCycleShare)
      continue;

    Suggestion S;
    S.FuncIdx = static_cast<int>(FI);
    S.FuncName = F.Name;
    S.CallCount = NCalls;
    S.CycleShare = Share;
    for (uint32_t PI = 0; PI != F.NumParams; ++PI) {
      const ParamProfile &PP = P.param(static_cast<uint32_t>(FI), PI);
      if (PP.Overflowed || PP.Observations == 0)
        continue;
      if (PP.distinctValues() > Policy.MaxDistinct)
        continue;
      if (PP.dominance() < Policy.MinDominance)
        continue;
      S.Params.push_back(PI);
      S.Names.push_back(F.regName(PI));
      S.DistinctCombos =
          std::max(S.DistinctCombos, PP.distinctValues());
    }
    if (S.Params.empty())
      continue;
    // Cost-benefit: hot (cycle share), frequently re-entered
    // (amortization), and few versions to cache.
    S.Score = Share * static_cast<double>(NCalls) /
              static_cast<double>(S.DistinctCombos ? S.DistinctCombos : 1);
    Out.push_back(std::move(S));
  }

  std::sort(Out.begin(), Out.end(),
            [](const Suggestion &A, const Suggestion &B) {
              return A.Score > B.Score;
            });
  return Out;
}

} // namespace profile
} // namespace dyc
