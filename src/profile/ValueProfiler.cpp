//===- profile/ValueProfiler.cpp -----------------------------------------------------===//

#include "profile/ValueProfiler.h"

#include <algorithm>

namespace dyc {
namespace profile {

/// Returned by ValueProfiler::param for out-of-range queries. A namespace-
/// level constant with static storage duration: references handed out for
/// never-observed parameters stay valid for the life of the program, not
/// just past the profiler that produced them, so callers may cache them
/// without tracking which profiler (or whether any) they came from.
namespace {
const ParamProfile EmptyParamProfile{};
} // namespace

double ParamProfile::dominance() const {
  if (Observations == 0 || Values.empty())
    return 0.0;
  uint64_t Best = 0;
  for (const auto &[V, N] : Values)
    Best = std::max(Best, N);
  return static_cast<double>(Best) / static_cast<double>(Observations);
}

uint64_t ParamProfile::dominantValue() const {
  uint64_t BestVal = 0, BestCount = 0;
  for (const auto &[V, N] : Values)
    if (N > BestCount) { // strict: first (smallest) value wins ties
      BestVal = V;
      BestCount = N;
    }
  return BestVal;
}

void ValueProfiler::attach(vm::VM &M) {
  for (const vm::VM *Seen : Attached)
    if (Seen == &M)
      fatal("ValueProfiler::attach: already attached to this VM");
  Attached.push_back(&M);
  size_t N = M.program().numFunctions();
  if (Profiles.size() < N)
    Profiles.resize(N);
  Calls.ensure(N);
  // Chain, don't clobber: whatever observer was installed before keeps
  // running, then this profiler samples the same call.
  auto Prev = std::move(M.OnCall);
  M.OnCall = [this, Prev = std::move(Prev)](uint32_t Func, const Word *Args,
                                            uint32_t NArgs) {
    if (Prev)
      Prev(Func, Args, NArgs);
    recordCall(Func, Args, NArgs);
  };
}

std::vector<ParamProfile> &ValueProfiler::profilesFor(uint32_t Func,
                                                      uint32_t NParams) {
  if (Func >= Profiles.size())
    Profiles.resize(Func + 1);
  Calls.ensure(Func + 1);
  std::vector<ParamProfile> &Ps = Profiles[Func];
  if (Ps.size() < NParams)
    Ps.resize(NParams);
  return Ps;
}

void ValueProfiler::recordCall(uint32_t Func, const Word *Args,
                               uint32_t NArgs) {
  std::vector<ParamProfile> &Ps = profilesFor(Func, NArgs);
  Calls.bump(Func);
  for (uint32_t I = 0; I != NArgs; ++I) {
    ParamProfile &P = Ps[I];
    ++P.Observations;
    if (P.Overflowed)
      continue;
    auto [It, Inserted] = P.Values.try_emplace(Args[I].Bits, 0);
    ++It->second;
    if (Inserted && P.Values.size() > MaxDistinct) {
      P.Overflowed = true;
      P.Values.clear();
    }
  }
}

void ValueProfiler::noteGuardFailure(uint32_t Func, uint32_t Param,
                                     Word Seen) {
  std::vector<ParamProfile> &Ps = profilesFor(Func, Param + 1);
  ParamProfile &P = Ps[Param];
  ++P.GuardFailures;
  if (!P.Overflowed) {
    auto [It, Inserted] = P.Values.try_emplace(Seen.Bits, 0);
    ++It->second;
    if (Inserted && P.Values.size() > MaxDistinct) {
      P.Overflowed = true;
      P.Values.clear();
    }
  }
}

void ValueProfiler::blacklist(uint32_t Func, uint32_t Param) {
  profilesFor(Func, Param + 1)[Param].Blacklisted = true;
}

bool ValueProfiler::isBlacklisted(uint32_t Func, uint32_t Param) const {
  return param(Func, Param).Blacklisted;
}

void ValueProfiler::resetFunction(uint32_t Func) {
  if (Func >= Profiles.size())
    return;
  Calls.reset(Func);
  for (ParamProfile &P : Profiles[Func]) {
    bool KeepBlacklist = P.Blacklisted;
    P = ParamProfile();
    P.Blacklisted = KeepBlacklist;
  }
}

const ParamProfile &ValueProfiler::param(uint32_t Func,
                                         uint32_t Param) const {
  if (Func >= Profiles.size() || Param >= Profiles[Func].size())
    return EmptyParamProfile;
  return Profiles[Func][Param];
}

uint64_t ValueProfiler::calls(uint32_t Func) const {
  return Calls.get(Func);
}

std::string Suggestion::toString() const {
  std::string Vars;
  for (size_t I = 0; I != Names.size(); ++I)
    Vars += (I ? ", " : "") + Names[I];
  return formatString(
      "%s: make_static(%s)  [%llu calls, <=%zu value combinations, "
      "%.1f%% of cycles, score %.2f]",
      FuncName.c_str(), Vars.c_str(), (unsigned long long)CallCount,
      DistinctCombos, CycleShare * 100.0, Score);
}

std::vector<Suggestion> adviseAnnotations(const ir::Module &M,
                                          const vm::VM &Machine,
                                          const ValueProfiler &P,
                                          const AdvisorPolicy &Policy) {
  std::vector<Suggestion> Out;

  uint64_t TotalCycles = Machine.execCycles();
  if (TotalCycles == 0)
    return Out;

  for (size_t FI = 0; FI != M.numFunctions(); ++FI) {
    const ir::Function &F = M.function(static_cast<int>(FI));
    if (F.hasAnnotations())
      continue; // already specialized by the programmer
    uint64_t NCalls = P.calls(static_cast<uint32_t>(FI));
    if (NCalls < Policy.MinCalls)
      continue;
    double Share =
        static_cast<double>(
            Machine.functionStats(static_cast<uint32_t>(FI))
                .InclusiveCycles) /
        static_cast<double>(TotalCycles);
    if (Share < Policy.MinCycleShare)
      continue;

    Suggestion S;
    S.FuncIdx = static_cast<int>(FI);
    S.FuncName = F.Name;
    S.CallCount = NCalls;
    S.CycleShare = Share;
    for (uint32_t PI = 0; PI != F.NumParams; ++PI) {
      const ParamProfile &PP = P.param(static_cast<uint32_t>(FI), PI);
      if (PP.Overflowed || PP.Observations == 0)
        continue;
      if (PP.distinctValues() > Policy.MaxDistinct)
        continue;
      if (PP.dominance() < Policy.MinDominance)
        continue;
      S.Params.push_back(PI);
      S.Names.push_back(F.regName(PI));
      S.DistinctCombos =
          std::max(S.DistinctCombos, PP.distinctValues());
    }
    if (S.Params.empty())
      continue;
    // Cost-benefit: hot (cycle share), frequently re-entered
    // (amortization), and few versions to cache.
    S.Score = Share * static_cast<double>(NCalls) /
              static_cast<double>(S.DistinctCombos ? S.DistinctCombos : 1);
    Out.push_back(std::move(S));
  }

  std::sort(Out.begin(), Out.end(),
            [](const Suggestion &A, const Suggestion &B) {
              return A.Score > B.Score;
            });
  return Out;
}

} // namespace profile
} // namespace dyc
