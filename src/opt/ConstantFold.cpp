//===- opt/ConstantFold.cpp - Constant folding and propagation -------------------===//

#include "analysis/ReachingDefs.h"
#include "ir/ConstEval.h"
#include "opt/Passes.h"

namespace dyc {
namespace opt {

using namespace ir;

namespace {

/// Returns true (and the value) if the use of \p R at (\p B, \p Idx) is
/// provably the given constant: its unique reaching definition is a
/// ConstI/ConstF instruction.
bool knownConstant(const Function &F, const analysis::ReachingDefs &RD,
                   BlockId B, size_t Idx, Reg R, Word &Out) {
  int Site = RD.uniqueReachingDef(F, B, Idx, R);
  if (Site < 0)
    return false;
  const analysis::DefSite &D = RD.defSites()[static_cast<size_t>(Site)];
  if (D.InstrIdx == 0xffffffffu)
    return false; // function parameter, unknown at compile time
  const Instruction &Def = F.block(D.Block).Instrs[D.InstrIdx];
  if (Def.Op != Opcode::ConstI && Def.Op != Opcode::ConstF)
    return false;
  Out = Word{static_cast<uint64_t>(Def.Imm)};
  if (Def.Op == Opcode::ConstI)
    Out = Word::fromInt(Def.Imm);
  return true;
}

bool isUnaryOp(Opcode Op) {
  switch (Op) {
  case Opcode::Mov: case Opcode::Neg: case Opcode::FNeg:
  case Opcode::IToF: case Opcode::FToI:
    return true;
  default:
    return false;
  }
}

} // namespace

bool runConstantFold(Function &F, const Module &M) {
  analysis::CFG G(F);
  analysis::ReachingDefs RD(F, G);
  bool Changed = false;

  for (BlockId B = 0; B != F.numBlocks(); ++B) {
    BasicBlock &BB = F.block(B);
    for (size_t Idx = 0; Idx != BB.Instrs.size(); ++Idx) {
      Instruction &I = BB.Instrs[Idx];

      if (I.Op == Opcode::CondBr) {
        Word C;
        if (knownConstant(F, RD, B, Idx, I.Src1, C)) {
          BlockId Target = C.asInt() != 0 ? I.TrueSucc : I.FalseSucc;
          Instruction Br;
          Br.Op = Opcode::Br;
          Br.TrueSucc = Target;
          I = std::move(Br);
          Changed = true;
        }
        continue;
      }

      if (!isEvaluableOp(I.Op) || !I.definesReg())
        continue;

      Word A, Bv;
      if (!knownConstant(F, RD, B, Idx, I.Src1, A))
        continue;
      if (!isUnaryOp(I.Op) &&
          !knownConstant(F, RD, B, Idx, I.Src2, Bv))
        continue;

      Word Out;
      if (!evalPureOp(I.Op, A, Bv, Out))
        continue;

      Instruction C;
      C.Op = I.Ty == Type::F64 ? Opcode::ConstF : Opcode::ConstI;
      C.Ty = I.Ty;
      C.Dst = I.Dst;
      C.Imm = I.Ty == Type::F64 ? static_cast<int64_t>(Out.Bits)
                                : Out.asInt();
      I = std::move(C);
      Changed = true;
    }
  }
  return Changed;
}

} // namespace opt
} // namespace dyc
