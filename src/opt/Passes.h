//===- opt/Passes.h - Traditional static optimizations -------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "traditional intraprocedural optimizations" DyC applies before
/// binding-time analysis (paper section 2.1): constant folding and
/// propagation, copy propagation, dead-code elimination, and CFG
/// simplification. Each pass returns true if it changed the function; the
/// pass manager iterates them to a fixpoint.
///
/// The passes are annotation-aware: facts are never propagated in a way
/// that would bypass a `make_static` promotion of a source variable, since
/// that would change which values the BTA can specialize on.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_OPT_PASSES_H
#define DYC_OPT_PASSES_H

#include "ir/Module.h"

namespace dyc {
namespace opt {

/// Folds instructions whose operands are all known constants; rewrites
/// conditional branches on constants into unconditional ones.
bool runConstantFold(ir::Function &F, const ir::Module &M);

/// Replaces uses of a copy's destination with its source (block-local
/// table, plus the global single-definition case).
bool runCopyPropagation(ir::Function &F, const ir::Module &M);

/// Deletes side-effect-free instructions whose results are dead.
bool runDeadCodeElim(ir::Function &F, const ir::Module &M);

/// Coalesces `t = op ...; v = mov t` into `v = op ...` when t has no other
/// use (classic copy coalescing of lowering temporaries).
bool runCoalesceMoves(ir::Function &F, const ir::Module &M);

/// Threads trivial jumps, folds condbr with identical targets, and stubs
/// out unreachable blocks.
bool runSimplifyCFG(ir::Function &F, const ir::Module &M);

/// Runs all passes to a fixpoint (bounded rounds) on every function in
/// \p M. Returns the number of pass applications that reported a change.
unsigned runStaticOptimizations(ir::Module &M);

/// Same for a single function.
unsigned runStaticOptimizations(ir::Function &F, const ir::Module &M);

} // namespace opt
} // namespace dyc

#endif // DYC_OPT_PASSES_H
