//===- opt/SimplifyCFG.cpp -------------------------------------------------------===//

#include "analysis/CFG.h"
#include "opt/Passes.h"

namespace dyc {
namespace opt {

using namespace ir;

bool runSimplifyCFG(Function &F, const Module &M) {
  bool Changed = false;

  // Fold condbr with identical targets.
  for (BasicBlock &BB : F.Blocks) {
    if (BB.Instrs.empty())
      continue;
    Instruction &T = BB.Instrs.back();
    if (T.Op == Opcode::CondBr && T.TrueSucc == T.FalseSucc) {
      Instruction Br;
      Br.Op = Opcode::Br;
      Br.TrueSucc = T.TrueSucc;
      T = std::move(Br);
      Changed = true;
    }
  }

  // Jump threading: resolve chains of blocks that contain only `br X`.
  size_t N = F.numBlocks();
  auto Resolve = [&](BlockId B) {
    BlockId Cur = B;
    // Bounded walk guards against (unreachable) self-loop stubs.
    for (size_t Hops = 0; Hops != N; ++Hops) {
      const BasicBlock &BB = F.block(Cur);
      if (BB.Instrs.size() != 1 || BB.Instrs.front().Op != Opcode::Br)
        return Cur;
      BlockId Next = BB.Instrs.front().TrueSucc;
      if (Next == Cur)
        return Cur;
      Cur = Next;
    }
    return Cur;
  };
  for (BasicBlock &BB : F.Blocks) {
    if (BB.Instrs.empty())
      continue;
    Instruction &T = BB.Instrs.back();
    if (T.Op == Opcode::Br) {
      BlockId R = Resolve(T.TrueSucc);
      if (R != T.TrueSucc) {
        T.TrueSucc = R;
        Changed = true;
      }
    } else if (T.Op == Opcode::CondBr) {
      BlockId RT = Resolve(T.TrueSucc);
      BlockId RF = Resolve(T.FalseSucc);
      if (RT != T.TrueSucc || RF != T.FalseSucc) {
        T.TrueSucc = RT;
        T.FalseSucc = RF;
        Changed = true;
      }
      if (T.TrueSucc == T.FalseSucc) {
        Instruction Br;
        Br.Op = Opcode::Br;
        Br.TrueSucc = T.TrueSucc;
        T = std::move(Br);
      }
    }
  }

  // Stub out unreachable blocks (self-loop terminator keeps block ids
  // stable without retaining dead code).
  analysis::CFG G(F);
  for (BlockId B = 0; B != F.numBlocks(); ++B) {
    if (G.isReachable(B))
      continue;
    BasicBlock &BB = F.block(B);
    bool AlreadyStub = BB.Instrs.size() == 1 &&
                       BB.Instrs.front().Op == Opcode::Br &&
                       BB.Instrs.front().TrueSucc == B;
    if (AlreadyStub)
      continue;
    Instruction Self;
    Self.Op = Opcode::Br;
    Self.TrueSucc = B;
    BB.Instrs.clear();
    BB.Instrs.push_back(std::move(Self));
    Changed = true;
  }

  return Changed;
}

} // namespace opt
} // namespace dyc
