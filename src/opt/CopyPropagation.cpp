//===- opt/CopyPropagation.cpp ------------------------------------------------------===//

#include "analysis/ReachingDefs.h"
#include "opt/Passes.h"

#include <map>
#include <set>

namespace dyc {
namespace opt {

using namespace ir;

namespace {

/// Collects every register named by a MakeStatic/MakeDynamic annotation.
/// Uses of these variables are never rewritten: replacing a use of an
/// annotated variable with its copy source would bypass the promotion the
/// programmer asked for.
std::set<Reg> annotatedRegs(const Function &F) {
  std::set<Reg> Out;
  for (const BasicBlock &B : F.Blocks)
    for (const Instruction &I : B.Instrs)
      if (I.isAnnotation())
        for (Reg R : I.AnnotVars)
          Out.insert(R);
  return Out;
}

/// Rewrites \p I's register uses via \p Rewrite (which returns the
/// replacement for a reg, possibly itself). Annotation variable lists are
/// left untouched.
template <typename Fn> bool rewriteUses(Instruction &I, Fn Rewrite) {
  bool Changed = false;
  auto Do = [&](Reg &R) {
    if (R == NoReg)
      return;
    Reg N = Rewrite(R);
    if (N != R) {
      R = N;
      Changed = true;
    }
  };
  switch (I.Op) {
  case Opcode::ConstI:
  case Opcode::ConstF:
  case Opcode::Br:
  case Opcode::MakeStatic:
  case Opcode::MakeDynamic:
    return false;
  case Opcode::Call:
  case Opcode::CallExt:
    for (Reg &A : I.Args)
      Do(A);
    return Changed;
  case Opcode::Store:
    Do(I.Src1);
    Do(I.Src2);
    return Changed;
  case Opcode::Ret:
  case Opcode::CondBr:
    Do(I.Src1);
    return Changed;
  default:
    Do(I.Src1);
    Do(I.Src2);
    return Changed;
  }
}

} // namespace

bool runCopyPropagation(Function &F, const Module &M) {
  bool Changed = false;
  std::set<Reg> Annotated = annotatedRegs(F);

  // --- Block-local copy propagation -----------------------------------------
  for (BasicBlock &BB : F.Blocks) {
    std::map<Reg, Reg> Copies; // dst -> src, valid at current point
    auto Chase = [&](Reg R) {
      if (Annotated.count(R))
        return R;
      auto It = Copies.find(R);
      return It == Copies.end() ? R : It->second;
    };
    for (Instruction &I : BB.Instrs) {
      Changed |= rewriteUses(I, Chase);
      if (I.definesReg()) {
        // Kill facts involving the redefined register.
        Copies.erase(I.Dst);
        for (auto It = Copies.begin(); It != Copies.end();)
          It = It->second == I.Dst ? Copies.erase(It) : std::next(It);
        if (I.Op == Opcode::Mov && I.Src1 != I.Dst &&
            !Annotated.count(I.Dst))
          Copies[I.Dst] = Chase(I.Src1);
      }
      if (I.Op == Opcode::MakeStatic)
        for (Reg R : I.AnnotVars)
          Copies.erase(R);
    }
  }

  // --- Global single-definition copy propagation ----------------------------
  analysis::CFG G(F);
  analysis::ReachingDefs RD(F, G);

  // Count def sites per register (parameter pseudo-defs included).
  std::vector<unsigned> DefCount(F.numRegs(), 0);
  for (const analysis::DefSite &D : RD.defSites())
    ++DefCount[D.Defined];

  for (BlockId B = 0; B != F.numBlocks(); ++B) {
    BasicBlock &BB = F.block(B);
    for (size_t Idx = 0; Idx != BB.Instrs.size(); ++Idx) {
      auto Rewrite = [&](Reg R) {
        if (Annotated.count(R))
          return R;
        int Site = RD.uniqueReachingDef(F, B, Idx, R);
        if (Site < 0)
          return R;
        const analysis::DefSite &D =
            RD.defSites()[static_cast<size_t>(Site)];
        if (D.InstrIdx == 0xffffffffu)
          return R;
        const Instruction &Def = F.block(D.Block).Instrs[D.InstrIdx];
        if (Def.Op != Opcode::Mov)
          return R;
        Reg S = Def.Src1;
        if (S == R || DefCount[S] != 1 || Annotated.count(S))
          return R;
        return S;
      };
      Changed |= rewriteUses(BB.Instrs[Idx], Rewrite);
    }
  }
  return Changed;
}

} // namespace opt
} // namespace dyc
