//===- opt/CoalesceMoves.cpp - Copy coalescing ----------------------------------===//
//
// Eliminates the `t = op ...; v = mov t` pattern the AST lowering produces
// for assignments, by renaming the defining instruction's destination to
// v. Classic copy coalescing; it benefits the static code and, more
// importantly, keeps the run-time specializer's accumulator patterns
// (`sum = sum + x`) as single instructions so zero/copy propagation can
// elide them entirely.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"
#include "opt/Passes.h"

namespace dyc {
namespace opt {

using namespace ir;

bool runCoalesceMoves(Function &F, const Module &M) {
  // Count total uses of each register across the function (annotation
  // variable lists count as uses).
  std::vector<unsigned> UseCount(F.numRegs(), 0);
  std::vector<Reg> Uses;
  for (const BasicBlock &B : F.Blocks)
    for (const Instruction &I : B.Instrs) {
      Uses.clear();
      I.appendUses(Uses);
      for (Reg U : Uses)
        ++UseCount[U];
    }

  analysis::CFG G(F);
  analysis::Liveness LV(F, G);

  bool Changed = false;
  for (BlockId B = 0; B != F.numBlocks(); ++B) {
    BasicBlock &BB = F.block(B);
    for (size_t MovIdx = 0; MovIdx != BB.Instrs.size(); ++MovIdx) {
      Instruction &Mv = BB.Instrs[MovIdx];
      if (Mv.Op != Opcode::Mov || Mv.Dst == Mv.Src1)
        continue;
      Reg T = Mv.Src1;
      Reg V = Mv.Dst;
      if (UseCount[T] != 1)
        continue; // the mov must be t's only use
      if (LV.liveOut(B).test(T))
        continue;
      // Find t's definition earlier in this block.
      size_t DefIdx = SIZE_MAX;
      for (size_t I = MovIdx; I-- > 0;) {
        if (BB.Instrs[I].definesReg() && BB.Instrs[I].Dst == T) {
          DefIdx = I;
          break;
        }
      }
      if (DefIdx == SIZE_MAX)
        continue;
      // v must be untouched strictly between the def and the mov.
      bool Blocked = false;
      for (size_t I = DefIdx + 1; I != MovIdx && !Blocked; ++I) {
        const Instruction &Mid = BB.Instrs[I];
        if (Mid.definesReg() && Mid.Dst == V)
          Blocked = true;
        Uses.clear();
        Mid.appendUses(Uses);
        for (Reg U : Uses)
          if (U == V)
            Blocked = true;
      }
      if (Blocked)
        continue;
      // Types must agree (they do, by the mov's verification).
      if (F.regType(T) != F.regType(V))
        continue;
      BB.Instrs[DefIdx].Dst = V;
      // Replace the mov with a self-move; DCE removes it.
      Mv.Src1 = V;
      Changed = true;
    }
  }
  return Changed;
}

} // namespace opt
} // namespace dyc
