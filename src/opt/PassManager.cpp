//===- opt/PassManager.cpp --------------------------------------------------------===//

#include "opt/Passes.h"

namespace dyc {
namespace opt {

unsigned runStaticOptimizations(ir::Function &F, const ir::Module &M) {
  unsigned Applications = 0;
  // Bounded fixpoint; each round runs the classic pipeline once.
  for (unsigned Round = 0; Round != 8; ++Round) {
    bool Changed = false;
    if (runConstantFold(F, M)) {
      Changed = true;
      ++Applications;
    }
    if (runCopyPropagation(F, M)) {
      Changed = true;
      ++Applications;
    }
    if (runCoalesceMoves(F, M)) {
      Changed = true;
      ++Applications;
    }
    if (runDeadCodeElim(F, M)) {
      Changed = true;
      ++Applications;
    }
    if (runSimplifyCFG(F, M)) {
      Changed = true;
      ++Applications;
    }
    if (!Changed)
      break;
  }
  return Applications;
}

unsigned runStaticOptimizations(ir::Module &M) {
  unsigned Applications = 0;
  for (size_t I = 0; I != M.numFunctions(); ++I)
    Applications +=
        runStaticOptimizations(M.function(static_cast<int>(I)), M);
  return Applications;
}

} // namespace opt
} // namespace dyc
