//===- opt/DeadCodeElim.cpp -----------------------------------------------------===//

#include "analysis/Liveness.h"
#include "opt/Passes.h"

namespace dyc {
namespace opt {

using namespace ir;

namespace {

/// True if deleting \p I (when its result is dead) is safe.
bool removableWhenDead(const Instruction &I, const Module &M) {
  if (!I.definesReg())
    return false;
  switch (I.Op) {
  case Opcode::Store:
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Ret:
  case Opcode::MakeStatic:
  case Opcode::MakeDynamic:
    return false;
  case Opcode::Call:
    return M.function(I.Callee).Pure;
  case Opcode::CallExt:
    return M.external(I.Callee).Pure;
  default:
    return true;
  }
}

} // namespace

bool runDeadCodeElim(Function &F, const Module &M) {
  analysis::CFG G(F);
  analysis::Liveness LV(F, G);
  bool Changed = false;
  std::vector<Reg> Uses;

  for (BlockId B = 0; B != F.numBlocks(); ++B) {
    BasicBlock &BB = F.block(B);
    BitVector Live = LV.liveOut(B);
    // Backward walk; mark-and-sweep within the block.
    std::vector<bool> Keep(BB.Instrs.size(), true);
    for (size_t Idx = BB.Instrs.size(); Idx-- > 0;) {
      Instruction &I = BB.Instrs[Idx];
      bool Dead = removableWhenDead(I, M) && !Live.test(I.Dst);
      // Self-moves are dead regardless of liveness.
      if (I.Op == Opcode::Mov && I.Src1 == I.Dst)
        Dead = true;
      if (Dead) {
        Keep[Idx] = false;
        Changed = true;
        continue; // its uses do not become live
      }
      if (I.definesReg())
        Live.reset(I.Dst);
      Uses.clear();
      I.appendUses(Uses);
      for (Reg U : Uses)
        Live.set(U);
    }
    if (Changed) {
      std::vector<Instruction> Kept;
      Kept.reserve(BB.Instrs.size());
      for (size_t Idx = 0; Idx != BB.Instrs.size(); ++Idx)
        if (Keep[Idx])
          Kept.push_back(std::move(BB.Instrs[Idx]));
      BB.Instrs = std::move(Kept);
    }
  }
  return Changed;
}

} // namespace opt
} // namespace dyc
