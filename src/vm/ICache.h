//===- vm/ICache.h - L1 instruction-cache simulator ------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative L1 instruction cache with LRU replacement. The paper's
/// pnmconvol result hinges on instruction-cache footprint: without dynamic
/// dead-assignment elimination, the generated code exceeded the L1 I-cache
/// by a factor of 2.7 and ran *slower* than static code (section 4.4.4).
/// Default geometry follows the DEC Alpha 21164 L1 I-cache: 8KB
/// direct-mapped with 32-byte blocks.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_VM_ICACHE_H
#define DYC_VM_ICACHE_H

#include <cstdint>
#include <vector>

namespace dyc {
namespace vm {

/// Geometry of the simulated instruction cache.
struct ICacheConfig {
  uint32_t SizeBytes = 8 * 1024;
  uint32_t BlockBytes = 32;
  uint32_t Assoc = 1;
  bool Enabled = true;
};

/// LRU set-associative instruction cache.
class ICache {
public:
  explicit ICache(const ICacheConfig &Config = ICacheConfig());

  /// Simulates a fetch from \p Addr. Returns true on hit.
  bool access(uint64_t Addr);

  /// Simulates \p Count back-to-back fetches from the single cache line
  /// holding \p Addr, bit-identically to \p Count access(Addr) calls: the
  /// first fetch may miss; the rest are guaranteed hits (the line was just
  /// touched and nothing intervened), so they are folded into one counter
  /// update plus an LRU refresh. The predecoded engine uses this to charge
  /// a basic block's fetches per line segment instead of per instruction.
  /// Returns true if the first fetch hit.
  bool accessRun(uint64_t Addr, uint32_t Count);

  /// Invalidates every line (flushed after dynamic code generation; the
  /// coherence cost itself is part of the specializer's emit cost).
  void flush();

  /// Invalidates only the lines holding blocks of [Addr, Addr + Bytes).
  /// Other resident lines are untouched. Used by the multi-tenant server
  /// to model an adopted (deduplicated) chain as freshly compiled code:
  /// the adopting client must fetch it cold, exactly as it would a chain
  /// a dedicated server had just emitted at a never-used address.
  void invalidateRange(uint64_t Addr, uint64_t Bytes);

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  uint64_t accesses() const { return Hits + Misses; }
  const ICacheConfig &config() const { return Cfg; }

  void resetStats() { Hits = Misses = 0; }

private:
  /// A line is resident iff Valid and its Epoch matches the cache's
  /// current Epoch; flush() bumps the epoch instead of sweeping every
  /// line, so the specializer's per-chain coherence flush is O(1) host
  /// work. Pure representation change — hit/miss behavior is identical
  /// to clearing every Valid bit.
  struct Line {
    uint64_t Tag = 0;
    uint64_t LastUse = 0;
    uint64_t Epoch = 0;
    bool Valid = false;
  };

  bool resident(const Line &L) const {
    return L.Valid && L.Epoch == Epoch;
  }

  ICacheConfig Cfg;
  uint32_t NumSets;
  std::vector<Line> Lines; // NumSets * Assoc
  uint64_t Clock = 0;
  uint64_t Epoch = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

} // namespace vm
} // namespace dyc

#endif // DYC_VM_ICACHE_H
