//===- vm/VM.cpp - Bytecode interpreter ------------------------------------===//
//
// Two execution engines share this file:
//
//  * Legacy — the original fetch/decode/charge-per-instruction switch loop,
//    kept verbatim as stepOne() both as the reference semantics and as the
//    slow path of the fast engine.
//
//  * Predecoded — executes the DecodedCache translation of each code
//    object: cycles, fuel, and I-cache probes are charged once per
//    superblock (ICache::accessRun replays the per-instruction access
//    order exactly), and dispatch runs over pre-resolved handlers —
//    computed-goto when DYC_THREADED_DISPATCH is on, a dense switch
//    otherwise. Both engines produce bit-identical counters; the parity
//    test (tests/InterpParityTest.cpp) enforces this on every workload.
//
// Handler-safety rules for the predecoded engine:
//  - copy any DecodedInstr fields you need into locals before invoking a
//    hook, OnCall, or push/pop of Frames (nested runs can reallocate
//    Frames, and hooks can invalidate the current translation);
//  - after any hook returns, re-derive everything from Frames.back() via
//    `goto restart_frame` — never touch cached Fr/R/IP pointers;
//  - set Fr.PC before any machineError so the diagnostic carries the
//    faulting pc (the fast path leaves Fr.PC stale on purpose).
//
//===----------------------------------------------------------------------===//

#include "vm/VM.h"

#include <cstdlib>
#include <cstring>

namespace dyc {
namespace vm {

RuntimeHook::~RuntimeHook() = default;

void RuntimeHook::onDynamicCodeExit(VM &, const CodeObject *) {}

uint32_t RuntimeHook::onGuardedCall(VM &, uint32_t Callee, const Word *,
                                    uint32_t) {
  return Callee;
}

RuntimeHook::Target RuntimeHook::onOsrPoll(VM &, uint64_t,
                                           std::vector<Word> &) {
  return Target();
}

void RuntimeHook::onOsrDrop(VM &, uint64_t) {}

void VM::armOsr(uint64_t Base, uint32_t HeadPC, uint64_t Token) {
  assert(!Frames.empty() && "armOsr with no live frame");
  OsrWatch W;
  W.Base = Base;
  W.HeadPC = HeadPC;
  W.Token = Token;
  W.Depth = Frames.size() - 1;
  OsrWatches.push_back(W);
}

void VM::disarmOsr(uint64_t Token) {
  for (size_t I = 0; I != OsrWatches.size(); ++I)
    if (OsrWatches[I].Token == Token) {
      OsrWatches.erase(OsrWatches.begin() + static_cast<ptrdiff_t>(I));
      return;
    }
}

void VM::dropOsrWatches(size_t MinDepth) {
  for (size_t I = OsrWatches.size(); I-- != 0;)
    if (OsrWatches[I].Depth >= MinDepth) {
      uint64_t Token = OsrWatches[I].Token;
      OsrWatches.erase(OsrWatches.begin() + static_cast<ptrdiff_t>(I));
      if (Hook)
        Hook->onOsrDrop(*this, Token);
    }
}

bool VM::osrPoll() {
  Frame &Fr = Frames.back();
  size_t Depth = Frames.size() - 1;
  for (size_t I = 0; I != OsrWatches.size(); ++I) {
    const OsrWatch &W = OsrWatches[I];
    if (W.Depth != Depth || W.HeadPC != Fr.PC ||
        W.Base != Fr.CurCode->BaseAddr)
      continue;
    if (!Hook)
      return false;
    uint64_t Token = W.Token;
    // The hook must not re-enter the VM (contract on onOsrPoll), so Fr
    // stays valid across the call even though it may mutate Regs.
    RuntimeHook::Target T = Hook->onOsrPoll(*this, Token, Fr.Regs);
    if (!T.CO)
      return false;
    disarmOsr(Token);
    Fr.CurCode = T.CO;
    Fr.PC = T.PC;
    Fr.Interpret = T.Interpret;
    return true;
  }
  return false;
}

uint32_t Program::addFunction(CodeObject CO) {
  CO.BaseAddr = allocCodeAddr(CO.Code.size() * 4 + 64);
  uint32_t Idx = static_cast<uint32_t>(Funcs.size());
  FuncIndex.emplace(CO.Name, Idx);
  Funcs.push_back(std::move(CO));
  return Idx;
}

uint64_t Program::allocCodeAddr(uint64_t Bytes) {
  uint64_t Base = NextCodeAddr;
  // Keep code objects block-aligned so footprints are easy to reason about.
  NextCodeAddr += (Bytes + 63) & ~63ULL;
  return Base;
}

int Program::findFunction(const std::string &Name) const {
  auto It = FuncIndex.find(Name);
  return It == FuncIndex.end() ? -1 : static_cast<int>(It->second);
}

VM::VM(Program &P, const CostModel &CMIn, const ICacheConfig &ICIn)
    : Prog(P), CM(CMIn), IC(ICIn) {
  Mem.resize(1 << 20);
  FuncStats.resize(P.numFunctions());
  if (const char *E = std::getenv("DYC_VM_ENGINE")) {
    if (std::strcmp(E, "legacy") == 0)
      Engine = EngineKind::Legacy;
    else if (std::strcmp(E, "predecoded") == 0)
      Engine = EngineKind::Predecoded;
  }
}

const FunctionStats &VM::functionStats(uint32_t FuncIdx) const {
  assert(FuncIdx < FuncStats.size() && "function index out of range");
  return FuncStats[FuncIdx];
}

int64_t VM::allocMemory(int64_t Cells) {
  assert(Cells >= 0 && "negative allocation");
  int64_t Base = MemBrk;
  MemBrk += Cells;
  if (static_cast<uint64_t>(MemBrk) > Mem.size()) {
    size_t NewSize = Mem.size();
    while (static_cast<uint64_t>(MemBrk) > NewSize)
      NewSize *= 2;
    Mem.resize(NewSize);
  }
  return Base;
}

void VM::machineError(const std::string &Msg, const Frame &F) {
  fatal(formatString("machine error in '%s' at pc %u: %s",
                     F.CurCode ? F.CurCode->Name.c_str() : "<none>", F.PC,
                     Msg.c_str()));
}

void VM::memOutOfRange(int64_t Addr, const Frame &F) {
  machineError(formatString("memory access out of range: %lld",
                            (long long)Addr),
               F);
}

Word VM::run(uint32_t FuncIdx, const std::vector<Word> &Args) {
  if (FuncStats.size() < Prog.numFunctions()) [[unlikely]]
    FuncStats.resize(Prog.numFunctions());
  HasOnCall = static_cast<bool>(OnCall);
  size_t BaseDepth = Frames.size();
  // Safe point for wholesale translation-cache trimming: with no live
  // frames, nothing references a translation. SpecServer worker VMs churn
  // through many short-lived chains; this bounds their decode footprint.
  if (BaseDepth == 0 && Decoded.size() > 4096)
    Decoded.clear();
  if (Hook && callGuard(FuncIdx)) [[unlikely]] {
    FuncIdx = Hook->onGuardedCall(*this, FuncIdx, Args.data(),
                                  static_cast<uint32_t>(Args.size()));
    // The hook may have added functions (synthesized twins).
    if (FuncStats.size() < Prog.numFunctions()) [[unlikely]]
      FuncStats.resize(Prog.numFunctions());
  }
  Frame F;
  F.FuncCode = F.CurCode = &Prog.function(FuncIdx);
  F.FuncIdx = FuncIdx;
  F.Regs.assign(F.FuncCode->NumRegs, Word());
  assert(Args.size() <= F.Regs.size() && "too many arguments");
  for (size_t I = 0; I != Args.size(); ++I)
    F.Regs[I] = Args[I];
  F.StartCycles = ExecCycles;
  ++FuncStats[FuncIdx].Calls;
  if (HasOnCall)
    OnCall(FuncIdx, F.Regs.data(), static_cast<uint32_t>(Args.size()));
  Frames.push_back(std::move(F));

  if (Engine == EngineKind::Legacy)
    return runLegacy(BaseDepth);
  return runPredecoded(BaseDepth);
}

Word VM::runLegacy(size_t BaseDepth) {
  while (Frames.size() > BaseDepth)
    stepOne(BaseDepth);
  return LastResult;
}

void VM::stepOne(size_t BaseDepth) {
  Frame &Fr = Frames.back();
  const CodeObject &CO = *Fr.CurCode;
  if (Fr.PC >= CO.Code.size())
    machineError("fell off the end of the code object", Fr);
  if (++InstrsExecuted > MaxInstructions)
    machineError("instruction fuel exhausted (runaway loop?)", Fr);

  const Instr I = CO.Code[Fr.PC];
  if (!IC.access(CO.addrOf(Fr.PC)))
    ExecCycles += CM.ICacheMissPenalty;
  ExecCycles += CM.costOf(I, CO.IsDynamicCode);

  std::vector<Word> &R = Fr.Regs;
  uint32_t NextPC = Fr.PC + 1;

  switch (I.Opcode) {
  case Op::ConstI:
    R[I.A] = Word::fromInt(I.Imm);
    break;
  case Op::ConstF:
    R[I.A] = Word{static_cast<uint64_t>(I.Imm)};
    break;
  case Op::Mov:
  case Op::FMov:
    R[I.A] = R[I.B];
    break;

  case Op::Add: R[I.A] = Word::fromInt(R[I.B].asInt() + R[I.C].asInt()); break;
  case Op::Sub: R[I.A] = Word::fromInt(R[I.B].asInt() - R[I.C].asInt()); break;
  case Op::Mul: R[I.A] = Word::fromInt(R[I.B].asInt() * R[I.C].asInt()); break;
  case Op::Div:
    if (R[I.C].asInt() == 0)
      machineError("integer divide by zero", Fr);
    R[I.A] = Word::fromInt(R[I.B].asInt() / R[I.C].asInt());
    break;
  case Op::Rem:
    if (R[I.C].asInt() == 0)
      machineError("integer remainder by zero", Fr);
    R[I.A] = Word::fromInt(R[I.B].asInt() % R[I.C].asInt());
    break;
  case Op::And: R[I.A] = Word::fromInt(R[I.B].asInt() & R[I.C].asInt()); break;
  case Op::Or:  R[I.A] = Word::fromInt(R[I.B].asInt() | R[I.C].asInt()); break;
  case Op::Xor: R[I.A] = Word::fromInt(R[I.B].asInt() ^ R[I.C].asInt()); break;
  case Op::Shl:
    R[I.A] = Word::fromInt(R[I.B].asInt() << (R[I.C].asInt() & 63));
    break;
  case Op::Shr:
    R[I.A] = Word::fromInt(R[I.B].asInt() >> (R[I.C].asInt() & 63));
    break;
  case Op::Neg: R[I.A] = Word::fromInt(-R[I.B].asInt()); break;

  case Op::AddI: R[I.A] = Word::fromInt(R[I.B].asInt() + I.Imm); break;
  case Op::SubI: R[I.A] = Word::fromInt(R[I.B].asInt() - I.Imm); break;
  case Op::MulI: R[I.A] = Word::fromInt(R[I.B].asInt() * I.Imm); break;
  case Op::DivI:
    if (I.Imm == 0)
      machineError("integer divide by zero immediate", Fr);
    R[I.A] = Word::fromInt(R[I.B].asInt() / I.Imm);
    break;
  case Op::RemI:
    if (I.Imm == 0)
      machineError("integer remainder by zero immediate", Fr);
    R[I.A] = Word::fromInt(R[I.B].asInt() % I.Imm);
    break;
  case Op::AndI: R[I.A] = Word::fromInt(R[I.B].asInt() & I.Imm); break;
  case Op::OrI:  R[I.A] = Word::fromInt(R[I.B].asInt() | I.Imm); break;
  case Op::XorI: R[I.A] = Word::fromInt(R[I.B].asInt() ^ I.Imm); break;
  case Op::ShlI: R[I.A] = Word::fromInt(R[I.B].asInt() << (I.Imm & 63)); break;
  case Op::ShrI: R[I.A] = Word::fromInt(R[I.B].asInt() >> (I.Imm & 63)); break;

  case Op::FAdd: R[I.A] = Word::fromFloat(R[I.B].asFloat() + R[I.C].asFloat()); break;
  case Op::FSub: R[I.A] = Word::fromFloat(R[I.B].asFloat() - R[I.C].asFloat()); break;
  case Op::FMul: R[I.A] = Word::fromFloat(R[I.B].asFloat() * R[I.C].asFloat()); break;
  case Op::FDiv: R[I.A] = Word::fromFloat(R[I.B].asFloat() / R[I.C].asFloat()); break;
  case Op::FNeg: R[I.A] = Word::fromFloat(-R[I.B].asFloat()); break;

  case Op::FAddI:
    R[I.A] = Word::fromFloat(R[I.B].asFloat() +
                             Word{(uint64_t)I.Imm}.asFloat());
    break;
  case Op::FSubI:
    R[I.A] = Word::fromFloat(R[I.B].asFloat() -
                             Word{(uint64_t)I.Imm}.asFloat());
    break;
  case Op::FMulI:
    R[I.A] = Word::fromFloat(R[I.B].asFloat() *
                             Word{(uint64_t)I.Imm}.asFloat());
    break;
  case Op::FDivI:
    R[I.A] = Word::fromFloat(R[I.B].asFloat() /
                             Word{(uint64_t)I.Imm}.asFloat());
    break;

  case Op::CmpEq: R[I.A] = Word::fromInt(R[I.B].asInt() == R[I.C].asInt()); break;
  case Op::CmpNe: R[I.A] = Word::fromInt(R[I.B].asInt() != R[I.C].asInt()); break;
  case Op::CmpLt: R[I.A] = Word::fromInt(R[I.B].asInt() <  R[I.C].asInt()); break;
  case Op::CmpLe: R[I.A] = Word::fromInt(R[I.B].asInt() <= R[I.C].asInt()); break;
  case Op::CmpGt: R[I.A] = Word::fromInt(R[I.B].asInt() >  R[I.C].asInt()); break;
  case Op::CmpGe: R[I.A] = Word::fromInt(R[I.B].asInt() >= R[I.C].asInt()); break;

  case Op::CmpEqI: R[I.A] = Word::fromInt(R[I.B].asInt() == I.Imm); break;
  case Op::CmpNeI: R[I.A] = Word::fromInt(R[I.B].asInt() != I.Imm); break;
  case Op::CmpLtI: R[I.A] = Word::fromInt(R[I.B].asInt() <  I.Imm); break;
  case Op::CmpLeI: R[I.A] = Word::fromInt(R[I.B].asInt() <= I.Imm); break;
  case Op::CmpGtI: R[I.A] = Word::fromInt(R[I.B].asInt() >  I.Imm); break;
  case Op::CmpGeI: R[I.A] = Word::fromInt(R[I.B].asInt() >= I.Imm); break;

  case Op::FCmpEq: R[I.A] = Word::fromInt(R[I.B].asFloat() == R[I.C].asFloat()); break;
  case Op::FCmpNe: R[I.A] = Word::fromInt(R[I.B].asFloat() != R[I.C].asFloat()); break;
  case Op::FCmpLt: R[I.A] = Word::fromInt(R[I.B].asFloat() <  R[I.C].asFloat()); break;
  case Op::FCmpLe: R[I.A] = Word::fromInt(R[I.B].asFloat() <= R[I.C].asFloat()); break;
  case Op::FCmpGt: R[I.A] = Word::fromInt(R[I.B].asFloat() >  R[I.C].asFloat()); break;
  case Op::FCmpGe: R[I.A] = Word::fromInt(R[I.B].asFloat() >= R[I.C].asFloat()); break;

  case Op::IToF:
    R[I.A] = Word::fromFloat(static_cast<double>(R[I.B].asInt()));
    break;
  case Op::FToI:
    R[I.A] = Word::fromInt(static_cast<int64_t>(R[I.B].asFloat()));
    break;

  case Op::Load:
    R[I.A] = mem(R[I.B].asInt() + I.Imm, Fr);
    break;
  case Op::LoadAbs:
    R[I.A] = mem(I.Imm, Fr);
    break;
  case Op::Store:
    mem(R[I.B].asInt() + I.Imm, Fr) = R[I.A];
    break;
  case Op::StoreAbs:
    mem(I.Imm, Fr) = R[I.A];
    break;

  case Op::Call: {
    if (Frames.size() > 4096)
      machineError("call stack overflow", Fr);
    uint32_t Callee = static_cast<uint32_t>(I.Imm);
    if (Callee >= Prog.numFunctions())
      machineError("call to nonexistent function", Fr);
    Fr.PC = NextPC;
    // The caller's register *buffer* is stable even if the hook below
    // re-enters the VM and Frames reallocates (the vector object moves,
    // its heap storage does not) — so the argument copy reads through
    // ArgPtr, and Fr/R are never touched past this point.
    const Word *ArgPtr = R.data() + I.B;
    if (Hook && callGuard(Callee)) [[unlikely]] {
      Callee = Hook->onGuardedCall(*this, Callee, ArgPtr, I.C);
      if (FuncStats.size() < Prog.numFunctions()) [[unlikely]]
        FuncStats.resize(Prog.numFunctions());
    }
    Frame NF;
    NF.FuncCode = NF.CurCode = &Prog.function(Callee);
    NF.FuncIdx = Callee;
    NF.Regs.assign(NF.FuncCode->NumRegs, Word());
    for (uint32_t K = 0; K != I.C; ++K)
      NF.Regs[K] = ArgPtr[K];
    NF.RetReg = I.A;
    NF.StartCycles = ExecCycles;
    ++FuncStats[Callee].Calls;
    if (HasOnCall)
      OnCall(Callee, NF.Regs.data(), I.C);
    Frames.push_back(std::move(NF));
    return;
  }

  case Op::CallExt: {
    const ExternalFunction &E =
        Prog.Externals.get(static_cast<unsigned>(I.Imm));
    assert(I.C == E.NumArgs && "external call arity mismatch");
    Word ArgBuf[8];
    assert(I.C <= 8 && "too many external arguments");
    for (uint32_t K = 0; K != I.C; ++K)
      ArgBuf[K] = R[I.B + K];
    ExecCycles += E.CostCycles;
    Word Res = E.Fn(ArgBuf);
    if (I.A != NoReg)
      R[I.A] = Res;
    break;
  }

  case Op::Br:
    NextPC = I.B;
    break;
  case Op::CondBr:
    NextPC = R[I.A].asInt() != 0 ? I.B : I.C;
    break;

  case Op::Ret: {
    Word Res = I.A == NoReg ? Word() : R[I.A];
    FuncStats[Fr.FuncIdx].InclusiveCycles += ExecCycles - Fr.StartCycles;
    uint32_t RetReg = Fr.RetReg;
    if (Hook && Fr.CurCode->IsDynamicCode)
      Hook->onDynamicCodeExit(*this, Fr.CurCode);
    Frames.pop_back();
    if (!OsrWatches.empty()) [[unlikely]]
      dropOsrWatches(Frames.size());
    if (Frames.size() == BaseDepth) {
      LastResult = Res;
      return;
    }
    if (RetReg != NoReg)
      Frames.back().Regs[RetReg] = Res;
    return;
  }

  case Op::EnterRegion:
  case Op::Dispatch: {
    if (!Hook)
      machineError("region trap with no run-time attached", Fr);
    if (Fr.CurCode->IsDynamicCode)
      Hook->onDynamicCodeExit(*this, Fr.CurCode);
    // A re-dispatch supersedes any OSR watch armed for this frame.
    if (!OsrWatches.empty()) [[unlikely]]
      dropOsrWatches(Frames.size() - 1);
    RuntimeHook::Target T = Hook->dispatch(*this, I.Imm, Fr.Regs);
    if (!T.CO)
      machineError("run-time returned no target", Fr);
    // The hook may have re-entered the VM (static calls during
    // specialization); re-establish the frame reference.
    Frame &Fr2 = Frames.back();
    Fr2.CurCode = T.CO;
    Fr2.PC = T.PC;
    Fr2.Interpret = T.Interpret;
    return;
  }

  case Op::ExitRegion: {
    if (Hook && Fr.CurCode->IsDynamicCode)
      Hook->onDynamicCodeExit(*this, Fr.CurCode);
    if (!OsrWatches.empty()) [[unlikely]]
      dropOsrWatches(Frames.size() - 1);
    Fr.CurCode = Fr.FuncCode;
    Fr.PC = I.B;
    Fr.Interpret = false;
    return;
  }

  case Op::Halt:
    machineError("halt executed", Fr);
  }

  Fr.PC = NextPC;
  // OSR safe point: arrival at a pc via a taken branch. Gating on branch
  // opcodes keeps the legacy engine's poll sites identical to the
  // predecoded engine's block boundaries (every block transition there is
  // reached through Br/CondBr), so OSR decisions are engine-invariant.
  if ((I.Opcode == Op::Br || I.Opcode == Op::CondBr) &&
      !OsrWatches.empty()) [[unlikely]]
    osrPoll();
}

//===----------------------------------------------------------------------===//
// The predecoded superblock engine.
//===----------------------------------------------------------------------===//

#ifndef DYC_THREADED_DISPATCH
#define DYC_THREADED_DISPATCH 0
#endif
#if DYC_THREADED_DISPATCH && (defined(__GNUC__) || defined(__clang__))
#define DYC_USE_CGOTO 1
#else
#define DYC_USE_CGOTO 0
#endif

#if DYC_USE_CGOTO
#define CASE(N) L_##N:
#define DISPATCH() goto *HTable[IP->H]
#else
#define CASE(N) case DOp::N:
#define DISPATCH() goto dispatch_top
#endif

// Record the faulting pc before any machineError / mem() fault path; the
// fast path leaves Fr.PC stale between block boundaries on purpose.
#define SETPC() (Fr.PC = static_cast<uint32_t>(IP - Instrs))

// Advance one (or, for superinstructions, two) decoded slots. Falling off
// the block's end re-enters the block loop at the following pc — either the
// next block's leader or the end-of-code bounds check.
#define NEXT()                                                                 \
  do {                                                                         \
    if (++IP == BlockEnd) {                                                    \
      PC = static_cast<uint32_t>(IP - Instrs);                                 \
      goto block_done;                                                         \
    }                                                                          \
    DISPATCH();                                                                \
  } while (0)
#define NEXT2()                                                                \
  do {                                                                         \
    IP += 2;                                                                   \
    if (IP == BlockEnd) {                                                      \
      PC = static_cast<uint32_t>(IP - Instrs);                                 \
      goto block_done;                                                         \
    }                                                                          \
    DISPATCH();                                                                \
  } while (0)
#define BRANCH(T)                                                              \
  do {                                                                         \
    PC = (T);                                                                  \
    goto block_done;                                                           \
  } while (0)

const char *VM::dispatchMode() {
#if DYC_USE_CGOTO
  return "threaded";
#else
  return "switch";
#endif
}

Word VM::runPredecoded(size_t BaseDepth) {
#if DYC_USE_CGOTO
  static const void *const HTable[] = {
      &&L_ConstI,  &&L_ConstF,  &&L_Mov,     &&L_FMov,    &&L_Add,
      &&L_Sub,     &&L_Mul,     &&L_Div,     &&L_Rem,     &&L_And,
      &&L_Or,      &&L_Xor,     &&L_Shl,     &&L_Shr,     &&L_Neg,
      &&L_AddI,    &&L_SubI,    &&L_MulI,    &&L_DivI,    &&L_RemI,
      &&L_AndI,    &&L_OrI,     &&L_XorI,    &&L_ShlI,    &&L_ShrI,
      &&L_FAdd,    &&L_FSub,    &&L_FMul,    &&L_FDiv,    &&L_FNeg,
      &&L_FAddI,   &&L_FSubI,   &&L_FMulI,   &&L_FDivI,   &&L_CmpEq,
      &&L_CmpNe,   &&L_CmpLt,   &&L_CmpLe,   &&L_CmpGt,   &&L_CmpGe,
      &&L_CmpEqI,  &&L_CmpNeI,  &&L_CmpLtI,  &&L_CmpLeI,  &&L_CmpGtI,
      &&L_CmpGeI,  &&L_FCmpEq,  &&L_FCmpNe,  &&L_FCmpLt,  &&L_FCmpLe,
      &&L_FCmpGt,  &&L_FCmpGe,  &&L_IToF,    &&L_FToI,    &&L_Load,
      &&L_LoadAbs, &&L_Store,   &&L_StoreAbs, &&L_Call,   &&L_CallExt,
      &&L_Br,      &&L_CondBr,  &&L_Ret,     &&L_EnterRegion,
      &&L_Dispatch, &&L_ExitRegion, &&L_Halt,
      &&L_ConstIConstI, &&L_ConstIAdd, &&L_MovBr, &&L_CmpICondBr,
      &&L_CmpCondBr, &&L_ConstIDispatch};
  static_assert(sizeof(HTable) / sizeof(HTable[0]) ==
                    static_cast<size_t>(DOp::NumHandlers),
                "handler table out of sync with DOp");
#endif

restart_frame:
  while (Frames.size() > BaseDepth) {
    Frame &Fr = Frames.back();
    if (Fr.Interpret) [[unlikely]] {
      // Cold tier: single-step this frame through the switch loop without
      // building a translation. stepOne handles traps, calls, and pops
      // itself; callees it pushes run predecoded (Interpret is per-frame).
      stepOne(BaseDepth);
      continue;
    }
    const CodeObject *CO = Fr.CurCode;
    const DecodedCode *DC = Decoded.get(*CO, CM, IC.config());
    const DecodedInstr *Instrs = DC->Instrs.data();
    Word *R = Fr.Regs.data();
    uint32_t PC = Fr.PC;

    for (;;) {
      if (PC >= DC->CodeSize) [[unlikely]] {
        Fr.PC = PC;
        machineError("fell off the end of the code object", Fr);
      }
      int32_t BI = DC->BlockOf[PC];
      if (BI < 0) [[unlikely]] {
        // Mid-block entry (a Dispatch target or ExitRegion resume offset
        // decode didn't predict): promote this pc to a leader, or
        // single-step past it once the promotion budget is gone.
        const DecodedCode *ND = Decoded.promoteLeader(*CO, PC, CM, IC.config());
        if (!ND) {
          Fr.PC = PC;
          stepOne(BaseDepth);
          goto restart_frame;
        }
        DC = ND;
        Instrs = DC->Instrs.data();
        BI = DC->BlockOf[PC];
      }
      {
        const DecodedBlock &B = DC->Blocks[BI];
        if (InstrsExecuted + B.Count > MaxInstructions) [[unlikely]] {
          // Fuel will run out inside this block; single-step so the error
          // fires at the exact instruction and counter values the legacy
          // engine would report.
          Fr.PC = PC;
          stepOne(BaseDepth);
          goto restart_frame;
        }
        InstrsExecuted += B.Count;
        for (uint32_t S = B.SegBegin; S != B.SegEnd; ++S) {
          const DecodedLineSeg &Seg = DC->Segs[S];
          if (!IC.accessRun(Seg.Addr, Seg.Count))
            ExecCycles += CM.ICacheMissPenalty;
        }
        ExecCycles += B.CostSum;

        const DecodedInstr *IP = Instrs + B.First;
        const DecodedInstr *const BlockEnd = IP + B.Count;

#if DYC_USE_CGOTO
        DISPATCH();
#else
      dispatch_top:
        switch (static_cast<DOp>(IP->H)) {
#endif

        CASE(ConstI) {
          R[IP->A] = Word::fromInt(IP->Imm);
          NEXT();
        }
        CASE(ConstF) {
          R[IP->A] = Word{static_cast<uint64_t>(IP->Imm)};
          NEXT();
        }
        CASE(Mov)
        CASE(FMov) {
          R[IP->A] = R[IP->B];
          NEXT();
        }

        CASE(Add) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() + R[IP->C].asInt());
          NEXT();
        }
        CASE(Sub) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() - R[IP->C].asInt());
          NEXT();
        }
        CASE(Mul) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() * R[IP->C].asInt());
          NEXT();
        }
        CASE(Div) {
          if (R[IP->C].asInt() == 0) {
            SETPC();
            machineError("integer divide by zero", Fr);
          }
          R[IP->A] = Word::fromInt(R[IP->B].asInt() / R[IP->C].asInt());
          NEXT();
        }
        CASE(Rem) {
          if (R[IP->C].asInt() == 0) {
            SETPC();
            machineError("integer remainder by zero", Fr);
          }
          R[IP->A] = Word::fromInt(R[IP->B].asInt() % R[IP->C].asInt());
          NEXT();
        }
        CASE(And) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() & R[IP->C].asInt());
          NEXT();
        }
        CASE(Or) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() | R[IP->C].asInt());
          NEXT();
        }
        CASE(Xor) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() ^ R[IP->C].asInt());
          NEXT();
        }
        CASE(Shl) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() << (R[IP->C].asInt() & 63));
          NEXT();
        }
        CASE(Shr) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() >> (R[IP->C].asInt() & 63));
          NEXT();
        }
        CASE(Neg) {
          R[IP->A] = Word::fromInt(-R[IP->B].asInt());
          NEXT();
        }

        CASE(AddI) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() + IP->Imm);
          NEXT();
        }
        CASE(SubI) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() - IP->Imm);
          NEXT();
        }
        CASE(MulI) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() * IP->Imm);
          NEXT();
        }
        CASE(DivI) {
          if (IP->Imm == 0) {
            SETPC();
            machineError("integer divide by zero immediate", Fr);
          }
          R[IP->A] = Word::fromInt(R[IP->B].asInt() / IP->Imm);
          NEXT();
        }
        CASE(RemI) {
          if (IP->Imm == 0) {
            SETPC();
            machineError("integer remainder by zero immediate", Fr);
          }
          R[IP->A] = Word::fromInt(R[IP->B].asInt() % IP->Imm);
          NEXT();
        }
        CASE(AndI) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() & IP->Imm);
          NEXT();
        }
        CASE(OrI) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() | IP->Imm);
          NEXT();
        }
        CASE(XorI) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() ^ IP->Imm);
          NEXT();
        }
        CASE(ShlI) {
          // shift amount pre-masked at decode time
          R[IP->A] = Word::fromInt(R[IP->B].asInt() << IP->Imm);
          NEXT();
        }
        CASE(ShrI) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() >> IP->Imm);
          NEXT();
        }

        CASE(FAdd) {
          R[IP->A] = Word::fromFloat(R[IP->B].asFloat() + R[IP->C].asFloat());
          NEXT();
        }
        CASE(FSub) {
          R[IP->A] = Word::fromFloat(R[IP->B].asFloat() - R[IP->C].asFloat());
          NEXT();
        }
        CASE(FMul) {
          R[IP->A] = Word::fromFloat(R[IP->B].asFloat() * R[IP->C].asFloat());
          NEXT();
        }
        CASE(FDiv) {
          R[IP->A] = Word::fromFloat(R[IP->B].asFloat() / R[IP->C].asFloat());
          NEXT();
        }
        CASE(FNeg) {
          R[IP->A] = Word::fromFloat(-R[IP->B].asFloat());
          NEXT();
        }

        CASE(FAddI) {
          R[IP->A] = Word::fromFloat(
              R[IP->B].asFloat() + Word{(uint64_t)IP->Imm}.asFloat());
          NEXT();
        }
        CASE(FSubI) {
          R[IP->A] = Word::fromFloat(
              R[IP->B].asFloat() - Word{(uint64_t)IP->Imm}.asFloat());
          NEXT();
        }
        CASE(FMulI) {
          R[IP->A] = Word::fromFloat(
              R[IP->B].asFloat() * Word{(uint64_t)IP->Imm}.asFloat());
          NEXT();
        }
        CASE(FDivI) {
          R[IP->A] = Word::fromFloat(
              R[IP->B].asFloat() / Word{(uint64_t)IP->Imm}.asFloat());
          NEXT();
        }

        CASE(CmpEq) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() == R[IP->C].asInt());
          NEXT();
        }
        CASE(CmpNe) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() != R[IP->C].asInt());
          NEXT();
        }
        CASE(CmpLt) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() < R[IP->C].asInt());
          NEXT();
        }
        CASE(CmpLe) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() <= R[IP->C].asInt());
          NEXT();
        }
        CASE(CmpGt) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() > R[IP->C].asInt());
          NEXT();
        }
        CASE(CmpGe) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() >= R[IP->C].asInt());
          NEXT();
        }

        CASE(CmpEqI) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() == IP->Imm);
          NEXT();
        }
        CASE(CmpNeI) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() != IP->Imm);
          NEXT();
        }
        CASE(CmpLtI) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() < IP->Imm);
          NEXT();
        }
        CASE(CmpLeI) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() <= IP->Imm);
          NEXT();
        }
        CASE(CmpGtI) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() > IP->Imm);
          NEXT();
        }
        CASE(CmpGeI) {
          R[IP->A] = Word::fromInt(R[IP->B].asInt() >= IP->Imm);
          NEXT();
        }

        CASE(FCmpEq) {
          R[IP->A] = Word::fromInt(R[IP->B].asFloat() == R[IP->C].asFloat());
          NEXT();
        }
        CASE(FCmpNe) {
          R[IP->A] = Word::fromInt(R[IP->B].asFloat() != R[IP->C].asFloat());
          NEXT();
        }
        CASE(FCmpLt) {
          R[IP->A] = Word::fromInt(R[IP->B].asFloat() < R[IP->C].asFloat());
          NEXT();
        }
        CASE(FCmpLe) {
          R[IP->A] = Word::fromInt(R[IP->B].asFloat() <= R[IP->C].asFloat());
          NEXT();
        }
        CASE(FCmpGt) {
          R[IP->A] = Word::fromInt(R[IP->B].asFloat() > R[IP->C].asFloat());
          NEXT();
        }
        CASE(FCmpGe) {
          R[IP->A] = Word::fromInt(R[IP->B].asFloat() >= R[IP->C].asFloat());
          NEXT();
        }

        CASE(IToF) {
          R[IP->A] = Word::fromFloat(static_cast<double>(R[IP->B].asInt()));
          NEXT();
        }
        CASE(FToI) {
          R[IP->A] = Word::fromInt(static_cast<int64_t>(R[IP->B].asFloat()));
          NEXT();
        }

        CASE(Load) {
          SETPC();
          R[IP->A] = mem(R[IP->B].asInt() + IP->Imm, Fr);
          NEXT();
        }
        CASE(LoadAbs) {
          SETPC();
          R[IP->A] = mem(IP->Imm, Fr);
          NEXT();
        }
        CASE(Store) {
          SETPC();
          mem(R[IP->B].asInt() + IP->Imm, Fr) = R[IP->A];
          NEXT();
        }
        CASE(StoreAbs) {
          SETPC();
          mem(IP->Imm, Fr) = R[IP->A];
          NEXT();
        }

        CASE(Call) {
          SETPC();
          if (Frames.size() > 4096)
            machineError("call stack overflow", Fr);
          uint32_t Callee = static_cast<uint32_t>(IP->Imm);
          if (Callee >= Prog.numFunctions())
            machineError("call to nonexistent function", Fr);
          uint32_t ArgBase = IP->B;
          uint32_t NArgs = IP->C;
          uint32_t RetReg = IP->A;
          Fr.PC = static_cast<uint32_t>(IP - Instrs) + 1;
          // R is the frame's stable register buffer; the hook may re-enter
          // the VM and move the Frame object, but not its heap storage.
          const Word *ArgPtr = R + ArgBase;
          if (Hook && callGuard(Callee)) [[unlikely]] {
            Callee = Hook->onGuardedCall(*this, Callee, ArgPtr, NArgs);
            if (FuncStats.size() < Prog.numFunctions()) [[unlikely]]
              FuncStats.resize(Prog.numFunctions());
          }
          Frame NF;
          NF.FuncCode = NF.CurCode = &Prog.function(Callee);
          NF.FuncIdx = Callee;
          NF.Regs.assign(NF.FuncCode->NumRegs, Word());
          for (uint32_t K = 0; K != NArgs; ++K)
            NF.Regs[K] = ArgPtr[K];
          NF.RetReg = RetReg;
          NF.StartCycles = ExecCycles;
          ++FuncStats[Callee].Calls;
          if (HasOnCall)
            OnCall(Callee, NF.Regs.data(), NArgs);
          Frames.push_back(std::move(NF));
          goto restart_frame;
        }

        CASE(CallExt) {
          const ExternalFunction &E =
              Prog.Externals.get(static_cast<unsigned>(IP->Imm));
          assert(IP->C == E.NumArgs && "external call arity mismatch");
          Word ArgBuf[8];
          assert(IP->C <= 8 && "too many external arguments");
          for (uint32_t K = 0; K != IP->C; ++K)
            ArgBuf[K] = R[IP->B + K];
          ExecCycles += E.CostCycles;
          Word Res = E.Fn(ArgBuf);
          if (IP->A != NoReg)
            R[IP->A] = Res;
          NEXT();
        }

        CASE(Br) { BRANCH(IP->B); }
        CASE(CondBr) { BRANCH(R[IP->A].asInt() != 0 ? IP->B : IP->C); }

        CASE(Ret) {
          SETPC();
          Word Res = IP->A == NoReg ? Word() : R[IP->A];
          FuncStats[Fr.FuncIdx].InclusiveCycles += ExecCycles - Fr.StartCycles;
          uint32_t RetReg = Fr.RetReg;
          if (Hook && CO->IsDynamicCode)
            Hook->onDynamicCodeExit(*this, CO);
          Frames.pop_back();
          if (!OsrWatches.empty()) [[unlikely]]
            dropOsrWatches(Frames.size());
          if (Frames.size() == BaseDepth) {
            LastResult = Res;
            return Res;
          }
          if (RetReg != NoReg)
            Frames.back().Regs[RetReg] = Res;
          goto restart_frame;
        }

        CASE(EnterRegion)
        CASE(Dispatch) {
          SETPC();
          if (!Hook)
            machineError("region trap with no run-time attached", Fr);
          int64_t PointId = IP->Imm;
          if (CO->IsDynamicCode)
            Hook->onDynamicCodeExit(*this, CO);
          if (!OsrWatches.empty()) [[unlikely]]
            dropOsrWatches(Frames.size() - 1);
          RuntimeHook::Target T =
              Hook->dispatch(*this, PointId, Frames.back().Regs);
          if (!T.CO)
            machineError("run-time returned no target", Frames.back());
          // The hook may have re-entered the VM and emitted or evicted
          // code; re-derive the frame and translation from scratch.
          Frame &Fr2 = Frames.back();
          Fr2.CurCode = T.CO;
          Fr2.PC = T.PC;
          Fr2.Interpret = T.Interpret;
          goto restart_frame;
        }

        CASE(ExitRegion) {
          SETPC();
          uint32_t Resume = IP->B;
          if (Hook && CO->IsDynamicCode)
            Hook->onDynamicCodeExit(*this, CO);
          if (!OsrWatches.empty()) [[unlikely]]
            dropOsrWatches(Frames.size() - 1);
          Frame &Fr2 = Frames.back();
          Fr2.CurCode = Fr2.FuncCode;
          Fr2.PC = Resume;
          Fr2.Interpret = false;
          goto restart_frame;
        }

        CASE(Halt) {
          SETPC();
          machineError("halt executed", Fr);
        }

        // --- Superinstructions: counters were charged at block level, so
        // --- these only fuse the execute phase of two adjacent slots.

        CASE(ConstIConstI) {
          // ConstI and ConstF both materialize Imm's bit pattern.
          R[IP->A] = Word{static_cast<uint64_t>(IP->Imm)};
          R[IP[1].A] = Word{static_cast<uint64_t>(IP[1].Imm)};
          NEXT2();
        }
        CASE(ConstIAdd) {
          R[IP->A] = Word{static_cast<uint64_t>(IP->Imm)};
          R[IP[1].A] = Word::fromInt(R[IP[1].B].asInt() + R[IP[1].C].asInt());
          NEXT2();
        }
        CASE(MovBr) {
          R[IP->A] = R[IP->B];
          BRANCH(IP[1].B);
        }
        CASE(CmpICondBr) {
          int64_t L = R[IP->B].asInt();
          int64_t Rhs = IP->Imm;
          bool V;
          switch (IP->X) {
          case 0: V = L == Rhs; break;
          case 1: V = L != Rhs; break;
          case 2: V = L < Rhs; break;
          case 3: V = L <= Rhs; break;
          case 4: V = L > Rhs; break;
          default: V = IP->X == 5 ? L >= Rhs : false; break;
          }
          R[IP->A] = Word::fromInt(V);
          BRANCH(V ? IP[1].B : IP[1].C);
        }
        CASE(CmpCondBr) {
          int64_t L = R[IP->B].asInt();
          int64_t Rhs = R[IP->C].asInt();
          bool V;
          switch (IP->X) {
          case 0: V = L == Rhs; break;
          case 1: V = L != Rhs; break;
          case 2: V = L < Rhs; break;
          case 3: V = L <= Rhs; break;
          case 4: V = L > Rhs; break;
          default: V = IP->X == 5 ? L >= Rhs : false; break;
          }
          R[IP->A] = Word::fromInt(V);
          BRANCH(V ? IP[1].B : IP[1].C);
        }
        CASE(ConstIDispatch) {
          // The promoted key's last constant materialization falling into
          // the region trap. Same body as Dispatch above (a goto into
          // that block would jump past its declarations), reading the
          // trap slot's operands from IP[1]; the key register is written
          // into the frame storage the hook reads.
          R[IP->A] = Word{static_cast<uint64_t>(IP->Imm)};
          Fr.PC = static_cast<uint32_t>(IP + 1 - Instrs);
          if (!Hook)
            machineError("region trap with no run-time attached", Fr);
          int64_t PointId = IP[1].Imm;
          if (CO->IsDynamicCode)
            Hook->onDynamicCodeExit(*this, CO);
          if (!OsrWatches.empty()) [[unlikely]]
            dropOsrWatches(Frames.size() - 1);
          RuntimeHook::Target T =
              Hook->dispatch(*this, PointId, Frames.back().Regs);
          if (!T.CO)
            machineError("run-time returned no target", Frames.back());
          Frame &Fr2 = Frames.back();
          Fr2.CurCode = T.CO;
          Fr2.PC = T.PC;
          Fr2.Interpret = T.Interpret;
          goto restart_frame;
        }

#if !DYC_USE_CGOTO
        default:
          SETPC();
          machineError("corrupt predecoded translation", Fr);
        } // switch
#endif
      }

    block_done:
      // OSR safe point: every block transition (the legacy engine's
      // equivalent poll fires after Br/CondBr). A transfer rewrites the
      // frame's position, so re-derive everything from scratch.
      if (!OsrWatches.empty()) [[unlikely]] {
        Fr.PC = PC;
        if (osrPoll())
          goto restart_frame;
      }
      continue;
    }
  }
  return LastResult;
}

#undef CASE
#undef DISPATCH
#undef SETPC
#undef NEXT
#undef NEXT2
#undef BRANCH

} // namespace vm
} // namespace dyc
