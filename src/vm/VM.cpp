//===- vm/VM.cpp - Bytecode interpreter ------------------------------------===//

#include "vm/VM.h"

namespace dyc {
namespace vm {

RuntimeHook::~RuntimeHook() = default;

void RuntimeHook::onDynamicCodeExit(VM &, const CodeObject *) {}

uint32_t Program::addFunction(CodeObject CO) {
  CO.BaseAddr = allocCodeAddr(CO.Code.size() * 4 + 64);
  Funcs.push_back(std::move(CO));
  return static_cast<uint32_t>(Funcs.size() - 1);
}

uint64_t Program::allocCodeAddr(uint64_t Bytes) {
  uint64_t Base = NextCodeAddr;
  // Keep code objects block-aligned so footprints are easy to reason about.
  NextCodeAddr += (Bytes + 63) & ~63ULL;
  return Base;
}

int Program::findFunction(const std::string &Name) const {
  for (size_t I = 0; I != Funcs.size(); ++I)
    if (Funcs[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

VM::VM(Program &P, const CostModel &CMIn, const ICacheConfig &ICIn)
    : Prog(P), CM(CMIn), IC(ICIn) {
  Mem.resize(1 << 20);
  FuncStats.resize(P.numFunctions());
}

const FunctionStats &VM::functionStats(uint32_t FuncIdx) const {
  assert(FuncIdx < FuncStats.size() && "function index out of range");
  return FuncStats[FuncIdx];
}

int64_t VM::allocMemory(int64_t Cells) {
  assert(Cells >= 0 && "negative allocation");
  int64_t Base = MemBrk;
  MemBrk += Cells;
  if (static_cast<uint64_t>(MemBrk) > Mem.size()) {
    size_t NewSize = Mem.size();
    while (static_cast<uint64_t>(MemBrk) > NewSize)
      NewSize *= 2;
    Mem.resize(NewSize);
  }
  return Base;
}

void VM::machineError(const std::string &Msg, const Frame &F) {
  fatal(formatString("machine error in '%s' at pc %u: %s",
                     F.CurCode ? F.CurCode->Name.c_str() : "<none>", F.PC,
                     Msg.c_str()));
}

Word &VM::mem(int64_t Addr, const Frame &F) {
  if (Addr < 0 || static_cast<uint64_t>(Addr) >= Mem.size())
    machineError(formatString("memory access out of range: %lld",
                              (long long)Addr),
                 F);
  return Mem[static_cast<size_t>(Addr)];
}

Word VM::run(uint32_t FuncIdx, const std::vector<Word> &Args) {
  if (FuncStats.size() < Prog.numFunctions())
    FuncStats.resize(Prog.numFunctions());
  size_t BaseDepth = Frames.size();
  Frame F;
  F.FuncCode = F.CurCode = &Prog.function(FuncIdx);
  F.FuncIdx = FuncIdx;
  F.Regs.assign(F.FuncCode->NumRegs, Word());
  assert(Args.size() <= F.Regs.size() && "too many arguments");
  for (size_t I = 0; I != Args.size(); ++I)
    F.Regs[I] = Args[I];
  F.StartCycles = ExecCycles;
  ++FuncStats[FuncIdx].Calls;
  if (OnCall)
    OnCall(FuncIdx, F.Regs.data(), static_cast<uint32_t>(Args.size()));
  Frames.push_back(std::move(F));

  while (Frames.size() > BaseDepth) {
    Frame &Fr = Frames.back();
    const CodeObject &CO = *Fr.CurCode;
    if (Fr.PC >= CO.Code.size())
      machineError("fell off the end of the code object", Fr);
    if (++InstrsExecuted > MaxInstructions)
      machineError("instruction fuel exhausted (runaway loop?)", Fr);

    const Instr I = CO.Code[Fr.PC];
    if (!IC.access(CO.addrOf(Fr.PC)))
      ExecCycles += CM.ICacheMissPenalty;
    ExecCycles += CM.costOf(I, CO.IsDynamicCode);

    std::vector<Word> &R = Fr.Regs;
    uint32_t NextPC = Fr.PC + 1;

    switch (I.Opcode) {
    case Op::ConstI:
      R[I.A] = Word::fromInt(I.Imm);
      break;
    case Op::ConstF:
      R[I.A] = Word{static_cast<uint64_t>(I.Imm)};
      break;
    case Op::Mov:
    case Op::FMov:
      R[I.A] = R[I.B];
      break;

    case Op::Add: R[I.A] = Word::fromInt(R[I.B].asInt() + R[I.C].asInt()); break;
    case Op::Sub: R[I.A] = Word::fromInt(R[I.B].asInt() - R[I.C].asInt()); break;
    case Op::Mul: R[I.A] = Word::fromInt(R[I.B].asInt() * R[I.C].asInt()); break;
    case Op::Div:
      if (R[I.C].asInt() == 0)
        machineError("integer divide by zero", Fr);
      R[I.A] = Word::fromInt(R[I.B].asInt() / R[I.C].asInt());
      break;
    case Op::Rem:
      if (R[I.C].asInt() == 0)
        machineError("integer remainder by zero", Fr);
      R[I.A] = Word::fromInt(R[I.B].asInt() % R[I.C].asInt());
      break;
    case Op::And: R[I.A] = Word::fromInt(R[I.B].asInt() & R[I.C].asInt()); break;
    case Op::Or:  R[I.A] = Word::fromInt(R[I.B].asInt() | R[I.C].asInt()); break;
    case Op::Xor: R[I.A] = Word::fromInt(R[I.B].asInt() ^ R[I.C].asInt()); break;
    case Op::Shl:
      R[I.A] = Word::fromInt(R[I.B].asInt() << (R[I.C].asInt() & 63));
      break;
    case Op::Shr:
      R[I.A] = Word::fromInt(R[I.B].asInt() >> (R[I.C].asInt() & 63));
      break;
    case Op::Neg: R[I.A] = Word::fromInt(-R[I.B].asInt()); break;

    case Op::AddI: R[I.A] = Word::fromInt(R[I.B].asInt() + I.Imm); break;
    case Op::SubI: R[I.A] = Word::fromInt(R[I.B].asInt() - I.Imm); break;
    case Op::MulI: R[I.A] = Word::fromInt(R[I.B].asInt() * I.Imm); break;
    case Op::DivI:
      if (I.Imm == 0)
        machineError("integer divide by zero immediate", Fr);
      R[I.A] = Word::fromInt(R[I.B].asInt() / I.Imm);
      break;
    case Op::RemI:
      if (I.Imm == 0)
        machineError("integer remainder by zero immediate", Fr);
      R[I.A] = Word::fromInt(R[I.B].asInt() % I.Imm);
      break;
    case Op::AndI: R[I.A] = Word::fromInt(R[I.B].asInt() & I.Imm); break;
    case Op::OrI:  R[I.A] = Word::fromInt(R[I.B].asInt() | I.Imm); break;
    case Op::XorI: R[I.A] = Word::fromInt(R[I.B].asInt() ^ I.Imm); break;
    case Op::ShlI: R[I.A] = Word::fromInt(R[I.B].asInt() << (I.Imm & 63)); break;
    case Op::ShrI: R[I.A] = Word::fromInt(R[I.B].asInt() >> (I.Imm & 63)); break;

    case Op::FAdd: R[I.A] = Word::fromFloat(R[I.B].asFloat() + R[I.C].asFloat()); break;
    case Op::FSub: R[I.A] = Word::fromFloat(R[I.B].asFloat() - R[I.C].asFloat()); break;
    case Op::FMul: R[I.A] = Word::fromFloat(R[I.B].asFloat() * R[I.C].asFloat()); break;
    case Op::FDiv: R[I.A] = Word::fromFloat(R[I.B].asFloat() / R[I.C].asFloat()); break;
    case Op::FNeg: R[I.A] = Word::fromFloat(-R[I.B].asFloat()); break;

    case Op::FAddI:
      R[I.A] = Word::fromFloat(R[I.B].asFloat() +
                               Word{(uint64_t)I.Imm}.asFloat());
      break;
    case Op::FSubI:
      R[I.A] = Word::fromFloat(R[I.B].asFloat() -
                               Word{(uint64_t)I.Imm}.asFloat());
      break;
    case Op::FMulI:
      R[I.A] = Word::fromFloat(R[I.B].asFloat() *
                               Word{(uint64_t)I.Imm}.asFloat());
      break;
    case Op::FDivI:
      R[I.A] = Word::fromFloat(R[I.B].asFloat() /
                               Word{(uint64_t)I.Imm}.asFloat());
      break;

    case Op::CmpEq: R[I.A] = Word::fromInt(R[I.B].asInt() == R[I.C].asInt()); break;
    case Op::CmpNe: R[I.A] = Word::fromInt(R[I.B].asInt() != R[I.C].asInt()); break;
    case Op::CmpLt: R[I.A] = Word::fromInt(R[I.B].asInt() <  R[I.C].asInt()); break;
    case Op::CmpLe: R[I.A] = Word::fromInt(R[I.B].asInt() <= R[I.C].asInt()); break;
    case Op::CmpGt: R[I.A] = Word::fromInt(R[I.B].asInt() >  R[I.C].asInt()); break;
    case Op::CmpGe: R[I.A] = Word::fromInt(R[I.B].asInt() >= R[I.C].asInt()); break;

    case Op::CmpEqI: R[I.A] = Word::fromInt(R[I.B].asInt() == I.Imm); break;
    case Op::CmpNeI: R[I.A] = Word::fromInt(R[I.B].asInt() != I.Imm); break;
    case Op::CmpLtI: R[I.A] = Word::fromInt(R[I.B].asInt() <  I.Imm); break;
    case Op::CmpLeI: R[I.A] = Word::fromInt(R[I.B].asInt() <= I.Imm); break;
    case Op::CmpGtI: R[I.A] = Word::fromInt(R[I.B].asInt() >  I.Imm); break;
    case Op::CmpGeI: R[I.A] = Word::fromInt(R[I.B].asInt() >= I.Imm); break;

    case Op::FCmpEq: R[I.A] = Word::fromInt(R[I.B].asFloat() == R[I.C].asFloat()); break;
    case Op::FCmpNe: R[I.A] = Word::fromInt(R[I.B].asFloat() != R[I.C].asFloat()); break;
    case Op::FCmpLt: R[I.A] = Word::fromInt(R[I.B].asFloat() <  R[I.C].asFloat()); break;
    case Op::FCmpLe: R[I.A] = Word::fromInt(R[I.B].asFloat() <= R[I.C].asFloat()); break;
    case Op::FCmpGt: R[I.A] = Word::fromInt(R[I.B].asFloat() >  R[I.C].asFloat()); break;
    case Op::FCmpGe: R[I.A] = Word::fromInt(R[I.B].asFloat() >= R[I.C].asFloat()); break;

    case Op::IToF:
      R[I.A] = Word::fromFloat(static_cast<double>(R[I.B].asInt()));
      break;
    case Op::FToI:
      R[I.A] = Word::fromInt(static_cast<int64_t>(R[I.B].asFloat()));
      break;

    case Op::Load:
      R[I.A] = mem(R[I.B].asInt() + I.Imm, Fr);
      break;
    case Op::LoadAbs:
      R[I.A] = mem(I.Imm, Fr);
      break;
    case Op::Store:
      mem(R[I.B].asInt() + I.Imm, Fr) = R[I.A];
      break;
    case Op::StoreAbs:
      mem(I.Imm, Fr) = R[I.A];
      break;

    case Op::Call: {
      if (Frames.size() > 4096)
        machineError("call stack overflow", Fr);
      uint32_t Callee = static_cast<uint32_t>(I.Imm);
      if (Callee >= Prog.numFunctions())
        machineError("call to nonexistent function", Fr);
      Fr.PC = NextPC;
      Frame NF;
      NF.FuncCode = NF.CurCode = &Prog.function(Callee);
      NF.FuncIdx = Callee;
      NF.Regs.assign(NF.FuncCode->NumRegs, Word());
      for (uint32_t K = 0; K != I.C; ++K)
        NF.Regs[K] = R[I.B + K];
      NF.RetReg = I.A;
      NF.StartCycles = ExecCycles;
      ++FuncStats[Callee].Calls;
      if (OnCall)
        OnCall(Callee, NF.Regs.data(), I.C);
      Frames.push_back(std::move(NF));
      continue;
    }

    case Op::CallExt: {
      const ExternalFunction &E =
          Prog.Externals.get(static_cast<unsigned>(I.Imm));
      assert(I.C == E.NumArgs && "external call arity mismatch");
      Word ArgBuf[8];
      assert(I.C <= 8 && "too many external arguments");
      for (uint32_t K = 0; K != I.C; ++K)
        ArgBuf[K] = R[I.B + K];
      ExecCycles += E.CostCycles;
      Word Res = E.Fn(ArgBuf);
      if (I.A != NoReg)
        R[I.A] = Res;
      break;
    }

    case Op::Br:
      NextPC = I.B;
      break;
    case Op::CondBr:
      NextPC = R[I.A].asInt() != 0 ? I.B : I.C;
      break;

    case Op::Ret: {
      Word Res = I.A == NoReg ? Word() : R[I.A];
      FuncStats[Fr.FuncIdx].InclusiveCycles += ExecCycles - Fr.StartCycles;
      uint32_t RetReg = Fr.RetReg;
      if (Hook && Fr.CurCode->IsDynamicCode)
        Hook->onDynamicCodeExit(*this, Fr.CurCode);
      Frames.pop_back();
      if (Frames.size() == BaseDepth) {
        LastResult = Res;
        return Res;
      }
      if (RetReg != NoReg)
        Frames.back().Regs[RetReg] = Res;
      continue;
    }

    case Op::EnterRegion:
    case Op::Dispatch: {
      if (!Hook)
        machineError("region trap with no run-time attached", Fr);
      if (Fr.CurCode->IsDynamicCode)
        Hook->onDynamicCodeExit(*this, Fr.CurCode);
      RuntimeHook::Target T = Hook->dispatch(*this, I.Imm, Fr.Regs);
      if (!T.CO)
        machineError("run-time returned no target", Fr);
      // The hook may have re-entered the VM (static calls during
      // specialization); re-establish the frame reference.
      Frame &Fr2 = Frames.back();
      Fr2.CurCode = T.CO;
      Fr2.PC = T.PC;
      continue;
    }

    case Op::ExitRegion: {
      if (Hook && Fr.CurCode->IsDynamicCode)
        Hook->onDynamicCodeExit(*this, Fr.CurCode);
      Fr.CurCode = Fr.FuncCode;
      Fr.PC = I.B;
      continue;
    }

    case Op::Halt:
      machineError("halt executed", Fr);
    }

    Fr.PC = NextPC;
  }
  return LastResult;
}

} // namespace vm
} // namespace dyc
