//===- vm/CostModel.h - Alpha-21164-flavored cycle costs ------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-operation cycle costs for the abstract machine, plus the costs of the
/// DyC run-time operations (dispatching, specialization). The defaults are
/// tuned to the properties the paper depends on:
///
///  * A floating-point move costs the same as a floating-point multiply
///    (section 2.2.7: "On some architectures, such as the DEC Alpha 21164
///    ... a floating-point move takes the same time as a floating-point
///    multiply"), which is why zero/copy propagation and dead-assignment
///    elimination — not strength reduction alone — deliver pnmconvol's and
///    viewperf's speedups.
///  * An unchecked dispatch costs ~10 cycles and a hashed cache-all
///    dispatch ~90 cycles on average (section 4.4.3).
///  * Dynamic compilation costs tens-to-hundreds of cycles per generated
///    instruction (Table 3), dominated by cache lookups, memory allocation,
///    dynamic-branch handling, emission, and patching.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_VM_COSTMODEL_H
#define DYC_VM_COSTMODEL_H

#include "vm/Bytecode.h"

#include <cstdint>

namespace dyc {
namespace vm {

/// Cycle-cost parameters of the simulated machine and run-time.
struct CostModel {
  // --- Execution costs -----------------------------------------------------
  uint32_t IntAlu = 1;      ///< add/sub/logic/shift/compare/move/const
  uint32_t IntMul = 8;      ///< 21164 integer multiply latency
  uint32_t IntDiv = 40;     ///< no hardware divide; software sequence
  uint32_t FpAdd = 4;       ///< fadd/fsub/fneg
  uint32_t FpMul = 4;       ///< fmul — equal to FpMov by design
  uint32_t FpMov = 4;       ///< floating move
  uint32_t FpDiv = 30;
  uint32_t Conv = 4;        ///< int<->float conversion
  uint32_t LoadHit = 2;     ///< D-cache hit assumed
  uint32_t StoreCost = 1;
  uint32_t BranchCost = 1;
  uint32_t CondBranchCost = 2;
  uint32_t CallCost = 10;   ///< frame setup + return path
  uint32_t RetCost = 5;
  uint32_t ICacheMissPenalty = 22; ///< L1 I-miss to L2
  /// Dynamically generated code is not scheduled (paper section 2.2.4:
  /// "DyC and similar systems currently do no run-time instruction
  /// scheduling"), while the static compiler's code enjoys the machine's
  /// dual issue; instructions in generated code pay this percentage
  /// surcharge.
  uint32_t DynCodePenaltyPct = 50;

  // --- Dispatch costs (section 4.4.3) --------------------------------------
  uint32_t DispatchUnchecked = 10; ///< load + indirect jump
  uint32_t DispatchIndexed = 14;   ///< bounds-free array index + jump
  uint32_t DispatchHashBase = 40;  ///< store key struct + call hash function
  uint32_t DispatchHashPerKeyWord = 10;
  uint32_t DispatchHashPerProbe = 15;

  // --- Dynamic-compilation costs (charged to DC overhead) ------------------
  uint32_t SpecInvoke = 700;      ///< invoking the dynamic compiler: memory
                                  ///< allocation, cache bookkeeping
  uint32_t SpecPerWorkItem = 30;  ///< per specialized (context, values) pair:
                                  ///< memoization lookup/insert
  uint32_t SpecEvalOp = 2;        ///< one static computation in set-up code
  uint32_t SpecStaticLoad = 4;    ///< static load executed at specialize time
  uint32_t SpecStaticCallBase = 12; ///< memo-table handling around a static call
  uint32_t SpecEmit = 24;         ///< construct + emit one instruction,
                                  ///< I-cache coherence amortized
  uint32_t SpecEmitHole = 3;      ///< filling one hole operand
  uint32_t SpecEmitBranch = 18;   ///< extra for emitted dynamic branches:
                                  ///< two successors queued, patch records
  uint32_t SpecPatch = 6;         ///< resolving one pending branch patch
  uint32_t SpecCacheInsert = 80;  ///< installing an entry point in the cache
  uint32_t SpecZcpTableOp = 4;    ///< completion-table check/update
  uint32_t SpecStrengthCheck = 2; ///< emit-time special-value test

  // --- Speculative-promotion costs (section 6's envisioned automation) -----
  uint32_t ProfileSample = 2;     ///< online value-profile sample at a call
  uint32_t SpecGuardBase = 4;     ///< guarded call site: counter + branch
  uint32_t SpecGuardPerWord = 2;  ///< per promoted word compared by a guard
  uint32_t SpecSynthBase = 1200;  ///< synthesizing one promotion: BTA +
                                  ///< lowering + generating-extension build
  uint32_t SpecSynthPerInstr = 8; ///< per analyzed source IR instruction

  /// Execution cost of \p I, excluding I-cache effects, calls' callee
  /// cycles, and run-time trap costs (EnterRegion/Dispatch are charged by
  /// the run-time according to the active policy). \p InDynCode applies
  /// the no-run-time-scheduling surcharge.
  uint32_t costOf(const Instr &I, bool InDynCode = false) const;

  /// Cost without the dynamic-code surcharge.
  uint32_t baseCostOf(const Instr &I) const;

  /// Cost of a hashed (cache-all) dispatch with \p KeyWords key words and
  /// \p Probes table probes.
  uint32_t hashedDispatchCost(unsigned KeyWords, unsigned Probes) const {
    return DispatchHashBase + DispatchHashPerKeyWord * KeyWords +
           DispatchHashPerProbe * Probes;
  }
};

} // namespace vm
} // namespace dyc

#endif // DYC_VM_COSTMODEL_H
