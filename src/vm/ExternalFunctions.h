//===- vm/ExternalFunctions.h - Host-implemented callees -------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registry of external functions callable from bytecode (math library
/// routines, mainly). Each is marked pure or impure: DyC may treat calls to
/// *annotated* pure functions with all-static arguments as static
/// computations, executing (memoizing) them at dynamic-compile time
/// (section 2.2.6) — chebyshev's 6.3x speedup comes from memoized calls to
/// cosine. Unannotated or impure functions are always dynamic.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_VM_EXTERNALFUNCTIONS_H
#define DYC_VM_EXTERNALFUNCTIONS_H

#include "support/Support.h"

#include <functional>
#include <string>
#include <vector>

namespace dyc {
namespace vm {

/// One host-implemented function.
struct ExternalFunction {
  std::string Name;
  unsigned NumArgs = 0;
  /// True if the function is referentially transparent; only pure externals
  /// may be invoked at specialization time.
  bool Pure = true;
  /// Execution cost in cycles (the callee's body; the call overhead is
  /// charged separately by the cost model).
  uint32_t CostCycles = 50;
  std::function<Word(const Word *Args)> Fn;
};

/// The table of externals for a program.
class ExternalRegistry {
public:
  /// Registers \p F; returns its index.
  unsigned add(ExternalFunction F);

  /// Registers the standard math set: cos, sin, sqrt, fabs, floor, pow,
  /// exp, log.
  void addStandardMath();

  /// Returns the index of \p Name or -1.
  int find(const std::string &Name) const;

  const ExternalFunction &get(unsigned Idx) const {
    assert(Idx < Table.size() && "external index out of range");
    return Table[Idx];
  }

  size_t size() const { return Table.size(); }

private:
  std::vector<ExternalFunction> Table;
};

} // namespace vm
} // namespace dyc

#endif // DYC_VM_EXTERNALFUNCTIONS_H
