//===- vm/VM.h - The abstract machine --------------------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution substrate standing in for the paper's DEC Alpha 21164
/// workstation. The VM interprets bytecode deterministically, charging
/// cycles per the CostModel and simulating an L1 instruction cache.
/// Execution cycles and dynamic-compilation cycles are accounted
/// separately, replacing the paper's getrusage/cycle-counter measurements
/// with exact deterministic counts.
///
/// The DyC run-time attaches through the RuntimeHook interface: the
/// EnterRegion and Dispatch instructions trap into it, and it returns the
/// generated code to continue executing.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_VM_VM_H
#define DYC_VM_VM_H

#include "vm/Bytecode.h"
#include "vm/CostModel.h"
#include "vm/Decoded.h"
#include "vm/ExternalFunctions.h"
#include "vm/ICache.h"

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace dyc {
namespace vm {

/// A complete executable: the static code objects plus the external
/// function table and a simulated-code address allocator (generated code
/// claims address ranges here so the I-cache sees its true footprint).
class Program {
public:
  /// Adds a function; assigns its simulated base address. Returns its index.
  uint32_t addFunction(CodeObject CO);

  /// Reserves \p Bytes of simulated instruction-address space (for
  /// dynamically generated code buffers). Returns the base address.
  uint64_t allocCodeAddr(uint64_t Bytes);

  int findFunction(const std::string &Name) const;

  CodeObject &function(uint32_t Idx) {
    assert(Idx < Funcs.size() && "function index out of range");
    return Funcs[Idx];
  }
  const CodeObject &function(uint32_t Idx) const {
    assert(Idx < Funcs.size() && "function index out of range");
    return Funcs[Idx];
  }
  size_t numFunctions() const { return Funcs.size(); }

  ExternalRegistry Externals;

private:
  /// Deque, not vector: the speculative run-time appends synthesized twin
  /// functions while frames hold CodeObject pointers into the program, so
  /// growth must never relocate existing elements.
  std::deque<CodeObject> Funcs;
  /// Name -> index; first registration of a name wins, matching the old
  /// linear scan's front-to-back resolution order.
  std::unordered_map<std::string, uint32_t> FuncIndex;
  uint64_t NextCodeAddr = 0x10000;
};

class VM;

/// Interface the DyC run-time implements; invoked when the machine executes
/// EnterRegion or Dispatch.
class RuntimeHook {
public:
  virtual ~RuntimeHook();

  /// Where execution continues after a trap.
  struct Target {
    const CodeObject *CO = nullptr;
    uint32_t PC = 0;
    /// Cold-tier request: execute this frame instruction-by-instruction in
    /// the stepOne switch loop instead of through the predecoded engine.
    /// No translation is built for the frame while the flag is set; it
    /// clears when the frame leaves the target code (Ret/ExitRegion) or a
    /// later dispatch returns a Target without it. Host-only — simulated
    /// counters are engine-invariant by the parity contract.
    bool Interpret = false;
  };

  /// Handles an EnterRegion/Dispatch trap. \p PointId is the instruction's
  /// Imm; \p Regs is the live register frame (promoted values are read from
  /// it). Implementations charge dispatch cycles via VM::chargeExec and
  /// compilation cycles via VM::chargeDynComp.
  virtual Target dispatch(VM &M, int64_t PointId, std::vector<Word> &Regs) = 0;

  /// Invoked whenever control durably leaves a dynamically generated code
  /// object \p CO: at ExitRegion, at a Ret executed from generated code,
  /// and immediately before a Dispatch trap taken from generated code.
  /// Nested Calls made *from* generated code do not notify — the frame
  /// resumes in \p CO afterwards. The SpecServer uses this to keep
  /// active-executor reference counts on code chains so the capacity
  /// manager can tell when evicted code has drained. Default: no-op.
  virtual void onDynamicCodeExit(VM &M, const CodeObject *CO);

  /// Invoked for a call to a guarded function (see VM::setCallGuard)
  /// *before* the callee frame is built, with the live argument values.
  /// Returns the function index to actually call — \p Callee to proceed
  /// generically, or a different index to redirect the call (speculative
  /// promotion enters a synthesized twin this way). The implementation may
  /// charge simulated cycles and may add functions to the program, but the
  /// returned index must accept the same \p NArgs arguments. \p Args
  /// points into the caller's register frame buffer, which stays valid
  /// across program growth. Default: returns \p Callee.
  virtual uint32_t onGuardedCall(VM &M, uint32_t Callee, const Word *Args,
                                 uint32_t NArgs);

  /// Invoked at an armed OSR safe point (a back-edge arrival at the watched
  /// block head; see VM::armOsr). Returns a Target with a non-null CO to
  /// transfer the current frame there — the watch is then erased — or a
  /// null CO to keep spinning in the generic code. Implementations must
  /// NOT re-enter the VM and must charge any simulated cost themselves;
  /// an unanswered poll costs nothing. Default: never transfers.
  virtual Target onOsrPoll(VM &M, uint64_t Token, std::vector<Word> &Regs);

  /// Invoked when the VM discards an armed OSR watch without a transfer
  /// (frame returned, left the region, or re-dispatched). Default: no-op.
  virtual void onOsrDrop(VM &M, uint64_t Token);
};

/// Per-function execution statistics (inclusive cycles let the harness
/// compute Table 4's "% of execution in the dynamic region").
struct FunctionStats {
  uint64_t Calls = 0;
  uint64_t InclusiveCycles = 0;
};

/// The bytecode interpreter.
class VM {
public:
  /// Which execution engine run() uses. Both produce bit-identical
  /// ExecCycles/DynCompCycles/InstrsExecuted, function statistics, and
  /// I-cache hit/miss counts; Predecoded is simply faster on the host.
  enum class EngineKind {
    Legacy,    ///< the original fetch/decode/charge-per-instruction switch
    Predecoded ///< superblock-charging engine over the translation cache
  };

  explicit VM(Program &P, const CostModel &CM = CostModel(),
              const ICacheConfig &IC = ICacheConfig());

  /// Calls function \p FuncIdx with \p Args and runs to completion.
  /// Halts the process on machine errors (out-of-range memory, stack
  /// overflow, fuel exhaustion) — these are bugs in compiled code.
  Word run(uint32_t FuncIdx, const std::vector<Word> &Args);

  // --- Memory ---------------------------------------------------------------
  std::vector<Word> &memory() { return Mem; }
  const std::vector<Word> &memory() const { return Mem; }

  /// Bump-allocates \p Cells words of VM memory; returns the base address.
  int64_t allocMemory(int64_t Cells);

  // --- Cycle accounting -------------------------------------------------------
  void chargeExec(uint64_t Cycles) { ExecCycles += Cycles; }
  void chargeDynComp(uint64_t Cycles) { DynCompCycles += Cycles; }
  uint64_t execCycles() const { return ExecCycles; }
  uint64_t dynCompCycles() const { return DynCompCycles; }

  /// Moves all execution cycles accrued since \p Mark into the
  /// dynamic-compilation account. The specializer brackets nested VM runs
  /// (static calls to bytecode functions executed at specialize time) with
  /// execCycles()/reattributeExecToDynComp so their cost lands in DC
  /// overhead, as the paper accounts it.
  void reattributeExecToDynComp(uint64_t Mark) {
    assert(Mark <= ExecCycles && "mark from the future");
    uint64_t Delta = ExecCycles - Mark;
    ExecCycles = Mark;
    DynCompCycles += Delta;
  }
  uint64_t instrsExecuted() const { return InstrsExecuted; }

  const FunctionStats &functionStats(uint32_t FuncIdx) const;

  ICache &icache() { return IC; }
  const CostModel &costModel() const { return CM; }
  Program &program() { return Prog; }

  /// Flushes the I-cache (called by the run-time after emitting code, for
  /// coherence, as the paper lists among dynamic-compilation costs).
  void flushICache() { IC.flush(); }

  /// Drops the predecoded translation of \p CO. The inline run-time calls
  /// this when it unpublishes a chain (capacity eviction, one-slot
  /// displacement) so a later chain reusing nothing but the allocator's
  /// monotonic address space can never observe stale decode state, and so
  /// the cache does not pin freed chains' translations.
  void invalidateDecoded(const CodeObject &CO) { Decoded.invalidate(CO); }

  /// Translation-cache introspection (tests and benchmarks).
  size_t decodedObjects() const { return Decoded.size(); }
  uint64_t decodeBuilds() const { return Decoded.builds(); }
  uint64_t decodeAdopts() const { return Decoded.adopts(); }

  /// Connects this VM to an execution backend's shared prebuilt-translation
  /// registry (null disconnects). Adopted translations bypass
  /// translate-on-first-touch; see PrebuiltTranslations for the contract.
  /// Front ends call backend::ExecutionBackend::attach rather than this
  /// directly.
  void setPrebuiltTranslations(std::shared_ptr<const PrebuiltTranslations> R) {
    Prebuilt = std::move(R);
    Decoded.setRegistry(Prebuilt.get());
  }

  /// Engine selection; Predecoded by default. The DYC_VM_ENGINE
  /// environment variable ("legacy" / "predecoded") overrides it at
  /// construction, which lets any existing binary A/B the engines.
  EngineKind Engine = EngineKind::Predecoded;

  /// How the predecoded engine's inner dispatch was compiled: "threaded"
  /// (computed goto) or "switch". Reported by benchmarks so artifacts are
  /// self-describing.
  static const char *dispatchMode();

  RuntimeHook *Hook = nullptr;

  /// Which tenant this machine belongs to (multi-tenant SpecServer
  /// clients; 0 — the default tenant — everywhere else). Purely an
  /// identity tag the dispatch hook reads: the VM itself never consults
  /// it, so single-tenant behavior is unchanged.
  uint32_t Tenant = 0;

  /// Marks \p Func so calls to it consult RuntimeHook::onGuardedCall. The
  /// flag array is sparse and branch-free to test on the call path; calls
  /// to unguarded functions cost nothing extra.
  void setCallGuard(uint32_t Func, bool On) {
    if (CallGuards.size() <= Func)
      CallGuards.resize(Func + 1, 0);
    CallGuards[Func] = On ? 1 : 0;
  }
  bool callGuard(uint32_t Func) const {
    return Func < CallGuards.size() && CallGuards[Func] != 0;
  }

  /// Optional observer invoked at every function entry (both top-level
  /// runs and internal calls) with the argument values. Used by the value
  /// profiler; null by default and free when unset.
  std::function<void(uint32_t Func, const Word *Args, uint32_t N)> OnCall;

  /// Execution fuel: aborts if exceeded (guards against miscompiled loops).
  uint64_t MaxInstructions = 4ULL << 30;

  /// Arms an OSR watch on the *current* (innermost) frame: when that frame
  /// next arrives at \p HeadPC of the code object with base address
  /// \p Base via a branch back edge, RuntimeHook::onOsrPoll fires with
  /// \p Token. Callable only from inside a RuntimeHook::dispatch (the
  /// frame being armed is the one the dispatch returns into). Watches are
  /// host-only bookkeeping: polls charge no simulated cycles.
  void armOsr(uint64_t Base, uint32_t HeadPC, uint64_t Token);

  /// Removes the watch carrying \p Token, if still armed. No drop callback.
  void disarmOsr(uint64_t Token);

private:
  struct Frame {
    const CodeObject *CurCode = nullptr;  ///< may be a generated-code buffer
    const CodeObject *FuncCode = nullptr; ///< the function's static code
    uint32_t FuncIdx = 0;
    uint32_t PC = 0;
    uint32_t RetReg = NoReg; ///< caller register receiving the result
    uint64_t StartCycles = 0;
    /// Cold-tier flag (see RuntimeHook::Target::Interpret): the predecoded
    /// engine single-steps this frame through stepOne without translating.
    bool Interpret = false;
    std::vector<Word> Regs;
  };

  /// An armed OSR watch: fires when frame \p Depth is back at \p HeadPC of
  /// the code object based at \p Base after taking a branch.
  struct OsrWatch {
    uint64_t Base = 0;
    uint32_t HeadPC = 0;
    uint64_t Token = 0;
    size_t Depth = 0;
  };

  /// Executes exactly one instruction with the original per-instruction
  /// fetch/charge sequence. The Legacy engine is a loop around this; the
  /// Predecoded engine falls back to it for the rare cases the block fast
  /// path must not handle (imminent fuel exhaustion, mid-block entry past
  /// the leader-promotion budget).
  void stepOne(size_t BaseDepth);
  Word runLegacy(size_t BaseDepth);
  Word runPredecoded(size_t BaseDepth);

  /// Checks the armed watches against the innermost frame's current
  /// position; on a match asks Hook->onOsrPoll and, if it answers with a
  /// target, transfers the frame. Returns true when a transfer happened
  /// (the caller must re-enter its frame loop). Cold path — callers gate
  /// on !OsrWatches.empty().
  bool osrPoll();

  /// Drops (with RuntimeHook::onOsrDrop notification) every watch armed at
  /// depth >= \p MinDepth. Called when frames pop or leave dynamic code.
  void dropOsrWatches(size_t MinDepth);
  [[noreturn]] void machineError(const std::string &Msg, const Frame &F);
  [[noreturn]] void memOutOfRange(int64_t Addr, const Frame &F);

  /// Bounds-checked access to VM memory. The failure path (message
  /// formatting and abort) lives out of line in memOutOfRange so the hot
  /// Load/Store path is a compare and an index.
  Word &mem(int64_t Addr, const Frame &F) {
    if (Addr < 0 || static_cast<uint64_t>(Addr) >= Mem.size()) [[unlikely]]
      memOutOfRange(Addr, F);
    return Mem[static_cast<size_t>(Addr)];
  }

  Program &Prog;
  CostModel CM;
  ICache IC;
  std::vector<Word> Mem;
  int64_t MemBrk = 16; // low addresses reserved (address 0 acts as "null")
  std::vector<Frame> Frames;
  /// Armed OSR watches; empty in non-tiered runs so both engines' poll
  /// sites reduce to one branch. At most a handful are live at once (one
  /// per frame running fallback code), so a flat vector beats a map.
  std::vector<OsrWatch> OsrWatches;
  std::vector<FunctionStats> FuncStats;
  /// Per-function guarded-call flags (see setCallGuard).
  std::vector<uint8_t> CallGuards;
  DecodedCache Decoded;
  /// Keeps the connected backend's translation registry alive for as long
  /// as the DecodedCache holds a raw pointer to it.
  std::shared_ptr<const PrebuiltTranslations> Prebuilt;
  /// OnCall presence, latched at run() entry so the per-call path tests a
  /// bool instead of a std::function.
  bool HasOnCall = false;
  uint64_t ExecCycles = 0;
  uint64_t DynCompCycles = 0;
  uint64_t InstrsExecuted = 0;
  Word LastResult;
};

} // namespace vm
} // namespace dyc

#endif // DYC_VM_VM_H
