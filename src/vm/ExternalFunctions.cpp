//===- vm/ExternalFunctions.cpp --------------------------------------------===//

#include "vm/ExternalFunctions.h"

#include <cmath>

namespace dyc {
namespace vm {

unsigned ExternalRegistry::add(ExternalFunction F) {
  assert(find(F.Name) < 0 && "duplicate external function");
  Table.push_back(std::move(F));
  return static_cast<unsigned>(Table.size() - 1);
}

int ExternalRegistry::find(const std::string &Name) const {
  for (size_t I = 0; I != Table.size(); ++I)
    if (Table[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

void ExternalRegistry::addStandardMath() {
  auto Unary = [this](const char *Name, double (*F)(double), uint32_t Cost) {
    add({Name, 1, /*Pure=*/true, Cost,
         [F](const Word *A) { return Word::fromFloat(F(A[0].asFloat())); }});
  };
  Unary("cos", std::cos, 180);
  Unary("sin", std::sin, 120);
  Unary("sqrt", std::sqrt, 35);
  Unary("fabs", std::fabs, 4);
  Unary("floor", std::floor, 6);
  Unary("exp", std::exp, 90);
  Unary("log", std::log, 90);
  add({"pow", 2, /*Pure=*/true, 120, [](const Word *A) {
         return Word::fromFloat(std::pow(A[0].asFloat(), A[1].asFloat()));
       }});
}

} // namespace vm
} // namespace dyc
