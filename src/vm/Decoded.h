//===- vm/Decoded.h - Predecoded translation cache -------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VM's staged execution substrate: a per-CodeObject translation built
/// lazily on first execution, mirroring DyC's own set-up-once/run-many
/// story at the host level. A translation lowers the bytecode into
///
///  * a decoded instruction stream — one fixed-size DecodedInstr per PC
///    with a resolved handler index, copied operands, the precomputed
///    CostModel charge, and quickened superinstructions for the
///    straight-line idioms the specializer emits (ConstI feeding Add,
///    Mov before Br, hole-patched ConstI runs, compare-and-branch); and
///
///  * basic-block "superblocks" — per-block cycle sums, instruction
///    counts, and I-cache line-touch segments, so the hot loop charges
///    cycles, checks fuel, and probes the ICache once per block while
///    reproducing the per-instruction engine's counters bit-identically
///    (ICache::accessRun replays each line segment's access sequence
///    exactly).
///
/// Invalidation contract: translations are keyed by the CodeObject's
/// simulated BaseAddr — Program::allocCodeAddr never reuses addresses, so
/// a freed chain's stale translation can never be reached by a new chain —
/// and validated against (Code.size(), Version). The Emitter bumps Version
/// whenever it rewrites already-emitted instructions, and the inline
/// runtime eagerly drops translations of chains it unpublishes (capacity
/// eviction and one-slot displacement). Entering code mid-block (a
/// Dispatch target or ExitRegion resume offset decode didn't predict)
/// promotes that PC to a block leader and re-translates, so steady-state
/// execution is always on the superblock fast path.
///
/// Translations need not be built by the executing VM: an execution
/// backend (backend/TemplateBackend.h) can build a region's translation
/// once at emit time and install it in a PrebuiltTranslations registry;
/// every VM connected to that registry adopts the shared, immutable
/// translation on first touch instead of translating. Adopted
/// translations are validated by exactly the same (BaseAddr, CodeSize,
/// Version) rules, so the invalidation contract is unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_VM_DECODED_H
#define DYC_VM_DECODED_H

#include "vm/Bytecode.h"
#include "vm/CostModel.h"
#include "vm/ICache.h"

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

namespace dyc {
namespace vm {

/// Decoded handler opcodes. The first block mirrors Op one-to-one (same
/// order); quickened superinstructions follow.
enum class DOp : uint16_t {
  ConstI, ConstF, Mov, FMov,
  Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, Neg,
  AddI, SubI, MulI, DivI, RemI, AndI, OrI, XorI, ShlI, ShrI,
  FAdd, FSub, FMul, FDiv, FNeg, FAddI, FSubI, FMulI, FDivI,
  CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
  CmpEqI, CmpNeI, CmpLtI, CmpLeI, CmpGtI, CmpGeI,
  FCmpEq, FCmpNe, FCmpLt, FCmpLe, FCmpGt, FCmpGe,
  IToF, FToI,
  Load, LoadAbs, Store, StoreAbs,
  Call, CallExt,
  Br, CondBr, Ret,
  EnterRegion, Dispatch, ExitRegion,
  Halt,
  // --- Superinstructions (each executes two original instructions) ------
  ConstIConstI, ///< back-to-back constant materializations (hole-patched
                ///< ConstI runs from the Emitter)
  ConstIAdd,    ///< ConstI into a scratch register feeding an Add
  MovBr,        ///< register copy falling into an unconditional branch
  CmpICondBr,   ///< reg-imm compare feeding CondBr; X holds the compare
                ///< kind (0..5 = Eq,Ne,Lt,Le,Gt,Ge)
  CmpCondBr,    ///< reg-reg compare feeding CondBr; X as above
  ConstIDispatch, ///< constant materialization falling into the region
                  ///< trap (the promoted key's last ConstI before a
                  ///< Dispatch/EnterRegion)
  NumHandlers
};

/// One predecoded instruction: resolved handler plus copied operands and
/// the precomputed execution-cost charge. Superinstruction handlers read
/// the second fused instruction's operands from the next slot (the stream
/// stays parallel to the bytecode, so mid-stream entry is always valid).
struct DecodedInstr {
  uint16_t H = 0; ///< DOp
  uint16_t X = 0; ///< handler-specific extra (fused compare kind)
  uint32_t A = 0;
  uint32_t B = 0;
  uint32_t C = 0;
  uint32_t Cost = 0; ///< CostModel::costOf(I, IsDynamicCode)
  int64_t Imm = 0;   ///< shift immediates pre-masked to 0..63
};

/// One I-cache line segment of a block: \p Count consecutive instruction
/// fetches that all land on the line holding \p Addr.
struct DecodedLineSeg {
  uint64_t Addr = 0;
  uint32_t Count = 0;
};

/// One straight-line superblock: [First, First + Count) instructions with
/// their total cycle cost and I-cache touch list precomputed.
struct DecodedBlock {
  uint32_t First = 0;
  uint32_t Count = 0;
  uint64_t CostSum = 0;
  uint32_t SegBegin = 0; ///< index range into DecodedCode::Segs
  uint32_t SegEnd = 0;
};

/// The complete translation of one CodeObject.
struct DecodedCode {
  size_t CodeSize = 0;  ///< validation: CO.Code.size() at build time
  uint32_t Version = 0; ///< validation: CO.Version at build time
  std::vector<DecodedInstr> Instrs; ///< parallel to CO.Code
  std::vector<DecodedBlock> Blocks;
  std::vector<DecodedLineSeg> Segs;
  /// Per PC: index of the block this PC *leads*, or -1 (mid-block).
  std::vector<int32_t> BlockOf;
  /// Entry PCs promoted to leaders after mid-block entries (kept across
  /// re-translations of the same object).
  std::vector<uint32_t> ExtraLeaders;
};

/// Builds the translation of \p CO under \p CM and the I-cache geometry
/// \p IC (line segmentation), treating \p ExtraLeaders as additional block
/// leaders. \p Recycle, if non-null, donates its heap buffers: the
/// translation is rebuilt in place so steady-state re-translation (chain
/// eviction and re-specialization) reuses capacity instead of
/// reallocating.
std::unique_ptr<DecodedCode>
buildDecoded(const CodeObject &CO, const CostModel &CM,
             const ICacheConfig &IC, std::vector<uint32_t> ExtraLeaders,
             std::unique_ptr<DecodedCode> Recycle = nullptr);

/// Backend-installed translations shared across VMs, keyed by the owning
/// CodeObject's simulated BaseAddr. The template execution backend builds
/// a chain's translation once at emit time and installs it here; every VM
/// connected to the registry (VM::setPrebuiltTranslations) adopts it on
/// first touch instead of running translate-on-first-touch. Thread safe:
/// the specializing thread installs/releases while client VMs adopt
/// concurrently. All connected VMs must share the installing VM's
/// CostModel and I-cache geometry — the front ends construct every VM
/// over one configuration, which is also what keeps simulated counters
/// identical across clients.
class PrebuiltTranslations {
public:
  /// Installs (or replaces) the translation for \p BaseAddr.
  void install(uint64_t BaseAddr, std::shared_ptr<const DecodedCode> DC) {
    std::unique_lock<std::shared_mutex> L(Mu);
    Map.insert_or_assign(BaseAddr, std::move(DC));
  }

  /// The installed translation for \p BaseAddr, or null.
  std::shared_ptr<const DecodedCode> find(uint64_t BaseAddr) const {
    std::shared_lock<std::shared_mutex> L(Mu);
    auto It = Map.find(BaseAddr);
    return It == Map.end() ? nullptr : It->second;
  }

  /// Uninstalls \p BaseAddr; returns whether it was present (idempotent).
  /// VMs that already adopted the translation keep their shared reference
  /// until their own caches drop it.
  bool release(uint64_t BaseAddr) {
    std::unique_lock<std::shared_mutex> L(Mu);
    return Map.erase(BaseAddr) != 0;
  }

  size_t size() const {
    std::shared_lock<std::shared_mutex> L(Mu);
    return Map.size();
  }

private:
  mutable std::shared_mutex Mu;
  std::unordered_map<uint64_t, std::shared_ptr<const DecodedCode>> Map;
};

/// The per-VM translation cache. Not thread-safe: each VM owns one. A
/// cache entry either owns a translation this VM built or holds a shared
/// reference to a backend-prebuilt one adopted from a
/// PrebuiltTranslations registry.
class DecodedCache {
public:
  /// Returns the (valid) translation of \p CO, building or rebuilding it
  /// if absent or stale.
  const DecodedCode *get(const CodeObject &CO, const CostModel &CM,
                         const ICacheConfig &IC);

  /// Re-translates \p CO with \p PC promoted to a block leader. Returns
  /// the new translation, or null if the promotion budget is exhausted
  /// (the caller falls back to single-stepping).
  const DecodedCode *promoteLeader(const CodeObject &CO, uint32_t PC,
                                   const CostModel &CM,
                                   const ICacheConfig &IC);

  /// Drops the translation of \p CO (the runtime unpublished its chain).
  /// An owned translation's buffers are kept on a small spare list and
  /// donated to the next build; an adopted translation's shared reference
  /// is simply released (the registry or other adopters may still hold it).
  void invalidate(const CodeObject &CO) {
    auto It = Map.find(CO.BaseAddr);
    if (It == Map.end())
      return;
    if (LastDC == dcOf(It->second))
      LastDC = nullptr;
    if (It->second.Owned && Spares.size() < MaxSpares)
      Spares.push_back(std::move(It->second.Owned));
    Map.erase(It);
  }

  void clear() {
    Map.clear();
    LastDC = nullptr;
  }
  size_t size() const { return Map.size(); }
  uint64_t builds() const { return Builds; }
  uint64_t adopts() const { return Adopts; }

  /// Connects this cache to a backend's shared translation registry (null
  /// disconnects). The registry must outlive the cache or be detached
  /// first; VM::setPrebuiltTranslations keeps it alive.
  void setRegistry(const PrebuiltTranslations *R) { Registry = R; }

private:
  /// One cache entry: exactly one of the two pointers is set.
  struct Slot {
    std::unique_ptr<DecodedCode> Owned;
    std::shared_ptr<const DecodedCode> Adopted;
  };

  static const DecodedCode *dcOf(const Slot &S) {
    return S.Owned ? S.Owned.get() : S.Adopted.get();
  }

  /// Promotion budget per code object; beyond it, unpredicted entry PCs
  /// single-step to the next leader instead of re-translating.
  static constexpr size_t MaxExtraLeaders = 256;

  /// Eviction/re-specialization churn bound: how many retired
  /// translations' buffers are retained for reuse.
  static constexpr size_t MaxSpares = 8;

  std::unique_ptr<DecodedCode> takeSpare() {
    if (Spares.empty())
      return nullptr;
    auto S = std::move(Spares.back());
    Spares.pop_back();
    return S;
  }

  std::unordered_map<uint64_t, Slot> Map;
  std::vector<std::unique_ptr<DecodedCode>> Spares;
  /// Most-recently-returned memo: the VM re-derives the translation on
  /// every frame re-entry (each dispatch and return), which in steady
  /// state is the same object back-to-back.
  uint64_t LastAddr = 0;
  const DecodedCode *LastDC = nullptr;
  uint64_t Builds = 0;
  uint64_t Adopts = 0;
  const PrebuiltTranslations *Registry = nullptr;
};

} // namespace vm
} // namespace dyc

#endif // DYC_VM_DECODED_H
