//===- vm/ICache.cpp -------------------------------------------------------===//

#include "vm/ICache.h"

#include "support/Support.h"

namespace dyc {
namespace vm {

ICache::ICache(const ICacheConfig &Config) : Cfg(Config) {
  if (Cfg.BlockBytes == 0 || (Cfg.BlockBytes & (Cfg.BlockBytes - 1)))
    fatal("I-cache block size must be a power of two");
  if (Cfg.Assoc == 0)
    fatal("I-cache associativity must be >= 1");
  uint32_t NumBlocks = Cfg.SizeBytes / Cfg.BlockBytes;
  if (NumBlocks == 0 || NumBlocks % Cfg.Assoc != 0)
    fatal("I-cache geometry does not divide evenly into sets");
  NumSets = NumBlocks / Cfg.Assoc;
  if (NumSets & (NumSets - 1))
    fatal("I-cache set count must be a power of two");
  Lines.resize(static_cast<size_t>(NumSets) * Cfg.Assoc);
}

bool ICache::access(uint64_t Addr) {
  if (!Cfg.Enabled) {
    ++Hits;
    return true;
  }
  ++Clock;
  uint64_t Block = Addr / Cfg.BlockBytes;
  uint32_t Set = static_cast<uint32_t>(Block & (NumSets - 1));
  uint64_t Tag = Block >> __builtin_ctz(NumSets);
  Line *SetBase = &Lines[static_cast<size_t>(Set) * Cfg.Assoc];

  Line *Victim = nullptr;
  bool VictimLive = false;
  for (uint32_t W = 0; W != Cfg.Assoc; ++W) {
    Line &L = SetBase[W];
    bool Live = resident(L);
    if (Live && L.Tag == Tag) {
      L.LastUse = Clock;
      ++Hits;
      return true;
    }
    if (!Victim || !Live || (VictimLive && L.LastUse < Victim->LastUse)) {
      Victim = &L;
      VictimLive = Live;
    }
  }
  Victim->Valid = true;
  Victim->Epoch = Epoch;
  Victim->Tag = Tag;
  Victim->LastUse = Clock;
  ++Misses;
  return false;
}

bool ICache::accessRun(uint64_t Addr, uint32_t Count) {
  if (!Cfg.Enabled) {
    Hits += Count;
    return true;
  }
  bool Hit = access(Addr);
  if (Count > 1) {
    // The remaining Count-1 fetches hit the line access() just installed
    // or refreshed; replay their clock ticks and recency in one step.
    Clock += Count - 1;
    Hits += Count - 1;
    uint64_t Block = Addr / Cfg.BlockBytes;
    uint32_t Set = static_cast<uint32_t>(Block & (NumSets - 1));
    uint64_t Tag = Block >> __builtin_ctz(NumSets);
    Line *SetBase = &Lines[static_cast<size_t>(Set) * Cfg.Assoc];
    for (uint32_t W = 0; W != Cfg.Assoc; ++W) {
      Line &L = SetBase[W];
      if (resident(L) && L.Tag == Tag) {
        L.LastUse = Clock;
        break;
      }
    }
  }
  return Hit;
}

void ICache::flush() { ++Epoch; }

void ICache::invalidateRange(uint64_t Addr, uint64_t Bytes) {
  if (!Cfg.Enabled || Bytes == 0)
    return;
  uint64_t FirstBlock = Addr / Cfg.BlockBytes;
  uint64_t LastBlock = (Addr + Bytes - 1) / Cfg.BlockBytes;
  uint32_t Shift = static_cast<uint32_t>(__builtin_ctz(NumSets));
  for (size_t I = 0; I != Lines.size(); ++I) {
    Line &L = Lines[I];
    if (!resident(L))
      continue;
    uint32_t Set = static_cast<uint32_t>(I / Cfg.Assoc);
    uint64_t Block = (L.Tag << Shift) | Set;
    if (Block >= FirstBlock && Block <= LastBlock)
      L.Valid = false;
  }
}

} // namespace vm
} // namespace dyc
