//===- vm/Bytecode.h - The target instruction set -------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode executed by the abstract machine. Both statically compiled
/// code (lowered from the IR) and dynamically generated code (emitted by the
/// run-time specializer) use this single format, executing in the same
/// register frame — this mirrors DyC's seamless treatment of registers
/// across dynamic-region boundaries (paper section 2.1).
///
/// The ISA is deliberately Alpha-flavored: a load/store RISC over 64-bit
/// registers, with separate integer and floating-point operations and
/// reg-immediate forms ("fit integer static operands into instruction
/// immediate fields", section 2.2.7). Each instruction occupies 4 bytes of
/// simulated instruction space for the I-cache model.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_VM_BYTECODE_H
#define DYC_VM_BYTECODE_H

#include "support/Support.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dyc {
namespace vm {

/// Bytecode operations. Register operands name slots in the current frame;
/// branch targets are absolute instruction indices within the current code
/// object.
enum class Op : uint8_t {
  // Constants and moves.
  ConstI, ///< A <- Imm (signed integer)
  ConstF, ///< A <- Imm (bit pattern of a double)
  Mov,    ///< A <- R[B] (integer move)
  FMov,   ///< A <- R[B] (floating move; costs as much as FMul on the Alpha)

  // Integer arithmetic, register-register.
  Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, Neg,

  // Integer arithmetic, register-immediate.
  AddI, SubI, MulI, DivI, RemI, AndI, OrI, XorI, ShlI, ShrI,

  // Floating-point arithmetic.
  FAdd, FSub, FMul, FDiv, FNeg,
  FAddI, FSubI, FMulI, FDivI, ///< Imm holds the bit pattern of a double.

  // Comparisons; result is 0/1 in an integer register.
  CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
  CmpEqI, CmpNeI, CmpLtI, CmpLeI, CmpGtI, CmpGeI,
  FCmpEq, FCmpNe, FCmpLt, FCmpLe, FCmpGt, FCmpGe,

  // Conversions.
  IToF, FToI,

  // Memory (word-addressed; one Word per cell).
  Load,     ///< A <- Mem[R[B] + Imm]
  LoadAbs,  ///< A <- Mem[Imm]
  Store,    ///< Mem[R[B] + Imm] <- R[A]
  StoreAbs, ///< Mem[Imm] <- R[A]

  // Calls. Imm = callee index; args are R[B]..R[B+C-1], copied to the
  // callee's R[0..C); the return value lands in R[A].
  Call,
  CallExt, ///< Imm = external-function index.

  // Control flow.
  Br,     ///< pc <- B
  CondBr, ///< pc <- (R[A] != 0) ? B : C
  Ret,    ///< return R[A]; A == NoReg returns void.

  // DyC run-time interface.
  EnterRegion, ///< Imm = region id. Traps to the run-time, which dispatches
               ///< through the region-entry cache and may invoke the
               ///< specializer; execution resumes in generated code.
  Dispatch,    ///< Imm = dispatch-descriptor id. Emitted at dynamic-to-static
               ///< promotion points inside generated code.
  ExitRegion,  ///< B = resume offset in the function's static code.

  Halt, ///< Stop the machine (top-level driver use only).
};

/// Number of distinct opcodes.
constexpr unsigned NumOps = static_cast<unsigned>(Op::Halt) + 1;

/// Sentinel register meaning "no register" (e.g. void returns).
constexpr uint32_t NoReg = 0xffffffffu;

/// One bytecode instruction.
struct Instr {
  Op Opcode = Op::Halt;
  uint32_t A = 0;
  uint32_t B = 0;
  uint32_t C = 0;
  int64_t Imm = 0;

  Instr() = default;
  Instr(Op O, uint32_t A, uint32_t B = 0, uint32_t C = 0, int64_t Imm = 0)
      : Opcode(O), A(A), B(B), C(C), Imm(Imm) {}
};

/// A compiled unit of bytecode. Static code objects hold a lowered function;
/// the run-time appends generated code for a region to a growing code object.
struct CodeObject {
  std::vector<Instr> Code;
  uint32_t NumRegs = 0;
  /// Simulated base address for the I-cache model. Each instruction is 4
  /// bytes of instruction space.
  uint64_t BaseAddr = 0;
  /// True for run-time-generated code buffers (unscheduled code pays the
  /// cost model's surcharge).
  bool IsDynamicCode = false;
  /// Bumped on every rewrite of already-emitted instructions (branch
  /// patching, hole filling). The VM's predecoded translation cache
  /// validates against (BaseAddr, Code.size(), Version), so a rewrite
  /// forces lazy re-decode instead of executing a stale translation.
  uint32_t Version = 0;
  std::string Name;

  uint64_t addrOf(size_t PC) const { return BaseAddr + PC * 4; }
};

/// Returns the mnemonic for \p O.
const char *opName(Op O);

/// True for Br/CondBr/Ret/EnterRegion/Dispatch/ExitRegion/Halt.
bool isTerminatorLike(Op O);

/// Renders \p I for debugging dumps.
std::string toString(const Instr &I);

/// Disassembles a whole code object (one instruction per line, with
/// indices), used by examples to show residual code a la Figures 3 and 4.
std::string disassemble(const CodeObject &CO);

} // namespace vm
} // namespace dyc

#endif // DYC_VM_BYTECODE_H
