//===- vm/Decoded.cpp - Predecoded translation builder ---------------------===//

#include "vm/Decoded.h"

#include <algorithm>

namespace dyc {
namespace vm {

namespace {

// The direct-mapped part of DOp mirrors Op one-to-one.
static_assert(static_cast<uint16_t>(DOp::ConstI) ==
              static_cast<uint16_t>(Op::ConstI));
static_assert(static_cast<uint16_t>(DOp::ShrI) ==
              static_cast<uint16_t>(Op::ShrI));
static_assert(static_cast<uint16_t>(DOp::FCmpGe) ==
              static_cast<uint16_t>(Op::FCmpGe));
static_assert(static_cast<uint16_t>(DOp::Halt) ==
              static_cast<uint16_t>(Op::Halt));

bool endsBlock(Op O) {
  // Call ends a block too: control leaves the code object and resumes at
  // the next PC (a leader) only after the callee returns.
  return isTerminatorLike(O) || O == Op::Call;
}

bool isConstLike(Op O) { return O == Op::ConstI || O == Op::ConstF; }
bool isMovLike(Op O) { return O == Op::Mov || O == Op::FMov; }

/// Compare kind 0..5 = Eq,Ne,Lt,Le,Gt,Ge for the fused compare-and-branch
/// handlers; -1 if \p O is not a reg-imm integer compare.
int cmpImmKind(Op O) {
  switch (O) {
  case Op::CmpEqI: return 0;
  case Op::CmpNeI: return 1;
  case Op::CmpLtI: return 2;
  case Op::CmpLeI: return 3;
  case Op::CmpGtI: return 4;
  case Op::CmpGeI: return 5;
  default: return -1;
  }
}

int cmpRegKind(Op O) {
  switch (O) {
  case Op::CmpEq: return 0;
  case Op::CmpNe: return 1;
  case Op::CmpLt: return 2;
  case Op::CmpLe: return 3;
  case Op::CmpGt: return 4;
  case Op::CmpGe: return 5;
  default: return -1;
  }
}

DecodedInstr decodeOne(const Instr &I, const CostModel &CM, bool InDynCode) {
  DecodedInstr D;
  Op O = I.Opcode;
  // ConstF and FMov have the same register semantics as ConstI and Mov
  // (the cost difference lives in the precomputed Cost field), so they
  // share handlers — which also lets the fusion pass treat float chains
  // and integer chains uniformly.
  if (O == Op::ConstF)
    D.H = static_cast<uint16_t>(DOp::ConstI);
  else if (O == Op::FMov)
    D.H = static_cast<uint16_t>(DOp::Mov);
  else
    D.H = static_cast<uint16_t>(O);
  D.A = I.A;
  D.B = I.B;
  D.C = I.C;
  D.Imm = I.Imm;
  if (O == Op::ShlI || O == Op::ShrI)
    D.Imm = I.Imm & 63; // pre-resolve the shift-amount mask
  D.Cost = CM.costOf(I, InDynCode);
  return D;
}

} // namespace

std::unique_ptr<DecodedCode>
buildDecoded(const CodeObject &CO, const CostModel &CM,
             const ICacheConfig &IC, std::vector<uint32_t> ExtraLeaders,
             std::unique_ptr<DecodedCode> Recycle) {
  const size_t N = CO.Code.size();
  auto DC = Recycle ? std::move(Recycle) : std::make_unique<DecodedCode>();
  DC->Instrs.clear();
  DC->Blocks.clear();
  DC->Segs.clear();
  DC->BlockOf.clear();
  DC->CodeSize = N;
  DC->Version = CO.Version;
  DC->ExtraLeaders = std::move(ExtraLeaders);
  if (N == 0)
    return DC;

  // --- Leaders: entry, promoted entries, branch targets, fall-ins after
  // --- block-ending instructions.
  std::vector<uint8_t> Leader(N, 0);
  Leader[0] = 1;
  for (uint32_t PC : DC->ExtraLeaders)
    if (PC < N)
      Leader[PC] = 1;
  auto Mark = [&](uint64_t PC) {
    if (PC < N)
      Leader[PC] = 1;
  };
  for (size_t I = 0; I != N; ++I) {
    const Instr &In = CO.Code[I];
    switch (In.Opcode) {
    case Op::Br:
      Mark(In.B);
      Mark(I + 1);
      break;
    case Op::CondBr:
      Mark(In.B);
      Mark(In.C);
      Mark(I + 1);
      break;
    case Op::Call:
    case Op::Ret:
    case Op::EnterRegion:
    case Op::Dispatch:
    case Op::ExitRegion: // its B resumes in a *different* code object
    case Op::Halt:
      Mark(I + 1);
      break;
    default:
      break;
    }
  }

  // --- Decoded stream.
  DC->Instrs.resize(N);
  for (size_t I = 0; I != N; ++I)
    DC->Instrs[I] = decodeOne(CO.Code[I], CM, CO.IsDynamicCode);

  // --- Superblocks with cost sums and I-cache line segments.
  const uint32_t LineBytes = IC.BlockBytes ? IC.BlockBytes : 32;
  DC->BlockOf.assign(N, -1);
  size_t I = 0;
  while (I < N) {
    size_t J = I;
    for (;;) {
      bool Ends = endsBlock(CO.Code[J].Opcode);
      ++J;
      if (Ends || J >= N || Leader[J])
        break;
    }
    DecodedBlock B;
    B.First = static_cast<uint32_t>(I);
    B.Count = static_cast<uint32_t>(J - I);
    B.SegBegin = static_cast<uint32_t>(DC->Segs.size());
    uint64_t CurLine = ~0ULL;
    for (size_t K = I; K != J; ++K) {
      B.CostSum += DC->Instrs[K].Cost;
      uint64_t Addr = CO.addrOf(K);
      uint64_t Line = Addr / LineBytes;
      if (Line != CurLine) {
        DC->Segs.push_back({Addr, 1});
        CurLine = Line;
      } else {
        ++DC->Segs.back().Count;
      }
    }
    B.SegEnd = static_cast<uint32_t>(DC->Segs.size());
    DC->BlockOf[I] = static_cast<int32_t>(DC->Blocks.size());
    DC->Blocks.push_back(B);
    I = J;
  }

  // --- Quickening: fuse adjacent pairs within each block.
  for (const DecodedBlock &B : DC->Blocks) {
    uint32_t K = B.First;
    const uint32_t Last = B.First + B.Count - 1;
    while (K < Last) {
      const Instr &X = CO.Code[K];
      const Instr &Y = CO.Code[K + 1];
      DecodedInstr &D = DC->Instrs[K];
      int Kind;
      if (isConstLike(X.Opcode) && isConstLike(Y.Opcode)) {
        D.H = static_cast<uint16_t>(DOp::ConstIConstI);
      } else if (isConstLike(X.Opcode) && Y.Opcode == Op::Add) {
        D.H = static_cast<uint16_t>(DOp::ConstIAdd);
      } else if (isMovLike(X.Opcode) && Y.Opcode == Op::Br) {
        D.H = static_cast<uint16_t>(DOp::MovBr);
      } else if (Y.Opcode == Op::CondBr && Y.A == X.A &&
                 (Kind = cmpImmKind(X.Opcode)) >= 0) {
        D.H = static_cast<uint16_t>(DOp::CmpICondBr);
        D.X = static_cast<uint16_t>(Kind);
      } else if (Y.Opcode == Op::CondBr && Y.A == X.A &&
                 (Kind = cmpRegKind(X.Opcode)) >= 0) {
        D.H = static_cast<uint16_t>(DOp::CmpCondBr);
        D.X = static_cast<uint16_t>(Kind);
      } else if (isConstLike(X.Opcode) && (Y.Opcode == Op::Dispatch ||
                                           Y.Opcode == Op::EnterRegion)) {
        // The specializer materializes the promoted key's constants
        // immediately before the region trap; fuse the last one in.
        D.H = static_cast<uint16_t>(DOp::ConstIDispatch);
      } else {
        ++K;
        continue;
      }
      K += 2; // the fused handler consumes both slots
    }
  }
  return DC;
}

const DecodedCode *DecodedCache::get(const CodeObject &CO, const CostModel &CM,
                                     const ICacheConfig &IC) {
  // The VM calls this on every frame re-entry (each dispatch and return);
  // in steady state it is the same object back-to-back, so a one-entry
  // memo skips the hash find.
  if (LastDC && LastAddr == CO.BaseAddr &&
      LastDC->CodeSize == CO.Code.size() && LastDC->Version == CO.Version)
    return LastDC;
  auto It = Map.find(CO.BaseAddr);
  if (It != Map.end()) {
    const DecodedCode *DC = dcOf(It->second);
    if (DC->CodeSize == CO.Code.size() && DC->Version == CO.Version) {
      LastAddr = CO.BaseAddr;
      LastDC = DC;
      return DC;
    }
    if (It->second.Owned) {
      // Stale (the runtime rewrote the object): re-translate in place,
      // keeping any promoted entry points that are still in range. The
      // leader list is moved to a local first — the old translation is
      // itself the recycle donor.
      std::vector<uint32_t> Extra = std::move(It->second.Owned->ExtraLeaders);
      auto ND = buildDecoded(CO, CM, IC, std::move(Extra),
                             std::move(It->second.Owned));
      ++Builds;
      It->second.Owned = std::move(ND);
      LastAddr = CO.BaseAddr;
      LastDC = It->second.Owned.get();
      return LastDC;
    }
    // Stale adoption: the backend reinstalled after a rewrite. Drop the
    // shared reference and fall through to the miss path, which consults
    // the registry again.
    if (LastDC == DC)
      LastDC = nullptr;
    Map.erase(It);
  }
  // Miss: adopt a backend-prebuilt translation when one is installed and
  // current, skipping translate-on-first-touch entirely.
  if (Registry) {
    if (auto Pre = Registry->find(CO.BaseAddr)) {
      if (Pre->CodeSize == CO.Code.size() && Pre->Version == CO.Version) {
        ++Adopts;
        Slot S;
        S.Adopted = std::move(Pre);
        auto Res = Map.emplace(CO.BaseAddr, std::move(S));
        LastAddr = CO.BaseAddr;
        LastDC = Res.first->second.Adopted.get();
        return LastDC;
      }
    }
  }
  ++Builds;
  Slot S;
  S.Owned = buildDecoded(CO, CM, IC, {}, takeSpare());
  auto Res = Map.emplace(CO.BaseAddr, std::move(S));
  LastAddr = CO.BaseAddr;
  LastDC = Res.first->second.Owned.get();
  return LastDC;
}

const DecodedCode *DecodedCache::promoteLeader(const CodeObject &CO,
                                               uint32_t PC,
                                               const CostModel &CM,
                                               const ICacheConfig &IC) {
  std::vector<uint32_t> Extra;
  std::unique_ptr<DecodedCode> Recycle;
  auto It = Map.find(CO.BaseAddr);
  if (It != Map.end()) {
    // Copied, not moved: an adopted translation is shared and immutable,
    // and an owned donor is rebuilt below. A prebuilt translation's entry
    // and stub leaders thus survive into the VM-local replacement.
    Extra = dcOf(It->second)->ExtraLeaders;
    if (Extra.size() >= MaxExtraLeaders)
      return nullptr;
    if (LastDC == dcOf(It->second))
      LastDC = nullptr;
    Recycle = std::move(It->second.Owned); // null for adopted slots
    Map.erase(It);
  }
  Extra.push_back(PC);
  Slot S;
  S.Owned = buildDecoded(CO, CM, IC, std::move(Extra), std::move(Recycle));
  ++Builds;
  auto Res = Map.insert_or_assign(CO.BaseAddr, std::move(S));
  LastAddr = CO.BaseAddr;
  LastDC = Res.first->second.Owned.get();
  return LastDC;
}

} // namespace vm
} // namespace dyc
