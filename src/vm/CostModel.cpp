//===- vm/CostModel.cpp ----------------------------------------------------===//

#include "vm/CostModel.h"

namespace dyc {
namespace vm {

uint32_t CostModel::costOf(const Instr &I, bool InDynCode) const {
  uint32_t C = baseCostOf(I);
  if (InDynCode && C > 0) {
    // Lost dual-issue opportunity: about half a slot per instruction,
    // bounded — long-latency operations are latency-bound either way.
    uint32_t Surcharge = C * DynCodePenaltyPct / 100;
    if (Surcharge < 1)
      Surcharge = 1;
    if (Surcharge > 2)
      Surcharge = 2;
    C += Surcharge;
  }
  return C;
}

uint32_t CostModel::baseCostOf(const Instr &I) const {
  switch (I.Opcode) {
  case Op::ConstI:
  case Op::Mov:
  case Op::Add: case Op::Sub: case Op::And: case Op::Or: case Op::Xor:
  case Op::Shl: case Op::Shr: case Op::Neg:
  case Op::AddI: case Op::SubI: case Op::AndI: case Op::OrI: case Op::XorI:
  case Op::ShlI: case Op::ShrI:
  case Op::CmpEq: case Op::CmpNe: case Op::CmpLt: case Op::CmpLe:
  case Op::CmpGt: case Op::CmpGe:
  case Op::CmpEqI: case Op::CmpNeI: case Op::CmpLtI: case Op::CmpLeI:
  case Op::CmpGtI: case Op::CmpGeI:
    return IntAlu;
  case Op::ConstF:
    return IntAlu; // materialize bit pattern
  case Op::FMov:
    return FpMov;
  case Op::Mul: case Op::MulI:
    return IntMul;
  case Op::Div: case Op::Rem: case Op::DivI: case Op::RemI:
    return IntDiv;
  case Op::FAdd: case Op::FSub: case Op::FNeg:
  case Op::FAddI: case Op::FSubI:
    return FpAdd;
  case Op::FMul: case Op::FMulI:
    return FpMul;
  case Op::FDiv: case Op::FDivI:
    return FpDiv;
  case Op::FCmpEq: case Op::FCmpNe: case Op::FCmpLt: case Op::FCmpLe:
  case Op::FCmpGt: case Op::FCmpGe:
    return FpAdd;
  case Op::IToF: case Op::FToI:
    return Conv;
  case Op::Load: case Op::LoadAbs:
    return LoadHit;
  case Op::Store: case Op::StoreAbs:
    return StoreCost;
  case Op::Call: case Op::CallExt:
    return CallCost;
  case Op::Br:
    return BranchCost;
  case Op::CondBr:
    return CondBranchCost;
  case Op::Ret:
    return RetCost;
  case Op::EnterRegion:
  case Op::Dispatch:
    return 0; // charged by the run-time according to the dispatch policy
  case Op::ExitRegion:
    return BranchCost;
  case Op::Halt:
    return 0;
  }
  return IntAlu;
}

} // namespace vm
} // namespace dyc
