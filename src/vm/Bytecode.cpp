//===- vm/Bytecode.cpp -----------------------------------------------------===//

#include "vm/Bytecode.h"

namespace dyc {
namespace vm {

const char *opName(Op O) {
  switch (O) {
  case Op::ConstI: return "consti";
  case Op::ConstF: return "constf";
  case Op::Mov: return "mov";
  case Op::FMov: return "fmov";
  case Op::Add: return "add";
  case Op::Sub: return "sub";
  case Op::Mul: return "mul";
  case Op::Div: return "div";
  case Op::Rem: return "rem";
  case Op::And: return "and";
  case Op::Or: return "or";
  case Op::Xor: return "xor";
  case Op::Shl: return "shl";
  case Op::Shr: return "shr";
  case Op::Neg: return "neg";
  case Op::AddI: return "addi";
  case Op::SubI: return "subi";
  case Op::MulI: return "muli";
  case Op::DivI: return "divi";
  case Op::RemI: return "remi";
  case Op::AndI: return "andi";
  case Op::OrI: return "ori";
  case Op::XorI: return "xori";
  case Op::ShlI: return "shli";
  case Op::ShrI: return "shri";
  case Op::FAdd: return "fadd";
  case Op::FSub: return "fsub";
  case Op::FMul: return "fmul";
  case Op::FDiv: return "fdiv";
  case Op::FNeg: return "fneg";
  case Op::FAddI: return "faddi";
  case Op::FSubI: return "fsubi";
  case Op::FMulI: return "fmuli";
  case Op::FDivI: return "fdivi";
  case Op::CmpEq: return "cmpeq";
  case Op::CmpNe: return "cmpne";
  case Op::CmpLt: return "cmplt";
  case Op::CmpLe: return "cmple";
  case Op::CmpGt: return "cmpgt";
  case Op::CmpGe: return "cmpge";
  case Op::CmpEqI: return "cmpeqi";
  case Op::CmpNeI: return "cmpnei";
  case Op::CmpLtI: return "cmplti";
  case Op::CmpLeI: return "cmplei";
  case Op::CmpGtI: return "cmpgti";
  case Op::CmpGeI: return "cmpgei";
  case Op::FCmpEq: return "fcmpeq";
  case Op::FCmpNe: return "fcmpne";
  case Op::FCmpLt: return "fcmplt";
  case Op::FCmpLe: return "fcmple";
  case Op::FCmpGt: return "fcmpgt";
  case Op::FCmpGe: return "fcmpge";
  case Op::IToF: return "itof";
  case Op::FToI: return "ftoi";
  case Op::Load: return "load";
  case Op::LoadAbs: return "loadabs";
  case Op::Store: return "store";
  case Op::StoreAbs: return "storeabs";
  case Op::Call: return "call";
  case Op::CallExt: return "callext";
  case Op::Br: return "br";
  case Op::CondBr: return "condbr";
  case Op::Ret: return "ret";
  case Op::EnterRegion: return "enter_region";
  case Op::Dispatch: return "dispatch";
  case Op::ExitRegion: return "exit_region";
  case Op::Halt: return "halt";
  }
  return "<bad-op>";
}

bool isTerminatorLike(Op O) {
  switch (O) {
  case Op::Br:
  case Op::CondBr:
  case Op::Ret:
  case Op::EnterRegion:
  case Op::Dispatch:
  case Op::ExitRegion:
  case Op::Halt:
    return true;
  default:
    return false;
  }
}

namespace {

bool hasFloatImm(Op O) {
  switch (O) {
  case Op::ConstF:
  case Op::FAddI:
  case Op::FSubI:
  case Op::FMulI:
  case Op::FDivI:
    return true;
  default:
    return false;
  }
}

} // namespace

std::string toString(const Instr &I) {
  std::string S = opName(I.Opcode);
  switch (I.Opcode) {
  case Op::ConstI:
    return S + formatString(" r%u, %lld", I.A, (long long)I.Imm);
  case Op::ConstF:
    return S + formatString(" r%u, %g", I.A, Word{(uint64_t)I.Imm}.asFloat());
  case Op::Mov:
  case Op::FMov:
  case Op::Neg:
  case Op::FNeg:
  case Op::IToF:
  case Op::FToI:
    return S + formatString(" r%u, r%u", I.A, I.B);
  case Op::Load:
    return S + formatString(" r%u, [r%u + %lld]", I.A, I.B, (long long)I.Imm);
  case Op::LoadAbs:
    return S + formatString(" r%u, [%lld]", I.A, (long long)I.Imm);
  case Op::Store:
    return S + formatString(" [r%u + %lld], r%u", I.B, (long long)I.Imm, I.A);
  case Op::StoreAbs:
    return S + formatString(" [%lld], r%u", (long long)I.Imm, I.A);
  case Op::Call:
    return S + formatString(" r%u, fn%lld, args r%u..+%u", I.A,
                            (long long)I.Imm, I.B, I.C);
  case Op::CallExt:
    return S + formatString(" r%u, ext%lld, args r%u..+%u", I.A,
                            (long long)I.Imm, I.B, I.C);
  case Op::Br:
    return S + formatString(" @%u", I.B);
  case Op::CondBr:
    return S + formatString(" r%u, @%u, @%u", I.A, I.B, I.C);
  case Op::Ret:
    return I.A == NoReg ? S : S + formatString(" r%u", I.A);
  case Op::EnterRegion:
    return S + formatString(" region%lld", (long long)I.Imm);
  case Op::Dispatch:
    return S + formatString(" point%lld", (long long)I.Imm);
  case Op::ExitRegion:
    return S + formatString(" resume @%u", I.B);
  case Op::Halt:
    return S;
  default:
    break;
  }
  if (hasFloatImm(I.Opcode))
    return S + formatString(" r%u, r%u, %g", I.A, I.B,
                            Word{(uint64_t)I.Imm}.asFloat());
  // Reg-imm integer forms.
  switch (I.Opcode) {
  case Op::AddI: case Op::SubI: case Op::MulI: case Op::DivI: case Op::RemI:
  case Op::AndI: case Op::OrI: case Op::XorI: case Op::ShlI: case Op::ShrI:
  case Op::CmpEqI: case Op::CmpNeI: case Op::CmpLtI: case Op::CmpLeI:
  case Op::CmpGtI: case Op::CmpGeI:
    return S + formatString(" r%u, r%u, %lld", I.A, I.B, (long long)I.Imm);
  default:
    break;
  }
  // Three-register forms.
  return S + formatString(" r%u, r%u, r%u", I.A, I.B, I.C);
}

std::string disassemble(const CodeObject &CO) {
  std::string Out;
  Out += formatString("; code object '%s': %zu instructions, %u regs\n",
                      CO.Name.c_str(), CO.Code.size(), CO.NumRegs);
  for (size_t I = 0; I != CO.Code.size(); ++I)
    Out += formatString("%5zu:  %s\n", I, toString(CO.Code[I]).c_str());
  return Out;
}

} // namespace vm
} // namespace dyc
