//===- runtime/UnrollDriver.h - Memoized polyvariant walk -------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top layer of the specializer: one invocation of the dynamic
/// compiler. Drives a memoized worklist over (context, static-values)
/// pairs — polyvariant specialization. Re-reaching a pair emits a jump to
/// the existing code, which is what terminates and shapes complete loop
/// unrolling: a simple counted loop unrolls into a linear chain; loops
/// whose iterations diverge produce a directed graph of unrolled bodies
/// (multi-way unrolling, paper section 2.2.4).
///
/// The driver executes set-up programs (static evaluation, static loads,
/// memoized static calls), hands planned dynamic instructions to the
/// DeferralEngine, lays out blocks with fall-through chaining, patches
/// forward branches once targets are placed, and interns run-time dispatch
/// sites through the RegionExecutionCore.
///
/// One driver emits one code chain. It holds no state that outlives the
/// run; everything shared across runs lives in RegionState / the core.
/// The chain buffer the driver fills was opened by the core's execution
/// backend (ExecutionBackend::beginRegion), and the finished emission —
/// code plus the stub maps, i.e. every outside entry PC — goes back
/// through ExecutionBackend::compileRegion; the driver itself is
/// backend-independent.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_RUNTIME_UNROLLDRIVER_H
#define DYC_RUNTIME_UNROLLDRIVER_H

#include "runtime/Deferral.h"
#include "runtime/Emitter.h"
#include "runtime/PlanRunner.h"
#include "runtime/RegionExec.h"

#include <algorithm>
#include <deque>
#include <optional>

namespace dyc {
namespace runtime {

/// Plan-mode memoization table: open-addressed with linear probing,
/// power-of-two sized, keys interned into a flat word pool, hashes stored
/// per slot. One hash and one probe per operation, no per-node
/// allocation, bulk-freed through the run's scratch arena. Host-only
/// machinery — key composition and lookup never charge the simulated
/// cost model, so swapping the container is invisible to every counter.
///
/// Value slots live in a chunked store, so the returned value pointers
/// stay valid for the driver's lifetime even as the slot array rehashes.
/// Work items and branch patches hold them as direct handles, which lets
/// placement and patch resolution skip key recomposition entirely.
class PlanMemo {
public:
  explicit PlanMemo(BumpArena &A)
      : Slots(ArenaAllocator<Slot>(A)), Pool(ArenaAllocator<uint64_t>(A)),
        Values(ArenaAllocator<int64_t>(A)) {
    Slots.resize(64);
  }

  int64_t *find(const uint64_t *K, size_t N, uint64_t H) {
    const size_t Mask = Slots.size() - 1;
    for (size_t I = H & Mask;; I = (I + 1) & Mask) {
      Slot &S = Slots[I];
      if (!S.Used)
        return nullptr;
      if (S.H == H && S.Len == N &&
          std::equal(K, K + N, Pool.data() + S.Off))
        return S.V;
    }
  }

  /// Returns the value slot for the key, inserting an uninitialized slot
  /// if absent; \p Fresh reports whether the insert happened.
  int64_t *findOrInsert(const uint64_t *K, size_t N, uint64_t H,
                        bool &Fresh) {
    if ((Count + 1) * 4 > Slots.size() * 3)
      grow();
    const size_t Mask = Slots.size() - 1;
    for (size_t I = H & Mask;; I = (I + 1) & Mask) {
      Slot &S = Slots[I];
      if (!S.Used) {
        S.Used = true;
        S.H = H;
        S.Off = static_cast<uint32_t>(Pool.size());
        S.Len = static_cast<uint32_t>(N);
        Pool.insert(Pool.end(), K, K + N);
        Values.push_back(0);
        S.V = &Values.back();
        ++Count;
        Fresh = true;
        return S.V;
      }
      if (S.H == H && S.Len == N &&
          std::equal(K, K + N, Pool.data() + S.Off)) {
        Fresh = false;
        return S.V;
      }
    }
  }

  static uint64_t hashWords(const uint64_t *K, size_t N) {
    uint64_t H = 0xcbf29ce484222325ull;
    for (size_t I = 0; I != N; ++I) {
      H ^= K[I];
      H *= 1099511628211ull;
    }
    return H;
  }

private:
  struct Slot {
    uint64_t H = 0;
    int64_t *V = nullptr; ///< into Values: survives slot-array rehashes
    uint32_t Off = 0;
    uint32_t Len = 0;
    bool Used = false;
  };

  void grow() {
    std::vector<Slot, ArenaAllocator<Slot>> Next(Slots.get_allocator());
    Next.resize(Slots.size() * 2);
    const size_t Mask = Next.size() - 1;
    for (const Slot &S : Slots) {
      if (!S.Used)
        continue;
      size_t I = S.H & Mask;
      while (Next[I].Used)
        I = (I + 1) & Mask;
      Next[I] = S;
    }
    Slots = std::move(Next);
  }

  std::vector<Slot, ArenaAllocator<Slot>> Slots;
  std::vector<uint64_t, ArenaAllocator<uint64_t>> Pool;
  std::deque<int64_t, ArenaAllocator<int64_t>> Values; ///< stable addresses
  size_t Count = 0;
};

class UnrollDriver {
public:
  /// Emits into \p Buf with this run's own stub maps. The caller (the
  /// core's specializeInto) passes a fresh chain buffer and fresh maps, so
  /// every run is a self-contained, immutable-after-publication chain.
  /// \p Scratch backs the run's worklist, memo table, and patch list; the
  /// caller opens a BumpArena::Scope around the driver's lifetime so the
  /// memory is reclaimed in bulk when the run finishes.
  /// \p Plan, when non-null, is the region's staged emit plan: block
  /// set-up programs execute through the PlanRunner (with legacy
  /// fallbacks per Generic step) and memo keys compose through the plan's
  /// flattened key-register lists. Null runs the legacy walk unchanged.
  UnrollDriver(RegionExecutionCore &Core, RegionState &R, uint32_t Ordinal,
               vm::VM &M, const OptFlags &Flags, vm::CodeObject &Buf,
               std::map<ir::BlockId, uint32_t> &ExitStubs,
               std::map<uint32_t, uint32_t> &DispatchStubs,
               std::map<ir::BlockId, uint32_t> &OsrEntries,
               BumpArena &Scratch, const cogen::EmitPlan *Plan = nullptr)
      : Core(Core), R(R), Ordinal(Ordinal), M(M), CM(M.costModel()),
        GX(R.GX), Buf(Buf), ExitStubs(ExitStubs),
        DispatchStubs(DispatchStubs), OsrEntries(OsrEntries),
        E(Buf, R.Stats, M, R.GX, Flags.MaxRegionInstrs),
        D(E, R.Stats, M, Flags, R.GX), MaxRegionInstrs(Flags.MaxRegionInstrs),
        Plan(Plan),
        PR(M, R, Buf, Flags.MaxRegionInstrs, D),
        Queue(ArenaAllocator<Item>(Scratch)),
        Memo(std::less<std::vector<uint64_t>>(),
             ArenaAllocator<MemoPair>(Scratch)),
        PM(Scratch), Patches(ArenaAllocator<Patch>(Scratch)) {}

  /// Runs the generating extension from \p Ctx0 with static values
  /// \p Vals0; returns the entry PC within the buffer.
  uint32_t run(uint32_t Ctx0, std::vector<Word> Vals0);

private:
  struct Item {
    uint32_t Ctx = 0;
    std::vector<Word> Vals;
    /// The item's memo value slot (queued with -1 by the single-probe
    /// find-or-queue on the edge that produced it). Stable for the
    /// driver's lifetime in both modes; plan-mode place() assigns the
    /// placement pc through it without recomposing the key. Null only
    /// for CondBr fall-throughs, which run() resolves before placing.
    int64_t *MemoVal = nullptr;
  };

  struct Patch {
    size_t PC = 0;
    bool FieldC = false;
    std::vector<uint64_t> Key; ///< legacy walk: re-probed at resolution
    int64_t *Val = nullptr;    ///< plan mode: target's stable memo slot
  };

  /// Branch-target resolution for an edge. Fresh Ctx edges yield no PC;
  /// the caller may use one as fall-through.
  struct EdgeLabel {
    bool Known = false;
    uint32_t PC = 0;
    bool FreshCtx = false; ///< unseen context: caller picks fall-through
  };

  void charge(uint64_t Cycles) { M.chargeDynComp(Cycles); }
  uint32_t bufSize() const {
    return static_cast<uint32_t>(Buf.Code.size());
  }

  /// Composes the memo key of (\p Ctx, \p Vals) into the reused KeyScratch
  /// buffer and returns it. Plan mode iterates the plan's flattened
  /// key-register list; legacy walks the context's StaticIn bit set — the
  /// two produce identical keys (ascending register order).
  const std::vector<uint64_t> &keyRef(uint32_t Ctx,
                                      const std::vector<Word> &Vals);

  /// Memo primitives, routed to the open-addressed PlanMemo in plan mode
  /// and the legacy ordered Memo otherwise. Key composition never charges
  /// the simulated cost model, so the split is host-time only.
  /// \p K composed by keyRef reuses the hash computed during composition;
  /// any other key is rehashed.
  uint64_t hashOf(const std::vector<uint64_t> &K) const {
    return &K == &KeyScratch ? KeyHashScratch
                             : PlanMemo::hashWords(K.data(), K.size());
  }
  int64_t *memoFind(const std::vector<uint64_t> &K);
  /// Legacy-walk placement: re-probe the ordered memo and assign. Plan
  /// mode assigns through the item's stable MemoVal handle instead.
  void memoAssign(const std::vector<uint64_t> &K, int64_t V) { Memo[K] = V; }
  /// Fused find + queue-mark: one probe resolves the key, queuing it
  /// (value -1) when first seen. \p Fresh reports the first-seen case.
  /// The returned slot pointer is stable for the driver's lifetime in
  /// both modes (chunked store / node-based map). Identical memo contents
  /// and emitted code to find-then-mark; the fusion only drops the edge
  /// paths' duplicate composition and probe.
  int64_t *memoFindOrQueue(const std::vector<uint64_t> &K, bool &Fresh) {
    if (Plan) {
      int64_t *V = PM.findOrInsert(K.data(), K.size(), hashOf(K), Fresh);
      if (Fresh)
        *V = -1;
      return V;
    }
    auto [It, Inserted] = Memo.emplace(K, -1);
    Fresh = Inserted;
    return &It->second;
  }
  /// Records a forward-branch patch against the target's memo slot \p V
  /// (plan mode: resolved by dereferencing the stable handle). The legacy
  /// walk stores a key copy and re-probes at resolution, as it always has.
  void addPatch(size_t PC, bool FieldC, const std::vector<uint64_t> &K,
                int64_t *V) {
    if (Plan)
      Patches.push_back({PC, FieldC, {}, V});
    else
      Patches.push_back({PC, FieldC, K, nullptr});
  }

  void execSetup(const cogen::SetupOp &Op, std::vector<Word> &Vals);

  /// Emits the constants for static registers demoted across \p E (the
  /// static-to-dynamic boundary: their run-time registers must now hold
  /// the values the specializer has been tracking).
  void materializeForEdge(const bta::Edge &Ed, const std::vector<Word> &Vals);

  /// Handles an unconditional continuation. Returns a fall-through item if
  /// the target is fresh.
  std::optional<Item> continueEdge(const bta::Edge &Ed, Item &Cur);

  uint32_t makeSite(uint32_t PromoIdx, const std::vector<Word> &Vals);

  EdgeLabel labelFor(const bta::Edge &Ed, const std::vector<Word> &Vals,
                     size_t BranchPC, bool FieldC);

  std::optional<Item> place(Item &Cur);

  RegionExecutionCore &Core;
  RegionState &R;
  uint32_t Ordinal;
  vm::VM &M;
  const vm::CostModel &CM;
  const cogen::GenExtFunction &GX;
  vm::CodeObject &Buf;
  std::map<ir::BlockId, uint32_t> &ExitStubs;
  std::map<uint32_t, uint32_t> &DispatchStubs;
  /// This run's once-placed IR-block entry pcs (see CodeChain::OsrEntries).
  /// Filled from the flat OsrState array when the run finishes; place()
  /// itself only touches the array (one index per placement instead of
  /// ordered-map traffic on the specializer's hottest path).
  std::map<ir::BlockId, uint32_t> &OsrEntries;
  /// Per-block placement state for this run, indexed by IR block id:
  /// -1 unseen, -2 placed more than once (loop unrolling — disqualified
  /// for OSR), else the block's unique entry pc. Driver-local because
  /// RegionState::CtxPlacements accumulates across runs.
  std::vector<int64_t> OsrState;

  Emitter E;
  DeferralEngine D;
  size_t MaxRegionInstrs;      ///< Flags.MaxRegionInstrs (buffer reserve)
  const cogen::EmitPlan *Plan; ///< null = legacy walk
  PlanRunner PR;

  using MemoPair = std::pair<const std::vector<uint64_t>, int64_t>;
  using MemoMap = std::map<std::vector<uint64_t>, int64_t,
                           std::less<std::vector<uint64_t>>,
                           ArenaAllocator<MemoPair>>;

  std::deque<Item, ArenaAllocator<Item>> Queue;
  MemoMap Memo; ///< -1 queued, else PC (legacy walk)
  PlanMemo PM;  ///< same contract, open-addressed (plan mode)
  std::vector<uint64_t> KeyScratch; ///< keyRef's reused composition buffer
  uint64_t KeyHashScratch = 0; ///< FNV-1a of KeyScratch (plan mode)
  std::vector<Patch, ArenaAllocator<Patch>> Patches;
};

} // namespace runtime
} // namespace dyc

#endif // DYC_RUNTIME_UNROLLDRIVER_H
