//===- runtime/UnrollDriver.h - Memoized polyvariant walk -------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top layer of the specializer: one invocation of the dynamic
/// compiler. Drives a memoized worklist over (context, static-values)
/// pairs — polyvariant specialization. Re-reaching a pair emits a jump to
/// the existing code, which is what terminates and shapes complete loop
/// unrolling: a simple counted loop unrolls into a linear chain; loops
/// whose iterations diverge produce a directed graph of unrolled bodies
/// (multi-way unrolling, paper section 2.2.4).
///
/// The driver executes set-up programs (static evaluation, static loads,
/// memoized static calls), hands planned dynamic instructions to the
/// DeferralEngine, lays out blocks with fall-through chaining, patches
/// forward branches once targets are placed, and interns run-time dispatch
/// sites through the RegionExecutionCore.
///
/// One driver emits one code chain. It holds no state that outlives the
/// run; everything shared across runs lives in RegionState / the core.
/// The chain buffer the driver fills was opened by the core's execution
/// backend (ExecutionBackend::beginRegion), and the finished emission —
/// code plus the stub maps, i.e. every outside entry PC — goes back
/// through ExecutionBackend::compileRegion; the driver itself is
/// backend-independent.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_RUNTIME_UNROLLDRIVER_H
#define DYC_RUNTIME_UNROLLDRIVER_H

#include "runtime/Deferral.h"
#include "runtime/Emitter.h"
#include "runtime/RegionExec.h"

#include <deque>
#include <optional>
#include <set>

namespace dyc {
namespace runtime {

class UnrollDriver {
public:
  /// Emits into \p Buf with this run's own stub maps. The caller (the
  /// core's specializeInto) passes a fresh chain buffer and fresh maps, so
  /// every run is a self-contained, immutable-after-publication chain.
  /// \p Scratch backs the run's worklist, memo table, and patch list; the
  /// caller opens a BumpArena::Scope around the driver's lifetime so the
  /// memory is reclaimed in bulk when the run finishes.
  UnrollDriver(RegionExecutionCore &Core, RegionState &R, uint32_t Ordinal,
               vm::VM &M, const OptFlags &Flags, vm::CodeObject &Buf,
               std::map<ir::BlockId, uint32_t> &ExitStubs,
               std::map<uint32_t, uint32_t> &DispatchStubs,
               std::map<ir::BlockId, uint32_t> &OsrEntries,
               BumpArena &Scratch)
      : Core(Core), R(R), Ordinal(Ordinal), M(M), CM(M.costModel()),
        GX(R.GX), Buf(Buf), ExitStubs(ExitStubs),
        DispatchStubs(DispatchStubs), OsrEntries(OsrEntries),
        E(Buf, R.Stats, M, R.GX, Flags.MaxRegionInstrs),
        D(E, R.Stats, M, Flags, R.GX),
        Queue(ArenaAllocator<Item>(Scratch)),
        Memo(std::less<std::vector<uint64_t>>(),
             ArenaAllocator<MemoPair>(Scratch)),
        Patches(ArenaAllocator<Patch>(Scratch)) {}

  /// Runs the generating extension from \p Ctx0 with static values
  /// \p Vals0; returns the entry PC within the buffer.
  uint32_t run(uint32_t Ctx0, std::vector<Word> Vals0);

private:
  struct Item {
    uint32_t Ctx = 0;
    std::vector<Word> Vals;
  };

  struct Patch {
    size_t PC = 0;
    bool FieldC = false;
    std::vector<uint64_t> Key;
  };

  /// Branch-target resolution for an edge. Fresh Ctx edges yield no PC;
  /// the caller may use one as fall-through.
  struct EdgeLabel {
    bool Known = false;
    uint32_t PC = 0;
    bool FreshCtx = false; ///< unseen context: caller picks fall-through
  };

  void charge(uint64_t Cycles) { M.chargeDynComp(Cycles); }
  uint32_t bufSize() const {
    return static_cast<uint32_t>(Buf.Code.size());
  }

  std::vector<uint64_t> keyOf(const Item &It) const;
  void markQueued(const std::vector<uint64_t> &K) { Memo.emplace(K, -1); }

  void execSetup(const cogen::SetupOp &Op, std::vector<Word> &Vals);

  /// Emits the constants for static registers demoted across \p E (the
  /// static-to-dynamic boundary: their run-time registers must now hold
  /// the values the specializer has been tracking).
  void materializeForEdge(const bta::Edge &Ed, const std::vector<Word> &Vals);

  /// Handles an unconditional continuation. Returns a fall-through item if
  /// the target is fresh.
  std::optional<Item> continueEdge(const bta::Edge &Ed, Item &Cur);

  uint32_t makeSite(uint32_t PromoIdx, const std::vector<Word> &Vals);

  EdgeLabel labelFor(const bta::Edge &Ed, const std::vector<Word> &Vals,
                     size_t BranchPC, bool FieldC);

  std::optional<Item> place(Item &Cur);

  RegionExecutionCore &Core;
  RegionState &R;
  uint32_t Ordinal;
  vm::VM &M;
  const vm::CostModel &CM;
  const cogen::GenExtFunction &GX;
  vm::CodeObject &Buf;
  std::map<ir::BlockId, uint32_t> &ExitStubs;
  std::map<uint32_t, uint32_t> &DispatchStubs;
  /// This run's once-placed IR-block entry pcs (see CodeChain::OsrEntries).
  std::map<ir::BlockId, uint32_t> &OsrEntries;
  /// Blocks placed more than once this run — removed from OsrEntries and
  /// never re-added. Driver-local because RegionState::CtxPlacements
  /// accumulates across runs.
  std::set<ir::BlockId> OsrMultiPlaced;

  Emitter E;
  DeferralEngine D;

  using MemoPair = std::pair<const std::vector<uint64_t>, int64_t>;
  using MemoMap = std::map<std::vector<uint64_t>, int64_t,
                           std::less<std::vector<uint64_t>>,
                           ArenaAllocator<MemoPair>>;

  std::deque<Item, ArenaAllocator<Item>> Queue;
  MemoMap Memo; ///< -1 queued, else PC
  std::vector<Patch, ArenaAllocator<Patch>> Patches;
};

} // namespace runtime
} // namespace dyc

#endif // DYC_RUNTIME_UNROLLDRIVER_H
