//===- runtime/RuntimeStats.cpp ------------------------------------------------===//

#include "runtime/RuntimeStats.h"

#include "support/Support.h"

namespace dyc {
namespace runtime {

std::string RegionStats::toString() const {
  std::string S = formatString(
      "runs=%llu items=%llu gen=%llu sloads=%llu scalls=%llu(memo %llu) "
      "zcp=%llu dae=%llu mat=%llu sr=%llu folded-br=%llu dyn-br=%llu "
      "disp=%llu hit=%llu miss=%llu sites=%llu evict=%llu cap-hits=%llu "
      "max-copies=%llu",
      (unsigned long long)SpecializationRuns, (unsigned long long)WorkItems,
      (unsigned long long)InstructionsGenerated,
      (unsigned long long)StaticLoadsExecuted,
      (unsigned long long)StaticCallsExecuted,
      (unsigned long long)StaticCallMemoHits, (unsigned long long)ZcpApplied,
      (unsigned long long)DeadAssignsEliminated,
      (unsigned long long)MaterializedDeferred,
      (unsigned long long)StrengthReduced,
      (unsigned long long)BranchesFolded,
      (unsigned long long)DynamicBranchesEmitted,
      (unsigned long long)Dispatches, (unsigned long long)CacheHits,
      (unsigned long long)CacheMisses,
      (unsigned long long)DispatchSitesCreated,
      (unsigned long long)Evictions, (unsigned long long)CodeCapHits,
      (unsigned long long)MaxBlockInstances);
  if (TierEnabled)
    S += formatString(
        " cold=%llu warm=%llu warm-promo=%llu hot-promo=%llu "
        "hot-installs=%llu osr=%llu osr-polls=%llu",
        (unsigned long long)ColdExecs, (unsigned long long)WarmExecs,
        (unsigned long long)WarmPromotions,
        (unsigned long long)HotPromotions, (unsigned long long)HotInstalls,
        (unsigned long long)OsrEntries, (unsigned long long)OsrPolls);
  if (PlanEnabled)
    S += formatString(" plan-builds=%llu plan-hits=%llu plan-bytes=%llu",
                      (unsigned long long)PlanBuilds,
                      (unsigned long long)PlanHits,
                      (unsigned long long)PlanBytes);
  if (!Backend.empty())
    S += " backend=" + Backend;
  return S;
}

} // namespace runtime
} // namespace dyc
