//===- runtime/UnrollDriver.cpp - Memoized polyvariant walk ------------------------===//

#include "runtime/UnrollDriver.h"

#include "ir/ConstEval.h"

namespace dyc {
namespace runtime {

using cogen::GenBlock;
using cogen::Operand;
using cogen::SetupOp;
using ir::Opcode;
namespace v = vm;

uint32_t UnrollDriver::run(uint32_t Ctx0, std::vector<Word> Vals0) {
  charge(CM.SpecInvoke);
  ++R.Stats.SpecializationRuns;
  uint32_t Entry = bufSize();

  ir::BlockId MaxBlock = 0;
  for (size_t Ctx = 0; Ctx != GX.Blocks.size(); ++Ctx) {
    ir::BlockId B = GX.Region.context(Ctx).Block;
    if (B != ir::NoBlock)
      MaxBlock = std::max(MaxBlock, B);
  }
  OsrState.assign(static_cast<size_t>(MaxBlock) + 1, -1);
  // Host-side: skip the first few doubling reallocations of the chain
  // buffer. Capacity only; emitted bytes are identical.
  Buf.Code.reserve(std::min<size_t>(MaxRegionInstrs, 256));

  Item Cur{Ctx0, std::move(Vals0)};
  bool Fresh0 = false;
  Cur.MemoVal = memoFindOrQueue(keyRef(Cur.Ctx, Cur.Vals), Fresh0);
  bool HaveCur = true;
  while (HaveCur || !Queue.empty()) {
    if (!HaveCur) {
      Cur = std::move(Queue.front());
      Queue.pop_front();
    }
    HaveCur = false;
    // Place this item, then follow fall-through chains (the paper's
    // linear chain of unrolled loop bodies).
    while (true) {
      std::optional<Item> Next = place(Cur);
      if (!Next)
        break;
      if (!Next->MemoVal) {
        bool Fresh = false;
        Next->MemoVal = memoFindOrQueue(keyRef(Next->Ctx, Next->Vals), Fresh);
      }
      Cur = std::move(*Next);
    }
  }

  // Materialize the OSR entry map: blocks placed exactly once this run.
  for (size_t B = 0; B != OsrState.size(); ++B)
    if (OsrState[B] >= 0)
      OsrEntries.emplace(static_cast<ir::BlockId>(B),
                         static_cast<uint32_t>(OsrState[B]));

  // Resolve pending branch patches: plan mode dereferences the stable
  // memo slot recorded at patch time; the legacy walk re-probes its map.
  for (const Patch &P : Patches) {
    const int64_t *PC = Plan ? P.Val : memoFind(P.Key);
    if (!PC || *PC < 0)
      fatal("specializer left an unresolved branch target");
    v::Instr &I = E.at(P.PC);
    if (P.FieldC)
      I.C = static_cast<uint32_t>(*PC);
    else
      I.B = static_cast<uint32_t>(*PC);
    charge(CM.SpecPatch);
  }

  M.flushICache(); // coherence after code generation
  return Entry;
}

const std::vector<uint64_t> &
UnrollDriver::keyRef(uint32_t Ctx, const std::vector<Word> &Vals) {
  KeyScratch.clear();
  KeyScratch.push_back(Ctx);
  if (Plan) {
    // Fold the FNV-1a hash into the composition pass: the memo operations
    // that follow reuse it instead of re-walking the key.
    uint64_t H = 0xcbf29ce484222325ull;
    H ^= Ctx;
    H *= 1099511628211ull;
    for (uint32_t Reg : Plan->Blocks[Ctx].KeyRegs) {
      uint64_t W = Vals[Reg].Bits;
      KeyScratch.push_back(W);
      H ^= W;
      H *= 1099511628211ull;
    }
    KeyHashScratch = H;
  } else {
    GX.Region.context(Ctx).StaticIn.forEachSetBit(
        [&](size_t Reg) { KeyScratch.push_back(Vals[Reg].Bits); });
  }
  return KeyScratch;
}

int64_t *UnrollDriver::memoFind(const std::vector<uint64_t> &K) {
  if (Plan)
    return PM.find(K.data(), K.size(), hashOf(K));
  auto It = Memo.find(K);
  return It == Memo.end() ? nullptr : &It->second;
}

void UnrollDriver::execSetup(const SetupOp &Op, std::vector<Word> &Vals) {
  switch (Op.K) {
  case SetupOp::EvalConst:
    Vals[Op.Dst] = Word{static_cast<uint64_t>(Op.Imm)};
    charge(CM.SpecEvalOp);
    return;
  case SetupOp::Eval: {
    Word Out;
    Word AV = Vals[Op.A.R];
    Word BV = Op.B.R == ir::NoReg ? Word() : Vals[Op.B.R];
    if (!ir::evalPureOp(Op.Op, AV, BV, Out))
      fatal("static computation faulted at specialize time (division "
            "by a zero-valued run-time constant)");
    Vals[Op.Dst] = Out;
    charge(CM.SpecEvalOp);
    return;
  }
  case SetupOp::EvalLoad: {
    int64_t Addr = Vals[Op.A.R].asInt() + Op.Imm;
    const std::vector<Word> &Mem = M.memory();
    if (Addr < 0 || static_cast<uint64_t>(Addr) >= Mem.size())
      fatal("static load out of range at specialize time");
    Vals[Op.Dst] = Mem[static_cast<size_t>(Addr)];
    charge(CM.SpecStaticLoad);
    ++R.Stats.StaticLoadsExecuted;
    return;
  }
  case SetupOp::EvalCall: {
    std::vector<Word> Args;
    std::vector<uint64_t> MemoKey;
    MemoKey.push_back(static_cast<uint64_t>(Op.Callee) * 2 +
                      (Op.IsExt ? 1 : 0));
    for (const Operand &O : Op.Args) {
      Args.push_back(Vals[O.R]);
      MemoKey.push_back(Vals[O.R].Bits);
    }
    ++R.Stats.StaticCallsExecuted;
    auto It = R.CallMemo.find(MemoKey);
    if (It != R.CallMemo.end()) {
      ++R.Stats.StaticCallMemoHits;
      charge(CM.SpecEvalOp);
      Vals[Op.Dst] = It->second;
      return;
    }
    Word Res;
    if (Op.IsExt) {
      const vm::ExternalFunction &Ext =
          M.program().Externals.get(static_cast<unsigned>(Op.Callee));
      charge(CM.SpecStaticCallBase + Ext.CostCycles);
      Res = Ext.Fn(Args.data());
    } else {
      charge(CM.SpecStaticCallBase);
      uint64_t Mark = M.execCycles();
      Res = M.run(static_cast<uint32_t>(Op.Callee), Args);
      M.reattributeExecToDynComp(Mark);
    }
    R.CallMemo.emplace(std::move(MemoKey), Res);
    Vals[Op.Dst] = Res;
    return;
  }
  case SetupOp::EmitInstr:
    D.emitDynamic(Op, Vals);
    return;
  }
}

void UnrollDriver::materializeForEdge(const bta::Edge &Ed,
                                      const std::vector<Word> &Vals) {
  for (ir::Reg Rg : Ed.Materialize)
    E.emitConst(Rg, Vals[Rg], GX.RegTypes[Rg]);
}

std::optional<UnrollDriver::Item>
UnrollDriver::continueEdge(const bta::Edge &Ed, Item &Cur) {
  if (Ed.K != bta::Edge::None)
    materializeForEdge(Ed, Cur.Vals);
  switch (Ed.K) {
  case bta::Edge::None:
    return std::nullopt;
  case bta::Edge::Exit:
    E.emitRaw({v::Op::ExitRegion, 0, GX.BlockPC[Ed.Block]});
    return std::nullopt;
  case bta::Edge::Promo: {
    uint32_t Site = makeSite(Ed.PromoIdx, Cur.Vals);
    E.emitRaw({v::Op::Dispatch, 0, 0, 0,
               -(static_cast<int64_t>(Site) + 1)});
    return std::nullopt;
  }
  case bta::Edge::Ctx: {
    Item Next{Ed.Target, std::move(Cur.Vals)};
    const std::vector<uint64_t> &K = keyRef(Next.Ctx, Next.Vals);
    bool Fresh = false;
    int64_t *PC = memoFindOrQueue(K, Fresh);
    if (Fresh) {
      Next.MemoVal = PC;
      return Next; // fall through, no branch emitted
    }
    if (*PC >= 0) {
      E.emitRaw({v::Op::Br, 0, static_cast<uint32_t>(*PC)});
    } else {
      addPatch(bufSize(), false, K, PC);
      E.emitRaw({v::Op::Br, 0, 0});
      // Re-queue ownership of Vals: the queued item already has its own
      // copy (enqueued when first seen).
    }
    return std::nullopt;
  }
  }
  return std::nullopt;
}

uint32_t UnrollDriver::makeSite(uint32_t PromoIdx,
                                const std::vector<Word> &Vals) {
  const bta::PromoPoint &P = GX.Region.Promos[PromoIdx];
  DispatchSite S;
  S.RegionOrd = Ordinal;
  S.PromoId = PromoIdx;
  for (ir::Reg Rg : P.BakedRegs)
    S.BakedVals.push_back(Vals[Rg]);
  bool Created = false;
  uint32_t Idx = Core.internSite(std::move(S), &Created);
  if (Created)
    ++R.Stats.DispatchSitesCreated;
  return Idx;
}

UnrollDriver::EdgeLabel UnrollDriver::labelFor(const bta::Edge &Ed,
                                               const std::vector<Word> &Vals,
                                               size_t BranchPC, bool FieldC) {
  EdgeLabel L;
  if (!Ed.Materialize.empty()) {
    // The edge demotes statics: route through a trampoline that
    // materializes them, then transfers.
    L.Known = true;
    L.PC = bufSize();
    materializeForEdge(Ed, Vals);
    switch (Ed.K) {
    case bta::Edge::Exit:
      E.emitRaw({v::Op::ExitRegion, 0, GX.BlockPC[Ed.Block]});
      return L;
    case bta::Edge::Promo: {
      uint32_t Site = makeSite(Ed.PromoIdx, Vals);
      E.emitRaw({v::Op::Dispatch, 0, 0, 0,
                 -(static_cast<int64_t>(Site) + 1)});
      return L;
    }
    case bta::Edge::Ctx: {
      const std::vector<uint64_t> &K = keyRef(Ed.Target, Vals);
      bool Fresh = false;
      int64_t *PC = memoFindOrQueue(K, Fresh);
      if (!Fresh && *PC >= 0) {
        E.emitRaw({v::Op::Br, 0, static_cast<uint32_t>(*PC)});
        return L;
      }
      if (Fresh) {
        Item Other{Ed.Target, Vals};
        Other.MemoVal = PC;
        Queue.push_back(std::move(Other));
      }
      addPatch(bufSize(), false, K, PC);
      E.emitRaw({v::Op::Br, 0, 0});
      return L;
    }
    case bta::Edge::None:
      fatal("missing edge on a conditional branch");
    }
  }
  switch (Ed.K) {
  case bta::Edge::None:
    fatal("missing edge on a conditional branch");
  case bta::Edge::Exit: {
    auto It = ExitStubs.find(Ed.Block);
    if (It == ExitStubs.end()) {
      uint32_t PC = bufSize();
      E.emitRaw({v::Op::ExitRegion, 0, GX.BlockPC[Ed.Block]});
      It = ExitStubs.emplace(Ed.Block, PC).first;
    }
    L.Known = true;
    L.PC = It->second;
    return L;
  }
  case bta::Edge::Promo: {
    uint32_t Site = makeSite(Ed.PromoIdx, Vals);
    auto It = DispatchStubs.find(Site);
    if (It == DispatchStubs.end()) {
      uint32_t PC = bufSize();
      E.emitRaw({v::Op::Dispatch, 0, 0, 0,
                 -(static_cast<int64_t>(Site) + 1)});
      It = DispatchStubs.emplace(Site, PC).first;
    }
    L.Known = true;
    L.PC = It->second;
    return L;
  }
  case bta::Edge::Ctx: {
    const std::vector<uint64_t> &K = keyRef(Ed.Target, Vals);
    int64_t *PC = memoFind(K);
    if (!PC) {
      L.FreshCtx = true;
      return L;
    }
    if (*PC >= 0) {
      L.Known = true;
      L.PC = static_cast<uint32_t>(*PC);
      return L;
    }
    addPatch(BranchPC, FieldC, K, PC);
    L.Known = false;
    return L;
  }
  }
  return L;
}

std::optional<UnrollDriver::Item> UnrollDriver::place(Item &Cur) {
  // Plan mode: the placement pc goes straight through the item's stable
  // memo handle — no key recomposition, no probe. The legacy walk
  // re-probes its ordered map exactly as before.
  if (Plan)
    *Cur.MemoVal = static_cast<int64_t>(bufSize());
  else
    memoAssign(keyRef(Cur.Ctx, Cur.Vals), static_cast<int64_t>(bufSize()));
  // OSR entry bookkeeping: an IR block placed exactly once this run has a
  // unique residual pc a generic frame can transfer to at a back-edge
  // (its static state is fully determined by the dispatch key). A second
  // placement (loop unrolling) disqualifies the block for this chain.
  if (ir::BlockId B = GX.Region.context(Cur.Ctx).Block; B != ir::NoBlock) {
    int64_t &S = OsrState[B];
    S = S == -1 ? static_cast<int64_t>(bufSize()) : -2;
  }
  ++R.Stats.WorkItems;
  charge(CM.SpecPerWorkItem);
  uint32_t &Count = R.CtxPlacements[Cur.Ctx];
  ++Count;
  R.Stats.MaxBlockInstances =
      std::max<uint64_t>(R.Stats.MaxBlockInstances, Count);

  D.reset();

  const GenBlock &GB = GX.Blocks[Cur.Ctx];
  if (Plan) {
    // Staged path: the block's pre-compiled linear emit program. Generic
    // steps fall back to the legacy interpreter per op, so the emitted
    // chain and every simulated charge are identical to the walk below.
    PR.runBlock(Plan->Blocks[Cur.Ctx], Cur.Vals,
                [&](uint32_t OpIdx) { execSetup(GB.Ops[OpIdx], Cur.Vals); });
  } else {
    for (const SetupOp &Op : GB.Ops)
      execSetup(Op, Cur.Vals);
  }

  // Terminator.
  const cogen::GenTerm &T = GB.Term;
  switch (T.K) {
  case cogen::GenTerm::Ret: {
    if (T.RetVal.R == ir::NoReg) {
      D.dropAllPending();
      E.emitRaw({v::Op::Ret, v::NoReg});
      return std::nullopt;
    }
    RVal V = D.resolveOperand(T.RetVal, Cur.Vals);
    D.forceOperand(V); // the return value is consumed
    D.dropAllPending();
    if (V.IsConst) {
      ir::Type Ty = GX.RegTypes[T.RetVal.R];
      E.emitConst(GX.Scratch0, V.C, Ty);
      E.emitRaw({v::Op::Ret, GX.Scratch0});
    } else {
      E.emitRaw({v::Op::Ret, V.R});
    }
    return std::nullopt;
  }
  case cogen::GenTerm::Br:
    D.dropAllPending();
    return continueEdge(T.TrueE, Cur);
  case cogen::GenTerm::CondBr: {
    RVal C = D.resolveOperand(T.Cond, Cur.Vals);
    if (!C.IsConst)
      D.forceOperand(C); // the emitted branch consumes the condition
    D.dropAllPending();
    if (C.IsConst) {
      // Static (or propagated-constant) branch: folded away.
      ++R.Stats.BranchesFolded;
      charge(CM.SpecEvalOp);
      return continueEdge(C.C.asInt() != 0 ? T.TrueE : T.FalseE, Cur);
    }
    ++R.Stats.DynamicBranchesEmitted;
    charge(CM.SpecEmitBranch);
    size_t BranchPC = bufSize();
    E.emitRaw({v::Op::CondBr, C.R, 0, 0});
    EdgeLabel TL = labelFor(T.TrueE, Cur.Vals, BranchPC, false);
    EdgeLabel FL = labelFor(T.FalseE, Cur.Vals, BranchPC, true);

    std::optional<Item> Fall;
    if (TL.Known)
      E.at(BranchPC).B = TL.PC;
    if (FL.Known)
      E.at(BranchPC).C = FL.PC;

    if (TL.FreshCtx) {
      // Fall through into the true side.
      E.at(BranchPC).B = bufSize();
      Fall = Item{T.TrueE.Target, Cur.Vals};
      if (FL.FreshCtx) {
        Item Other{T.FalseE.Target, Cur.Vals};
        const std::vector<uint64_t> &OK = keyRef(Other.Ctx, Other.Vals);
        bool Fresh = false;
        int64_t *V = memoFindOrQueue(OK, Fresh);
        Other.MemoVal = V;
        addPatch(BranchPC, true, OK, V);
        Queue.push_back(std::move(Other));
      }
    } else if (FL.FreshCtx) {
      E.at(BranchPC).C = bufSize();
      Fall = Item{T.FalseE.Target, std::move(Cur.Vals)};
    }
    return Fall;
  }
  }
  return std::nullopt;
}

} // namespace runtime
} // namespace dyc
