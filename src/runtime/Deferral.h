//===- runtime/Deferral.h - Staged ZCP + dead-assignment engine -------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The middle layer of the specializer: staged zero/copy propagation and
/// dead-assignment elimination (paper section 2.2.7) over the emitter.
/// Dynamic instructions whose results are block-dead by the static plan
/// are *deferred* into a table instead of being emitted. Reads resolve
/// through the table — pending moves are chased (copy propagation),
/// pending constants are returned as values (zero propagation) — and a
/// pending entry is only materialized if emitted code actually consumes
/// its result. An entry overwritten before any consumer is dropped, never
/// emitted: dead-assignment elimination at specialize time.
///
/// emitDynamic() is the engine's front door: it resolves a planned
/// dynamic instruction's operands, applies dynamic constant folding, the
/// zero/copy rewrites, and power-of-two strength reduction, then defers or
/// emits the result.
///
/// The table is per specialized block: the unroll driver resets it at
/// every block boundary (deferrable results are block-dead by the plan).
///
//===----------------------------------------------------------------------===//

#ifndef DYC_RUNTIME_DEFERRAL_H
#define DYC_RUNTIME_DEFERRAL_H

#include "bta/OptFlags.h"
#include "runtime/Emitter.h"

#include <map>
#include <vector>

namespace dyc {
namespace runtime {

class DeferralEngine {
public:
  /// A deferred (not yet emitted) pure instruction. Public so the staged
  /// emit-plan runner (PlanRunner) can reconstruct table state from a
  /// plan's Sync steps.
  struct DeferredInstr {
    ir::Opcode Op = ir::Opcode::Mov;
    ir::Type Ty = ir::Type::I64;
    uint32_t Dst = vm::NoReg;
    RVal A, B;
    int64_t Imm = 0;
    bool FromZcp = false;
    bool Pending = true;
  };

  DeferralEngine(Emitter &E, RegionStats &Stats, vm::VM &M,
                 const OptFlags &Flags, const cogen::GenExtFunction &GX)
      : E(E), Stats(Stats), M(M), CM(M.costModel()), Flags(Flags), GX(GX) {}

  /// Block boundary: forget pending entries without emitting (the caller
  /// uses dropAllPending() first when the drops must be counted).
  void reset() {
    Defer.clear();
    LatestDef.clear();
  }

  /// Resolves a run-time register through the deferral table.
  RVal readResolve(uint32_t Reg);

  RVal resolveOperand(const cogen::Operand &O, const std::vector<Word> &Vals);

  /// If \p A references a still-pending deferred producer, emit it (and,
  /// recursively, its dependencies).
  void forceOperand(const RVal &A);

  /// Before an instruction writes \p Dst: pending readers of Dst must be
  /// materialized (they captured the old value's register); a pending
  /// producer of Dst is dead and is dropped — dead-assignment elimination.
  void writeEvent(uint32_t Dst);

  /// Memory is about to be written or a call made: pending loads must be
  /// emitted first.
  void memoryClobber();

  /// Drops every still-pending entry (block boundary; deferrable results
  /// are block-dead by the static plan).
  void dropAllPending();

  /// Resolves, optimizes, and defers-or-emits one planned dynamic
  /// instruction (SetupOp::EmitInstr).
  void emitDynamic(const cogen::SetupOp &Op, const std::vector<Word> &Vals);

  /// Reinstalls one reconstructed table entry (a plan Sync step replaying
  /// the state the compiled steps imply). Pure bookkeeping: the charges
  /// and stats of the entry's creation were already replayed by the plan's
  /// Copy steps.
  void restore(const DeferredInstr &D) {
    Defer.push_back(D);
    if (D.Pending)
      LatestDef[D.Dst] = Defer.size() - 1;
  }

private:
  void charge(uint64_t Cycles) { M.chargeDynComp(Cycles); }

  /// Emits a pending entry now ("the move is materialized"), after any
  /// still-pending producers of its operands.
  void materializeEntry(size_t Idx);

  void deferOrEmit(const cogen::SetupOp &Op, ir::Opcode FormOp, ir::Type Ty,
                   uint32_t Dst, const RVal &A, const RVal &B, int64_t Imm,
                   bool FromZcp);

  Emitter &E;
  RegionStats &Stats;
  vm::VM &M;
  const vm::CostModel &CM;
  const OptFlags &Flags;
  const cogen::GenExtFunction &GX;

  std::vector<DeferredInstr> Defer;
  std::map<uint32_t, size_t> LatestDef;
};

} // namespace runtime
} // namespace dyc

#endif // DYC_RUNTIME_DEFERRAL_H
