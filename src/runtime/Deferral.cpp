//===- runtime/Deferral.cpp - Staged ZCP + dead-assignment engine ------------------===//

#include "runtime/Deferral.h"

#include "ir/ConstEval.h"

namespace dyc {
namespace runtime {

using cogen::Operand;
using cogen::SetupOp;
using ir::Opcode;
namespace v = vm;

void DeferralEngine::materializeEntry(size_t Idx) {
  DeferredInstr &D = Defer[Idx];
  if (!D.Pending)
    return;
  D.Pending = false;
  auto It = LatestDef.find(D.Dst);
  if (It != LatestDef.end() && It->second == Idx)
    LatestDef.erase(It);
  ++Stats.MaterializedDeferred;
  forceOperand(D.A);
  forceOperand(D.B);
  E.emitResolved(D.Op, D.Ty, D.Dst, D.A, D.B, D.Imm);
}

void DeferralEngine::forceOperand(const RVal &A) {
  if (A.Dep >= 0 && Defer[static_cast<size_t>(A.Dep)].Pending)
    materializeEntry(static_cast<size_t>(A.Dep));
}

RVal DeferralEngine::readResolve(uint32_t Reg) {
  uint32_t Cur = Reg;
  while (true) {
    auto It = LatestDef.find(Cur);
    if (It == LatestDef.end())
      return RVal::reg(Cur);
    DeferredInstr &D = Defer[It->second];
    charge(CM.SpecZcpTableOp);
    if (D.Op == Opcode::Mov) {
      if (D.A.IsConst)
        return D.A;
      Cur = D.A.R;
      continue;
    }
    if (D.Op == Opcode::ConstI || D.Op == Opcode::ConstF)
      return RVal::cst(Word{static_cast<uint64_t>(D.Imm)});
    return RVal::reg(Cur, static_cast<int32_t>(It->second));
  }
}

RVal DeferralEngine::resolveOperand(const Operand &O,
                                    const std::vector<Word> &Vals) {
  if (O.R == ir::NoReg)
    return RVal();
  if (O.Static)
    return RVal::cst(Vals[O.R]);
  return readResolve(O.R);
}

void DeferralEngine::writeEvent(uint32_t Dst) {
  if (Dst == v::NoReg)
    return;
  for (size_t I = 0; I != Defer.size(); ++I) {
    DeferredInstr &D = Defer[I];
    if (!D.Pending)
      continue;
    if ((!D.A.IsConst && D.A.R == Dst) || (!D.B.IsConst && D.B.R == Dst))
      materializeEntry(I);
  }
  auto It = LatestDef.find(Dst);
  if (It != LatestDef.end()) {
    DeferredInstr &D = Defer[It->second];
    if (D.Pending) {
      D.Pending = false;
      ++Stats.DeadAssignsEliminated;
      charge(CM.SpecZcpTableOp);
    }
    LatestDef.erase(It);
  }
}

void DeferralEngine::memoryClobber() {
  for (size_t I = 0; I != Defer.size(); ++I)
    if (Defer[I].Pending && Defer[I].Op == Opcode::Load)
      materializeEntry(I);
}

void DeferralEngine::dropAllPending() {
  for (DeferredInstr &D : Defer) {
    if (!D.Pending)
      continue;
    D.Pending = false;
    ++Stats.DeadAssignsEliminated;
  }
  LatestDef.clear();
}

void DeferralEngine::deferOrEmit(const SetupOp &Op, Opcode FormOp, ir::Type Ty,
                                 uint32_t Dst, const RVal &A, const RVal &B,
                                 int64_t Imm, bool FromZcp) {
  writeEvent(Dst);
  if (Op.Deferrable) {
    charge(CM.SpecZcpTableOp);
    DeferredInstr D;
    D.Op = FormOp;
    D.Ty = Ty;
    D.Dst = Dst;
    D.A = A;
    D.B = B;
    D.Imm = Imm;
    D.FromZcp = FromZcp;
    Defer.push_back(D);
    LatestDef[Dst] = Defer.size() - 1;
    return;
  }
  forceOperand(A);
  forceOperand(B);
  E.emitResolved(FormOp, Ty, Dst, A, B, Imm);
}

void DeferralEngine::emitDynamic(const SetupOp &Op,
                                 const std::vector<Word> &Vals) {
  if (Op.Op == Opcode::Call || Op.Op == Opcode::CallExt) {
    std::vector<RVal> Args;
    Args.reserve(Op.Args.size());
    for (const Operand &A : Op.Args)
      Args.push_back(resolveOperand(A, Vals));
    memoryClobber();
    writeEvent(Op.Dst);
    for (size_t I = 0; I != Args.size(); ++I) {
      uint32_t Stage = GX.StageBase + static_cast<uint32_t>(I);
      ir::Type ArgTy = GX.RegTypes[Op.Args[I].R];
      forceOperand(Args[I]);
      E.emitResolved(Opcode::Mov, ArgTy, Stage, Args[I], RVal(), 0);
    }
    E.emitRaw({Op.Op == Opcode::Call ? v::Op::Call : v::Op::CallExt,
               Op.Dst == ir::NoReg ? v::NoReg : Op.Dst, GX.StageBase,
               static_cast<uint32_t>(Args.size()), Op.Callee});
    return;
  }

  RVal A = resolveOperand(Op.A, Vals);
  RVal B = resolveOperand(Op.B, Vals);

  // A move that resolves to its own destination (copy propagation came
  // full circle) is a no-op: the register already holds the value.
  if (Op.Op == Opcode::Mov && !A.IsConst && A.R == Op.Dst)
    return;

  if (Op.Op == Opcode::Store) {
    memoryClobber();
    forceOperand(A);
    forceOperand(B);
    E.emitResolved(Opcode::Store, ir::Type::I64, v::NoReg, A, B, Op.Imm);
    return;
  }

  // Dynamic constant folding: propagation can turn both operands into
  // constants.
  if (ir::isEvaluableOp(Op.Op) && A.IsConst &&
      (isUnaryOpcode(Op.Op) || B.IsConst)) {
    Word Out;
    if (ir::evalPureOp(Op.Op, A.C, B.C, Out)) {
      charge(CM.SpecEvalOp);
      deferOrEmit(Op, Op.Ty == ir::Type::F64 ? Opcode::ConstF
                                             : Opcode::ConstI,
                  Op.Ty, Op.Dst, RVal(), RVal(),
                  static_cast<int64_t>(Out.Bits), /*FromZcp=*/false);
      return;
    }
  }

  // Staged zero/copy propagation (section 2.2.7): a special value of
  // the single constant operand reduces the operation to a move or a
  // clear.
  bool OneConst = A.IsConst != B.IsConst;
  if (Flags.ZeroCopyPropagation && OneConst) {
    charge(CM.SpecZcpTableOp);
    const RVal &CS = A.IsConst ? A : B;
    const RVal &DS = A.IsConst ? B : A;
    bool ConstOnRight = B.IsConst;
    bool IsFloat = Op.Ty == ir::Type::F64;
    Word One = IsFloat ? Word::fromFloat(1.0) : Word::fromInt(1);
    Word Zero = IsFloat ? Word::fromFloat(0.0) : Word::fromInt(0);
    bool RewriteToMove = false, RewriteToClear = false;
    switch (Op.Op) {
    case Opcode::Mul:
    case Opcode::FMul:
      RewriteToMove = CS.C == One;
      RewriteToClear = CS.C == Zero;
      break;
    case Opcode::Add:
    case Opcode::FAdd:
      RewriteToMove = CS.C == Zero;
      break;
    case Opcode::Sub:
    case Opcode::FSub:
      RewriteToMove = ConstOnRight && CS.C == Zero;
      break;
    case Opcode::Div:
    case Opcode::FDiv:
      RewriteToMove = ConstOnRight && CS.C == One;
      break;
    default:
      break;
    }
    if (RewriteToMove) {
      ++Stats.ZcpApplied;
      deferOrEmit(Op, Opcode::Mov, Op.Ty, Op.Dst, DS, RVal(), 0,
                  /*FromZcp=*/true);
      return;
    }
    if (RewriteToClear) {
      ++Stats.ZcpApplied;
      deferOrEmit(Op, IsFloat ? Opcode::ConstF : Opcode::ConstI, Op.Ty,
                  Op.Dst, RVal(), RVal(),
                  static_cast<int64_t>(Zero.Bits), /*FromZcp=*/true);
      return;
    }
  }

  // Strength reduction (section 2.2.7): integer multiply/divide/
  // remainder by a power of two become shifts and masks.
  if (Flags.StrengthReduction && OneConst &&
      (Op.Op == Opcode::Mul || Op.Op == Opcode::Div ||
       Op.Op == Opcode::Rem)) {
    charge(CM.SpecStrengthCheck);
    const RVal &CS = A.IsConst ? A : B;
    const RVal &DS = A.IsConst ? B : A;
    bool ConstOnRight = B.IsConst;
    int64_t C = CS.C.asInt();
    if (isPowerOf2(C) && C >= 2) {
      if (Op.Op == Opcode::Mul) {
        ++Stats.StrengthReduced;
        deferOrEmit(Op, Opcode::Shl, Op.Ty, Op.Dst, DS,
                    RVal::cst(Word::fromInt(log2OfPow2(C))), 0, false);
        return;
      }
      if (ConstOnRight &&
          (Op.Op == Opcode::Div || Op.Op == Opcode::Rem)) {
        // Exact shift sequence (C truncates toward zero, so negative
        // dividends need the bias fixup) — the same code an optimizing
        // static compiler emits for constant power-of-two divisors.
        ++Stats.StrengthReduced;
        forceOperand(DS);
        writeEvent(Op.Dst);
        unsigned K = log2OfPow2(C);
        uint32_t X = DS.R;
        uint32_t S0 = GX.Scratch0;
        E.emitRaw({v::Op::ShrI, S0, X, 0, 63});
        E.emitRaw({v::Op::AndI, S0, S0, 0, C - 1});
        E.emitRaw({v::Op::Add, S0, X, S0});
        if (Op.Op == Opcode::Div) {
          E.emitRaw({v::Op::ShrI, Op.Dst, S0, 0, (int64_t)K});
        } else {
          E.emitRaw({v::Op::ShrI, S0, S0, 0, (int64_t)K});
          E.emitRaw({v::Op::ShlI, S0, S0, 0, (int64_t)K});
          E.emitRaw({v::Op::Sub, Op.Dst, X, S0});
        }
        return;
      }
    }
  }

  deferOrEmit(Op, Op.Op, Op.Ty, Op.Dst, A, B, Op.Imm, /*FromZcp=*/false);
}

} // namespace runtime
} // namespace dyc
