//===- runtime/RuntimeStats.h - Per-region run-time statistics -------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters the specializer maintains per region. Tables 2 and 3 of the
/// paper are computed from these (which optimizations actually fired;
/// instructions generated; dispatch behavior).
///
//===----------------------------------------------------------------------===//

#ifndef DYC_RUNTIME_RUNTIMESTATS_H
#define DYC_RUNTIME_RUNTIMESTATS_H

#include <cstdint>
#include <string>

namespace dyc {
namespace runtime {

/// Counters for one region (annotated function).
struct RegionStats {
  uint64_t SpecializationRuns = 0;
  uint64_t WorkItems = 0;
  uint64_t InstructionsGenerated = 0;

  uint64_t StaticLoadsExecuted = 0;
  uint64_t StaticCallsExecuted = 0;
  uint64_t StaticCallMemoHits = 0;

  uint64_t ZcpApplied = 0;          ///< operations reduced to moves/clears
  uint64_t DeadAssignsEliminated = 0; ///< deferred instructions dropped
  uint64_t MaterializedDeferred = 0;  ///< deferred instructions forced out
  uint64_t StrengthReduced = 0;
  uint64_t BranchesFolded = 0;      ///< static (or propagated) branch folds
  uint64_t DynamicBranchesEmitted = 0;

  uint64_t Dispatches = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t DispatchSitesCreated = 0; ///< internal promotion sites emitted
  /// Cached specializations displaced: cache_one key mismatches, plus
  /// capacity (CLOCK) evictions against a ChainBudget.
  uint64_t Evictions = 0;
  /// Instructions emitted past OptFlags::MaxRegionInstrs (soft cap).
  uint64_t CodeCapHits = 0;

  uint64_t MaxBlockInstances = 0; ///< max specializations of one context —
                                  ///< >1 is loop-unrolling evidence

  /// Tiered execution (filled by the tiered SpecServer from its
  /// TierController; all zero — and unrendered — otherwise). TierEnabled
  /// gates the toString suffix so untieried output is byte-stable.
  bool TierEnabled = false;
  uint64_t ColdExecs = 0;
  uint64_t WarmExecs = 0;
  uint64_t WarmPromotions = 0;
  uint64_t HotPromotions = 0;
  uint64_t HotInstalls = 0;
  uint64_t OsrEntries = 0;
  uint64_t OsrPolls = 0;

  /// Staged emit plans (cogen/EmitPlan.h). PlanEnabled mirrors the core's
  /// resolved OptFlags::EmitPlan / DYC_EMIT_PLAN selection and gates the
  /// toString suffix, like TierEnabled; the counters are hard-zero when
  /// the plan path is off.
  bool PlanEnabled = false;
  uint64_t PlanBuilds = 0; ///< plans compiled (once per region + flags)
  uint64_t PlanHits = 0;   ///< specialization runs served by a cached plan
  uint64_t PlanBytes = 0;  ///< total footprint of built plans

  /// Name of the execution backend the owning core compiles through
  /// ("bytecode" / "template"); set once at region registration. Rendered
  /// by toString when present so stats output is backend-attributed.
  std::string Backend;

  std::string toString() const;
};

} // namespace runtime
} // namespace dyc

#endif // DYC_RUNTIME_RUNTIMESTATS_H
