//===- runtime/Emitter.h - Resolved-instruction encoder ---------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lowest layer of the specializer: encoding one *resolved*
/// instruction into a code buffer. "Resolved" means every operand is
/// either a known constant (a hole to fill) or a live run-time register —
/// the deferral engine (Deferral.h) has already forced any pending
/// producers. The emitter owns the emit-time encodings of section 2.2.7:
/// hole filling, immediate-field packing, commutation/compare-mirroring to
/// reach an immediate form, and constant folding of fully resolved
/// operations.
///
/// The region code cap (OptFlags::MaxRegionInstrs) is enforced here as a
/// soft limit: instructions emitted past the cap are counted in
/// RegionStats::CodeCapHits instead of aborting. The simulated address
/// reservation of a chain only covers the cap, so an over-cap chain may
/// alias its neighbor in the I-cache model — a modeling inaccuracy, not a
/// correctness hazard.
///
/// The bytecode the emitter writes is the backend-agnostic transfer
/// format of the execution-backend seam (backend/Backend.h): the buffer
/// it encodes into was opened by ExecutionBackend::beginRegion, and the
/// finished emission is handed to ExecutionBackend::compileRegion, which
/// may lower it further (the template backend pre-fuses it into
/// superblocks). The emitter itself is backend-independent.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_RUNTIME_EMITTER_H
#define DYC_RUNTIME_EMITTER_H

#include "cogen/CompilerGenerator.h"
#include "runtime/RuntimeStats.h"
#include "vm/VM.h"

namespace dyc {
namespace runtime {

/// A resolved operand: either a known constant (a hole to fill) or a
/// run-time register.
struct RVal {
  bool IsConst = false;
  Word C;
  uint32_t R = vm::NoReg;
  /// Index of a still-pending deferred entry producing R, or -1. The
  /// producer is materialized only if this operand is actually consumed by
  /// emitted code — the laziness that lets zero/copy propagation kill
  /// whole dead chains (address arithmetic feeding a load feeding a
  /// multiply by zero).
  int32_t Dep = -1;

  static RVal reg(uint32_t R, int32_t Dep = -1) {
    return {false, Word(), R, Dep};
  }
  static RVal cst(Word W) { return {true, W, vm::NoReg, -1}; }
};

/// True for the opcodes the emitter treats as single-operand (fold with
/// only A resolved).
bool isUnaryOpcode(ir::Opcode Op);

/// The emitter's encoding tables, exported so the staged-emit-plan
/// builder (cogen/EmitPlan.cpp) pre-encodes Copy templates with exactly
/// the encodings emitResolved would produce — one source of truth.
vm::Op vmOpOf(ir::Opcode Op);      ///< reg-reg form; fatals if none
vm::Op immFormOf(ir::Opcode Op);   ///< immediate form; vm::Op::Halt if none
bool isCommutativeOpcode(ir::Opcode Op);
ir::Opcode mirrorCompare(ir::Opcode Op); ///< Lt<->Gt, Le<->Ge; else Op

/// Encodes resolved instructions into one code chain's buffer.
class Emitter {
public:
  Emitter(vm::CodeObject &Buf, RegionStats &Stats, vm::VM &M,
          const cogen::GenExtFunction &GX, size_t MaxInstrs)
      : Buf(Buf), Stats(Stats), M(M), CM(M.costModel()), GX(GX),
        MaxInstrs(MaxInstrs) {}

  uint32_t size() const { return static_cast<uint32_t>(Buf.Code.size()); }

  /// Mutable access to an already-emitted instruction (branch patching,
  /// hole filling). Bumps the buffer's Version so the VM's predecoded
  /// translation cache re-decodes instead of running a stale translation.
  vm::Instr &at(size_t PC) {
    ++Buf.Version;
    return Buf.Code[PC];
  }

  void emitRaw(vm::Instr I);
  void emitConst(uint32_t Dst, Word C, ir::Type Ty);

  /// Ensures \p A is in a register, materializing constants into \p
  /// Scratch; returns the register.
  uint32_t regOf(const RVal &A, ir::Type Ty, uint32_t Scratch);

  /// Emits one resolved instruction (immediate packing, commutation,
  /// scratch materialization, folding of all-constant operands). Operands
  /// carrying a deferred-producer Dep must have been forced by the caller
  /// — emission never re-enters the deferral table.
  void emitResolved(ir::Opcode Op, ir::Type Ty, uint32_t Dst, const RVal &A,
                    const RVal &B, int64_t Imm);

private:
  void charge(uint64_t Cycles) { M.chargeDynComp(Cycles); }

  vm::CodeObject &Buf;
  RegionStats &Stats;
  vm::VM &M;
  const vm::CostModel &CM;
  const cogen::GenExtFunction &GX;
  size_t MaxInstrs;
};

} // namespace runtime
} // namespace dyc

#endif // DYC_RUNTIME_EMITTER_H
