//===- runtime/PlanRunner.cpp - Staged emit-plan executor --------------------------===//

#include "runtime/PlanRunner.h"

#include "ir/ConstEval.h"

namespace dyc {
namespace runtime {

void PlanRunner::runEvals(const cogen::BlockPlan &BP, const cogen::PlanStep &S,
                          std::vector<Word> &Vals) {
  const std::vector<Word> &Mem = M.memory();
  const uint32_t End = S.First + S.Count;
  for (uint32_t I = S.First; I != End; ++I) {
    const cogen::PlanEval &E = BP.Evals[I];
    switch (E.K) {
    case cogen::PlanEval::Const:
      Vals[E.Dst] = Word{static_cast<uint64_t>(E.Imm)};
      break;
    case cogen::PlanEval::Pure: {
      Word Out;
      Word BV = E.B == ir::NoReg ? Word() : Vals[E.B];
      if (!ir::evalPureOp(E.Op, Vals[E.A], BV, Out))
        fatal("static computation faulted at specialize time (division "
              "by a zero-valued run-time constant)");
      Vals[E.Dst] = Out;
      break;
    }
    case cogen::PlanEval::Load: {
      int64_t Addr = Vals[E.A].asInt() + E.Imm;
      if (Addr < 0 || static_cast<uint64_t>(Addr) >= Mem.size())
        fatal("static load out of range at specialize time");
      Vals[E.Dst] = Mem[static_cast<size_t>(Addr)];
      break;
    }
    }
  }
  M.chargeDynComp(static_cast<uint64_t>(S.EvalOps) * CM.SpecEvalOp +
                  static_cast<uint64_t>(S.StaticLoads) * CM.SpecStaticLoad);
  R.Stats.StaticLoadsExecuted += S.StaticLoads;
}

void PlanRunner::runCopy(const cogen::BlockPlan &BP, const cogen::PlanStep &S,
                         const std::vector<Word> &Vals) {
  // Capture this step's derived values first: holes in the step's own
  // template (and guards / sync operands downstream) read them.
  const uint32_t ExprEnd = S.ExprFirst + S.ExprCount;
  for (uint32_t X = S.ExprFirst; X != ExprEnd; ++X) {
    const cogen::PlanExpr &E = BP.Exprs[X];
    if (E.K == cogen::PlanExpr::Log2) {
      ExprVals[X] = Word::fromInt(log2OfPow2(ref(E.A, Vals).asInt()));
      continue;
    }
    Word Out;
    // Never fails: Div/Rem-by-zero folds are guarded by a Branch step.
    if (!ir::evalPureOp(E.Op, ref(E.A, Vals), ref(E.B, Vals), Out))
      fatal("unguarded fold failure in a staged emit plan");
    ExprVals[X] = Out;
  }

  const size_t Pre = Buf.Code.size();
  Buf.Code.insert(Buf.Code.end(), BP.Template.begin() + S.First,
                  BP.Template.begin() + S.First + S.Count);
  const uint32_t HoleEnd = S.HoleFirst + S.HoleCount;
  for (uint32_t H = S.HoleFirst; H != HoleEnd; ++H) {
    const cogen::PlanHole &PH = BP.Holes[H];
    Buf.Code[Pre + (PH.InstrIdx - S.First)].Imm =
        static_cast<int64_t>(ref(PH.Ref, Vals).Bits) + PH.Add;
  }

  // Replay the walk's exact charge trail for the run as one accumulation,
  // and its stats arithmetically. ZcpChecks and TableOps both charge at
  // the SpecZcpTableOp rate. CodeCapHits: the legacy emitRaw counts a hit
  // for every instruction pushed at a position >= the cap.
  M.chargeDynComp(
      static_cast<uint64_t>(S.Emits) * CM.SpecEmit +
      static_cast<uint64_t>(S.EmitHoles) * CM.SpecEmitHole +
      static_cast<uint64_t>(S.EvalOps) * CM.SpecEvalOp +
      static_cast<uint64_t>(S.ZcpChecks + S.TableOps) * CM.SpecZcpTableOp +
      static_cast<uint64_t>(S.SrChecks) * CM.SpecStrengthCheck);
  R.Stats.InstructionsGenerated += S.Emits;
  R.Stats.ZcpApplied += S.ZcpApplied;
  R.Stats.StrengthReduced += S.StrengthReduced;
  R.Stats.DeadAssignsEliminated += S.DeadAssigns;
  R.Stats.MaterializedDeferred += S.Materialized;
  if (Pre + S.Emits > MaxInstrs)
    R.Stats.CodeCapHits += S.Emits - (Pre < MaxInstrs ? MaxInstrs - Pre : 0);
}

void PlanRunner::runSync(const cogen::BlockPlan &BP, const cogen::PlanStep &S,
                         const std::vector<Word> &Vals) {
  const uint32_t End = S.First + S.Count;
  for (uint32_t I = S.First; I != End; ++I) {
    const cogen::PlanSync &Y = BP.Syncs[I];
    DeferralEngine::DeferredInstr DI;
    DI.Op = Y.Op;
    DI.Ty = Y.Ty;
    DI.Dst = Y.Dst;
    DI.A = Y.A.IsConst ? RVal::cst(ref(Y.A.C, Vals))
                       : RVal::reg(Y.A.R, Y.A.Dep);
    DI.B = Y.B.IsConst ? RVal::cst(ref(Y.B.C, Vals))
                       : RVal::reg(Y.B.R, Y.B.Dep);
    DI.Imm = static_cast<int64_t>(ref(Y.Imm, Vals).Bits);
    DI.FromZcp = Y.FromZcp;
    D.restore(DI);
  }
}

} // namespace runtime
} // namespace dyc
