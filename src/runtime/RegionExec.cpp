//===- runtime/RegionExec.cpp - Shared region-execution core -----------------------===//

#include "runtime/RegionExec.h"

#include "runtime/UnrollDriver.h"
#include "support/Support.h"

#include <algorithm>
#include <chrono>

namespace dyc {
namespace runtime {

//===----------------------------------------------------------------------===//
// ChainRegistry
//===----------------------------------------------------------------------===//

void ChainRegistry::add(std::shared_ptr<CodeChain> Chain) {
  std::unique_lock<std::shared_mutex> Lock(Mutex);
  Map[&Chain->CO] = std::move(Chain);
}

std::shared_ptr<CodeChain> ChainRegistry::find(const vm::CodeObject *CO) const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  auto It = Map.find(CO);
  return It == Map.end() ? nullptr : It->second;
}

void ChainRegistry::releaseExecutor(const vm::CodeObject *CO) const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  auto It = Map.find(CO);
  if (It != Map.end())
    It->second->ActiveRefs.fetch_sub(1, std::memory_order_acq_rel);
}

size_t ChainRegistry::collect() {
  std::unique_lock<std::shared_mutex> Lock(Mutex);
  size_t Freed = 0;
  for (auto It = Map.begin(); It != Map.end();) {
    CodeChain &C = *It->second;
    if (C.Evicted.load(std::memory_order_acquire) &&
        C.ActiveRefs.load(std::memory_order_acquire) == 0) {
      It = Map.erase(It);
      ++Freed;
    } else {
      ++It;
    }
  }
  return Freed;
}

size_t ChainRegistry::size() const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  return Map.size();
}

std::vector<std::shared_ptr<CodeChain>>
ChainRegistry::chainsOfRegion(uint32_t Region) const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  std::vector<std::shared_ptr<CodeChain>> Out;
  for (const auto &KV : Map)
    if (KV.second->Region == Region)
      Out.push_back(KV.second);
  std::sort(Out.begin(), Out.end(),
            [](const std::shared_ptr<CodeChain> &A,
               const std::shared_ptr<CodeChain> &B) {
              return A->Ordinal < B->Ordinal;
            });
  return Out;
}

//===----------------------------------------------------------------------===//
// RegionExecutionCore: regions and metadata
//===----------------------------------------------------------------------===//

void RegionExecutionCore::addRegion(cogen::GenExtFunction GX) {
  auto R = std::make_unique<RegionState>();
  R->CtxPlacements.assign(GX.Region.Contexts.size(), 0);
  R->GX = std::move(GX);
  R->Stats.Backend = BK->name();
  R->Stats.PlanEnabled = PlanOn;
  Regions.push_back(std::move(R));
  Books.emplace_back();
}

const bta::PromoPoint &RegionExecutionCore::promo(size_t Ordinal,
                                                  size_t PromoId) const {
  assert(Ordinal < Regions.size() && "bad region ordinal");
  const auto &Promos = Regions[Ordinal]->GX.Region.Promos;
  assert(PromoId < Promos.size() && "bad promotion point");
  return Promos[PromoId];
}

size_t RegionExecutionCore::numPromos(size_t Ordinal) const {
  assert(Ordinal < Regions.size() && "bad region ordinal");
  return Regions[Ordinal]->GX.Region.Promos.size();
}

uint32_t RegionExecutionCore::regionNumRegs(size_t Ordinal) const {
  assert(Ordinal < Regions.size() && "bad region ordinal");
  return Regions[Ordinal]->GX.NumRegs;
}

int RegionExecutionCore::regionFuncIdx(size_t Ordinal) const {
  assert(Ordinal < Regions.size() && "bad region ordinal");
  return Regions[Ordinal]->GX.FuncIdx;
}

const bta::RegionInfo &RegionExecutionCore::regionInfo(size_t Ordinal) const {
  assert(Ordinal < Regions.size() && "bad region ordinal");
  return Regions[Ordinal]->GX.Region;
}

const RegionStats &RegionExecutionCore::stats(size_t Ordinal) const {
  assert(Ordinal < Regions.size() && "bad region ordinal");
  return Regions[Ordinal]->Stats;
}

RegionStats &RegionExecutionCore::statsMutable(size_t Ordinal) {
  assert(Ordinal < Regions.size() && "bad region ordinal");
  return Regions[Ordinal]->Stats;
}

//===----------------------------------------------------------------------===//
// Dispatch sites
//===----------------------------------------------------------------------===//

DispatchSite RegionExecutionCore::siteInfo(size_t Idx) const {
  return siteRef(Idx);
}

const DispatchSite &RegionExecutionCore::siteRef(size_t Idx) const {
  // The lock only orders this read against a concurrent internSite: deque
  // growth never moves existing elements and interned sites are immutable,
  // so the reference stays valid after the lock is released.
  std::lock_guard<std::mutex> Lock(SitesMutex);
  assert(Idx < Sites.size() && "bad dispatch site");
  return Sites[Idx];
}

size_t RegionExecutionCore::numSites() const {
  std::lock_guard<std::mutex> Lock(SitesMutex);
  return Sites.size();
}

uint32_t RegionExecutionCore::internSite(DispatchSite S, bool *Created) {
  std::lock_guard<std::mutex> Lock(SitesMutex);
  for (size_t I = 0; I != Sites.size(); ++I) {
    const DispatchSite &E = Sites[I];
    if (E.RegionOrd == S.RegionOrd && E.PromoId == S.PromoId &&
        E.BakedVals == S.BakedVals) {
      if (Created)
        *Created = false;
      return static_cast<uint32_t>(I);
    }
  }
  Sites.push_back(std::move(S));
  if (Created)
    *Created = true;
  return static_cast<uint32_t>(Sites.size() - 1);
}

//===----------------------------------------------------------------------===//
// Specialization
//===----------------------------------------------------------------------===//

std::shared_ptr<SpecEntry> RegionExecutionCore::specializeInto(
    size_t Ordinal, vm::VM &VMRef, uint32_t PromoId, WordSpan Key,
    WordSpan BakedVals, WordSpan KeyVals) {
  assert(Ordinal < Regions.size() && "bad region ordinal");
  RegionState &R = *Regions[Ordinal];
  const bta::PromoPoint &P = R.GX.Region.Promos[PromoId];

  // Host-time accounting for specializeHostSeconds(): only the outermost
  // invocation accumulates, so re-entrant nested specializations (static
  // calls at specialize time) are not double-counted.
  const bool TimeOutermost = SpecTimerDepth++ == 0;
  const auto HostT0 = std::chrono::steady_clock::now();

  // Copy the span inputs into owned storage before anything can re-enter
  // the run-time: static calls at specialize time dispatch again on this
  // thread, and the front ends pass views of scratch buffers that a nested
  // dispatch recomposes.
  std::vector<Word> KeyCopy(Key.begin(), Key.end());
  std::vector<Word> Vals(R.GX.NumRegs);
  for (size_t I = 0; I != P.BakedRegs.size(); ++I)
    Vals[P.BakedRegs[I]] = I < BakedVals.size() ? BakedVals[I] : Word();
  for (size_t I = 0; I != P.KeyRegs.size(); ++I)
    Vals[P.KeyRegs[I]] = KeyVals[I];

  auto Chain =
      std::allocate_shared<CodeChain>(PoolAllocator<CodeChain>(R.Pool));
  Chain->Ordinal = ChainCounter.fetch_add(1, std::memory_order_relaxed) + 1;
  Chain->Region = static_cast<uint32_t>(Ordinal);
  Chain->CO.NumRegs = R.GX.NumRegs;
  // The backend opens the chain's code buffer: dynamic-code marking plus
  // the simulated address reservation (the region code cap, so distinct
  // chains' I-cache footprints never alias).
  BK->beginRegion(Chain->CO, Prog,
                  static_cast<uint64_t>(Flags.MaxRegionInstrs) * 4);
  if (R.ChainNamePrefix.empty())
    R.ChainNamePrefix = M.function(R.GX.FuncIdx).Name + ".chain";
  Chain->CO.Name = R.ChainNamePrefix + std::to_string(Chain->Ordinal);

  // Staged emit plan: built once per region on first specialization (the
  // caller serializes specializeInto, and nested re-entrant runs happen on
  // this thread after the pointer below is captured, so a nested run of
  // the same region sees the already-built plan as a hit). The plan
  // depends only on the immutable GX and the flag fingerprint, so it is
  // never invalidated by chain eviction or Version churn.
  const cogen::EmitPlan *PlanPtr = nullptr;
  if (PlanOn) {
    if (!R.Plan || R.Plan->FlagsFingerprint != Flags.fingerprint()) {
      R.Plan = std::allocate_shared<cogen::EmitPlan>(
          PoolAllocator<cogen::EmitPlan>(R.Pool),
          cogen::buildEmitPlan(R.GX, Flags));
      ++R.Stats.PlanBuilds;
      R.Stats.PlanBytes += R.Plan->Bytes;
    } else {
      ++R.Stats.PlanHits;
    }
    PlanPtr = R.Plan.get();
  }

  uint32_t Entry;
  {
    // The driver's scratch comes from the region's bump arena; the scope
    // rolls it back when the run (and any nested runs, which open nested
    // scopes) finishes. The driver is destroyed before the scope.
    BumpArena::Scope ScratchScope(R.Scratch);
    UnrollDriver Driver(*this, R, static_cast<uint32_t>(Ordinal), VMRef,
                        Flags, Chain->CO, Chain->ExitStubs,
                        Chain->DispatchStubs, Chain->OsrEntries, R.Scratch,
                        PlanPtr);
    Entry = Driver.run(P.TargetCtx, std::move(Vals));
  }
  Chain->Instrs = static_cast<uint32_t>(Chain->CO.Code.size());
  // Hand the finished emission — the bytecode stream plus every PC where
  // control can enter from outside — to the backend. The bytecode backend
  // returns no artifact (VMs translate lazily); the template backend
  // pre-fuses the chain into superblocks and installs the shared
  // translation before publication.
  Chain->Artifact = BK->compileRegion(
      backend::RegionEmission{Chain->CO, Entry, Chain->ExitStubs,
                              Chain->DispatchStubs},
      VMRef);
  Chains.add(Chain);

  auto E = std::allocate_shared<SpecEntry>(PoolAllocator<SpecEntry>(R.Pool));
  E->Key = std::move(KeyCopy);
  E->Hash = hashWords(E->Key.data(), E->Key.size());
  E->Point = PromoId; // front ends with their own numbering overwrite this
  E->Region = static_cast<uint32_t>(Ordinal);
  E->PromoId = PromoId;
  E->EntryPC = Entry;
  E->Chain = std::move(Chain);
  E->Use = std::allocate_shared<EntryStats>(PoolAllocator<EntryStats>(R.Pool));
  E->Ordinal = E->Chain->Ordinal;

  --SpecTimerDepth;
  if (TimeOutermost)
    SpecHostSecs += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - HostT0)
                        .count();
  return E;
}

std::shared_ptr<CodeChain> RegionExecutionCore::restoreChain(
    size_t Ordinal, vm::VM &VMRef, std::vector<vm::Instr> Code,
    uint32_t EntryPC, std::map<ir::BlockId, uint32_t> ExitStubs,
    std::map<uint32_t, uint32_t> DispatchStubs,
    std::map<ir::BlockId, uint32_t> OsrEntries) {
  assert(Ordinal < Regions.size() && "bad region ordinal");
  RegionState &R = *Regions[Ordinal];

  auto Chain =
      std::allocate_shared<CodeChain>(PoolAllocator<CodeChain>(R.Pool));
  Chain->Ordinal = ChainCounter.fetch_add(1, std::memory_order_relaxed) + 1;
  Chain->Region = static_cast<uint32_t>(Ordinal);
  Chain->CO.NumRegs = R.GX.NumRegs;
  BK->beginRegion(Chain->CO, Prog,
                  static_cast<uint64_t>(Flags.MaxRegionInstrs) * 4);
  if (R.ChainNamePrefix.empty())
    R.ChainNamePrefix = M.function(R.GX.FuncIdx).Name + ".chain";
  Chain->CO.Name = R.ChainNamePrefix + std::to_string(Chain->Ordinal);
  Chain->CO.Code = std::move(Code);
  Chain->ExitStubs = std::move(ExitStubs);
  Chain->DispatchStubs = std::move(DispatchStubs);
  Chain->OsrEntries = std::move(OsrEntries);
  Chain->Instrs = static_cast<uint32_t>(Chain->CO.Code.size());
  Chain->Artifact = BK->compileRegion(
      backend::RegionEmission{Chain->CO, EntryPC, Chain->ExitStubs,
                              Chain->DispatchStubs},
      VMRef);
  Chains.add(Chain);
  return Chain;
}

//===----------------------------------------------------------------------===//
// Capacity + eviction
//===----------------------------------------------------------------------===//

void RegionExecutionCore::admit(std::shared_ptr<SpecEntry> E,
                                const UnpublishFn &Unpublish) {
  assert(E->Region < Books.size() && "bad region ordinal");
  RegionBook &B = Books[E->Region];
  const SpecEntry *Fresh = E.get();
  B.Instrs += E->Chain ? E->Chain->Instrs : 0;
  B.Records.push_back(std::move(E));

  // CLOCK sweep: clear set reference bits; evict the first clear record
  // that is not the one just admitted. Two full laps guarantee a victim
  // (after one lap every bit is clear).
  size_t Guard = 2 * B.Records.size() + 2;
  while (overBudget(B) && B.Records.size() > 1 && Guard--) {
    if (B.Hand >= B.Records.size())
      B.Hand = 0;
    std::shared_ptr<SpecEntry> &Cand = B.Records[B.Hand];
    if (Cand.get() == Fresh) {
      ++B.Hand;
      continue;
    }
    if (Cand->Use && Cand->Use->RefBit.exchange(false,
                                                std::memory_order_acq_rel)) {
      ++B.Hand; // recently used: second chance
      continue;
    }
    if (Unpublish)
      Unpublish(*Cand);
    if (Cand->Chain) {
      Cand->Chain->Evicted.store(true, std::memory_order_release);
      B.Instrs -= Cand->Chain->Instrs;
      // Eagerly retire the backend artifact: adopters keep executing off
      // their own shared references, but the registry must not pin an
      // evicted chain's translation.
      BK->releaseArtifact(Cand->Chain->CO);
      Cand->Chain->Artifact.reset();
    }
    ++Regions[Cand->Region]->Stats.Evictions;
    B.Records.erase(B.Records.begin() + static_cast<long>(B.Hand));
    // Hand stays: it now points at the next record.
  }
}

void RegionExecutionCore::displaced(const std::shared_ptr<SpecEntry> &E,
                                    ir::CachePolicy Policy) {
  assert(E->Region < Books.size() && "bad region ordinal");
  if (E->Chain) {
    E->Chain->Evicted.store(true, std::memory_order_release);
    BK->releaseArtifact(E->Chain->CO);
    E->Chain->Artifact.reset();
  }
  // One-slot mismatch replacement is the inline runtime's historical
  // eviction event; hashed/indexed displacement (same key or same index
  // word) replaces rather than evicts.
  if (Policy == ir::CachePolicy::CacheOne ||
      Policy == ir::CachePolicy::CacheOneUnchecked)
    ++Regions[E->Region]->Stats.Evictions;

  RegionBook &B = Books[E->Region];
  auto It = std::find_if(
      B.Records.begin(), B.Records.end(),
      [&](const std::shared_ptr<SpecEntry> &R) { return R.get() == E.get(); });
  if (It == B.Records.end())
    return;
  B.Instrs -= (*It)->Chain ? (*It)->Chain->Instrs : 0;
  size_t Idx = static_cast<size_t>(It - B.Records.begin());
  B.Records.erase(It);
  if (B.Hand > Idx)
    --B.Hand;
}

size_t RegionExecutionCore::residentEntries(size_t Ordinal) const {
  assert(Ordinal < Books.size() && "bad region ordinal");
  return Books[Ordinal].Records.size();
}

uint64_t RegionExecutionCore::residentInstrs(size_t Ordinal) const {
  assert(Ordinal < Books.size() && "bad region ordinal");
  return Books[Ordinal].Instrs;
}

//===----------------------------------------------------------------------===//
// Reporting
//===----------------------------------------------------------------------===//

std::string RegionExecutionCore::disassembleRegion(size_t Ordinal) const {
  assert(Ordinal < Regions.size() && "bad region ordinal");
  std::string Out;
  for (const std::shared_ptr<CodeChain> &C :
       Chains.chainsOfRegion(static_cast<uint32_t>(Ordinal)))
    Out += vm::disassemble(C->CO);
  return Out;
}

std::string RegionExecutionCore::printRegion(size_t Ordinal,
                                             const ir::Module &Mod) const {
  assert(Ordinal < Regions.size() && "bad region ordinal");
  const cogen::GenExtFunction &GX = Regions[Ordinal]->GX;
  return cogen::printGenExt(GX, Mod.function(GX.FuncIdx));
}

} // namespace runtime
} // namespace dyc
