//===- runtime/RegionExec.h - Shared region-execution core ------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single backend both front ends (the inline runtime::DycRuntime and
/// the concurrent server::SpecServer) build on. There is ONE
/// representation of generated code everywhere: the immutable, per-run
/// code chain. Every specialization run emits into a fresh CodeObject with
/// fresh stub maps; chains never branch into each other — cross-version
/// control flow always goes through a Dispatch trap — so evicting a chain
/// can never leave a dangling jump, inline or in the server.
///
/// The core owns, per region: the generating extension and its metadata,
/// the run-time statistics, the specialize-time static-call memo, the
/// dispatch-site table, and the capacity book (CLOCK eviction against a
/// ChainBudget). It owns globally: the chain registry that keeps evicted
/// chains alive until their active-executor count — maintained from the
/// VM's onDynamicCodeExit callback — drains to zero.
///
/// What the core does NOT own is the dispatch cache: each front end maps
/// keys to published SpecEntries its own way (per-promotion CodeCache
/// inline; lock-free ShardedCache snapshots in the server) and tells the
/// core about displacements so eviction bookkeeping stays identical.
///
/// Concurrency contract: specializeInto / admit / displaced and the
/// resident/disassembly accessors must be serialized by the caller (the
/// server holds its specialization lock; the inline runtime is
/// single-threaded). internSite / siteInfo and the chain registry are
/// internally thread-safe — clients resolve sites and release executors
/// while workers specialize.
///
/// Interaction with the VM's predecoded translation cache: translations
/// are keyed by CodeObject::BaseAddr, and Program::allocCodeAddr never
/// reuses an address, so a freed chain's stale translation can never be
/// reached through a newly published chain. A front end that unpublishes
/// a chain (admit's eviction callback, one-slot displacement) should also
/// call backend().invalidate(VM, CO) — VM::invalidateDecoded plus
/// backend-artifact release — so neither the translation cache nor the
/// backend's registry pins memory for code the registry is about to free;
/// the VM additionally revalidates every translation against
/// (Code.size(), Version) when it enters a code object, which is what
/// makes Emitter rewrites (branch patching, hole filling — they bump
/// Version) safe even without eager invalidation.
///
/// Execution backends: the core owns one backend::ExecutionBackend,
/// selected from OptFlags::Backend at construction, and brackets every
/// specialization run with it (beginRegion / compileRegion). The core
/// itself releases backend artifacts when it evicts or displaces a chain,
/// so eager reclamation holds for all front ends — including the server,
/// whose client VMs the core cannot reach.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_RUNTIME_REGIONEXEC_H
#define DYC_RUNTIME_REGIONEXEC_H

#include "backend/Backend.h"
#include "bta/OptFlags.h"
#include "cogen/CompilerGenerator.h"
#include "cogen/EmitPlan.h"
#include "runtime/RuntimeStats.h"
#include "support/Arena.h"
#include "vm/VM.h"

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

namespace dyc {
namespace runtime {

/// Generated-code budget per region. Zeros mean unbounded, the paper's
/// behavior — DyC never freed dynamically generated code.
struct ChainBudget {
  size_t MaxEntries = 0;  ///< cached specializations per region
  uint64_t MaxInstrs = 0; ///< total emitted instructions per region
};

/// One specialization run's output: code plus the stub maps that run
/// created. Immutable after the run completes (publication happens-before
/// any client execution via the front end's cache publication).
struct CodeChain {
  vm::CodeObject CO;
  /// Stubs created by this run only (exit block -> PC, site -> PC).
  std::map<ir::BlockId, uint32_t> ExitStubs;
  std::map<uint32_t, uint32_t> DispatchStubs;
  /// Mid-loop (OSR) entry points: IR block -> chain PC, recorded for
  /// blocks the run placed exactly once. A multi-placed block (unrolled
  /// loop head) has no single residual pc a generic frame could transfer
  /// to, so it is excluded. Immutable after the run, like the stub maps.
  std::map<ir::BlockId, uint32_t> OsrEntries;
  /// Clients currently executing inside CO.
  std::atomic<uint32_t> ActiveRefs{0};
  /// Set (under the owner's serialization) when the chain's cache entry is
  /// removed — by capacity eviction or one-slot displacement.
  std::atomic<bool> Evicted{false};
  uint64_t Ordinal = 0; ///< creation order across all regions
  uint32_t Region = 0;  ///< owning region ordinal
  uint32_t Instrs = 0;  ///< CO.Code.size() at publication
  /// The backend's installed artifact for this chain (null for the
  /// bytecode backend). Written at publication and reset at
  /// eviction/displacement, both under the owner's serialization; clients
  /// never read it — they reach prebuilt state through the backend's
  /// registry.
  std::shared_ptr<backend::CompiledRegion> Artifact;
};

/// Maps a CodeObject back to its owning chain so onDynamicCodeExit — which
/// only sees the CodeObject pointer — can drop the executor count.
/// Readers (every dispatch and every exit callback) take the shared lock;
/// chain registration and collection take it exclusively.
class ChainRegistry {
public:
  void add(std::shared_ptr<CodeChain> Chain);

  /// Chain owning \p CO, or null.
  std::shared_ptr<CodeChain> find(const vm::CodeObject *CO) const;

  /// Convenience for the exit callback: decrement without copying the
  /// shared_ptr. No-op for unknown CodeObjects.
  void releaseExecutor(const vm::CodeObject *CO) const;

  /// Frees evicted chains whose executor count has drained. Returns how
  /// many were collected. Safe to call at any time: a chain with
  /// ActiveRefs == 0 and Evicted set can no longer be entered (its cache
  /// entry is gone, and entry only happens through a cache).
  size_t collect();

  size_t size() const;

  /// Live chains of one region, sorted by creation ordinal (for region
  /// disassembly).
  std::vector<std::shared_ptr<CodeChain>> chainsOfRegion(uint32_t Region) const;

private:
  mutable std::shared_mutex Mutex;
  std::unordered_map<const vm::CodeObject *, std::shared_ptr<CodeChain>> Map;
};

/// Per-entry usage counters, shared so hit counts and recency survive the
/// server's snapshot rebuilds. Touched by concurrent readers.
struct EntryStats {
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> LastUse{0}; ///< global dispatch tick of last hit
  std::atomic<bool> RefBit{false};  ///< CLOCK reference bit
  /// Multi-tenant adoption marker: the entry was published over a chain
  /// from the cross-tenant store instead of a fresh generating-extension
  /// run. The first client to enter it invalidates the chain's range in
  /// its I-cache, so an adopted chain the client executed in an earlier
  /// residency models as cold code — exactly what the fresh compile a
  /// dedicated server would have produced looks like.
  std::atomic<bool> ColdEntryPending{false};
};

/// One published specialization: key -> (chain, entry PC). This is the
/// unit both front-end caches store and the capacity book evicts.
struct SpecEntry {
  std::vector<Word> Key;
  uint64_t Hash = 0;
  size_t Point = 0;     ///< front-end cache point (server: global point id)
  uint32_t Region = 0;  ///< owning region ordinal
  uint32_t PromoId = 0; ///< promotion point within the region
  uint32_t EntryPC = 0; ///< entry offset within Chain->CO
  std::shared_ptr<CodeChain> Chain;
  std::shared_ptr<EntryStats> Use;
  uint64_t Ordinal = 0; ///< == Chain->Ordinal
};

/// Everything the specializer shares across one region's runs.
struct RegionState {
  cogen::GenExtFunction GX;
  RegionStats Stats;
  /// The region's staged emit plan (cogen/EmitPlan.h), built lazily on
  /// first specialization when the plan path is enabled. Depends only on
  /// the immutable GX and the flag fingerprint it records, so it survives
  /// chain eviction and CodeObject::Version churn; storage is recycled
  /// through Pool like the region's other shared objects.
  std::shared_ptr<const cogen::EmitPlan> Plan;
  /// Memo for static calls executed at specialize time.
  std::map<std::vector<uint64_t>, Word> CallMemo;
  /// "<function>.chain" — cached so per-chain naming is one append, not a
  /// chain of temporaries on the specialization path.
  std::string ChainNamePrefix;
  /// Per-context placement counts (unrolling evidence).
  std::vector<uint32_t> CtxPlacements;
  /// Pooled storage for the region's published SpecEntry / CodeChain /
  /// EntryStats objects. Blocks return to the pool when an evicted chain's
  /// last reference drops (the collection safe points), so steady-state
  /// respecialization recycles rather than reallocates. shared_ptr: the
  /// PoolAllocator keeps the pool alive past the core if an embedder holds
  /// an entry longer.
  std::shared_ptr<RecyclingPool> Pool = std::make_shared<RecyclingPool>();
  /// Per-run scratch for the unroll driver (worklist, memo nodes, patch
  /// records). A Scope around each run rolls it back; chunks reach their
  /// high-water mark once and are recycled by every later run. Only
  /// touched under the caller's specialization serialization.
  BumpArena Scratch;
};

/// A run-time dispatch site (emitted Dispatch instruction payload), also
/// returned as the thread-safe snapshot form.
struct DispatchSite {
  uint32_t RegionOrd = 0;
  uint32_t PromoId = 0;
  std::vector<Word> BakedVals; ///< values of the promo's BakedRegs
};

/// The shared region-execution core.
class RegionExecutionCore {
public:
  RegionExecutionCore(const ir::Module &M, vm::Program &Prog,
                      const OptFlags &Flags, ChainBudget Budget = {})
      : M(M), Prog(Prog), Flags(Flags), Budget(Budget),
        BK(backend::createBackend(
            backend::resolveBackendKind(Flags.Backend))),
        PlanOn(cogen::resolveEmitPlanEnabled(Flags.EmitPlan)) {}

  // --- Execution backend ------------------------------------------------------

  /// The backend every specialization run compiles through. attach /
  /// releaseArtifact / invalidate are internally thread-safe;
  /// compileRegion runs under the caller's specialization serialization.
  backend::ExecutionBackend &backend() const { return *BK; }
  const char *backendName() const { return BK->name(); }

  /// Connects \p M to the backend's execution substrate. Front ends call
  /// this for every VM that will execute chains — clients and the
  /// specialization VM itself.
  void attachVM(vm::VM &M) const { BK->attach(M); }

  /// Registers the generating extension for the next annotated function.
  /// Must be called in annotated-ordinal order (the order lowerModule
  /// encoded into EnterRegion instructions), before any client runs.
  void addRegion(cogen::GenExtFunction GX);

  size_t numRegions() const { return Regions.size(); }
  const OptFlags &flags() const { return Flags; }

  /// Host wall-clock seconds spent inside specializeInto, all regions,
  /// outermost invocations only (nested re-entrant runs are covered by
  /// the outer interval). Pure host-side instrumentation — never charged
  /// to any simulated counter — so bench/SpecializeThroughput.cpp can
  /// measure the specializer directly instead of subtracting an execution
  /// baseline. Caller-serialized like specializeInto itself.
  double specializeHostSeconds() const { return SpecHostSecs; }

  // --- Region metadata --------------------------------------------------------

  const bta::PromoPoint &promo(size_t Ordinal, size_t PromoId) const;
  size_t numPromos(size_t Ordinal) const;
  uint32_t regionNumRegs(size_t Ordinal) const;
  int regionFuncIdx(size_t Ordinal) const;
  const bta::RegionInfo &regionInfo(size_t Ordinal) const;

  const RegionStats &stats(size_t Ordinal) const;
  RegionStats &statsMutable(size_t Ordinal);

  // --- Dispatch sites (thread-safe) -------------------------------------------

  DispatchSite siteInfo(size_t Idx) const;

  /// Borrowed reference to an interned site — the dispatch fast path's
  /// copy-free accessor. Sites are immutable once interned and live in a
  /// deque, so the reference stays valid for the core's lifetime; the
  /// internal lock only orders the read against concurrent interning.
  const DispatchSite &siteRef(size_t Idx) const;
  size_t numSites() const;

  /// Finds or creates a dispatch site; returns its index. \p Created, if
  /// non-null, reports whether a new site was interned.
  uint32_t internSite(DispatchSite S, bool *Created = nullptr);

  // --- Specialization (caller-serialized) -------------------------------------

  /// THE specialization entry point: runs the generating extension for
  /// promotion point \p PromoId of region \p Ordinal into a fresh code
  /// chain and returns the published entry. \p BakedVals are the site's
  /// specialize-time values (may be empty for a native entry), \p KeyVals
  /// the promoted registers' current values; \p Key is the front end's
  /// cache key, stored on the entry for later unpublication. All three are
  /// views: they are copied into owned storage before the generating
  /// extension runs, so callers may pass scratch buffers that a nested
  /// dispatch (static calls at specialize time) would clobber. The entry's
  /// Point is the promo id; a front end with its own point numbering
  /// overwrites it before inserting.
  std::shared_ptr<SpecEntry> specializeInto(size_t Ordinal, vm::VM &M,
                                            uint32_t PromoId, WordSpan Key,
                                            WordSpan BakedVals,
                                            WordSpan KeyVals);

  /// Warm-start support: re-registers a chain whose emission was
  /// serialized by a prior process, skipping the generating-extension run.
  /// The core allocates a fresh simulated address range (restoring chains
  /// in their original creation-ordinal order therefore reproduces the
  /// original BaseAddrs), hands the code to the backend exactly as
  /// specializeInto would, and registers the chain. The caller owns cache
  /// publication, as with specializeInto. Caller-serialized.
  std::shared_ptr<CodeChain>
  restoreChain(size_t Ordinal, vm::VM &M, std::vector<vm::Instr> Code,
               uint32_t EntryPC, std::map<ir::BlockId, uint32_t> ExitStubs,
               std::map<uint32_t, uint32_t> DispatchStubs,
               std::map<ir::BlockId, uint32_t> OsrEntries);

  // --- Capacity + eviction (caller-serialized) --------------------------------

  /// Removes an entry from the front end's cache so the next dispatch on
  /// its key misses. Called by the core during capacity eviction, once per
  /// victim, before the victim's chain is marked evicted.
  using UnpublishFn = std::function<void(const SpecEntry &)>;

  /// Accounts the just-published \p E against its region's budget and
  /// evicts CLOCK victims (never \p E itself) until the region fits again.
  /// Victims are unpublished via \p Unpublish, their chains marked
  /// evicted, and the region's Evictions counter bumped.
  void admit(std::shared_ptr<SpecEntry> E, const UnpublishFn &Unpublish);

  /// The front end's cache displaced \p E on insert (one-slot or indexed
  /// same-slot replacement): drop it from the capacity book and mark its
  /// chain evicted. One-slot policies count this as a region eviction
  /// (cache_one mismatch replacement), matching the inline runtime's
  /// historical accounting.
  void displaced(const std::shared_ptr<SpecEntry> &E, ir::CachePolicy Policy);

  size_t residentEntries(size_t Ordinal) const;
  uint64_t residentInstrs(size_t Ordinal) const;

  // --- Chain lifecycle --------------------------------------------------------

  void releaseExecutor(const vm::CodeObject *CO) const {
    Chains.releaseExecutor(CO);
  }
  std::shared_ptr<CodeChain> findChain(const vm::CodeObject *CO) const {
    return Chains.find(CO);
  }
  /// Frees drained evicted chains; the caller must guarantee no client can
  /// be entering them (inline: between VM runs; server: dispatch gate).
  size_t collectChains() { return Chains.collect(); }
  size_t liveChains() const { return Chains.size(); }

  // --- Reporting --------------------------------------------------------------

  /// Disassembles every live chain of a region in creation order.
  std::string disassembleRegion(size_t Ordinal) const;

  /// Renders a region's generating extension (set-up/emit programs).
  std::string printRegion(size_t Ordinal, const ir::Module &Mod) const;

private:
  /// CLOCK book of resident entries for one region.
  struct RegionBook {
    std::vector<std::shared_ptr<SpecEntry>> Records;
    size_t Hand = 0; ///< CLOCK hand
    uint64_t Instrs = 0;
  };

  bool overBudget(const RegionBook &B) const {
    return (Budget.MaxEntries && B.Records.size() > Budget.MaxEntries) ||
           (Budget.MaxInstrs && B.Instrs > Budget.MaxInstrs);
  }

  const ir::Module &M;
  vm::Program &Prog;
  OptFlags Flags;
  ChainBudget Budget;
  std::unique_ptr<backend::ExecutionBackend> BK;
  /// Resolved once at construction (OptFlags::EmitPlan / DYC_EMIT_PLAN):
  /// whether specialization runs execute through staged emit plans.
  bool PlanOn;

  std::vector<std::unique_ptr<RegionState>> Regions;
  std::vector<RegionBook> Books; ///< parallel to Regions

  ChainRegistry Chains;
  std::atomic<uint64_t> ChainCounter{0};

  /// specializeHostSeconds bookkeeping (caller-serialized with
  /// specializeInto; depth gates out nested re-entrant runs).
  double SpecHostSecs = 0;
  unsigned SpecTimerDepth = 0;

  /// Deque, not vector: siteRef hands out long-lived references, and deque
  /// growth never relocates existing elements.
  std::deque<DispatchSite> Sites;
  /// Guards Sites: background specialization interns sites while client
  /// threads resolve them.
  mutable std::mutex SitesMutex;
};

/// Charges one dispatch's model-level cost under \p Policy — the paper's
/// section 2.2.3/4.4.3 numbers, shared by both front ends (and by the
/// inline-cached fast path, which must charge exactly what the probe it
/// short-circuited would have). \p Probes is the cache_all probe count
/// (memoized or fresh); \p KeyWords the full key length.
inline void chargeDispatchCost(vm::VM &M, ir::CachePolicy Policy,
                               size_t KeyWords, unsigned Probes) {
  const vm::CostModel &CM = M.costModel();
  switch (Policy) {
  case ir::CachePolicy::CacheAll:
    M.chargeExec(
        CM.hashedDispatchCost(static_cast<unsigned>(KeyWords), Probes));
    break;
  case ir::CachePolicy::CacheOne:
    M.chargeExec(CM.DispatchUnchecked + 2 * static_cast<unsigned>(KeyWords));
    break;
  case ir::CachePolicy::CacheOneUnchecked:
    M.chargeExec(CM.DispatchUnchecked);
    break;
  case ir::CachePolicy::CacheIndexed:
    M.chargeExec(CM.DispatchIndexed);
    break;
  }
}

} // namespace runtime
} // namespace dyc

#endif // DYC_RUNTIME_REGIONEXEC_H
