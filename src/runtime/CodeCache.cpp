//===- runtime/CodeCache.cpp -------------------------------------------------------===//

#include "runtime/CodeCache.h"

namespace dyc {
namespace runtime {

size_t CodeCache::entries() const {
  switch (Policy) {
  case ir::CachePolicy::CacheAll:
    return Table.size();
  case ir::CachePolicy::CacheIndexed:
    return IndexedCount;
  default:
    return HasOne ? 1 : 0;
  }
}

CacheResult CodeCache::lookup(const std::vector<Word> &Key) const {
  ++Lookups;
  CacheResult R;
  switch (Policy) {
  case ir::CachePolicy::CacheAll: {
    uint32_t V = Table.lookup(Key, &R.Probes);
    R.Hit = V != DoubleHashTable::NotFound;
    R.Value = R.Hit ? V : 0;
    return R;
  }
  case ir::CachePolicy::CacheOne:
    R.Hit = HasOne && OneKey == Key;
    R.Value = R.Hit ? OneValue : 0;
    return R;
  case ir::CachePolicy::CacheOneUnchecked:
    // A resident entry is used without comparing keys.
    R.Hit = HasOne;
    R.Value = R.Hit ? OneValue : 0;
    return R;
  case ir::CachePolicy::CacheIndexed: {
    assert(IndexPos < Key.size() && "indexed cache needs its index key");
    uint64_t Idx = Key[IndexPos].Bits;
    if (Idx >= MaxIndexedKey)
      fatal("cache_indexed key outside the supported small range");
    if (Idx >= Indexed.size() || Indexed[Idx] == NotPresent)
      return R;
    R.Hit = true;
    R.Value = Indexed[Idx];
    return R;
  }
  }
  return R;
}

void CodeCache::insert(const std::vector<Word> &Key, uint32_t Value) {
  if (Policy == ir::CachePolicy::CacheAll) {
    Table.insert(Key, Value);
    return;
  }
  if (Policy == ir::CachePolicy::CacheIndexed) {
    uint64_t Idx = Key[IndexPos].Bits;
    if (Idx >= MaxIndexedKey)
      fatal("cache_indexed key outside the supported small range");
    if (Idx >= Indexed.size())
      Indexed.resize(Idx + 1, NotPresent);
    if (Indexed[Idx] == NotPresent)
      ++IndexedCount;
    Indexed[Idx] = Value;
    return;
  }
  HasOne = true;
  OneKey = Key;
  OneValue = Value;
}

} // namespace runtime
} // namespace dyc
