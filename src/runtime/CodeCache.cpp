//===- runtime/CodeCache.cpp -------------------------------------------------------===//

#include "runtime/CodeCache.h"

namespace dyc {
namespace runtime {

CodeCache::CodeCache(const CodeCache &O)
    : Policy(O.Policy), IndexPos(O.IndexPos), Table(O.Table),
      HasOne(O.HasOne), OneKey(O.OneKey), OneValue(O.OneValue),
      Indexed(O.Indexed), IndexedCount(O.IndexedCount), Epoch(O.Epoch),
      Lookups(O.Lookups.load(std::memory_order_relaxed)) {}

CodeCache &CodeCache::operator=(const CodeCache &O) {
  Policy = O.Policy;
  IndexPos = O.IndexPos;
  Table = O.Table;
  HasOne = O.HasOne;
  OneKey = O.OneKey;
  OneValue = O.OneValue;
  Indexed = O.Indexed;
  IndexedCount = O.IndexedCount;
  Epoch = O.Epoch;
  Lookups.store(O.Lookups.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  return *this;
}

size_t CodeCache::entries() const {
  switch (Policy) {
  case ir::CachePolicy::CacheAll:
    return Table.size();
  case ir::CachePolicy::CacheIndexed:
    return IndexedCount + Table.size();
  default:
    return HasOne ? 1 : 0;
  }
}

CacheResult CodeCache::lookup(WordSpan Key) const {
  Lookups.fetch_add(1, std::memory_order_relaxed);
  CacheResult R;
  switch (Policy) {
  case ir::CachePolicy::CacheAll: {
    uint32_t V = Table.lookup(Key, &R.Probes);
    R.Hit = V != DoubleHashTable::NotFound;
    R.Value = R.Hit ? V : 0;
    return R;
  }
  case ir::CachePolicy::CacheOne:
    R.Hit = HasOne && OneKey == Key;
    R.Value = R.Hit ? OneValue : 0;
    return R;
  case ir::CachePolicy::CacheOneUnchecked:
    // A resident entry is used without comparing keys.
    R.Hit = HasOne;
    R.Value = R.Hit ? OneValue : 0;
    return R;
  case ir::CachePolicy::CacheIndexed: {
    assert(IndexPos < Key.size() && "indexed cache needs its index key");
    uint64_t Idx = Key[IndexPos].Bits;
    if (Idx >= MaxIndexedKey) {
      // Out-of-range index value: safe fallback to the checked hash path
      // (full-key comparison, cache_all dispatch cost).
      uint32_t V = Table.lookup(Key, &R.Probes);
      R.Hit = V != DoubleHashTable::NotFound;
      R.Value = R.Hit ? V : 0;
      return R;
    }
    if (Idx >= Indexed.size() || Indexed[Idx] == NotPresent)
      return R;
    R.Hit = true;
    R.Value = Indexed[Idx];
    return R;
  }
  }
  return R;
}

bool CodeCache::insert(WordSpan Key, uint32_t Value, uint32_t *DisplacedOut) {
  ++Epoch;
  if (DisplacedOut)
    *DisplacedOut = NoValue;
  if (Policy == ir::CachePolicy::CacheAll) {
    uint32_t Old = DoubleHashTable::NotFound;
    Table.insert(Key, Value, &Old);
    if (DisplacedOut && Old != DoubleHashTable::NotFound)
      *DisplacedOut = Old;
    return false;
  }
  if (Policy == ir::CachePolicy::CacheIndexed) {
    uint64_t Idx = Key[IndexPos].Bits;
    if (Idx >= MaxIndexedKey) {
      uint32_t Old = DoubleHashTable::NotFound;
      Table.insert(Key, Value, &Old);
      if (DisplacedOut && Old != DoubleHashTable::NotFound)
        *DisplacedOut = Old;
      return false;
    }
    if (Idx >= Indexed.size())
      Indexed.resize(Idx + 1, NotPresent);
    if (Indexed[Idx] == NotPresent)
      ++IndexedCount;
    else if (DisplacedOut)
      *DisplacedOut = Indexed[Idx];
    Indexed[Idx] = Value;
    return false;
  }
  bool Evicted = HasOne && WordSpan(OneKey) != Key;
  if (HasOne && DisplacedOut)
    *DisplacedOut = OneValue;
  HasOne = true;
  OneKey.assign(Key.begin(), Key.end());
  OneValue = Value;
  return Evicted;
}

void CodeCache::erase(WordSpan Key) {
  ++Epoch;
  switch (Policy) {
  case ir::CachePolicy::CacheAll:
    Table.erase(Key);
    return;
  case ir::CachePolicy::CacheIndexed: {
    uint64_t Idx = Key[IndexPos].Bits;
    if (Idx >= MaxIndexedKey) {
      Table.erase(Key);
      return;
    }
    if (Idx < Indexed.size() && Indexed[Idx] != NotPresent) {
      Indexed[Idx] = NotPresent;
      --IndexedCount;
    }
    return;
  }
  case ir::CachePolicy::CacheOne:
  case ir::CachePolicy::CacheOneUnchecked:
    if (HasOne && OneKey == Key) {
      HasOne = false;
      OneKey.clear();
      OneValue = 0;
    }
    return;
  }
}

} // namespace runtime
} // namespace dyc
