//===- runtime/Emitter.cpp - Resolved-instruction encoder --------------------------===//

#include "runtime/Emitter.h"

#include "ir/ConstEval.h"

namespace dyc {
namespace runtime {

using ir::Opcode;
namespace v = vm;

v::Op vmOpOf(Opcode Op) {
  switch (Op) {
  case Opcode::Add: return v::Op::Add;
  case Opcode::Sub: return v::Op::Sub;
  case Opcode::Mul: return v::Op::Mul;
  case Opcode::Div: return v::Op::Div;
  case Opcode::Rem: return v::Op::Rem;
  case Opcode::And: return v::Op::And;
  case Opcode::Or: return v::Op::Or;
  case Opcode::Xor: return v::Op::Xor;
  case Opcode::Shl: return v::Op::Shl;
  case Opcode::Shr: return v::Op::Shr;
  case Opcode::Neg: return v::Op::Neg;
  case Opcode::FAdd: return v::Op::FAdd;
  case Opcode::FSub: return v::Op::FSub;
  case Opcode::FMul: return v::Op::FMul;
  case Opcode::FDiv: return v::Op::FDiv;
  case Opcode::FNeg: return v::Op::FNeg;
  case Opcode::CmpEq: return v::Op::CmpEq;
  case Opcode::CmpNe: return v::Op::CmpNe;
  case Opcode::CmpLt: return v::Op::CmpLt;
  case Opcode::CmpLe: return v::Op::CmpLe;
  case Opcode::CmpGt: return v::Op::CmpGt;
  case Opcode::CmpGe: return v::Op::CmpGe;
  case Opcode::FCmpEq: return v::Op::FCmpEq;
  case Opcode::FCmpNe: return v::Op::FCmpNe;
  case Opcode::FCmpLt: return v::Op::FCmpLt;
  case Opcode::FCmpLe: return v::Op::FCmpLe;
  case Opcode::FCmpGt: return v::Op::FCmpGt;
  case Opcode::FCmpGe: return v::Op::FCmpGe;
  case Opcode::IToF: return v::Op::IToF;
  case Opcode::FToI: return v::Op::FToI;
  default:
    fatal("opcode has no reg-reg VM form in the emitter");
  }
}

v::Op immFormOf(Opcode Op) {
  switch (Op) {
  case Opcode::Add: return v::Op::AddI;
  case Opcode::Sub: return v::Op::SubI;
  case Opcode::Mul: return v::Op::MulI;
  case Opcode::Div: return v::Op::DivI;
  case Opcode::Rem: return v::Op::RemI;
  case Opcode::And: return v::Op::AndI;
  case Opcode::Or: return v::Op::OrI;
  case Opcode::Xor: return v::Op::XorI;
  case Opcode::Shl: return v::Op::ShlI;
  case Opcode::Shr: return v::Op::ShrI;
  case Opcode::CmpEq: return v::Op::CmpEqI;
  case Opcode::CmpNe: return v::Op::CmpNeI;
  case Opcode::CmpLt: return v::Op::CmpLtI;
  case Opcode::CmpLe: return v::Op::CmpLeI;
  case Opcode::CmpGt: return v::Op::CmpGtI;
  case Opcode::CmpGe: return v::Op::CmpGeI;
  case Opcode::FAdd: return v::Op::FAddI;
  case Opcode::FSub: return v::Op::FSubI;
  case Opcode::FMul: return v::Op::FMulI;
  case Opcode::FDiv: return v::Op::FDivI;
  default: return v::Op::Halt;
  }
}

bool isCommutativeOpcode(Opcode Op) {
  switch (Op) {
  case Opcode::Add: case Opcode::Mul: case Opcode::And: case Opcode::Or:
  case Opcode::Xor: case Opcode::FAdd: case Opcode::FMul:
  case Opcode::CmpEq: case Opcode::CmpNe:
    return true;
  default:
    return false;
  }
}

Opcode mirrorCompare(Opcode Op) {
  switch (Op) {
  case Opcode::CmpLt: return Opcode::CmpGt;
  case Opcode::CmpLe: return Opcode::CmpGe;
  case Opcode::CmpGt: return Opcode::CmpLt;
  case Opcode::CmpGe: return Opcode::CmpLe;
  default: return Op;
  }
}

bool isUnaryOpcode(Opcode Op) {
  switch (Op) {
  case Opcode::Mov: case Opcode::Neg: case Opcode::FNeg:
  case Opcode::IToF: case Opcode::FToI:
    return true;
  default:
    return false;
  }
}

void Emitter::emitRaw(v::Instr I) {
  if (Buf.Code.size() >= MaxInstrs)
    ++Stats.CodeCapHits; // soft cap: count, don't truncate or abort
  Buf.Code.push_back(I);
  ++Stats.InstructionsGenerated;
  charge(CM.SpecEmit);
}

void Emitter::emitConst(uint32_t Dst, Word C, ir::Type Ty) {
  charge(CM.SpecEmitHole);
  if (Ty == ir::Type::F64)
    emitRaw({v::Op::ConstF, Dst, 0, 0, static_cast<int64_t>(C.Bits)});
  else
    emitRaw({v::Op::ConstI, Dst, 0, 0, C.asInt()});
}

uint32_t Emitter::regOf(const RVal &A, ir::Type Ty, uint32_t Scratch) {
  if (!A.IsConst)
    return A.R;
  emitConst(Scratch, A.C, Ty);
  return Scratch;
}

void Emitter::emitResolved(Opcode Op, ir::Type Ty, uint32_t Dst,
                           const RVal &A, const RVal &B, int64_t Imm) {
  switch (Op) {
  case Opcode::ConstI:
  case Opcode::ConstF:
    emitConst(Dst, Word{static_cast<uint64_t>(Imm)}, Ty);
    return;
  case Opcode::Mov:
    if (A.IsConst) {
      emitConst(Dst, A.C, Ty);
    } else if (A.R != Dst) {
      emitRaw({Ty == ir::Type::F64 ? v::Op::FMov : v::Op::Mov, Dst, A.R});
    }
    return;
  case Opcode::Neg:
  case Opcode::FNeg:
  case Opcode::IToF:
  case Opcode::FToI: {
    if (A.IsConst) {
      Word Out;
      if (ir::evalPureOp(Op, A.C, Word(), Out)) {
        emitConst(Dst, Out, Ty);
        return;
      }
    }
    emitRaw({vmOpOf(Op), Dst,
             regOf(A, Ty == ir::Type::F64 && Op != Opcode::FToI
                          ? ir::Type::F64
                          : ir::Type::I64,
                   GX.Scratch0)});
    return;
  }
  case Opcode::Load:
    if (A.IsConst) {
      charge(CM.SpecEmitHole);
      emitRaw({v::Op::LoadAbs, Dst, 0, 0, A.C.asInt() + Imm});
    } else {
      emitRaw({v::Op::Load, Dst, A.R, 0, Imm});
    }
    return;
  case Opcode::Store: {
    // A = address, B = value.
    uint32_t ValReg = regOf(B, ir::Type::I64, GX.Scratch0);
    if (A.IsConst) {
      charge(CM.SpecEmitHole);
      emitRaw({v::Op::StoreAbs, ValReg, 0, 0, A.C.asInt() + Imm});
    } else {
      emitRaw({v::Op::Store, ValReg, A.R, 0, Imm});
    }
    return;
  }
  default:
    break;
  }

  // Binary arithmetic / comparison.
  if (A.IsConst && B.IsConst) {
    Word Out;
    if (ir::evalPureOp(Op, A.C, B.C, Out)) {
      emitConst(Dst, Out, Ty);
      return;
    }
    // Unfoldable (division by zero): emit faithfully so the fault
    // happens at run time, as it would have in static code.
    uint32_t RA = regOf(A, ir::Type::I64, GX.Scratch0);
    uint32_t RB = regOf(B, ir::Type::I64, GX.Scratch1);
    emitRaw({vmOpOf(Op), Dst, RA, RB});
    return;
  }
  if (!A.IsConst && B.IsConst) {
    v::Op IF = immFormOf(Op);
    if (IF != v::Op::Halt) {
      charge(CM.SpecEmitHole);
      emitRaw({IF, Dst, A.R, 0, static_cast<int64_t>(B.C.Bits)});
      return;
    }
    bool FloatOperand = Op == Opcode::FCmpEq || Op == Opcode::FCmpNe ||
                        Op == Opcode::FCmpLt || Op == Opcode::FCmpLe ||
                        Op == Opcode::FCmpGt || Op == Opcode::FCmpGe;
    uint32_t RB = regOf(B, FloatOperand ? ir::Type::F64 : ir::Type::I64,
                        GX.Scratch1);
    emitRaw({vmOpOf(Op), Dst, A.R, RB});
    return;
  }
  if (A.IsConst && !B.IsConst) {
    if (isCommutativeOpcode(Op)) {
      emitResolved(Op, Ty, Dst, B, A, Imm);
      return;
    }
    Opcode Mirrored = mirrorCompare(Op);
    if (Mirrored != Op) {
      emitResolved(Mirrored, Ty, Dst, B, A, Imm);
      return;
    }
    bool FloatOperand = Op == Opcode::FSub || Op == Opcode::FDiv;
    uint32_t RA = regOf(A, FloatOperand ? ir::Type::F64 : ir::Type::I64,
                        GX.Scratch0);
    emitRaw({vmOpOf(Op), Dst, RA, B.R});
    return;
  }
  emitRaw({vmOpOf(Op), Dst, A.R, B.R});
}

} // namespace runtime
} // namespace dyc
