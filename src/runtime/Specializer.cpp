//===- runtime/Specializer.cpp - The inline DyC run-time ---------------------------===//

#include "runtime/Specializer.h"

namespace dyc {
namespace runtime {

void DycRuntime::addRegion(cogen::GenExtFunction GX) {
  Front F;
  for (const bta::PromoPoint &P : GX.Region.Promos)
    F.PromoCaches.emplace_back(P.Policy, P.IndexKeyPos);
  Fronts.push_back(std::move(F));
  Core.addRegion(std::move(GX));
}

void DycRuntime::retireSlot(vm::VM &VMRef, Front &F, uint32_t Slot,
                            ir::CachePolicy Policy) {
  if (Slot >= F.Slots.size() || !F.Slots[Slot])
    return;
  if (F.Slots[Slot]->Chain)
    VMRef.invalidateDecoded(F.Slots[Slot]->Chain->CO);
  Core.displaced(F.Slots[Slot], Policy);
  F.Slots[Slot].reset();
}

vm::RuntimeHook::Target DycRuntime::dispatch(vm::VM &VMRef, int64_t PointId,
                                             std::vector<Word> &Regs) {
  uint32_t Ord, PromoId;
  bool HaveSite = false;
  DispatchSite Site;
  if (PointId >= 0) {
    Ord = static_cast<uint32_t>(PointId >> 16);
    PromoId = static_cast<uint32_t>(PointId & 0xffff);
  } else {
    // Copy the site out of the core's guarded table (the table only grows
    // from this thread inline, but the accessor is the shared code path).
    Site = Core.siteInfo(static_cast<size_t>(-(PointId + 1)));
    HaveSite = true;
    Ord = Site.RegionOrd;
    PromoId = Site.PromoId;
  }
  assert(Ord < Core.numRegions() && "bad region ordinal");
  Front &F = Fronts[Ord];
  const bta::PromoPoint &P = Core.promo(Ord, PromoId);
  RegionStats &St = Core.statsMutable(Ord);

  // Compose the cache key: baked specialize-time values, then the
  // promoted variables' current run-time values.
  std::vector<Word> Key;
  if (HaveSite)
    Key = Site.BakedVals;
  for (ir::Reg Rg : P.KeyRegs)
    Key.push_back(Regs[Rg]);

  CodeCache &Cache = F.PromoCaches[PromoId];
  CacheResult CR = Cache.lookup(Key);

  const vm::CostModel &CM = VMRef.costModel();
  switch (Cache.policy()) {
  case ir::CachePolicy::CacheAll:
    VMRef.chargeExec(CM.hashedDispatchCost(
        static_cast<unsigned>(Key.size()), CR.Probes));
    break;
  case ir::CachePolicy::CacheOne:
    VMRef.chargeExec(CM.DispatchUnchecked +
                     2 * static_cast<unsigned>(Key.size()));
    break;
  case ir::CachePolicy::CacheOneUnchecked:
    VMRef.chargeExec(CM.DispatchUnchecked);
    break;
  case ir::CachePolicy::CacheIndexed:
    VMRef.chargeExec(CM.DispatchIndexed);
    break;
  }

  ++Tick;
  ++St.Dispatches;
  if (CR.Hit) {
    ++St.CacheHits;
    const std::shared_ptr<SpecEntry> &E = F.Slots[CR.Value];
    assert(E && E->Chain && "cache hit on a retired slot");
    E->Use->Hits.fetch_add(1, std::memory_order_relaxed);
    E->Use->LastUse.store(Tick, std::memory_order_relaxed);
    E->Use->RefBit.store(true, std::memory_order_release);
    E->Chain->ActiveRefs.fetch_add(1, std::memory_order_acq_rel);
    return {&E->Chain->CO, E->EntryPC};
  }
  ++St.CacheMisses;

  std::vector<Word> KeyVals;
  for (ir::Reg Rg : P.KeyRegs)
    KeyVals.push_back(Regs[Rg]);
  std::shared_ptr<SpecEntry> E = Core.specializeInto(
      Ord, VMRef, PromoId, std::move(Key),
      HaveSite ? Site.BakedVals : std::vector<Word>(), KeyVals);
  VMRef.chargeDynComp(CM.SpecCacheInsert);

  // Publish: find a slot, install it in the dispatch cache, retire
  // whatever the cache displaced (cache_one mismatch replacement).
  uint32_t Slot = static_cast<uint32_t>(F.Slots.size());
  for (uint32_t I = 0; I != F.Slots.size(); ++I)
    if (!F.Slots[I]) {
      Slot = I;
      break;
    }
  E->Point = Slot;
  if (Slot == F.Slots.size())
    F.Slots.push_back(E);
  else
    F.Slots[Slot] = E;

  uint32_t Displaced = CodeCache::NoValue;
  Cache.insert(E->Key, Slot, &Displaced);
  if (Displaced != CodeCache::NoValue && Displaced != Slot)
    retireSlot(VMRef, F, Displaced, Cache.policy());

  // Account the new chain against the region's budget; CLOCK victims are
  // unpublished from their dispatch cache and slot before their chain is
  // marked evicted. Dropping the VM's predecoded translation here (not
  // just at the safe point) keeps the translation cache from pinning
  // memory for chains the registry is about to free.
  Core.admit(E, [this, &VMRef](const SpecEntry &Victim) {
    Front &VF = Fronts[Victim.Region];
    VF.PromoCaches[Victim.PromoId].erase(Victim.Key);
    uint32_t VS = static_cast<uint32_t>(Victim.Point);
    if (VS < VF.Slots.size() && VF.Slots[VS].get() == &Victim)
      VF.Slots[VS].reset();
    if (Victim.Chain)
      VMRef.invalidateDecoded(Victim.Chain->CO);
  });

  E->Use->LastUse.store(Tick, std::memory_order_relaxed);
  E->Chain->ActiveRefs.fetch_add(1, std::memory_order_acq_rel);
  return {&E->Chain->CO, E->EntryPC};
}

void DycRuntime::onDynamicCodeExit(vm::VM &, const vm::CodeObject *CO) {
  Core.releaseExecutor(CO);
}

double DycRuntime::avgCacheProbes(size_t Ordinal) const {
  assert(Ordinal < Fronts.size() && "bad region ordinal");
  uint64_t Lookups = 0, Probes = 0;
  for (const CodeCache &C : Fronts[Ordinal].PromoCaches) {
    Lookups += C.lookups();
    Probes += C.totalProbes();
  }
  return Lookups ? static_cast<double>(Probes) / Lookups : 0.0;
}

} // namespace runtime
} // namespace dyc
