//===- runtime/Specializer.cpp - The inline DyC run-time ---------------------------===//

#include "runtime/Specializer.h"

namespace dyc {
namespace runtime {

void DycRuntime::addRegion(cogen::GenExtFunction GX) {
  Front F;
  for (const bta::PromoPoint &P : GX.Region.Promos)
    F.PromoCaches.emplace_back(P.Policy, P.IndexKeyPos);
  F.PromoMemos.resize(F.PromoCaches.size());
  Fronts.push_back(std::move(F));
  Core.addRegion(std::move(GX));
}

void DycRuntime::retireSlot(vm::VM &VMRef, Front &F, uint32_t Slot,
                            ir::CachePolicy Policy) {
  if (Slot >= F.Slots.size() || !F.Slots[Slot])
    return;
  if (F.Slots[Slot]->Chain)
    Core.backend().invalidate(VMRef, F.Slots[Slot]->Chain->CO);
  Core.displaced(F.Slots[Slot], Policy);
  F.Slots[Slot].reset();
}

void DycRuntime::releaseRegion(vm::VM &VMRef, size_t Ordinal) {
  if (Ordinal >= Fronts.size())
    return;
  Front &F = Fronts[Ordinal];
  for (uint32_t S = 0; S != F.Slots.size(); ++S) {
    std::shared_ptr<SpecEntry> &E = F.Slots[S];
    if (!E)
      continue;
    CodeCache &Cache = F.PromoCaches[E->PromoId];
    Cache.erase(E->Key); // bumps the epoch: inline-cache memos die here
    if (E->Chain)
      Core.backend().invalidate(VMRef, E->Chain->CO);
    Core.displaced(E, Cache.policy());
    E.reset();
  }
}

vm::RuntimeHook::Target DycRuntime::dispatch(vm::VM &VMRef, int64_t PointId,
                                             std::vector<Word> &Regs) {
  uint32_t Ord, PromoId;
  const DispatchSite *Site = nullptr;
  SiteMemo *Memo = nullptr;
  if (PointId >= 0) {
    Ord = static_cast<uint32_t>(PointId >> 16);
    PromoId = static_cast<uint32_t>(PointId & 0xffff);
    assert(Ord < Fronts.size() && "bad region ordinal");
    if (ICEnabled)
      Memo = &Fronts[Ord].PromoMemos[PromoId];
  } else {
    size_t SiteIdx = static_cast<size_t>(-(PointId + 1));
    if (ICEnabled) {
      if (SiteIdx >= SiteMemos.size())
        SiteMemos.resize(SiteIdx + 1);
      Memo = &SiteMemos[SiteIdx];
    }
    if (Memo && Memo->Resolved) {
      // The memo caches the site decode so the steady-state path skips
      // the core's guarded site table entirely.
      Ord = Memo->Ord;
      PromoId = Memo->PromoId;
      Site = Memo->Site;
    } else {
      const DispatchSite &S = Core.siteRef(SiteIdx);
      Site = &S;
      Ord = S.RegionOrd;
      PromoId = S.PromoId;
      if (Memo) {
        Memo->Site = Site;
        Memo->Ord = Ord;
        Memo->PromoId = PromoId;
        Memo->Resolved = true;
      }
    }
  }
  assert(Ord < Core.numRegions() && "bad region ordinal");
  Front &F = Fronts[Ord];
  const bta::PromoPoint &P = Core.promo(Ord, PromoId);
  RegionStats &St = Core.statsMutable(Ord);
  CodeCache &Cache = F.PromoCaches[PromoId];

  // Inline-cache fast path: valid while the cache's epoch is unchanged
  // (no insert/erase has run) and — except under cache_one_unchecked,
  // which never compares keys — while the promoted registers still hold
  // the memoized values. Baked values are constant per site, so the
  // promoted compare covers the whole key. The charge and the counter
  // replay are exactly what the skipped lookup would have produced: the
  // memo eliminates host hashing and probing, never model cycles.
  if (Memo && Memo->Entry && Memo->Epoch == Cache.epoch()) {
    bool Match = true;
    if (Cache.policy() != ir::CachePolicy::CacheOneUnchecked)
      for (uint32_t I = 0; I != Memo->NumVals; ++I)
        if (Regs[P.KeyRegs[I]].Bits != Memo->Vals[I].Bits) {
          Match = false;
          break;
        }
    if (Match) {
      chargeDispatchCost(VMRef, Cache.policy(), Memo->KeyWords,
                         Memo->Probes);
      Cache.noteMemoizedHit(Memo->Probes, Memo->UsedTable);
      ++Tick;
      ++St.Dispatches;
      ++St.CacheHits;
      ++ICHits;
      SpecEntry *E = Memo->Entry;
      assert(E->Chain && "inline cache memoized a retired entry");
      // Single-writer recency/ref bumps: this front end is single-client,
      // so load + store produces exactly fetch_add's values while staying
      // atomic for concurrent stats readers — and skips the locked RMW
      // that would otherwise dominate the fast path.
      E->Use->Hits.store(E->Use->Hits.load(std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
      E->Use->LastUse.store(Tick, std::memory_order_relaxed);
      E->Use->RefBit.store(true, std::memory_order_release);
      E->Chain->ActiveRefs.store(
          E->Chain->ActiveRefs.load(std::memory_order_relaxed) + 1,
          std::memory_order_release);
      return {&E->Chain->CO, E->EntryPC};
    }
  }

  // Compose the cache key once, into retained-capacity scratch: baked
  // specialize-time values, then the promoted variables' current values.
  // The miss path below slices this same buffer instead of recomposing.
  KeyScratch.clear();
  size_t BakedWords = 0;
  if (Site) {
    KeyScratch.append(Site->BakedVals.data(), Site->BakedVals.size());
    BakedWords = KeyScratch.size();
  }
  for (ir::Reg Rg : P.KeyRegs)
    KeyScratch.push_back(Regs[Rg]);
  WordSpan Key = KeyScratch.span();

  CacheResult CR = Cache.lookup(Key);
  chargeDispatchCost(VMRef, Cache.policy(),
                     static_cast<unsigned>(Key.size()), CR.Probes);

  ++Tick;
  ++St.Dispatches;
  if (CR.Hit) {
    ++St.CacheHits;
    const std::shared_ptr<SpecEntry> &E = F.Slots[CR.Value];
    assert(E && E->Chain && "cache hit on a retired slot");
    E->Use->Hits.fetch_add(1, std::memory_order_relaxed);
    E->Use->LastUse.store(Tick, std::memory_order_relaxed);
    E->Use->RefBit.store(true, std::memory_order_release);
    E->Chain->ActiveRefs.fetch_add(1, std::memory_order_acq_rel);
    // Memoize only real-lookup hits: a hit's probe count is reproducible
    // under an unchanged epoch, whereas the table state after the miss
    // path's insert is not observed here.
    if (Memo && (P.KeyRegs.size() <= SiteMemo::MaxKeyVals ||
                 Cache.policy() == ir::CachePolicy::CacheOneUnchecked)) {
      Memo->Entry = E.get();
      Memo->Epoch = Cache.epoch();
      Memo->KeyWords = static_cast<uint32_t>(Key.size());
      Memo->Probes = CR.Probes;
      Memo->UsedTable =
          Cache.policy() == ir::CachePolicy::CacheAll ||
          (Cache.policy() == ir::CachePolicy::CacheIndexed &&
           Key[Cache.indexPos()].Bits >= CodeCache::MaxIndexedKey);
      Memo->NumVals = P.KeyRegs.size() <= SiteMemo::MaxKeyVals
                          ? static_cast<uint32_t>(P.KeyRegs.size())
                          : 0; // unchecked: the fast path never compares
      for (uint32_t I = 0; I != Memo->NumVals; ++I)
        Memo->Vals[I] = Regs[P.KeyRegs[I]];
    }
    return {&E->Chain->CO, E->EntryPC};
  }
  ++St.CacheMisses;

  // Memo and KeyScratch are dead past this call: specialization re-enters
  // dispatch for static calls, growing SiteMemos and recomposing the
  // scratch. specializeInto copies its span inputs into owned storage
  // before running the generating extension, and E->Key carries the key
  // for the publish below.
  std::shared_ptr<SpecEntry> E =
      Core.specializeInto(Ord, VMRef, PromoId, Key,
                          WordSpan(Key.Data, BakedWords),
                          Key.subspan(BakedWords));
  VMRef.chargeDynComp(VMRef.costModel().SpecCacheInsert);

  // Publish: find a slot, install it in the dispatch cache, retire
  // whatever the cache displaced (cache_one mismatch replacement).
  uint32_t Slot = static_cast<uint32_t>(F.Slots.size());
  for (uint32_t I = 0; I != F.Slots.size(); ++I)
    if (!F.Slots[I]) {
      Slot = I;
      break;
    }
  E->Point = Slot;
  if (Slot == F.Slots.size())
    F.Slots.push_back(E);
  else
    F.Slots[Slot] = E;

  uint32_t Displaced = CodeCache::NoValue;
  Cache.insert(E->Key, Slot, &Displaced);
  if (Displaced != CodeCache::NoValue && Displaced != Slot)
    retireSlot(VMRef, F, Displaced, Cache.policy());

  // Account the new chain against the region's budget; CLOCK victims are
  // unpublished from their dispatch cache and slot before their chain is
  // marked evicted. Dropping the VM's predecoded translation here (not
  // just at the safe point) keeps the translation cache from pinning
  // memory for chains the registry is about to free.
  Core.admit(E, [this, &VMRef](const SpecEntry &Victim) {
    Front &VF = Fronts[Victim.Region];
    VF.PromoCaches[Victim.PromoId].erase(Victim.Key);
    uint32_t VS = static_cast<uint32_t>(Victim.Point);
    if (VS < VF.Slots.size() && VF.Slots[VS].get() == &Victim)
      VF.Slots[VS].reset();
    if (Victim.Chain)
      Core.backend().invalidate(VMRef, Victim.Chain->CO);
  });

  E->Use->LastUse.store(Tick, std::memory_order_relaxed);
  E->Chain->ActiveRefs.fetch_add(1, std::memory_order_acq_rel);
  return {&E->Chain->CO, E->EntryPC};
}

void DycRuntime::onDynamicCodeExit(vm::VM &, const vm::CodeObject *CO) {
  Core.releaseExecutor(CO);
}

double DycRuntime::avgCacheProbes(size_t Ordinal) const {
  assert(Ordinal < Fronts.size() && "bad region ordinal");
  uint64_t Lookups = 0, Probes = 0;
  for (const CodeCache &C : Fronts[Ordinal].PromoCaches) {
    Lookups += C.lookups();
    Probes += C.totalProbes();
  }
  return Lookups ? static_cast<double>(Probes) / Lookups : 0.0;
}

} // namespace runtime
} // namespace dyc
