//===- runtime/Specializer.cpp - Memoized polyvariant specialization ---------------===//

#include "runtime/Specializer.h"

#include "ir/ConstEval.h"

#include <deque>
#include <optional>

namespace dyc {
namespace runtime {

using cogen::GenBlock;
using cogen::GenExtFunction;
using cogen::Operand;
using cogen::SetupOp;
using ir::Opcode;
namespace v = vm;

namespace {

/// Maximum generated code per region (instructions); the address space
/// reserved for a buffer must cover it so I-cache footprints stay honest.
constexpr size_t MaxRegionInstrs = 1u << 20;

/// A resolved operand: either a known constant (a hole to fill) or a
/// run-time register.
struct RVal {
  bool IsConst = false;
  Word C;
  uint32_t R = v::NoReg;
  /// Index of a still-pending deferred entry producing R, or -1. The
  /// producer is materialized only if this operand is actually consumed by
  /// emitted code — the laziness that lets zero/copy propagation kill
  /// whole dead chains (address arithmetic feeding a load feeding a
  /// multiply by zero).
  int32_t Dep = -1;

  static RVal reg(uint32_t R, int32_t Dep = -1) {
    return {false, Word(), R, Dep};
  }
  static RVal cst(Word W) { return {true, W, v::NoReg, -1}; }
};

v::Op vmOpOf(Opcode Op) {
  switch (Op) {
  case Opcode::Add: return v::Op::Add;
  case Opcode::Sub: return v::Op::Sub;
  case Opcode::Mul: return v::Op::Mul;
  case Opcode::Div: return v::Op::Div;
  case Opcode::Rem: return v::Op::Rem;
  case Opcode::And: return v::Op::And;
  case Opcode::Or: return v::Op::Or;
  case Opcode::Xor: return v::Op::Xor;
  case Opcode::Shl: return v::Op::Shl;
  case Opcode::Shr: return v::Op::Shr;
  case Opcode::Neg: return v::Op::Neg;
  case Opcode::FAdd: return v::Op::FAdd;
  case Opcode::FSub: return v::Op::FSub;
  case Opcode::FMul: return v::Op::FMul;
  case Opcode::FDiv: return v::Op::FDiv;
  case Opcode::FNeg: return v::Op::FNeg;
  case Opcode::CmpEq: return v::Op::CmpEq;
  case Opcode::CmpNe: return v::Op::CmpNe;
  case Opcode::CmpLt: return v::Op::CmpLt;
  case Opcode::CmpLe: return v::Op::CmpLe;
  case Opcode::CmpGt: return v::Op::CmpGt;
  case Opcode::CmpGe: return v::Op::CmpGe;
  case Opcode::FCmpEq: return v::Op::FCmpEq;
  case Opcode::FCmpNe: return v::Op::FCmpNe;
  case Opcode::FCmpLt: return v::Op::FCmpLt;
  case Opcode::FCmpLe: return v::Op::FCmpLe;
  case Opcode::FCmpGt: return v::Op::FCmpGt;
  case Opcode::FCmpGe: return v::Op::FCmpGe;
  case Opcode::IToF: return v::Op::IToF;
  case Opcode::FToI: return v::Op::FToI;
  default:
    fatal("opcode has no reg-reg VM form in the emitter");
  }
}

v::Op immFormOf(Opcode Op) {
  switch (Op) {
  case Opcode::Add: return v::Op::AddI;
  case Opcode::Sub: return v::Op::SubI;
  case Opcode::Mul: return v::Op::MulI;
  case Opcode::Div: return v::Op::DivI;
  case Opcode::Rem: return v::Op::RemI;
  case Opcode::And: return v::Op::AndI;
  case Opcode::Or: return v::Op::OrI;
  case Opcode::Xor: return v::Op::XorI;
  case Opcode::Shl: return v::Op::ShlI;
  case Opcode::Shr: return v::Op::ShrI;
  case Opcode::CmpEq: return v::Op::CmpEqI;
  case Opcode::CmpNe: return v::Op::CmpNeI;
  case Opcode::CmpLt: return v::Op::CmpLtI;
  case Opcode::CmpLe: return v::Op::CmpLeI;
  case Opcode::CmpGt: return v::Op::CmpGtI;
  case Opcode::CmpGe: return v::Op::CmpGeI;
  case Opcode::FAdd: return v::Op::FAddI;
  case Opcode::FSub: return v::Op::FSubI;
  case Opcode::FMul: return v::Op::FMulI;
  case Opcode::FDiv: return v::Op::FDivI;
  default: return v::Op::Halt;
  }
}

bool isCommutative(Opcode Op) {
  switch (Op) {
  case Opcode::Add: case Opcode::Mul: case Opcode::And: case Opcode::Or:
  case Opcode::Xor: case Opcode::FAdd: case Opcode::FMul:
  case Opcode::CmpEq: case Opcode::CmpNe:
    return true;
  default:
    return false;
  }
}

Opcode mirrorCompare(Opcode Op) {
  switch (Op) {
  case Opcode::CmpLt: return Opcode::CmpGt;
  case Opcode::CmpLe: return Opcode::CmpGe;
  case Opcode::CmpGt: return Opcode::CmpLt;
  case Opcode::CmpGe: return Opcode::CmpLe;
  default: return Op;
  }
}

bool isUnaryOp(Opcode Op) {
  switch (Op) {
  case Opcode::Mov: case Opcode::Neg: case Opcode::FNeg:
  case Opcode::IToF: case Opcode::FToI:
    return true;
  default:
    return false;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// SpecializeRun: one invocation of the dynamic compiler.
//===----------------------------------------------------------------------===//

class SpecializeRun {
public:
  /// Emits into \p Buf, sharing stubs through \p ExitStubs /
  /// \p DispatchStubs. The inline runtime passes the region's persistent
  /// buffer and stub maps; the SpecServer passes a fresh chain buffer and
  /// fresh maps so every run is self-contained.
  SpecializeRun(DycRuntime::RegionRT &R, DycRuntime &RT, vm::VM &M,
                const OptFlags &Flags, vm::CodeObject &Buf,
                std::map<ir::BlockId, uint32_t> &ExitStubs,
                std::map<uint32_t, uint32_t> &DispatchStubs)
      : R(R), RT(RT), M(M), Flags(Flags), CM(M.costModel()), GX(R.GX),
        Buf(Buf), ExitStubs(ExitStubs), DispatchStubs(DispatchStubs) {}

  uint32_t run(uint32_t Ctx0, std::vector<Word> Vals0) {
    charge(CM.SpecInvoke);
    ++R.Stats.SpecializationRuns;
    uint32_t Entry = bufSize();

    Item Cur{Ctx0, std::move(Vals0)};
    markQueued(keyOf(Cur));
    bool HaveCur = true;
    while (HaveCur || !Queue.empty()) {
      if (!HaveCur) {
        Cur = std::move(Queue.front());
        Queue.pop_front();
      }
      HaveCur = false;
      // Place this item, then follow fall-through chains (the paper's
      // linear chain of unrolled loop bodies).
      while (true) {
        std::optional<Item> Next = place(Cur);
        if (!Next)
          break;
        markQueued(keyOf(*Next));
        Cur = std::move(*Next);
      }
    }

    // Resolve pending branch patches.
    for (const Patch &P : Patches) {
      auto It = Memo.find(P.Key);
      if (It == Memo.end() || It->second < 0)
        fatal("specializer left an unresolved branch target");
      v::Instr &I = Buf.Code[P.PC];
      if (P.FieldC)
        I.C = static_cast<uint32_t>(It->second);
      else
        I.B = static_cast<uint32_t>(It->second);
      charge(CM.SpecPatch);
    }

    M.flushICache(); // coherence after code generation
    return Entry;
  }

private:
  struct Item {
    uint32_t Ctx = 0;
    std::vector<Word> Vals;
  };

  struct Patch {
    size_t PC = 0;
    bool FieldC = false;
    std::vector<uint64_t> Key;
  };

  /// A deferred (not yet emitted) pure instruction; the mechanism behind
  /// staged zero/copy propagation and dead-assignment elimination.
  struct DeferredInstr {
    Opcode Op = Opcode::Mov;
    ir::Type Ty = ir::Type::I64;
    uint32_t Dst = v::NoReg;
    RVal A, B;
    int64_t Imm = 0;
    bool FromZcp = false;
    bool Pending = true;
  };

  void charge(uint64_t Cycles) { M.chargeDynComp(Cycles); }
  uint32_t bufSize() const {
    return static_cast<uint32_t>(Buf.Code.size());
  }

  std::vector<uint64_t> keyOf(const Item &It) const {
    std::vector<uint64_t> K;
    K.push_back(It.Ctx);
    GX.Region.context(It.Ctx).StaticIn.forEachSetBit(
        [&](size_t Reg) { K.push_back(It.Vals[Reg].Bits); });
    return K;
  }

  void markQueued(const std::vector<uint64_t> &K) { Memo.emplace(K, -1); }

  // --- Emission primitives ---------------------------------------------------

  void emitRaw(v::Instr I) {
    if (Buf.Code.size() >= MaxRegionInstrs)
      fatal("generated-code buffer overflow in region '" + Buf.Name + "'");
    Buf.Code.push_back(I);
    ++R.Stats.InstructionsGenerated;
    charge(CM.SpecEmit);
  }

  void emitConst(uint32_t Dst, Word C, ir::Type Ty) {
    charge(CM.SpecEmitHole);
    if (Ty == ir::Type::F64)
      emitRaw({v::Op::ConstF, Dst, 0, 0, static_cast<int64_t>(C.Bits)});
    else
      emitRaw({v::Op::ConstI, Dst, 0, 0, C.asInt()});
  }

  /// Ensures \p A is in a register, materializing constants into \p
  /// Scratch; returns the register.
  uint32_t regOf(const RVal &A, ir::Type Ty, uint32_t Scratch) {
    if (!A.IsConst)
      return A.R;
    emitConst(Scratch, A.C, Ty);
    return Scratch;
  }

  /// Emits one resolved instruction (the low-level encoder: immediate
  /// packing, commutation, scratch materialization).
  void emitResolved(Opcode Op, ir::Type Ty, uint32_t Dst, RVal A, RVal B,
                    int64_t Imm) {
    forceOperand(A);
    forceOperand(B);
    switch (Op) {
    case Opcode::ConstI:
    case Opcode::ConstF:
      emitConst(Dst, Word{static_cast<uint64_t>(Imm)}, Ty);
      return;
    case Opcode::Mov:
      if (A.IsConst) {
        emitConst(Dst, A.C, Ty);
      } else if (A.R != Dst) {
        emitRaw({Ty == ir::Type::F64 ? v::Op::FMov : v::Op::Mov, Dst, A.R});
      }
      return;
    case Opcode::Neg:
    case Opcode::FNeg:
    case Opcode::IToF:
    case Opcode::FToI: {
      if (A.IsConst) {
        Word Out;
        if (ir::evalPureOp(Op, A.C, Word(), Out)) {
          emitConst(Dst, Out, Ty);
          return;
        }
      }
      emitRaw({vmOpOf(Op), Dst,
               regOf(A, Ty == ir::Type::F64 && Op != Opcode::FToI
                            ? ir::Type::F64
                            : ir::Type::I64,
                     GX.Scratch0)});
      return;
    }
    case Opcode::Load:
      if (A.IsConst) {
        charge(CM.SpecEmitHole);
        emitRaw({v::Op::LoadAbs, Dst, 0, 0, A.C.asInt() + Imm});
      } else {
        emitRaw({v::Op::Load, Dst, A.R, 0, Imm});
      }
      return;
    case Opcode::Store: {
      // A = address, B = value.
      uint32_t ValReg = regOf(B, ir::Type::I64, GX.Scratch0);
      if (A.IsConst) {
        charge(CM.SpecEmitHole);
        emitRaw({v::Op::StoreAbs, ValReg, 0, 0, A.C.asInt() + Imm});
      } else {
        emitRaw({v::Op::Store, ValReg, A.R, 0, Imm});
      }
      return;
    }
    default:
      break;
    }

    // Binary arithmetic / comparison.
    if (A.IsConst && B.IsConst) {
      Word Out;
      if (ir::evalPureOp(Op, A.C, B.C, Out)) {
        emitConst(Dst, Out, Ty);
        return;
      }
      // Unfoldable (division by zero): emit faithfully so the fault
      // happens at run time, as it would have in static code.
      uint32_t RA = regOf(A, ir::Type::I64, GX.Scratch0);
      uint32_t RB = regOf(B, ir::Type::I64, GX.Scratch1);
      emitRaw({vmOpOf(Op), Dst, RA, RB});
      return;
    }
    if (!A.IsConst && B.IsConst) {
      v::Op IF = immFormOf(Op);
      if (IF != v::Op::Halt) {
        charge(CM.SpecEmitHole);
        emitRaw({IF, Dst, A.R, 0, static_cast<int64_t>(B.C.Bits)});
        return;
      }
      bool FloatOperand = Op == Opcode::FCmpEq || Op == Opcode::FCmpNe ||
                          Op == Opcode::FCmpLt || Op == Opcode::FCmpLe ||
                          Op == Opcode::FCmpGt || Op == Opcode::FCmpGe;
      uint32_t RB = regOf(B, FloatOperand ? ir::Type::F64 : ir::Type::I64,
                          GX.Scratch1);
      emitRaw({vmOpOf(Op), Dst, A.R, RB});
      return;
    }
    if (A.IsConst && !B.IsConst) {
      if (isCommutative(Op)) {
        emitResolved(Op, Ty, Dst, B, A, Imm);
        return;
      }
      Opcode Mirrored = mirrorCompare(Op);
      if (Mirrored != Op) {
        emitResolved(Mirrored, Ty, Dst, B, A, Imm);
        return;
      }
      bool FloatOperand = Op == Opcode::FSub || Op == Opcode::FDiv;
      uint32_t RA = regOf(A, FloatOperand ? ir::Type::F64 : ir::Type::I64,
                          GX.Scratch0);
      emitRaw({vmOpOf(Op), Dst, RA, B.R});
      return;
    }
    emitRaw({vmOpOf(Op), Dst, A.R, B.R});
  }

  // --- Deferral machinery (staged ZCP + DAE) ---------------------------------

  /// Emits a pending entry now ("the move is materialized"), after any
  /// still-pending producers of its operands.
  void materializeEntry(size_t Idx) {
    DeferredInstr &D = Defer[Idx];
    if (!D.Pending)
      return;
    D.Pending = false;
    auto It = LatestDef.find(D.Dst);
    if (It != LatestDef.end() && It->second == Idx)
      LatestDef.erase(It);
    ++R.Stats.MaterializedDeferred;
    emitResolved(D.Op, D.Ty, D.Dst, D.A, D.B, D.Imm);
  }

  /// If \p A references a still-pending deferred producer, emit it (and,
  /// recursively, its dependencies).
  void forceOperand(const RVal &A) {
    if (A.Dep >= 0 && Defer[static_cast<size_t>(A.Dep)].Pending)
      materializeEntry(static_cast<size_t>(A.Dep));
  }

  /// Resolves a run-time register through the deferral table: pending
  /// moves are chased (copy propagation) and pending constants returned as
  /// values (zero propagation); any other pending producer is recorded as
  /// a lazy dependency, materialized only if the operand is consumed.
  RVal readResolve(uint32_t Reg) {
    uint32_t Cur = Reg;
    while (true) {
      auto It = LatestDef.find(Cur);
      if (It == LatestDef.end())
        return RVal::reg(Cur);
      DeferredInstr &D = Defer[It->second];
      charge(CM.SpecZcpTableOp);
      if (D.Op == Opcode::Mov) {
        if (D.A.IsConst)
          return D.A;
        Cur = D.A.R;
        continue;
      }
      if (D.Op == Opcode::ConstI || D.Op == Opcode::ConstF)
        return RVal::cst(Word{static_cast<uint64_t>(D.Imm)});
      return RVal::reg(Cur, static_cast<int32_t>(It->second));
    }
  }

  RVal resolveOperand(const Operand &O, const std::vector<Word> &Vals) {
    if (O.R == ir::NoReg)
      return RVal();
    if (O.Static)
      return RVal::cst(Vals[O.R]);
    return readResolve(O.R);
  }

  /// Before an instruction writes \p Dst: pending readers of Dst must be
  /// materialized (they captured the old value's register); a pending
  /// producer of Dst is dead and is dropped — dead-assignment elimination.
  void writeEvent(uint32_t Dst) {
    if (Dst == v::NoReg)
      return;
    for (size_t I = 0; I != Defer.size(); ++I) {
      DeferredInstr &D = Defer[I];
      if (!D.Pending)
        continue;
      if ((!D.A.IsConst && D.A.R == Dst) || (!D.B.IsConst && D.B.R == Dst))
        materializeEntry(I);
    }
    auto It = LatestDef.find(Dst);
    if (It != LatestDef.end()) {
      DeferredInstr &D = Defer[It->second];
      if (D.Pending) {
        D.Pending = false;
        ++R.Stats.DeadAssignsEliminated;
        charge(CM.SpecZcpTableOp);
      }
      LatestDef.erase(It);
    }
  }

  /// Memory is about to be written or a call made: pending loads must be
  /// emitted first.
  void memoryClobber() {
    for (size_t I = 0; I != Defer.size(); ++I)
      if (Defer[I].Pending && Defer[I].Op == Opcode::Load)
        materializeEntry(I);
  }

  /// Drops every still-pending entry (block boundary; deferrable results
  /// are block-dead by the static plan).
  void dropAllPending() {
    for (DeferredInstr &D : Defer) {
      if (!D.Pending)
        continue;
      D.Pending = false;
      ++R.Stats.DeadAssignsEliminated;
    }
    LatestDef.clear();
  }

  void deferOrEmit(const SetupOp &Op, Opcode FormOp, ir::Type Ty,
                   uint32_t Dst, RVal A, RVal B, int64_t Imm, bool FromZcp) {
    writeEvent(Dst);
    if (Op.Deferrable) {
      charge(CM.SpecZcpTableOp);
      DeferredInstr D;
      D.Op = FormOp;
      D.Ty = Ty;
      D.Dst = Dst;
      D.A = A;
      D.B = B;
      D.Imm = Imm;
      D.FromZcp = FromZcp;
      Defer.push_back(D);
      LatestDef[Dst] = Defer.size() - 1;
      return;
    }
    emitResolved(FormOp, Ty, Dst, A, B, Imm);
  }

  // --- Dynamic-instruction emission ------------------------------------------

  void emitDynamic(const SetupOp &Op, const std::vector<Word> &Vals) {
    if (Op.Op == Opcode::Call || Op.Op == Opcode::CallExt) {
      std::vector<RVal> Args;
      Args.reserve(Op.Args.size());
      for (const Operand &A : Op.Args)
        Args.push_back(resolveOperand(A, Vals));
      memoryClobber();
      writeEvent(Op.Dst);
      for (size_t I = 0; I != Args.size(); ++I) {
        uint32_t Stage = GX.StageBase + static_cast<uint32_t>(I);
        ir::Type ArgTy = GX.RegTypes[Op.Args[I].R];
        emitResolved(Opcode::Mov, ArgTy, Stage, Args[I], RVal(), 0);
      }
      emitRaw({Op.Op == Opcode::Call ? v::Op::Call : v::Op::CallExt,
               Op.Dst == ir::NoReg ? v::NoReg : Op.Dst, GX.StageBase,
               static_cast<uint32_t>(Args.size()), Op.Callee});
      return;
    }

    RVal A = resolveOperand(Op.A, Vals);
    RVal B = resolveOperand(Op.B, Vals);

    // A move that resolves to its own destination (copy propagation came
    // full circle) is a no-op: the register already holds the value.
    if (Op.Op == Opcode::Mov && !A.IsConst && A.R == Op.Dst)
      return;

    if (Op.Op == Opcode::Store) {
      memoryClobber();
      emitResolved(Opcode::Store, ir::Type::I64, v::NoReg, A, B, Op.Imm);
      return;
    }

    // Dynamic constant folding: propagation can turn both operands into
    // constants.
    if (ir::isEvaluableOp(Op.Op) && A.IsConst &&
        (isUnaryOp(Op.Op) || B.IsConst)) {
      Word Out;
      if (ir::evalPureOp(Op.Op, A.C, B.C, Out)) {
        charge(CM.SpecEvalOp);
        deferOrEmit(Op, Op.Ty == ir::Type::F64 ? Opcode::ConstF
                                               : Opcode::ConstI,
                    Op.Ty, Op.Dst, RVal(), RVal(),
                    static_cast<int64_t>(Out.Bits), /*FromZcp=*/false);
        return;
      }
    }

    // Staged zero/copy propagation (section 2.2.7): a special value of
    // the single constant operand reduces the operation to a move or a
    // clear.
    bool OneConst = A.IsConst != B.IsConst;
    if (Flags.ZeroCopyPropagation && OneConst) {
      charge(CM.SpecZcpTableOp);
      const RVal &CS = A.IsConst ? A : B;
      const RVal &DS = A.IsConst ? B : A;
      bool ConstOnRight = B.IsConst;
      bool IsFloat = Op.Ty == ir::Type::F64;
      Word One = IsFloat ? Word::fromFloat(1.0) : Word::fromInt(1);
      Word Zero = IsFloat ? Word::fromFloat(0.0) : Word::fromInt(0);
      bool RewriteToMove = false, RewriteToClear = false;
      switch (Op.Op) {
      case Opcode::Mul:
      case Opcode::FMul:
        RewriteToMove = CS.C == One;
        RewriteToClear = CS.C == Zero;
        break;
      case Opcode::Add:
      case Opcode::FAdd:
        RewriteToMove = CS.C == Zero;
        break;
      case Opcode::Sub:
      case Opcode::FSub:
        RewriteToMove = ConstOnRight && CS.C == Zero;
        break;
      case Opcode::Div:
      case Opcode::FDiv:
        RewriteToMove = ConstOnRight && CS.C == One;
        break;
      default:
        break;
      }
      if (RewriteToMove) {
        ++R.Stats.ZcpApplied;
        deferOrEmit(Op, Opcode::Mov, Op.Ty, Op.Dst, DS, RVal(), 0,
                    /*FromZcp=*/true);
        return;
      }
      if (RewriteToClear) {
        ++R.Stats.ZcpApplied;
        deferOrEmit(Op, IsFloat ? Opcode::ConstF : Opcode::ConstI, Op.Ty,
                    Op.Dst, RVal(), RVal(),
                    static_cast<int64_t>(Zero.Bits), /*FromZcp=*/true);
        return;
      }
    }

    // Strength reduction (section 2.2.7): integer multiply/divide/
    // remainder by a power of two become shifts and masks.
    if (Flags.StrengthReduction && OneConst &&
        (Op.Op == Opcode::Mul || Op.Op == Opcode::Div ||
         Op.Op == Opcode::Rem)) {
      charge(CM.SpecStrengthCheck);
      const RVal &CS = A.IsConst ? A : B;
      const RVal &DS = A.IsConst ? B : A;
      bool ConstOnRight = B.IsConst;
      int64_t C = CS.C.asInt();
      if (isPowerOf2(C) && C >= 2) {
        if (Op.Op == Opcode::Mul) {
          ++R.Stats.StrengthReduced;
          deferOrEmit(Op, Opcode::Shl, Op.Ty, Op.Dst, DS,
                      RVal::cst(Word::fromInt(log2OfPow2(C))), 0, false);
          return;
        }
        if (ConstOnRight &&
            (Op.Op == Opcode::Div || Op.Op == Opcode::Rem)) {
          // Exact shift sequence (C truncates toward zero, so negative
          // dividends need the bias fixup) — the same code an optimizing
          // static compiler emits for constant power-of-two divisors.
          ++R.Stats.StrengthReduced;
          forceOperand(DS);
          writeEvent(Op.Dst);
          unsigned K = log2OfPow2(C);
          uint32_t X = DS.R;
          uint32_t S0 = GX.Scratch0;
          emitRaw({v::Op::ShrI, S0, X, 0, 63});
          emitRaw({v::Op::AndI, S0, S0, 0, C - 1});
          emitRaw({v::Op::Add, S0, X, S0});
          if (Op.Op == Opcode::Div) {
            emitRaw({v::Op::ShrI, Op.Dst, S0, 0, (int64_t)K});
          } else {
            emitRaw({v::Op::ShrI, S0, S0, 0, (int64_t)K});
            emitRaw({v::Op::ShlI, S0, S0, 0, (int64_t)K});
            emitRaw({v::Op::Sub, Op.Dst, X, S0});
          }
          return;
        }
      }
    }

    deferOrEmit(Op, Op.Op, Op.Ty, Op.Dst, A, B, Op.Imm, /*FromZcp=*/false);
  }

  // --- Set-up execution -------------------------------------------------------

  void execSetup(const SetupOp &Op, std::vector<Word> &Vals) {
    switch (Op.K) {
    case SetupOp::EvalConst:
      Vals[Op.Dst] = Word{static_cast<uint64_t>(Op.Imm)};
      charge(CM.SpecEvalOp);
      return;
    case SetupOp::Eval: {
      Word Out;
      Word AV = Vals[Op.A.R];
      Word BV = Op.B.R == ir::NoReg ? Word() : Vals[Op.B.R];
      if (!ir::evalPureOp(Op.Op, AV, BV, Out))
        fatal("static computation faulted at specialize time (division "
              "by a zero-valued run-time constant)");
      Vals[Op.Dst] = Out;
      charge(CM.SpecEvalOp);
      return;
    }
    case SetupOp::EvalLoad: {
      int64_t Addr = Vals[Op.A.R].asInt() + Op.Imm;
      const std::vector<Word> &Mem = M.memory();
      if (Addr < 0 || static_cast<uint64_t>(Addr) >= Mem.size())
        fatal("static load out of range at specialize time");
      Vals[Op.Dst] = Mem[static_cast<size_t>(Addr)];
      charge(CM.SpecStaticLoad);
      ++R.Stats.StaticLoadsExecuted;
      return;
    }
    case SetupOp::EvalCall: {
      std::vector<Word> Args;
      std::vector<uint64_t> MemoKey;
      MemoKey.push_back(static_cast<uint64_t>(Op.Callee) * 2 +
                        (Op.IsExt ? 1 : 0));
      for (const Operand &O : Op.Args) {
        Args.push_back(Vals[O.R]);
        MemoKey.push_back(Vals[O.R].Bits);
      }
      ++R.Stats.StaticCallsExecuted;
      auto It = R.CallMemo.find(MemoKey);
      if (It != R.CallMemo.end()) {
        ++R.Stats.StaticCallMemoHits;
        charge(CM.SpecEvalOp);
        Vals[Op.Dst] = It->second;
        return;
      }
      Word Res;
      if (Op.IsExt) {
        const vm::ExternalFunction &E =
            M.program().Externals.get(static_cast<unsigned>(Op.Callee));
        charge(CM.SpecStaticCallBase + E.CostCycles);
        Res = E.Fn(Args.data());
      } else {
        charge(CM.SpecStaticCallBase);
        uint64_t Mark = M.execCycles();
        Res = M.run(static_cast<uint32_t>(Op.Callee), Args);
        M.reattributeExecToDynComp(Mark);
      }
      R.CallMemo.emplace(std::move(MemoKey), Res);
      Vals[Op.Dst] = Res;
      return;
    }
    case SetupOp::EmitInstr:
      emitDynamic(Op, Vals);
      return;
    }
  }

  // --- Control flow ------------------------------------------------------------

  /// Emits the constants for static registers demoted across \p E (the
  /// static-to-dynamic boundary: their run-time registers must now hold
  /// the values the specializer has been tracking).
  void materializeForEdge(const bta::Edge &E, const std::vector<Word> &Vals) {
    for (ir::Reg Rg : E.Materialize)
      emitConst(Rg, Vals[Rg], GX.RegTypes[Rg]);
  }

  /// Handles an unconditional continuation. Returns a fall-through item if
  /// the target is fresh.
  std::optional<Item> continueEdge(const bta::Edge &E, Item &Cur) {
    if (E.K != bta::Edge::None)
      materializeForEdge(E, Cur.Vals);
    switch (E.K) {
    case bta::Edge::None:
      return std::nullopt;
    case bta::Edge::Exit:
      emitRaw({v::Op::ExitRegion, 0, GX.BlockPC[E.Block]});
      return std::nullopt;
    case bta::Edge::Promo: {
      uint32_t Site = makeSite(E.PromoIdx, Cur.Vals);
      emitRaw({v::Op::Dispatch, 0, 0, 0,
               -(static_cast<int64_t>(Site) + 1)});
      return std::nullopt;
    }
    case bta::Edge::Ctx: {
      Item Next{E.Target, std::move(Cur.Vals)};
      std::vector<uint64_t> K = keyOf(Next);
      auto It = Memo.find(K);
      if (It == Memo.end())
        return Next; // fall through, no branch emitted
      if (It->second >= 0) {
        emitRaw({v::Op::Br, 0, static_cast<uint32_t>(It->second)});
      } else {
        Patches.push_back({bufSize(), false, K});
        emitRaw({v::Op::Br, 0, 0});
        // Re-queue ownership of Vals: the queued item already has its own
        // copy (enqueued when first seen).
      }
      return std::nullopt;
    }
    }
    return std::nullopt;
  }

  uint32_t makeSite(uint32_t PromoIdx, const std::vector<Word> &Vals) {
    const bta::PromoPoint &P = GX.Region.Promos[PromoIdx];
    DycRuntime::DispatchSite S;
    S.RegionOrd = Ordinal;
    S.PromoId = PromoIdx;
    for (ir::Reg Rg : P.BakedRegs)
      S.BakedVals.push_back(Vals[Rg]);
    size_t Before = RT.Sites.size();
    uint32_t Idx = RT.internSite(std::move(S));
    if (RT.Sites.size() > Before)
      ++R.Stats.DispatchSitesCreated;
    return Idx;
  }

  /// Returns the branch-target PC for an edge, or queues work/patches.
  /// Fresh Ctx edges yield no PC; the caller may use one as fall-through.
  struct EdgeLabel {
    bool Known = false;
    uint32_t PC = 0;
    bool FreshCtx = false; ///< unseen context: caller picks fall-through
  };

  EdgeLabel labelFor(const bta::Edge &E, const std::vector<Word> &Vals,
                     size_t BranchPC, bool FieldC) {
    EdgeLabel L;
    if (!E.Materialize.empty()) {
      // The edge demotes statics: route through a trampoline that
      // materializes them, then transfers.
      L.Known = true;
      L.PC = bufSize();
      materializeForEdge(E, Vals);
      switch (E.K) {
      case bta::Edge::Exit:
        emitRaw({v::Op::ExitRegion, 0, GX.BlockPC[E.Block]});
        return L;
      case bta::Edge::Promo: {
        uint32_t Site = makeSite(E.PromoIdx, Vals);
        emitRaw({v::Op::Dispatch, 0, 0, 0,
                 -(static_cast<int64_t>(Site) + 1)});
        return L;
      }
      case bta::Edge::Ctx: {
        std::vector<uint64_t> K;
        K.push_back(E.Target);
        GX.Region.context(E.Target).StaticIn.forEachSetBit(
            [&](size_t Rg) { K.push_back(Vals[Rg].Bits); });
        auto It = Memo.find(K);
        if (It != Memo.end() && It->second >= 0) {
          emitRaw({v::Op::Br, 0, static_cast<uint32_t>(It->second)});
          return L;
        }
        if (It == Memo.end()) {
          markQueued(K);
          Item Other{E.Target, Vals};
          Queue.push_back(std::move(Other));
        }
        Patches.push_back({bufSize(), false, K});
        emitRaw({v::Op::Br, 0, 0});
        return L;
      }
      case bta::Edge::None:
        fatal("missing edge on a conditional branch");
      }
    }
    switch (E.K) {
    case bta::Edge::None:
      fatal("missing edge on a conditional branch");
    case bta::Edge::Exit: {
      auto It = ExitStubs.find(E.Block);
      if (It == ExitStubs.end()) {
        uint32_t PC = bufSize();
        emitRaw({v::Op::ExitRegion, 0, GX.BlockPC[E.Block]});
        It = ExitStubs.emplace(E.Block, PC).first;
      }
      L.Known = true;
      L.PC = It->second;
      return L;
    }
    case bta::Edge::Promo: {
      uint32_t Site = makeSite(E.PromoIdx, Vals);
      auto It = DispatchStubs.find(Site);
      if (It == DispatchStubs.end()) {
        uint32_t PC = bufSize();
        emitRaw({v::Op::Dispatch, 0, 0, 0,
                 -(static_cast<int64_t>(Site) + 1)});
        It = DispatchStubs.emplace(Site, PC).first;
      }
      L.Known = true;
      L.PC = It->second;
      return L;
    }
    case bta::Edge::Ctx: {
      std::vector<uint64_t> K;
      K.push_back(E.Target);
      GX.Region.context(E.Target).StaticIn.forEachSetBit(
          [&](size_t Rg) { K.push_back(Vals[Rg].Bits); });
      auto It = Memo.find(K);
      if (It == Memo.end()) {
        L.FreshCtx = true;
        return L;
      }
      if (It->second >= 0) {
        L.Known = true;
        L.PC = static_cast<uint32_t>(It->second);
        return L;
      }
      Patches.push_back({BranchPC, FieldC, K});
      L.Known = false;
      return L;
    }
    }
    return L;
  }

  std::optional<Item> place(Item &Cur) {
    std::vector<uint64_t> K = keyOf(Cur);
    Memo[K] = static_cast<int64_t>(bufSize());
    ++R.Stats.WorkItems;
    charge(CM.SpecPerWorkItem);
    uint32_t &Count = R.CtxPlacements[Cur.Ctx];
    ++Count;
    R.Stats.MaxBlockInstances =
        std::max<uint64_t>(R.Stats.MaxBlockInstances, Count);

    Defer.clear();
    LatestDef.clear();

    const GenBlock &GB = GX.Blocks[Cur.Ctx];
    for (const SetupOp &Op : GB.Ops)
      execSetup(Op, Cur.Vals);

    // Terminator.
    const cogen::GenTerm &T = GB.Term;
    switch (T.K) {
    case cogen::GenTerm::Ret: {
      if (T.RetVal.R == ir::NoReg) {
        dropAllPending();
        emitRaw({v::Op::Ret, v::NoReg});
        return std::nullopt;
      }
      RVal V = resolveOperand(T.RetVal, Cur.Vals);
      forceOperand(V); // the return value is consumed
      dropAllPending();
      if (V.IsConst) {
        ir::Type Ty = GX.RegTypes[T.RetVal.R];
        emitConst(GX.Scratch0, V.C, Ty);
        emitRaw({v::Op::Ret, GX.Scratch0});
      } else {
        emitRaw({v::Op::Ret, V.R});
      }
      return std::nullopt;
    }
    case cogen::GenTerm::Br:
      dropAllPending();
      return continueEdge(T.TrueE, Cur);
    case cogen::GenTerm::CondBr: {
      RVal C = resolveOperand(T.Cond, Cur.Vals);
      if (!C.IsConst)
        forceOperand(C); // the emitted branch consumes the condition
      dropAllPending();
      if (C.IsConst) {
        // Static (or propagated-constant) branch: folded away.
        ++R.Stats.BranchesFolded;
        charge(CM.SpecEvalOp);
        return continueEdge(C.C.asInt() != 0 ? T.TrueE : T.FalseE, Cur);
      }
      ++R.Stats.DynamicBranchesEmitted;
      charge(CM.SpecEmitBranch);
      size_t BranchPC = bufSize();
      emitRaw({v::Op::CondBr, C.R, 0, 0});
      EdgeLabel TL = labelFor(T.TrueE, Cur.Vals, BranchPC, false);
      EdgeLabel FL = labelFor(T.FalseE, Cur.Vals, BranchPC, true);

      std::optional<Item> Fall;
      if (TL.Known)
        Buf.Code[BranchPC].B = TL.PC;
      if (FL.Known)
        Buf.Code[BranchPC].C = FL.PC;

      if (TL.FreshCtx) {
        // Fall through into the true side.
        Buf.Code[BranchPC].B = bufSize();
        Fall = Item{T.TrueE.Target, Cur.Vals};
        if (FL.FreshCtx) {
          Item Other{T.FalseE.Target, Cur.Vals};
          std::vector<uint64_t> OK = keyOf(Other);
          markQueued(OK);
          Patches.push_back({BranchPC, true, OK});
          Queue.push_back(std::move(Other));
        }
      } else if (FL.FreshCtx) {
        Buf.Code[BranchPC].C = bufSize();
        Fall = Item{T.FalseE.Target, std::move(Cur.Vals)};
      }
      return Fall;
    }
    }
    return std::nullopt;
  }

  DycRuntime::RegionRT &R;
  DycRuntime &RT;
  vm::VM &M;
  const OptFlags &Flags;
  const vm::CostModel &CM;
  const GenExtFunction &GX;
  vm::CodeObject &Buf;
  std::map<ir::BlockId, uint32_t> &ExitStubs;
  std::map<uint32_t, uint32_t> &DispatchStubs;
  uint32_t Ordinal = 0;

  std::deque<Item> Queue;
  std::map<std::vector<uint64_t>, int64_t> Memo; ///< -1 queued, else PC
  std::vector<Patch> Patches;
  std::vector<DeferredInstr> Defer;
  std::map<uint32_t, size_t> LatestDef;

public:
  void setOrdinal(uint32_t O) { Ordinal = O; }
};

//===----------------------------------------------------------------------===//
// DycRuntime
//===----------------------------------------------------------------------===//

void DycRuntime::addRegion(cogen::GenExtFunction GX) {
  auto R = std::make_unique<RegionRT>();
  R->Buffer.NumRegs = GX.NumRegs;
  R->Buffer.IsDynamicCode = true;
  R->Buffer.BaseAddr = Prog.allocCodeAddr(MaxRegionInstrs * 4);
  R->Buffer.Name =
      M.function(GX.FuncIdx).Name + ".dyncode";
  for (const bta::PromoPoint &P : GX.Region.Promos)
    R->PromoCaches.emplace_back(P.Policy, P.IndexKeyPos);
  R->CtxPlacements.assign(GX.Region.Contexts.size(), 0);
  R->GX = std::move(GX);
  Regions.push_back(std::move(R));
}

uint32_t DycRuntime::internSite(DispatchSite S) {
  std::lock_guard<std::mutex> Lock(SitesMutex);
  for (size_t I = 0; I != Sites.size(); ++I) {
    const DispatchSite &E = Sites[I];
    if (E.RegionOrd == S.RegionOrd && E.PromoId == S.PromoId &&
        E.BakedVals == S.BakedVals)
      return static_cast<uint32_t>(I);
  }
  Sites.push_back(std::move(S));
  return static_cast<uint32_t>(Sites.size() - 1);
}

uint32_t DycRuntime::specialize(RegionRT &R, vm::VM &VMRef,
                                uint32_t TargetCtx, std::vector<Word> Vals) {
  SpecializeRun Run(R, *this, VMRef, Flags, R.Buffer, R.ExitStubs,
                    R.DispatchStubs);
  for (size_t I = 0; I != Regions.size(); ++I)
    if (Regions[I].get() == &R)
      Run.setOrdinal(static_cast<uint32_t>(I));
  return Run.run(TargetCtx, std::move(Vals));
}

uint32_t DycRuntime::specializeInto(size_t Ordinal, vm::VM &VMRef,
                                    uint32_t TargetCtx, std::vector<Word> Vals,
                                    vm::CodeObject &Buf,
                                    std::map<ir::BlockId, uint32_t> &ExitStubs,
                                    std::map<uint32_t, uint32_t> &DispatchStubs) {
  assert(Ordinal < Regions.size() && "bad region ordinal");
  RegionRT &R = *Regions[Ordinal];
  SpecializeRun Run(R, *this, VMRef, Flags, Buf, ExitStubs, DispatchStubs);
  Run.setOrdinal(static_cast<uint32_t>(Ordinal));
  return Run.run(TargetCtx, std::move(Vals));
}

DycRuntime::SiteInfo DycRuntime::siteInfo(size_t Idx) const {
  std::lock_guard<std::mutex> Lock(SitesMutex);
  assert(Idx < Sites.size() && "bad dispatch site");
  const DispatchSite &S = Sites[Idx];
  return {S.RegionOrd, S.PromoId, S.BakedVals};
}

size_t DycRuntime::numSites() const {
  std::lock_guard<std::mutex> Lock(SitesMutex);
  return Sites.size();
}

const bta::PromoPoint &DycRuntime::promo(size_t Ordinal,
                                         size_t PromoId) const {
  assert(Ordinal < Regions.size() && "bad region ordinal");
  const auto &Promos = Regions[Ordinal]->GX.Region.Promos;
  assert(PromoId < Promos.size() && "bad promotion point");
  return Promos[PromoId];
}

size_t DycRuntime::numPromos(size_t Ordinal) const {
  assert(Ordinal < Regions.size() && "bad region ordinal");
  return Regions[Ordinal]->GX.Region.Promos.size();
}

uint32_t DycRuntime::regionNumRegs(size_t Ordinal) const {
  assert(Ordinal < Regions.size() && "bad region ordinal");
  return Regions[Ordinal]->GX.NumRegs;
}

int DycRuntime::regionFuncIdx(size_t Ordinal) const {
  assert(Ordinal < Regions.size() && "bad region ordinal");
  return Regions[Ordinal]->GX.FuncIdx;
}

const bta::RegionInfo &DycRuntime::regionInfo(size_t Ordinal) const {
  assert(Ordinal < Regions.size() && "bad region ordinal");
  return Regions[Ordinal]->GX.Region;
}

vm::RuntimeHook::Target DycRuntime::dispatch(vm::VM &VMRef, int64_t PointId,
                                             std::vector<Word> &Regs) {
  uint32_t Ord, PromoId;
  bool HaveSite = false;
  SiteInfo Site;
  if (PointId >= 0) {
    Ord = static_cast<uint32_t>(PointId >> 16);
    PromoId = static_cast<uint32_t>(PointId & 0xffff);
  } else {
    // Copy the site under the lock: background specialization may be
    // interning new sites (growing the vector) concurrently.
    size_t SiteIdx = static_cast<size_t>(-(PointId + 1));
    Site = siteInfo(SiteIdx);
    HaveSite = true;
    Ord = Site.RegionOrd;
    PromoId = Site.PromoId;
  }
  assert(Ord < Regions.size() && "bad region ordinal");
  RegionRT &R = *Regions[Ord];
  const bta::PromoPoint &P = R.GX.Region.Promos[PromoId];

  // Compose the cache key: baked specialize-time values, then the
  // promoted variables' current run-time values.
  std::vector<Word> Key;
  if (HaveSite)
    Key = Site.BakedVals;
  for (ir::Reg Rg : P.KeyRegs)
    Key.push_back(Regs[Rg]);

  CodeCache &Cache = R.PromoCaches[PromoId];
  CacheResult CR = Cache.lookup(Key);

  const vm::CostModel &CM = VMRef.costModel();
  switch (Cache.policy()) {
  case ir::CachePolicy::CacheAll:
    VMRef.chargeExec(CM.hashedDispatchCost(
        static_cast<unsigned>(Key.size()), CR.Probes));
    break;
  case ir::CachePolicy::CacheOne:
    VMRef.chargeExec(CM.DispatchUnchecked +
                     2 * static_cast<unsigned>(Key.size()));
    break;
  case ir::CachePolicy::CacheOneUnchecked:
    VMRef.chargeExec(CM.DispatchUnchecked);
    break;
  case ir::CachePolicy::CacheIndexed:
    VMRef.chargeExec(CM.DispatchIndexed);
    break;
  }

  ++R.Stats.Dispatches;
  if (CR.Hit) {
    ++R.Stats.CacheHits;
    return {&R.Buffer, CR.Value};
  }
  ++R.Stats.CacheMisses;

  std::vector<Word> Vals(R.GX.NumRegs);
  for (size_t I = 0; I != P.BakedRegs.size(); ++I)
    Vals[P.BakedRegs[I]] = HaveSite ? Site.BakedVals[I] : Word();
  for (ir::Reg Rg : P.KeyRegs)
    Vals[Rg] = Regs[Rg];

  uint32_t PC = specialize(R, VMRef, P.TargetCtx, std::move(Vals));
  VMRef.chargeDynComp(CM.SpecCacheInsert);
  if (Cache.insert(Key, PC))
    ++R.Stats.Evictions;
  return {&R.Buffer, PC};
}

const RegionStats &DycRuntime::stats(size_t Ordinal) const {
  assert(Ordinal < Regions.size() && "bad region ordinal");
  return Regions[Ordinal]->Stats;
}

RegionStats &DycRuntime::statsMutable(size_t Ordinal) {
  assert(Ordinal < Regions.size() && "bad region ordinal");
  return Regions[Ordinal]->Stats;
}

std::string DycRuntime::printRegion(size_t Ordinal,
                                    const ir::Module &Mod) const {
  assert(Ordinal < Regions.size() && "bad region ordinal");
  const cogen::GenExtFunction &GX = Regions[Ordinal]->GX;
  return cogen::printGenExt(GX, Mod.function(GX.FuncIdx));
}

std::string DycRuntime::disassembleRegion(size_t Ordinal) const {
  assert(Ordinal < Regions.size() && "bad region ordinal");
  return vm::disassemble(Regions[Ordinal]->Buffer);
}

double DycRuntime::avgCacheProbes(size_t Ordinal) const {
  assert(Ordinal < Regions.size() && "bad region ordinal");
  uint64_t Lookups = 0, Probes = 0;
  for (const CodeCache &C : Regions[Ordinal]->PromoCaches) {
    Lookups += C.lookups();
    Probes += C.totalProbes();
  }
  return Lookups ? static_cast<double>(Probes) / Lookups : 0.0;
}

} // namespace runtime
} // namespace dyc
