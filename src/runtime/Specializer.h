//===- runtime/Specializer.h - The inline DyC run-time ----------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single-client, specialize-on-the-dispatch-path front end of the DyC
/// run-time. All the machinery — code chains, the generating-extension
/// walk, emit-time optimizations, capacity accounting — lives in the
/// shared RegionExecutionCore (RegionExec.h); this class contributes only
/// what is front-end specific:
///
///  * the per-promotion-point CodeCache (cache_all / cache_one /
///    cache_one_unchecked / cache_indexed, paper section 2.2.3), mapping
///    static-value tuples to published specializations, and
///  * the VM trap handler that composes dispatch keys, charges the paper's
///    dispatch costs, and runs the specializer inline on a miss.
///
/// The concurrent front end (server::SpecServer) replaces both with a
/// sharded lock-free cache and a worker pool, but shares the core — so
/// generated code, statistics, and eviction behavior are identical by
/// construction.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_RUNTIME_SPECIALIZER_H
#define DYC_RUNTIME_SPECIALIZER_H

#include "bta/OptFlags.h"
#include "cogen/CompilerGenerator.h"
#include "runtime/CodeCache.h"
#include "runtime/RegionExec.h"
#include "vm/VM.h"

#include <memory>

namespace dyc {
namespace runtime {

/// The inline DyC run-time: dispatches through dynamic-code caches and, on
/// a miss, specializes synchronously on the client's own thread.
class DycRuntime : public vm::RuntimeHook {
public:
  /// \p Budget bounds resident generated code per region (zeros —
  /// the default — mean unbounded, the paper's behavior).
  DycRuntime(const ir::Module &M, vm::Program &Prog, const OptFlags &Flags,
             ChainBudget Budget = {})
      : Core(M, Prog, Flags, Budget) {}

  /// Registers the generating extension for the next annotated function.
  /// Must be called in annotated-ordinal order (the order lowerModule
  /// encoded into EnterRegion instructions).
  void addRegion(cogen::GenExtFunction GX);

  /// VM trap entry point. \p PointId >= 0 encodes a native entry
  /// (ordinal << 16 | promoId); negative values are run-time dispatch
  /// sites (-(site + 1)).
  Target dispatch(vm::VM &M, int64_t PointId,
                  std::vector<Word> &Regs) override;

  /// Keeps the core's executor counts accurate so evicted chains are
  /// reclaimed only after the VM leaves them.
  void onDynamicCodeExit(vm::VM &M, const vm::CodeObject *CO) override;

  /// Unpublishes every resident specialization of region \p Ordinal:
  /// cache entries are erased (bumping each cache's epoch, which kills
  /// any inline-cache memo of them), predecoded translations of their
  /// chains invalidated, and the entries handed to the core's capacity
  /// manager as displaced — reclaimable at the next collectChains() safe
  /// point once no executor is inside them. The speculative run-time's
  /// demotion path uses this; a later dispatch simply respecializes.
  void releaseRegion(vm::VM &VMRef, size_t Ordinal);

  /// The shared backend (tests and embedders reach chain lifecycle and
  /// capacity accounting through it).
  RegionExecutionCore &core() { return Core; }
  const RegionExecutionCore &core() const { return Core; }

  /// Name of the execution backend the core compiles through.
  const char *backendName() const { return Core.backendName(); }

  size_t numRegions() const { return Core.numRegions(); }
  const RegionStats &stats(size_t Ordinal) const { return Core.stats(Ordinal); }
  /// Host seconds spent inside the specializer (see
  /// RegionExecutionCore::specializeHostSeconds).
  double specializeHostSeconds() const {
    return Core.specializeHostSeconds();
  }
  RegionStats &statsMutable(size_t Ordinal) {
    return Core.statsMutable(Ordinal);
  }

  /// Disassembles a region's live code chains in creation order (the
  /// examples' Figure-3/4-style dumps).
  std::string disassembleRegion(size_t Ordinal) const {
    return Core.disassembleRegion(Ordinal);
  }

  /// Renders a region's generating extension (set-up/emit programs).
  std::string printRegion(size_t Ordinal, const ir::Module &Mod) const {
    return Core.printRegion(Ordinal, Mod);
  }

  /// Average probes per cache_all lookup across a region's promotion
  /// points (dispatch-cost reporting).
  double avgCacheProbes(size_t Ordinal) const;

  /// Toggles the per-dispatch-site monomorphic inline caches (on by
  /// default). A host-speed optimization only: every simulated counter —
  /// ExecCycles, DynCompCycles, cache lookups/probes — is bit-identical
  /// with the caches on or off (the parity tests assert this).
  void setInlineCacheEnabled(bool On) { ICEnabled = On; }
  bool inlineCacheEnabled() const { return ICEnabled; }

  /// Host-level count of dispatches served from an inline cache (not a
  /// simulated statistic — used by tests and benches to prove the fast
  /// path engaged).
  uint64_t inlineCacheHits() const { return ICHits; }

private:
  /// Monomorphic inline cache for one dispatch site (a native region entry
  /// or an interned run-time dispatch stub). Memoizes the last
  /// (promoted values -> published entry) mapping together with the
  /// counters the real lookup produced; CodeCache::epoch() validates it,
  /// since insert and erase are the only operations that can change what a
  /// key maps to or how many probes a table lookup takes. The raw Entry
  /// pointer is safe because every unpublish path mutates the same cache
  /// (bumping the epoch) before the entry can be destroyed, and the epoch
  /// check precedes every dereference.
  struct SiteMemo {
    static constexpr size_t MaxKeyVals = 8;
    SpecEntry *Entry = nullptr;
    uint64_t Epoch = 0;
    const DispatchSite *Site = nullptr; ///< stable: sites are deque-interned
    uint32_t Ord = 0;
    uint32_t PromoId = 0;
    uint32_t KeyWords = 0;  ///< full key size (baked + promoted)
    uint32_t NumVals = 0;   ///< promoted values memoized below
    unsigned Probes = 0;    ///< table probes the memoized lookup took
    bool UsedTable = false; ///< memoized lookup ran through the hash table
    bool Resolved = false;  ///< Ord/PromoId/Site decoded once
    Word Vals[MaxKeyVals];
  };

  /// Front-end state for one region: the dispatch caches and the slot
  /// table their 32-bit values index into.
  struct Front {
    std::vector<CodeCache> PromoCaches; ///< index == promo id
    std::vector<std::shared_ptr<SpecEntry>> Slots;
    std::vector<SiteMemo> PromoMemos; ///< native entries, index == promo id
  };

  /// Drops a displaced/evicted slot and retires its entry with the core,
  /// invalidating the VM's predecoded translation of its chain.
  void retireSlot(vm::VM &VMRef, Front &F, uint32_t Slot,
                  ir::CachePolicy Policy);

  RegionExecutionCore Core;
  std::vector<Front> Fronts; ///< parallel to the core's regions
  uint64_t Tick = 0;         ///< dispatch counter (recency for CLOCK)
  std::vector<SiteMemo> SiteMemos; ///< run-time dispatch sites, by index
  SmallKeyBuf KeyScratch; ///< retained-capacity dispatch-key composition
  uint64_t ICHits = 0;    ///< host-level fast-path counter (not simulated)
  bool ICEnabled = true;
};

} // namespace runtime
} // namespace dyc

#endif // DYC_RUNTIME_SPECIALIZER_H
