//===- runtime/Specializer.h - The DyC run-time ----------------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The run-time half of DyC: dispatching through dynamic-code caches and,
/// on a miss, running the generating extension to produce specialized
/// bytecode. Specialization is a memoized walk over (context,
/// static-values) pairs — polyvariant specialization. Re-reaching a pair
/// emits a jump to the existing code, which is what terminates and shapes
/// complete loop unrolling: a simple counted loop unrolls into a linear
/// chain; loops whose iterations diverge produce a directed graph of
/// unrolled bodies (multi-way unrolling, paper section 2.2.4).
///
/// Emit-time optimizations (all statically planned, no run-time IR):
///  * holes filled with static values, integer operands packed into
///    immediate fields, power-of-two strength reduction (section 2.2.7),
///  * zero/copy propagation via operand resolution through a deferral
///    table, and
///  * dead-assignment elimination: pure instructions whose results are
///    block-dead are deferred; if nothing reads them before the end of the
///    specialized block, they are never emitted.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_RUNTIME_SPECIALIZER_H
#define DYC_RUNTIME_SPECIALIZER_H

#include "bta/OptFlags.h"
#include "cogen/CompilerGenerator.h"
#include "runtime/CodeCache.h"
#include "runtime/RuntimeStats.h"
#include "vm/VM.h"

#include <map>
#include <memory>

namespace dyc {
namespace runtime {

/// The DyC run-time: owns every region's generated-code buffer, caches,
/// and statistics, and serves the VM's EnterRegion/Dispatch traps.
class DycRuntime : public vm::RuntimeHook {
public:
  DycRuntime(const ir::Module &M, vm::Program &Prog, const OptFlags &Flags)
      : M(M), Prog(Prog), Flags(Flags) {}

  /// Registers the generating extension for the next annotated function.
  /// Must be called in annotated-ordinal order (the order lowerModule
  /// encoded into EnterRegion instructions).
  void addRegion(cogen::GenExtFunction GX);

  /// VM trap entry point. \p PointId >= 0 encodes a native entry
  /// (ordinal << 16 | promoId); negative values are run-time dispatch
  /// sites (-(site + 1)).
  Target dispatch(vm::VM &M, int64_t PointId,
                  std::vector<Word> &Regs) override;

  size_t numRegions() const { return Regions.size(); }
  const RegionStats &stats(size_t Ordinal) const;
  RegionStats &statsMutable(size_t Ordinal);

  /// Disassembles a region's generated-code buffer (for the examples'
  /// Figure-3/4-style dumps).
  std::string disassembleRegion(size_t Ordinal) const;

  /// Renders a region's generating extension (set-up/emit programs).
  std::string printRegion(size_t Ordinal, const ir::Module &Mod) const;

  /// Average probes per cache_all lookup across a region's promotion
  /// points (dispatch-cost reporting).
  double avgCacheProbes(size_t Ordinal) const;

private:
  struct RegionRT {
    cogen::GenExtFunction GX;
    vm::CodeObject Buffer;
    std::vector<CodeCache> PromoCaches; ///< index == promo id
    RegionStats Stats;
    /// Memo for static calls executed at specialize time.
    std::map<std::vector<uint64_t>, Word> CallMemo;
    /// Shared single-instruction stubs: exit block -> PC, site -> PC.
    std::map<ir::BlockId, uint32_t> ExitStubs;
    std::map<uint32_t, uint32_t> DispatchStubs;
    /// Per-context placement counts (unrolling evidence).
    std::vector<uint32_t> CtxPlacements;
  };

  /// A run-time dispatch site (emitted Dispatch instruction payload).
  struct DispatchSite {
    uint32_t RegionOrd = 0;
    uint32_t PromoId = 0;
    std::vector<Word> BakedVals; ///< values of the promo's BakedRegs
  };

  friend class SpecializeRun;

  /// Runs the specializer; returns the entry PC in the region's buffer.
  uint32_t specialize(RegionRT &R, vm::VM &M, uint32_t TargetCtx,
                      std::vector<Word> Vals);

  /// Finds or creates a dispatch site; returns its index.
  uint32_t internSite(DispatchSite S);

  const ir::Module &M;
  vm::Program &Prog;
  OptFlags Flags;
  std::vector<std::unique_ptr<RegionRT>> Regions;
  std::vector<DispatchSite> Sites;
};

} // namespace runtime
} // namespace dyc

#endif // DYC_RUNTIME_SPECIALIZER_H
