//===- runtime/Specializer.h - The DyC run-time ----------------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The run-time half of DyC: dispatching through dynamic-code caches and,
/// on a miss, running the generating extension to produce specialized
/// bytecode. Specialization is a memoized walk over (context,
/// static-values) pairs — polyvariant specialization. Re-reaching a pair
/// emits a jump to the existing code, which is what terminates and shapes
/// complete loop unrolling: a simple counted loop unrolls into a linear
/// chain; loops whose iterations diverge produce a directed graph of
/// unrolled bodies (multi-way unrolling, paper section 2.2.4).
///
/// Emit-time optimizations (all statically planned, no run-time IR):
///  * holes filled with static values, integer operands packed into
///    immediate fields, power-of-two strength reduction (section 2.2.7),
///  * zero/copy propagation via operand resolution through a deferral
///    table, and
///  * dead-assignment elimination: pure instructions whose results are
///    block-dead are deferred; if nothing reads them before the end of the
///    specialized block, they are never emitted.
///
/// The runtime itself is single-threaded (one client, inline
/// specialization on the dispatch path). The SpecServer (src/server/)
/// layers a concurrent front end on top; to support it, specialization can
/// emit into a caller-provided buffer with caller-provided stub maps
/// (specializeInto), and the dispatch-site table is guarded so site
/// interning during background specialization never races site resolution
/// on client threads.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_RUNTIME_SPECIALIZER_H
#define DYC_RUNTIME_SPECIALIZER_H

#include "bta/OptFlags.h"
#include "cogen/CompilerGenerator.h"
#include "runtime/CodeCache.h"
#include "runtime/RuntimeStats.h"
#include "vm/VM.h"

#include <map>
#include <memory>
#include <mutex>

namespace dyc {
namespace runtime {

/// The DyC run-time: owns every region's generated-code buffer, caches,
/// and statistics, and serves the VM's EnterRegion/Dispatch traps.
class DycRuntime : public vm::RuntimeHook {
public:
  DycRuntime(const ir::Module &M, vm::Program &Prog, const OptFlags &Flags)
      : M(M), Prog(Prog), Flags(Flags) {}

  /// Registers the generating extension for the next annotated function.
  /// Must be called in annotated-ordinal order (the order lowerModule
  /// encoded into EnterRegion instructions).
  void addRegion(cogen::GenExtFunction GX);

  /// VM trap entry point. \p PointId >= 0 encodes a native entry
  /// (ordinal << 16 | promoId); negative values are run-time dispatch
  /// sites (-(site + 1)).
  Target dispatch(vm::VM &M, int64_t PointId,
                  std::vector<Word> &Regs) override;

  size_t numRegions() const { return Regions.size(); }
  const RegionStats &stats(size_t Ordinal) const;
  RegionStats &statsMutable(size_t Ordinal);

  /// Disassembles a region's generated-code buffer (for the examples'
  /// Figure-3/4-style dumps).
  std::string disassembleRegion(size_t Ordinal) const;

  /// Renders a region's generating extension (set-up/emit programs).
  std::string printRegion(size_t Ordinal, const ir::Module &Mod) const;

  /// Average probes per cache_all lookup across a region's promotion
  /// points (dispatch-cost reporting).
  double avgCacheProbes(size_t Ordinal) const;

  // --- SpecServer interface ---------------------------------------------------
  // The server front end performs its own cache lookups, buffer management
  // and locking; it uses the runtime for region metadata and for running
  // the generating extension.

  /// A copy of one run-time dispatch site (thread-safe snapshot).
  struct SiteInfo {
    uint32_t RegionOrd = 0;
    uint32_t PromoId = 0;
    std::vector<Word> BakedVals;
  };
  SiteInfo siteInfo(size_t Idx) const;
  size_t numSites() const;

  const bta::PromoPoint &promo(size_t Ordinal, size_t PromoId) const;
  size_t numPromos(size_t Ordinal) const;
  uint32_t regionNumRegs(size_t Ordinal) const;
  int regionFuncIdx(size_t Ordinal) const;
  const bta::RegionInfo &regionInfo(size_t Ordinal) const;

  /// Runs the generating extension for region \p Ordinal, emitting into
  /// \p Buf using \p ExitStubs / \p DispatchStubs for shared
  /// single-instruction stubs, and returns the entry PC within \p Buf.
  /// Unlike the inline path (which appends every run to the region's one
  /// buffer and shares stubs across runs), a SpecServer run passes a fresh
  /// buffer and fresh stub maps, making each specialization a
  /// self-contained, immutable-after-publication code chain — eviction
  /// then cannot leave another chain's branch dangling.
  ///
  /// Callers must serialize invocations (region stats, the static-call
  /// memo, and placement counters are shared); the SpecServer holds its
  /// global specialization lock across this call.
  uint32_t specializeInto(size_t Ordinal, vm::VM &M, uint32_t TargetCtx,
                          std::vector<Word> Vals, vm::CodeObject &Buf,
                          std::map<ir::BlockId, uint32_t> &ExitStubs,
                          std::map<uint32_t, uint32_t> &DispatchStubs);

private:
  struct RegionRT {
    cogen::GenExtFunction GX;
    vm::CodeObject Buffer;
    std::vector<CodeCache> PromoCaches; ///< index == promo id
    RegionStats Stats;
    /// Memo for static calls executed at specialize time.
    std::map<std::vector<uint64_t>, Word> CallMemo;
    /// Shared single-instruction stubs: exit block -> PC, site -> PC.
    std::map<ir::BlockId, uint32_t> ExitStubs;
    std::map<uint32_t, uint32_t> DispatchStubs;
    /// Per-context placement counts (unrolling evidence).
    std::vector<uint32_t> CtxPlacements;
  };

  /// A run-time dispatch site (emitted Dispatch instruction payload).
  struct DispatchSite {
    uint32_t RegionOrd = 0;
    uint32_t PromoId = 0;
    std::vector<Word> BakedVals; ///< values of the promo's BakedRegs
  };

  friend class SpecializeRun;

  /// Runs the specializer inline; returns the entry PC in the region's
  /// buffer.
  uint32_t specialize(RegionRT &R, vm::VM &M, uint32_t TargetCtx,
                      std::vector<Word> Vals);

  /// Finds or creates a dispatch site; returns its index. Thread-safe.
  uint32_t internSite(DispatchSite S);

  const ir::Module &M;
  vm::Program &Prog;
  OptFlags Flags;
  std::vector<std::unique_ptr<RegionRT>> Regions;
  std::vector<DispatchSite> Sites;
  /// Guards Sites: background specialization interns sites while client
  /// threads resolve them.
  mutable std::mutex SitesMutex;
};

} // namespace runtime
} // namespace dyc

#endif // DYC_RUNTIME_SPECIALIZER_H
