//===- runtime/CodeCache.h - Dynamic-code caches ---------------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-promotion-point caches of dynamically generated code (paper
/// section 2.2.3). Three policies:
///
///  * cache_all (default, safe): double-hashed table mapping the tuple of
///    static-variable values to generated code (~90 cycles per dispatch).
///  * cache_one: a single entry whose key is checked; a mismatch evicts
///    and respecializes.
///  * cache_one_unchecked: a single entry returned *without* checking
///    (load + indirect jump, ~10 cycles) — fast but a potentially unsafe
///    programmer assertion, exactly as in DyC.
///  * cache_indexed: the section-3.1 extension — the last key word
///    directly indexes an array (valid for small value ranges); other key
///    words are unchecked invariants. This is what makes byte-keyed
///    regions (decompressors, grep) profitable. Keys at or above the
///    supported index range fall back to the checked double-hash table
///    instead of aborting, so an occasional out-of-range value degrades to
///    cache_all cost rather than killing the process.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_RUNTIME_CODECACHE_H
#define DYC_RUNTIME_CODECACHE_H

#include "ir/Instruction.h"
#include "support/DoubleHashTable.h"

#include <atomic>

namespace dyc {
namespace runtime {

/// Outcome of a cache probe.
struct CacheResult {
  bool Hit = false;
  uint32_t Value = 0;   ///< generated-code entry PC on hit
  unsigned Probes = 0;  ///< hash probes performed (cache_all only)
};

/// One promotion point's cache.
class CodeCache {
public:
  explicit CodeCache(ir::CachePolicy Policy = ir::CachePolicy::CacheAll,
                     uint32_t IndexPos = 0)
      : Policy(Policy), IndexPos(IndexPos) {}
  CodeCache(const CodeCache &O);
  CodeCache &operator=(const CodeCache &O);

  ir::CachePolicy policy() const { return Policy; }

  /// Which key word cache_indexed uses as the direct-array index.
  uint32_t indexPos() const { return IndexPos; }

  /// Probes for \p Key. Under cache_one_unchecked, any resident entry hits
  /// regardless of key — the unsafety is the point.
  CacheResult lookup(WordSpan Key) const;
  CacheResult lookup(const std::vector<Word> &Key) const {
    return lookup(WordSpan(Key));
  }

  /// Installs \p Key -> \p Value (replaces the resident entry under the
  /// one-slot policies). Returns true if a live entry with a *different*
  /// key was evicted to make room (cache_one mismatch replacement); the
  /// run-time counts these in RegionStats. \p DisplacedOut, if non-null,
  /// receives the value any pre-existing entry was displaced from (one-slot
  /// replacement, same-key rebinding, or same-index overwrite) or NoValue —
  /// the run-time uses it to retire the displaced chain.
  bool insert(WordSpan Key, uint32_t Value, uint32_t *DisplacedOut = nullptr);
  bool insert(const std::vector<Word> &Key, uint32_t Value,
              uint32_t *DisplacedOut = nullptr) {
    return insert(WordSpan(Key), Value, DisplacedOut);
  }

  /// Removes \p Key so the next lookup misses (capacity eviction
  /// unpublishing an entry). Under the one-slot policies the resident entry
  /// is dropped only if its key matches.
  void erase(WordSpan Key);
  void erase(const std::vector<Word> &Key) { erase(WordSpan(Key)); }

  /// Mutation epoch: bumped by every insert and erase — the only
  /// operations that can change which entry a key maps to or how many
  /// probes a table lookup takes. The run-time's per-site inline caches
  /// memoize (entry, probe count) against this; an unchanged epoch proves
  /// both are still exactly what a real lookup would produce.
  uint64_t epoch() const { return Epoch; }

  /// Replays the counter effects of the memoized hit the inline cache just
  /// short-circuited: one lookup here, and — when the memoized probe ran
  /// through the hash table (\p UsedTable: cache_all, or the
  /// cache_indexed out-of-range fallback) — the table's lookup/probe
  /// counters, so lookups()/totalProbes() stay bit-identical to an
  /// un-memoized dispatch sequence.
  /// Single-writer bumps (load + store, no RMW): only the single-client
  /// inline front end memoizes against a CodeCache, so there is never a
  /// concurrent writer, and plain atomic stores keep any concurrent stats
  /// reader race-free at a fraction of a locked add's cost.
  void noteMemoizedHit(unsigned Probes, bool UsedTable) const {
    Lookups.store(Lookups.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
    if (UsedTable)
      Table.notePhantomLookup(Probes);
  }

  uint64_t lookups() const { return Lookups.load(std::memory_order_relaxed); }
  uint64_t totalProbes() const { return Table.totalProbes(); }
  size_t entries() const;

  /// cache_indexed keys below this index the direct array; larger keys use
  /// the double-hash fallback path.
  static constexpr size_t MaxIndexedKey = 65536;

  /// Sentinel for insert's DisplacedOut: nothing was displaced.
  static constexpr uint32_t NoValue = 0xffffffffu;

private:
  ir::CachePolicy Policy;
  uint32_t IndexPos;
  DoubleHashTable Table; // cache_all, and cache_indexed overflow keys
  bool HasOne = false;   // one-slot policies
  std::vector<Word> OneKey;
  uint32_t OneValue = 0;
  std::vector<uint32_t> Indexed; // cache_indexed (sentinel = NotPresent)
  size_t IndexedCount = 0;
  uint64_t Epoch = 0; ///< bumped on insert/erase (inline-cache validity)
  /// Relaxed atomic: concurrent readers (the SpecServer's dispatch layer)
  /// may count lookups while a stats reader aggregates them.
  mutable std::atomic<uint64_t> Lookups{0};

  static constexpr uint32_t NotPresent = 0xffffffffu;
};

} // namespace runtime
} // namespace dyc

#endif // DYC_RUNTIME_CODECACHE_H
