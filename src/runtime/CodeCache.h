//===- runtime/CodeCache.h - Dynamic-code caches ---------------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-promotion-point caches of dynamically generated code (paper
/// section 2.2.3). Three policies:
///
///  * cache_all (default, safe): double-hashed table mapping the tuple of
///    static-variable values to generated code (~90 cycles per dispatch).
///  * cache_one: a single entry whose key is checked; a mismatch evicts
///    and respecializes.
///  * cache_one_unchecked: a single entry returned *without* checking
///    (load + indirect jump, ~10 cycles) — fast but a potentially unsafe
///    programmer assertion, exactly as in DyC.
///  * cache_indexed: the section-3.1 extension — the last key word
///    directly indexes an array (valid for small value ranges); other key
///    words are unchecked invariants. This is what makes byte-keyed
///    regions (decompressors, grep) profitable.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_RUNTIME_CODECACHE_H
#define DYC_RUNTIME_CODECACHE_H

#include "ir/Instruction.h"
#include "support/DoubleHashTable.h"

namespace dyc {
namespace runtime {

/// Outcome of a cache probe.
struct CacheResult {
  bool Hit = false;
  uint32_t Value = 0;   ///< generated-code entry PC on hit
  unsigned Probes = 0;  ///< hash probes performed (cache_all only)
};

/// One promotion point's cache.
class CodeCache {
public:
  explicit CodeCache(ir::CachePolicy Policy = ir::CachePolicy::CacheAll,
                     uint32_t IndexPos = 0)
      : Policy(Policy), IndexPos(IndexPos) {}

  ir::CachePolicy policy() const { return Policy; }

  /// Probes for \p Key. Under cache_one_unchecked, any resident entry hits
  /// regardless of key — the unsafety is the point.
  CacheResult lookup(const std::vector<Word> &Key) const;

  /// Installs \p Key -> \p Value (replaces the resident entry under the
  /// one-slot policies).
  void insert(const std::vector<Word> &Key, uint32_t Value);

  uint64_t lookups() const { return Lookups; }
  uint64_t totalProbes() const { return Table.totalProbes(); }
  size_t entries() const;

private:
  ir::CachePolicy Policy;
  uint32_t IndexPos;
  DoubleHashTable Table; // cache_all
  bool HasOne = false;   // one-slot policies
  std::vector<Word> OneKey;
  uint32_t OneValue = 0;
  std::vector<uint32_t> Indexed; // cache_indexed (sentinel = NotPresent)
  size_t IndexedCount = 0;
  mutable uint64_t Lookups = 0;

  static constexpr uint32_t NotPresent = 0xffffffffu;
  static constexpr size_t MaxIndexedKey = 65536;
};

} // namespace runtime
} // namespace dyc

#endif // DYC_RUNTIME_CODECACHE_H
