//===- runtime/PlanRunner.h - Staged emit-plan executor ---------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes one block's linear emit program (cogen/EmitPlan.h) against the
/// live specializer state. The step kinds map to small executors driven by
/// a step PC (Branch jumps, End stops, everything else falls through):
///
///  * EvalRun — a tight loop over the pre-decoded PlanEval array, with the
///    run's cycle charges accumulated once at the run boundary (the cost
///    model is a pure accumulator, so batching is total-preserving).
///  * Copy — evaluate the step's captured expressions into the expression
///    scratch, then one bulk append of the pre-encoded template into the
///    chain buffer, then the hole list patches immediate fields in place.
///    The appended instructions are new (never rewritten), so — exactly
///    like the legacy Emitter::emitRaw appends they replace — no
///    CodeObject::Version bump happens; the charge trail and stats
///    (InstructionsGenerated, CodeCapHits, the deferral engine's
///    ZcpApplied / StrengthReduced / DeadAssignsEliminated /
///    MaterializedDeferred) are replayed arithmetically.
///  * Branch — evaluate the guard's predicate on the live value and jump
///    to the matching pre-compiled sub-program.
///  * Sync — rebuild the live DeferralEngine's table from the plan's
///    reconstruction list, so Generic suffixes and the driver's
///    terminator handling observe exactly the legacy walk's state.
///  * Generic — handed back to the caller, which runs the unmodified
///    legacy UnrollDriver::execSetup for that SetupOp index.
///
/// The runner is deliberately decoupled from the UnrollDriver: it sees
/// only the VM (charging + static-load memory), the region state (stats),
/// the chain buffer, and the deferral engine (for Sync). Generic steps
/// reach the driver through the callback passed to runBlock, so
/// re-entrant specialization (memoized static calls that dispatch again)
/// works unchanged under the plan path.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_RUNTIME_PLANRUNNER_H
#define DYC_RUNTIME_PLANRUNNER_H

#include "cogen/EmitPlan.h"
#include "runtime/Deferral.h"
#include "runtime/RegionExec.h"

namespace dyc {
namespace runtime {

class PlanRunner {
public:
  PlanRunner(vm::VM &M, RegionState &R, vm::CodeObject &Buf, size_t MaxInstrs,
             DeferralEngine &D)
      : M(M), CM(M.costModel()), R(R), Buf(Buf), MaxInstrs(MaxInstrs), D(D) {}

  /// Executes \p BP from its first step until End. \p Generic is called
  /// with the GenBlock::Ops index of each Generic step and must execute it
  /// through the legacy path.
  template <typename GenericFn>
  void runBlock(const cogen::BlockPlan &BP, std::vector<Word> &Vals,
                GenericFn &&Generic) {
    ExprVals.assign(BP.Exprs.size(), Word());
    uint32_t PC = 0;
    while (true) {
      const cogen::PlanStep &S = BP.Steps[PC];
      switch (S.K) {
      case cogen::PlanStep::EvalRun:
        runEvals(BP, S, Vals);
        ++PC;
        break;
      case cogen::PlanStep::Copy:
        runCopy(BP, S, Vals);
        ++PC;
        break;
      case cogen::PlanStep::Generic:
        Generic(S.First);
        ++PC;
        break;
      case cogen::PlanStep::Branch: {
        const cogen::PlanBranch &Br = BP.Branches[S.First];
        PC = predicate(Br, Vals) ? Br.True : Br.False;
        break;
      }
      case cogen::PlanStep::Sync:
        runSync(BP, S, Vals);
        ++PC;
        break;
      case cogen::PlanStep::End:
        return;
      }
    }
  }

private:
  Word ref(const cogen::PlanRef &R, const std::vector<Word> &Vals) const {
    switch (R.K) {
    case cogen::PlanRef::Lit:
      return R.L;
    case cogen::PlanRef::Static:
      return Vals[R.Idx];
    case cogen::PlanRef::Expr:
      return ExprVals[R.Idx];
    }
    return Word();
  }

  bool predicate(const cogen::PlanBranch &Br,
                 const std::vector<Word> &Vals) const {
    Word V = ref(Br.A, Vals);
    if (Br.P == cogen::PlanBranch::EqBits)
      return V.Bits == Br.Cmp.Bits;
    int64_t I = V.asInt();
    return isPowerOf2(I) && I >= 2;
  }

  void runEvals(const cogen::BlockPlan &BP, const cogen::PlanStep &S,
                std::vector<Word> &Vals);
  void runCopy(const cogen::BlockPlan &BP, const cogen::PlanStep &S,
               const std::vector<Word> &Vals);
  void runSync(const cogen::BlockPlan &BP, const cogen::PlanStep &S,
               const std::vector<Word> &Vals);

  vm::VM &M;
  const vm::CostModel &CM;
  RegionState &R;
  vm::CodeObject &Buf;
  size_t MaxInstrs;
  DeferralEngine &D;
  /// Evaluated PlanExpr values, indexed by expression id; sized per
  /// runBlock. Expressions persist for the whole block run — a deferred
  /// value captured early can be consumed by a hole, a guard, or a Sync
  /// operand many steps later.
  std::vector<Word> ExprVals;
};

} // namespace runtime
} // namespace dyc

#endif // DYC_RUNTIME_PLANRUNNER_H
