//===- speculate/PromotionController.cpp ---------------------------------------------===//

#include "speculate/PromotionController.h"

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "bta/BTAnalysis.h"
#include "cogen/CompilerGenerator.h"
#include "cogen/Lowering.h"
#include "ir/ConstEval.h"

#include <algorithm>

namespace dyc {
namespace speculate {

namespace {

/// Mirror of the BTA's instruction classification (minus annotations,
/// which a stripped function cannot contain): can \p I be evaluated at
/// specialize time given the static set \p Set?
bool staticEvaluable(const ir::Instruction &I, const BitVector &Set,
                     const ir::Module &M, const OptFlags &Flags) {
  switch (I.Op) {
  case ir::Opcode::ConstI:
  case ir::Opcode::ConstF:
    return true;
  case ir::Opcode::Load:
    return I.StaticLoad && Flags.StaticLoads && Set.test(I.Src1);
  case ir::Opcode::Call: {
    if (!I.StaticCall || !Flags.StaticCalls || !M.function(I.Callee).Pure)
      return false;
    for (ir::Reg A : I.Args)
      if (!Set.test(A))
        return false;
    return true;
  }
  case ir::Opcode::CallExt: {
    if (!I.StaticCall || !Flags.StaticCalls || !M.external(I.Callee).Pure)
      return false;
    for (ir::Reg A : I.Args)
      if (!Set.test(A))
        return false;
    return true;
  }
  default: {
    if (!ir::isEvaluableOp(I.Op))
      return false;
    std::vector<ir::Reg> Uses;
    I.appendUses(Uses);
    for (ir::Reg U : Uses)
      if (!Set.test(U))
        return false;
    return true;
  }
  }
}

} // namespace

std::vector<ir::Reg> PromotionController::loopCarriedStatics(
    const ir::Function &F, const std::vector<uint32_t> &Params) const {
  analysis::CFG G(F);
  analysis::Dominators DT(F, G);
  analysis::LoopInfo LI(F, G, DT);
  analysis::Liveness LV(F, G);

  // All-definitions staticness, greatest fixpoint: a register is
  // derivably static only if EVERY definition is evaluable from the
  // set. Union-over-defs would be too eager — a loop accumulator
  // initialized to a constant but updated from dynamic values has one
  // static definition, yet no programmer would annotate it (its dynamic
  // update poisons the loop-head meet anyway). Start optimistically with
  // every defined register plus the promoted parameters, demote the
  // unpromoted parameters (they are the dynamic inputs), and strike
  // registers with a non-evaluable definition until nothing changes.
  BitVector Set(F.numRegs());
  for (const ir::BasicBlock &BB : F.Blocks)
    for (const ir::Instruction &I : BB.Instrs)
      if (I.definesReg())
        Set.set(I.Dst);
  for (uint32_t P = 0; P != F.NumParams; ++P)
    Set.reset(P);
  for (uint32_t P : Params)
    Set.set(P);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (ir::BlockId B : G.rpo())
      for (const ir::Instruction &I : F.block(B).Instrs)
        if (I.definesReg() && Set.test(I.Dst) &&
            !staticEvaluable(I, Set, SpecM, Flags)) {
          Set.reset(I.Dst);
          Changed = true;
        }
  }

  // Keep the registers a programmer would have annotated: derivably
  // static, reassigned inside a loop, live into its header — exactly the
  // ones the BTA's loop-head demotion would otherwise strip. One more
  // screen protects the specializer's memoized state space: a definition
  // on a conditional path (its block does not dominate every latch)
  // forks the static state at the dynamic branch, which is only bounded
  // when the same block also advances the loop's static exit condition
  // (binary search's `found` rides with `lo = hi + 1`, so the interval
  // keeps narrowing). A pure accumulator under dynamic control — a hit
  // counter, say — multiplies states without ever converging, so it is
  // rejected everywhere.
  std::vector<ir::Reg> Accepted, Rejected;
  for (const analysis::Loop &L : LI.loops()) {
    const BitVector &Live = LV.liveIn(L.Header);
    std::vector<ir::Reg> Cands;
    for (ir::Reg V : LI.loopVariantRegs(F, L.Header))
      if (Set.test(V) && Live.test(V))
        Cands.push_back(V);
    if (Cands.empty())
      continue;

    // Registers transitively feeding a static exiting branch of L
    // (backward closure over the loop's definitions).
    BitVector Feed(F.numRegs());
    for (ir::BlockId B : L.Blocks) {
      const ir::Instruction &T = F.block(B).terminator();
      if (T.Op == ir::Opcode::CondBr && Set.test(T.Src1) &&
          (!L.contains(T.TrueSucc) || !L.contains(T.FalseSucc)))
        Feed.set(T.Src1);
    }
    bool Grew = true;
    while (Grew) {
      Grew = false;
      for (ir::BlockId B : L.Blocks)
        for (const ir::Instruction &I : F.block(B).Instrs) {
          if (!I.definesReg() || !Feed.test(I.Dst))
            continue;
          std::vector<ir::Reg> Uses;
          I.appendUses(Uses);
          for (ir::Reg U : Uses)
            if (!Feed.test(U)) {
              Feed.set(U);
              Grew = true;
            }
        }
    }

    for (ir::Reg V : Cands) {
      bool Ok = true;
      for (ir::BlockId B : L.Blocks) {
        bool DefinesV = false, DefinesFeed = false;
        for (const ir::Instruction &I : F.block(B).Instrs)
          if (I.definesReg()) {
            DefinesV |= I.Dst == V;
            DefinesFeed |= Feed.test(I.Dst);
          }
        if (!DefinesV)
          continue;
        bool Uncond = true;
        for (ir::BlockId Latch : L.Latches)
          if (!DT.dominates(B, Latch))
            Uncond = false;
        if (!Uncond && !DefinesFeed) {
          Ok = false;
          break;
        }
      }
      (Ok ? Accepted : Rejected).push_back(V);
    }
  }
  std::sort(Accepted.begin(), Accepted.end());
  Accepted.erase(std::unique(Accepted.begin(), Accepted.end()),
                 Accepted.end());
  std::vector<ir::Reg> Out;
  for (ir::Reg V : Accepted)
    if (std::find(Rejected.begin(), Rejected.end(), V) == Rejected.end())
      Out.push_back(V);
  return Out;
}

ir::Function
PromotionController::annotatedClone(const ir::Function &F,
                                    const std::vector<uint32_t> &Params) const {
  ir::Function TF = F;
  ir::Instruction MS;
  MS.Op = ir::Opcode::MakeStatic;
  MS.Policy = ir::CachePolicy::CacheOneUnchecked;
  for (uint32_t P : Params)
    MS.AnnotVars.push_back(P);
  for (ir::Reg V : loopCarriedStatics(F, Params))
    if (std::find(MS.AnnotVars.begin(), MS.AnnotVars.end(), V) ==
        MS.AnnotVars.end())
      MS.AnnotVars.push_back(V);
  assert(!TF.Blocks.empty() && "function has no entry block");
  ir::BasicBlock &Entry = TF.block(0);
  Entry.Instrs.insert(Entry.Instrs.begin(), std::move(MS));
  bta::normalizeAnnotations(TF);
  return TF;
}

PromotionController::Trial
PromotionController::probe(uint32_t Func,
                           const std::vector<uint32_t> &Params) const {
  Trial T;
  // An empty promotion would synthesize a degenerate always-passing
  // guard; rule it out rather than letting constant-argument pure calls
  // (static with no promoted inputs at all) claim a benefit.
  if (Params.empty())
    return T;
  ir::Function TF = annotatedClone(SpecM.function(static_cast<int>(Func)),
                                   Params);
  T.AnalyzedInstrs = TF.numInstructions();
  bta::RegionInfo RI = bta::analyzeFunction(TF, SpecM, Flags);
  for (const bta::Context &C : RI.Contexts) {
    const ir::BasicBlock &BB = TF.block(C.Block);
    if (C.TermCondStatic)
      ++T.Benefit; // a dynamic branch folds away
    size_t N = std::min(BB.Instrs.size(), C.InstIsStatic.size());
    for (size_t I = 0; I != N; ++I) {
      if (BB.Instrs[I].isAnnotation())
        continue;
      if (!C.InstIsStatic[I]) {
        ++T.DynWork;
        continue;
      }
      ++T.StaticWork;
      ir::Opcode Op = BB.Instrs[I].Op;
      // Static `@` loads and static pure calls execute once at
      // specialize time; everything else static (arithmetic, moves) is
      // as cheap re-executed as guarded, so it counts for nothing.
      if (Op == ir::Opcode::Load || Op == ir::Opcode::Call ||
          Op == ir::Opcode::CallExt) {
        ++T.Benefit;
        ++T.DataFolds;
      }
    }
  }
  return T;
}

PromotionController::Decision PromotionController::attempt(uint32_t Func) {
  Decision D;
  const ir::Function &F = SpecM.function(static_cast<int>(Func));

  // Candidate parameters: observed, stable enough, not retired.
  std::vector<uint32_t> Cand;
  for (uint32_t P = 0; P != F.NumParams; ++P) {
    const profile::ParamProfile &PP = Prof.param(Func, P);
    if (PP.Blacklisted || PP.Overflowed || PP.Observations == 0)
      continue;
    if (PP.dominance() < Policy.MinDominance)
      continue;
    Cand.push_back(P);
  }
  if (Cand.empty())
    return D;

  Trial Full = probe(Func, Cand);
  D.AnalyzedInstrs += Full.AnalyzedInstrs;
  if (Full.Benefit < Policy.MinStructuralBenefit)
    return D;
  // Pure unrolling is held to a stricter floor: one folded branch is the
  // region's own driver loop, and replicating its body per (unknown)
  // trip count trades I-cache for nothing (see SpeculationPolicy).
  if (Full.DataFolds == 0 && Full.Benefit < Policy.MinUnrollOnlyBenefit)
    return D;

  // Greedy narrowing, ascending: drop any parameter whose removal keeps
  // the full benefit. Invariant-but-unused (or content-varying pointer)
  // parameters fall out here, shrinking the guard.
  std::vector<uint32_t> Kept = Cand;
  for (uint32_t P : Cand) {
    if (Kept.size() == 1)
      break;
    std::vector<uint32_t> Sub;
    for (uint32_t K : Kept)
      if (K != P)
        Sub.push_back(K);
    Trial T = probe(Func, Sub);
    D.AnalyzedInstrs += T.AnalyzedInstrs;
    if (T.Benefit == Full.Benefit)
      Kept = std::move(Sub);
  }

  // Synthesize the twin and run it through the ordinary pipeline.
  ir::Function TF = annotatedClone(F, Kept);
  std::string CodeName = TF.Name + ".spec";
  // The reference to F dies here: addFunction may reallocate SpecM.
  int TwinIdx = SpecM.addFunction(std::move(TF));
  const ir::Function &Twin = SpecM.function(TwinIdx);
  bta::RegionInfo RI = bta::analyzeFunction(Twin, SpecM, Flags);
  RI.FuncIdx = TwinIdx;
  uint32_t Ord = static_cast<uint32_t>(Inner.numRegions());
  cogen::LoweredFunction LF = cogen::lowerFunction(
      Twin, SpecM, Prog, /*WithRegions=*/true, &RI, static_cast<int>(Ord),
      CodeName);
  Inner.addRegion(cogen::buildGenExt(Twin, SpecM, std::move(RI), LF, Flags));

  D.Promoted = true;
  D.TwinIdx = static_cast<uint32_t>(TwinIdx);
  D.Ordinal = Ord;
  D.Params = std::move(Kept);
  for (uint32_t P : D.Params)
    D.Values.push_back(Word(Prof.param(Func, P).dominantValue()));
  return D;
}

} // namespace speculate
} // namespace dyc
