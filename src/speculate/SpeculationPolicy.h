//===- speculate/SpeculationPolicy.h - Promotion cost-benefit knobs ---------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tunables of the speculative promotion subsystem — the automation the
/// paper names as future work (sections 3.2 and 6: value profiling plus a
/// cost-benefit model selecting what to specialize). The defaults are
/// deliberately conservative: speculation must observe a sustained
/// invariant before synthesizing a promotion, and a few guard failures
/// are enough to demote it again.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_SPECULATE_SPECULATIONPOLICY_H
#define DYC_SPECULATE_SPECULATIONPOLICY_H

#include <cstdint>

namespace dyc {
namespace speculate {

/// Cost-benefit knobs for online speculative promotion.
struct SpeculationPolicy {
  /// Master switch; off means buildSpeculative behaves like buildStatic
  /// (no guards armed, no profiling cost).
  bool Enabled = true;

  /// Calls a function must accumulate before the controller considers
  /// promoting it (the paper's break-even reasoning: synthesis costs
  /// thousands of cycles, so cold functions must never pay it).
  uint64_t HotCalls = 16;

  /// Minimum share of observations the dominant value of a parameter
  /// must hold to be speculated on. Near 1.0: a speculated value that is
  /// wrong even occasionally costs a guard failure per miss.
  double MinDominance = 0.95;

  /// Minimum structural benefit (folded static branches + static `@`
  /// loads + static calls reachable under the candidate promotion, as
  /// counted by BTA) for a promotion to be worth a guarded dispatch.
  /// Static arithmetic alone counts for nothing — it is as cheap
  /// re-executed as a guard is.
  uint64_t MinStructuralBenefit = 1;

  /// Stricter benefit floor when the candidate folds NO loads or calls —
  /// pure loop unrolling. A single folded branch is just the region's
  /// own driver loop: specialization then replicates the body once per
  /// iteration, growing code in proportion to the (analysis-invisible)
  /// trip count while folding no data, and an over-I-cache chain runs
  /// slower than the generic loop — the paper's pnmconvol lesson
  /// (section 4.4.4). Nested static control (romberg's triangle of
  /// loops) is the unroll-only shape that does pay off.
  uint64_t MinUnrollOnlyBenefit = 2;

  /// Guard failures at one site before the promotion is demoted: the
  /// thrashing parameters are blacklisted, the profile reset, and the
  /// region's chains released.
  uint64_t DemoteFailures = 8;

  /// Promotions one function may consume across its lifetime. After the
  /// last one demotes, its call guard is removed and it runs generically
  /// forever — the backstop against promote/demote oscillation.
  uint32_t MaxPromotions = 4;
};

} // namespace speculate
} // namespace dyc

#endif // DYC_SPECULATE_SPECULATIONPOLICY_H
