//===- speculate/SpeculativeRuntime.cpp ----------------------------------------------===//

#include "speculate/SpeculativeRuntime.h"

#include "cogen/Lowering.h"

#include <algorithm>

namespace dyc {
namespace speculate {

ir::Module stripAnnotations(const ir::Module &M) {
  ir::Module Out;
  for (size_t E = 0; E != M.numExternals(); ++E)
    Out.declareExternal(M.external(static_cast<int>(E)));
  for (size_t I = 0; I != M.numFunctions(); ++I) {
    ir::Function F = M.function(static_cast<int>(I));
    for (ir::BasicBlock &BB : F.Blocks)
      BB.Instrs.erase(std::remove_if(BB.Instrs.begin(), BB.Instrs.end(),
                                     [](const ir::Instruction &In) {
                                       return In.isAnnotation();
                                     }),
                      BB.Instrs.end());
    Out.addFunction(std::move(F));
  }
  return Out;
}

SpeculativeRuntime::SpeculativeRuntime(const ir::Module &M, vm::Program &Prog,
                                       const OptFlags &Flags,
                                       const SpeculationPolicy &Policy,
                                       runtime::ChainBudget Budget)
    : SpecM(stripAnnotations(M)), Flags(Flags), Policy(Policy) {
  cogen::bindExternals(SpecM, Prog);
  std::vector<bta::RegionInfo> Empty(SpecM.numFunctions());
  std::vector<int> NoOrd(SpecM.numFunctions(), -1);
  Lowered =
      cogen::lowerModule(SpecM, Prog, /*WithRegions=*/false, Empty, NoOrd);
  Inner = std::make_unique<runtime::DycRuntime>(SpecM, Prog, this->Flags,
                                                Budget);
  Controller = std::make_unique<PromotionController>(
      SpecM, Prog, *Inner, this->Flags, this->Policy, Prof);
  PromotionCount.assign(SpecM.numFunctions(), 0);
}

void SpeculativeRuntime::arm(vm::VM &Machine) {
  // Synthesized twins go through the inner runtime's backend seam like any
  // region, so the armed machine joins the backend's execution substrate
  // even when speculation itself is disabled.
  Inner->core().attachVM(Machine);
  if (!Policy.Enabled)
    return;
  for (size_t I = 0; I != SpecM.numFunctions(); ++I)
    if (SpecM.function(static_cast<int>(I)).NumParams > 0)
      Machine.setCallGuard(static_cast<uint32_t>(I), true);
}

vm::RuntimeHook::Target
SpeculativeRuntime::dispatch(vm::VM &M, int64_t PointId,
                             std::vector<Word> &Regs) {
  Busy = true;
  Target T = Inner->dispatch(M, PointId, Regs);
  Busy = false;
  return T;
}

void SpeculativeRuntime::onDynamicCodeExit(vm::VM &M,
                                           const vm::CodeObject *CO) {
  Inner->onDynamicCodeExit(M, CO);
}

uint32_t SpeculativeRuntime::onGuardedCall(vm::VM &M, uint32_t Callee,
                                           const Word *Args,
                                           uint32_t NArgs) {
  // Specialize-time static calls re-enter here while the inner runtime is
  // mid-dispatch (its Fronts vector may be mid-mutation) — pass through.
  if (Busy)
    return Callee;
  const vm::CostModel &CM = M.costModel();
  ++Stats.CallsObserved;

  GuardSite *Site = Guards.find(Callee);
  if (!Site) {
    // Sample only while unguarded: once a site guards the call, the
    // guard comparison itself is the probe (failures feed the profile
    // through noteGuardFailure), so steady-state hits pay no sampling.
    M.chargeExec(CM.ProfileSample);
    Prof.recordCall(Callee, Args, NArgs);
    if (Prof.calls(Callee) < Policy.HotCalls)
      return Callee;

    // Hot and unguarded: run the cost-benefit model. The trial BTAs are
    // real work the run-time did either way, so the synthesis charge
    // lands on promote *and* decline (the paper's break-even framing).
    Busy = true;
    PromotionController::Decision D = Controller->attempt(Callee);
    Busy = false;
    M.chargeDynComp(CM.SpecSynthBase +
                    CM.SpecSynthPerInstr * D.AnalyzedInstrs);
    if (!D.Promoted) {
      ++Stats.PromotionsDeclined;
      // Nothing about this function will change the verdict (profiles
      // only accumulate); stop paying the sampling cost forever.
      M.setCallGuard(Callee, false);
      return Callee;
    }
    ++Stats.Promotions;
    ++PromotionCount[Callee];
    GuardSite S;
    S.Func = Callee;
    S.Twin = D.TwinIdx;
    S.Ordinal = D.Ordinal;
    S.Params = std::move(D.Params);
    S.Values = std::move(D.Values);
    S.ParamFailures.assign(S.Params.size(), 0);
    Site = &Guards.install(std::move(S));
  }

  M.chargeExec(CM.SpecGuardBase +
               CM.SpecGuardPerWord *
                   static_cast<uint64_t>(Site->Params.size()));
  ++Stats.GuardChecks;
  bool Pass = true;
  for (size_t I = 0; I != Site->Params.size(); ++I) {
    uint32_t P = Site->Params[I];
    if (P < NArgs && Args[P].Bits == Site->Values[I].Bits)
      continue;
    Pass = false;
    ++Site->ParamFailures[I];
    if (P < NArgs)
      Prof.noteGuardFailure(Site->Func, P, Args[P]);
  }
  if (Pass) {
    ++Stats.GuardHits;
    ++Site->Hits;
    return Site->Twin;
  }
  ++Stats.GuardFailures;
  ++Site->Failures;
  if (Site->Failures >= Policy.DemoteFailures)
    demote(M, *Site); // invalidates Site
  return Callee;
}

void SpeculativeRuntime::demote(vm::VM &M, GuardSite &Site) {
  ++Stats.Demotions;

  // Retire the parameters that thrashed worst; survivors stay eligible
  // so a re-promotion can speculate on a narrower invariant.
  uint64_t MaxFail = 0;
  for (uint64_t F : Site.ParamFailures)
    MaxFail = std::max(MaxFail, F);
  if (MaxFail > 0)
    for (size_t I = 0; I != Site.Params.size(); ++I)
      if (Site.ParamFailures[I] == MaxFail) {
        Prof.blacklist(Site.Func, Site.Params[I]);
        ++Stats.ParamsBlacklisted;
      }

  // Fresh statistics: the function must re-establish hotness and
  // dominance under the new phase before the controller reconsiders it.
  Prof.resetFunction(Site.Func);

  // Release the twin's published chains and reclaim what no executor is
  // still inside; stragglers go at the next collectChains safe point.
  Inner->releaseRegion(M, Site.Ordinal);
  Inner->core().collectChains();

  uint32_t Func = Site.Func;
  if (PromotionCount[Func] >= Policy.MaxPromotions)
    M.setCallGuard(Func, false); // oscillation backstop: generic forever
  Guards.remove(Func);
}

} // namespace speculate
} // namespace dyc
