//===- speculate/SpeculativeRuntime.h - Annotation-free DyC ------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The speculative promotion subsystem: DyC without annotations. The
/// run-time closes the loop the paper sketches as future work (sections
/// 3.2 and 6) — profile, promote, guard, deoptimize, demote:
///
///  * Every call to a guarded function is sampled into a ValueProfiler
///    (always-on, charged at CostModel::ProfileSample cycles).
///  * Once a function is hot, the PromotionController decides from the
///    profile and a trial-BTA structural benefit whether to synthesize an
///    annotated twin (make_static at entry, cache_one_unchecked), lower
///    it, and register it as a fresh region with the inner DycRuntime.
///  * A GuardSite then redirects calls whose promoted arguments equal the
///    speculated values to the twin; the twin's region entry specializes
///    and memoizes chains exactly as an annotated build would.
///    cache_one_unchecked is sound here because the guard compares
///    precisely the promoted parameters before every redirect.
///  * A mismatched guard deoptimizes: the call runs the original generic
///    code, bit-identical by construction, and the failure feeds back
///    into the profile.
///  * Sites that thrash demote: worst-offending parameters are
///    blacklisted, the profile reset, the twin's chains released through
///    the chain-eviction safe point, and — after MaxPromotions — the
///    guard removed for good.
///
/// All charges flow through the VM's simulated counters, so both engines
/// stay bit-identical; promotion decisions depend only on executed calls,
/// so they are deterministic too.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_SPECULATE_SPECULATIVERUNTIME_H
#define DYC_SPECULATE_SPECULATIVERUNTIME_H

#include "profile/ValueProfiler.h"
#include "runtime/Specializer.h"
#include "speculate/GuardManager.h"
#include "speculate/PromotionController.h"
#include "speculate/SpeculationPolicy.h"
#include "speculate/SpeculationStats.h"

#include <memory>

namespace dyc {
namespace speculate {

/// Copy of \p M with the MakeStatic/MakeDynamic pseudo-instructions
/// erased. The `@` (StaticLoad) and pure (StaticCall) bits are RETAINED:
/// they assert properties of memory and callees ("this load's location is
/// quasi-invariant"), not a request to specialize, and the synthesized
/// twins need them for static loads and calls to fold.
ir::Module stripAnnotations(const ir::Module &M);

/// The annotation-free DyC run-time: wraps a DycRuntime over the stripped
/// module and drives promotions from online profiles.
class SpeculativeRuntime : public vm::RuntimeHook {
public:
  /// Strips \p M, lowers the generic module into \p Prog, and builds the
  /// inner runtime. \p M is only read during construction; \p Prog must
  /// outlive this object.
  SpeculativeRuntime(const ir::Module &M, vm::Program &Prog,
                     const OptFlags &Flags,
                     const SpeculationPolicy &Policy,
                     runtime::ChainBudget Budget = {});

  /// Arms the call guards on \p Machine (every function with parameters,
  /// when the policy is enabled). Call once after construction.
  void arm(vm::VM &Machine);

  // --- RuntimeHook --------------------------------------------------------
  Target dispatch(vm::VM &M, int64_t PointId,
                  std::vector<Word> &Regs) override;
  void onDynamicCodeExit(vm::VM &M, const vm::CodeObject *CO) override;
  uint32_t onGuardedCall(vm::VM &M, uint32_t Callee, const Word *Args,
                         uint32_t NArgs) override;

  // --- Introspection ------------------------------------------------------
  const SpeculationStats &stats() const { return Stats; }
  profile::ValueProfiler &profiler() { return Prof; }
  const profile::ValueProfiler &profiler() const { return Prof; }
  PromotionController &controller() { return *Controller; }
  runtime::DycRuntime &runtime() { return *Inner; }
  const runtime::DycRuntime &runtime() const { return *Inner; }
  const ir::Module &specModule() const { return SpecM; }
  const GuardManager &guards() const { return Guards; }
  const std::vector<cogen::LoweredFunction> &lowered() const {
    return Lowered;
  }

  /// Region ordinal of the active promotion guarding \p Func, or -1.
  int ordinalOf(uint32_t Func) const {
    const GuardSite *S = Guards.find(Func);
    return S ? static_cast<int>(S->Ordinal) : -1;
  }

  std::string disassembleRegion(size_t Ordinal) const {
    return Inner->disassembleRegion(Ordinal);
  }

private:
  /// Tears down \p Site: blacklists its worst parameters, resets the
  /// profile, releases the twin's chains, and removes the guard site.
  void demote(vm::VM &M, GuardSite &Site);

  ir::Module SpecM; ///< stripped module + appended twins (owned)
  OptFlags Flags;
  SpeculationPolicy Policy;
  profile::ValueProfiler Prof;
  SpeculationStats Stats;
  GuardManager Guards;
  std::vector<cogen::LoweredFunction> Lowered;
  std::unique_ptr<runtime::DycRuntime> Inner;
  std::unique_ptr<PromotionController> Controller;
  /// Lifetime promotion count per original function (MaxPromotions cap).
  std::vector<uint32_t> PromotionCount;
  /// True while the inner runtime specializes (its generating extension
  /// may execute static calls through the VM) or a twin is being
  /// synthesized: guarded calls made then pass through unprofiled, so
  /// specialize-time evaluation never mutates promotion state it is
  /// itself running under.
  bool Busy = false;
};

} // namespace speculate
} // namespace dyc

#endif // DYC_SPECULATE_SPECULATIVERUNTIME_H
