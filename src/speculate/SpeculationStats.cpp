//===- speculate/SpeculationStats.cpp ------------------------------------------------===//

#include "speculate/SpeculationStats.h"

#include "support/Support.h"

namespace dyc {
namespace speculate {

std::string SpeculationStats::toString() const {
  return formatString(
      "observed %llu calls; %llu promoted, %llu declined, %llu demoted; "
      "guards: %llu checks, %llu hits, %llu failures; "
      "%llu params blacklisted",
      (unsigned long long)CallsObserved, (unsigned long long)Promotions,
      (unsigned long long)PromotionsDeclined, (unsigned long long)Demotions,
      (unsigned long long)GuardChecks, (unsigned long long)GuardHits,
      (unsigned long long)GuardFailures,
      (unsigned long long)ParamsBlacklisted);
}

} // namespace speculate
} // namespace dyc
