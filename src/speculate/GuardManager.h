//===- speculate/GuardManager.h - Guarded speculative dispatch sites --------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A GuardSite materializes one speculative promotion: calls to Func are
/// intercepted (VM::setCallGuard), the live arguments named by Params are
/// compared against the speculated Values, and on equality the call is
/// redirected to the synthesized twin — whose cache_one_unchecked region
/// entry then costs no more than a memoized hit, so a passing guard adds
/// only the compare itself over the annotated build's dispatch. A
/// mismatch deoptimizes: the call proceeds to the original generic code
/// (bit-identical results by construction), and per-parameter failure
/// counters feed the demotion policy.
///
/// GuardManager is a plain registry; the decision logic lives in
/// SpeculativeRuntime (lifecycle) and PromotionController (cost-benefit).
///
//===----------------------------------------------------------------------===//

#ifndef DYC_SPECULATE_GUARDMANAGER_H
#define DYC_SPECULATE_GUARDMANAGER_H

#include "support/Support.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dyc {
namespace speculate {

/// One guarded speculative dispatch site (at most one per function).
struct GuardSite {
  uint32_t Func = 0;    ///< original (generic) VM function index
  uint32_t Twin = 0;    ///< synthesized annotated twin's VM index
  uint32_t Ordinal = 0; ///< the twin's region ordinal in the inner runtime
  std::vector<uint32_t> Params; ///< promoted parameter indices, ascending
  std::vector<Word> Values;     ///< speculated (dominant) values, parallel
  uint64_t Hits = 0;
  uint64_t Failures = 0;
  /// Times each promoted parameter individually compared unequal; the
  /// demotion policy blacklists the worst offenders.
  std::vector<uint64_t> ParamFailures;
};

/// Registry of active guard sites, keyed by original function index.
class GuardManager {
public:
  GuardSite *find(uint32_t Func) {
    auto It = Sites.find(Func);
    return It == Sites.end() ? nullptr : &It->second;
  }
  const GuardSite *find(uint32_t Func) const {
    auto It = Sites.find(Func);
    return It == Sites.end() ? nullptr : &It->second;
  }

  /// Installs \p S (replacing any site for the same function) and returns
  /// the stored site. The reference stays valid until remove() — node-
  /// based map storage survives other insertions.
  GuardSite &install(GuardSite S) {
    uint32_t Func = S.Func;
    return Sites.insert_or_assign(Func, std::move(S)).first->second;
  }

  void remove(uint32_t Func) { Sites.erase(Func); }

  size_t size() const { return Sites.size(); }
  const std::unordered_map<uint32_t, GuardSite> &sites() const {
    return Sites;
  }

private:
  std::unordered_map<uint32_t, GuardSite> Sites;
};

} // namespace speculate
} // namespace dyc

#endif // DYC_SPECULATE_GUARDMANAGER_H
