//===- speculate/PromotionController.h - Cost-benefit promotion decisions ---------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cost-benefit model the paper leaves as future work (sections 3.2
/// and 6): given online value profiles, decide whether a hot function's
/// quasi-invariant parameters are worth speculatively promoting, and if
/// so synthesize the promotion — an annotated *twin* of the function with
/// make_static(params : cache_one_unchecked) at entry, run through the
/// ordinary BTA -> lowering -> generating-extension pipeline and
/// registered as a fresh region with the inner run-time. No source
/// annotations are consulted; this is make_static without the programmer.
///
/// The benefit metric is structural, computed from a trial BTA: the count
/// of folded static branches, static `@` loads, and static pure calls
/// across the would-be region's contexts. Static arithmetic counts for
/// nothing — recomputing an add costs no more than the guard that would
/// protect its folded value. Parameters whose removal keeps the metric
/// unchanged are greedily dropped, so the guard stays as narrow as the
/// benefit allows.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_SPECULATE_PROMOTIONCONTROLLER_H
#define DYC_SPECULATE_PROMOTIONCONTROLLER_H

#include "bta/OptFlags.h"
#include "profile/ValueProfiler.h"
#include "runtime/Specializer.h"
#include "speculate/SpeculationPolicy.h"

#include <cstdint>
#include <vector>

namespace dyc {
namespace speculate {

/// Decides and executes speculative promotions over a stripped module.
class PromotionController {
public:
  /// Outcome of one promotion attempt.
  struct Decision {
    bool Promoted = false;
    uint32_t TwinIdx = 0; ///< VM index of the synthesized twin
    uint32_t Ordinal = 0; ///< region ordinal registered with the runtime
    std::vector<uint32_t> Params; ///< promoted parameter indices, ascending
    std::vector<Word> Values;     ///< speculated values, parallel to Params
    /// Instructions the trial BTAs analyzed (promote or decline) — the
    /// deterministic basis for the simulated synthesis charge.
    uint64_t AnalyzedInstrs = 0;
  };

  /// \p SpecM is the stripped module twins are appended to; \p Prog the
  /// VM program they are lowered into. Both must outlive the controller,
  /// as must \p Inner (the runtime twins register regions with) and
  /// \p Prof (the profile decisions read).
  PromotionController(ir::Module &SpecM, vm::Program &Prog,
                      runtime::DycRuntime &Inner, const OptFlags &Flags,
                      const SpeculationPolicy &Policy,
                      profile::ValueProfiler &Prof)
      : SpecM(SpecM), Prog(Prog), Inner(Inner), Flags(Flags), Policy(Policy),
        Prof(Prof) {}

  /// Considers promoting \p Func (its VM index, which equals its module
  /// index for generic functions). On success the twin is synthesized,
  /// lowered, and registered; the caller installs the guard site.
  Decision attempt(uint32_t Func);

  /// One trial BTA's worth of evidence about promoting \p Params of
  /// \p Func. Also the basis of `dycc --advise`.
  struct Trial {
    /// Folded static branches, `@` loads, and pure calls — the paper's
    /// headline optimizations. Static arithmetic counts for nothing
    /// here: recomputing an add costs no more than a guard word.
    uint64_t Benefit = 0;
    /// The `@` loads and pure calls within Benefit. Zero means the
    /// promotion is pure unrolling, held to MinUnrollOnlyBenefit.
    uint64_t DataFolds = 0;
    uint64_t StaticWork = 0; ///< all static instructions, across contexts
    uint64_t DynWork = 0;    ///< residual (emitted) instructions
    uint64_t AnalyzedInstrs = 0; ///< twin size the trial BTA walked
  };
  Trial probe(uint32_t Func, const std::vector<uint32_t> &Params) const;

private:
  /// Copy of \p F with make_static(\p Params + derived loop-carried
  /// locals : cache_one_unchecked) prepended to the entry block,
  /// normalized for analysis. The clone keeps F's name so chain names
  /// ("name.chainN") match an annotated build's; lowering gives the
  /// twin's CodeObject a distinct name.
  ir::Function annotatedClone(const ir::Function &F,
                              const std::vector<uint32_t> &Params) const;

  /// Loop-carried locals that must ride along in the annotation: the
  /// BTA keeps only *annotated* variables static across loop heads
  /// (mirroring the paper's explicitly annotated loop indices), so a
  /// synthesized promotion has to annotate what a programmer would have
  /// — every register that is derivably static from \p Params, assigned
  /// inside a loop, and live into that loop's header.
  std::vector<ir::Reg>
  loopCarriedStatics(const ir::Function &F,
                     const std::vector<uint32_t> &Params) const;

  ir::Module &SpecM;
  vm::Program &Prog;
  runtime::DycRuntime &Inner;
  const OptFlags &Flags;
  const SpeculationPolicy &Policy;
  profile::ValueProfiler &Prof;
};

} // namespace speculate
} // namespace dyc

#endif // DYC_SPECULATE_PROMOTIONCONTROLLER_H
