//===- speculate/SpeculationStats.h - Promotion lifecycle counters ----------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters over the profile -> promote -> guard -> deopt -> demote
/// lifecycle. All are simulated-deterministic: both VM engines and every
/// run of the same program produce identical values.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_SPECULATE_SPECULATIONSTATS_H
#define DYC_SPECULATE_SPECULATIONSTATS_H

#include <cstdint>
#include <string>

namespace dyc {
namespace speculate {

/// Lifecycle counters of the speculative promotion subsystem.
struct SpeculationStats {
  uint64_t CallsObserved = 0;      ///< guarded calls profiled
  uint64_t Promotions = 0;         ///< twins synthesized and guarded
  uint64_t PromotionsDeclined = 0; ///< hot functions judged not worth it
  uint64_t Demotions = 0;          ///< guards torn down for thrashing
  uint64_t GuardChecks = 0;        ///< guard evaluations
  uint64_t GuardHits = 0;          ///< checks that entered the twin
  uint64_t GuardFailures = 0;      ///< checks that deoptimized
  uint64_t ParamsBlacklisted = 0;  ///< parameters retired from speculation

  std::string toString() const;
};

} // namespace speculate
} // namespace dyc

#endif // DYC_SPECULATE_SPECULATIONSTATS_H
