//===- ir/Module.h - Translation unit ----------------------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A module owns functions and external-function declarations. External
/// declarations record purity (whether a `static` call annotation is legal)
/// and are resolved against the VM's ExternalRegistry at lowering time.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_IR_MODULE_H
#define DYC_IR_MODULE_H

#include "ir/Function.h"

#include <string>
#include <vector>

namespace dyc {
namespace ir {

/// Declaration of a host-implemented callee.
struct ExternalDecl {
  std::string Name;
  unsigned NumArgs = 0;
  bool Pure = false;
  Type RetTy = Type::F64;
};

/// A translation unit.
class Module {
public:
  /// Adds \p F (by move); returns its index.
  int addFunction(Function F);

  /// Declares an external; returns its index.
  int declareExternal(ExternalDecl D);

  int findFunction(const std::string &Name) const;
  int findExternal(const std::string &Name) const;

  Function &function(int Idx) {
    assert(Idx >= 0 && static_cast<size_t>(Idx) < Funcs.size());
    return Funcs[static_cast<size_t>(Idx)];
  }
  const Function &function(int Idx) const {
    assert(Idx >= 0 && static_cast<size_t>(Idx) < Funcs.size());
    return Funcs[static_cast<size_t>(Idx)];
  }

  const ExternalDecl &external(int Idx) const {
    assert(Idx >= 0 && static_cast<size_t>(Idx) < Externals.size());
    return Externals[static_cast<size_t>(Idx)];
  }

  size_t numFunctions() const { return Funcs.size(); }
  size_t numExternals() const { return Externals.size(); }

private:
  std::vector<Function> Funcs;
  std::vector<ExternalDecl> Externals;
};

/// Renders \p F as text (blocks, instructions, register names).
std::string printFunction(const Function &F);

/// Renders the whole module.
std::string printModule(const Module &M);

/// Checks structural invariants: every block ends in exactly one
/// terminator, all register/block/callee references are in range, operand
/// types match opcode expectations. Returns an empty string on success or
/// a description of the first problem found.
std::string verifyFunction(const Function &F, const Module &M);
std::string verifyModule(const Module &M);

} // namespace ir
} // namespace dyc

#endif // DYC_IR_MODULE_H
