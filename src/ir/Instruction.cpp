//===- ir/Instruction.cpp ---------------------------------------------------===//

#include "ir/Instruction.h"

namespace dyc {
namespace ir {

const char *typeName(Type T) {
  switch (T) {
  case Type::Void: return "void";
  case Type::I64: return "i64";
  case Type::F64: return "f64";
  }
  return "<bad-type>";
}

const char *cachePolicyName(CachePolicy P) {
  switch (P) {
  case CachePolicy::CacheAll: return "cache_all";
  case CachePolicy::CacheOne: return "cache_one";
  case CachePolicy::CacheOneUnchecked: return "cache_one_unchecked";
  case CachePolicy::CacheIndexed: return "cache_indexed";
  }
  return "<bad-policy>";
}

const char *opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::ConstI: return "consti";
  case Opcode::ConstF: return "constf";
  case Opcode::Mov: return "mov";
  case Opcode::Add: return "add";
  case Opcode::Sub: return "sub";
  case Opcode::Mul: return "mul";
  case Opcode::Div: return "div";
  case Opcode::Rem: return "rem";
  case Opcode::And: return "and";
  case Opcode::Or: return "or";
  case Opcode::Xor: return "xor";
  case Opcode::Shl: return "shl";
  case Opcode::Shr: return "shr";
  case Opcode::Neg: return "neg";
  case Opcode::FAdd: return "fadd";
  case Opcode::FSub: return "fsub";
  case Opcode::FMul: return "fmul";
  case Opcode::FDiv: return "fdiv";
  case Opcode::FNeg: return "fneg";
  case Opcode::CmpEq: return "cmpeq";
  case Opcode::CmpNe: return "cmpne";
  case Opcode::CmpLt: return "cmplt";
  case Opcode::CmpLe: return "cmple";
  case Opcode::CmpGt: return "cmpgt";
  case Opcode::CmpGe: return "cmpge";
  case Opcode::FCmpEq: return "fcmpeq";
  case Opcode::FCmpNe: return "fcmpne";
  case Opcode::FCmpLt: return "fcmplt";
  case Opcode::FCmpLe: return "fcmple";
  case Opcode::FCmpGt: return "fcmpgt";
  case Opcode::FCmpGe: return "fcmpge";
  case Opcode::IToF: return "itof";
  case Opcode::FToI: return "ftoi";
  case Opcode::Load: return "load";
  case Opcode::Store: return "store";
  case Opcode::Call: return "call";
  case Opcode::CallExt: return "callext";
  case Opcode::Br: return "br";
  case Opcode::CondBr: return "condbr";
  case Opcode::Ret: return "ret";
  case Opcode::MakeStatic: return "make_static";
  case Opcode::MakeDynamic: return "make_dynamic";
  }
  return "<bad-opcode>";
}

bool Instruction::isSideEffectFree() const {
  switch (Op) {
  case Opcode::Store:
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Ret:
  case Opcode::MakeStatic:
  case Opcode::MakeDynamic:
    return false;
  case Opcode::Load:
    // A plain load has no side effects, but its *value* is only known at
    // specialize time when annotated static; for DCE purposes it is pure.
    return true;
  case Opcode::Call:
  case Opcode::CallExt:
    return false; // purity handled separately via StaticCall
  default:
    return true;
  }
}

void Instruction::appendUses(std::vector<Reg> &Uses) const {
  switch (Op) {
  case Opcode::ConstI:
  case Opcode::ConstF:
  case Opcode::Br:
  case Opcode::MakeDynamic:
    return;
  case Opcode::MakeStatic:
    // A promotion reads the annotated variables' run-time values.
    for (Reg R : AnnotVars)
      Uses.push_back(R);
    return;
  case Opcode::Ret:
  case Opcode::CondBr:
    if (Src1 != NoReg)
      Uses.push_back(Src1);
    return;
  case Opcode::Call:
  case Opcode::CallExt:
    for (Reg A : Args)
      Uses.push_back(A);
    return;
  case Opcode::Store:
    Uses.push_back(Src1);
    Uses.push_back(Src2);
    return;
  default:
    if (Src1 != NoReg)
      Uses.push_back(Src1);
    if (Src2 != NoReg)
      Uses.push_back(Src2);
    return;
  }
}

std::string Instruction::toString() const {
  std::string S;
  auto R = [](Reg X) {
    return X == NoReg ? std::string("r?") : formatString("r%u", X);
  };
  switch (Op) {
  case Opcode::ConstI:
    return formatString("%s = consti %lld", R(Dst).c_str(), (long long)Imm);
  case Opcode::ConstF:
    return formatString("%s = constf %g", R(Dst).c_str(),
                        Word{(uint64_t)Imm}.asFloat());
  case Opcode::Mov:
  case Opcode::Neg:
  case Opcode::FNeg:
  case Opcode::IToF:
  case Opcode::FToI:
    return formatString("%s = %s %s", R(Dst).c_str(), opcodeName(Op),
                        R(Src1).c_str());
  case Opcode::Load:
    return formatString("%s = load%s [%s + %lld]", R(Dst).c_str(),
                        StaticLoad ? "@" : "", R(Src1).c_str(),
                        (long long)Imm);
  case Opcode::Store:
    return formatString("store [%s + %lld], %s", R(Src1).c_str(),
                        (long long)Imm, R(Src2).c_str());
  case Opcode::Call:
  case Opcode::CallExt: {
    S = formatString("%s = %s%s %s%d(", R(Dst).c_str(),
                     StaticCall ? "static " : "", opcodeName(Op),
                     Op == Opcode::Call ? "fn" : "ext", Callee);
    for (size_t I = 0; I != Args.size(); ++I)
      S += (I ? ", " : "") + R(Args[I]);
    return S + ")";
  }
  case Opcode::Br:
    return formatString("br bb%u", TrueSucc);
  case Opcode::CondBr:
    return formatString("condbr %s, bb%u, bb%u", R(Src1).c_str(), TrueSucc,
                        FalseSucc);
  case Opcode::Ret:
    return Src1 == NoReg ? "ret" : formatString("ret %s", R(Src1).c_str());
  case Opcode::MakeStatic:
  case Opcode::MakeDynamic: {
    S = opcodeName(Op);
    S += "(";
    for (size_t I = 0; I != AnnotVars.size(); ++I)
      S += (I ? ", " : "") + R(AnnotVars[I]);
    S += ")";
    if (Op == Opcode::MakeStatic)
      S += formatString(" : %s", cachePolicyName(Policy));
    return S;
  }
  default:
    return formatString("%s = %s %s, %s", R(Dst).c_str(), opcodeName(Op),
                        R(Src1).c_str(), R(Src2).c_str());
  }
}

Instruction makeBinary(Opcode Op, Type Ty, Reg Dst, Reg A, Reg B) {
  Instruction I;
  I.Op = Op;
  I.Ty = Ty;
  I.Dst = Dst;
  I.Src1 = A;
  I.Src2 = B;
  return I;
}

Instruction makeUnary(Opcode Op, Type Ty, Reg Dst, Reg A) {
  Instruction I;
  I.Op = Op;
  I.Ty = Ty;
  I.Dst = Dst;
  I.Src1 = A;
  return I;
}

} // namespace ir
} // namespace dyc
