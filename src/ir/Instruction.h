//===- ir/Instruction.h - Three-address IR instructions --------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler's intermediate representation: a non-SSA three-address code
/// over typed virtual registers, mirroring the Multiflow-style IR DyC
/// operated on. Binding times are properties of *variables at program
/// points*, so the IR deliberately has no phis; merges are handled by the
/// dataflow analyses.
///
/// DyC's annotations are first-class here:
///  * MakeStatic / MakeDynamic pseudo-instructions carry the annotated
///    variable list and a cache policy (paper sections 2.2.1-2.2.3),
///  * Load carries a StaticLoad bit (the `@` annotation, section 2.2.6),
///  * Call/CallExt carry a StaticCall bit (pure-function annotation).
///
//===----------------------------------------------------------------------===//

#ifndef DYC_IR_INSTRUCTION_H
#define DYC_IR_INSTRUCTION_H

#include "support/Support.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dyc {
namespace ir {

/// Virtual register index within a function.
using Reg = uint32_t;
constexpr Reg NoReg = 0xffffffffu;

/// Block index within a function.
using BlockId = uint32_t;
constexpr BlockId NoBlock = 0xffffffffu;

/// Register/value types. Words are 64-bit; the type selects the
/// interpretation and the opcodes a register may feed.
enum class Type : uint8_t { Void, I64, F64 };

const char *typeName(Type T);

/// Dispatch policies for dynamic-to-static promotion points
/// (section 2.2.3). CacheAll is DyC's safe default (double-hashed lookup on
/// the static-variable values); CacheOne keeps a single checked entry;
/// CacheOneUnchecked is the unsafe-but-fast single load + indirect jump.
/// CacheIndexed implements the extension the paper sketches in section
/// 3.1 for byte-ranged keys ("the lookup could be implemented as a simple
/// array indexing"): the *last* annotated variable indexes a direct
/// array (it must stay within [0, 65535]); any other annotated variables
/// are treated as unchecked invariants.
enum class CachePolicy : uint8_t {
  CacheAll, CacheOne, CacheOneUnchecked, CacheIndexed
};

const char *cachePolicyName(CachePolicy P);

/// IR operations. Reg-immediate selection happens at lowering/emission;
/// the IR keeps constants in registers so binding-time analysis sees them
/// as ordinary static computations.
enum class Opcode : uint8_t {
  ConstI, ///< Dst <- Imm
  ConstF, ///< Dst <- bitcast double Imm
  Mov,    ///< Dst <- Src1 (type from the register)

  // Integer arithmetic.
  Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, Neg,

  // Floating-point arithmetic.
  FAdd, FSub, FMul, FDiv, FNeg,

  // Comparisons (I64 result).
  CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
  FCmpEq, FCmpNe, FCmpLt, FCmpLe, FCmpGt, FCmpGe,

  IToF, FToI,

  Load,  ///< Dst <- Mem[Src1 + Imm]; StaticLoad bit = `@` annotation
  Store, ///< Mem[Src1 + Imm] <- Src2

  Call,    ///< Dst <- call Callee(Args); StaticCall bit = pure annotation
  CallExt, ///< external callee

  Br,     ///< goto TrueSucc
  CondBr, ///< if Src1 goto TrueSucc else FalseSucc
  Ret,    ///< return Src1 (NoReg for void)

  MakeStatic,  ///< annotation: promote AnnotVars to static (policy applies)
  MakeDynamic, ///< annotation: demote AnnotVars to dynamic
};

const char *opcodeName(Opcode Op);

/// One IR instruction. A single struct covers every opcode; unused fields
/// stay at their defaults.
struct Instruction {
  Opcode Op = Opcode::Ret;
  Type Ty = Type::Void; ///< result type (Void if no Dst)
  Reg Dst = NoReg;
  Reg Src1 = NoReg;
  Reg Src2 = NoReg;
  int64_t Imm = 0; ///< ConstI value, ConstF bits, or Load/Store offset

  // Call payload.
  int32_t Callee = -1; ///< function index (Call) or external index (CallExt)
  std::vector<Reg> Args;

  // Branch payload.
  BlockId TrueSucc = NoBlock;
  BlockId FalseSucc = NoBlock;

  // DyC annotations.
  bool StaticLoad = false;
  bool StaticCall = false;
  CachePolicy Policy = CachePolicy::CacheAll;
  std::vector<Reg> AnnotVars;

  bool isTerminator() const {
    return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret;
  }

  bool isAnnotation() const {
    return Op == Opcode::MakeStatic || Op == Opcode::MakeDynamic;
  }

  /// True if the instruction writes Dst.
  bool definesReg() const { return Dst != NoReg; }

  /// True for operations free of side effects (candidates for static
  /// evaluation when every operand is static). Loads are only pure when
  /// annotated static; calls when annotated static and the callee is pure.
  bool isSideEffectFree() const;

  /// Appends every register this instruction reads to \p Uses.
  void appendUses(std::vector<Reg> &Uses) const;

  /// Renders the instruction for dumps.
  std::string toString() const;
};

/// Builds the common three-operand instruction.
Instruction makeBinary(Opcode Op, Type Ty, Reg Dst, Reg A, Reg B);

/// Builds a unary instruction (Mov/Neg/FNeg/IToF/FToI).
Instruction makeUnary(Opcode Op, Type Ty, Reg Dst, Reg A);

} // namespace ir
} // namespace dyc

#endif // DYC_IR_INSTRUCTION_H
