//===- ir/IRBuilder.h - Convenience IR construction -------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helper for building IR by hand (used by tests and the AST lowering).
/// Tracks a current insertion block; each emitter appends one instruction
/// and returns the destination register where applicable.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_IR_IRBUILDER_H
#define DYC_IR_IRBUILDER_H

#include "ir/Module.h"

namespace dyc {
namespace ir {

/// Appends instructions to a block of a function.
class IRBuilder {
public:
  explicit IRBuilder(Function &F) : F(F) {}

  void setInsertPoint(BlockId B) { Cur = B; }
  BlockId insertPoint() const { return Cur; }
  Function &function() { return F; }

  Reg constI(int64_t V, const std::string &Name = "");
  Reg constF(double V, const std::string &Name = "");

  /// Two-operand arithmetic/compare; the result type is inferred from the
  /// opcode.
  Reg binary(Opcode Op, Reg A, Reg B, const std::string &Name = "");

  Reg unary(Opcode Op, Reg A, const std::string &Name = "");
  Reg mov(Reg Src, const std::string &Name = "");

  /// Copies \p Src into the existing register \p Dst (used for assignments
  /// to named variables in the non-SSA IR).
  void movTo(Reg Dst, Reg Src);

  /// Loads Mem[Addr + Off]; \p Static is the `@` annotation; \p Ty is the
  /// loaded value's type.
  Reg load(Reg Addr, int64_t Off, Type Ty, bool Static = false,
           const std::string &Name = "");
  void store(Reg Addr, int64_t Off, Reg Val);

  /// Calls module function \p Callee; Dst is NoReg for void calls.
  Reg call(const Module &M, int Callee, const std::vector<Reg> &Args,
           bool Static = false, const std::string &Name = "");
  Reg callExt(const Module &M, int Callee, const std::vector<Reg> &Args,
              bool Static = false, const std::string &Name = "");

  void br(BlockId Target);
  void condBr(Reg Cond, BlockId T, BlockId FBlk);
  void ret(Reg V = NoReg);

  void makeStatic(const std::vector<Reg> &Vars,
                  CachePolicy Policy = CachePolicy::CacheAll);
  void makeDynamic(const std::vector<Reg> &Vars);

private:
  Instruction &append(Instruction I);

  Function &F;
  BlockId Cur = 0;
};

/// Result type of \p Op (I64 for integer/compare ops, F64 for FP ops).
Type resultTypeOf(Opcode Op);

} // namespace ir
} // namespace dyc

#endif // DYC_IR_IRBUILDER_H
