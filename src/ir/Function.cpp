//===- ir/Function.cpp -------------------------------------------------------===//

#include "ir/Function.h"

namespace dyc {
namespace ir {

Reg Function::newReg(Type Ty, const std::string &Name) {
  assert(Ty != Type::Void && "registers cannot be void");
  RegTypes.push_back(Ty);
  RegNames.push_back(Name.empty()
                         ? formatString("t%zu", RegTypes.size() - 1)
                         : Name);
  return static_cast<Reg>(RegTypes.size() - 1);
}

BlockId Function::newBlock(const std::string &Name) {
  Blocks.emplace_back();
  Blocks.back().Name =
      Name.empty() ? formatString("bb%zu", Blocks.size() - 1) : Name;
  return static_cast<BlockId>(Blocks.size() - 1);
}

bool Function::hasAnnotations() const {
  for (const BasicBlock &B : Blocks)
    for (const Instruction &I : B.Instrs)
      if (I.Op == Opcode::MakeStatic)
        return true;
  return false;
}

size_t Function::numInstructions() const {
  size_t N = 0;
  for (const BasicBlock &B : Blocks)
    N += B.Instrs.size();
  return N;
}

} // namespace ir
} // namespace dyc
