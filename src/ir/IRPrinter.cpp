//===- ir/IRPrinter.cpp - Textual IR dumps ------------------------------------===//

#include "ir/Module.h"

namespace dyc {
namespace ir {

std::string printFunction(const Function &F) {
  std::string Out = formatString("func %s %s(", typeName(F.RetTy),
                                 F.Name.c_str());
  for (uint32_t P = 0; P != F.NumParams; ++P)
    Out += formatString("%s%s r%u:%s", P ? ", " : "",
                        typeName(F.regType(P)), P, F.regName(P).c_str());
  Out += formatString(")  ; %u regs\n", F.numRegs());
  for (size_t B = 0; B != F.Blocks.size(); ++B) {
    const BasicBlock &BB = F.Blocks[B];
    Out += formatString("bb%zu:  ; %s\n", B, BB.Name.c_str());
    for (const Instruction &I : BB.Instrs)
      Out += "  " + I.toString() + "\n";
  }
  return Out;
}

std::string printModule(const Module &M) {
  std::string Out;
  for (size_t E = 0; E != M.numExternals(); ++E) {
    const ExternalDecl &D = M.external(static_cast<int>(E));
    Out += formatString("extern%s %s %s/%u\n", D.Pure ? " pure" : "",
                        typeName(D.RetTy), D.Name.c_str(), D.NumArgs);
  }
  for (size_t I = 0; I != M.numFunctions(); ++I) {
    Out += printFunction(M.function(static_cast<int>(I)));
    Out += "\n";
  }
  return Out;
}

} // namespace ir
} // namespace dyc
