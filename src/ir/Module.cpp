//===- ir/Module.cpp ----------------------------------------------------------===//

#include "ir/Module.h"

namespace dyc {
namespace ir {

int Module::addFunction(Function F) {
  assert(findFunction(F.Name) < 0 && "duplicate function name");
  Funcs.push_back(std::move(F));
  return static_cast<int>(Funcs.size() - 1);
}

int Module::declareExternal(ExternalDecl D) {
  assert(findExternal(D.Name) < 0 && "duplicate external name");
  Externals.push_back(std::move(D));
  return static_cast<int>(Externals.size() - 1);
}

int Module::findFunction(const std::string &Name) const {
  for (size_t I = 0; I != Funcs.size(); ++I)
    if (Funcs[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

int Module::findExternal(const std::string &Name) const {
  for (size_t I = 0; I != Externals.size(); ++I)
    if (Externals[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

} // namespace ir
} // namespace dyc
