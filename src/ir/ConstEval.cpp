//===- ir/ConstEval.cpp -----------------------------------------------------------===//

#include "ir/ConstEval.h"

namespace dyc {
namespace ir {

bool isEvaluableOp(Opcode Op) {
  switch (Op) {
  case Opcode::Mov:
  case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::Div:
  case Opcode::Rem: case Opcode::And: case Opcode::Or: case Opcode::Xor:
  case Opcode::Shl: case Opcode::Shr: case Opcode::Neg:
  case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul: case Opcode::FDiv:
  case Opcode::FNeg:
  case Opcode::CmpEq: case Opcode::CmpNe: case Opcode::CmpLt:
  case Opcode::CmpLe: case Opcode::CmpGt: case Opcode::CmpGe:
  case Opcode::FCmpEq: case Opcode::FCmpNe: case Opcode::FCmpLt:
  case Opcode::FCmpLe: case Opcode::FCmpGt: case Opcode::FCmpGe:
  case Opcode::IToF: case Opcode::FToI:
    return true;
  default:
    return false;
  }
}

bool evalPureOp(Opcode Op, Word A, Word B, Word &Out) {
  switch (Op) {
  case Opcode::Mov: Out = A; return true;
  case Opcode::Add: Out = Word::fromInt(A.asInt() + B.asInt()); return true;
  case Opcode::Sub: Out = Word::fromInt(A.asInt() - B.asInt()); return true;
  case Opcode::Mul: Out = Word::fromInt(A.asInt() * B.asInt()); return true;
  case Opcode::Div:
    if (B.asInt() == 0)
      return false;
    Out = Word::fromInt(A.asInt() / B.asInt());
    return true;
  case Opcode::Rem:
    if (B.asInt() == 0)
      return false;
    Out = Word::fromInt(A.asInt() % B.asInt());
    return true;
  case Opcode::And: Out = Word::fromInt(A.asInt() & B.asInt()); return true;
  case Opcode::Or:  Out = Word::fromInt(A.asInt() | B.asInt()); return true;
  case Opcode::Xor: Out = Word::fromInt(A.asInt() ^ B.asInt()); return true;
  case Opcode::Shl:
    Out = Word::fromInt(A.asInt() << (B.asInt() & 63));
    return true;
  case Opcode::Shr:
    Out = Word::fromInt(A.asInt() >> (B.asInt() & 63));
    return true;
  case Opcode::Neg: Out = Word::fromInt(-A.asInt()); return true;
  case Opcode::FAdd:
    Out = Word::fromFloat(A.asFloat() + B.asFloat());
    return true;
  case Opcode::FSub:
    Out = Word::fromFloat(A.asFloat() - B.asFloat());
    return true;
  case Opcode::FMul:
    Out = Word::fromFloat(A.asFloat() * B.asFloat());
    return true;
  case Opcode::FDiv:
    Out = Word::fromFloat(A.asFloat() / B.asFloat());
    return true;
  case Opcode::FNeg: Out = Word::fromFloat(-A.asFloat()); return true;
  case Opcode::CmpEq: Out = Word::fromInt(A.asInt() == B.asInt()); return true;
  case Opcode::CmpNe: Out = Word::fromInt(A.asInt() != B.asInt()); return true;
  case Opcode::CmpLt: Out = Word::fromInt(A.asInt() <  B.asInt()); return true;
  case Opcode::CmpLe: Out = Word::fromInt(A.asInt() <= B.asInt()); return true;
  case Opcode::CmpGt: Out = Word::fromInt(A.asInt() >  B.asInt()); return true;
  case Opcode::CmpGe: Out = Word::fromInt(A.asInt() >= B.asInt()); return true;
  case Opcode::FCmpEq: Out = Word::fromInt(A.asFloat() == B.asFloat()); return true;
  case Opcode::FCmpNe: Out = Word::fromInt(A.asFloat() != B.asFloat()); return true;
  case Opcode::FCmpLt: Out = Word::fromInt(A.asFloat() <  B.asFloat()); return true;
  case Opcode::FCmpLe: Out = Word::fromInt(A.asFloat() <= B.asFloat()); return true;
  case Opcode::FCmpGt: Out = Word::fromInt(A.asFloat() >  B.asFloat()); return true;
  case Opcode::FCmpGe: Out = Word::fromInt(A.asFloat() >= B.asFloat()); return true;
  case Opcode::IToF:
    Out = Word::fromFloat(static_cast<double>(A.asInt()));
    return true;
  case Opcode::FToI:
    Out = Word::fromInt(static_cast<int64_t>(A.asFloat()));
    return true;
  default:
    return false;
  }
}

} // namespace ir
} // namespace dyc
